// Unit tests for the trace language (Definition 3.1).

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

namespace tj::trace {
namespace {

TEST(Action, EqualityAndConstruction) {
  EXPECT_EQ(init(0), init(0));
  EXPECT_NE(init(0), init(1));
  EXPECT_EQ(fork(1, 2), fork(1, 2));
  EXPECT_NE(fork(1, 2), fork(2, 1));
  EXPECT_NE(fork(1, 2), join(1, 2));
  EXPECT_EQ(join(3, 4).actor, 3u);
  EXPECT_EQ(join(3, 4).target, 4u);
  EXPECT_EQ(init(7).target, kNoTask);
}

TEST(Action, Printing) {
  EXPECT_EQ(to_string(init(0)), "init(0)");
  EXPECT_EQ(to_string(fork(0, 1)), "fork(0,1)");
  EXPECT_EQ(to_string(join(2, 1)), "join(2,1)");
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.tasks().empty());
  EXPECT_EQ(t.fork_count(), 0u);
  EXPECT_EQ(t.join_count(), 0u);
}

TEST(Trace, FluentBuilding) {
  Trace t;
  t.push_init(0).push_fork(0, 1).push_join(0, 1);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], init(0));
  EXPECT_EQ(t[1], fork(0, 1));
  EXPECT_EQ(t[2], join(0, 1));
}

TEST(Trace, InitializerList) {
  const Trace t{init(0), fork(0, 1), fork(1, 2)};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.fork_count(), 2u);
  EXPECT_EQ(t.join_count(), 0u);
}

TEST(Trace, TasksInFirstMentionOrder) {
  const Trace t{init(5), fork(5, 3), fork(3, 8), join(5, 8)};
  const std::vector<TaskId> expected{5, 3, 8};
  EXPECT_EQ(t.tasks(), expected);
}

TEST(Trace, TasksDeduplicated) {
  const Trace t{init(0), fork(0, 1), join(0, 1), join(0, 1)};
  EXPECT_EQ(t.tasks().size(), 2u);
}

TEST(Trace, Concatenation) {
  const Trace t1{init(0), fork(0, 1)};
  const Trace t2{join(0, 1)};
  const Trace t = t1 + t2;
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[2], join(0, 1));
}

TEST(Trace, Prefix) {
  const Trace t{init(0), fork(0, 1), fork(0, 2), join(0, 2)};
  EXPECT_EQ(t.prefix(0).size(), 0u);
  EXPECT_EQ(t.prefix(2).size(), 2u);
  EXPECT_EQ(t.prefix(2)[1], fork(0, 1));
  EXPECT_EQ(t.prefix(100), t);  // clamped
}

TEST(Trace, PopRemovesLastAction) {
  Trace t{init(0), fork(0, 1), join(0, 1)};
  t.pop();
  EXPECT_EQ(t, (Trace{init(0), fork(0, 1)}));
  t.pop();
  t.pop();
  EXPECT_TRUE(t.empty());
  t.pop();  // no-op on empty
  EXPECT_TRUE(t.empty());
}

TEST(Trace, Printing) {
  const Trace t{init(0), fork(0, 1)};
  EXPECT_EQ(t.to_string(), "[init(0); fork(0,1)]");
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), "[init(0); fork(0,1)]");
}

TEST(Trace, CountsSeparateKinds) {
  const Trace t{init(0), fork(0, 1), fork(0, 2), join(0, 1), join(0, 2),
                join(0, 1)};
  EXPECT_EQ(t.fork_count(), 2u);
  EXPECT_EQ(t.join_count(), 3u);
}

}  // namespace
}  // namespace tj::trace
