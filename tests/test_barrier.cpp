// CheckedBarrier: correct barrier semantics plus deadlock avoidance across
// barriers of one domain.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/barrier.hpp"

namespace tj::runtime {
namespace {

Config cfg(unsigned workers = 8) {
  return Config{.policy = core::PolicyChoice::TJ_SP, .workers = workers};
}

// Coordinator-side pattern: spawn the parties (each gated on `start`),
// register them by uid, then open the gate. Mirrors HJ's
// registration-at-spawn and never starves a bounded pool.
template <typename Body>
std::vector<Future<void>> spawn_registered(CheckedBarrier& bar, int n,
                                           std::atomic<bool>& start,
                                           Body body) {
  std::vector<Future<void>> parties;
  parties.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    parties.push_back(async([&start, body] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      body();
    }));
    bar.register_party(parties.back().task().uid());
  }
  start.store(true, std::memory_order_release);
  return parties;
}

TEST(CheckedBarrier, PhasesAdvanceTogether) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    constexpr int kParties = 4;
    constexpr int kPhases = 5;
    std::atomic<int> in_phase[kPhases] = {};
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, kParties, start, [&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        in_phase[ph].fetch_add(1);
        bar.await();
        // Everyone must have entered phase ph before anyone proceeds.
        EXPECT_EQ(in_phase[ph].load(), kParties);
      }
      bar.deregister();
    });
    for (auto& f : parties) f.join();
    EXPECT_EQ(bar.phase(), static_cast<std::uint64_t>(kPhases));
    EXPECT_EQ(bar.parties(), 0u);
  });
}

TEST(CheckedBarrier, ExactlyOneSerialPartyPerPhase) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    std::atomic<int> serials{0};
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, 6, start, [&] {
      for (int ph = 0; ph < 4; ++ph) {
        if (bar.await()) serials.fetch_add(1);
      }
    });
    for (auto& f : parties) f.join();
    EXPECT_EQ(serials.load(), 4);  // one serial per phase
  });
}

TEST(CheckedBarrier, ArriveDoesNotBlock) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    bar.register_party();
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, 1, start, [&] { bar.await(); });
    bar.arrive();  // root arrives without waiting; the phase completes when
                   // the other party awaits
    for (auto& f : parties) f.join();
    EXPECT_EQ(bar.phase(), 1u);
    bar.deregister();
  });
}

TEST(CheckedBarrier, DeregisterReleasesAStalledPhase) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    bar.register_party();
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, 1, start, [&] { bar.await(); });
    // Give the waiter a moment to actually block, then leave.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bar.deregister();
    for (auto& f : parties) f.join();
    EXPECT_EQ(bar.phase(), 1u);
  });
}

TEST(CheckedBarrier, DeregisterRevokesOwnPendingArrival) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    bar.register_party();
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, 2, start, [&] { bar.await(); });
    bar.arrive();      // root arrives (1 of 3)...
    bar.deregister();  // ...then leaves: its arrival must be revoked, so the
                       // phase still waits for BOTH remaining parties
    for (auto& f : parties) f.join();
    EXPECT_EQ(bar.phase(), 1u);
    EXPECT_EQ(bar.parties(), 2u);
  });
}

TEST(CheckedBarrier, CrossBarrierDeadlockIsAverted) {
  // A awaits X while gating Y; B awaits Y while gating X — averted, with
  // recovery: B arrives at X instead, unblocking A.
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& x = domain.create_barrier();
    CheckedBarrier& y = domain.create_barrier();
    std::atomic<bool> start{false};
    std::atomic<int> averted{0};

    auto a = async([&] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      x.await();  // blocks: B hasn't arrived at X
      y.await();  // after recovery both proceed
    });
    auto b = async([&] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // Give A a moment to block on X so the cycle is present.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      try {
        y.await();  // would close the cycle: faults
      } catch (const DeadlockAvoidedError&) {
        averted.fetch_add(1);
        x.await();  // recover by satisfying X first...
        y.await();  // ...then Y; A mirrors this order
      }
    });
    x.register_party(a.task().uid());
    y.register_party(a.task().uid());
    x.register_party(b.task().uid());
    y.register_party(b.task().uid());
    start.store(true, std::memory_order_release);
    a.join();
    b.join();
    EXPECT_EQ(averted.load(), 1);
    EXPECT_GE(domain.deadlocks_averted(), 1u);
  });
}

TEST(CheckedBarrier, SinglePartyNeverBlocks) {
  Runtime rt(cfg());
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    bar.register_party();
    EXPECT_TRUE(bar.await());  // sole party is always serial
    EXPECT_TRUE(bar.await());
    EXPECT_EQ(bar.phase(), 2u);
    bar.deregister();
  });
}

TEST(CheckedBarrier, ManyPartiesFewWorkersStillProgresses) {
  // More parties than workers: compensation threads must keep the pool
  // running while workers block in await.
  Runtime rt(cfg(/*workers=*/2));
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    constexpr int kParties = 8;
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, kParties, start, [&bar] {
      for (int ph = 0; ph < 3; ++ph) bar.await();
    });
    for (auto& f : parties) f.join();
    EXPECT_EQ(bar.phase(), 3u);
  });
}

TEST(CheckedBarrier, UsedAsStencilSyncComputesCorrectly) {
  // A miniature iterative computation: parties alternate computing a block
  // and awaiting the barrier; the final state must equal the sequential
  // reference (validates the happens-before the barrier provides).
  Runtime rt(cfg());
  rt.root([] {
    constexpr int kParties = 4;
    constexpr int kCells = 64;
    constexpr int kIters = 10;
    std::vector<double> a(kCells, 1.0);
    std::vector<double> b(kCells, 0.0);
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    std::atomic<bool> start{false};
    auto parties = spawn_registered(bar, kParties, start, [&, kParties] {
      static std::atomic<int> next_id{0};
      const int me = next_id.fetch_add(1) % kParties;
      for (int it = 0; it < kIters; ++it) {
        auto& src = (it % 2 == 0) ? a : b;
        auto& dst = (it % 2 == 0) ? b : a;
        for (int c = me; c < kCells; c += kParties) {
          const double left = src[(c + kCells - 1) % kCells];
          const double right = src[(c + 1) % kCells];
          dst[c] = 0.5 * (left + right);
        }
        bar.await();
      }
    });
    for (auto& f : parties) f.join();

    // Sequential reference.
    std::vector<double> ra(kCells, 1.0);
    std::vector<double> rb(kCells, 0.0);
    for (int it = 0; it < kIters; ++it) {
      auto& src = (it % 2 == 0) ? ra : rb;
      auto& dst = (it % 2 == 0) ? rb : ra;
      for (int c = 0; c < kCells; ++c) {
        dst[c] = 0.5 * (src[(c + kCells - 1) % kCells] +
                        src[(c + 1) % kCells]);
      }
    }
    const auto& final_par = (kIters % 2 == 0) ? a : b;
    const auto& final_ref = (kIters % 2 == 0) ? ra : rb;
    for (int c = 0; c < kCells; ++c) {
      EXPECT_DOUBLE_EQ(final_par[c], final_ref[c]) << "cell " << c;
    }
  });
}

}  // namespace
}  // namespace tj::runtime
