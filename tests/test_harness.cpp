// Harness pieces: statistics, memory sampling, the benchmark runner and the
// table/figure renderers.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_registry.hpp"
#include "harness/memory_sampler.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"

namespace tj::harness {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs{7.5};
  EXPECT_DOUBLE_EQ(mean(xs), 7.5);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(ci95_half_width(xs), 0.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({}), std::invalid_argument);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_NEAR(geometric_mean({1.06, 1.09}), 1.0749, 1e-3);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), std::invalid_argument);
}

TEST(Stats, Ci95UsesStudentT) {
  // n=2, df=1: t = 12.706; stddev of {0,2} is √2.
  const std::vector<double> xs{0.0, 2.0};
  EXPECT_NEAR(ci95_half_width(xs), 12.706 * std::sqrt(2.0) / std::sqrt(2.0),
              1e-9);
  // Large n approaches the normal quantile.
  std::vector<double> big;
  for (int i = 0; i < 100; ++i) big.push_back(i % 2 ? 1.0 : -1.0);
  const double expected = 1.96 * stddev(big) / 10.0;
  EXPECT_NEAR(ci95_half_width(big), expected, 1e-9);
}

TEST(Stats, SummarizeMinMax) {
  const Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Memory, CurrentRssIsPositive) { EXPECT_GT(current_rss_bytes(), 0u); }

TEST(Memory, SamplerObservesAllocations) {
  MemorySampler sampler(1);
  // Touch a chunk of memory so RSS moves.
  std::vector<char> block(64 << 20);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
  sampler.stop();
  EXPECT_GT(sampler.samples(), 0u);
  EXPECT_GT(sampler.peak_bytes(), 0u);
  EXPECT_GT(sampler.average_bytes(), 0.0);
  EXPECT_GE(static_cast<double>(sampler.peak_bytes()),
            sampler.average_bytes());
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(t.seconds(), first);  // monotone
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);  // reset restarts the clock
}

TEST(AppRegistry, PaperBenchmarksAndExtrasRegistered) {
  const auto& apps = apps::all_apps();
  ASSERT_EQ(apps.size(), 8u);
  EXPECT_EQ(apps[0].name, "jacobi");
  EXPECT_EQ(apps[5].name, "nqueens");
  EXPECT_FALSE(apps[5].kj_valid);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(apps[i].extra) << apps[i].name;
  }
  EXPECT_TRUE(apps[6].extra);
  EXPECT_TRUE(apps[7].extra);
  for (const auto& a : apps) {
    if (a.name != "nqueens") {
      EXPECT_TRUE(a.kj_valid) << a.name;
    }
  }
}

TEST(AppRegistry, FindByName) {
  EXPECT_NE(apps::find_app("crypt"), nullptr);
  EXPECT_EQ(apps::find_app("nope"), nullptr);
}

TEST(Runner, MeasuresBaselineAndPolicy) {
  const apps::AppInfo* app = apps::find_app("series");
  ASSERT_NE(app, nullptr);
  RunConfig cfg;
  cfg.size = apps::AppSize::Tiny;
  cfg.reps = 2;
  cfg.warmups = 0;
  const Measurement base = measure(*app, core::PolicyChoice::None, cfg);
  const Measurement tjsp = measure(*app, core::PolicyChoice::TJ_SP, cfg);
  EXPECT_TRUE(base.app_valid);
  EXPECT_TRUE(tjsp.app_valid);
  EXPECT_EQ(base.time_s.n, 2u);
  EXPECT_GT(base.time_s.mean, 0.0);
  EXPECT_EQ(base.verifier_peak_bytes, 0.0);
  EXPECT_GT(tjsp.verifier_peak_bytes, 0.0);
  EXPECT_GT(time_factor(tjsp, base), 0.0);
  EXPECT_GT(memory_factor(tjsp, base), 1.0);
  EXPECT_DOUBLE_EQ(memory_factor(base, base), 1.0);
}

TEST(Runner, InterleavedMeasuresBaselineAndPolicies) {
  const apps::AppInfo* app = apps::find_app("crypt");
  ASSERT_NE(app, nullptr);
  RunConfig cfg;
  cfg.size = apps::AppSize::Tiny;
  cfg.reps = 2;
  cfg.warmups = 1;
  const BenchmarkRun run = measure_interleaved(
      *app, {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_SS}, cfg);
  EXPECT_TRUE(run.baseline.app_valid);
  EXPECT_EQ(run.baseline.policy, core::PolicyChoice::None);
  EXPECT_EQ(run.baseline.time_s.n, 2u);
  ASSERT_EQ(run.policies.size(), 2u);
  EXPECT_EQ(run.policies[0].policy, core::PolicyChoice::TJ_SP);
  EXPECT_EQ(run.policies[1].policy, core::PolicyChoice::KJ_SS);
  for (const Measurement& m : run.policies) {
    EXPECT_TRUE(m.app_valid);
    EXPECT_EQ(m.time_s.n, 2u);
    EXPECT_GT(m.verifier_peak_bytes, 0.0);
    EXPECT_GT(m.gate.joins_checked, 0u);
  }
  // The cold-run footprint must be captured even though later runs reuse
  // the warm heap.
  EXPECT_GT(run.baseline.rss_peak_delta_bytes, 0.0);
}

TEST(Runner, InterleavedWithNoPolicies) {
  const apps::AppInfo* app = apps::find_app("series");
  RunConfig cfg;
  cfg.size = apps::AppSize::Tiny;
  cfg.reps = 1;
  cfg.warmups = 0;
  const BenchmarkRun run = measure_interleaved(*app, {}, cfg);
  EXPECT_TRUE(run.policies.empty());
  EXPECT_TRUE(run.baseline.app_valid);
}

TEST(Tables, RenderAllFormats) {
  // Small end-to-end render from real measurements.
  const apps::AppInfo* app = apps::find_app("crypt");
  ASSERT_NE(app, nullptr);
  RunConfig cfg;
  cfg.size = apps::AppSize::Tiny;
  cfg.reps = 2;
  cfg.warmups = 0;
  BenchmarkRecord rec;
  rec.name = app->name;
  rec.baseline = measure(*app, core::PolicyChoice::None, cfg);
  rec.policies.push_back(measure(*app, core::PolicyChoice::TJ_SP, cfg));
  rec.policies.push_back(measure(*app, core::PolicyChoice::KJ_VC, cfg));
  const std::vector<BenchmarkRecord> rows{rec};

  const std::string t2 = render_table2(rows);
  EXPECT_NE(t2.find("crypt"), std::string::npos);
  EXPECT_NE(t2.find("Geom. mean"), std::string::npos);
  EXPECT_NE(t2.find("TJ-SP"), std::string::npos);

  const std::string f2 = render_figure2(rows);
  EXPECT_NE(f2.find("baseline"), std::string::npos);
  EXPECT_NE(f2.find("o"), std::string::npos);

  const std::string gs = render_gate_stats(rows);
  EXPECT_NE(gs.find("KJ-VC"), std::string::npos);

  const std::string csv = render_csv(rows);
  EXPECT_NE(csv.find("benchmark,policy"), std::string::npos);
  // Header + baseline + two policies.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

}  // namespace
}  // namespace tj::harness
