// Tests for the waits-for graph and its probation-aware cycle checking.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wfg/waits_for_graph.hpp"

namespace tj::wfg {
namespace {

TEST(Wfg, EmptyGraph) {
  WaitsForGraph g;
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.probation_count(), 0u);
  EXPECT_FALSE(g.is_waiting(1));
}

TEST(Wfg, ApprovedWaitsSkipCycleChecksWhenNoProbation) {
  WaitsForGraph g;
  EXPECT_EQ(g.add_wait(1, 2), WaitVerdict::Added);
  EXPECT_EQ(g.add_wait(2, 3), WaitVerdict::Added);
  EXPECT_EQ(g.cycle_checks(), 0u);  // the fast path: no probation, no checks
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.is_waiting(1));
}

TEST(Wfg, CheckedWaitDetectsSelfLoop) {
  WaitsForGraph g;
  EXPECT_EQ(g.add_checked_wait(7, 7), WaitVerdict::WouldDeadlock);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Wfg, CheckedWaitDetectsTwoCycle) {
  WaitsForGraph g;
  EXPECT_EQ(g.add_checked_wait(1, 2), WaitVerdict::Added);
  EXPECT_EQ(g.add_checked_wait(2, 1), WaitVerdict::WouldDeadlock);
}

TEST(Wfg, CheckedWaitDetectsLongCycle) {
  WaitsForGraph g;
  for (NodeId i = 1; i < 10; ++i) {
    EXPECT_EQ(g.add_checked_wait(i, i + 1), WaitVerdict::Added);
  }
  EXPECT_EQ(g.add_checked_wait(10, 1), WaitVerdict::WouldDeadlock);
  EXPECT_EQ(g.add_checked_wait(10, 11), WaitVerdict::Added);  // chain is fine
}

TEST(Wfg, ProbationWaitAlwaysChecks) {
  WaitsForGraph g;
  EXPECT_EQ(g.add_probation_wait(1, 2), WaitVerdict::Added);
  EXPECT_EQ(g.cycle_checks(), 1u);
  EXPECT_EQ(g.probation_count(), 1u);
}

TEST(Wfg, ApprovedEdgeClosingProbationCycleIsCaught) {
  // The soundness fix: a policy-approved edge that would complete a cycle
  // through a live probation edge must be refused.
  WaitsForGraph g;
  EXPECT_EQ(g.add_probation_wait(3, 1), WaitVerdict::Added);  // rejected join
  EXPECT_EQ(g.add_wait(1, 2), WaitVerdict::Added);
  EXPECT_EQ(g.add_wait(2, 3), WaitVerdict::WouldDeadlock);  // closes 3→1→2→3
}

TEST(Wfg, RemovingProbationRestoresFastPath) {
  WaitsForGraph g;
  EXPECT_EQ(g.add_probation_wait(3, 1), WaitVerdict::Added);
  g.remove_wait(3);
  EXPECT_EQ(g.probation_count(), 0u);
  const std::uint64_t checks = g.cycle_checks();
  EXPECT_EQ(g.add_wait(1, 2), WaitVerdict::Added);
  EXPECT_EQ(g.cycle_checks(), checks);  // no further checks
}

TEST(Wfg, RemoveWaitIsIdempotent) {
  WaitsForGraph g;
  g.remove_wait(42);  // absent: no-op
  EXPECT_EQ(g.add_wait(1, 2), WaitVerdict::Added);
  g.remove_wait(1);
  g.remove_wait(1);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Wfg, ChainFromWalksTheWaitPath) {
  WaitsForGraph g;
  (void)g.add_wait(1, 2);
  (void)g.add_wait(2, 3);
  (void)g.add_wait(3, 4);
  const std::vector<NodeId> expected{1, 2, 3, 4};
  EXPECT_EQ(g.chain_from(1), expected);
  EXPECT_EQ(g.chain_from(4), (std::vector<NodeId>{4}));
}

TEST(Wfg, BrokenCycleCanBeReinserted) {
  WaitsForGraph g;
  (void)g.add_checked_wait(1, 2);
  (void)g.add_checked_wait(2, 3);
  EXPECT_EQ(g.add_checked_wait(3, 1), WaitVerdict::WouldDeadlock);
  g.remove_wait(2);  // 2's join completed: the path is broken
  EXPECT_EQ(g.add_checked_wait(3, 1), WaitVerdict::Added);
}

TEST(Wfg, ConcurrentAddRemoveSmoke) {
  // Hammer the graph from several threads with disjoint id ranges plus
  // occasional cross-range edges; assert internal counters stay sane.
  WaitsForGraph g;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&g, t] {
      const NodeId base = static_cast<NodeId>(t) * 1000;
      for (NodeId i = 0; i < 200; ++i) {
        (void)g.add_checked_wait(base + i, base + i + 1);
        if (i % 3 == 0) {
          (void)g.add_probation_wait(base + 500 + i, ((t + 1) % kThreads) *
                                                         1000ull + i);
        }
        g.remove_wait(base + i);
        g.remove_wait(base + 500 + i);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.probation_count(), 0u);
}


TEST(WfgScan, EmptyGraphHasNoCycles) {
  WaitsForGraph g;
  EXPECT_TRUE(g.find_all_cycles().empty());
}

TEST(WfgScan, ChainsAreNotCycles) {
  WaitsForGraph g;
  (void)g.add_wait(1, 2);
  (void)g.add_wait(2, 3);
  (void)g.add_wait(3, 4);
  EXPECT_TRUE(g.find_all_cycles().empty());
}

TEST(WfgScan, FindsASingleCycle) {
  WaitsForGraph g;
  (void)g.add_wait(1, 2);
  (void)g.add_wait(2, 3);
  (void)g.add_wait(3, 1);
  const auto cycles = g.find_all_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(WfgScan, FindsDisjointCyclesAndIgnoresTails) {
  WaitsForGraph g;
  // Cycle A: 1→2→1 with a tail 10→1.
  (void)g.add_wait(1, 2);
  (void)g.add_wait(2, 1);
  (void)g.add_wait(10, 1);
  // Cycle B: 5→6→7→5.
  (void)g.add_wait(5, 6);
  (void)g.add_wait(6, 7);
  (void)g.add_wait(7, 5);
  // Plain chain: 20→21.
  (void)g.add_wait(20, 21);
  const auto cycles = g.find_all_cycles();
  ASSERT_EQ(cycles.size(), 2u);
  const std::size_t a = std::min(cycles[0].size(), cycles[1].size());
  const std::size_t b = std::max(cycles[0].size(), cycles[1].size());
  EXPECT_EQ(a, 2u);
  EXPECT_EQ(b, 3u);
}

TEST(WfgScan, SelfLoopViaDirectInsertion) {
  // add_wait never admits self-loops through the checked paths, but the
  // scan must report one if state got there via the unchecked fast path.
  WaitsForGraph g;
  (void)g.add_wait(9, 9);  // fast path: no probation, no check
  const auto cycles = g.find_all_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], std::vector<NodeId>{9});
}

}  // namespace
}  // namespace tj::wfg
