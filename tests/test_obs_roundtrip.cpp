// The record→export→parse→replay round-trip property: a live run recorded
// by the flight recorder, bridged back to the offline notation
// (obs/replay_bridge), serialized as text and re-parsed, must (a) lose no
// events, (b) re-parse to the identical trace, and (c) replay through the
// offline judgments with the same verdicts the gate issued live. TJ and KJ
// judgments are monotone in the trace prefix, so a join the gate admitted
// live (Proceed) must be valid at its position in the completed trace —
// live-Proceed everywhere ⇒ offline TJ-valid. Checked for all six paper
// benchmarks under both scheduler modes.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "apps/app_registry.hpp"
#include "obs/export_chrome.hpp"
#include "obs/replay_bridge.hpp"
#include "runtime/api.hpp"
#include "trace/deadlock.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/parse.hpp"
#include "trace/validity.hpp"

namespace tj {
namespace {

runtime::Config observed(runtime::SchedulerMode mode) {
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.scheduler = mode;
  cfg.obs.enabled = true;
  return cfg;
}

void expect_reparses_identically(const trace::Trace& t) {
  const std::string text = obs::to_trace_text(t, "round-trip test");
  const trace::Trace reparsed = trace::parse_trace(text);
  ASSERT_EQ(reparsed.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(reparsed[i], t[i]) << "action " << i << " of:\n" << text;
  }
}

using AppCase = std::tuple<const char*, runtime::SchedulerMode>;

class ObsRoundTrip : public ::testing::TestWithParam<AppCase> {};

TEST_P(ObsRoundTrip, LiveVerdictsAgreeWithOfflineJudgments) {
  const auto& [name, mode] = GetParam();
  const apps::AppInfo* app = apps::find_app(name);
  ASSERT_NE(app, nullptr);

  runtime::Runtime rt(observed(mode));
  const apps::AppOutcome out = app->run(rt, apps::AppSize::Tiny);
  EXPECT_TRUE(out.valid) << out.detail;

  ASSERT_NE(rt.recorder(), nullptr);
  EXPECT_EQ(rt.recorder()->events_dropped(), 0u) << "event loss breaks replay";
  const std::vector<obs::Event> events = rt.recorder()->drain();

  // Every gate ruling was recorded, and (the paper's six apps are all
  // TJ-admissible) every ruling admitted the join outright.
  const core::GateStats stats = rt.gate_stats();
  std::uint64_t verdict_events = 0;
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::JoinVerdict) continue;
    ++verdict_events;
    EXPECT_EQ(e.detail, static_cast<std::uint8_t>(core::JoinDecision::Proceed));
    EXPECT_EQ(e.policy, static_cast<std::uint8_t>(core::PolicyChoice::TJ_SP));
  }
  EXPECT_EQ(verdict_events, stats.joins_checked);
  EXPECT_EQ(stats.policy_rejections, 0u);

  // Bridge to the offline notation: complete, and faithful through text.
  const obs::RecordedRun run = obs::extract_run(events);
  EXPECT_EQ(run.skipped_events, 0u);
  EXPECT_EQ(run.trace.fork_count() + 1, rt.tasks_created());
  EXPECT_EQ(run.trace.join_count(), stats.joins_checked);
  ASSERT_EQ(run.verdicts.size(), stats.joins_checked);
  for (const obs::RecordedRun::Verdict& v : run.verdicts) {
    EXPECT_FALSE(v.is_await);
    EXPECT_EQ(v.decision, static_cast<std::uint8_t>(core::JoinDecision::Proceed));
  }
  expect_reparses_identically(run.trace);

  // Offline replay: the judgments must agree with the live verdicts. TJ
  // validity of the whole trace certifies every live Proceed (monotonicity);
  // Theorem 3.11 then promises the recorded joins contain no cycle.
  EXPECT_TRUE(trace::is_structurally_valid(run.trace));
  EXPECT_TRUE(trace::is_tj_valid(run.trace));
  EXPECT_FALSE(trace::contains_deadlock(run.trace));
  if (app->kj_valid) {
    EXPECT_TRUE(trace::is_kj_valid(run.trace));
  }
}

std::string case_name(const ::testing::TestParamInfo<AppCase>& info) {
  return std::string(std::get<0>(info.param)) + "_" +
         std::string(runtime::to_string(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    SixApps, ObsRoundTrip,
    ::testing::Combine(
        ::testing::Values("jacobi", "smithwaterman", "crypt", "strassen",
                          "series", "nqueens"),
        ::testing::Values(runtime::SchedulerMode::Cooperative,
                          runtime::SchedulerMode::Blocking)),
    case_name);

// Promise actions round-trip too: a deterministic dataflow run records
// make/transfer/fulfill/await, bridges them into the extended notation, and
// replays OWP-valid offline — agreeing with the live gate, which admitted
// every await/fulfill.
TEST(ObsRoundTripPromises, DataflowReplaysOwpValid) {
  runtime::Runtime rt(observed(runtime::SchedulerMode::Cooperative));
  rt.root([] {
    auto p = runtime::make_promise<int>();
    auto q = runtime::make_promise<int>();
    auto owner_p = runtime::async_owning(p, [p] { p.fulfill(1); });
    auto owner_q = runtime::async_owning(
        q, [q, p] { q.fulfill(p.get() + 1); });
    EXPECT_EQ(q.get(), 2);
    owner_p.join();
    owner_q.join();
  });

  EXPECT_EQ(rt.recorder()->events_dropped(), 0u);
  const std::vector<obs::Event> events = rt.recorder()->drain();
  std::uint64_t await_verdicts = 0, fulfill_verdicts = 0;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::AwaitVerdict) ++await_verdicts;
    if (e.kind == obs::EventKind::FulfillVerdict) ++fulfill_verdicts;
  }
  EXPECT_GE(await_verdicts, 2u);   // p.get() inside owner_q, q.get() in root
  EXPECT_EQ(fulfill_verdicts, 2u);

  const obs::RecordedRun run = obs::extract_run(events);
  EXPECT_EQ(run.skipped_events, 0u);
  const trace::Trace& t = run.trace;
  EXPECT_EQ(t.make_count(), 2u);
  EXPECT_GE(t.await_count(), 2u);
  expect_reparses_identically(t);
  EXPECT_TRUE(trace::is_structurally_valid(t));
  EXPECT_TRUE(trace::is_owp_valid(t));
  EXPECT_FALSE(trace::contains_deadlock(t));
}

// Service-mode streams round-trip too: AdmissionShed events and request/
// tenant annotations ride along in the recorded stream without disturbing
// the structural bridge — the offline trace is identical to a plain run's,
// while the Chrome export keeps the service-facing detail.
TEST(ObsRoundTripService, ShedAndRequestAnnotationsSurviveBridging) {
  runtime::Config cfg = observed(runtime::SchedulerMode::Cooperative);
  runtime::TenantBudget tight;
  tight.name = "tiny";
  tight.max_in_flight = 1;
  cfg.governor.tenants = {tight};
  runtime::Runtime rt(cfg);
  ASSERT_NE(rt.admission(), nullptr);

  rt.root([&] {
    for (std::uint64_t req = 1; req <= 4; ++req) {
      runtime::RequestScope span(req, 1);
      const auto v = rt.admission()->try_admit(0);
      // In-flight budget is 1 and we release immediately, so odd attempts
      // admit; to force sheds, attempt once more while still in flight.
      if (v.admitted) {
        const auto nested = rt.admission()->try_admit(0);
        EXPECT_FALSE(nested.admitted);
        runtime::async([] {}).join();
        rt.admission()->release(0);
      }
    }
  });

  EXPECT_EQ(rt.recorder()->events_dropped(), 0u);
  const std::vector<obs::Event> events = rt.recorder()->drain();
  std::uint64_t sheds = 0, annotated = 0;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::AdmissionShed) {
      ++sheds;
      EXPECT_NE(e.request, 0u) << "shed events carry the request span";
      EXPECT_EQ(e.tenant, 1u);
    }
    if (e.request != 0) ++annotated;
  }
  EXPECT_GE(sheds, 1u);
  EXPECT_GT(annotated, sheds) << "spawn/join events are annotated too";
  const core::GateStats stats = rt.gate_stats();
  EXPECT_EQ(stats.requests_checked, stats.requests_admitted + sheds);

  // The bridge ignores service events without counting them as losses, and
  // the resulting trace still replays cleanly.
  const obs::RecordedRun run = obs::extract_run(events);
  EXPECT_EQ(run.skipped_events, 0u);
  EXPECT_EQ(run.trace.join_count(), stats.joins_checked);
  expect_reparses_identically(run.trace);
  EXPECT_TRUE(trace::is_structurally_valid(run.trace));
  EXPECT_TRUE(trace::is_tj_valid(run.trace));

  // The Chrome export keeps what the bridge drops: the shed marker lands in
  // the tenant's lane with its request id in the args.
  const std::string chrome = obs::to_chrome_json(events);
  EXPECT_NE(chrome.find("admission-shed"), std::string::npos);
  EXPECT_NE(chrome.find("\"tenant 0\""), std::string::npos);
  EXPECT_NE(chrome.find("\"request\":1"), std::string::npos);
}

}  // namespace
}  // namespace tj
