// Optimistic async verification (PolicyChoice::Async): joins/awaits are
// approved with zero policy work, a background detector confirms cycles
// against the live WFG, and the recovery supervisor breaks them by faulting
// a victim with DeadlockAvoidedError — the same fault-and-retry contract
// every synchronous policy honours. These tests pin down:
//
//   1. recovery — a genuine cross-await deadlock is confirmed, one victim
//      faults, the victim's retry succeeds, and nothing hangs;
//   2. the async ledger — observed WfgCycle-witnessed faults reconcile
//      exactly: incidents == deadlocks_averted + cycles_recovered;
//   3. determinism — the victim rule (lowest tenant priority, then youngest)
//      picks the same task on every run of the same program;
//   4. provenance — a recovered cycle's witness validates Confirmed through
//      the offline formalism, never Spurious;
//   5. bounded-latency failover — exhausting the lag, drop, or respawn
//      budget downgrades the ladder to the synchronous floor, after which
//      deadlocks are averted *before* blocking again;
//   6. chaos — a 16-seed × both-scheduler sweep with detector faults armed
//      stays hang-free, loses no results, and reconciles exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/guarded.hpp"
#include "obs/witness.hpp"
#include "runtime/api.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::runtime {
namespace {

void expect_clean_graph(const Runtime& rt) {
  const wfg::WaitsForGraph& g = rt.gate().graph();
  EXPECT_EQ(g.edge_count(), 0u) << "leaked wait edges after recovery";
  EXPECT_EQ(g.probation_count(), 0u) << "leaked probation edges";
  EXPECT_EQ(g.owner_edge_count(), 0u) << "leaked promise owner edges";
}

/// Fast-detector knobs so tests spend milliseconds, not the production
/// 200 µs × 16-tick scan cadence.
core::DetectorConfig fast_detector() {
  core::DetectorConfig d;
  d.tick_us = 100;
  d.full_scan_ticks = 4;
  return d;
}

struct CrossOutcome {
  long sum = 0;        ///< both awaited values (10 + 20 when healthy)
  int recoveries = 0;  ///< DeadlockAvoidedError catches inside the pair
  int victim = -1;     ///< which logical task faulted (0 = first spawned)
};

/// The canonical optimistic deadlock: two tasks that each own a promise and
/// await the other's. Under Async both awaits are approved and both tasks
/// park — a real deadlock that only the detector can break. The victim
/// recovers by discharging its own obligation first (waking the peer), then
/// retrying the await.
CrossOutcome cross_await_round() {  // pre: called from inside a task context
  CrossOutcome out;
  std::atomic<int> recoveries{0};
  std::atomic<int> victim{-1};
  auto p1 = make_promise<long>();
  auto p2 = make_promise<long>();
  auto cross = [&recoveries, &victim](Promise<long> mine,
                                      Promise<long> other, long val,
                                      int who) -> long {
    bool mine_done = false;
    long got = -1;
    try {
      got = other.get();  // closes the cycle: certain deadlock
    } catch (const DeadlockAvoidedError&) {
      recoveries.fetch_add(1, std::memory_order_relaxed);
      victim.store(who, std::memory_order_relaxed);
      mine.fulfill(val);  // discharge own obligation: the peer wakes
      mine_done = true;
      got = other.get();  // retry: the peer now fulfills in turn
    }
    if (!mine_done) mine.fulfill(val);
    return got;
  };
  auto a = async_owning(p1, [&cross, p1, p2] { return cross(p1, p2, 10, 0); });
  auto b = async_owning(p2, [&cross, p2, p1] { return cross(p2, p1, 20, 1); });
  out.sum = a.get() + b.get();
  out.recoveries = recoveries.load(std::memory_order_relaxed);
  out.victim = victim.load(std::memory_order_relaxed);
  return out;
}

CrossOutcome run_cross_await(Runtime& rt) {
  CrossOutcome out;
  rt.root([&out] { out = cross_await_round(); });
  return out;
}

TEST(AsyncDetect, ApprovesWithZeroPolicyWorkAndForcesRecorderOn) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 3;
  cfg.detector = fast_detector();
  Runtime rt(cfg);
  ASSERT_NE(rt.recorder(), nullptr)
      << "Async requires the flight recorder; normalize() must force it on";
  ASSERT_NE(rt.recovery(), nullptr);
  EXPECT_EQ(rt.active_policy(), core::PolicyChoice::Async);
  // The detector thread publishes `running` asynchronously after the
  // Runtime constructor returns; poll instead of asserting instantly.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!rt.recovery()->status().detector.running &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(rt.recovery()->status().detector.running);

  long sum = 0;
  rt.root([&sum] {
    std::vector<Future<long>> fs;
    for (int i = 0; i < 32; ++i) {
      fs.push_back(async([i]() -> long {
        auto inner = async([i] { return static_cast<long>(i); });
        return inner.get() + 1;
      }));
    }
    for (auto& f : fs) sum += f.get();
  });
  EXPECT_EQ(sum, 32L * 31 / 2 + 32);

  // Zero policy work: no rejections, no synchronous cycle faults, and on a
  // deadlock-free program no recoveries either.
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.policy_rejections, 0u);
  EXPECT_EQ(s.false_positives, 0u);
  EXPECT_EQ(s.deadlocks_averted, 0u);
  EXPECT_EQ(s.cycles_recovered, 0u);
  expect_clean_graph(rt);
}

TEST(AsyncDetect, RecoveryOffOutsideAsyncMode) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  EXPECT_EQ(rt.recovery(), nullptr);
}

TEST(AsyncDetect, CrossAwaitDeadlockRecoveredAndVictimRetries) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 3;
  cfg.detector = fast_detector();
  Runtime rt(cfg);
  const CrossOutcome out = run_cross_await(rt);

  EXPECT_EQ(out.sum, 30);
  EXPECT_EQ(out.recoveries, 1) << "exactly one victim per cycle incarnation";

  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.cycles_recovered, 1u);
  EXPECT_EQ(s.deadlocks_averted, 0u) << "nothing was averted synchronously";
  // The async ledger, observed form: every incident surfaced exactly once.
  EXPECT_EQ(static_cast<std::uint64_t>(out.recoveries),
            s.deadlocks_averted + s.cycles_recovered);

  ASSERT_NE(rt.recovery(), nullptr);
  const RecoveryStatus rs = rt.recovery()->status();
  EXPECT_EQ(rs.cycles_recovered, s.cycles_recovered)
      << "supervisor and gate ledgers must agree";
  EXPECT_GE(rs.breaks_posted, 1u);
  EXPECT_EQ(rs.waits_registered, 0u) << "registry must drain";
  EXPECT_GE(rs.detector.cycles_confirmed, 1u);
  ASSERT_EQ(rs.recent.size(), 1u);
  EXPECT_TRUE(rs.recent[0].on_promise);
  EXPECT_GE(rs.recent[0].cycle_len, 2u);
  expect_clean_graph(rt);
}

TEST(AsyncDetect, RepeatedIncidentsReconcileExactly) {
  // Four sequential deadlock incarnations through one runtime: each must be
  // counted exactly once (the incarnation dedup both suppresses re-reports
  // of a live cycle and retires keys when the victim unwinds, so fresh
  // incarnations count again).
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 3;
  cfg.detector = fast_detector();
  Runtime rt(cfg);
  int recoveries = 0;
  rt.root([&recoveries] {
    for (int round = 0; round < 4; ++round) {
      const CrossOutcome out = cross_await_round();
      EXPECT_EQ(out.sum, 30) << "round " << round;
      recoveries += out.recoveries;
    }
  });
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.cycles_recovered, 4u);
  EXPECT_EQ(static_cast<std::uint64_t>(recoveries),
            s.deadlocks_averted + s.cycles_recovered);
  EXPECT_EQ(rt.recovery()->status().waits_registered, 0u);
  expect_clean_graph(rt);
}

TEST(AsyncDetect, VictimDeterministicAcrossRuns) {
  // The victim rule is a pure function of the registry: lowest recovery
  // priority first, ties to the youngest task. With equal priorities the
  // second-spawned (younger) member of the pair must die on every run.
  for (int rep = 0; rep < 3; ++rep) {
    Config cfg;
    cfg.policy = core::PolicyChoice::Async;
    cfg.workers = 2;
    cfg.chaos_seed = 0xabc;  // fixed schedule perturbation, same every rep
    cfg.detector = fast_detector();
    Runtime rt(cfg);
    const CrossOutcome out = run_cross_await(rt);
    EXPECT_EQ(out.sum, 30) << "rep " << rep;
    EXPECT_EQ(out.victim, 1) << "rep " << rep
                             << ": the youngest cycle member must be chosen";
  }
}

TEST(AsyncDetect, RecoveredWitnessValidatesConfirmedNeverSpurious) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 3;
  cfg.record_trace = true;
  cfg.detector = fast_detector();
  Runtime rt(cfg);
  const CrossOutcome out = run_cross_await(rt);
  EXPECT_EQ(out.recoveries, 1);

  const std::vector<core::Witness> ws = rt.gate().witnesses();
  std::size_t recovered = 0;
  for (const core::Witness& w : ws) {
    if (w.kind != core::WitnessKind::WfgCycle) continue;
    ASSERT_EQ(w.policy, core::PolicyChoice::Async);
    ++recovered;
    const obs::WitnessValidation v =
        obs::validate_witness(w, rt.recorded_trace());
    EXPECT_EQ(v.verdict, obs::WitnessVerdict::Confirmed) << v.reason;
    EXPECT_NE(v.verdict, obs::WitnessVerdict::Spurious)
        << "a recovery must never be spurious: " << v.reason;
    EXPECT_GE(w.chain.size(), 2u);
    EXPECT_EQ(w.chain.front(), w.waiter) << "chain starts at the victim";
  }
  EXPECT_EQ(recovered, 1u);
}

// ---- bounded-latency failover -------------------------------------------

/// Feeds the recorder with join events until the detector fails over (or a
/// generous deadline passes). Returns true on failover. Pre: called from
/// inside a task context.
bool feed_until_failover_body(Runtime& rt) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (rt.recovery()->failed_over()) return true;
    async([] { return 0; }).join();  // a steady trickle of events
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return false;
}

bool feed_until_failover(Runtime& rt) {
  bool failed = false;
  rt.root([&rt, &failed] { failed = feed_until_failover_body(rt); });
  return failed;
}

TEST(AsyncFailover, DropBudgetExhaustionDowngradesToSynchronousFloor) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 2;
  cfg.detector = fast_detector();
  cfg.detector.drop_budget_events = 1;  // first dropped batch trips it
  FaultPlan plan;
  plan.seed = 5;
  plan.detector_drop_period = 1;  // drop every consumed batch
  cfg.fault_plan = plan;
  Runtime rt(cfg);

  // One root hosts both phases (a runtime allows exactly one root task):
  // feed until the drop budget trips, then — post-failover — rerun the
  // deliberate deadlock to prove it is now averted synchronously.
  bool failed = false;
  CrossOutcome out;
  rt.root([&rt, &failed, &out] {
    failed = feed_until_failover_body(rt);
    if (failed) out = cross_await_round();
  });
  ASSERT_TRUE(failed);
  const RecoveryStatus rs = rt.recovery()->status();
  EXPECT_TRUE(rs.detector.failed_over);
  EXPECT_GT(rs.detector.events_lost, 0u);
  EXPECT_EQ(rt.active_policy(), core::PolicyChoice::CycleOnly)
      << "failover must land on the synchronous WFG-checked floor";

  // Post-failover, deadlocks are averted synchronously again: the same
  // cross-await pair now faults at the cycle-closing await, before blocking.
  EXPECT_EQ(out.sum, 30);
  EXPECT_EQ(out.recoveries, 1);
  const core::GateStats s = rt.gate_stats();
  EXPECT_GE(s.deadlocks_averted, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(out.recoveries),
            s.deadlocks_averted + s.cycles_recovered);
  expect_clean_graph(rt);
}

TEST(AsyncFailover, DetectorDeathsPastRespawnBudgetFailOver) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 2;
  cfg.detector = fast_detector();
  cfg.detector.max_respawns = 2;
  FaultPlan plan;
  plan.seed = 7;
  plan.detector_death_period = 1;  // every incarnation dies on its first tick
  cfg.fault_plan = plan;
  Runtime rt(cfg);

  ASSERT_TRUE(feed_until_failover(rt));
  const RecoveryStatus rs = rt.recovery()->status();
  EXPECT_TRUE(rs.detector.failed_over);
  EXPECT_GE(rs.detector.respawns, cfg.detector.max_respawns)
      << "the supervisor must revive the thread up to the budget first";
  EXPECT_EQ(rt.active_policy(), core::PolicyChoice::CycleOnly);
  EXPECT_GT(rt.fault_stats().detector_deaths, 0u);
}

TEST(AsyncFailover, LagPastBudgetFailsOver) {
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.workers = 2;
  cfg.detector = fast_detector();
  cfg.detector.lag_budget_events = 1;
  cfg.detector.lag_trips_to_failover = 2;
  FaultPlan plan;
  plan.seed = 9;
  plan.detector_delay_period = 1;  // stall consumption on every tick
  plan.detector_delay_us = 2000;
  cfg.fault_plan = plan;
  Runtime rt(cfg);

  ASSERT_TRUE(feed_until_failover(rt));
  EXPECT_TRUE(rt.recovery()->status().detector.failed_over);
  EXPECT_GT(rt.fault_stats().detector_delays, 0u);
  EXPECT_EQ(rt.active_policy(), core::PolicyChoice::CycleOnly);
}

// ---- chaos sweep ---------------------------------------------------------

constexpr int kFanout = 16;
constexpr int kPromises = 6;

struct AsyncChaosOutcome {
  std::uint64_t futures_resolved = 0;
  std::uint64_t promises_resolved = 0;
  std::uint64_t pair_resolved = 0;
  /// DeadlockAvoidedError observations carrying a witness — exactly the
  /// faults the gate counted (synchronous averts + recovery breaks). The
  /// witness-less variant (woken by orphaning mid-block) is a separate
  /// phenomenon tracked by promises_orphaned.
  std::uint64_t witnessed = 0;
};

/// The fault-injection chaos workload (nested joins, owned promises,
/// fulfillers that may be injected to fail) PLUS one deliberate cross-await
/// deadlock whose members recover defensively: every obligation is
/// discharged even when a chaos fault lands inside the recovery path, so a
/// hang can only come from the machinery under test.
AsyncChaosOutcome run_async_chaos(Runtime& rt) {
  AsyncChaosOutcome out;
  rt.root([&out] {
    std::atomic<std::uint64_t> witnessed{0};
    const auto tally = [&witnessed](const DeadlockAvoidedError& e) {
      if (!e.witness().empty()) {
        witnessed.fetch_add(1, std::memory_order_relaxed);
      }
    };

    // Deliberate deadlock pair, defensively recovered.
    auto p1 = make_promise<long>();
    auto p2 = make_promise<long>();
    auto cross = [&tally](Promise<long> mine, Promise<long> other,
                          long val) -> long {
      bool mine_done = false;
      const auto discharge = [&] {
        if (mine_done) return;
        mine_done = true;
        try {
          mine.fulfill(val);
        } catch (const TjError&) {
          // injected fulfill failure: the promise orphans at task exit and
          // the peer's await faults — survivable, not silent
        }
      };
      long got = -2;
      try {
        got = other.get();
      } catch (const DeadlockAvoidedError& e) {
        tally(e);
        discharge();  // break the cycle before retrying
        try {
          got = other.get();
        } catch (const DeadlockAvoidedError& e2) {
          tally(e2);
          got = -3;
        } catch (const TjError&) {
          got = -3;
        }
      } catch (const TjError&) {
        got = -3;
      }
      discharge();
      return got;
    };
    auto ca = async_owning(p1, [&cross, p1, p2] { return cross(p1, p2, 10); });
    auto cb = async_owning(p2, [&cross, p2, p1] { return cross(p2, p1, 20); });

    // Deadlock-free background load across every injection site.
    std::vector<Future<long>> fs;
    for (int i = 0; i < kFanout; ++i) {
      fs.push_back(async([i]() -> long {
        auto inner = async([i] { return static_cast<long>(i); });
        return inner.get() + 1;
      }));
    }
    std::vector<Promise<long>> ps;
    std::vector<Future<void>> fulfillers;
    for (int i = 0; i < kPromises; ++i) {
      ps.push_back(make_promise<long>());
      fulfillers.push_back(async_owning(
          ps.back(), [p = ps.back(), i] { p.fulfill(100 + i); }));
    }

    for (auto& f : fs) {
      try {
        (void)f.get();
      } catch (const DeadlockAvoidedError& e) {
        tally(e);
      } catch (const TjError&) {
      }
      ++out.futures_resolved;
    }
    for (auto& p : ps) {
      try {
        (void)p.get();
      } catch (const DeadlockAvoidedError& e) {
        tally(e);
      } catch (const TjError&) {
      }
      ++out.promises_resolved;
    }
    for (auto& f : fulfillers) {
      try {
        f.join();
      } catch (const TjError&) {
      }
    }
    for (auto* f : {&ca, &cb}) {
      try {
        (void)f->get();
      } catch (const DeadlockAvoidedError& e) {
        tally(e);
      } catch (const TjError&) {
      }
      ++out.pair_resolved;
    }
    out.witnessed = witnessed.load(std::memory_order_relaxed);
  });
  return out;
}

class AsyncChaos
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 SchedulerMode>> {};

TEST_P(AsyncChaos, SurvivesDetectorFaultsWithExactReconciliation) {
  const auto [seed, mode] = GetParam();
  Config cfg;
  cfg.policy = core::PolicyChoice::Async;
  cfg.fault = core::FaultMode::Fallback;
  cfg.scheduler = mode;
  cfg.workers = 3;
  cfg.detector = fast_detector();
  cfg.fault_plan = FaultPlan::chaos_detector(seed);
  Runtime rt(cfg);
  const AsyncChaosOutcome out = run_async_chaos(rt);

  // (1) hang-freedom is the run completing; (2) no silently lost results.
  EXPECT_EQ(out.futures_resolved, static_cast<std::uint64_t>(kFanout));
  EXPECT_EQ(out.promises_resolved, static_cast<std::uint64_t>(kPromises));
  EXPECT_EQ(out.pair_resolved, 2u);

  // (3) exact reconciliation of the async ledger: every witnessed deadlock
  // fault was either averted synchronously (post-failover, or an orphan the
  // OWP caught pre-block) or recovered by the detector — and vice versa.
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(out.witnessed, s.deadlocks_averted + s.cycles_recovered);

  // (4) the deliberate cycle was handled one way or the other: recovered
  // under optimism, or averted synchronously when chaos forced failover (or
  // dissolved by an injected fulfill failure orphaning a pair promise).
  EXPECT_GE(s.deadlocks_averted + s.cycles_recovered + s.promises_orphaned,
            1u);

  // (5) ledgers agree and nothing leaks.
  ASSERT_NE(rt.recovery(), nullptr);
  const RecoveryStatus rs = rt.recovery()->status();
  EXPECT_EQ(rs.cycles_recovered, s.cycles_recovered);
  EXPECT_GE(rs.breaks_posted, rs.cycles_recovered);
  EXPECT_EQ(rs.waits_registered, 0u);
  EXPECT_EQ(s.promises_orphaned, rt.fault_stats().fulfill_failures);
  expect_clean_graph(rt);
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, AsyncChaos,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 17),
                       ::testing::Values(SchedulerMode::Cooperative,
                                         SchedulerMode::Blocking)));

}  // namespace
}  // namespace tj::runtime
