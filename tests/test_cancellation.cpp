// Structured cancellation: a fault in one task cancels its still-pending
// siblings, poisons their promises and barriers, and surfaces everywhere as
// CancelledError carrying the originating fault — while the scope *owner*
// survives as the recovery point.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/barrier.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/finish.hpp"

namespace tj::runtime {
namespace {

// Pins the (single) worker so everything spawned afterwards stays queued.
// Spawn the blocker OUTSIDE any cancellation scope under test so it is not
// itself cancelled.
struct WorkerPin {
  std::atomic<bool> release{false};
  Future<void> blocker;
  void pin() {
    blocker = async([this] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  void drain() {
    release.store(true, std::memory_order_release);
    blocker.join();
  }
};

TEST(Cancellation, FaultCancelsQueuedSiblingsWithCause) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    CancellationScope scope;  // OnFault::Cancel
    auto failing = async([]() -> int {
      throw std::runtime_error("original fault");
    });
    std::vector<Future<int>> siblings;
    for (int i = 0; i < 8; ++i) siblings.push_back(async([] { return 1; }));
    // The failing task is queued (worker pinned): this get() inlines it;
    // its fault cancels the scope, force-completing the queued siblings.
    EXPECT_THROW(failing.get(), std::runtime_error);
    EXPECT_TRUE(scope.cancelled());
    EXPECT_EQ(scope.tasks_cancelled(), 8u);
    for (auto& f : siblings) {
      try {
        (void)f.get();
        ADD_FAILURE() << "cancelled sibling returned a value";
      } catch (const CancelledError& e) {
        ASSERT_TRUE(e.cause() != nullptr);
        EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
      }
    }
    pin.drain();
  });
}

TEST(Cancellation, ScopeOwnerSurvivesAndRetriesOutsideTheScope) {
  // The recovery pattern of the issue: catch → (scope cancelled the rest) →
  // retry outside the failed scope.
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  const int v = rt.root([]() -> int {
    WorkerPin pin;
    pin.pin();
    {
      CancellationScope scope;
      auto failing = async([]() -> int {
        throw std::runtime_error("attempt 1 fails");
      });
      auto sibling = async([] { return 5; });
      EXPECT_THROW(failing.get(), std::runtime_error);
      EXPECT_THROW(sibling.get(), CancelledError);
    }
    pin.drain();
    // The owner was never cancelled; spawns after the scope closed belong
    // to the (uncancelled) enclosing scope and run normally.
    EXPECT_FALSE(cancel_requested());
    auto retry = async([] { return 42; });
    return retry.get();
  });
  EXPECT_EQ(v, 42);
}

TEST(Cancellation, NestedScopeCancelPropagatesDownButNotUp) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    CancellationScope outer;
    auto outer_task = async([] { return 1; });
    {
      CancellationScope inner;
      auto inner_task = async([] { return 2; });
      outer.cancel();  // cancelling the OUTER scope reaches inner's tasks
      EXPECT_TRUE(inner.cancelled());
      EXPECT_THROW((void)inner_task.get(), CancelledError);
    }
    EXPECT_THROW((void)outer_task.get(), CancelledError);
    pin.drain();
  });
  // ...and the reverse: an inner cancel must not touch the outer scope.
  Runtime rt2({.policy = core::PolicyChoice::TJ_SP,
               .scheduler = SchedulerMode::Cooperative,
               .workers = 1});
  rt2.root([] {
    WorkerPin pin;
    pin.pin();
    CancellationScope outer;
    auto outer_task = async([] { return 1; });
    {
      CancellationScope inner;
      auto inner_task = async([] { return 2; });
      inner.cancel();
      EXPECT_THROW((void)inner_task.get(), CancelledError);
      EXPECT_FALSE(outer.cancelled());
    }
    pin.drain();
    EXPECT_EQ(outer_task.get(), 1);
  });
}

TEST(Cancellation, CancelledScopeRejectsNewSpawns) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    auto body = async([] {
      CancellationScope scope;
      scope.cancel();
      // This task IS a member... no: the scope was opened inside it, so the
      // task itself is the owner; but tasks it now spawns join the cancelled
      // scope and are abandoned at the spawn checkpoint.
      EXPECT_THROW(async([] { return 1; }), CancelledError);
    });
    pin.drain();
    body.join();
  });
}

TEST(Cancellation, PoisonedPromiseFailsFastWithCause) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    auto p = make_promise<int>();
    CancellationScope scope;
    // The fulfiller is queued behind the pin and owns p. Cancelling the
    // scope force-completes it; its exit orphans p poisoned with the
    // cancellation cause, so the await faults with CancelledError — not a
    // bare DeadlockAvoidedError.
    auto fulfiller = async_owning(p, [p] { p.fulfill(1); });
    scope.cancel(std::make_exception_ptr(std::runtime_error("root cause")));
    try {
      (void)p.get();
      ADD_FAILURE() << "await on a poisoned promise returned";
    } catch (const CancelledError& e) {
      ASSERT_TRUE(e.cause() != nullptr);
      EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
    }
    EXPECT_THROW(fulfiller.join(), CancelledError);
    pin.drain();
  });
  EXPECT_EQ(rt.gate_stats().promises_orphaned, 1u);
}

TEST(Cancellation, PoisonedBarrierReleasesBlockedPeer) {
  // A member task blocks in a barrier await; cancelling its scope poisons
  // the barrier, so the task is released (with CancelledError), never
  // stranded.
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Blocking,
              .workers = 2});
  rt.root([] {
    BarrierDomain domain;
    CheckedBarrier& bar = domain.create_barrier();
    bar.register_party();  // the root: registered but never arrives
    std::atomic<bool> entered{false};
    CancellationScope scope;
    auto member = async([&bar, &entered] {
      bar.register_party();
      entered.store(true, std::memory_order_release);
      (void)bar.await();  // blocks: the root never arrives
    });
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    scope.cancel(std::make_exception_ptr(std::runtime_error("tear down")));
    EXPECT_THROW(member.join(), CancelledError);
    EXPECT_TRUE(bar.poisoned());
    // The poison is sticky: later operations fail fast too.
    EXPECT_THROW((void)bar.await(), CancelledError);
  });
}

TEST(Cancellation, ConfigCancelOnFaultCancelsTheWholeRuntime) {
  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.scheduler = SchedulerMode::Cooperative;
  cfg.workers = 1;
  cfg.cancel_on_fault = true;
  Runtime rt(cfg);
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    auto failing = async([]() -> int {
      throw std::runtime_error("fatal");
    });
    std::vector<Future<int>> rest;
    for (int i = 0; i < 4; ++i) rest.push_back(async([] { return 1; }));
    EXPECT_THROW(failing.get(), std::runtime_error);
    for (auto& f : rest) EXPECT_THROW((void)f.get(), CancelledError);
    // The root scope is the runtime: even the root's spawns now fault.
    EXPECT_THROW(async([] { return 1; }), CancelledError);
    pin.release.store(true, std::memory_order_release);
    // pin.blocker was spawned under the (now cancelled) root scope; its
    // join surfaces the cancellation rather than blocking.
    try {
      pin.blocker.join();
    } catch (const CancelledError&) {
    }
  });
}

TEST(Cancellation, CancelAllStopsPendingWork) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([&rt] {
    WorkerPin pin;
    pin.pin();
    std::vector<Future<int>> fs;
    for (int i = 0; i < 4; ++i) fs.push_back(async([] { return 1; }));
    rt.cancel_all(std::make_exception_ptr(std::runtime_error("shutdown")));
    for (auto& f : fs) EXPECT_THROW((void)f.get(), CancelledError);
    pin.release.store(true, std::memory_order_release);
    try {
      pin.blocker.join();
    } catch (const CancelledError&) {
    }
  });
}

TEST(Cancellation, CooperativeFlagAndCheckpointInRunningTask) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Blocking,
              .workers = 2});
  rt.root([] {
    // (a) A running task that polls cancel_requested() can finish cleanly.
    // The scope is closed before (b): a still-open cancelled scope rejects
    // any new spawn, the owner's included.
    {
      std::atomic<bool> started{false};
      CancellationScope scope;
      auto polite = async([&started]() -> int {
        started.store(true, std::memory_order_release);
        while (!cancel_requested()) std::this_thread::yield();
        return 42;  // observed the flag, wrapped up normally
      });
      while (!started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      scope.cancel();
      EXPECT_EQ(polite.get(), 42);
    }

    // (b) check_cancelled() turns the flag into a CancelledError.
    {
      std::atomic<bool> started2{false};
      CancellationScope scope2;
      auto checked = async([&started2]() -> int {
        started2.store(true, std::memory_order_release);
        for (;;) {
          check_cancelled();
          std::this_thread::yield();
        }
      });
      while (!started2.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      scope2.cancel();
      EXPECT_THROW((void)checked.get(), CancelledError);
    }
  });
}

TEST(Cancellation, FinishScopeCancelSiblingsOnFault) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .scheduler = SchedulerMode::Cooperative,
              .workers = 1});
  rt.root([] {
    WorkerPin pin;
    pin.pin();
    FinishScope fs{FinishScope::CancelSiblingsOnFault{}};
    fs.spawn([] { throw std::runtime_error("finish fault"); });
    std::atomic<int> ran{0};
    for (int i = 0; i < 6; ++i) {
      fs.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // await() drains everything (cancelled stragglers included) and then
    // rethrows the ORIGINATING fault, not a CancelledError.
    bool threw_origin = false;
    try {
      fs.await();
    } catch (const CancelledError&) {
      ADD_FAILURE() << "await surfaced the cancellation, not the origin";
    } catch (const std::runtime_error&) {
      threw_origin = true;
    }
    EXPECT_TRUE(threw_origin);
    ASSERT_NE(fs.cancellation(), nullptr);
    EXPECT_TRUE(fs.cancellation()->cancelled());
    EXPECT_EQ(fs.cancellation()->tasks_cancelled(), 6u);
    EXPECT_EQ(ran.load(), 0);  // none of the cancelled siblings ran
    pin.drain();
  });
}

TEST(Cancellation, HelpersAreNoOpsOutsideTasks) {
  EXPECT_FALSE(cancel_requested());
  EXPECT_NO_THROW(check_cancelled());
}

}  // namespace
}  // namespace tj::runtime
