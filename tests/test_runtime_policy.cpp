// Integration of policies with the runtime: which join patterns each policy
// admits, fault behaviour, fallback filtering, and the evaluation counters.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/concurrent_queue.hpp"

namespace tj::runtime {
namespace {

using core::PolicyChoice;

class PolicyRuntime : public ::testing::TestWithParam<PolicyChoice> {};

TEST_P(PolicyRuntime, ParentJoinsChildrenIsUniversallyValid) {
  Runtime rt({.policy = GetParam()});
  const int v = rt.root([] {
    auto a = async([] { return 1; });
    auto b = async([] { return 2; });
    return a.get() + b.get();
  });
  EXPECT_EQ(v, 3);
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST_P(PolicyRuntime, YoungerSiblingJoinsOlderIsUniversallyValid) {
  Runtime rt({.policy = GetParam()});
  const int v = rt.root([] {
    auto older = async([] { return 10; });
    auto younger = async([older] { return older.get() + 5; });
    return younger.get();
  });
  EXPECT_EQ(v, 15);
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyRuntime,
                         ::testing::Values(PolicyChoice::None,
                                           PolicyChoice::TJ_GT,
                                           PolicyChoice::TJ_JP,
                                           PolicyChoice::TJ_SP,
                                           PolicyChoice::KJ_VC,
                                           PolicyChoice::KJ_SS,
                                           PolicyChoice::CycleOnly));

class TjRuntime : public ::testing::TestWithParam<PolicyChoice> {};

TEST_P(TjRuntime, GrandchildJoinAdmittedOutright) {
  // The Sec. 2.3 behaviour: the root joins a grandchild it never "learned".
  Runtime rt({.policy = GetParam()});
  const int v = rt.root([] {
    ConcurrentQueue<Future<int>> q;
    auto child = async([&q] {
      q.push(async([] { return 21; }));
      return 0;
    });
    child.join();
    auto grand = q.poll();
    return grand->get() + 21;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST_P(TjRuntime, MapReducePatternAdmittedOutright) {
  // Listing 2's shape, scaled down.
  Runtime rt({.policy = GetParam()});
  const long v = rt.root([] {
    constexpr int kN = 16;
    std::vector<std::atomic<const Future<long>*>> mappers(kN);
    std::vector<Future<long>> storage(kN);
    auto spawner = async([&] {
      for (int i = 0; i < kN; ++i) {
        storage[i] = async([i] { return static_cast<long>(i); });
        mappers[i].store(&storage[i], std::memory_order_release);
      }
    });
    auto reducer = async([&] {
      long acc = 0;
      for (int i = 0; i < kN; ++i) {
        const Future<long>* f;
        while ((f = mappers[i].load(std::memory_order_acquire)) == nullptr) {
          std::this_thread::yield();
        }
        acc += f->get();
      }
      return acc;
    });
    const long acc = reducer.get();
    spawner.join();
    return acc;
  });
  EXPECT_EQ(v, 16L * 15 / 2);
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u)
      << "TJ must admit the map-reduce joins without rejection";
}

INSTANTIATE_TEST_SUITE_P(TjVariants, TjRuntime,
                         ::testing::Values(PolicyChoice::TJ_GT,
                                           PolicyChoice::TJ_JP,
                                           PolicyChoice::TJ_SP));

class KjRuntime : public ::testing::TestWithParam<PolicyChoice> {};

TEST_P(KjRuntime, GrandchildJoinIsRejectedButClearedByFallback) {
  Runtime rt({.policy = GetParam()});
  const int v = rt.root([] {
    ConcurrentQueue<Future<int>> q;
    auto child = async([&q] {
      q.push(async([] { return 21; }));
      return 0;
    });
    // Busy-wait for the grandchild's Future WITHOUT joining the child, so
    // the root provably lacks KJ knowledge of the grandchild.
    std::optional<Future<int>> grand;
    while (!(grand = q.poll()).has_value()) std::this_thread::yield();
    const int g = grand->get();  // KJ-rejected; fallback clears it
    child.join();
    return g + 21;
  });
  EXPECT_EQ(v, 42);
  const auto s = rt.gate_stats();
  EXPECT_GE(s.policy_rejections, 1u);
  EXPECT_GE(s.false_positives, 1u);
  EXPECT_EQ(s.deadlocks_averted, 0u);
}

TEST_P(KjRuntime, ThrowModeRaisesPolicyViolation) {
  Runtime rt({.policy = GetParam(), .fault = core::FaultMode::Throw});
  const bool faulted = rt.root([] {
    ConcurrentQueue<Future<int>> q;
    auto child = async([&q] {
      q.push(async([] { return 1; }));
      return 0;
    });
    std::optional<Future<int>> grand;
    while (!(grand = q.poll()).has_value()) std::this_thread::yield();
    bool threw = false;
    try {
      (void)grand->get();
    } catch (const PolicyViolationError&) {
      threw = true;
    }
    child.join();
    if (threw) grand->join();  // after learning via child, still rejected? no:
    return threw;
  });
  EXPECT_TRUE(faulted);
}

INSTANTIATE_TEST_SUITE_P(KjVariants, KjRuntime,
                         ::testing::Values(PolicyChoice::KJ_VC,
                                           PolicyChoice::KJ_SS));

TEST(PolicyFault, CrossSiblingJoinsAvertDeadlock) {
  // The deadlock_recovery example's scenario, asserted.
  Runtime rt({.policy = PolicyChoice::TJ_SP, .workers = 4});
  const int total = rt.root([] {
    std::atomic<const Future<int>*> slot1{nullptr};
    std::atomic<const Future<int>*> slot2{nullptr};
    auto cross = [](std::atomic<const Future<int>*>& other) {
      const Future<int>* f;
      while ((f = other.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return f->get() + 1;
      } catch (const DeadlockAvoidedError&) {
        return 100;
      }
    };
    Future<int> t1 = async([&slot2, &cross] { return cross(slot2); });
    Future<int> t2 = async([&slot1, &cross] { return cross(slot1); });
    slot1.store(&t1, std::memory_order_release);
    slot2.store(&t2, std::memory_order_release);
    return t1.get() + t2.get();
  });
  EXPECT_EQ(total, 201);  // one fallback (100) + its successor (101)
  EXPECT_GE(rt.gate_stats().deadlocks_averted, 1u);
}

TEST(PolicyFault, SelfJoinIsAvertedUnderTj) {
  Runtime rt({.policy = PolicyChoice::TJ_SP});
  const bool caught = rt.root([] {
    std::atomic<const Future<int>*> self{nullptr};
    Future<int> f = async([&self]() -> int {
      const Future<int>* me;
      while ((me = self.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return me->get();
      } catch (const DeadlockAvoidedError&) {
        return -1;
      }
    });
    self.store(&f, std::memory_order_release);
    return f.get() == -1;
  });
  EXPECT_TRUE(caught);
}

TEST(PolicyFault, CycleOnlyAvertsRealDeadlocksToo) {
  Runtime rt({.policy = PolicyChoice::CycleOnly, .workers = 4});
  const int total = rt.root([] {
    std::atomic<const Future<int>*> slot1{nullptr};
    std::atomic<const Future<int>*> slot2{nullptr};
    auto cross = [](std::atomic<const Future<int>*>& other) {
      const Future<int>* f;
      while ((f = other.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return f->get() + 1;
      } catch (const DeadlockAvoidedError&) {
        return 100;
      }
    };
    Future<int> t1 = async([&slot2, &cross] { return cross(slot2); });
    Future<int> t2 = async([&slot1, &cross] { return cross(slot1); });
    slot1.store(&t1, std::memory_order_release);
    slot2.store(&t2, std::memory_order_release);
    return t1.get() + t2.get();
  });
  EXPECT_EQ(total, 201);
  EXPECT_GE(rt.gate_stats().deadlocks_averted, 1u);
}

TEST(PolicyStats, JoinsCheckedCountsEveryGet) {
  Runtime rt({.policy = PolicyChoice::TJ_SP});
  rt.root([] {
    auto f = async([] { return 1; });
    f.join();
    f.join();
    f.join();
  });
  EXPECT_EQ(rt.gate_stats().joins_checked, 3u);
}

TEST(PolicyStats, VerifierBytesReportedPerPolicy) {
  for (PolicyChoice p : {PolicyChoice::TJ_SP, PolicyChoice::KJ_VC}) {
    Runtime rt({.policy = p});
    rt.root([] {
      std::vector<Future<int>> fs;
      for (int i = 0; i < 50; ++i) fs.push_back(async([] { return 0; }));
      for (auto& f : fs) f.join();
    });
    EXPECT_GT(rt.policy_peak_bytes(), 0u) << core::to_string(p);
  }
}

}  // namespace
}  // namespace tj::runtime
