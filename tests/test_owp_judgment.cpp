// Ownership-policy judgment: unit semantics of the offline reference
// (owner tracking, frozen obligation edges, await/join cycle rejection),
// agreement between the *online* OwpVerifier and the offline judgment on
// random and exhaustively enumerated promise traces, and the soundness
// cross-check that OWP-valid traces are extended-deadlock-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/owp_replay.hpp"
#include "trace/deadlock.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/trace.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace tj::trace {
namespace {

TEST(OwpJudgment, MakerOwnsAndFulfillClears) {
  OwpJudgment j;
  j.push(init(0));
  j.push(make(0, 1));
  EXPECT_EQ(j.owner_of(1), std::optional<TaskId>(0));
  EXPECT_TRUE(j.valid_fulfill(0, 1));
  EXPECT_FALSE(j.valid_fulfill(3, 1));  // not the owner
  j.push(fulfill(0, 1));
  EXPECT_EQ(j.owner_of(1), std::nullopt);
  EXPECT_TRUE(j.fulfilled(1));
  EXPECT_FALSE(j.valid_fulfill(0, 1));  // single assignment
}

TEST(OwpJudgment, TransferMovesObligation) {
  OwpJudgment j;
  j.push(init(0));
  j.push(fork(0, 1));
  j.push(make(0, 0));
  EXPECT_TRUE(j.valid_transfer(0, 1, 0));
  EXPECT_FALSE(j.valid_transfer(1, 0, 0));  // only the owner transfers
  j.push(transfer(0, 1, 0));
  EXPECT_EQ(j.owner_of(0), std::optional<TaskId>(1));
  EXPECT_FALSE(j.valid_fulfill(0, 0));
  EXPECT_TRUE(j.valid_fulfill(1, 0));
}

TEST(OwpJudgment, AwaitingYourOwnPromiseIsInvalid) {
  OwpJudgment j;
  j.push(init(0));
  j.push(make(0, 0));
  EXPECT_FALSE(j.valid_await(0, 0));  // reaches() is reflexive
  j.push(fulfill(0, 0));
  EXPECT_TRUE(j.valid_await(0, 0));  // fulfilled: never blocks
}

TEST(OwpJudgment, ObligationCycleThroughTwoPromises) {
  // Task 1 awaits p0 (owned by 2): edge 1 → 2. Task 2 awaiting p1 (owned
  // by 1) would close the cycle 2 → 1 → 2.
  OwpJudgment j;
  j.push(init(0));
  j.push(fork(0, 1));
  j.push(fork(0, 2));
  j.push(make(1, 1));
  j.push(make(2, 0));
  EXPECT_TRUE(j.valid_await(1, 0));
  j.push(await(1, 0));
  EXPECT_FALSE(j.valid_await(2, 1));
}

TEST(OwpJudgment, EdgesAreFrozenAtInsertionTimeOwner) {
  // 1 awaits p0 while 2 owns it (edge 1 → 2). Transferring p0 to task 3
  // afterwards must NOT rewrite that edge: 2 → 1 obligations still cycle,
  // 3 → 1 ones do not.
  OwpJudgment j;
  j.push(init(0));
  j.push(fork(0, 1));
  j.push(fork(0, 2));
  j.push(fork(0, 3));
  j.push(make(2, 0));
  j.push(await(1, 0));
  j.push(transfer(2, 3, 0));
  j.push(make(1, 1));
  EXPECT_FALSE(j.valid_await(2, 1));  // 2: H still has 1 → 2
  EXPECT_TRUE(j.valid_await(3, 1));   // 3 inherited no history
}

TEST(OwpJudgment, JoinsAreAwaitsOnCompletionPromises) {
  OwpJudgment j;
  j.push(init(0));
  j.push(fork(0, 1));
  j.push(join(0, 1));  // edge 0 → 1
  EXPECT_FALSE(j.valid_join(1, 0));  // 1 joining 0 would close the cycle
  // ...and the same through a promise: p owned by 0, awaited by 1 would
  // add 1 → 0, closing the same cycle.
  j.push(make(0, 0));
  EXPECT_FALSE(j.valid_await(1, 0));
}

// ---------------------------------------------------------------------------
// Online / offline agreement.

// Feeds `t` action-by-action to the online verifier and the offline
// judgment, requiring the same verdict for every policy-relevant action.
void expect_agreement(const Trace& t, std::uint64_t seed) {
  core::OwpTraceReplay online;
  OwpJudgment offline;
  std::size_t idx = 0;
  for (const Action& a : t.actions()) {
    bool offline_ok = true;
    switch (a.kind) {
      case ActionKind::Join:
        offline_ok = offline.valid_join(a.actor, a.target);
        break;
      case ActionKind::Await:
        offline_ok = offline.valid_await(a.actor, a.promise);
        break;
      case ActionKind::Fulfill:
        offline_ok = offline.valid_fulfill(a.actor, a.promise);
        break;
      case ActionKind::Transfer:
        offline_ok = offline.valid_transfer(a.actor, a.target, a.promise);
        break;
      default:
        break;
    }
    const bool online_ok = online.feed(a);
    ASSERT_EQ(online_ok, offline_ok)
        << "disagreement at action " << idx << " of seed-" << seed
        << " trace:\n"
        << t;
    offline.push(a);
    ++idx;
  }
}

TEST(OwpAgreement, RandomAdversarialTraces) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    expect_agreement(random_promise_trace(6, 4, 24, seed), seed);
  }
}

TEST(OwpAgreement, RandomValidTraces) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Trace t = random_owp_valid_trace(5, 3, 20, seed);
    ASSERT_TRUE(is_owp_valid(t)) << "generator emitted OWP-invalid trace:\n"
                                 << t;
    expect_agreement(t, seed);
  }
}

// Exhaustive small-scope agreement: every sequence of promise/join ops over
// a fixed fork skeleton, checked step by step (online vs offline) via full
// prefix replays.
void exhaust(std::vector<Action>& prefix, const std::vector<Action>& skeleton,
             std::uint32_t n_tasks, std::uint32_t n_promises,
             std::uint32_t depth, std::uint64_t* checked) {
  {
    Trace t(skeleton);
    for (const Action& a : prefix) t.push(a);
    expect_agreement(t, /*seed=*/depth);
    ++*checked;
  }
  if (depth == 0) return;
  const auto made = [&](PromiseId p) {
    for (const Action& a : prefix) {
      if (a.kind == ActionKind::Make && a.promise == p) return true;
    }
    return false;
  };
  for (TaskId a = 0; a < n_tasks; ++a) {
    for (PromiseId p = 0; p < n_promises; ++p) {
      if (!made(p)) {
        prefix.push_back(make(a, p));
        exhaust(prefix, skeleton, n_tasks, n_promises, depth - 1, checked);
        prefix.pop_back();
        continue;  // ops on an unmade promise are structurally invalid
      }
      for (const Action& op : {fulfill(a, p), await(a, p)}) {
        prefix.push_back(op);
        exhaust(prefix, skeleton, n_tasks, n_promises, depth - 1, checked);
        prefix.pop_back();
      }
      for (TaskId b = 0; b < n_tasks; ++b) {
        if (b == a) continue;
        prefix.push_back(transfer(a, b, p));
        exhaust(prefix, skeleton, n_tasks, n_promises, depth - 1, checked);
        prefix.pop_back();
      }
    }
    for (TaskId b = 0; b < n_tasks; ++b) {
      if (b == a) continue;
      prefix.push_back(join(a, b));
      exhaust(prefix, skeleton, n_tasks, n_promises, depth - 1, checked);
      prefix.pop_back();
    }
  }
}

TEST(OwpAgreement, ExhaustiveTwoTasksDepthFour) {
  const std::vector<Action> skeleton = {init(0), fork(0, 1)};
  std::vector<Action> prefix;
  std::uint64_t checked = 0;
  exhaust(prefix, skeleton, /*n_tasks=*/2, /*n_promises=*/2, /*depth=*/4,
          &checked);
  EXPECT_GT(checked, 5000u);
}

TEST(OwpAgreement, ExhaustiveThreeTasksDepthThree) {
  const std::vector<Action> skeleton = {init(0), fork(0, 1), fork(0, 2)};
  std::vector<Action> prefix;
  std::uint64_t checked = 0;
  exhaust(prefix, skeleton, /*n_tasks=*/3, /*n_promises=*/2, /*depth=*/3,
          &checked);
  EXPECT_GT(checked, 3000u);
}

// ---------------------------------------------------------------------------
// Soundness cross-check against the extended deadlock definition.

TEST(OwpSoundness, ValidTracesAreDeadlockFree) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    const Trace t = random_owp_valid_trace(6, 4, 24, seed);
    EXPECT_FALSE(contains_deadlock(t))
        << "OWP-valid trace contains a deadlock (seed " << seed << "):\n"
        << t;
  }
}

TEST(OwpSoundness, DeadlockingPromiseTraceIsOwpInvalid) {
  // The canonical cross-handoff: each task awaits the promise the *other*
  // task owns. The second await closes the obligation cycle.
  Trace t({init(0), fork(0, 1), fork(0, 2), make(1, 0), make(2, 1),
           await(1, 1), await(2, 0)});
  EXPECT_TRUE(contains_deadlock(t));
  EXPECT_FALSE(is_owp_valid(t));
}

}  // namespace
}  // namespace tj::trace
