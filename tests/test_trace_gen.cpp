// Tests for the trace/tree generators: shape guarantees, policy validity of
// generated traces, and determinism.

#include <gtest/gtest.h>

#include "trace/fork_tree.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace tj::trace {
namespace {

TEST(TraceGen, ChainShape) {
  const Trace t = chain_trace(8);
  EXPECT_EQ(t.fork_count(), 7u);
  const ForkTree tree(t);
  EXPECT_EQ(tree.depth(7), 7u);
  for (TaskId i = 1; i < 8; ++i) EXPECT_EQ(tree.parent(i), i - 1);
}

TEST(TraceGen, StarShape) {
  const Trace t = star_trace(8);
  const ForkTree tree(t);
  for (TaskId i = 1; i < 8; ++i) EXPECT_EQ(tree.parent(i), 0u);
}

TEST(TraceGen, BalancedTreeTaskCount) {
  const Trace t = balanced_tree_trace(/*arity=*/2, /*depth=*/4);
  EXPECT_EQ(t.fork_count(), 30u);  // 2+4+8+16
  const ForkTree tree(t);
  EXPECT_EQ(tree.children(0).size(), 2u);
  // Every internal node has exactly two children.
  for (TaskId v = 0; v < 15; ++v) {
    EXPECT_EQ(tree.children(v).size(), 2u) << "v=" << v;
  }
}

TEST(TraceGen, BalancedTreeDepths) {
  const Trace t = balanced_tree_trace(3, 3);
  const ForkTree tree(t);
  std::size_t max_depth = 0;
  for (TaskId v = 0; v < tree.task_count(); ++v) {
    max_depth = std::max<std::size_t>(max_depth, tree.depth(v));
  }
  EXPECT_EQ(max_depth, 3u);
}

TEST(TraceGen, RandomTreeIsStructurallyValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    EXPECT_TRUE(is_structurally_valid(random_tree_trace(50, seed, 0.5)));
  }
}

TEST(TraceGen, RandomTreeDeterministicPerSeed) {
  EXPECT_EQ(random_tree_trace(40, 9, 0.5), random_tree_trace(40, 9, 0.5));
  EXPECT_NE(random_tree_trace(40, 9, 0.5), random_tree_trace(40, 10, 0.5));
}

TEST(TraceGen, DepthBiasOneIsAChain) {
  const Trace t = random_tree_trace(20, 3, 1.0);
  const ForkTree tree(t);
  EXPECT_EQ(tree.depth(19), 19u);
}

TEST(TraceGen, TjTracesAreTjValid) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Trace t = random_tj_valid_trace(40, 50, seed, 0.4);
    EXPECT_TRUE(is_tj_valid(t)) << "seed=" << seed;
  }
}

TEST(TraceGen, TjTracesContainJoins) {
  const Trace t = random_tj_valid_trace(40, 50, /*seed=*/1, 0.4);
  EXPECT_GT(t.join_count(), 25u);  // most requested joins should be emitted
}

TEST(TraceGen, KjTracesAreKjValid) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const Trace t = random_kj_valid_trace(40, 50, seed, 0.4);
    EXPECT_TRUE(is_kj_valid(t)) << "seed=" << seed;
  }
}

TEST(TraceGen, StructuralTracesAreStructurallyValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Trace t = random_structural_trace(30, 40, seed, 0.4);
    EXPECT_TRUE(is_structurally_valid(t)) << "seed=" << seed;
    EXPECT_GT(t.join_count(), 0u);
  }
}

TEST(TraceGen, DeadlockingTraceSizes) {
  EXPECT_EQ(deadlocking_trace(1).join_count(), 1u);
  EXPECT_EQ(deadlocking_trace(4).join_count(), 4u);
  EXPECT_EQ(deadlocking_trace(0).join_count(), 1u);  // clamped to 1
}

}  // namespace
}  // namespace tj::trace
