// Unit tests for the Known Joins verifier internals: KJ-VC vector clocks and
// KJ-SS snapshot cells, including the KJ-learn hook and byte accounting.

#include <gtest/gtest.h>

#include <vector>

#include "kj/kj_ss.hpp"
#include "kj/kj_vc.hpp"

namespace tj::kj {
namespace {

template <typename V>
class KjVerifierTyped : public ::testing::Test {};

using KjImpls = ::testing::Types<KjVcVerifier, KjSsVerifier>;
TYPED_TEST_SUITE(KjVerifierTyped, KjImpls);

TYPED_TEST(KjVerifierTyped, ParentKnowsChildOnly) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* child = v.add_child(root);
  EXPECT_TRUE(v.permits_join(root, child));
  EXPECT_FALSE(v.permits_join(child, root));
  EXPECT_FALSE(v.permits_join(child, child));
}

TYPED_TEST(KjVerifierTyped, GrandchildIsAStranger) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* child = v.add_child(root);
  auto* grand = v.add_child(child);
  EXPECT_FALSE(v.permits_join(root, grand));
  EXPECT_TRUE(v.permits_join(child, grand));
}

TYPED_TEST(KjVerifierTyped, JoinLearnsKnowledge) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* child = v.add_child(root);
  auto* grand = v.add_child(child);
  v.on_join_complete(root, child);
  EXPECT_TRUE(v.permits_join(root, grand));
}

TYPED_TEST(KjVerifierTyped, InheritanceIsASnapshot) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* a = v.add_child(root);
  auto* b = v.add_child(root);  // b inherits knowledge of a
  auto* c = v.add_child(root);  // c inherits knowledge of a and b
  EXPECT_TRUE(v.permits_join(b, a));
  EXPECT_TRUE(v.permits_join(c, a));
  EXPECT_TRUE(v.permits_join(c, b));
  EXPECT_FALSE(v.permits_join(a, b));  // a existed before b
  EXPECT_FALSE(v.permits_join(b, c));
}

TYPED_TEST(KjVerifierTyped, LearnedKnowledgePropagatesToLaterChildren) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* a = v.add_child(root);
  auto* deep = v.add_child(a);
  v.on_join_complete(root, a);
  auto* late = v.add_child(root);
  EXPECT_TRUE(v.permits_join(late, deep));
}

TYPED_TEST(KjVerifierTyped, TransitiveLearningThroughChains) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* a = v.add_child(root);
  auto* b = v.add_child(a);
  auto* c = v.add_child(b);
  // a learns c from b; root learns b and c from a.
  v.on_join_complete(a, b);
  v.on_join_complete(root, a);
  EXPECT_TRUE(v.permits_join(root, b));
  EXPECT_TRUE(v.permits_join(root, c));
}

TYPED_TEST(KjVerifierTyped, ReleaseIsSafeWhileOthersHoldKnowledge) {
  TypeParam v;
  auto* root = v.add_child(nullptr);
  auto* a = v.add_child(root);
  auto* b = v.add_child(a);
  v.on_join_complete(root, a);
  v.release(a);  // a's record dies; root's learned knowledge must survive
  EXPECT_TRUE(v.permits_join(root, b));
  v.release(b);
  v.release(root);
  EXPECT_EQ(v.bytes_in_use(), 0u);
}

TEST(KjVc, ForkCostGrowsWithDepth) {
  // O(n) fork: cloning the parent's clock. In a chain every ancestor has a
  // clock component, so a deep fork copies more than a shallow one — the
  // mechanism behind Table 1's O(n) fork time and O(n²) space.
  KjVcVerifier v;
  core::PolicyNode* cur = v.add_child(nullptr);
  std::size_t before = v.bytes_in_use();
  cur = v.add_child(cur);
  const std::size_t first_delta = v.bytes_in_use() - before;
  for (int i = 0; i < 200; ++i) cur = v.add_child(cur);
  before = v.bytes_in_use();
  v.add_child(cur);
  const std::size_t late_delta = v.bytes_in_use() - before;
  EXPECT_GT(late_delta, first_delta + 100 * sizeof(std::uint32_t));
}

TEST(KjVc, MergeResizesTheJoinerClock) {
  // Joining a task with a wider clock widens the joiner's clock (KJ-learn).
  KjVcVerifier v;
  auto* root = v.add_child(nullptr);
  core::PolicyNode* deep = root;
  for (int i = 0; i < 20; ++i) deep = v.add_child(deep);
  auto* tip = v.add_child(deep);
  auto* leaf = v.add_child(tip);  // tip knows leaf
  const std::size_t before = v.bytes_in_use();
  v.on_join_complete(root, tip);  // root's 1-wide clock must widen
  EXPECT_GT(v.bytes_in_use(), before);
  // And the learned knowledge is queryable: root now knows what tip knew.
  EXPECT_TRUE(v.permits_join(root, leaf));
}

TEST(KjSs, StructuralSharingKeepsSpaceNearLinear) {
  // Snapshot sets share structure: forking n children of one parent costs
  // an O(log n) path copy each, not an O(n) set copy. Verify sub-quadratic
  // growth: doubling the child count far less than quadruples the bytes.
  auto bytes_for = [](int n) {
    KjSsVerifier v;
    auto* root = v.add_child(nullptr);
    std::vector<core::PolicyNode*> kids;
    for (int i = 0; i < n; ++i) kids.push_back(v.add_child(root));
    const std::size_t bytes = v.bytes_in_use();
    for (auto* k : kids) v.release(k);
    v.release(root);
    return bytes;
  };
  const std::size_t b1 = bytes_for(2'000);
  const std::size_t b2 = bytes_for(4'000);
  EXPECT_LT(b2, b1 * 3) << "expected near-linear growth, got " << b1 << " -> "
                        << b2;
}

TEST(KjSs, MassJoinTeardownIsCheapAndComplete) {
  // A root that learns from 200k sequential joins: unions against its own
  // snapshots must share structure, and release must return every byte.
  KjSsVerifier v;
  auto* root = v.add_child(nullptr);
  std::vector<core::PolicyNode*> kids;
  kids.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) {
    auto* k = v.add_child(root);
    v.on_join_complete(root, k);
    kids.push_back(k);
  }
  // Spot-check the accumulated knowledge.
  EXPECT_TRUE(v.permits_join(root, kids[0]));
  EXPECT_TRUE(v.permits_join(root, kids[199'999]));
  for (auto* k : kids) v.release(k);
  v.release(root);
  EXPECT_EQ(v.bytes_in_use(), 0u);
}

TEST(KjVc, SelfKnowledgeOnlyThroughLearning) {
  // Literal Definition 4.1 semantics: a task can come to "know itself" only
  // by joining a task that knows it.
  KjVcVerifier v;
  auto* root = v.add_child(nullptr);
  auto* a = v.add_child(root);
  auto* b = v.add_child(root);  // b knows a
  EXPECT_FALSE(v.permits_join(a, a));
  v.on_join_complete(a, b);  // a learns b's knowledge, which includes a
  EXPECT_TRUE(v.permits_join(a, a));
}

}  // namespace
}  // namespace tj::kj
