// Contention-observatory tests: the profiled lock wrappers' cost contract
// (registry-inert when off, counter-only when uncontended, wait/hold
// histograms when contended), multithreaded wait attribution to the right
// site, the snapshot ordering invariant under concurrent hammering, the
// worker-state board, and the RuntimeSnapshot / telemetry-sample views of
// both. Every suite name starts with "Contention" so `ctest -R Contention`
// (the CI tsan stage) runs exactly this file — the wrappers and the state
// board are the newest always-on concurrency code in the runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/contention.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "runtime/api.hpp"
#include "runtime/introspect.hpp"
#include "runtime/runtime.hpp"

namespace tj {
namespace {

using obs::ContentionEnableGuard;
using obs::ContentionRegistry;
using obs::ProfiledMutex;
using obs::ProfiledSharedMutex;
using obs::SiteSnapshot;
using obs::WorkerSlot;
using obs::WorkerState;
using obs::WorkerStateBoard;

/// Registry lookup by name; sites are process-cumulative, so tests use
/// unique site names and (where needed) diff snapshots.
bool find_site(const std::string& name, SiteSnapshot& out) {
  for (SiteSnapshot& s : ContentionRegistry::instance().snapshot()) {
    if (s.name == name) {
      out = std::move(s);
      return true;
    }
  }
  return false;
}

// --- the cost contract -----------------------------------------------------

TEST(ContentionWrapper, OffIsRegistryInert) {
  ASSERT_FALSE(obs::contention_profiling_enabled())
      << "another retainer is live; the off-contract cannot be tested";
  ProfiledMutex mu("test.inert");
  for (int i = 0; i < 100; ++i) {
    std::scoped_lock lk(mu);
  }
  // No site was interned: the wrapper never touched the registry.
  EXPECT_EQ(mu.site(), nullptr);
  SiteSnapshot snap;
  EXPECT_FALSE(find_site("test.inert", snap));
}

TEST(ContentionWrapper, UncontendedIsCounterOnly) {
  ContentionEnableGuard on(true);
  ProfiledMutex mu("test.uncontended");
  for (int i = 0; i < 50; ++i) {
    std::scoped_lock lk(mu);
  }
  SiteSnapshot snap;
  ASSERT_TRUE(find_site("test.uncontended", snap));
  EXPECT_EQ(snap.uncontended, 50u);
  EXPECT_EQ(snap.contended, 0u);
  EXPECT_EQ(snap.acquisitions, 50u);
  // No clock was read: the wait and hold histograms never recorded.
  EXPECT_EQ(snap.wait.count, 0u);
  EXPECT_EQ(snap.hold.count, 0u);
}

TEST(ContentionWrapper, SitesWithOneNameShareOneSlot) {
  ContentionEnableGuard on(true);
  ProfiledMutex a("test.shared-site");
  ProfiledMutex b("test.shared-site");
  {
    std::scoped_lock lk(a);
  }
  {
    std::scoped_lock lk(b);
  }
  SiteSnapshot snap;
  ASSERT_TRUE(find_site("test.shared-site", snap));
  EXPECT_EQ(snap.acquisitions, 2u);
  EXPECT_EQ(a.site(), b.site());
}

// --- contended attribution -------------------------------------------------

TEST(ContentionWrapper, WaitsLandOnTheContendedSiteOnly) {
  ContentionEnableGuard on(true);
  ProfiledMutex hot("test.hot");
  ProfiledMutex cold("test.cold");

  // Main holds `hot` while 4 threads block on it; `cold` is only ever
  // locked from this thread, so any contention recorded there is a
  // misattribution.
  constexpr int kBlockers = 4;
  std::atomic<int> arrived{0};
  hot.lock();
  std::vector<std::thread> threads;
  threads.reserve(kBlockers);
  for (int i = 0; i < kBlockers; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      std::scoped_lock lk(hot);
    });
  }
  while (arrived.load() != kBlockers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 20; ++i) {
    std::scoped_lock lk(cold);
  }
  hot.unlock();
  for (std::thread& t : threads) t.join();

  SiteSnapshot h, c;
  ASSERT_TRUE(find_site("test.hot", h));
  ASSERT_TRUE(find_site("test.cold", c));
  EXPECT_EQ(h.acquisitions, 1u + kBlockers);
  EXPECT_GE(h.contended, 1u);  // at least whoever blocked on main's hold
  EXPECT_EQ(h.wait.count, h.contended);  // quiesced: exact
  EXPECT_GT(h.wait.sum_ns, 0u);
  EXPECT_EQ(c.contended, 0u);
  EXPECT_EQ(c.uncontended, 20u);
  EXPECT_EQ(h.uncontended + h.contended, h.acquisitions);
}

TEST(ContentionWrapper, LongContendedHoldIsRecordedAtUnlock) {
  ContentionEnableGuard on(true);
  ProfiledMutex mu("test.long-hold");
  std::atomic<bool> locked{false};
  // Thread B's acquisition is contended (A holds the lock when B arrives);
  // B then holds well past kLongHoldNs, which must land in hold_ns.
  mu.lock();
  std::thread b([&] {
    std::scoped_lock lk(mu);  // blocks until A releases -> contended
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  mu.unlock();
  b.join();
  (void)locked;

  SiteSnapshot snap;
  ASSERT_TRUE(find_site("test.long-hold", snap));
  ASSERT_GE(snap.contended, 1u);
  EXPECT_GE(snap.hold.count, 1u);
  EXPECT_GE(snap.hold.max_ns, obs::kLongHoldNs);
}

TEST(ContentionWrapper, SharedMutexCountsSharedAndExclusive) {
  ContentionEnableGuard on(true);
  ProfiledSharedMutex mu("test.rw");
  for (int i = 0; i < 10; ++i) {
    std::shared_lock lk(mu);
  }
  for (int i = 0; i < 3; ++i) {
    std::scoped_lock lk(mu);
  }
  SiteSnapshot snap;
  ASSERT_TRUE(find_site("test.rw", snap));
  EXPECT_EQ(snap.acquisitions, 13u);
  EXPECT_EQ(snap.contended, 0u);
}

// --- the snapshot ordering invariant under fire ----------------------------

TEST(ContentionWrapper, SnapshotInvariantHoldsUnderConcurrentHammering) {
  ContentionEnableGuard on(true);
  ProfiledMutex mu("test.hammer");
  std::atomic<bool> stop{false};
  std::uint64_t guarded = 0;  // plain: proves mutual exclusion under tsan

  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::scoped_lock lk(mu);
        ++guarded;
      }
    });
  }
  // Reader thread: at every instant, wait.count <= contended and
  // acquisitions == uncontended + contended (acquisitions is derived at
  // snapshot time from a consistent read order).
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      SiteSnapshot snap;
      if (find_site("test.hammer", snap)) {
        EXPECT_LE(snap.wait.count, snap.contended);
        EXPECT_EQ(snap.uncontended + snap.contended, snap.acquisitions);
      }
      std::this_thread::yield();
    }
  });
  reader.join();
  stop.store(true);
  std::uint64_t expected = 0;
  for (std::thread& t : writers) t.join();
  {
    std::scoped_lock lk(mu);
    expected = guarded;
  }
  SiteSnapshot snap;
  ASSERT_TRUE(find_site("test.hammer", snap));
  EXPECT_EQ(snap.acquisitions, expected + 1);  // writers + the final read
  EXPECT_EQ(snap.wait.count, snap.contended);  // quiesced: exact
}

// --- worker-state board ----------------------------------------------------

TEST(ContentionWorkers, ScopedStateNestsAndRestores) {
  ContentionEnableGuard on(true);
  WorkerStateBoard board;
  WorkerSlot* slot = board.register_worker();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->current(), WorkerState::Idle);
  {
    obs::ScopedWorkerState running(slot, WorkerState::Running);
    EXPECT_EQ(slot->current(), WorkerState::Running);
    {
      obs::ScopedWorkerState blocked(slot, WorkerState::BlockedJoin);
      EXPECT_EQ(slot->current(), WorkerState::BlockedJoin);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(slot->current(), WorkerState::Running);
  }
  EXPECT_EQ(slot->current(), WorkerState::Idle);

  const WorkerStateBoard::Totals t = board.totals();
  EXPECT_EQ(t.workers, 1u);
  EXPECT_GE(t.transitions, 4u);
  EXPECT_GT(
      t.state_ns[static_cast<std::size_t>(WorkerState::BlockedJoin)], 0u);
  // Null slot: the bracket is a no-op, not a crash (non-worker threads).
  obs::ScopedWorkerState noop(nullptr, WorkerState::Running);
}

TEST(ContentionWorkers, TotalsCountCurrentStatesAcrossSlots) {
  ContentionEnableGuard on(true);
  WorkerStateBoard board;
  WorkerSlot* a = board.register_worker();
  WorkerSlot* b = board.register_worker();
  a->set_state(WorkerState::Running);
  b->set_state(WorkerState::BlockedLock);
  const WorkerStateBoard::Totals t = board.totals();
  EXPECT_EQ(t.workers, 2u);
  EXPECT_EQ(t.current[static_cast<std::size_t>(WorkerState::Running)], 1u);
  EXPECT_EQ(t.current[static_cast<std::size_t>(WorkerState::BlockedLock)],
            1u);
  std::uint64_t census = 0;
  for (std::uint64_t c : t.current) census += c;
  EXPECT_EQ(census, 2u);
}

// --- runtime + telemetry integration ---------------------------------------

runtime::Config observed() {
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.obs.enabled = true;
  cfg.workers = 2;
  return cfg;
}

TEST(ContentionRuntime, SnapshotCarriesLockSitesAndWorkerBoard) {
  runtime::Runtime rt(observed());
  rt.root([] {
    std::vector<runtime::Future<int>> fs;
    for (int i = 0; i < 16; ++i) {
      fs.push_back(runtime::async([i] { return i; }));
    }
    int acc = 0;
    for (auto& f : fs) acc += f.get();
    return acc;
  });
  const runtime::RuntimeSnapshot s = runtime::snapshot(rt);
  EXPECT_TRUE(s.contention_enabled);
  ASSERT_FALSE(s.lock_sites.empty());
  bool saw_queue = false;
  for (const SiteSnapshot& site : s.lock_sites) {
    EXPECT_EQ(site.uncontended + site.contended, site.acquisitions)
        << site.name;
    saw_queue = saw_queue || site.name == "sched.queue";
  }
  EXPECT_TRUE(saw_queue) << "scheduler queue must be a profiled site";
  EXPECT_EQ(s.workers.workers, 2u);
  EXPECT_GT(s.workers.transitions, 0u);
  // The rendered form carries both new tables.
  const std::string text = s.to_string();
  EXPECT_NE(text.find("locks:"), std::string::npos);
  EXPECT_NE(text.find("workers:"), std::string::npos);
}

TEST(ContentionRuntime, ObsOffRuntimeDoesNotRetainProfiling) {
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.obs.enabled = false;
  cfg.workers = 2;
  runtime::Runtime rt(cfg);
  EXPECT_FALSE(obs::contention_profiling_enabled());
  rt.root([] { return runtime::async([] { return 1; }).get(); });
  const runtime::RuntimeSnapshot s = runtime::snapshot(rt);
  EXPECT_FALSE(s.contention_enabled);
}

TEST(ContentionTelemetry, FinalSampleReconcilesWithTheRegistry) {
  const std::string path = ::testing::TempDir() + "contention_reconcile.jsonl";
  {
    runtime::Runtime rt(observed());
    obs::TelemetryConfig tcfg;
    tcfg.jsonl_path = path;
    tcfg.cadence_ms = 10;
    obs::TelemetrySink sink(rt, tcfg);
    sink.start();
    rt.root([] {
      std::vector<runtime::Future<int>> fs;
      for (int i = 0; i < 32; ++i) {
        fs.push_back(runtime::async([i] { return i; }));
      }
      int acc = 0;
      for (auto& f : fs) acc += f.get();
      return acc;
    });
    sink.stop();  // takes the final synchronous sample while quiesced
  }
  namespace slo = obs::slo;
  std::vector<slo::Json> samples = slo::parse_jsonl_file(path);
  ASSERT_FALSE(samples.empty());
  const slo::Json& last = samples.back();
  const slo::Json* sites = last.at_path("contention.sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_TRUE(sites->is_array());
  ASSERT_FALSE(sites->array().empty());
  // Exact per-site balance in the exported stream, not just in memory:
  // acquisitions == contended + uncontended, wait.count <= contended.
  for (const slo::Json& site : sites->array()) {
    const auto num = [&site](const char* key) {
      const slo::Json* v = site.find(key);
      return v != nullptr && v->is_number() ? v->number() : -1.0;
    };
    const std::string name = site.find("site")->str();
    EXPECT_EQ(num("acquisitions"), num("contended") + num("uncontended"))
        << name;
    const slo::Json* wc = site.at_path("wait.count");
    ASSERT_NE(wc, nullptr) << name;
    EXPECT_LE(wc->number(), num("contended")) << name;
  }
  const slo::Json* workers = last.find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->find("count")->number(), 2.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tj
