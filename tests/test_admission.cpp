// Per-tenant admission control (service mode): budget isolation, cooldown
// hysteresis, cause-carrying rejections, the exact front-door reconciliation
// invariant (requests_checked == requests_admitted + requests_shed, per
// tenant admitted == released + in_flight) — standalone, wired through a
// live Runtime, under a 16-seed chaos sweep on both schedulers, and
// interacting with governor-off spawn backpressure (the
// spawn_inline_watermark contract: enforced whenever non-zero, independent
// of GovernorConfig::enabled).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/admission.hpp"
#include "runtime/api.hpp"
#include "runtime/introspect.hpp"

namespace tj::runtime {
namespace {

using core::PolicyChoice;

// A standalone controller over a bare gate: no runtime, fully deterministic.
struct BareController {
  core::JoinGate gate{PolicyChoice::None, nullptr, core::FaultMode::Fallback};
  std::size_t live_tasks = 0;
  std::size_t verifier_bytes = 0;
  AdmissionController ctl;

  explicit BareController(std::vector<TenantBudget> tenants)
      : ctl(std::move(tenants), gate, [this] { return live_tasks; },
            [this] { return verifier_bytes; }) {}
};

std::vector<TenantBudget> two_tenants() {
  TenantBudget a;
  a.name = "gold";
  a.max_in_flight = 4;
  TenantBudget b;
  b.name = "noisy";
  b.max_in_flight = 1;
  return {a, b};
}

// ---------------------------------------------------- controller basics --

TEST(Admission, TenantIndexAndBudgets) {
  BareController c(two_tenants());
  EXPECT_EQ(c.ctl.tenant_count(), 2u);
  EXPECT_EQ(c.ctl.tenant_index("gold"), 0u);
  EXPECT_EQ(c.ctl.tenant_index("noisy"), 1u);
  EXPECT_EQ(c.ctl.budget(1).max_in_flight, 1u);
  EXPECT_THROW((void)c.ctl.tenant_index("unknown"), UsageError);
  EXPECT_THROW((void)c.ctl.budget(2), UsageError);
  EXPECT_THROW((void)c.ctl.try_admit(2), UsageError);
  EXPECT_THROW(AdmissionController({}, c.gate, [] { return 0u; },
                                   [] { return 0u; }),
               UsageError);
}

TEST(Admission, InFlightBudgetIsolatesTenants) {
  BareController c(two_tenants());
  // The noisy tenant's single slot fills; its second request sheds.
  EXPECT_TRUE(c.ctl.try_admit(1).admitted);
  const auto v = c.ctl.try_admit(1);
  EXPECT_FALSE(v.admitted);
  EXPECT_EQ(v.cause, AdmissionCause::InFlightBudget);
  // Gold is untouched by noisy's saturation.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.ctl.try_admit(0).admitted);
  EXPECT_FALSE(c.ctl.try_admit(0).admitted);
  // Releases reopen exactly the freed capacity.
  c.ctl.release(1);
  EXPECT_TRUE(c.ctl.try_admit(1).admitted);
  c.ctl.release(1);
  for (int i = 0; i < 4; ++i) c.ctl.release(0);
  // Books balance: per tenant, admitted == released + in_flight.
  for (const auto& s : c.ctl.snapshot()) {
    EXPECT_EQ(s.admitted, s.released + s.in_flight) << s.name;
  }
}

TEST(Admission, SharedPressureBudgets) {
  TenantBudget t;
  t.name = "solo";
  t.max_live_tasks = 10;
  t.max_verifier_bytes = 1000;
  BareController c({t});
  EXPECT_TRUE(c.ctl.try_admit(0).admitted);
  c.live_tasks = 10;  // at the budget: over the line (>=)
  EXPECT_EQ(c.ctl.try_admit(0).cause, AdmissionCause::LiveTaskBudget);
  c.live_tasks = 0;
  c.verifier_bytes = 1000;
  EXPECT_EQ(c.ctl.try_admit(0).cause, AdmissionCause::VerifierBytesBudget);
  c.verifier_bytes = 0;
  EXPECT_TRUE(c.ctl.try_admit(0).admitted);
  c.ctl.release(0);
  c.ctl.release(0);
}

TEST(Admission, ShedThenRetryAfterCooldown) {
  TenantBudget t;
  t.name = "cool";
  t.max_in_flight = 1;
  t.shed_cooldown_ms = 60;
  BareController c({t});
  EXPECT_TRUE(c.ctl.try_admit(0).admitted);
  // Budget shed arms the cooldown...
  EXPECT_EQ(c.ctl.try_admit(0).cause, AdmissionCause::InFlightBudget);
  c.ctl.release(0);
  // ...so the retry storm is answered from the cooldown alone, even though
  // capacity is back. Cooldown sheds must NOT extend the window.
  EXPECT_EQ(c.ctl.try_admit(0).cause, AdmissionCause::Cooldown);
  EXPECT_EQ(c.ctl.try_admit(0).cause, AdmissionCause::Cooldown);
  const auto snap = c.ctl.snapshot();
  EXPECT_TRUE(snap[0].in_cooldown);
  EXPECT_EQ(snap[0].current_verdict, AdmissionCause::Cooldown);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(c.ctl.try_admit(0).admitted);  // cooldown expired, slot free
  c.ctl.release(0);
}

TEST(Admission, RejectedErrorCarriesTenantAndCause) {
  BareController c(two_tenants());
  c.ctl.admit_or_throw(1);
  try {
    c.ctl.admit_or_throw(1);
    FAIL() << "expected AdmissionRejected";
  } catch (const AdmissionRejected& e) {
    EXPECT_EQ(e.tenant(), "noisy");
    EXPECT_EQ(e.cause(), AdmissionCause::InFlightBudget);
    EXPECT_NE(std::string(e.what()).find("noisy"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("in-flight-budget"),
              std::string::npos);
  }
  c.ctl.release(1);
  // An unbalanced release is a pairing bug, loudly.
  EXPECT_THROW(c.ctl.release(1), UsageError);
}

TEST(Admission, GateStatsReconcileExactly) {
  BareController c(two_tenants());
  std::uint64_t admitted = 0, shed = 0;
  for (int i = 0; i < 50; ++i) {
    if (c.ctl.try_admit(i % 2).admitted) {
      ++admitted;
      if (i % 3 == 0) c.ctl.release(i % 2);
    } else {
      ++shed;
    }
  }
  const core::GateStats s = c.gate.stats();
  EXPECT_EQ(s.requests_checked, 50u);
  EXPECT_EQ(s.requests_checked, s.requests_admitted + s.requests_shed);
  EXPECT_EQ(s.requests_admitted, admitted);
  EXPECT_EQ(s.requests_shed, shed);
  EXPECT_EQ(c.ctl.total_shed(), shed);
}

// ------------------------------------------------------- runtime wiring --

TEST(Admission, RuntimeWiresControllerFromGovernorConfig) {
  Config cfg;
  EXPECT_EQ(Runtime(cfg).admission(), nullptr);  // no tenants → no controller

  cfg.governor.tenants = two_tenants();
  // Inline machinery: wired even with the governor's poll loop disabled.
  ASSERT_FALSE(cfg.governor.enabled);
  Runtime rt(cfg);
  ASSERT_NE(rt.admission(), nullptr);
  EXPECT_EQ(rt.admission()->tenant_count(), 2u);
  EXPECT_TRUE(rt.admission()->try_admit(0).admitted);
  rt.admission()->release(0);
  EXPECT_EQ(rt.gate_stats().requests_checked, 1u);
}

TEST(Admission, SnapshotSurfacesTenants) {
  Config cfg;
  cfg.governor.tenants = two_tenants();
  Runtime rt(cfg);
  rt.admission()->admit_or_throw(1);
  (void)rt.admission()->try_admit(1);  // shed: noisy's slot is taken
  RuntimeSnapshot s = snapshot(rt);
  ASSERT_TRUE(s.admission_attached);
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_EQ(s.tenants[1].name, "noisy");
  EXPECT_EQ(s.tenants[1].in_flight, 1u);
  EXPECT_EQ(s.tenants[1].shed, 1u);
  EXPECT_EQ(s.tenants[1].current_verdict, AdmissionCause::InFlightBudget);
  EXPECT_EQ(s.requests_shed_total, 1u);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("admission: 2 tenant(s)"), std::string::npos);
  EXPECT_NE(text.find("noisy"), std::string::npos);
  EXPECT_NE(text.find("in-flight-budget"), std::string::npos);
  rt.admission()->release(1);
}

// ------------------------------------------------------------- chaos sweep --

/// Mini service loop: admission-gated requests against a live runtime with
/// chaos armed; the books must balance exactly for every seed and scheduler.
void chaos_sweep_mode(SchedulerMode mode, std::uint64_t seed) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.scheduler = mode;
  cfg.workers = 2;
  cfg.obs.enabled = true;
  cfg.fault_plan = FaultPlan::chaos(seed);
  cfg.governor.tenants = two_tenants();
  cfg.governor.spawn_inline_watermark = 8;  // backpressure in the mix too
  Runtime rt(cfg);
  AdmissionController& adm = *rt.admission();

  std::uint64_t submitted = 0, completed = 0, shed = 0;
  rt.root([&] {
    std::vector<std::pair<std::size_t, Future<int>>> in_flight;
    for (int i = 0; i < 60; ++i) {
      const std::size_t tenant = (seed + static_cast<std::uint64_t>(i)) % 2;
      ++submitted;
      if (!adm.try_admit(tenant).admitted) {
        ++shed;
        continue;
      }
      in_flight.emplace_back(tenant, async([i] { return i * 2; }));
      if (in_flight.size() >= 3) {
        auto [t, f] = in_flight.front();
        in_flight.erase(in_flight.begin());
        try {
          (void)f.get();
        } catch (const TjError&) {
          // Chaos faults settle the request; never lost, never double.
        }
        ++completed;
        adm.release(t);
      }
    }
    for (auto& [t, f] : in_flight) {
      try {
        (void)f.get();
      } catch (const TjError&) {
      }
      ++completed;
      adm.release(t);
    }
  });

  EXPECT_EQ(submitted, completed + shed) << "seed " << seed;
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.requests_checked, submitted) << "seed " << seed;
  EXPECT_EQ(s.requests_checked, s.requests_admitted + s.requests_shed);
  EXPECT_EQ(s.requests_admitted, completed);
  EXPECT_EQ(s.requests_shed, shed);
  // Policy-side reconciliation stays exact under the same chaos.
  EXPECT_EQ(s.policy_rejections + s.owp_rejections,
            s.false_positives + s.owp_false_positives +
                (s.deadlocks_averted - s.deadlocks_averted_approved))
      << "seed " << seed;
  for (const auto& t : adm.snapshot()) {
    EXPECT_EQ(t.in_flight, 0u) << t.name;
    EXPECT_EQ(t.admitted, t.released) << t.name;
  }
}

TEST(AdmissionChaos, SixteenSeedSweepReconcilesOnBothSchedulers) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    chaos_sweep_mode(SchedulerMode::Blocking, seed);
    chaos_sweep_mode(SchedulerMode::Cooperative, seed);
  }
}

// ----------------------------------- governor-off backpressure interplay --

// The spawn_inline_watermark contract: enforced at every spawn whenever
// non-zero, even with GovernorConfig::enabled == false — and admission
// shedding (also governor-independent) composes with it: rung 1 sheds at
// the front door, rung 2 inlines what was admitted.
TEST(Admission, GovernorOffBackpressureStillEnforced) {
  Config cfg;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.obs.enabled = true;
  ASSERT_FALSE(cfg.governor.enabled);
  cfg.governor.spawn_inline_watermark = 1;
  TenantBudget t;
  t.name = "svc";
  t.max_in_flight = 2;
  cfg.governor.tenants = {t};
  Runtime rt(cfg);
  AdmissionController& adm = *rt.admission();

  std::uint64_t inlined_ok = 0, shed = 0;
  rt.root([&] {
    // Park one live task so every later spawn is at/over the watermark.
    std::atomic<bool> go{false};
    adm.admit_or_throw(0);
    Future<void> sleeper = async([&go] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    // Admitted requests run inline (deterministically: live >= 1 == the
    // watermark at every spawn below); the third concurrent request sheds.
    adm.admit_or_throw(0);
    Future<int> a = async([] { return 7; });
    EXPECT_TRUE(a.ready());  // inline spawn: already done when async returns
    if (a.get() == 7) ++inlined_ok;

    // Both slots held (sleeper + the just-finished-but-unreleased request):
    // the third concurrent request sheds at the front door.
    if (!adm.try_admit(0).admitted) {
      ++shed;
    } else {
      ADD_FAILURE() << "expected the in-flight budget to shed";
      adm.release(0);
    }
    adm.release(0);
    go.store(true, std::memory_order_release);
    sleeper.join();
    adm.release(0);
  });

  EXPECT_EQ(inlined_ok, 1u);
  EXPECT_EQ(shed, 1u);
  ASSERT_NE(rt.recorder(), nullptr);
  EXPECT_GE(rt.recorder()->metrics().spawn_inlines.load(), 1u);
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.requests_checked, 3u);
  EXPECT_EQ(s.requests_admitted, 2u);
  EXPECT_EQ(s.requests_shed, 1u);
}

// Regression: a spawn-time inlined child that blocks on a promise only the
// suspended parent's continuation can fulfill used to hang on an
// acyclic-looking graph; run_inline's probation WFG edge makes the gate's
// fallback see parent → child, so the child's await faults as an averted
// deadlock and the parent resumes.
TEST(Admission, InlinedChildAwaitingParentPromiseFaultsInsteadOfHanging) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.governor.spawn_inline_watermark = 1;  // every spawn at live >= 1 inlines
  Runtime rt(cfg);

  rt.root([&] {
    std::atomic<bool> go{false};
    Future<void> sleeper = async([&go] {  // live = 1: arms the watermark
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    Promise<int> p = make_promise<int>();  // owned by root
    // Runs inline in root; root cannot fulfill p until it returns.
    Future<int> child = async([p] { return p.get(); });
    EXPECT_TRUE(child.ready());
    EXPECT_THROW((void)child.get(), DeadlockAvoidedError);
    p.fulfill(42);  // root's continuation DOES resume — no hang
    go.store(true, std::memory_order_release);
    sleeper.join();
  });
  EXPECT_GE(rt.gate_stats().deadlocks_averted, 1u);
}

}  // namespace
}  // namespace tj::runtime
