// Graceful degradation under pressure: the degradation ladder's conservative
// routing, the resource governor's budget/hysteresis machinery and its
// KJ-VC-GC-before-downgrade escalation, deadline-aware joins (join_for /
// get_for + Backoff), spawn backpressure, and the watchdog's attribution of
// stalls to the ACTIVE (possibly downgraded) policy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/ladder.hpp"
#include "kj/kj_vc.hpp"
#include "runtime/api.hpp"
#include "runtime/backoff.hpp"
#include "runtime/governor.hpp"
#include "runtime/watchdog.hpp"

namespace tj::runtime {
namespace {

using core::PolicyChoice;

// ---------------------------------------------------------------- ladder --

TEST(Ladder, ShapePerConfiguredPolicy) {
  auto gt = core::make_ladder_verifier(PolicyChoice::TJ_GT);
  ASSERT_NE(gt, nullptr);
  ASSERT_EQ(gt->level_count(), 3u);
  EXPECT_EQ(gt->level_kind(0), PolicyChoice::TJ_GT);
  EXPECT_EQ(gt->level_kind(1), PolicyChoice::TJ_SP);
  EXPECT_EQ(gt->level_kind(2), PolicyChoice::CycleOnly);

  auto vc = core::make_ladder_verifier(PolicyChoice::KJ_VC);
  ASSERT_NE(vc, nullptr);
  ASSERT_EQ(vc->level_count(), 2u);
  EXPECT_EQ(vc->level_kind(0), PolicyChoice::KJ_VC);
  EXPECT_EQ(vc->level_kind(1), PolicyChoice::CycleOnly);

  // Nothing to degrade for the non-policies.
  EXPECT_EQ(core::make_ladder_verifier(PolicyChoice::None), nullptr);
  EXPECT_EQ(core::make_ladder_verifier(PolicyChoice::CycleOnly), nullptr);
}

TEST(Ladder, DowngradeIsMonotoneAndStopsAtTheFloor) {
  auto lad = core::make_ladder_verifier(PolicyChoice::TJ_GT);
  EXPECT_EQ(lad->level(), 0u);
  EXPECT_EQ(lad->kind(), PolicyChoice::TJ_GT);
  EXPECT_TRUE(lad->downgrade());
  EXPECT_EQ(lad->kind(), PolicyChoice::TJ_SP);
  EXPECT_TRUE(lad->downgrade());
  EXPECT_EQ(lad->kind(), PolicyChoice::CycleOnly);
  EXPECT_EQ(lad->level(), 2u);
  // The floor is absorbing.
  EXPECT_FALSE(lad->downgrade());
  EXPECT_EQ(lad->level(), 2u);
}

TEST(Ladder, DelegatesOnlySameLevelSameForestPairs) {
  auto lad = core::make_ladder_verifier(PolicyChoice::TJ_GT);
  core::PolicyNode* root = lad->add_child(nullptr);
  core::PolicyNode* child = lad->add_child(root);
  // Same level, same forest: the level verifier's exact answer (TJ permits a
  // parent joining its own child).
  EXPECT_TRUE(lad->permits_join(root, child));

  ASSERT_TRUE(lad->downgrade());
  core::PolicyNode* late = lad->add_child(root);  // tagged level 1
  // Cross-level pairs are conservatively rejected (→ WFG probation), even
  // though a plain TJ verifier would approve a parent→child join.
  EXPECT_FALSE(lad->permits_join(root, late));
  // Old same-level pairs keep their exact verdicts after the downgrade.
  EXPECT_TRUE(lad->permits_join(root, child));

  // A second root starts a new forest: cross-forest same-level pairs are
  // rejected too (TJ-GT's less() is only sound within one spawn tree).
  core::PolicyNode* root2 = lad->add_child(nullptr);
  core::PolicyNode* kid2 = lad->add_child(root2);
  EXPECT_FALSE(lad->permits_join(root, kid2));
  EXPECT_FALSE(lad->permits_join(root2, child));

  ASSERT_TRUE(lad->downgrade());  // to the WFG-only floor
  core::PolicyNode* floor_kid = lad->add_child(root);
  // Floor-tagged nodes are never approved: every such join is cycle-checked.
  EXPECT_FALSE(lad->permits_join(root, floor_kid));

  for (core::PolicyNode* n : {root, child, late, root2, kid2, floor_kid}) {
    lad->release(n);
  }
}

// -------------------------------------------------------------- governor --

TEST(Governor, DisabledByDefaultAndPolicyIsNotALadder) {
  Runtime rt({.policy = PolicyChoice::TJ_GT});
  EXPECT_EQ(rt.governor(), nullptr);
  EXPECT_EQ(rt.active_policy(), PolicyChoice::TJ_GT);
  EXPECT_EQ(dynamic_cast<core::LadderVerifier*>(rt.verifier()), nullptr);
}

TEST(Governor, ByteBudgetTripsDowngradeLadderAndRunStaysCorrect) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.workers = 2;
  cfg.obs.enabled = true;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 1000000;  // park the thread; the test drives polls
  cfg.governor.max_verifier_bytes = 1;  // any live node is over budget
  cfg.governor.trip_polls = 2;
  cfg.governor.cooldown_polls = 0;
  Runtime rt(cfg);
  ASSERT_NE(rt.governor(), nullptr);
  EXPECT_EQ(rt.active_policy(), PolicyChoice::TJ_GT);

  const int sum = rt.root([&] {
    std::vector<Future<int>> fs;
    for (int i = 0; i < 8; ++i) {
      fs.push_back(async([i] { return i; }));
    }
    ResourceGovernor& gov = *rt.governor();
    gov.poll_now();  // hysteresis: one over-budget sample must not act
    EXPECT_EQ(rt.active_policy(), PolicyChoice::TJ_GT);
    gov.poll_now();
    EXPECT_EQ(rt.active_policy(), PolicyChoice::TJ_SP);
    gov.poll_now();
    gov.poll_now();
    EXPECT_EQ(rt.active_policy(), PolicyChoice::CycleOnly);
    EXPECT_TRUE(gov.under_pressure());
    // Joins ruled after the downgrade all take the probation path — and all
    // complete (the WFG clears every TJ-valid join).
    int s = 0;
    for (auto& f : fs) s += f.get();
    return s;
  });
  EXPECT_EQ(sum, 28);

  const auto ts = rt.governor()->transitions();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].from, PolicyChoice::TJ_GT);
  EXPECT_EQ(ts[0].to, PolicyChoice::TJ_SP);
  EXPECT_NE(ts[0].reason.find("bytes"), std::string::npos);
  EXPECT_EQ(ts[1].to, PolicyChoice::CycleOnly);
  EXPECT_EQ(rt.governor()->level(), 2u);
  EXPECT_FALSE(rt.governor()->history_string().empty());

  // At the floor further trips are a no-op, not new transitions.
  rt.governor()->poll_now();
  rt.governor()->poll_now();
  EXPECT_EQ(rt.governor()->transitions().size(), 2u);

  ASSERT_NE(rt.recorder(), nullptr);
  EXPECT_EQ(rt.recorder()->metrics().policy_downgrades.load(), 2u);
}

TEST(Governor, KjVcGetsEpochGcBeforeAnyDowngrade) {
  Config cfg;
  cfg.policy = PolicyChoice::KJ_VC;
  cfg.workers = 2;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 1000000;
  cfg.governor.max_verifier_bytes = 1;
  cfg.governor.trip_polls = 1;
  cfg.governor.cooldown_polls = 0;
  Runtime rt(cfg);

  auto* ladder = dynamic_cast<core::LadderVerifier*>(rt.verifier());
  ASSERT_NE(ladder, nullptr);
  auto* vc = dynamic_cast<kj::KjVcVerifier*>(ladder->level_verifier(0));
  ASSERT_NE(vc, nullptr);
  EXPECT_FALSE(vc->gc_enabled());

  rt.root([&] {
    auto f = async([] { return 1; });
    // Escalation step 1: relieve memory pressure by GC, not by downgrade.
    rt.governor()->poll_now();
    EXPECT_TRUE(vc->gc_enabled());
    EXPECT_EQ(rt.active_policy(), PolicyChoice::KJ_VC);
    // Still over budget with GC already on: now the ladder steps down.
    rt.governor()->poll_now();
    EXPECT_EQ(rt.active_policy(), PolicyChoice::CycleOnly);
    EXPECT_EQ(f.get(), 1);
  });

  const auto ts = rt.governor()->transitions();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].from_level, ts[0].to_level);  // GC enable, not a downgrade
  EXPECT_NE(ts[0].reason.find("kj-gc"), std::string::npos);
  EXPECT_EQ(ts[1].to, PolicyChoice::CycleOnly);
}

TEST(Governor, GenerousBudgetsNeverDegrade) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.workers = 2;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 1000000;
  cfg.governor.max_verifier_bytes = std::size_t{1} << 30;
  cfg.governor.max_verifier_nodes = std::size_t{1} << 20;
  cfg.governor.trip_polls = 1;
  Runtime rt(cfg);

  const int v = rt.root([&] {
    auto f = async([] { return 5; });
    for (int i = 0; i < 8; ++i) rt.governor()->poll_now();
    return f.get();
  });
  EXPECT_EQ(v, 5);
  EXPECT_EQ(rt.active_policy(), PolicyChoice::TJ_GT);
  EXPECT_FALSE(rt.governor()->under_pressure());
  EXPECT_TRUE(rt.governor()->transitions().empty());
  EXPECT_GE(rt.governor()->polls(), 8u);
}

// -------------------------------------------------------- deadline joins --

TEST(DeadlineJoin, TimeoutWithdrawsTheJoinAndRetrySucceeds) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.scheduler = SchedulerMode::Blocking;  // no inline help: timeouts real
  cfg.workers = 2;
  cfg.obs.enabled = true;
  cfg.record_trace = true;
  Runtime rt(cfg);

  std::atomic<bool> release{false};
  std::uint64_t target_uid = 0;
  rt.root([&] {
    auto f = async([&] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return 7;
    });
    target_uid = f.task().uid();
    EXPECT_EQ(f.join_for(std::chrono::milliseconds(5)), JoinOutcome::Timeout);
    EXPECT_FALSE(f.ready());  // the target keeps running, unobserved
    release.store(true, std::memory_order_release);
    auto v = f.get_for(std::chrono::seconds(30));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
  });

  // Both attempts were gate-ruled; only the expired one timed out.
  EXPECT_GE(rt.gate_stats().joins_checked, 2u);
  ASSERT_NE(rt.recorder(), nullptr);
  EXPECT_EQ(rt.recorder()->metrics().join_timeouts.load(), 1u);
  // "This join never happened": the withdrawn attempt left no trace join —
  // the completed retry recorded exactly one.
  unsigned joins_on_target = 0;
  const trace::Trace recorded = rt.recorded_trace();
  for (const trace::Action& a : recorded.actions()) {
    if (a.kind == trace::ActionKind::Join && a.target == target_uid) {
      ++joins_on_target;
    }
  }
  EXPECT_EQ(joins_on_target, 1u);
}

TEST(DeadlineJoin, ReadyTargetReturnsImmediately) {
  Runtime rt({.policy = PolicyChoice::TJ_SP});
  rt.root([] {
    auto f = async([] { return 3; });
    auto g = async([] {});
    // A generous deadline on fast tasks: Ready with the value / true.
    auto v = f.get_for(std::chrono::seconds(30));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 3);
    EXPECT_TRUE(g.get_for(std::chrono::seconds(30)));
    EXPECT_EQ(f.join_for(std::chrono::seconds(1)), JoinOutcome::Ready);
  });
}

TEST(DeadlineJoin, BackoffIsDeterministicJitteredDoubling) {
  Backoff a(std::chrono::milliseconds(1), std::chrono::milliseconds(16), 42);
  Backoff b(std::chrono::milliseconds(1), std::chrono::milliseconds(16), 42);
  std::int64_t base = std::chrono::nanoseconds(
                          std::chrono::milliseconds(1)).count();
  const std::int64_t max = std::chrono::nanoseconds(
                               std::chrono::milliseconds(16)).count();
  for (int i = 0; i < 10; ++i) {
    const auto d1 = a.next();
    EXPECT_EQ(d1, b.next());  // same seed ⇒ same delays (replayable chaos)
    // ±25% jitter around the current (doubling, saturating) step.
    EXPECT_GE(d1.count(), base - base / 4);
    EXPECT_LE(d1.count(), base + base / 4);
    base = std::min(base * 2, max);
  }
  a.reset();
  const auto first_again = a.next();
  const std::int64_t ms1 =
      std::chrono::nanoseconds(std::chrono::milliseconds(1)).count();
  EXPECT_GE(first_again.count(), ms1 - ms1 / 4);
  EXPECT_LE(first_again.count(), ms1 + ms1 / 4);
}

// ----------------------------------------------------- spawn backpressure --

TEST(Backpressure, SpawnPastWatermarkRunsInlineInTheCaller) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.obs.enabled = true;
  cfg.governor.spawn_inline_watermark = 1;  // active without governor.enabled
  Runtime rt(cfg);
  ASSERT_EQ(rt.governor(), nullptr);

  std::atomic<bool> release{false};
  rt.root([&] {
    auto sleeper = async([&] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    // live_tasks >= 1 now: this spawn must run inline, synchronously, in the
    // root task — by return the future is already resolved.
    auto f = async([] { return 11; });
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.get(), 11);
    // Inlined tasks can themselves spawn and join (nested inlining).
    auto g = async([] {
      auto inner = async([] { return 2; });
      return inner.get() + 1;
    });
    EXPECT_TRUE(g.ready());
    EXPECT_EQ(g.get(), 3);
    release.store(true, std::memory_order_release);
    sleeper.join();
  });

  ASSERT_NE(rt.recorder(), nullptr);
  EXPECT_GE(rt.recorder()->metrics().spawn_inlines.load(), 3u);
}

// ------------------------------------------- watchdog under degradation --

TEST(WatchdogDegradation, StallReportNamesTheActivePolicyAndHistory) {
  std::mutex mu;
  std::vector<StallReport> reports;
  std::atomic<bool> release{false};

  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 1000000;
  cfg.governor.max_verifier_bytes = 1;
  cfg.governor.trip_polls = 1;
  cfg.governor.cooldown_polls = 0;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 5;
  cfg.watchdog.stall_ms = 25;
  cfg.watchdog.on_stall = [&](const StallReport& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reports.push_back(r);
    }
    release.store(true, std::memory_order_release);
  };
  Runtime rt(cfg);

  std::thread safety([&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    release.store(true, std::memory_order_release);
  });

  rt.root([&] {
    auto stuck = async([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return 9;
    });
    // Degrade all the way down BEFORE blocking, so the stall happens under
    // the floor policy.
    rt.governor()->poll_now();
    rt.governor()->poll_now();
    ASSERT_EQ(rt.active_policy(), PolicyChoice::CycleOnly);
    EXPECT_EQ(stuck.get(), 9);
  });
  safety.join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(reports.empty());
  const StallReport& r = reports.front();
  // Attribution: the ACTIVE (downgraded) policy, not the configured one.
  EXPECT_EQ(r.policy_name, std::string(core::to_string(
                               PolicyChoice::CycleOnly)));
  EXPECT_EQ(r.policy_id,
            static_cast<std::uint8_t>(PolicyChoice::CycleOnly));
  EXPECT_EQ(r.degradation_level, 2u);
  EXPECT_NE(r.degradation_history.find("bytes"), std::string::npos);
  ASSERT_FALSE(r.stalled.empty());
  EXPECT_TRUE(r.cycles.empty());  // external stall, not a deadlock
  // The human-readable form carries the degradation context too.
  EXPECT_NE(r.to_string().find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace tj::runtime
