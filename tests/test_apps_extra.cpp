// The extra benchmarks (mergesort, FFT): correctness against references and
// policy validity.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "apps/fft.hpp"
#include "apps/mergesort.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {
namespace {

TEST(Mergesort, SortsTiny) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const MergesortResult r = run_mergesort(rt, MergesortParams::tiny());
  EXPECT_TRUE(r.sorted);
  EXPECT_GT(r.tasks, 1u);
}

TEST(Mergesort, TaskCountMatchesRecursionShape) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  MergesortParams p{.elements = 1 << 10, .cutoff = 1 << 8, .seed = 1};
  const MergesortResult r = run_mergesort(rt, p);
  EXPECT_TRUE(r.sorted);
  // 1024/256 = 4 leaves → 3 internal splits × 2 children + root.
  EXPECT_EQ(r.tasks, 1u + 6u);
}

TEST(Mergesort, CutoffLargerThanInputIsSequential) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  MergesortParams p{.elements = 512, .cutoff = 4096, .seed = 2};
  const MergesortResult r = run_mergesort(rt, p);
  EXPECT_TRUE(r.sorted);
  EXPECT_EQ(r.tasks, 1u);  // root only
}

TEST(Mergesort, ChecksumIsOrderIndependent) {
  runtime::Runtime rt1({.policy = core::PolicyChoice::None});
  runtime::Runtime rt2({.policy = core::PolicyChoice::KJ_SS});
  const auto a = run_mergesort(rt1, MergesortParams::tiny());
  const auto b = run_mergesort(rt2, MergesortParams::tiny());
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Mergesort, ValidUnderEveryPolicy) {
  for (auto pol : {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_VC,
                   core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    EXPECT_TRUE(run_mergesort(rt, MergesortParams::tiny()).sorted);
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

TEST(Fft, SequentialMatchesDirectDftOnSmallInput) {
  // 8-point transform vs the O(n²) DFT definition.
  std::vector<std::complex<double>> xs(8);
  for (std::size_t i = 0; i < 8; ++i) {
    xs[i] = {std::cos(0.7 * static_cast<double>(i)),
             std::sin(1.3 * static_cast<double>(i))};
  }
  std::vector<std::complex<double>> dft(8);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * j) / 8.0;
      dft[k] += xs[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
  }
  fft_sequential(xs, /*inverse=*/false);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(std::abs(xs[k] - dft[k]), 0.0, 1e-9) << "k=" << k;
  }
}

TEST(Fft, SequentialRoundtrip) {
  std::vector<std::complex<double>> xs(256);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = {static_cast<double>(i % 17) - 8.0,
             static_cast<double>(i % 5) - 2.0};
  }
  const auto original = xs;
  fft_sequential(xs, false);
  fft_sequential(xs, true);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(std::abs(xs[i] - original[i]), 0.0, 1e-9);
  }
}

TEST(Fft, ParallelRoundtripTiny) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const FftResult r = run_fft(rt, FftParams::tiny());
  EXPECT_TRUE(r.roundtrip_ok);
  EXPECT_GT(r.tasks, 1u);
  EXPECT_GT(r.spectrum_energy, 0.0);
}

TEST(Fft, ParsevalHolds) {
  // Energy in time domain × n == energy in frequency domain.
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  FftParams p = FftParams::tiny();
  const FftResult r = run_fft(rt, p);
  // Recreate the deterministic input to compute its energy.
  std::vector<std::complex<double>> signal(p.n);
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> ampd(-1.0, 1.0);
  double time_energy = 0.0;
  for (auto& x : signal) {
    x = {ampd(rng), ampd(rng)};
    time_energy += std::norm(x);
  }
  EXPECT_NEAR(r.spectrum_energy,
              time_energy * static_cast<double>(p.n),
              1e-6 * time_energy * static_cast<double>(p.n));
}

TEST(Fft, ValidUnderEveryPolicy) {
  for (auto pol : {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_VC,
                   core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    EXPECT_TRUE(run_fft(rt, FftParams::tiny()).roundtrip_ok);
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

}  // namespace
}  // namespace tj::apps
