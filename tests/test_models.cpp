// The restricted programming models of Sec. 1 layered over the runtime:
// Cilk spawn/sync (fully strict) and async-finish (terminally strict).
// Their recorded traces must sit in the corresponding strictness classes and
// be valid under BOTH policies — the models hierarchy the paper describes.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>

#include "models/async_finish.hpp"
#include "models/cilk.hpp"
#include "runtime/api.hpp"
#include "trace/strictness.hpp"
#include "trace/validity.hpp"

namespace tj {
namespace {

runtime::Config recording(core::PolicyChoice p = core::PolicyChoice::TJ_SP) {
  runtime::Config cfg;
  cfg.policy = p;
  cfg.record_trace = true;
  return cfg;
}

TEST(CilkModel, SpawnSyncComputesFib) {
  runtime::Runtime rt(recording());
  std::function<long(int)> fib = [&fib](int n) -> long {
    if (n < 2) return n;
    models::SpawnGroup<long> g;
    g.spawn([&fib, n] { return fib(n - 1); });
    g.spawn([&fib, n] { return fib(n - 2); });
    const auto results = g.sync();
    return results[0] + results[1];
  };
  long out = 0;
  rt.root([&] { out = fib(15); });
  EXPECT_EQ(out, 610);
}

TEST(CilkModel, TracesAreFullyStrict) {
  runtime::Runtime rt(recording());
  std::function<void(int)> work = [&work](int depth) {
    if (depth == 0) return;
    models::SpawnScope scope;
    scope.spawn([&work, depth] { work(depth - 1); });
    scope.spawn([&work, depth] { work(depth - 1); });
    scope.sync();
  };
  rt.root([&] { work(5); });
  const trace::Trace t = rt.recorded_trace();
  EXPECT_GT(t.join_count(), 0u);
  EXPECT_EQ(trace::classify_strictness(t), trace::Strictness::FullyStrict);
  // Fully strict programs satisfy KJ and TJ outright.
  EXPECT_TRUE(trace::is_kj_valid(t));
  EXPECT_TRUE(trace::is_tj_valid(t));
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST(CilkModel, ImplicitSyncOnScopeExit) {
  runtime::Runtime rt(recording());
  std::atomic<int> hits{0};
  rt.root([&hits] {
    {
      models::SpawnScope scope;
      for (int i = 0; i < 32; ++i) {
        scope.spawn([&hits] { hits.fetch_add(1); });
      }
      // No explicit sync: the destructor must join the children.
    }
    EXPECT_EQ(hits.load(), 32);
  });
}

TEST(CilkModel, SyncClearsAndCanRespawn) {
  runtime::Runtime rt(recording());
  rt.root([] {
    models::SpawnScope scope;
    scope.spawn([] {});
    EXPECT_EQ(scope.spawned(), 1u);
    scope.sync();
    EXPECT_EQ(scope.spawned(), 0u);
    scope.spawn([] {});
    scope.sync();
  });
}

TEST(CilkModel, NeverViolatesEitherPolicyOnline) {
  for (auto p : {core::PolicyChoice::KJ_VC, core::PolicyChoice::KJ_SS,
                 core::PolicyChoice::TJ_SP}) {
    runtime::Runtime rt({.policy = p});
    std::function<void(int)> work = [&work](int depth) {
      if (depth == 0) return;
      models::SpawnScope scope;
      scope.spawn([&work, depth] { work(depth - 1); });
      scope.spawn([&work, depth] { work(depth - 1); });
      scope.sync();
    };
    rt.root([&] { work(6); });
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(p);
  }
}

TEST(AsyncFinishModel, FinishAwaitsTransitiveAsyncs) {
  runtime::Runtime rt(recording());
  std::atomic<int> hits{0};
  rt.root([&hits] {
    // Declared outside the finish body: spawned tasks call `tree` by
    // reference while finish() drains, after the body frame is gone.
    std::function<void(int)> tree;
    models::finish([&hits, &tree] {
      tree = [&hits, &tree](int depth) {
        hits.fetch_add(1);
        if (depth == 0) return;
        models::af_async([&tree, depth] { tree(depth - 1); });
        models::af_async([&tree, depth] { tree(depth - 1); });
      };
      tree(5);
    });
    EXPECT_EQ(hits.load(), (1 << 6) - 1);
  });
}

TEST(AsyncFinishModel, TracesAreTerminallyStrict) {
  runtime::Runtime rt(recording());
  rt.root([] {
    // Outlives finish() — see FinishAwaitsTransitiveAsyncs.
    std::function<void(int)> tree;
    models::finish([&tree] {
      tree = [&tree](int depth) {
        if (depth == 0) return;
        models::af_async([&tree, depth] { tree(depth - 1); });
        models::af_async([&tree, depth] { tree(depth - 1); });
      };
      tree(4);
    });
  });
  const trace::Trace t = rt.recorded_trace();
  EXPECT_GT(t.join_count(), 0u);
  // The finish owner joins descendants (not only children): terminally
  // strict but not fully strict.
  const auto s = trace::classify_strictness(t);
  EXPECT_EQ(s, trace::Strictness::TerminallyStrict);
  EXPECT_TRUE(trace::is_tj_valid(t)) << "TJ admits every descendant join";
}

TEST(AsyncFinishModel, NestedFinishBlocksScopeIndependently) {
  runtime::Runtime rt(recording());
  std::atomic<int> stage{0};
  rt.root([&stage] {
    models::finish([&stage] {
      models::af_async([&stage] {
        models::finish([&stage] {
          models::af_async([&stage] { stage.fetch_add(1); });
        });
        // Inner finish done: its async completed.
        EXPECT_EQ(stage.load(), 1);
        stage.fetch_add(10);
      });
    });
    EXPECT_EQ(stage.load(), 11);
  });
}

TEST(AsyncFinishModel, AsyncOutsideFinishThrows) {
  runtime::Runtime rt(recording());
  rt.root([] {
    EXPECT_THROW(models::af_async([] {}), runtime::UsageError);
  });
}

TEST(AsyncFinishModel, NeverViolatesTjOnline) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  rt.root([] {
    // Outlives finish() — see FinishAwaitsTransitiveAsyncs.
    std::function<void(int)> tree;
    models::finish([&tree] {
      tree = [&tree](int depth) {
        if (depth == 0) return;
        for (int i = 0; i < 3; ++i) {
          models::af_async([&tree, depth] { tree(depth - 1); });
        }
      };
      tree(4);
    });
  });
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST(Strictness, Classification) {
  using trace::Strictness;
  using namespace trace;
  // No joins: fully strict.
  EXPECT_EQ(classify_strictness(Trace{init(0), fork(0, 1)}),
            Strictness::FullyStrict);
  // Parent joins child: fully strict.
  EXPECT_EQ(classify_strictness(Trace{init(0), fork(0, 1), join(0, 1)}),
            Strictness::FullyStrict);
  // Grandparent joins grandchild: terminally strict.
  EXPECT_EQ(classify_strictness(
                Trace{init(0), fork(0, 1), fork(1, 2), join(0, 2)}),
            Strictness::TerminallyStrict);
  // Sibling join: arbitrary.
  EXPECT_EQ(classify_strictness(
                Trace{init(0), fork(0, 1), fork(0, 2), join(2, 1)}),
            Strictness::Arbitrary);
  // Child joins parent (upward): arbitrary.
  EXPECT_EQ(classify_strictness(Trace{init(0), fork(0, 1), join(1, 0)}),
            Strictness::Arbitrary);
}

TEST(Strictness, Names) {
  EXPECT_EQ(trace::to_string(trace::Strictness::FullyStrict), "fully-strict");
  EXPECT_EQ(trace::to_string(trace::Strictness::TerminallyStrict),
            "terminally-strict");
  EXPECT_EQ(trace::to_string(trace::Strictness::Arbitrary), "arbitrary");
}

}  // namespace
}  // namespace tj
