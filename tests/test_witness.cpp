// Rejection-provenance witnesses end to end: every policy's known-rejection
// scenario produces a witness the offline validator independently confirms;
// injected (spurious) rejections validate as Spurious; hand-crafted
// inconsistent witnesses validate as Invalid; the DOT rendering is
// structurally well-formed; and the gate's witness ring is bounded.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ladder.hpp"
#include "core/witness.hpp"
#include "obs/witness.hpp"
#include "runtime/api.hpp"
#include "trace/trace.hpp"

namespace tj::runtime {
namespace {

using core::PolicyChoice;
using core::Witness;
using core::WitnessKind;
using obs::WitnessValidation;
using obs::WitnessVerdict;

core::WitnessKind expected_kind(PolicyChoice p) {
  switch (p) {
    case PolicyChoice::KJ_VC: return WitnessKind::KjClock;
    case PolicyChoice::KJ_SS: return WitnessKind::KjSet;
    default: return WitnessKind::TjPath;  // TJ_GT / TJ_JP / TJ_SP
  }
}

/// Older sibling joins its younger sibling: forbidden by every policy family
/// (TJ: the waiter does not precede the target in the newest-first preorder;
/// KJ: the older sibling never learned the younger one). Under
/// FaultMode::Throw the rejection surfaces as PolicyViolationError carrying
/// the policy's witness, with trace_pos stamped because record_trace is on.
Witness older_joins_younger(Runtime& rt) {
  std::mutex mu;
  Witness captured;
  rt.root([&] {
    std::atomic<const Future<int>*> slot{nullptr};
    Future<int> older = async([&]() -> int {
      const Future<int>* f;
      while ((f = slot.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return f->get();
      } catch (const PolicyViolationError& e) {
        const std::lock_guard<std::mutex> lock(mu);
        captured = e.witness();
        return -1;
      }
    });
    Future<int> younger = async([] { return 7; });
    slot.store(&younger, std::memory_order_release);
    EXPECT_EQ(older.get(), -1);
    EXPECT_EQ(younger.get(), 7);
  });
  return captured;
}

class WitnessPerPolicy : public ::testing::TestWithParam<PolicyChoice> {};

TEST_P(WitnessPerPolicy, KnownRejectionYieldsConfirmedWitness) {
  Runtime rt({.policy = GetParam(),
              .fault = core::FaultMode::Throw,
              .workers = 4,
              .record_trace = true});
  const Witness w = older_joins_younger(rt);
  ASSERT_FALSE(w.empty());
  EXPECT_EQ(w.kind, expected_kind(GetParam()));
  EXPECT_EQ(w.policy, GetParam());
  EXPECT_FALSE(w.on_promise);
  EXPECT_NE(w.waiter, w.target);
  EXPECT_GT(w.trace_pos, 0u);

  const WitnessValidation v = obs::validate_witness(w, rt.recorded_trace());
  EXPECT_EQ(v.verdict, WitnessVerdict::Confirmed) << v.reason;

  // The renderings always cover the kind's evidence.
  const std::string text = obs::to_text(w);
  EXPECT_NE(text.find("witness["), std::string::npos);
  EXPECT_NE(text.find("evidence:"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, WitnessPerPolicy,
                         ::testing::Values(PolicyChoice::TJ_GT,
                                           PolicyChoice::TJ_JP,
                                           PolicyChoice::TJ_SP,
                                           PolicyChoice::KJ_VC,
                                           PolicyChoice::KJ_SS));

TEST(WitnessWfg, CrossSiblingDeadlockYieldsConfirmedCycle) {
  // Two siblings join each other: the WFG fallback averts the deadlock and
  // the faulted task's error carries the concrete cycle as its witness.
  Runtime rt({.policy = PolicyChoice::TJ_SP,
              .workers = 4,
              .record_trace = true});
  std::mutex mu;
  Witness captured;
  rt.root([&] {
    std::atomic<const Future<int>*> slot1{nullptr};
    std::atomic<const Future<int>*> slot2{nullptr};
    auto cross = [&](std::atomic<const Future<int>*>& other) {
      const Future<int>* f;
      while ((f = other.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return f->get() + 1;
      } catch (const DeadlockAvoidedError& e) {
        const std::lock_guard<std::mutex> lock(mu);
        captured = e.witness();
        return 100;
      }
    };
    Future<int> t1 = async([&] { return cross(slot2); });
    Future<int> t2 = async([&] { return cross(slot1); });
    slot1.store(&t1, std::memory_order_release);
    slot2.store(&t2, std::memory_order_release);
    EXPECT_EQ(t1.get() + t2.get(), 201);
  });
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.kind, WitnessKind::WfgCycle);
  ASSERT_GE(captured.chain.size(), 2u);
  EXPECT_EQ(captured.chain.front(), captured.waiter);

  const WitnessValidation v =
      obs::validate_witness(captured, rt.recorded_trace());
  EXPECT_EQ(v.verdict, WitnessVerdict::Confirmed) << v.reason;
}

TEST(WitnessOwp, SelfAwaitYieldsConfirmedObligationChain) {
  // Awaiting a promise you own: OWP's obligation chain is reflexive, so the
  // rejection is deterministic; Throw mode keeps the OWP evidence (the
  // fallback would supersede it with the concrete WFG cycle).
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.promise_policy = core::PromisePolicy::OWP;
  cfg.fault = core::FaultMode::Throw;
  cfg.workers = 2;
  cfg.record_trace = true;
  Runtime rt(cfg);
  Witness captured;
  rt.root([&] {
    auto p = make_promise<int>();
    try {
      (void)p.get();
    } catch (const PolicyViolationError& e) {
      captured = e.witness();
    }
  });
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.kind, WitnessKind::OwpChain);
  EXPECT_TRUE(captured.on_promise);
  ASSERT_FALSE(captured.chain.empty());
  EXPECT_EQ(captured.chain.back(), captured.waiter);
  EXPECT_GT(captured.trace_pos, 0u);

  const WitnessValidation v =
      obs::validate_witness(captured, rt.recorded_trace());
  EXPECT_EQ(v.verdict, WitnessVerdict::Confirmed) << v.reason;
}

TEST(WitnessOwp, OrphanedPromiseYieldsConfirmedOrphanWitness) {
  // The maker exits still owning the promise: awaiting it afterwards is a
  // certain deadlock (RejectOrphaned faults directly, no WFG consultation).
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.promise_policy = core::PromisePolicy::OWP;
  cfg.workers = 2;
  cfg.record_trace = true;
  Runtime rt(cfg);
  Witness captured;
  rt.root([&] {
    Promise<int> p;
    auto f = async([&p] { p = make_promise<int>(); });
    f.join();
    try {
      (void)p.get();
    } catch (const DeadlockAvoidedError& e) {
      captured = e.witness();
    }
  });
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.kind, WitnessKind::OwpOrphan);
  EXPECT_TRUE(captured.on_promise);

  const WitnessValidation v =
      obs::validate_witness(captured, rt.recorded_trace());
  EXPECT_EQ(v.verdict, WitnessVerdict::Confirmed) << v.reason;
}

TEST(WitnessInjected, InjectedRejectionValidatesSpurious) {
  // Fault injection flips approved verdicts; the fallback clears every one.
  // The gate's ring keeps the Injected witnesses, which by construction
  // carry no evidence and must validate as Spurious, never Confirmed.
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.workers = 2;
  cfg.record_trace = true;
  cfg.fault_plan.seed = 7;
  cfg.fault_plan.join_rejection_period = 1;
  Runtime rt(cfg);
  rt.root([] {
    for (int i = 0; i < 8; ++i) {
      auto f = async([i] { return i; });
      EXPECT_EQ(f.get(), i);
    }
  });
  const std::vector<Witness> ring = rt.gate().witnesses();
  const auto it = std::find_if(ring.begin(), ring.end(), [](const Witness& w) {
    return w.kind == WitnessKind::Injected;
  });
  ASSERT_NE(it, ring.end());
  const WitnessValidation v =
      obs::validate_witness(*it, rt.recorded_trace());
  EXPECT_EQ(v.verdict, WitnessVerdict::Spurious) << v.reason;
  EXPECT_GE(rt.gate_stats().false_positives, 1u);
}

TEST(WitnessInjected, GateRingIsBoundedWithDropAccounting) {
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.workers = 2;
  cfg.fault_plan.seed = 11;
  cfg.fault_plan.join_rejection_period = 1;
  Runtime rt(cfg);
  constexpr int kJoins = 300;  // > the ring's capacity of 256
  rt.root([] {
    for (int i = 0; i < kJoins; ++i) {
      auto f = async([] { return 0; });
      f.join();
    }
  });
  const std::vector<Witness> ring = rt.gate().witnesses();
  EXPECT_LE(ring.size(), 256u);
  EXPECT_GE(ring.size(), 1u);
  EXPECT_GT(rt.gate().witnesses_dropped(), 0u);
}

TEST(WitnessLadder, MixedLevelPairExplainsAndConfirms) {
  // Direct ladder exercise: nodes created under different levels (and
  // forests) are conservatively rejected; the witness quotes both tags.
  auto ladder = core::make_ladder_verifier(PolicyChoice::TJ_SP);
  ASSERT_NE(ladder, nullptr);
  core::PolicyNode* a = ladder->add_child(nullptr);
  ASSERT_TRUE(ladder->downgrade());
  core::PolicyNode* b = ladder->add_child(nullptr);
  EXPECT_FALSE(ladder->permits_join(a, b));

  const Witness w = ladder->explain(a, b);
  EXPECT_EQ(w.kind, WitnessKind::LadderMixed);
  EXPECT_TRUE(w.waiter_level != w.target_level ||
              w.waiter_forest != w.target_forest);

  const WitnessValidation v = obs::validate_witness(w, trace::Trace{});
  EXPECT_EQ(v.verdict, WitnessVerdict::Confirmed) << v.reason;
}

// --- hand-crafted inconsistent witnesses must validate as Invalid ---------

Witness base(WitnessKind kind) {
  Witness w;
  w.kind = kind;
  w.policy = PolicyChoice::TJ_SP;
  w.waiter = 1;
  w.target = 2;
  return w;
}

TEST(WitnessInvalid, EmptyOrMalformedCyclesExplainNothing) {
  const trace::Trace none;
  Witness w = base(WitnessKind::WfgCycle);
  EXPECT_EQ(obs::validate_witness(w, none).verdict, WitnessVerdict::Invalid)
      << "empty cycle";
  w.chain = {2, 3};  // does not start at the waiter
  EXPECT_EQ(obs::validate_witness(w, none).verdict, WitnessVerdict::Invalid);
  w.chain = {1, 3};  // second node is not the rejected edge's target
  EXPECT_EQ(obs::validate_witness(w, none).verdict, WitnessVerdict::Invalid);
  w.chain = {1, 2, 3, 2};  // revisits a node before closing
  EXPECT_EQ(obs::validate_witness(w, none).verdict, WitnessVerdict::Invalid);
}

TEST(WitnessInvalid, EvidenceThatPermitsTheJoinIsInconsistent) {
  const trace::Trace none;
  // TJ: the recorded paths actually order waiter before target.
  Witness tj = base(WitnessKind::TjPath);
  tj.waiter_path = {1};
  tj.target_path = {0};
  EXPECT_EQ(obs::validate_witness(tj, none).verdict, WitnessVerdict::Invalid);

  // KJ-VC: the observed clock reaches the joinee's birth.
  Witness vc = base(WitnessKind::KjClock);
  vc.joinee_birth = 2;
  vc.observed_clock = 5;
  EXPECT_EQ(obs::validate_witness(vc, none).verdict, WitnessVerdict::Invalid);

  // KJ-SS: the snapshot set contains the joinee.
  Witness ss = base(WitnessKind::KjSet);
  ss.set_member = true;
  EXPECT_EQ(obs::validate_witness(ss, none).verdict, WitnessVerdict::Invalid);

  // OWP orphan claims need a promise target.
  Witness orphan = base(WitnessKind::OwpOrphan);
  orphan.on_promise = false;
  EXPECT_EQ(obs::validate_witness(orphan, none).verdict,
            WitnessVerdict::Invalid);

  // No evidence at all.
  Witness none_w;
  EXPECT_EQ(obs::validate_witness(none_w, none).verdict,
            WitnessVerdict::Invalid);
}

// --- DOT rendering ---------------------------------------------------------

void expect_wellformed_dot(const Witness& w) {
  const std::string dot = obs::to_dot(w);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u) << dot;
  EXPECT_NE(dot.find("->"), std::string::npos) << dot;
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'))
      << dot;
  EXPECT_EQ(dot.back(), '\n');
}

TEST(WitnessDot, EveryKindRendersACompleteDigraph) {
  Witness tj = base(WitnessKind::TjPath);
  tj.waiter_path = {0, 1};
  tj.target_path = {0, 2, 1};
  expect_wellformed_dot(tj);

  Witness vc = base(WitnessKind::KjClock);
  vc.joinee_birth = 3;
  vc.observed_clock = 1;
  expect_wellformed_dot(vc);
  expect_wellformed_dot(base(WitnessKind::KjSet));

  Witness chain = base(WitnessKind::OwpChain);
  chain.on_promise = true;
  chain.chain = {2, 3, 1};
  expect_wellformed_dot(chain);

  Witness orphan = base(WitnessKind::OwpOrphan);
  orphan.on_promise = true;
  expect_wellformed_dot(orphan);

  Witness ladder = base(WitnessKind::LadderMixed);
  ladder.waiter_level = 0;
  ladder.target_level = 1;
  expect_wellformed_dot(ladder);

  Witness cycle = base(WitnessKind::WfgCycle);
  cycle.chain = {1, 2, 3};
  expect_wellformed_dot(cycle);

  expect_wellformed_dot(base(WitnessKind::Injected));
  expect_wellformed_dot(base(WitnessKind::None));
}

}  // namespace
}  // namespace tj::runtime
