// Chaos harness for the deterministic fault-injection layer: sweeps seeds
// across both scheduler modes and asserts the robustness invariants of the
// runtime hold under injected policy rejections, perturbed wakeups, fulfill
// failures and worker deaths:
//
//   1. hang-freedom — every run terminates (joins fault or complete; no
//      invariant here relies on a test timeout);
//   2. no silently lost results — every future and promise resolves to a
//      value or to an exception of a known fault type, never neither;
//   3. stats reconciliation — injected rejections flow through the ordinary
//      gate accounting, so on a deadlock-free workload every rejection is
//      either cleared by the fallback or (in FaultMode::Throw) surfaced at a
//      join: policy_rejections == false_positives + deadlocks_averted.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <tuple>
#include <vector>

#include "runtime/api.hpp"

namespace tj::runtime {
namespace {

constexpr int kFanout = 24;
constexpr int kPromises = 8;

struct ChaosOutcome {
  std::uint64_t futures_ok = 0;
  std::uint64_t futures_faulted = 0;
  std::uint64_t promises_ok = 0;
  std::uint64_t promises_faulted = 0;
  long sum = 0;
};

// Deadlock-free workload exercising every injection site: nested joins
// (enter_join), promise awaits (enter_await), fulfills (fulfill_check),
// task-completion wakeups and worker boundaries. Joins *every* handle it
// creates and classifies each resolution, so a silently lost result shows
// up as a count mismatch rather than a hang.
ChaosOutcome run_chaos_workload(Runtime& rt) {
  ChaosOutcome out;
  rt.root([&out] {
    std::vector<Future<long>> fs;
    fs.reserve(kFanout);
    for (int i = 0; i < kFanout; ++i) {
      fs.push_back(async([i]() -> long {
        auto inner = async([i] { return static_cast<long>(i); });
        return inner.get() + 1;  // nested join inside a worker task
      }));
    }
    std::vector<Promise<long>> ps;
    std::vector<Future<void>> fulfillers;
    for (int i = 0; i < kPromises; ++i) {
      ps.push_back(make_promise<long>());
      fulfillers.push_back(async_owning(
          ps.back(), [p = ps.back(), i] { p.fulfill(100 + i); }));
    }
    for (auto& f : fs) {
      try {
        out.sum += f.get();
        ++out.futures_ok;
      } catch (const TjError&) {
        ++out.futures_faulted;
      }
    }
    for (int i = 0; i < kPromises; ++i) {
      try {
        const long v = ps[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(v, 100 + i);
        ++out.promises_ok;
      } catch (const TjError&) {
        ++out.promises_faulted;
      }
    }
    for (auto& f : fulfillers) {
      try {
        f.join();
      } catch (const TjError&) {
        // the injected fulfill failure surfaced at the fulfiller's join, or
        // (in FaultMode::Throw) an injected rejection of this join itself
      }
    }
  });
  return out;
}

class ChaosPlan
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 SchedulerMode>> {};

TEST_P(ChaosPlan, FallbackModeSurvivesAndReconciles) {
  const auto [seed, mode] = GetParam();
  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.fault = core::FaultMode::Fallback;
  cfg.scheduler = mode;
  cfg.workers = 3;
  cfg.fault_plan = FaultPlan::chaos(seed);
  Runtime rt(cfg);
  const ChaosOutcome out = run_chaos_workload(rt);

  // (2) Every handle resolved one way or the other.
  EXPECT_EQ(out.futures_ok + out.futures_faulted,
            static_cast<std::uint64_t>(kFanout));
  EXPECT_EQ(out.promises_ok + out.promises_faulted,
            static_cast<std::uint64_t>(kPromises));
  // The future part of the workload cannot fail under Fallback (injected
  // join rejections are cleared by the acyclic WFG; only promises have a
  // failing fulfiller path), so its sum is exact.
  EXPECT_EQ(out.futures_faulted, 0u);
  EXPECT_EQ(out.sum, kFanout * (kFanout - 1) / 2 + kFanout);

  // (3) Reconciliation: the workload is deadlock-free and TJ/OWP-valid, so
  // every join-side rejection is injected, and under Fallback every one is
  // cleared by the acyclic WFG as a false positive. Await-side, injected
  // rejections are likewise cleared; the only *real* deadlocks averted are
  // awaits that arrived after an injected fulfill failure orphaned their
  // promise (certain deadlock — counted on both sides of the ledger).
  const core::GateStats s = rt.gate_stats();
  const FaultStats fi = rt.fault_stats();
  EXPECT_EQ(s.policy_rejections, fi.join_rejections);
  EXPECT_EQ(s.policy_rejections, s.false_positives);
  EXPECT_EQ(s.owp_false_positives, fi.await_rejections);
  EXPECT_EQ(s.owp_rejections, fi.await_rejections + s.deadlocks_averted);
  EXPECT_LE(s.deadlocks_averted, out.promises_faulted);
  // The global form of the issue's invariant: every rejection is either
  // cleared by the fallback or a genuinely averted deadlock.
  EXPECT_EQ(s.policy_rejections + s.owp_rejections,
            s.false_positives + s.owp_false_positives + s.deadlocks_averted);
  // A promise whose fulfiller was killed by an injected fulfill failure is
  // orphaned at the fulfiller's exit; each such orphan faulted one await.
  EXPECT_EQ(out.promises_faulted, fi.fulfill_failures);
  EXPECT_EQ(s.promises_orphaned, fi.fulfill_failures);
}

TEST_P(ChaosPlan, ThrowModeSurfacesInjectedFaultsAtJoins) {
  const auto [seed, mode] = GetParam();
  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.fault = core::FaultMode::Throw;  // no fallback: rejections fault
  cfg.scheduler = mode;
  cfg.workers = 3;
  cfg.fault_plan = FaultPlan::chaos(seed);
  Runtime rt(cfg);
  const ChaosOutcome out = run_chaos_workload(rt);

  EXPECT_EQ(out.futures_ok + out.futures_faulted,
            static_cast<std::uint64_t>(kFanout));
  EXPECT_EQ(out.promises_ok + out.promises_faulted,
            static_cast<std::uint64_t>(kPromises));

  // Every injected rejection surfaced as a PolicyViolationError at the
  // rejected join/await (counted as faulted above) — faults are *observed*,
  // not inferred from a timeout.
  const core::GateStats s = rt.gate_stats();
  const FaultStats fi = rt.fault_stats();
  EXPECT_EQ(s.policy_rejections, fi.join_rejections);
  EXPECT_EQ(s.owp_rejections, fi.await_rejections + s.deadlocks_averted);
  EXPECT_EQ(s.false_positives, 0u);  // Throw mode never runs the fallback
  EXPECT_EQ(s.owp_false_positives, 0u);
}

TEST(FaultInjection, ChaosPlansActuallyInject) {
  // The sweep is only meaningful if the plans fire. Whether one particular
  // seed injects depends on how many events the schedule happens to
  // generate (injection decisions hash per-site event counters), so the
  // assertion is aggregate: across a seed range and both scheduler modes,
  // the chaos plans must inject a healthy number of faults.
  std::uint64_t total = 0;
  for (const SchedulerMode mode :
       {SchedulerMode::Cooperative, SchedulerMode::Blocking}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Config cfg;
      cfg.scheduler = mode;
      cfg.workers = 3;
      cfg.fault_plan = FaultPlan::chaos(seed);
      Runtime rt(cfg);
      (void)run_chaos_workload(rt);
      total += rt.fault_stats().total();
    }
  }
  EXPECT_GT(total, 16u);  // on average well above one fault per run
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, ChaosPlan,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 33),
                       ::testing::Values(SchedulerMode::Cooperative,
                                         SchedulerMode::Blocking)));

TEST(FaultInjection, DisabledByDefault) {
  const Config cfg;
  EXPECT_FALSE(cfg.fault_plan.enabled());
  Runtime rt(Config{});
  rt.root([] { async([] { return 1; }).join(); });
  EXPECT_EQ(rt.fault_stats().total(), 0u);
}

TEST(FaultInjection, DeterministicPerSeed) {
  // Same seed → same injection decisions: the per-site event counters and
  // the mix function are the only inputs. Stats of two identical runs of a
  // *serial* workload (no scheduling nondeterminism in event order) match.
  auto run = [] {
    Config cfg;
    cfg.scheduler = SchedulerMode::Cooperative;
    cfg.workers = 1;
    cfg.fault = core::FaultMode::Fallback;
    cfg.fault_plan = FaultPlan::chaos(7);
    Runtime rt(cfg);
    rt.root([] {
      for (int i = 0; i < 40; ++i) {
        auto f = async([i] { return i; });
        (void)f.get();  // immediate join: fully serial event order
      }
    });
    const FaultStats fs = rt.fault_stats();
    return std::tuple(fs.join_rejections, fs.fulfill_failures,
                      rt.gate_stats().policy_rejections);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjection, WorkerDeathsAreBoundedAndSurvived) {
  Config cfg;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  FaultPlan plan;
  plan.seed = 11;
  plan.worker_death_period = 3;  // aggressive: die every ~3 boundaries
  plan.max_worker_deaths = 5;
  cfg.fault_plan = plan;
  Runtime rt(cfg);
  std::atomic<int> done{0};
  rt.root([&done] {
    std::vector<Future<void>> fs;
    for (int i = 0; i < 200; ++i) {
      fs.push_back(async([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : fs) f.join();
  });
  EXPECT_EQ(done.load(), 200);
  const FaultStats fi = rt.fault_stats();
  EXPECT_GT(fi.worker_deaths, 0u);
  EXPECT_LE(fi.worker_deaths, 5u);
}

}  // namespace
}  // namespace tj::runtime
