// Matrix utilities and the Strassen benchmark: algebraic identities,
// sequential-vs-parallel agreement, and policy validity.

#include <gtest/gtest.h>

#include "apps/matrix.hpp"
#include "apps/strassen.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {
namespace {

TEST(Matrix, RandomIsDeterministicPerSeed) {
  const Matrix a = Matrix::random(16, 3);
  const Matrix b = Matrix::random(16, 3);
  const Matrix c = Matrix::random(16, 4);
  EXPECT_EQ(Matrix::max_abs_diff(a, b), 0.0);
  EXPECT_GT(Matrix::max_abs_diff(a, c), 0.0);
}

TEST(Matrix, QuadrantRoundtrip) {
  const Matrix m = Matrix::random(8, 1);
  Matrix rebuilt(8);
  for (int qr = 0; qr < 2; ++qr) {
    for (int qc = 0; qc < 2; ++qc) {
      rebuilt.set_quadrant(qr, qc, m.quadrant(qr, qc));
    }
  }
  EXPECT_EQ(Matrix::max_abs_diff(m, rebuilt), 0.0);
}

TEST(Matrix, AddSubInverse) {
  const Matrix a = Matrix::random(8, 5);
  const Matrix b = Matrix::random(8, 6);
  const Matrix c = (a + b) - b;
  EXPECT_LT(Matrix::max_abs_diff(a, c), 1e-12);
}

TEST(Matrix, NaiveMultiplyIdentity) {
  Matrix id(8);
  for (std::size_t i = 0; i < 8; ++i) id.at(i, i) = 1.0;
  const Matrix a = Matrix::random(8, 9);
  EXPECT_LT(Matrix::max_abs_diff(naive_multiply(a, id), a), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(naive_multiply(id, a), a), 1e-12);
}

TEST(Matrix, NaiveMultiplyKnownProduct) {
  Matrix a(2), b(2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = naive_multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(StrassenSeq, MatchesNaive) {
  const Matrix a = Matrix::random(64, 10);
  const Matrix b = Matrix::random(64, 11);
  const Matrix fast = strassen_sequential(a, b, /*cutoff=*/8);
  const Matrix slow = naive_multiply(a, b);
  EXPECT_LT(Matrix::max_abs_diff(fast, slow), 1e-9);
}

TEST(StrassenSeq, CutoffAtFullSizeIsNaive) {
  const Matrix a = Matrix::random(32, 12);
  const Matrix b = Matrix::random(32, 13);
  EXPECT_EQ(Matrix::max_abs_diff(strassen_sequential(a, b, 32),
                                 naive_multiply(a, b)),
            0.0);
}

TEST(StrassenApp, ParallelMatchesSequential) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const StrassenParams p = StrassenParams::tiny();
  const StrassenResult r = run_strassen(rt, p);
  const Matrix a = Matrix::random(p.n, p.seed);
  const Matrix b = Matrix::random(p.n, p.seed ^ 0xabcdef);
  const double ref = strassen_sequential(a, b, p.cutoff).checksum();
  EXPECT_NEAR(r.checksum, ref, 1e-6 * (1.0 + std::abs(ref)));
}

TEST(StrassenApp, SpawnsElevenTasksPerLevel) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  StrassenParams p;
  p.n = 64;
  p.cutoff = 32;  // exactly one level of recursion
  p.seed = 1;
  const StrassenResult r = run_strassen(rt, p);
  EXPECT_EQ(r.tasks, 1u + 7u + 4u);  // root + 7 products + 4 combines
}

TEST(StrassenApp, ValidUnderKjAndTj) {
  for (auto pol : {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    (void)run_strassen(rt, StrassenParams::tiny());
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

}  // namespace
}  // namespace tj::apps
