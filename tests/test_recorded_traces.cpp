// End-to-end bridge between the runtime and the formalism: record real
// executions as traces (Def. 3.1) and check them against the offline
// judgments. A TJ-verified run that never rejected must record a TJ-valid,
// deadlock-free trace; NQueens records traces that are TJ-valid but
// (whenever the arbitrary-order joins fire) KJ-invalid.

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "runtime/api.hpp"
#include "trace/deadlock.hpp"
#include "trace/validity.hpp"

namespace tj {
namespace {

runtime::Config recording(core::PolicyChoice p) {
  runtime::Config cfg;
  cfg.policy = p;
  cfg.record_trace = true;
  return cfg;
}

TEST(RecordedTraces, SimpleForkJoinShape) {
  runtime::Runtime rt(recording(core::PolicyChoice::TJ_SP));
  rt.root([] {
    auto a = runtime::async([] { return 1; });
    auto b = runtime::async([] { return 2; });
    (void)a.get();
    (void)b.get();
  });
  const trace::Trace t = rt.recorded_trace();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], trace::init(0));
  EXPECT_EQ(t[1], trace::fork(0, 1));
  EXPECT_EQ(t[2], trace::fork(0, 2));
  EXPECT_EQ(t.join_count(), 2u);
  EXPECT_TRUE(trace::is_tj_valid(t));
  EXPECT_TRUE(trace::is_kj_valid(t));
}

TEST(RecordedTraces, RecordingOffByDefault) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  rt.root([] { runtime::async([] {}).join(); });
  EXPECT_TRUE(rt.recorded_trace().empty());
}

class RecordedApps : public ::testing::TestWithParam<const char*> {};

TEST_P(RecordedApps, ExecutionsAreStructurallyValidAndDeadlockFree) {
  const apps::AppInfo* app = apps::find_app(GetParam());
  ASSERT_NE(app, nullptr);
  runtime::Runtime rt(recording(core::PolicyChoice::TJ_SP));
  const apps::AppOutcome out = app->run(rt, apps::AppSize::Tiny);
  EXPECT_TRUE(out.valid) << out.detail;
  const trace::Trace t = rt.recorded_trace();
  EXPECT_EQ(t.fork_count() + 1, rt.tasks_created());
  EXPECT_TRUE(trace::is_structurally_valid(t));
  // Theorem 3.11, observed: the recorded joins contain no cycle.
  EXPECT_FALSE(trace::contains_deadlock(t));
}

TEST_P(RecordedApps, TjAcceptedRunsRecordTjValidTraces) {
  const apps::AppInfo* app = apps::find_app(GetParam());
  runtime::Runtime rt(recording(core::PolicyChoice::TJ_SP));
  (void)app->run(rt, apps::AppSize::Tiny);
  ASSERT_EQ(rt.gate_stats().policy_rejections, 0u);
  EXPECT_TRUE(trace::is_tj_valid(rt.recorded_trace()));
}

INSTANTIATE_TEST_SUITE_P(AllApps, RecordedApps,
                         ::testing::Values("jacobi", "smithwaterman", "crypt",
                                           "strassen", "series", "nqueens"));

TEST(RecordedTraces, NQueensKjInvalidWheneverKjRejects) {
  // Run NQueens under KJ with recording: if the verifier rejected any join,
  // the recorded trace must indeed be KJ-invalid (and still TJ-valid) —
  // the online verdicts agree with the offline judgment.
  for (int attempt = 0; attempt < 5; ++attempt) {
    runtime::Runtime rt(recording(core::PolicyChoice::KJ_SS));
    const apps::AppInfo* app = apps::find_app("nqueens");
    (void)app->run(rt, apps::AppSize::Small);
    const trace::Trace t = rt.recorded_trace();
    EXPECT_TRUE(trace::is_tj_valid(t));
    if (rt.gate_stats().policy_rejections > 0) {
      EXPECT_FALSE(trace::is_kj_valid(t));
      return;  // observed the nondeterministic violation: done
    }
  }
  GTEST_SKIP() << "KJ violation did not surface in 5 runs (nondeterministic)";
}

TEST(RecordedTraces, MultipleJoinsOfOneFutureAreRecorded) {
  runtime::Runtime rt(recording(core::PolicyChoice::TJ_SP));
  rt.root([] {
    auto f = runtime::async([] { return 1; });
    f.join();
    f.join();
  });
  EXPECT_EQ(rt.recorded_trace().join_count(), 2u);
}

}  // namespace
}  // namespace tj
