// Unit tests for the flight-recorder building blocks: the SPSC ring
// (wrap-around, drop-newest, concurrent peeking), the log2 latency
// histogram (zero/max/overflow edges), the recorder itself (multi-thread
// emission, drop accounting, drain ordering, recent()), the Chrome Trace
// exporter, and the runtime integration (off by default; on-demand).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "core/witness.hpp"
#include "obs/causal.hpp"
#include "obs/export_chrome.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/ring_buffer.hpp"
#include "runtime/api.hpp"
#include "runtime/watchdog.hpp"

namespace tj {
namespace {

// --- SpscRing -------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(obs::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(obs::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(obs::SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(obs::SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, RejectsWhenFullAndKeepsPrefix) {
  obs::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  // Drop-newest: the push fails, the buffered prefix is untouched.
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, WrapsAcrossManyPushPopCycles) {
  obs::SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Interleave partial fills and drains so the indices wrap many times.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    const std::size_t burst = 1 + static_cast<std::size_t>(cycle % 8);
    for (std::size_t i = 0; i < burst; ++i) {
      if (ring.try_push(next_push)) ++next_push;
    }
    const std::size_t drain = 1 + static_cast<std::size_t>((cycle * 3) % 8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < drain && ring.try_pop(v); ++i) {
      EXPECT_EQ(v, next_pop);  // FIFO order survives wrap-around
      ++next_pop;
    }
  }
  std::uint64_t v = 0;
  while (ring.try_pop(v)) {
    EXPECT_EQ(v, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, ForEachLiveSeesBufferedEntriesOldestFirst) {
  obs::SpscRing<int> ring(4);
  for (int i = 0; i < 3; ++i) ring.try_push(i);
  int popped = 0;
  ring.try_pop(popped);
  std::vector<int> seen;
  ring.for_each_live([&](const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

// --- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogram, ZeroLandsInBucketZero) {
  obs::LatencyHistogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
}

TEST(LatencyHistogram, BucketEdgesArePowersOfTwo) {
  // bucket i covers [2^(i-1), 2^i): 1 → bucket 1, 2..3 → bucket 2, ...
  EXPECT_EQ(obs::LatencyHistogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_index((1u << 20) - 1), 20u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_index(1u << 20), 21u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_floor(1), 1u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_floor(21), 1u << 20);
}

TEST(LatencyHistogram, MaxValueCountsAsOverflowNotClamped) {
  obs::LatencyHistogram h;
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  h.record(big);
  h.record(std::uint64_t{1} << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.max_ns(), big);
  EXPECT_EQ(h.min_ns(), std::uint64_t{1} << 62);
}

TEST(LatencyHistogram, QuantilesTrackTheDistribution) {
  obs::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100);    // bucket 7: [64,128)
  h.record(std::uint64_t{1} << 30);              // one outlier
  EXPECT_EQ(h.approx_quantile_ns(0.5), 64u);
  EXPECT_GE(h.approx_quantile_ns(1.0), std::uint64_t{1} << 29);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("count=100"), std::string::npos) << s;
}

TEST(LatencyHistogram, SummaryCarriesP999Tail) {
  obs::LatencyHistogram h;
  // 9980 fast samples and 20 slow ones (0.2%): p99 stays in the fast
  // bucket while p999 lands at the tail — the quantile the SLOs gate on.
  for (int i = 0; i < 9980; ++i) h.record(100);  // bucket [64,128)
  for (int i = 0; i < 20; ++i) h.record(std::uint64_t{1} << 20);
  const obs::LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_EQ(s.p99_ns, 64u);
  EXPECT_GE(s.p999_ns, std::uint64_t{1} << 19);
  EXPECT_EQ(s.p999_ns, h.approx_quantile_ns(0.999));
  // Empty summary: every quantile, p999 included, reads zero.
  EXPECT_EQ(obs::LatencyHistogram{}.summary().p999_ns, 0u);
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.approx_quantile_ns(0.99), 0u);
}

// --- FlightRecorder -------------------------------------------------------

obs::Event make_event(obs::EventKind k, std::uint64_t actor,
                      std::uint64_t target = 0) {
  obs::Event e;
  e.kind = k;
  e.actor = actor;
  e.target = target;
  return e;
}

TEST(FlightRecorder, DrainMergesThreadsInSequenceOrder) {
  obs::FlightRecorder rec({.enabled = true, .buffer_capacity = 1 << 12});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.emit(make_event(obs::EventKind::TaskStart,
                            static_cast<std::uint64_t>(t)));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(rec.events_recorded(), kThreads * kPerThread);
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_EQ(rec.thread_count(), static_cast<std::size_t>(kThreads));
  const std::vector<obs::Event> events = rec.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // seqs are dense and sorted
  }
  // Drain consumed everything.
  EXPECT_TRUE(rec.drain().empty());
}

TEST(FlightRecorder, FullRingDropsExplicitly) {
  obs::FlightRecorder rec({.enabled = true, .buffer_capacity = 8});
  for (int i = 0; i < 100; ++i) {
    rec.emit(make_event(obs::EventKind::TaskStart, 1));
  }
  EXPECT_EQ(rec.events_recorded(), 8u);
  EXPECT_EQ(rec.events_dropped(), 92u);
  // The retained events are the oldest (drop-newest keeps the prefix).
  const std::vector<obs::Event> events = rec.drain();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().seq, 0u);
  EXPECT_EQ(events.back().seq, 7u);
}

TEST(FlightRecorder, RecentFiltersByActorOrTaskTarget) {
  obs::FlightRecorder rec({.enabled = true, .buffer_capacity = 1 << 10});
  rec.emit(make_event(obs::EventKind::TaskSpawn, 1, 2));
  rec.emit(make_event(obs::EventKind::TaskStart, 2));
  rec.emit(make_event(obs::EventKind::TaskStart, 3));
  obs::Event pe = make_event(obs::EventKind::AwaitComplete, 4, 2);
  pe.flags = obs::kFlagPromise;  // target is promise 2, not task 2
  rec.emit(pe);
  const std::vector<obs::Event> hits = rec.recent(2, 8);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].kind, obs::EventKind::TaskSpawn);
  EXPECT_EQ(hits[1].kind, obs::EventKind::TaskStart);
  // max_events keeps the MOST RECENT matches.
  const std::vector<obs::Event> last = rec.recent(2, 1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].kind, obs::EventKind::TaskStart);
}

TEST(FlightRecorder, TimestampsAreMonotonicPerThread) {
  obs::FlightRecorder rec({.enabled = true, .buffer_capacity = 64});
  for (int i = 0; i < 10; ++i) {
    rec.emit(make_event(obs::EventKind::TaskStart, 1));
  }
  const std::vector<obs::Event> events = rec.drain();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_ns, events[i - 1].t_ns);
  }
}

// --- Chrome Trace export --------------------------------------------------

TEST(ChromeExport, EmitsSlicesAndInstants) {
  std::vector<obs::Event> events;
  obs::Event start = make_event(obs::EventKind::TaskStart, 7);
  start.seq = 0;
  start.t_ns = 1000;
  obs::Event blocked = make_event(obs::EventKind::JoinBlocked, 7, 9);
  blocked.seq = 1;
  blocked.t_ns = 5000;
  blocked.payload = 2500;  // blocked for 2.5 µs ending at t_ns
  obs::Event end = make_event(obs::EventKind::TaskEnd, 7);
  end.seq = 2;
  end.t_ns = 9000;
  events = {start, blocked, end};
  const std::string json = obs::to_chrome_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos) << json;
  // The X slice starts when blocking began, not when it ended.
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos) << json;
}

TEST(ChromeExport, EmitsFlowArrowsForSpawnAndJoin) {
  // One spawn→start and one end→join-complete pair: each contributes an
  // "s"/"f" flow-event pair in the tj-flow category sharing one id.
  std::vector<obs::Event> events;
  obs::Event spawn = make_event(obs::EventKind::TaskSpawn, 1, 2);
  spawn.seq = 0;
  spawn.t_ns = 100;
  obs::Event start = make_event(obs::EventKind::TaskStart, 2);
  start.seq = 1;
  start.t_ns = 200;
  obs::Event end = make_event(obs::EventKind::TaskEnd, 2);
  end.seq = 2;
  end.t_ns = 300;
  obs::Event join = make_event(obs::EventKind::JoinComplete, 1, 2);
  join.seq = 3;
  join.t_ns = 400;
  events = {spawn, start, end, join};
  const std::string json = obs::to_chrome_json(events);
  EXPECT_NE(json.find("\"cat\":\"tj-flow\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  // Binding-point "enclosing" on the finish side only.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos) << json;
  const auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  // Task uid 2: spawn flow id 4 ("s" at TaskSpawn, "f" at TaskStart), join
  // flow id 5 ("s" at TaskEnd, "f" at JoinComplete).
  EXPECT_EQ(count("\"id\":4"), 2u) << json;
  EXPECT_EQ(count("\"id\":5"), 2u) << json;
}

// --- Critical-path attribution --------------------------------------------

TEST(CriticalPath, AttributesDurationsOnAndOffTheLastArrivalPath) {
  // Root (1) spawns child 2 (the long pole, joined last-arrival) and child 3
  // (finishes early, off the path). Duration events anchor to their actor's
  // next spine event: the root's ruling and scan are on-path, child 3's
  // ruling is off-path.
  const auto ev = [](std::uint64_t seq, obs::EventKind k, std::uint64_t actor,
                     std::uint64_t target, std::uint64_t t_ns,
                     std::uint64_t payload = 0) {
    obs::Event e;
    e.seq = seq;
    e.kind = k;
    e.actor = actor;
    e.target = target;
    e.t_ns = t_ns;
    e.payload = payload;
    return e;
  };
  const std::vector<obs::Event> events = {
      ev(1, obs::EventKind::TaskInit, 1, 0, 0),
      ev(2, obs::EventKind::JoinVerdict, 1, 2, 8, 5),
      ev(3, obs::EventKind::TaskSpawn, 1, 2, 10),
      ev(4, obs::EventKind::TaskSpawn, 1, 3, 12),
      ev(5, obs::EventKind::TaskStart, 2, 0, 20),
      ev(6, obs::EventKind::TaskStart, 3, 0, 30),
      ev(7, obs::EventKind::JoinVerdict, 3, 9, 35, 9),
      ev(8, obs::EventKind::TaskEnd, 3, 0, 40),
      ev(9, obs::EventKind::CycleScan, 1, 2, 50, 7),
      ev(10, obs::EventKind::TaskEnd, 2, 0, 100),
      ev(11, obs::EventKind::JoinComplete, 1, 2, 110),
      ev(12, obs::EventKind::JoinComplete, 1, 3, 115),
  };
  const obs::CriticalPathReport rep = obs::analyze_critical_path(events);

  // The walk jumps into child 2's chain through TaskEnd(2)→JoinComplete.
  ASSERT_EQ(rep.path.size(), 6u);
  EXPECT_EQ(rep.path.front().kind, obs::EventKind::TaskInit);
  EXPECT_EQ(rep.path[2].actor, 2u);  // TaskStart of the long pole
  EXPECT_EQ(rep.path.back().kind, obs::EventKind::JoinComplete);
  EXPECT_EQ(rep.span_ns, 115u);

  EXPECT_EQ(rep.policy_check.on_path_ns, 5u);
  EXPECT_EQ(rep.policy_check.off_path_ns, 9u);
  EXPECT_EQ(rep.policy_check.count, 2u);
  EXPECT_EQ(rep.policy_check.on_path_count, 1u);
  EXPECT_EQ(rep.cycle_scan.on_path_ns, 7u);
  EXPECT_EQ(rep.cycle_scan.off_path_ns, 0u);
  EXPECT_EQ(rep.verifier_on_path_ns(), 12u);
  EXPECT_EQ(rep.verifier_off_path_ns(), 9u);
  // The attribution partitions each category's total exactly.
  EXPECT_EQ(rep.policy_check.total_ns(), 14u);
  EXPECT_FALSE(rep.to_string().empty());
}

TEST(CriticalPath, RealRunReconcilesWithTheMetricsHistogram) {
  // On a live run with zero drops, on+off per category must equal the
  // histogram's sum exactly (both sides record identical payloads).
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.obs.enabled = true;
  runtime::Runtime rt(cfg);
  rt.root([] {
    for (int i = 0; i < 16; ++i) {
      auto f = runtime::async([i] { return i; });
      (void)f.get();
    }
  });
  ASSERT_EQ(rt.recorder()->events_dropped(), 0u);
  const obs::Metrics& m = rt.recorder()->metrics();
  const std::uint64_t policy_sum = m.policy_check_ns.sum_ns();
  const std::uint64_t scan_sum = m.cycle_scan_ns.sum_ns();
  const obs::CriticalPathReport rep =
      obs::analyze_critical_path(rt.recorder()->drain());
  EXPECT_EQ(rep.policy_check.total_ns(), policy_sum);
  EXPECT_EQ(rep.cycle_scan.total_ns(), scan_sum);
  EXPECT_GT(rep.span_ns, 0u);
  EXPECT_GE(rep.path.size(), 2u);
}

// --- Runtime integration --------------------------------------------------

TEST(RecorderRuntime, OffByDefaultCostsNothing) {
  runtime::Runtime rt(runtime::Config{});
  EXPECT_EQ(rt.recorder(), nullptr);
  rt.root([] { runtime::async([] {}).join(); });
}

TEST(RecorderRuntime, RecordsLifecycleAndVerdicts) {
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.obs.enabled = true;
  runtime::Runtime rt(cfg);
  ASSERT_NE(rt.recorder(), nullptr);
  rt.root([] {
    auto a = runtime::async([] { return 1; });
    auto b = runtime::async([] { return 2; });
    (void)a.get();
    (void)b.get();
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  ASSERT_FALSE(events.empty());
  std::uint64_t inits = 0, spawns = 0, joins = 0, verdicts = 0, starts = 0;
  for (const obs::Event& e : events) {
    switch (e.kind) {
      case obs::EventKind::TaskInit: ++inits; break;
      case obs::EventKind::TaskSpawn: ++spawns; break;
      case obs::EventKind::JoinComplete: ++joins; break;
      case obs::EventKind::JoinVerdict: ++verdicts; break;
      case obs::EventKind::TaskStart: ++starts; break;
      default: break;
    }
  }
  EXPECT_EQ(inits, 1u);
  EXPECT_EQ(spawns, 2u);
  EXPECT_EQ(joins, 2u);
  EXPECT_EQ(verdicts, rt.gate_stats().joins_checked);
  EXPECT_GE(starts, 3u);  // root + two children
  EXPECT_EQ(rt.recorder()->events_dropped(), 0u);
  // Verdict events carry the ruling policy id.
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::JoinVerdict) {
      EXPECT_EQ(e.policy,
                static_cast<std::uint8_t>(core::PolicyChoice::TJ_SP));
      EXPECT_EQ(e.detail,
                static_cast<std::uint8_t>(core::JoinDecision::Proceed));
    }
  }
  // Blocked-join wall time lands in the metrics registry, not just events.
  const obs::Metrics& m = rt.recorder()->metrics();
  EXPECT_EQ(m.policy_check_ns.count(), rt.gate_stats().joins_checked);
}

TEST(RecorderRuntime, RejectionEmitsVerdictExplainedEvent) {
  // A self-await is deterministically rejected; the fallback confirms the
  // concrete cycle, and the gate emits a VerdictExplained event quoting the
  // witness kind, the promise flag, and the evidence-chain length.
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.promise_policy = core::PromisePolicy::OWP;
  cfg.obs.enabled = true;
  runtime::Runtime rt(cfg);
  rt.root([] {
    auto p = runtime::make_promise<int>();
    EXPECT_THROW((void)p.get(), runtime::DeadlockAvoidedError);
    p.fulfill(3);
    EXPECT_EQ(p.get(), 3);
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  bool fault_verdict = false;
  bool explained = false;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::AwaitVerdict &&
        e.detail ==
            static_cast<std::uint8_t>(core::JoinDecision::FaultDeadlock)) {
      fault_verdict = true;
    }
    if (e.kind == obs::EventKind::VerdictExplained) {
      explained = true;
      // The fallback's concrete cycle supersedes the OWP chain evidence.
      EXPECT_EQ(e.detail,
                static_cast<std::uint8_t>(core::WitnessKind::WfgCycle));
      EXPECT_NE(e.flags & obs::kFlagPromise, 0);
      EXPECT_GE(e.payload, 2u);  // waiter → promise node, closing implicit
    }
  }
  EXPECT_TRUE(fault_verdict);
  EXPECT_TRUE(explained);
}

TEST(RecorderRuntime, StallReportCarriesPolicyAndRecentEvents) {
  runtime::StallReport report;
  report.policy_name = "TJ-SP";
  report.policy_id = static_cast<std::uint8_t>(core::PolicyChoice::TJ_SP);
  report.stalled.push_back(
      {1, 2, false, "proceed", std::chrono::milliseconds(250),
       {"[12 @95000] join-blocked 1->2"}});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("under policy TJ-SP (id"), std::string::npos) << text;
  EXPECT_NE(text.find("join-blocked 1->2"), std::string::npos) << text;
}

TEST(RecorderRuntime, WatchdogReportQuotesRecordedHistoryLive) {
  // Synthetic external stall (as in test_watchdog) with the recorder on:
  // the report must name the active policy and quote the stalled parties'
  // recorded events, pulled concurrently from the live rings.
  std::mutex mu;
  std::vector<runtime::StallReport> reports;
  std::atomic<bool> release{false};

  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.scheduler = runtime::SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 5;
  cfg.watchdog.stall_ms = 25;
  cfg.watchdog.on_stall = [&](const runtime::StallReport& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reports.push_back(r);
    }
    release.store(true, std::memory_order_release);
  };
  cfg.obs.enabled = true;
  runtime::Runtime rt(cfg);

  std::thread safety([&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    release.store(true, std::memory_order_release);
  });
  rt.root([&] {
    auto stuck = runtime::async([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return 9;
    });
    EXPECT_EQ(stuck.get(), 9);
  });
  safety.join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].policy_name, "TJ-SP");
  EXPECT_EQ(reports[0].policy_id,
            static_cast<std::uint8_t>(core::PolicyChoice::TJ_SP));
  ASSERT_GE(reports[0].stalled.size(), 1u);
  // The waiter forked the stuck task and the stuck task started: at least
  // those events name the stalled parties.
  EXPECT_FALSE(reports[0].stalled[0].recent_events.empty());
  const obs::Metrics& m = rt.recorder()->metrics();
  EXPECT_GE(m.stall_reports.load(), 1u);
}

}  // namespace
}  // namespace tj
