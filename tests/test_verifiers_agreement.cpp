// Cross-validation: each online verifier must agree with its reference
// judgment on random traces — the three TJ algorithms with t ⊢ a < b
// (Definition 3.3 / Theorem 3.17), the two KJ implementations with
// t ⊢ a ≺ b (Definition 4.1).

#include <gtest/gtest.h>

#include <memory>

#include "core/verifier.hpp"
#include "trace/kj_judgment.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"
#include "trace_replay.hpp"

namespace tj {
namespace {

using core::PolicyChoice;

struct AgreementCase {
  PolicyChoice policy;
  std::uint64_t seed;
  double depth_bias;
};

void PrintTo(const AgreementCase& c, std::ostream* os) {
  *os << core::to_string(c.policy) << "/seed" << c.seed << "/bias"
      << c.depth_bias;
}

class VerifierAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(VerifierAgreement, MatchesReferenceJudgmentOnRandomTraces) {
  const auto [policy, seed, bias] = GetParam();
  const bool is_kj =
      policy == PolicyChoice::KJ_VC || policy == PolicyChoice::KJ_SS;
  constexpr trace::TaskId kTasks = 40;
  // KJ verifiers also consume joins (KJ-learn), so replay KJ-valid traces
  // with joins for them; TJ verifiers only care about the fork tree.
  const trace::Trace t = is_kj
                             ? trace::random_kj_valid_trace(kTasks, 50, seed, bias)
                             : trace::random_tree_trace(kTasks, seed, bias);

  auto verifier = core::make_verifier(policy);
  ASSERT_NE(verifier, nullptr);
  testing::TraceReplay replay(*verifier);
  replay.feed_all(t);

  const trace::TjJudgment tj(t);
  const trace::KjJudgment kj(t);
  for (trace::TaskId a = 0; a < kTasks; ++a) {
    for (trace::TaskId b = 0; b < kTasks; ++b) {
      const bool expected = is_kj ? kj.knows(a, b) : tj.less(a, b);
      EXPECT_EQ(replay.permits(a, b), expected)
          << "a=" << a << " b=" << b << " policy="
          << core::to_string(policy);
    }
  }
}

TEST_P(VerifierAgreement, MatchesReferenceAtEveryPrefix) {
  // Permission is checked online, i.e. against the trace-so-far: verify the
  // verifier's answers against the incremental judgment after every action.
  const auto [policy, seed, bias] = GetParam();
  const bool is_kj =
      policy == PolicyChoice::KJ_VC || policy == PolicyChoice::KJ_SS;
  constexpr trace::TaskId kTasks = 16;
  const trace::Trace t =
      is_kj ? trace::random_kj_valid_trace(kTasks, 20, seed, bias)
            : trace::random_tree_trace(kTasks, seed, bias);

  auto verifier = core::make_verifier(policy);
  testing::TraceReplay replay(*verifier);
  trace::TjJudgment tj;
  trace::KjJudgment kj;
  for (const trace::Action& act : t.actions()) {
    replay.feed(act);
    tj.push(act);
    kj.push(act);
    for (trace::TaskId a = 0; a < kTasks; ++a) {
      if (!replay.has(a)) continue;
      for (trace::TaskId b = 0; b < kTasks; ++b) {
        if (!replay.has(b)) continue;
        const bool expected = is_kj ? kj.knows(a, b) : tj.less(a, b);
        EXPECT_EQ(replay.permits(a, b), expected)
            << "after " << trace::to_string(act) << " a=" << a << " b=" << b;
      }
    }
  }
}

std::vector<AgreementCase> agreement_cases() {
  std::vector<AgreementCase> cases;
  for (PolicyChoice p :
       {PolicyChoice::TJ_GT, PolicyChoice::TJ_JP, PolicyChoice::TJ_SP,
        PolicyChoice::KJ_VC, PolicyChoice::KJ_SS}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      for (double bias : {0.0, 0.5, 1.0}) {
        cases.push_back({p, seed, bias});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVerifiers, VerifierAgreement,
                         ::testing::ValuesIn(agreement_cases()));

class TjVariantsIdentical : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TjVariantsIdentical, GtJpSpAgreePairwise) {
  // The three TJ algorithms implement one decision procedure (Thm 3.15);
  // they must agree on every pair, including deep chains and wide stars.
  constexpr trace::TaskId kTasks = 60;
  const trace::Trace t =
      trace::random_tree_trace(kTasks, GetParam(), 0.01 * (GetParam() % 100));

  auto gt = core::make_verifier(PolicyChoice::TJ_GT);
  auto jp = core::make_verifier(PolicyChoice::TJ_JP);
  auto sp = core::make_verifier(PolicyChoice::TJ_SP);
  testing::TraceReplay rg(*gt), rj(*jp), rs(*sp);
  rg.feed_all(t);
  rj.feed_all(t);
  rs.feed_all(t);
  for (trace::TaskId a = 0; a < kTasks; ++a) {
    for (trace::TaskId b = 0; b < kTasks; ++b) {
      const bool g = rg.permits(a, b);
      EXPECT_EQ(g, rj.permits(a, b)) << "a=" << a << " b=" << b;
      EXPECT_EQ(g, rs.permits(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TjVariantsIdentical,
                         ::testing::Values(11, 37, 58, 83, 99));

}  // namespace
}  // namespace tj
