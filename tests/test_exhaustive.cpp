// Bounded-exhaustive verification of the paper's claims: enumerate EVERY
// structurally valid trace at small scope and check the theorems on each —
// no randomness, no sampling gaps (within the bounds).

#include <gtest/gtest.h>

#include "trace/deadlock.hpp"
#include "trace/enumerate.hpp"
#include "trace/kj_judgment.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/validity.hpp"

namespace tj::trace {
namespace {

TEST(Enumerate, CountsSmallSpaces) {
  // Only the root, no joins beyond duplicates: init alone.
  EXPECT_EQ(count_traces({1, 0, true}), 1u);
  // One possible fork plus the bare init.
  EXPECT_EQ(count_traces({2, 0, true}), 2u);
  // init; init+join(0,0) — self-join of the root.
  EXPECT_EQ(count_traces({1, 1, true}), 2u);
}

TEST(Enumerate, VisitOrderIsPrefixClosed) {
  std::vector<Trace> seen;
  for_each_trace({3, 1, true}, [&seen](const Trace& t) {
    if (t.size() > 1) {
      // The immediate prefix must have been visited already.
      const Trace prefix = t.prefix(t.size() - 1);
      bool found = false;
      for (const Trace& s : seen) found = found || s == prefix;
      EXPECT_TRUE(found) << t.to_string();
    }
    seen.push_back(t);
    return true;
  });
  EXPECT_GT(seen.size(), 10u);
}

TEST(Enumerate, EarlyStopIsHonoured) {
  std::uint64_t calls = 0;
  const std::uint64_t visited = for_each_trace({4, 2, true},
                                               [&calls](const Trace&) {
                                                 ++calls;
                                                 return calls < 5;
                                               });
  EXPECT_EQ(visited, 5u);
  EXPECT_EQ(calls, 5u);
}

TEST(Enumerate, AllTracesAreStructurallyValid) {
  const std::uint64_t n =
      for_each_trace({4, 2, true}, [](const Trace& t) {
        EXPECT_TRUE(is_structurally_valid(t)) << t.to_string();
        return true;
      });
  EXPECT_GT(n, 1000u);
}

TEST(ExhaustiveTheorems, TjValidTracesNeverDeadlock) {
  // Theorem 3.11, exhaustively at scope (4 tasks, 3 joins).
  std::uint64_t tj_valid = 0;
  for_each_trace({4, 3, true}, [&tj_valid](const Trace& t) {
    if (is_tj_valid(t)) {
      ++tj_valid;
      EXPECT_FALSE(contains_deadlock(t)) << t.to_string();
    }
    return true;
  });
  EXPECT_GT(tj_valid, 500u);
}

TEST(ExhaustiveTheorems, KjValidImpliesTjValid) {
  // Corollary 4.4, exhaustively; also count the strict gap.
  std::uint64_t kj_valid = 0;
  std::uint64_t tj_only = 0;
  for_each_trace({4, 3, true}, [&](const Trace& t) {
    const bool kj = is_kj_valid(t);
    const bool tj = is_tj_valid(t);
    if (kj) {
      ++kj_valid;
      EXPECT_TRUE(tj) << t.to_string();
    }
    if (tj && !kj) ++tj_only;
    return true;
  });
  EXPECT_GT(kj_valid, 100u);
  EXPECT_GT(tj_only, 0u) << "the subsumption must be strict at this scope";
}

TEST(ExhaustiveTheorems, KnowledgeIsAlwaysASubsetOfTjPermission) {
  // Theorem 4.3 over every enumerated KJ-VALID trace and every task pair.
  for_each_trace({4, 2, true}, [](const Trace& t) {
    if (!is_kj_valid(t)) return true;  // Thm 4.3's hypothesis
    const KjJudgment kj(t);
    const TjJudgment tj(t);
    const auto tasks = t.tasks();
    for (TaskId a : tasks) {
      for (TaskId b : tasks) {
        if (kj.knows(a, b)) {
          EXPECT_TRUE(tj.less(a, b))
              << t.to_string() << " a=" << a << " b=" << b;
        }
      }
    }
    return true;
  });
}

TEST(ExhaustiveTheorems, TotalOrderAtEveryPrefix) {
  // Theorem 3.10 on every enumerated fork structure.
  for_each_trace({5, 0, true}, [](const Trace& t) {
    const TjJudgment tj(t);
    const auto tasks = t.tasks();
    for (TaskId a : tasks) {
      for (TaskId b : tasks) {
        const int holds = (a == b ? 1 : 0) + (tj.less(a, b) ? 1 : 0) +
                          (tj.less(b, a) ? 1 : 0);
        EXPECT_EQ(holds, 1) << t.to_string() << " a=" << a << " b=" << b;
      }
    }
    return true;
  });
}

TEST(ExhaustiveTheorems, TjIsMaximallyPermissive) {
  // Sec. 4's closing claim, exhaustively: on every enumerated fork tree and
  // for every ordered pair (a, b) that TJ FORBIDS (b < a, a ≠ b), admitting
  // join(a, b) would admit a deadlocking completion — namely the 2-cycle
  // join(b, a); join(a, b), whose first half TJ itself permits. So no pair
  // can be added to < without losing soundness.
  for_each_trace({4, 0, true}, [](const Trace& t) {
    const TjJudgment tj(t);
    const auto tasks = t.tasks();
    for (TaskId a : tasks) {
      for (TaskId b : tasks) {
        if (a == b || tj.less(a, b)) continue;
        EXPECT_TRUE(tj.less(b, a));  // trichotomy
        Trace extended = t;
        extended.push_join(b, a);  // TJ-valid so far
        EXPECT_TRUE(is_tj_valid(extended));
        extended.push_join(a, b);  // the hypothetically-admitted join
        EXPECT_TRUE(contains_deadlock(extended))
            << t.to_string() << " a=" << a << " b=" << b;
      }
    }
    return true;
  });
}

}  // namespace
}  // namespace tj::trace
