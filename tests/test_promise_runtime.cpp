// Promise<T> runtime semantics under the Ownership Policy: fulfill/get in
// both scheduler modes, multi-reader awaits, fulfill-before/after-await
// races, ownership transfer (explicit and via async_owning), orphan
// detection, fault modes, the unverified baseline, and trace recording.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/validity.hpp"

namespace tj::runtime {
namespace {

Config owp_cfg(SchedulerMode m = SchedulerMode::Cooperative) {
  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.promise_policy = core::PromisePolicy::OWP;
  cfg.scheduler = m;
  cfg.workers = 2;
  return cfg;
}

// Spins until `waiter` has a registered wait edge (i.e. is blocked, or
// faulted — callers pair this with an eventual wake-up).
void spin_until_waiting(const Runtime& rt, std::uint64_t waiter) {
  while (!rt.gate().graph().is_waiting(waiter)) {
    std::this_thread::yield();
  }
}

class PromiseBothModes : public ::testing::TestWithParam<SchedulerMode> {};

TEST_P(PromiseBothModes, FulfillThenGet) {
  Runtime rt(owp_cfg(GetParam()));
  const int v = rt.root([] {
    auto p = make_promise<int>();
    p.fulfill(41);
    return p.get() + 1;  // already-fulfilled await never blocks
  });
  EXPECT_EQ(v, 42);
}

TEST_P(PromiseBothModes, ChildFulfillsBlockedParent) {
  Runtime rt(owp_cfg(GetParam()));
  const std::string v = rt.root([] {
    auto p = make_promise<std::string>();
    auto f = async_owning(p, [p] { p.fulfill("hello"); });
    const std::string got = p.get();  // blocks until the child fulfills
    f.join();
    return got;
  });
  EXPECT_EQ(v, "hello");
}

TEST_P(PromiseBothModes, ManyReadersOneFulfiller) {
  Runtime rt(owp_cfg(GetParam()));
  rt.root([] {
    auto p = make_promise<int>();
    std::vector<Future<int>> readers;
    for (int i = 0; i < 8; ++i) {
      readers.push_back(async([p] { return p.get(); }));
    }
    auto w = async_owning(p, [p] { p.fulfill(7); });
    for (auto& r : readers) EXPECT_EQ(r.get(), 7);
    w.join();
  });
  const core::GateStats s = rt.gate_stats();
  EXPECT_GE(s.awaits_checked, 8u);
  EXPECT_EQ(s.promises_orphaned, 0u);
}

TEST_P(PromiseBothModes, FulfillAfterAwaitRace) {
  // The awaiter deterministically blocks first (observed via its WFG edge),
  // then the owner fulfills: exercises the futex wake-up path.
  Runtime rt(owp_cfg(GetParam()));
  rt.root([&rt] {
    auto p = make_promise<int>();
    auto owner = async_owning(p, [&rt, p] {
      spin_until_waiting(rt, /*root uid=*/0);
      p.fulfill(13);
    });
    EXPECT_EQ(p.get(), 13);
    owner.join();
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, PromiseBothModes,
                         ::testing::Values(SchedulerMode::Blocking,
                                           SchedulerMode::Cooperative));

TEST(PromiseRuntime, DoubleFulfillIsUsageError) {
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    p.fulfill(1);
    EXPECT_THROW(p.fulfill(2), UsageError);
    EXPECT_EQ(p.get(), 1);
  });
}

TEST(PromiseRuntime, SelfAwaitFaultsAsDeadlock) {
  // Awaiting a promise you own: OWP rejects (reflexive obligation), and the
  // WFG fallback confirms waiter → promise → owner(=waiter) as a real cycle.
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    EXPECT_THROW(p.get(), DeadlockAvoidedError);
    p.fulfill(3);  // the program recovers: avoidance, not detection
    EXPECT_EQ(p.get(), 3);
  });
  const core::GateStats s = rt.gate_stats();
  EXPECT_GE(s.owp_rejections, 1u);
  EXPECT_GE(s.deadlocks_averted, 1u);
}

TEST(PromiseRuntime, SelfAwaitThrowModeFaultsAtPolicy) {
  Config cfg = owp_cfg();
  cfg.fault = core::FaultMode::Throw;
  Runtime rt(cfg);
  rt.root([] {
    auto p = make_promise<int>();
    EXPECT_THROW(p.get(), PolicyViolationError);
  });
  EXPECT_EQ(rt.gate_stats().cycle_checks, 0u);
}

TEST(PromiseRuntime, NonOwnerFulfillThrowMode) {
  Config cfg = owp_cfg();
  cfg.fault = core::FaultMode::Throw;
  Runtime rt(cfg);
  rt.root([] {
    auto p = make_promise<int>();
    auto f = async([p] { p.fulfill(1); });  // child never received ownership
    EXPECT_THROW(f.get(), PolicyViolationError);
    p.fulfill(2);
  });
}

TEST(PromiseRuntime, NonOwnerFulfillFallbackProceedsButCounts) {
  // In Fallback mode the violation is benign (the value still arrives) but
  // the ownership discipline records it.
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    auto f = async([p] { p.fulfill(9); });
    f.join();
    EXPECT_EQ(p.get(), 9);
  });
  EXPECT_GE(rt.gate_stats().ownership_violations, 1u);
}

TEST(PromiseRuntime, TransferMovesFulfilmentRight) {
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    std::atomic<bool> handed{false};
    auto f = async([p, &handed] {
      // Fulfill only after ownership has arrived: no violation expected.
      while (!handed.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      p.fulfill(5);
    });
    p.transfer_to(f.task());
    handed.store(true, std::memory_order_release);
    EXPECT_EQ(p.get(), 5);
    f.join();
  });
  EXPECT_EQ(rt.gate_stats().ownership_violations, 0u);
}

TEST(PromiseRuntime, NonOwnerTransferIsViolation) {
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    auto thief = async([p] {
      // Keep the receiver alive until the transfer has been rejected, so
      // the ownership check (not the terminated-receiver check) fires.
      std::atomic<bool> release{false};
      auto inner = async([&release] {
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
      EXPECT_THROW(p.transfer_to(inner.task()), PolicyViolationError);
      release.store(true, std::memory_order_release);
      inner.join();
    });
    thief.join();
    p.fulfill(0);
  });
  EXPECT_GE(rt.gate_stats().ownership_violations, 1u);
}

TEST(PromiseRuntime, TransferToTerminatedTaskIsUsageError) {
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<int>();
    auto f = async([] {});
    f.join();  // f is done
    EXPECT_THROW(p.transfer_to(f.task()), UsageError);
    p.fulfill(0);
  });
}

TEST(PromiseRuntime, CrossTransferDeadlockAverted) {
  // Root owns p; a child blocks awaiting p. Transferring p *to that child*
  // would make the child wait on its own obligation: the WFG retarget check
  // catches the cycle and the transfer faults instead.
  Runtime rt(owp_cfg());
  rt.root([&rt] {
    auto p = make_promise<int>();
    auto f = async([p] { return p.get(); });
    spin_until_waiting(rt, f.task().uid());
    EXPECT_THROW(p.transfer_to(f.task()), DeadlockAvoidedError);
    p.fulfill(11);  // recover: the blocked child wakes with the value
    EXPECT_EQ(f.get(), 11);
  });
  EXPECT_GE(rt.gate_stats().deadlocks_averted, 1u);
}

TEST(PromiseRuntime, MixedFuturePromiseCycleAverted) {
  // Child awaits root's promise (child → p → root in the shared WFG); root
  // joining the child would close a mixed future/promise cycle — caught by
  // the always-checked WFG insertion while owner edges are live.
  Runtime rt(owp_cfg());
  rt.root([&rt] {
    auto p = make_promise<int>();
    auto f = async([p] { return p.get(); });
    spin_until_waiting(rt, f.task().uid());
    EXPECT_THROW(f.get(), DeadlockAvoidedError);
    p.fulfill(21);  // recover
    EXPECT_EQ(f.get(), 21);
  });
  EXPECT_GE(rt.gate_stats().deadlocks_averted, 1u);
}

TEST(PromiseRuntime, OrphanedPromiseFaultsLaterAwaits) {
  Runtime rt(owp_cfg());
  rt.root([] {
    Promise<int> p;
    auto f = async([&p] { p = make_promise<int>(); });  // maker exits owning
    f.join();
    EXPECT_THROW(p.get(), DeadlockAvoidedError);
    EXPECT_THROW(p.fulfill(1), UsageError);  // orphaned promises are settled
  });
  const core::GateStats s = rt.gate_stats();
  EXPECT_GE(s.promises_orphaned, 1u);
  EXPECT_GE(s.deadlocks_averted, 1u);
}

TEST(PromiseRuntime, BlockedAwaiterWokenByOrphaning) {
  // Root blocks on p; p's owner then terminates without fulfilling. The
  // orphan sweep must wake the blocked awaiter, which faults instead of
  // hanging forever.
  Runtime rt(owp_cfg());
  rt.root([&rt] {
    auto p = make_promise<int>();
    std::atomic<bool> release{false};
    auto owner = async_owning(p, [&release] {
      while (!release.load()) std::this_thread::yield();
    });
    auto trigger = async([&rt, &release] {
      spin_until_waiting(rt, /*root uid=*/0);
      release.store(true);
    });
    EXPECT_THROW(p.get(), DeadlockAvoidedError);
    owner.join();
    trigger.join();
  });
  EXPECT_GE(rt.gate_stats().promises_orphaned, 1u);
}

TEST(PromiseRuntime, UnverifiedBaselineIsUnchecked) {
  Config cfg = owp_cfg();
  cfg.promise_policy = core::PromisePolicy::Unverified;
  Runtime rt(cfg);
  rt.root([] {
    auto p = make_promise<int>();
    auto f = async([p] { p.fulfill(4); });  // non-owner fulfill: not checked
    EXPECT_EQ(p.get(), 4);
    f.join();
  });
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.ownership_violations, 0u);
  EXPECT_EQ(s.owp_rejections, 0u);
  EXPECT_EQ(rt.owp_bytes(), 0u);
}

TEST(PromiseRuntime, AllFuturesProgramUnchangedUnderOwp) {
  // A promise-free program must behave identically with OWP configured:
  // no OWP state, no extra graph work, fast path intact.
  Runtime rt(owp_cfg());
  const int v = rt.root([] {
    auto f = async([] { return 2; });
    auto g = async([] { return 3; });
    return f.get() * g.get();
  });
  EXPECT_EQ(v, 6);
  const core::GateStats s = rt.gate_stats();
  EXPECT_EQ(s.awaits_checked, 0u);
  EXPECT_EQ(s.owp_rejections, 0u);
  EXPECT_EQ(rt.owp_bytes(), 0u);
  EXPECT_EQ(rt.promises_made(), 0u);
}

TEST(PromiseRuntime, RecordedTraceHasPromiseActionsAndIsOwpValid) {
  Config cfg = owp_cfg();
  cfg.record_trace = true;
  Runtime rt(cfg);
  rt.root([] {
    auto p = make_promise<int>();
    auto f = async_owning(p, [p] { p.fulfill(1); });
    (void)p.get();
    auto q = make_promise<int>();
    q.fulfill(2);
    (void)q.get();
    f.join();
  });
  const trace::Trace t = rt.recorded_trace();
  EXPECT_EQ(t.make_count(), 2u);
  EXPECT_GE(t.await_count(), 2u);
  EXPECT_EQ(t.promises().size(), 2u);
  EXPECT_TRUE(trace::is_owp_valid(t))
      << "recorded trace violates OWP:\n"
      << t;
}

TEST(PromiseRuntime, VoidPromise) {
  Runtime rt(owp_cfg());
  rt.root([] {
    auto p = make_promise<void>();
    auto f = async_owning(p, [p] { p.fulfill(); });
    p.await();
    EXPECT_TRUE(p.ready());
    f.join();
  });
}

TEST(PromiseRuntime, EmptyHandleIsUsageError) {
  Runtime rt(owp_cfg());
  rt.root([] {
    Promise<int> p;
    EXPECT_THROW(p.get(), UsageError);
    EXPECT_THROW(p.fulfill(0), UsageError);
  });
}

}  // namespace
}  // namespace tj::runtime
