// Euler-tour LCA: unit cases plus property agreement with the fork tree's
// walking implementation and the TJ judgment, across tree shapes and sizes.

#include <gtest/gtest.h>

#include "trace/euler_lca.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

TEST(EulerLca, SingleNodeTree) {
  const ForkTree tree(Trace{init(0)});
  const EulerLca lca(tree);
  EXPECT_EQ(lca.lca(0, 0), 0u);
  EXPECT_EQ(lca.lca_plus(0, 0).kind, LcaPlusKind::DecStar);
  EXPECT_FALSE(lca.preorder_less(0, 0));
}

TEST(EulerLca, Figure1Tree) {
  // a=0 forks b=1 then d=3; b forks c=2.
  const ForkTree tree(Trace{init(0), fork(0, 1), fork(1, 2), fork(0, 3)});
  const EulerLca lca(tree);
  EXPECT_EQ(lca.lca(2, 3), 0u);
  EXPECT_EQ(lca.lca(1, 2), 1u);
  EXPECT_EQ(lca.lca(0, 2), 0u);
  const LcaPlus sib = lca.lca_plus(3, 2);
  EXPECT_EQ(sib.kind, LcaPlusKind::Sib);
  EXPECT_EQ(sib.a_side, 3u);
  EXPECT_EQ(sib.b_side, 1u);
  EXPECT_EQ(lca.lca_plus(0, 2).kind, LcaPlusKind::AncPlus);
  EXPECT_EQ(lca.lca_plus(2, 1).kind, LcaPlusKind::DecStar);
  EXPECT_TRUE(lca.preorder_less(3, 2));
  EXPECT_FALSE(lca.preorder_less(2, 3));
}

TEST(EulerLca, ChainTree) {
  const ForkTree tree(chain_trace(50));
  const EulerLca lca(tree);
  EXPECT_EQ(lca.lca(10, 40), 10u);
  EXPECT_EQ(lca.lca(49, 0), 0u);
  EXPECT_TRUE(lca.preorder_less(3, 44));
  EXPECT_FALSE(lca.preorder_less(44, 3));
}

TEST(EulerLca, UnknownTaskThrows) {
  const ForkTree tree(star_trace(4));
  const EulerLca lca(tree);
  EXPECT_THROW((void)lca.lca(0, 99), std::invalid_argument);
}

struct ShapeCase {
  std::uint64_t seed;
  double bias;
  std::uint32_t n;
};

class EulerLcaProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(EulerLcaProperty, AgreesWithWalkingImplementationEverywhere) {
  const auto [seed, bias, n] = GetParam();
  const Trace t = random_tree_trace(n, seed, bias);
  const ForkTree tree(t);
  const EulerLca lca(tree);
  for (TaskId a = 0; a < n; ++a) {
    for (TaskId b = 0; b < n; ++b) {
      EXPECT_EQ(lca.lca(a, b), tree.lca(a, b)) << "a=" << a << " b=" << b;
      const LcaPlus fast = lca.lca_plus(a, b);
      const LcaPlus slow = tree.lca_plus(a, b);
      EXPECT_EQ(fast.kind, slow.kind) << "a=" << a << " b=" << b;
      if (fast.kind == LcaPlusKind::Sib) {
        EXPECT_EQ(fast.a_side, slow.a_side) << "a=" << a << " b=" << b;
        EXPECT_EQ(fast.b_side, slow.b_side) << "a=" << a << " b=" << b;
      }
      EXPECT_EQ(lca.preorder_less(a, b), tree.preorder_less(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(EulerLcaProperty, LinearizesTheTjOrder) {
  const auto [seed, bias, n] = GetParam();
  const Trace t = random_tree_trace(n, seed, bias);
  const ForkTree tree(t);
  const EulerLca lca(tree);
  const TjJudgment tj(t);
  for (TaskId a = 0; a < n; ++a) {
    for (TaskId b = 0; b < n; ++b) {
      EXPECT_EQ(lca.preorder_less(a, b), tj.less(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EulerLcaProperty,
    ::testing::Values(ShapeCase{1, 0.0, 40}, ShapeCase{2, 0.4, 60},
                      ShapeCase{3, 0.8, 50}, ShapeCase{4, 1.0, 30},
                      ShapeCase{5, 0.2, 80}));

}  // namespace
}  // namespace tj::trace
