// Recovery paths: the paper's stated advantage of avoidance over detection
// is that a rejected join faults *in the joining task*, which can catch and
// retry with a corrected join structure. These tests exercise exactly that
// for TJ-SP, KJ-SS and the OWP — and assert the gate leaks no WFG state
// across the fault/recovery boundary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>

#include "core/guarded.hpp"
#include "runtime/api.hpp"
#include "runtime/concurrent_queue.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::runtime {
namespace {

void expect_clean_graph(const Runtime& rt) {
  const wfg::WaitsForGraph& g = rt.gate().graph();
  EXPECT_EQ(g.edge_count(), 0u) << "leaked wait edges after recovery";
  EXPECT_EQ(g.probation_count(), 0u) << "leaked probation edges";
  EXPECT_EQ(g.owner_edge_count(), 0u) << "leaked promise owner edges";
}

TEST(Recovery, TjSpCrossSiblingDeadlockCaughtAndRetried) {
  // Attempt 1: two siblings join each other — a genuine cycle; exactly one
  // join faults with DeadlockAvoidedError. The faulted task recovers by
  // computing a fallback value. Attempt 2 (same runtime): the corrected
  // join order (younger joins older, one direction only) succeeds with no
  // further faults.
  Runtime rt({.policy = core::PolicyChoice::TJ_SP, .workers = 4});
  std::uint64_t averted_after_attempt1 = 0;
  const int total = rt.root([&rt, &averted_after_attempt1] {
    std::atomic<const Future<int>*> slot1{nullptr};
    std::atomic<const Future<int>*> slot2{nullptr};
    auto cross = [](std::atomic<const Future<int>*>& other) {
      const Future<int>* f;
      while ((f = other.load(std::memory_order_acquire)) == nullptr) {
        std::this_thread::yield();
      }
      try {
        return f->get() + 1;
      } catch (const DeadlockAvoidedError&) {
        return 100;  // recover: break the cycle with a local fallback
      }
    };
    Future<int> t1 = async([&slot2, &cross] { return cross(slot2); });
    Future<int> t2 = async([&slot1, &cross] { return cross(slot1); });
    slot1.store(&t1, std::memory_order_release);
    slot2.store(&t2, std::memory_order_release);
    const int attempt1 = t1.get() + t2.get();
    EXPECT_EQ(attempt1, 201);
    averted_after_attempt1 = rt.gate_stats().deadlocks_averted;

    // Attempt 2: corrected structure, same runtime, no further faults.
    auto older = async([] { return 20; });
    auto younger = async([older] { return older.get() + 1; });
    return younger.get();
  });
  EXPECT_EQ(total, 21);
  EXPECT_GE(averted_after_attempt1, 1u);
  EXPECT_EQ(rt.gate_stats().deadlocks_averted, averted_after_attempt1)
      << "the corrected join order must not fault";
  expect_clean_graph(rt);
}

TEST(Recovery, KjSsThrowModeRetryWithCorrectedJoinOrder) {
  // KJ-SS rejects a grandchild join the root never "learned". In Throw
  // mode that surfaces as PolicyViolationError at the join; the corrected
  // order — join the child first, *learning* its descendants — succeeds.
  Runtime rt({.policy = core::PolicyChoice::KJ_SS,
              .fault = core::FaultMode::Throw});
  const int v = rt.root([] {
    ConcurrentQueue<Future<int>> q;
    auto child = async([&q] {
      q.push(async([] { return 21; }));
      return 0;
    });
    std::optional<Future<int>> grand;
    while (!(grand = q.poll()).has_value()) std::this_thread::yield();
    int g = -1;
    try {
      g = grand->get();  // KJ-unknown target: rejected
    } catch (const PolicyViolationError&) {
      // Corrected join order: learn the grandchild through the child.
      child.join();
      g = grand->get();  // now KJ-known: admitted
    }
    return g + 21;
  });
  EXPECT_EQ(v, 42);
  const auto s = rt.gate_stats();
  EXPECT_GE(s.policy_rejections, 1u);
  EXPECT_EQ(s.deadlocks_averted, 0u);
  expect_clean_graph(rt);
}

TEST(Recovery, KjSsFallbackModeClearsWithoutLeakingProbation) {
  // Same shape under FaultMode::Fallback: the rejection is cleared by the
  // WFG (false positive), the join completes, and the probation edge it
  // planted is gone afterwards.
  Runtime rt({.policy = core::PolicyChoice::KJ_SS,
              .fault = core::FaultMode::Fallback});
  const int v = rt.root([] {
    ConcurrentQueue<Future<int>> q;
    auto child = async([&q] {
      q.push(async([] { return 21; }));
      return 0;
    });
    std::optional<Future<int>> grand;
    while (!(grand = q.poll()).has_value()) std::this_thread::yield();
    const int g = grand->get();
    child.join();
    return g + 21;
  });
  EXPECT_EQ(v, 42);
  const auto s = rt.gate_stats();
  EXPECT_GE(s.policy_rejections, 1u);
  EXPECT_EQ(s.policy_rejections, s.false_positives);
  expect_clean_graph(rt);
}

TEST(Recovery, OwpSelfAwaitCaughtThenFulfilledAndRetried) {
  // The owner awaiting its own unfulfilled promise is a certain deadlock
  // (it would block the only task obligated to fulfill it): OWP + WFG fault
  // the await. Recovery: the owner fulfills the promise itself, then the
  // retried await succeeds immediately.
  Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const int v = rt.root([] {
    auto p = make_promise<int>();
    int got = -1;
    try {
      got = p.get();  // owner awaiting its own obligation: faulted
    } catch (const DeadlockAvoidedError&) {
      p.fulfill(33);  // corrected: discharge the obligation first
      got = p.get();  // retry succeeds
    }
    return got;
  });
  EXPECT_EQ(v, 33);
  const auto s = rt.gate_stats();
  EXPECT_GE(s.deadlocks_averted, 1u);
  expect_clean_graph(rt);
}

TEST(Recovery, OwpOrphanedAwaitRecoversViaFreshPromise) {
  // An await that faulted because the promise was orphaned (its owner died
  // without fulfilling) recovers by re-issuing the work with a correctly
  // owned promise.
  Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const int v = rt.root([] {
    auto p = make_promise<int>();
    auto negligent = async_owning(p, [] { /* exits without fulfilling */ });
    negligent.join();
    int got = -1;
    try {
      got = p.get();  // orphaned: certain deadlock, faulted
    } catch (const DeadlockAvoidedError&) {
      auto p2 = make_promise<int>();
      auto diligent = async_owning(p2, [p2] { p2.fulfill(44); });
      got = p2.get();
      diligent.join();
    }
    return got;
  });
  EXPECT_EQ(v, 44);
  const auto s = rt.gate_stats();
  EXPECT_EQ(s.promises_orphaned, 1u);
  EXPECT_GE(s.deadlocks_averted, 1u);  // the orphan-rejected await
  expect_clean_graph(rt);
}

}  // namespace
}  // namespace tj::runtime
