// Tests for the textual trace parser.

#include <gtest/gtest.h>

#include "trace/parse.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

TEST(Parse, EmptyInput) {
  EXPECT_TRUE(parse_trace("").empty());
  EXPECT_TRUE(parse_trace("   \n\t ").empty());
  EXPECT_TRUE(parse_trace("[]").empty());
}

TEST(Parse, SingleActions) {
  EXPECT_EQ(parse_trace("init(0)"), Trace{init(0)});
  EXPECT_EQ(parse_trace("fork(1,2)"), Trace{fork(1, 2)});
  EXPECT_EQ(parse_trace("join(3,4)"), Trace{join(3, 4)});
}

TEST(Parse, SemicolonAndNewlineSeparators) {
  const Trace expected{init(0), fork(0, 1), join(0, 1)};
  EXPECT_EQ(parse_trace("init(0); fork(0,1); join(0,1)"), expected);
  EXPECT_EQ(parse_trace("init(0)\nfork(0,1)\njoin(0,1)"), expected);
  EXPECT_EQ(parse_trace("init(0);fork(0,1);;join(0,1);"), expected);
}

TEST(Parse, WhitespaceTolerance) {
  EXPECT_EQ(parse_trace("  fork ( 1 , 2 )  "), Trace{fork(1, 2)});
}

TEST(Parse, Comments) {
  const Trace t = parse_trace(
      "# a divide-and-conquer run\n"
      "init(0)   # the root\n"
      "fork(0,1) # first child\n");
  EXPECT_EQ(t, (Trace{init(0), fork(0, 1)}));
}

TEST(Parse, RoundTripsWithToString) {
  const Trace t = random_tj_valid_trace(30, 40, /*seed=*/12);
  EXPECT_EQ(parse_trace(t.to_string()), t);
}

TEST(Parse, LargeTaskIds) {
  const Trace t = parse_trace("fork(4000000000,4294967295)");
  EXPECT_EQ(t[0].actor, 4000000000u);
  EXPECT_EQ(t[0].target, 4294967295u);
}

TEST(Parse, Errors) {
  EXPECT_THROW(parse_trace("frobnicate(1,2)"), ParseError);
  EXPECT_THROW(parse_trace("init(0) garbage"), ParseError);
  EXPECT_THROW(parse_trace("fork(1)"), ParseError);
  EXPECT_THROW(parse_trace("fork(1,2"), ParseError);
  EXPECT_THROW(parse_trace("fork(,2)"), ParseError);
  EXPECT_THROW(parse_trace("init(99999999999)"), ParseError);
  EXPECT_THROW(parse_trace("join(1,2) ]extra"), ParseError);
  EXPECT_THROW(parse_trace("(0)"), ParseError);
}

TEST(Parse, ErrorCarriesOffset) {
  try {
    parse_trace("init(0); bogus(1,2)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.offset(), 9u);
  }
}

}  // namespace
}  // namespace tj::trace
