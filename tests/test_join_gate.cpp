// Tests for the JoinGate composition: policy + cycle-detection fallback,
// fault modes, non-blocking joins, and the evaluation counters.

#include <gtest/gtest.h>

#include <memory>

#include "core/guarded.hpp"

namespace tj::core {
namespace {

using wfg::NodeId;

struct Gates {
  std::unique_ptr<Verifier> verifier;
  std::unique_ptr<JoinGate> gate;
  PolicyNode* root;
  PolicyNode* a;  // first child
  PolicyNode* b;  // second child (forked after a: b < a under TJ)

  explicit Gates(PolicyChoice p, FaultMode m = FaultMode::Fallback) {
    verifier = make_verifier(p);
    gate = std::make_unique<JoinGate>(p, verifier.get(), m);
    if (verifier) {
      root = verifier->add_child(nullptr);
      a = verifier->add_child(root);
      b = verifier->add_child(root);
    } else {
      root = a = b = nullptr;
    }
  }
};

TEST(JoinGate, NonePolicyApprovesEverythingUnchecked) {
  Gates g(PolicyChoice::None);
  EXPECT_EQ(g.gate->enter_join(1, 1, nullptr, nullptr, false),
            JoinDecision::Proceed);  // even a self-join
  const GateStats s = g.gate->stats();
  EXPECT_EQ(s.joins_checked, 1u);
  EXPECT_EQ(s.cycle_checks, 0u);
  EXPECT_EQ(g.gate->graph().edge_count(), 0u);  // no graph maintenance
}

TEST(JoinGate, TjApprovedJoinProceedsAndRegisters) {
  Gates g(PolicyChoice::TJ_SP);
  EXPECT_EQ(g.gate->enter_join(0, 1, g.root, g.a, false),
            JoinDecision::Proceed);
  EXPECT_TRUE(g.gate->graph().is_waiting(0));
  g.gate->leave_join(0, 1, g.root, g.a, true);
  EXPECT_FALSE(g.gate->graph().is_waiting(0));
}

TEST(JoinGate, TjRejectionClearedByFallbackIsFalsePositive) {
  Gates g(PolicyChoice::TJ_SP);
  // a joining b is TJ-rejected (b < a) but no cycle exists.
  EXPECT_EQ(g.gate->enter_join(1, 2, g.a, g.b, false),
            JoinDecision::ProceedFalsePositive);
  const GateStats s = g.gate->stats();
  EXPECT_EQ(s.policy_rejections, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.deadlocks_averted, 0u);
  g.gate->leave_join(1, 2, g.a, g.b, true);
}

TEST(JoinGate, CrossJoinCycleIsAverted) {
  Gates g(PolicyChoice::TJ_SP);
  // b joins a: TJ-approved (b younger sibling). a then joins b: rejected,
  // and the fallback finds the cycle.
  EXPECT_EQ(g.gate->enter_join(2, 1, g.b, g.a, false),
            JoinDecision::Proceed);
  EXPECT_EQ(g.gate->enter_join(1, 2, g.a, g.b, false),
            JoinDecision::FaultDeadlock);
  EXPECT_EQ(g.gate->stats().deadlocks_averted, 1u);
}

TEST(JoinGate, ApprovedEdgeClosingProbationCycleFaults) {
  Gates g(PolicyChoice::TJ_SP);
  // a's rejected join on b is admitted on probation first...
  EXPECT_EQ(g.gate->enter_join(1, 2, g.a, g.b, false),
            JoinDecision::ProceedFalsePositive);
  // ...then b's TJ-approved join on a would close the cycle: caught.
  EXPECT_EQ(g.gate->enter_join(2, 1, g.b, g.a, false),
            JoinDecision::FaultDeadlock);
}

TEST(JoinGate, ThrowModeFaultsWithoutFallback) {
  Gates g(PolicyChoice::TJ_SP, FaultMode::Throw);
  EXPECT_EQ(g.gate->enter_join(1, 2, g.a, g.b, false),
            JoinDecision::FaultPolicy);
  EXPECT_EQ(g.gate->stats().cycle_checks, 0u);
}

TEST(JoinGate, DoneTargetNeverBlocksSoNeverDeadlocks) {
  Gates g(PolicyChoice::TJ_SP);
  // Rejected join on a terminated task: trivially a false positive.
  EXPECT_EQ(g.gate->enter_join(1, 2, g.a, g.b, /*target_done=*/true),
            JoinDecision::ProceedFalsePositive);
  EXPECT_EQ(g.gate->graph().edge_count(), 0u);
  // Approved join on a terminated task: no bookkeeping at all.
  EXPECT_EQ(g.gate->enter_join(0, 1, g.root, g.a, /*target_done=*/true),
            JoinDecision::Proceed);
  EXPECT_EQ(g.gate->graph().edge_count(), 0u);
}

TEST(JoinGate, CycleOnlyChecksEveryBlockingJoin) {
  Gates g(PolicyChoice::CycleOnly);
  EXPECT_EQ(g.gate->enter_join(1, 2, nullptr, nullptr, false),
            JoinDecision::Proceed);
  EXPECT_EQ(g.gate->enter_join(2, 1, nullptr, nullptr, false),
            JoinDecision::FaultDeadlock);
  const GateStats s = g.gate->stats();
  EXPECT_EQ(s.cycle_checks, 2u);
  EXPECT_EQ(s.deadlocks_averted, 1u);
  EXPECT_EQ(s.policy_rejections, 0u);  // there is no policy to reject
}

TEST(JoinGate, CycleOnlySkipsDoneTargets) {
  Gates g(PolicyChoice::CycleOnly);
  EXPECT_EQ(g.gate->enter_join(1, 2, nullptr, nullptr, /*target_done=*/true),
            JoinDecision::Proceed);
  EXPECT_EQ(g.gate->stats().cycle_checks, 0u);
}

TEST(JoinGate, KjLearnRunsOnCompletedJoinsOnly) {
  Gates g(PolicyChoice::KJ_VC);
  PolicyNode* grand = g.verifier->add_child(g.a);
  // root does not know its grandchild yet.
  EXPECT_EQ(g.gate->enter_join(0, 3, g.root, grand, false),
            JoinDecision::ProceedFalsePositive);
  // Abandoned join (completed=false): no learning.
  g.gate->leave_join(0, 1, g.root, g.a, /*completed=*/false);
  EXPECT_EQ(g.gate->enter_join(0, 3, g.root, grand, true),
            JoinDecision::ProceedFalsePositive);
  // Completed join on a: root learns the grandchild.
  g.gate->leave_join(0, 1, g.root, g.a, /*completed=*/true);
  EXPECT_EQ(g.gate->enter_join(0, 3, g.root, grand, true),
            JoinDecision::Proceed);
}

TEST(JoinGate, StatsAccumulate) {
  Gates g(PolicyChoice::TJ_SP);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(g.gate->enter_join(0, 1, g.root, g.a, true),
              JoinDecision::Proceed);
  }
  EXPECT_EQ(g.gate->stats().joins_checked, 5u);
}

}  // namespace
}  // namespace tj::core
