// Tests for the finish construct (Sec. 2.3) and the finish accumulator.

#include <gtest/gtest.h>

#include <atomic>

#include "runtime/finish.hpp"

namespace tj::runtime {
namespace {

Config cfg(core::PolicyChoice p = core::PolicyChoice::TJ_SP) {
  return Config{.policy = p};
}

TEST(FinishScope, AwaitOnEmptyScope) {
  Runtime rt(cfg());
  rt.root([] {
    FinishScope scope;
    scope.await();  // no tasks: returns immediately
    EXPECT_EQ(scope.pending(), 0u);
  });
}

TEST(FinishScope, AwaitsFlatTasks) {
  Runtime rt(cfg());
  std::atomic<int> hits{0};
  rt.root([&hits] {
    FinishScope scope;
    for (int i = 0; i < 100; ++i) {
      scope.spawn([&hits] { hits.fetch_add(1); });
    }
    scope.await();
    EXPECT_EQ(hits.load(), 100);  // all done before await returns
  });
}

TEST(FinishScope, AwaitsTransitivelySpawnedTasks) {
  // The Sec. 2.3 point: await() must cover tasks spawned by tasks, at any
  // depth, even though their Futures arrive in no particular order.
  Runtime rt(cfg());
  std::atomic<int> hits{0};
  rt.root([&hits] {
    FinishScope scope;
    std::function<void(int)> recurse = [&](int depth) {
      hits.fetch_add(1);
      if (depth == 0) return;
      scope.spawn([&recurse, depth] { recurse(depth - 1); });
      scope.spawn([&recurse, depth] { recurse(depth - 1); });
    };
    recurse(6);
    scope.await();
  });
  EXPECT_EQ(hits.load(), (1 << 7) - 1);  // a full binary tree of calls
}

TEST(FinishScope, NeverViolatesTj) {
  Runtime rt(cfg());
  rt.root([] {
    FinishScope scope;
    std::function<void(int)> recurse = [&](int depth) {
      if (depth == 0) return;
      scope.spawn([&recurse, depth] { recurse(depth - 1); });
    };
    recurse(50);
    scope.await();
  });
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST(FinishScope, KjRejectionsAreAllFilteredWhenTheyOccur) {
  // Under KJ the same pattern may trip the verifier (nondeterministically);
  // every rejection must be a filtered false positive, never a fault.
  Runtime rt(cfg(core::PolicyChoice::KJ_SS));
  std::atomic<int> hits{0};
  rt.root([&hits] {
    FinishScope scope;
    std::function<void(int)> recurse = [&](int depth) {
      hits.fetch_add(1);
      if (depth == 0) return;
      for (int c = 0; c < 3; ++c) {
        scope.spawn([&recurse, depth] { recurse(depth - 1); });
      }
    };
    recurse(4);
    scope.await();
  });
  EXPECT_EQ(hits.load(), (81 * 3 - 1) / 2);  // 1+3+9+27+81
  const auto s = rt.gate_stats();
  EXPECT_EQ(s.policy_rejections, s.false_positives);
  EXPECT_EQ(s.deadlocks_averted, 0u);
}

TEST(FinishAccumulator, ReducesResults) {
  Runtime rt(cfg());
  const long sum = rt.root([] {
    FinishAccumulator<long> acc(0, [](long a, long b) { return a + b; });
    for (long i = 1; i <= 200; ++i) {
      acc.spawn([i] { return i; });
    }
    return acc.await();
  });
  EXPECT_EQ(sum, 200L * 201 / 2);
}

TEST(FinishAccumulator, IdentityForNoTasks) {
  Runtime rt(cfg());
  const int v = rt.root([] {
    FinishAccumulator<int> acc(42, [](int a, int b) { return a * b; });
    return acc.await();
  });
  EXPECT_EQ(v, 42);
}

TEST(FinishAccumulator, NonCommutativeReducerSeesArrivalOrder) {
  // Max works regardless of order; use it to check nested spawns reduce too.
  Runtime rt(cfg());
  const int best = rt.root([] {
    FinishAccumulator<int> acc(0, [](int a, int b) { return std::max(a, b); });
    for (int i = 0; i < 50; ++i) {
      acc.spawn([i] { return (i * 37) % 101; });
    }
    return acc.await();
  });
  int expected = 0;
  for (int i = 0; i < 50; ++i) expected = std::max(expected, (i * 37) % 101);
  EXPECT_EQ(best, expected);
}

TEST(FinishAccumulator, PropagatesTaskExceptions) {
  Runtime rt(cfg());
  rt.root([] {
    FinishAccumulator<int> acc(0, [](int a, int b) { return a + b; });
    acc.spawn([]() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW((void)acc.await(), std::runtime_error);
  });
}

}  // namespace
}  // namespace tj::runtime
