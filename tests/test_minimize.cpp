// Tests for the trace minimizer.

#include <gtest/gtest.h>

#include "trace/deadlock.hpp"
#include "trace/minimize.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace tj::trace {
namespace {

TEST(DropJoin, RemovesOnlyTheIndexedJoin) {
  const Trace t{init(0), fork(0, 1), join(0, 1), join(0, 1)};
  const Trace d = drop_join(t, 2);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.join_count(), 1u);
  // Non-join indices are left alone.
  EXPECT_EQ(drop_join(t, 1), t);
}

TEST(DropTask, RemovesTaskAndItsActions) {
  const Trace t{init(0), fork(0, 1), fork(0, 2),
                join(0, 1), join(2, 1), join(0, 2)};
  const Trace d = drop_task(t, 1);
  EXPECT_EQ(d, (Trace{init(0), fork(0, 2), join(0, 2)}));
}

TEST(DropTask, RemovesDescendantsToo) {
  const Trace t{init(0), fork(0, 1), fork(1, 2), fork(2, 3), join(0, 3)};
  const Trace d = drop_task(t, 1);
  EXPECT_EQ(d, Trace{init(0)});
}

TEST(DropTask, KeepsStructuralValidity) {
  const Trace t = random_structural_trace(30, 40, /*seed=*/3);
  for (TaskId victim = 1; victim < 30; ++victim) {
    EXPECT_TRUE(is_structurally_valid(drop_task(t, victim)))
        << "victim=" << victim;
  }
}

TEST(SpliceTask, ReparentsChildren) {
  const Trace t{init(0), fork(0, 1), fork(1, 2), join(0, 2)};
  const Trace s = splice_task(t, 1);
  EXPECT_EQ(s, (Trace{init(0), fork(0, 2), join(0, 2)}));
}

TEST(SpliceTask, DropsJoinsMentioningVictim) {
  const Trace t{init(0), fork(0, 1), fork(1, 2), join(0, 1), join(1, 2)};
  const Trace s = splice_task(t, 1);
  EXPECT_EQ(s, (Trace{init(0), fork(0, 2)}));
}

TEST(SpliceTask, RootIsUnsplicable) {
  const Trace t{init(0), fork(0, 1)};
  EXPECT_EQ(splice_task(t, 0), t);
  EXPECT_EQ(splice_task(t, 99), t);  // unknown task: unchanged
}

TEST(SpliceTask, KeepsStructuralValidity) {
  const Trace t = random_structural_trace(25, 25, /*seed=*/5);
  for (TaskId victim = 1; victim < 25; ++victim) {
    EXPECT_TRUE(is_structurally_valid(splice_task(t, victim)))
        << "victim=" << victim;
  }
}

TEST(Minimize, ShrinksDeadlockWitness) {
  // Bury a 3-cycle in a big random trace; the minimizer should isolate it.
  Trace t = random_tj_valid_trace(40, 60, /*seed=*/8);
  const TaskId n = 40;
  Trace buried = t;
  buried.push_fork(0, n).push_fork(0, n + 1).push_fork(0, n + 2);
  buried.push_join(n, n + 1).push_join(n + 1, n + 2).push_join(n + 2, n);
  ASSERT_TRUE(contains_deadlock(buried));

  const Trace min = minimize_trace(buried, [](const Trace& c) {
    return contains_deadlock(c);
  });
  EXPECT_TRUE(contains_deadlock(min));
  // A 3-cycle needs 3 tasks + the root and exactly 3 joins.
  EXPECT_EQ(min.join_count(), 3u);
  EXPECT_LE(min.tasks().size(), 4u);
}

TEST(Minimize, ShrinksTjKjGapWitnessToListing1Core) {
  // Start from a large "root joins all descendants in arbitrary order" run
  // and minimize the property "TJ-valid but not KJ-valid".
  Trace t = chain_trace(12);
  for (TaskId d = 11; d >= 1; --d) t.push_join(0, d);
  auto keep = [](const Trace& c) {
    return is_tj_valid(c) && !is_kj_valid(c);
  };
  ASSERT_TRUE(keep(t));
  const Trace min = minimize_trace(t, keep);
  EXPECT_TRUE(keep(min));
  // The canonical witness: root, child, grandchild, one join.
  EXPECT_EQ(min.tasks().size(), 3u);
  EXPECT_EQ(min.join_count(), 1u);
}

TEST(Minimize, FixedPointWhenAlreadyMinimal) {
  const Trace t{init(0), fork(0, 1), fork(1, 2), join(0, 2)};
  auto keep = [](const Trace& c) {
    return is_tj_valid(c) && !is_kj_valid(c);
  };
  ASSERT_TRUE(keep(t));
  EXPECT_EQ(minimize_trace(t, keep), t);
}

TEST(Minimize, PreservesThePredicateAlways) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Trace t = random_structural_trace(25, 30, seed);
    auto keep = [](const Trace& c) { return c.join_count() >= 3; };
    if (!keep(t)) continue;
    const Trace min = minimize_trace(t, keep);
    EXPECT_TRUE(keep(min));
    EXPECT_LE(min.size(), t.size());
  }
}

}  // namespace
}  // namespace tj::trace
