#pragma once
// Test helper: replays an offline trace through an online Verifier, exactly
// as the runtime would — add_child on forks, on_join_complete on joins —
// yielding the per-task PolicyNode map so tests can compare permits_join
// against the reference judgments.

#include <unordered_map>
#include <vector>

#include "core/verifier.hpp"
#include "trace/trace.hpp"

namespace tj::testing {

class TraceReplay {
 public:
  explicit TraceReplay(core::Verifier& v) : v_(v) {}

  ~TraceReplay() {
    for (auto& [id, node] : nodes_) v_.release(node);
  }

  void feed(const trace::Action& a) {
    switch (a.kind) {
      case trace::ActionKind::Init:
        nodes_[a.actor] = v_.add_child(nullptr);
        break;
      case trace::ActionKind::Fork:
        nodes_[a.target] = v_.add_child(nodes_.at(a.actor));
        break;
      case trace::ActionKind::Join:
        v_.on_join_complete(nodes_.at(a.actor), nodes_.at(a.target));
        break;
      case trace::ActionKind::Make:
      case trace::ActionKind::Fulfill:
      case trace::ActionKind::Transfer:
      case trace::ActionKind::Await:
        break;  // promise actions are invisible to the join verifiers
    }
  }

  void feed_all(const trace::Trace& t) {
    for (const trace::Action& a : t.actions()) feed(a);
  }

  bool permits(trace::TaskId a, trace::TaskId b) const {
    return v_.permits_join(nodes_.at(a), nodes_.at(b));
  }

  core::PolicyNode* node(trace::TaskId a) const { return nodes_.at(a); }
  bool has(trace::TaskId a) const { return nodes_.contains(a); }

 private:
  core::Verifier& v_;
  std::unordered_map<trace::TaskId, core::PolicyNode*> nodes_;
};

}  // namespace tj::testing
