// Request-scoped telemetry tests: RequestScope TLS propagation into the
// event stream (spawn-time inheritance included), the TelemetrySink's
// JSONL/Prometheus export and its exact final-sample reconciliation with
// the runtime's end-of-run stats, the zero-cost-when-off contract, the
// declarative SLO evaluator, the per-tenant critical-path lanes, and the
// tenant-aware Chrome export. Every suite name starts with "Telemetry" so
// `ctest -R Telemetry` (the CI tsan stage) runs exactly this file.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "runtime/api.hpp"
#include "runtime/runtime.hpp"

namespace tj {
namespace {

namespace slo = obs::slo;

runtime::Config observed() {
  runtime::Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.obs.enabled = true;
  return cfg;
}

std::string temp_path(const char* leaf) {
  return ::testing::TempDir() + leaf;
}

// --- RequestScope propagation --------------------------------------------

TEST(TelemetryRequestSpan, StampsEventsEmittedUnderTheScope) {
  runtime::Runtime rt(observed());
  rt.root([] {
    runtime::RequestScope span(42, 3);
    runtime::async([] {}).join();
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  std::uint64_t stamped = 0;
  for (const obs::Event& e : events) {
    if (e.request == 42) {
      EXPECT_EQ(e.tenant, 3u) << obs::to_string(e);
      ++stamped;
    }
  }
  // At least the spawn, the verdict, and the join completion happen under
  // the scope on the root's thread.
  EXPECT_GE(stamped, 3u);
}

TEST(TelemetryRequestSpan, ChildTasksInheritTheSubmittingSpan) {
  runtime::Runtime rt(observed());
  rt.root([] {
    runtime::RequestScope span(7, 1);
    auto f = runtime::async([] {
      // Grandchild spawned from inside the request's task tree.
      runtime::async([] {}).join();
    });
    f.join();
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  // Every task-scoped event of the request's tree carries the stamp, even
  // when a worker thread (which never saw the RequestScope) emitted it.
  std::uint64_t starts_stamped = 0;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::TaskStart && e.request == 7) {
      ++starts_stamped;
    }
  }
  EXPECT_GE(starts_stamped, 2u) << "child and grandchild starts";
}

TEST(TelemetryRequestSpan, NoScopeMeansNoStamp) {
  runtime::Runtime rt(observed());
  rt.root([] { runtime::async([] {}).join(); });
  for (const obs::Event& e : rt.recorder()->drain()) {
    EXPECT_EQ(e.request, 0u) << obs::to_string(e);
    EXPECT_EQ(e.tenant, 0u) << obs::to_string(e);
  }
}

TEST(TelemetryRequestSpan, ScopesNestAndRestore) {
  obs::RequestContext& tls = obs::tls_request_context();
  EXPECT_EQ(tls.request, 0u);
  {
    obs::RequestScope outer(1, 1);
    EXPECT_EQ(tls.request, 1u);
    {
      obs::RequestScope inner(2, 2);
      EXPECT_EQ(tls.request, 2u);
      EXPECT_EQ(tls.tenant, 2u);
    }
    EXPECT_EQ(tls.request, 1u);
    EXPECT_EQ(tls.tenant, 1u);
  }
  EXPECT_EQ(tls.request, 0u);
}

// --- TelemetrySink --------------------------------------------------------

TEST(TelemetrySinkTest, InertWhenObsOff) {
  const std::string path = temp_path("telemetry_inert.jsonl");
  std::remove(path.c_str());
  runtime::Runtime rt(runtime::Config{});  // obs off ⇒ no recorder
  ASSERT_EQ(rt.recorder(), nullptr);
  obs::TelemetryConfig tcfg;
  tcfg.jsonl_path = path;
  obs::TelemetrySink sink(rt, tcfg);
  sink.start();
  EXPECT_FALSE(sink.active());
  sink.sample_now();
  sink.stop();
  EXPECT_EQ(sink.samples(), 0u);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "inert sink must not create output files";
}

TEST(TelemetrySinkTest, FinalSampleReconcilesWithEndOfRunStats) {
  const std::string path = temp_path("telemetry_reconcile.jsonl");
  std::remove(path.c_str());
  runtime::Runtime rt(observed());
  obs::LatencyHistogram svc;
  obs::TelemetryConfig tcfg;
  tcfg.jsonl_path = path;
  tcfg.cadence_ms = 10'000;  // manual + final samples only: deterministic
  tcfg.scheduler_label = "test";
  obs::TelemetrySink sink(rt, tcfg);
  sink.register_histogram("svc_latency_ns", &svc);
  sink.start();
  ASSERT_TRUE(sink.active());

  rt.root([&] {
    for (int i = 0; i < 20; ++i) {
      runtime::async([] {}).join();
      svc.record(1000 + 100 * static_cast<std::uint64_t>(i));
    }
  });
  sink.sample_now();  // mid-stream sample, then the final one from stop()
  sink.stop();
  EXPECT_GE(sink.samples(), 2u);

  const std::vector<slo::Json> samples = slo::parse_jsonl_file(path);
  ASSERT_EQ(samples.size(), sink.samples());
  const slo::Json& last = samples.back();

  // Schema: every consumer-visible section is present.
  for (const char* key : {"t_ms", "seq", "scheduler", "configured_policy",
                          "active_policy", "ladder_level", "gate", "counters",
                          "obs", "governor", "hist", "delta"}) {
    EXPECT_NE(last.find(key), nullptr) << "missing field " << key;
  }
  EXPECT_EQ(last.find("scheduler")->str(), "test");

  // Exact reconciliation with the quiesced runtime's own accounting.
  const core::GateStats gs = rt.gate_stats();
  EXPECT_EQ(last.at_path("gate.joins_checked")->number(),
            static_cast<double>(gs.joins_checked));
  EXPECT_EQ(last.at_path("gate.policy_rejections")->number(),
            static_cast<double>(gs.policy_rejections));
  const obs::LatencyHistogram::Summary sum = svc.summary();
  EXPECT_EQ(last.at_path("hist.svc_latency_ns.count")->number(),
            static_cast<double>(sum.count));
  EXPECT_EQ(last.at_path("hist.svc_latency_ns.p999_ns")->number(),
            static_cast<double>(sum.p999_ns));
}

TEST(TelemetrySinkTest, DeltaTracksPerSampleIncrements) {
  const std::string path = temp_path("telemetry_delta.jsonl");
  std::remove(path.c_str());
  runtime::Runtime rt(observed());
  obs::LatencyHistogram svc;
  obs::TelemetryConfig tcfg;
  tcfg.jsonl_path = path;
  tcfg.cadence_ms = 10'000;
  obs::TelemetrySink sink(rt, tcfg);
  sink.register_histogram("svc_latency_ns", &svc);
  sink.start();

  svc.record(10);
  svc.record(20);
  sink.sample_now();
  svc.record(30);
  sink.sample_now();
  sink.stop();  // final sample: no increments since the second one

  const std::vector<slo::Json> samples = slo::parse_jsonl_file(path);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].at_path("delta.svc_latency_ns.count")->number(), 2.0);
  EXPECT_EQ(samples[0].at_path("delta.svc_latency_ns.sum_ns")->number(), 30.0);
  EXPECT_EQ(samples[1].at_path("delta.svc_latency_ns.count")->number(), 1.0);
  EXPECT_EQ(samples[1].at_path("delta.svc_latency_ns.sum_ns")->number(), 30.0);
  EXPECT_EQ(samples[2].at_path("delta.svc_latency_ns.count")->number(), 0.0);
  // Cumulative view never regresses.
  EXPECT_EQ(samples[2].at_path("hist.svc_latency_ns.count")->number(), 3.0);
}

TEST(TelemetrySinkTest, PrometheusDumpRendersGateAndHistograms) {
  const std::string prom = temp_path("telemetry.prom");
  std::remove(prom.c_str());
  runtime::Runtime rt(observed());
  obs::LatencyHistogram svc;
  obs::TelemetryConfig tcfg;
  tcfg.prometheus_path = prom;
  tcfg.cadence_ms = 10'000;
  obs::TelemetrySink sink(rt, tcfg);
  sink.register_histogram("svc_latency_ns", &svc);
  sink.start();
  rt.root([&] {
    runtime::async([] {}).join();
    svc.record(500);
  });
  sink.stop();

  std::ifstream in(prom);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  for (const char* needle :
       {"# TYPE tj_joins_checked counter", "tj_joins_checked ",
        "tj_live_tasks ", "# TYPE tj_svc_latency_ns summary",
        "tj_svc_latency_ns{quantile=\"0.999\"}", "tj_svc_latency_ns_count"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  }
}

// --- SLO evaluator --------------------------------------------------------

TEST(TelemetrySlo, ParsesRuleSpecs) {
  const std::vector<slo::Rule> rules =
      slo::parse_rules("p99_ms<250, shed_rate<=0.6;watchdog_cycles==0");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].metric, "p99_ms");
  EXPECT_EQ(rules[0].op, slo::Rule::Op::LT);
  EXPECT_EQ(rules[0].bound, 250.0);
  EXPECT_EQ(rules[1].op, slo::Rule::Op::LE);
  EXPECT_EQ(rules[2].op, slo::Rule::Op::EQ);
  EXPECT_THROW(slo::parse_rules("p99_ms<"), std::runtime_error);
  EXPECT_THROW(slo::parse_rules("no_operator"), std::runtime_error);
  EXPECT_THROW(slo::parse_rules("x!3"), std::runtime_error);
}

std::vector<slo::Json> one_sample(const char* json) {
  return {slo::parse_json(json)};
}

constexpr const char* kSample = R"({
  "ladder_level": 1, "watchdog_cycles": 0,
  "gate": {"requests_checked": 100, "requests_shed": 25},
  "hist": {"request_latency_ns": {"p50_ns": 1e6, "p99_ns": 8e6,
                                  "p999_ns": 2e7}}})";

TEST(TelemetrySlo, EvaluatesBuiltinsAgainstFinalSample) {
  const auto samples = one_sample(kSample);
  const slo::Evaluation ev = slo::evaluate(
      samples, slo::parse_rules("p99_ms<10,p999_ms<=20,shed_rate<0.3,"
                                "downgrade_level<=1,watchdog_cycles==0"));
  EXPECT_TRUE(ev.pass) << ev.to_string();
  for (const slo::RuleResult& r : ev.results) EXPECT_TRUE(r.pass);
  EXPECT_DOUBLE_EQ(ev.results[2].actual, 0.25);  // shed_rate
}

TEST(TelemetrySlo, FailsWhenABoundIsViolated) {
  const auto samples = one_sample(kSample);
  const slo::Evaluation ev =
      slo::evaluate(samples, slo::parse_rules("p99_ms<5,watchdog_cycles==0"));
  EXPECT_FALSE(ev.pass);
  EXPECT_FALSE(ev.results[0].pass);
  EXPECT_TRUE(ev.results[1].pass);
}

TEST(TelemetrySlo, MissingMetricFailsDeterministically) {
  const auto samples = one_sample(R"({"gate": {"requests_checked": 1}})");
  const slo::Evaluation ev =
      slo::evaluate(samples, slo::parse_rules("p99_ms<100"));
  EXPECT_FALSE(ev.pass);
  ASSERT_EQ(ev.results.size(), 1u);
  EXPECT_TRUE(ev.results[0].missing);
  // An empty series fails the same way instead of passing vacuously.
  const slo::Evaluation empty =
      slo::evaluate({}, slo::parse_rules("watchdog_cycles==0"));
  EXPECT_FALSE(empty.pass);
}

TEST(TelemetrySlo, DottedPathsAddressArbitraryScalars) {
  const auto samples = one_sample(kSample);
  const slo::Evaluation ev = slo::evaluate(
      samples, slo::parse_rules("gate.requests_shed<=25,"
                                "hist.request_latency_ns.p50_ns<2e6"));
  EXPECT_TRUE(ev.pass) << ev.to_string();
}

// --- Per-tenant critical-path lanes ---------------------------------------

TEST(TelemetryTenantLanes, LanesPartitionEveryAttributionCategory) {
  runtime::Runtime rt(observed());
  rt.root([] {
    {
      runtime::RequestScope a(1, 1);
      auto f = runtime::async([] { runtime::async([] {}).join(); });
      f.join();
    }
    {
      runtime::RequestScope b(2, 2);
      auto f = runtime::async([] {});
      f.join();
    }
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  const obs::CriticalPathReport rep = obs::analyze_critical_path(events);
  ASSERT_GE(rep.tenants.size(), 2u) << "expected at least two tenant lanes";

  const auto check_partition =
      [&](obs::PathAttribution obs::CriticalPathReport::TenantLane::*lane,
          const obs::PathAttribution& global, const char* what) {
        std::uint64_t count = 0, on_ns = 0, off_ns = 0;
        for (const auto& t : rep.tenants) {
          count += (t.*lane).count;
          on_ns += (t.*lane).on_path_ns;
          off_ns += (t.*lane).off_path_ns;
        }
        EXPECT_EQ(count, global.count) << what;
        EXPECT_EQ(on_ns, global.on_path_ns) << what;
        EXPECT_EQ(off_ns, global.off_path_ns) << what;
      };
  check_partition(&obs::CriticalPathReport::TenantLane::policy_check,
                  rep.policy_check, "policy_check");
  check_partition(&obs::CriticalPathReport::TenantLane::cycle_scan,
                  rep.cycle_scan, "cycle_scan");
  check_partition(&obs::CriticalPathReport::TenantLane::blocked_join,
                  rep.blocked_join, "blocked_join");
  check_partition(&obs::CriticalPathReport::TenantLane::blocked_await,
                  rep.blocked_await, "blocked_await");
  // Both tenants actually did verifier-visible work.
  std::uint64_t lanes_with_checks = 0;
  for (const auto& t : rep.tenants) {
    if (t.tenant != 0 && t.policy_check.count > 0) ++lanes_with_checks;
  }
  EXPECT_GE(lanes_with_checks, 2u);
}

// --- Chrome export tenant lanes -------------------------------------------

TEST(TelemetryChrome, TenantLanesAndRequestArgsInExport) {
  runtime::Runtime rt(observed());
  rt.root([] {
    runtime::RequestScope span(9, 2);
    runtime::async([] {}).join();
  });
  const std::vector<obs::Event> events = rt.recorder()->drain();
  const std::string json = obs::to_chrome_json(events);
  EXPECT_NE(json.find("\"runtime (unattributed)\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant 1\""), std::string::npos)
      << "tenant index 1 (stored stamp 2) must get its own named lane";
  EXPECT_NE(json.find("\"request\":9"), std::string::npos);
}

}  // namespace
}  // namespace tj
