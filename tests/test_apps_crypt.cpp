// IDEA cipher unit tests (known vectors, group algebra) and the Crypt
// benchmark's roundtrip validation.

#include <gtest/gtest.h>

#include <array>

#include "apps/crypt.hpp"
#include "apps/idea.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps::idea {
namespace {

TEST(IdeaMul, GroupIdentities) {
  EXPECT_EQ(mul(1, 1), 1);
  EXPECT_EQ(mul(1, 12345), 12345);
  EXPECT_EQ(mul(12345, 1), 12345);
}

TEST(IdeaMul, ZeroMeansTwoToTheSixteen) {
  // 0 ≡ 2^16 and 2^16 · 2^16 = 2^32 ≡ 1 (mod 2^16 + 1).
  EXPECT_EQ(mul(0, 0), 1);
  // 2^16 · x ≡ -x ≡ 65537 - x.
  EXPECT_EQ(mul(0, 5), 65532);
  EXPECT_EQ(mul(7, 0), 65530);
}

TEST(IdeaMul, Commutes) {
  for (std::uint32_t a = 0; a < 300; a += 7) {
    for (std::uint32_t b = 0; b < 300; b += 11) {
      EXPECT_EQ(mul(static_cast<std::uint16_t>(a * 217),
                    static_cast<std::uint16_t>(b * 131)),
                mul(static_cast<std::uint16_t>(b * 131),
                    static_cast<std::uint16_t>(a * 217)));
    }
  }
}

TEST(IdeaMulInv, InverseLaw) {
  for (std::uint32_t x = 0; x < 70000; x += 97) {
    const auto v = static_cast<std::uint16_t>(x);
    EXPECT_EQ(mul(v, mul_inv(v)), 1) << "x=" << v;
  }
}

TEST(IdeaMulInv, SpecialValues) {
  EXPECT_EQ(mul_inv(0), 0);  // 2^16 is self-inverse
  EXPECT_EQ(mul_inv(1), 1);
}

TEST(IdeaKeySchedule, FirstEightSubkeysAreTheUserKey) {
  Key key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i + 1);
  const KeySchedule z = encrypt_schedule(key);
  EXPECT_EQ(z[0], 0x0102);
  EXPECT_EQ(z[7], 0x0F10);
}

TEST(IdeaBlock, PublishedTestVector) {
  // Key 0001 0002 ... 0008, plaintext 0000 0001 0002 0003
  // → ciphertext 11FB ED2B 0198 6DE5 (the classic IDEA vector).
  const Key key{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8};
  std::array<std::uint8_t, 8> block{0, 0, 0, 1, 0, 2, 0, 3};
  crypt_block(std::span<std::uint8_t, 8>(block), encrypt_schedule(key));
  const std::array<std::uint8_t, 8> want{0x11, 0xFB, 0xED, 0x2B,
                                         0x01, 0x98, 0x6D, 0xE5};
  EXPECT_EQ(block, want);
}

TEST(IdeaBlock, RoundtripAcrossKeys) {
  for (std::uint8_t k = 0; k < 12; ++k) {
    Key key{};
    for (std::size_t i = 0; i < key.size(); ++i) {
      key[i] = static_cast<std::uint8_t>(k * 17 + i * 31 + 5);
    }
    const KeySchedule enc = encrypt_schedule(key);
    const KeySchedule dec = decrypt_schedule(enc);
    std::array<std::uint8_t, 8> block{};
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<std::uint8_t>(k ^ (i * 73));
    }
    const auto original = block;
    crypt_block(std::span<std::uint8_t, 8>(block), enc);
    EXPECT_NE(block, original) << "encryption must change the block";
    crypt_block(std::span<std::uint8_t, 8>(block), dec);
    EXPECT_EQ(block, original) << "k=" << static_cast<int>(k);
  }
}

TEST(IdeaRange, RangesComposeToWholeBuffer) {
  const Key key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const KeySchedule enc = encrypt_schedule(key);
  std::vector<std::uint8_t> whole(64);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    whole[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> parts = whole;
  crypt_range(std::span<std::uint8_t>(whole), 0, 8, enc);
  crypt_range(std::span<std::uint8_t>(parts), 0, 3, enc);
  crypt_range(std::span<std::uint8_t>(parts), 3, 8, enc);
  EXPECT_EQ(whole, parts);
}

}  // namespace
}  // namespace tj::apps::idea

namespace tj::apps {
namespace {

TEST(CryptApp, RoundtripTiny) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const CryptResult r = run_crypt(rt, CryptParams::tiny());
  EXPECT_TRUE(r.roundtrip_ok);
  EXPECT_GT(r.tasks, 1u);
}

TEST(CryptApp, DeterministicCiphertextChecksum) {
  runtime::Runtime rt1({.policy = core::PolicyChoice::None});
  runtime::Runtime rt2({.policy = core::PolicyChoice::TJ_SP});
  const CryptResult a = run_crypt(rt1, CryptParams::tiny());
  const CryptResult b = run_crypt(rt2, CryptParams::tiny());
  EXPECT_EQ(a.ciphertext_checksum, b.ciphertext_checksum)
      << "ciphertext must not depend on scheduling or policy";
}

TEST(CryptApp, TaskCountMatchesPhases) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  CryptParams p = CryptParams::tiny();
  p.tasks_per_phase = 8;
  const CryptResult r = run_crypt(rt, p);
  EXPECT_TRUE(r.roundtrip_ok);
  EXPECT_EQ(r.tasks, 1u + 2u * 8u);  // root + two phases
}

TEST(CryptApp, OddTaskSplitStillCoversAllBlocks) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  CryptParams p = CryptParams::tiny();
  p.tasks_per_phase = 7;  // does not divide the block count evenly
  EXPECT_TRUE(run_crypt(rt, p).roundtrip_ok);
}

TEST(CryptApp, NoPolicyRejectionsUnderAnyVerifier) {
  // Crypt's fork-all/join-all per phase is valid under KJ and TJ alike.
  for (auto pol : {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_VC,
                   core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    EXPECT_TRUE(run_crypt(rt, CryptParams::tiny()).roundtrip_ok);
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

}  // namespace
}  // namespace tj::apps
