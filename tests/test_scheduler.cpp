// Scheduler behaviour: the cooperative (help-first) and blocking
// (compensation) join disciplines of paper footnote 4, plus stress.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/api.hpp"

namespace tj::runtime {
namespace {

TEST(SchedulerModes, Names) {
  EXPECT_EQ(to_string(SchedulerMode::Blocking), "blocking");
  EXPECT_EQ(to_string(SchedulerMode::Cooperative), "cooperative");
}

TEST(SchedulerModes, ConfigDefaults) {
  const Config cfg;
  EXPECT_GT(cfg.effective_workers(), 0u);
  Config one;
  one.workers = 3;
  EXPECT_EQ(one.effective_workers(), 3u);
}

TEST(Cooperative, JoinerInlinesQueuedTarget) {
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = SchedulerMode::Cooperative,
             .workers = 1};
  Runtime rt(cfg);
  rt.root([] {
    // Pin the single worker on a spin-waiting blocker (spawned first, so
    // FIFO order guarantees the worker can run nothing else meanwhile):
    // every later task stays queued and the root's joins MUST claim them
    // inline. Without the blocker the worker could drain all 64 trivial
    // tasks before the first join, making the inline count flaky.
    std::atomic<bool> release{false};
    auto blocker = async([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    std::vector<Future<int>> fs;
    for (int i = 0; i < 64; ++i) fs.push_back(async([i] { return i; }));
    int acc = 0;
    for (auto& f : fs) acc += f.get();
    EXPECT_EQ(acc, 64 * 63 / 2);
    release.store(true, std::memory_order_release);
    blocker.join();
  });
  // All 64 queued tasks were inlined; the blocker itself may add one more
  // if the root's final join claims it before the worker does.
  EXPECT_GE(rt.scheduler().tasks_inlined(), 64u);
}

TEST(Cooperative, InlineClaimPropagatesExceptionAtGet) {
  // Regression: a task body's exception must be captured in the *target*
  // task and rethrown at the joiner's get(), even when the joiner claims
  // and runs the target inline — it must not unwind the joiner's frame from
  // inside the inline run (which would also leave the task un-Done,
  // stranding any other joiner).
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = SchedulerMode::Cooperative,
             .workers = 1};
  Runtime rt(cfg);
  rt.root([] {
    std::atomic<bool> release{false};
    auto blocker = async([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    auto failing = async([]() -> int {
      throw std::runtime_error("inline boom");
    });
    EXPECT_THROW(failing.get(), std::runtime_error);
    // The joiner survived the inline run; the runtime keeps working.
    auto ok = async([] { return 7; });
    EXPECT_EQ(ok.get(), 7);
    release.store(true, std::memory_order_release);
    blocker.join();
  });
  EXPECT_GE(rt.scheduler().tasks_inlined(), 2u);
}

TEST(Cooperative, DeepInlineChainTerminates) {
  // Each task joins its own child: the join target is always claimable, so
  // a single worker must finish via pure inlining.
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = SchedulerMode::Cooperative,
             .workers = 1};
  Runtime rt(cfg);
  std::function<int(int)> nest = [&nest](int depth) -> int {
    if (depth == 0) return 0;
    auto f = async([&nest, depth] { return nest(depth - 1) + 1; });
    return f.get();
  };
  EXPECT_EQ(rt.root([&] { return nest(128); }), 128);
}

TEST(Blocking, CompensationKeepsThePoolBusy) {
  // Workers block in joins; compensation threads must be spawned so queued
  // tasks still execute. With 2 workers and a 3-deep blocking chain, the
  // run can only finish if the pool grows.
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = SchedulerMode::Blocking,
             .workers = 2,
             .max_threads = 64};
  Runtime rt(cfg);
  const int v = rt.root([] {
    auto a = async([] {
      auto b = async([] {
        auto c = async([] {
          auto d = async([] { return 1; });
          return d.get() + 1;
        });
        return c.get() + 1;
      });
      return b.get() + 1;
    });
    return a.get() + 1;
  });
  EXPECT_EQ(v, 5);
  EXPECT_EQ(rt.scheduler().tasks_inlined(), 0u);  // blocking mode never helps
  EXPECT_GE(rt.scheduler().thread_count(), 2u);
}

TEST(Blocking, WideFanoutWithSiblingJoins) {
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = SchedulerMode::Blocking,
             .workers = 4,
             .max_threads = 128};
  Runtime rt(cfg);
  const long v = rt.root([] {
    std::vector<Future<long>> layer1;
    for (int i = 0; i < 16; ++i) layer1.push_back(async([] { return 1L; }));
    std::vector<Future<long>> layer2;
    for (int i = 0; i < 16; ++i) {
      layer2.push_back(async([&layer1, i] {
        // Each layer-2 task joins three older siblings from layer 1.
        return layer1[static_cast<std::size_t>(i)].get() +
               layer1[static_cast<std::size_t>((i + 5) % 16)].get() +
               layer1[static_cast<std::size_t>((i + 11) % 16)].get();
      }));
    }
    long acc = 0;
    for (auto& f : layer2) acc += f.get();
    return acc;
  });
  EXPECT_EQ(v, 48);
}

class BothModes : public ::testing::TestWithParam<SchedulerMode> {};

TEST_P(BothModes, StressManySmallTasks) {
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = GetParam(),
             .workers = 4,
             .max_threads = 256};
  Runtime rt(cfg);
  std::atomic<long> side{0};
  const long v = rt.root([&side] {
    std::vector<Future<long>> fs;
    for (long i = 0; i < 5000; ++i) {
      fs.push_back(async([i, &side] {
        side.fetch_add(1, std::memory_order_relaxed);
        return i % 17;
      }));
    }
    long acc = 0;
    for (auto& f : fs) acc += f.get();
    return acc;
  });
  EXPECT_EQ(side.load(), 5000);
  long expected = 0;
  for (long i = 0; i < 5000; ++i) expected += i % 17;
  EXPECT_EQ(v, expected);
}

TEST_P(BothModes, RecursiveDivideAndConquer) {
  Config cfg{.policy = core::PolicyChoice::TJ_SP,
             .scheduler = GetParam(),
             .workers = 4,
             .max_threads = 256};
  Runtime rt(cfg);
  std::function<long(long, long)> sum = [&sum](long lo, long hi) -> long {
    if (hi - lo <= 64) {
      long acc = 0;
      for (long i = lo; i < hi; ++i) acc += i;
      return acc;
    }
    const long mid = lo + (hi - lo) / 2;
    auto l = async([&sum, lo, mid] { return sum(lo, mid); });
    auto r = async([&sum, mid, hi] { return sum(mid, hi); });
    return l.get() + r.get();
  };
  EXPECT_EQ(rt.root([&] { return sum(0, 10000); }), 10000L * 9999 / 2);
}

TEST_P(BothModes, ExecutedPlusInlinedCoversAllTasks) {
  Config cfg{.policy = core::PolicyChoice::None,
             .scheduler = GetParam(),
             .workers = 2};
  Runtime rt(cfg);
  rt.root([] {
    std::vector<Future<int>> fs;
    for (int i = 0; i < 100; ++i) fs.push_back(async([] { return 0; }));
    for (auto& f : fs) f.join();
  });
  EXPECT_EQ(rt.scheduler().tasks_executed(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Modes, BothModes,
                         ::testing::Values(SchedulerMode::Cooperative,
                                           SchedulerMode::Blocking));

}  // namespace
}  // namespace tj::runtime
