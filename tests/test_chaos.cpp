// Schedule fuzzing: chaos_seed perturbs interleavings at fork/join
// boundaries. Results and policy verdicts must be schedule-independent.

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "runtime/api.hpp"
#include "runtime/concurrent_queue.hpp"
#include "trace/validity.hpp"

namespace tj::runtime {
namespace {

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, AppsComputeTheSameResultUnderPerturbedSchedules) {
  for (const char* name : {"strassen", "nqueens", "crypt"}) {
    const apps::AppInfo* app = apps::find_app(name);
    ASSERT_NE(app, nullptr);
    Runtime rt({.policy = core::PolicyChoice::TJ_SP,
                .chaos_seed = GetParam()});
    const apps::AppOutcome out = app->run(rt, apps::AppSize::Tiny);
    EXPECT_TRUE(out.valid) << name << ": " << out.detail;
  }
}

TEST_P(ChaosSeeds, TjNeverRejectsUnderAnySchedule) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP,
              .record_trace = true,
              .chaos_seed = GetParam()});
  rt.root([] {
    ConcurrentQueue<Future<int>> q;
    std::function<void(int)> spread = [&q, &spread](int depth) {
      if (depth == 0) return;
      q.push(async([&spread, depth] {
        spread(depth - 1);
        return depth;
      }));
      q.push(async([&spread, depth] {
        spread(depth - 1);
        return depth;
      }));
    };
    spread(5);
    while (auto f = q.poll()) (void)f->get();
  });
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
  EXPECT_TRUE(trace::is_tj_valid(rt.recorded_trace()));
}

TEST_P(ChaosSeeds, KjRejectionsStayFalsePositivesUnderAnySchedule) {
  const apps::AppInfo* app = apps::find_app("nqueens");
  Runtime rt({.policy = core::PolicyChoice::KJ_SS,
              .chaos_seed = GetParam()});
  const apps::AppOutcome out = app->run(rt, apps::AppSize::Tiny);
  EXPECT_TRUE(out.valid);
  const auto s = rt.gate_stats();
  EXPECT_EQ(s.policy_rejections, s.false_positives);
  EXPECT_EQ(s.deadlocks_averted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Values(0x1111, 0x2222, 0x3333, 0x4444,
                                           0xdeadbeef));

TEST(Chaos, DisabledByDefault) {
  const Config cfg;
  EXPECT_EQ(cfg.chaos_seed, 0u);
}

}  // namespace
}  // namespace tj::runtime
