// Tests for the std::async-style compat adapter.

#include <gtest/gtest.h>

#include <string>

#include "runtime/compat.hpp"

namespace tj::compat {
namespace {

runtime::Config cfg() {
  return runtime::Config{.policy = core::PolicyChoice::TJ_SP};
}

TEST(CompatAsync, NoArguments) {
  runtime::Runtime rt(cfg());
  const int v = rt.root([] {
    auto f = async([] { return 5; });
    return f.get();
  });
  EXPECT_EQ(v, 5);
}

TEST(CompatAsync, BindsArgumentsByValue) {
  runtime::Runtime rt(cfg());
  const int v = rt.root([] {
    auto f = async([](int a, int b) { return a * b; }, 6, 7);
    return f.get();
  });
  EXPECT_EQ(v, 42);
}

TEST(CompatAsync, MovesMoveOnlyArguments) {
  runtime::Runtime rt(cfg());
  const std::size_t n = rt.root([] {
    auto ptr = std::make_unique<std::string>(100, 'x');
    auto f = async([](std::unique_ptr<std::string> s) { return s->size(); },
                   std::move(ptr));
    return f.get();
  });
  EXPECT_EQ(n, 100u);
}

TEST(CompatAsync, MixedArgumentTypes) {
  runtime::Runtime rt(cfg());
  const std::string v = rt.root([] {
    auto f = async(
        [](const std::string& s, int n) {
          std::string out;
          for (int i = 0; i < n; ++i) out += s;
          return out;
        },
        std::string("ab"), 3);
    return f.get();
  });
  EXPECT_EQ(v, "ababab");
}

TEST(CompatAsync, JoinsAreVerified) {
  runtime::Runtime rt(cfg());
  rt.root([] {
    auto f = async([](int x) { return x; }, 1);
    f.join();
  });
  EXPECT_EQ(rt.gate_stats().joins_checked, 1u);
}

TEST(TaskLauncher, LaunchesRepeatedly) {
  runtime::Runtime rt(cfg());
  const int total = rt.root([] {
    TaskLauncher<int(int)> square([](int x) { return x * x; });
    auto a = square(3);
    auto b = square(4);
    return a.get() + b.get();
  });
  EXPECT_EQ(total, 25);
}

TEST(CompatAsync, OutsideTaskContextThrows) {
  EXPECT_THROW((void)async([] { return 1; }), runtime::UsageError);
}

}  // namespace
}  // namespace tj::compat
