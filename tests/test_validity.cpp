// Tests for trace validity (Definition 3.2) under the structural, TJ and KJ
// instantiations of the valid-* rules.

#include <gtest/gtest.h>

#include "trace/validity.hpp"

namespace tj::trace {
namespace {

TEST(Validity, PolicyNames) {
  EXPECT_EQ(to_string(PolicyKind::Structural), "Structural");
  EXPECT_EQ(to_string(PolicyKind::TJ), "TJ");
  EXPECT_EQ(to_string(PolicyKind::KJ), "KJ");
}

TEST(Validity, EmptyTraceIsValid) {
  EXPECT_TRUE(is_structurally_valid(Trace{}));
  EXPECT_TRUE(is_tj_valid(Trace{}));
}

TEST(Validity, InitMustComeFirst) {
  const auto r = check_valid(Trace{fork(0, 1)}, PolicyKind::Structural);
  EXPECT_FALSE(r.valid);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->index, 0u);
}

TEST(Validity, SecondInitIsRejected) {
  const auto r =
      check_valid(Trace{init(0), init(1)}, PolicyKind::Structural);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.violation->index, 1u);
}

TEST(Validity, ForkRequiresExistingActor) {
  EXPECT_FALSE(is_structurally_valid(Trace{init(0), fork(5, 6)}));
}

TEST(Validity, ForkRequiresFreshTarget) {
  EXPECT_FALSE(is_structurally_valid(Trace{init(0), fork(0, 1), fork(0, 1)}));
  EXPECT_FALSE(is_structurally_valid(Trace{init(0), fork(0, 0)}));
}

TEST(Validity, JoinRequiresExistingTasks) {
  EXPECT_FALSE(is_structurally_valid(Trace{init(0), join(0, 1)}));
  EXPECT_FALSE(is_structurally_valid(Trace{init(0), fork(0, 1), join(2, 1)}));
}

TEST(Validity, StructuralAcceptsAnyExistingJoinPair) {
  // Even a child joining its parent — structure only.
  EXPECT_TRUE(is_structurally_valid(Trace{init(0), fork(0, 1), join(1, 0)}));
}

TEST(Validity, TjRejectsChildJoiningParent) {
  const auto r =
      check_valid(Trace{init(0), fork(0, 1), join(1, 0)}, PolicyKind::TJ);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.violation->index, 2u);
  EXPECT_NE(r.violation->reason.find("TJ"), std::string::npos);
}

TEST(Validity, TjAcceptsParentJoiningChild) {
  EXPECT_TRUE(is_tj_valid(Trace{init(0), fork(0, 1), join(0, 1)}));
}

TEST(Validity, TjAcceptsGrandchildJoinWithoutIntermediate) {
  // The Sec. 2.3 scenario: the root joins a grandchild directly.
  EXPECT_TRUE(
      is_tj_valid(Trace{init(0), fork(0, 1), fork(1, 2), join(0, 2)}));
}

TEST(Validity, KjRejectsGrandchildJoinWithoutIntermediate) {
  EXPECT_FALSE(
      is_kj_valid(Trace{init(0), fork(0, 1), fork(1, 2), join(0, 2)}));
}

TEST(Validity, KjAcceptsGrandchildJoinAfterLearning) {
  EXPECT_TRUE(is_kj_valid(
      Trace{init(0), fork(0, 1), fork(1, 2), join(0, 1), join(0, 2)}));
}

TEST(Validity, KjLearnHappensEvenWhenCheckingTj) {
  // TJ-validity of a trace is unaffected by joins; this KJ-invalid trace is
  // TJ-valid.
  const Trace t{init(0), fork(0, 1), fork(1, 2), join(0, 2), join(0, 1)};
  EXPECT_TRUE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
}

TEST(Validity, SelfJoinRejectedByBothPolicies) {
  const Trace t{init(0), fork(0, 1), join(1, 1)};
  EXPECT_FALSE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
  EXPECT_TRUE(is_structurally_valid(t));
}

TEST(Validity, ReportsFirstViolationOnly) {
  const Trace t{init(0), fork(0, 1), join(1, 0), join(1, 1)};
  const auto r = check_valid(t, PolicyKind::TJ);
  ASSERT_FALSE(r.valid);
  EXPECT_EQ(r.violation->index, 2u);
  EXPECT_EQ(r.violation->action, join(1, 0));
}

TEST(Validity, RepeatedJoinsAreAllowed) {
  // Futures may be joined several times (copyable handles).
  EXPECT_TRUE(is_tj_valid(
      Trace{init(0), fork(0, 1), join(0, 1), join(0, 1), join(0, 1)}));
}

}  // namespace
}  // namespace tj::trace
