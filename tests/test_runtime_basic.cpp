// Runtime fundamentals: async/get semantics, result types, exceptions,
// nesting, usage errors, and scale.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/api.hpp"

namespace tj::runtime {
namespace {

Config tj_cfg() { return Config{.policy = core::PolicyChoice::TJ_SP}; }

TEST(RuntimeBasic, RootReturnsValue) {
  Runtime rt(tj_cfg());
  EXPECT_EQ(rt.root([] { return 7; }), 7);
}

TEST(RuntimeBasic, RootVoid) {
  Runtime rt(tj_cfg());
  int side = 0;
  rt.root([&side] { side = 1; });
  EXPECT_EQ(side, 1);
}

TEST(RuntimeBasic, AsyncReturnsResult) {
  Runtime rt(tj_cfg());
  const int v = rt.root([] {
    auto f = async([] { return 6 * 7; });
    return f.get();
  });
  EXPECT_EQ(v, 42);
}

TEST(RuntimeBasic, VoidFuture) {
  Runtime rt(tj_cfg());
  std::atomic<int> side{0};
  rt.root([&side] {
    auto f = async([&side] { side.store(5); });
    f.join();
    EXPECT_EQ(side.load(), 5);
  });
}

TEST(RuntimeBasic, MoveOnlyResultTypesViaSharedState) {
  Runtime rt(tj_cfg());
  const std::string v = rt.root([] {
    auto f = async([] { return std::string(1000, 'x'); });
    return f.get();
  });
  EXPECT_EQ(v.size(), 1000u);
}

TEST(RuntimeBasic, FutureIsCopyableAndJoinableTwice) {
  Runtime rt(tj_cfg());
  rt.root([] {
    auto f = async([] { return 3; });
    Future<int> g = f;  // copy
    EXPECT_EQ(f.get() + g.get() + f.get(), 9);
  });
}

TEST(RuntimeBasic, TaskExceptionRethrownAtGet) {
  Runtime rt(tj_cfg());
  rt.root([] {
    auto f = async([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)f.get(), std::runtime_error);
    // A second get rethrows again.
    EXPECT_THROW((void)f.get(), std::runtime_error);
  });
}

TEST(RuntimeBasic, RootExceptionPropagates) {
  Runtime rt(tj_cfg());
  EXPECT_THROW(rt.root([]() -> int { throw std::logic_error("root"); }),
               std::logic_error);
}

TEST(RuntimeBasic, NestedAsyncChains) {
  Runtime rt(tj_cfg());
  const int v = rt.root([] {
    auto outer = async([] {
      auto inner = async([] { return 10; });
      return inner.get() + 1;
    });
    return outer.get() + 1;
  });
  EXPECT_EQ(v, 12);
}

TEST(RuntimeBasic, DeepRecursiveForkJoin) {
  Runtime rt(tj_cfg());
  // fib(14) with a task per call: exercises deep nesting under TJ.
  std::function<int(int)> fib = [&fib](int n) -> int {
    if (n < 2) return n;
    auto a = async([&fib, n] { return fib(n - 1); });
    auto b = async([&fib, n] { return fib(n - 2); });
    return a.get() + b.get();
  };
  EXPECT_EQ(rt.root([&] { return fib(14); }), 377);
}

TEST(RuntimeBasic, ManySiblingsJoinedInOrder) {
  Runtime rt(tj_cfg());
  const long total = rt.root([] {
    std::vector<Future<long>> fs;
    for (long i = 0; i < 2000; ++i) {
      fs.push_back(async([i] { return i; }));
    }
    long acc = 0;
    for (const auto& f : fs) acc += f.get();
    return acc;
  });
  EXPECT_EQ(total, 2000L * 1999 / 2);
}

TEST(RuntimeBasic, ReadyBecomesTrueAfterJoin) {
  Runtime rt(tj_cfg());
  rt.root([] {
    auto f = async([] { return 1; });
    f.join();
    EXPECT_TRUE(f.ready());
  });
}

TEST(RuntimeBasic, EmptyFutureThrowsUsageError) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW((void)f.get(), UsageError);
  EXPECT_THROW((void)f.ready(), UsageError);
}

TEST(RuntimeBasic, AsyncOutsideTaskContextThrows) {
  EXPECT_THROW((void)async([] { return 1; }), UsageError);
}

TEST(RuntimeBasic, GetOutsideTaskContextThrows) {
  Runtime rt(tj_cfg());
  Future<int> escaped;
  rt.root([&escaped] { escaped = async([] { return 1; }); });
  // The task finished (root quiesces), but joining from outside any task
  // context is a usage error.
  EXPECT_THROW((void)escaped.get(), UsageError);
}

TEST(RuntimeBasic, SecondRootThrows) {
  Runtime rt(tj_cfg());
  rt.root([] {});
  EXPECT_THROW(rt.root([] {}), UsageError);
}

TEST(RuntimeBasic, NestedRootThrows) {
  Runtime rt1(tj_cfg());
  Runtime rt2(tj_cfg());
  rt1.root([&rt2] { EXPECT_THROW(rt2.root([] {}), UsageError); });
}

TEST(RuntimeBasic, TasksCreatedCountsRootAndChildren) {
  Runtime rt(tj_cfg());
  rt.root([] {
    auto a = async([] {});
    auto b = async([] {});
    a.join();
    b.join();
  });
  EXPECT_EQ(rt.tasks_created(), 3u);
}

TEST(RuntimeBasic, RootQuiescesStragglers) {
  // A task that is never joined still completes before root() returns.
  Runtime rt(tj_cfg());
  auto flag = std::make_shared<std::atomic<bool>>(false);
  rt.root([flag] {
    (void)async([flag] { flag->store(true); });
  });
  EXPECT_TRUE(flag->load());
}

TEST(RuntimeBasic, WorksWithSingleWorker) {
  Config cfg = tj_cfg();
  cfg.workers = 1;
  Runtime rt(cfg);
  const int v = rt.root([] {
    auto a = async([] { return 1; });
    auto b = async([] {
      auto c = async([] { return 2; });
      return c.get() + 4;
    });
    return a.get() + b.get();
  });
  EXPECT_EQ(v, 7);
}

TEST(RuntimeBasic, NoPolicyBaselineStillRuns) {
  Runtime rt({.policy = core::PolicyChoice::None});
  EXPECT_EQ(rt.root([] {
    auto f = async([] { return 5; });
    return f.get();
  }),
            5);
  EXPECT_EQ(rt.policy_bytes(), 0u);
}

}  // namespace
}  // namespace tj::runtime
