// Tests for the generalized (Armus-style) resource graph.

#include <gtest/gtest.h>

#include "wfg/resource_graph.hpp"

namespace tj::wfg {
namespace {

TEST(ResourceGraph, EmptyGraphIsSafe) {
  ResourceGraph g;
  EXPECT_TRUE(g.try_wait(1, {10}));
  EXPECT_EQ(g.blocked_count(), 1u);
  g.clear_wait(1);
  EXPECT_EQ(g.blocked_count(), 0u);
}

TEST(ResourceGraph, ProviderBookkeepingIsIdempotent) {
  ResourceGraph g;
  g.add_provider(10, 1);
  g.add_provider(10, 1);
  g.remove_provider(10, 1);
  g.remove_provider(10, 1);  // no-op
  g.remove_provider(99, 5);  // unknown resource: no-op
  EXPECT_TRUE(g.try_wait(2, {10}));
}

TEST(ResourceGraph, SelfProvidedResourceIsADeadlock) {
  // A task waiting on a resource only it can signal.
  ResourceGraph g;
  g.add_provider(10, 1);
  EXPECT_FALSE(g.try_wait(1, {10}));
  EXPECT_EQ(g.blocked_count(), 0u);  // nothing recorded on failure
}

TEST(ResourceGraph, TwoTaskCycleAcrossTwoResources) {
  ResourceGraph g;
  g.add_provider(10, 2);  // resource 10 needs task 2
  g.add_provider(20, 1);  // resource 20 needs task 1
  EXPECT_TRUE(g.try_wait(1, {10}));   // 1 blocks on 10 (safe: 2 runnable)
  EXPECT_FALSE(g.try_wait(2, {20}));  // 2 on 20 → 1 → 10 → 2: cycle
}

TEST(ResourceGraph, ChainWithoutCycleIsSafe) {
  ResourceGraph g;
  g.add_provider(10, 2);
  g.add_provider(20, 3);
  g.add_provider(30, 4);
  EXPECT_TRUE(g.try_wait(1, {10}));
  EXPECT_TRUE(g.try_wait(2, {20}));
  EXPECT_TRUE(g.try_wait(3, {30}));  // 4 is runnable: the chain grounds out
}

TEST(ResourceGraph, MultiResourceWaitChecksEveryBranch) {
  // Task 1 waits on BOTH 10 and 20; the cycle hides behind the second.
  ResourceGraph g;
  g.add_provider(10, 5);  // harmless branch
  g.add_provider(20, 2);
  g.add_provider(30, 1);
  ASSERT_TRUE(g.try_wait(2, {30}));   // 2 waits on a resource 1 provides
  EXPECT_FALSE(g.try_wait(1, {10, 20}));
}

TEST(ResourceGraph, MultiProviderResourceNeedsOnlyOneRunnableProvider) {
  // Armus semantics here: a resource is signalled by its providers
  // advancing; a cycle requires EVERY path back. Our conservative check
  // faults if ANY provider chain loops back — matching barrier semantics,
  // where all registered parties must arrive.
  ResourceGraph g;
  g.add_provider(10, 2);
  g.add_provider(10, 3);  // 3 stays runnable
  g.add_provider(20, 1);
  ASSERT_TRUE(g.try_wait(2, {20}));
  EXPECT_FALSE(g.try_wait(1, {10}))
      << "party 2 can never arrive at resource 10";
}

TEST(ResourceGraph, UnblockingBreaksTheCycle) {
  ResourceGraph g;
  g.add_provider(10, 2);
  g.add_provider(20, 1);
  ASSERT_TRUE(g.try_wait(1, {10}));
  ASSERT_FALSE(g.try_wait(2, {20}));
  g.clear_wait(1);  // task 1 unblocked (e.g. faulted and recovered)
  EXPECT_TRUE(g.try_wait(2, {20}));
}

TEST(ResourceGraph, WitnessNamesTheCycle) {
  ResourceGraph g;
  g.add_provider(10, 2);
  g.add_provider(20, 3);
  g.add_provider(30, 1);
  ASSERT_TRUE(g.try_wait(2, {20}));
  ASSERT_TRUE(g.try_wait(3, {30}));
  const auto cycle = g.witness_cycle(1, {10});
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle[0], 1u);
  // The intermediate tasks are 2 then 3.
  EXPECT_EQ(cycle[1], 2u);
  EXPECT_EQ(cycle[2], 3u);
  EXPECT_TRUE(g.witness_cycle(9, {10}).empty());  // no cycle through 9
}

TEST(ResourceGraph, WfgProjection) {
  ResourceGraph g;
  g.add_provider(10, 2);
  g.add_provider(10, 3);
  ASSERT_TRUE(g.try_wait(1, {10}));
  const auto wfg = g.wfg_projection();
  ASSERT_EQ(wfg.size(), 2u);
  EXPECT_EQ(wfg[0], (std::pair<TaskUid, TaskUid>{1, 2}));
  EXPECT_EQ(wfg[1], (std::pair<TaskUid, TaskUid>{1, 3}));
}

TEST(ResourceGraph, SgProjection) {
  ResourceGraph g;
  g.add_provider(10, 1);
  g.add_provider(20, 2);
  ASSERT_TRUE(g.try_wait(1, {20}));  // provider of 10 waits on 20
  const auto sg = g.sg_projection();
  ASSERT_EQ(sg.size(), 1u);
  EXPECT_EQ(sg[0], (std::pair<ResId, ResId>{10, 20}));
}

TEST(ResourceGraph, CycleCheckCounterAdvances) {
  ResourceGraph g;
  EXPECT_EQ(g.cycle_checks(), 0u);
  (void)g.try_wait(1, {10});
  (void)g.try_wait(2, {20});
  EXPECT_EQ(g.cycle_checks(), 2u);
}

}  // namespace
}  // namespace tj::wfg
