// Tests for the offline fork tree (Definitions 3.12/3.14, Theorem 3.15).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "trace/fork_tree.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

// The paper's Figure 1 (left): a forks b then d; b forks c.
Trace figure1_left() {
  return Trace{init(0), fork(0, 1), fork(1, 2), fork(0, 3)};
  // a=0, b=1, c=2, d=3
}

TEST(ForkTree, StructureBasics) {
  const ForkTree t(figure1_left());
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.task_count(), 4u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 1u);
  EXPECT_EQ(t.parent(3), 0u);
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(2), 2u);
  EXPECT_EQ(t.child_index(1), 0u);
  EXPECT_EQ(t.child_index(3), 1u);  // d forked after b
  EXPECT_EQ(t.children(0).size(), 2u);
}

TEST(ForkTree, AncestorRelation) {
  const ForkTree t(figure1_left());
  EXPECT_TRUE(t.is_ancestor(0, 1));
  EXPECT_TRUE(t.is_ancestor(0, 2));
  EXPECT_TRUE(t.is_ancestor(1, 2));
  EXPECT_FALSE(t.is_ancestor(2, 1));
  EXPECT_FALSE(t.is_ancestor(1, 3));
  EXPECT_FALSE(t.is_ancestor(1, 1));  // proper ancestorship only
}

TEST(ForkTree, LcaPlusCases) {
  const ForkTree t(figure1_left());
  EXPECT_EQ(t.lca_plus(0, 2).kind, LcaPlusKind::AncPlus);
  EXPECT_EQ(t.lca_plus(2, 0).kind, LcaPlusKind::DecStar);
  EXPECT_EQ(t.lca_plus(1, 1).kind, LcaPlusKind::DecStar);  // equal → dec*
  const LcaPlus sib = t.lca_plus(3, 2);  // d vs c: siblings d and b below a
  EXPECT_EQ(sib.kind, LcaPlusKind::Sib);
  EXPECT_EQ(sib.a_side, 3u);
  EXPECT_EQ(sib.b_side, 1u);
}

TEST(ForkTree, TraditionalLca) {
  const ForkTree t(figure1_left());
  EXPECT_EQ(t.lca(0, 2), 0u);
  EXPECT_EQ(t.lca(2, 0), 0u);
  EXPECT_EQ(t.lca(3, 2), 0u);
  EXPECT_EQ(t.lca(1, 2), 1u);
}

TEST(ForkTree, PreorderLessFigure1) {
  const ForkTree t(figure1_left());
  // Rule I: parents precede children.
  EXPECT_TRUE(t.preorder_less(0, 1));
  EXPECT_TRUE(t.preorder_less(0, 3));
  EXPECT_TRUE(t.preorder_less(1, 2));
  EXPECT_TRUE(t.preorder_less(0, 2));  // transitive: grandchild
  // Figure 1's highlight: d may join b and c (younger sibling precedes).
  EXPECT_TRUE(t.preorder_less(3, 1));
  EXPECT_TRUE(t.preorder_less(3, 2));
  // And never the reverse.
  EXPECT_FALSE(t.preorder_less(1, 3));
  EXPECT_FALSE(t.preorder_less(2, 3));
  EXPECT_FALSE(t.preorder_less(2, 0));
  EXPECT_FALSE(t.preorder_less(1, 1));
}

TEST(ForkTree, PreorderSequenceNewestChildFirst) {
  const ForkTree t(figure1_left());
  const std::vector<TaskId> expected{0, 3, 1, 2};
  EXPECT_EQ(t.preorder(), expected);
}

TEST(ForkTree, PreorderSequenceMatchesPairwiseLess) {
  const Trace tr = random_tree_trace(60, /*seed=*/99, /*depth_bias=*/0.4);
  const ForkTree t(tr);
  const std::vector<TaskId> order = t.preorder();
  ASSERT_EQ(order.size(), t.task_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_TRUE(t.preorder_less(order[i], order[j]));
      EXPECT_FALSE(t.preorder_less(order[j], order[i]));
    }
  }
}

TEST(ForkTree, RejectsMalformedTraces) {
  EXPECT_THROW(ForkTree(Trace{}), std::invalid_argument);
  EXPECT_THROW(ForkTree(Trace{fork(0, 1)}), std::invalid_argument);
  EXPECT_THROW(ForkTree(Trace{init(0), init(1)}), std::invalid_argument);
  EXPECT_THROW(ForkTree(Trace{init(0), fork(1, 2)}), std::invalid_argument);
  EXPECT_THROW(ForkTree(Trace{init(0), fork(0, 0)}), std::invalid_argument);
  EXPECT_THROW(ForkTree(Trace{init(0), fork(0, 1), fork(0, 1)}),
               std::invalid_argument);
}

TEST(ForkTree, LcaPlusUnknownTaskThrows) {
  const ForkTree t(figure1_left());
  EXPECT_THROW((void)t.lca_plus(0, 42), std::invalid_argument);
}

TEST(ForkTree, ChainShape) {
  const ForkTree t(chain_trace(10));
  EXPECT_EQ(t.depth(9), 9u);
  EXPECT_TRUE(t.is_ancestor(0, 9));
  EXPECT_TRUE(t.preorder_less(3, 7));  // ancestor precedes
  EXPECT_FALSE(t.preorder_less(7, 3));
}

TEST(ForkTree, StarShape) {
  const ForkTree t(star_trace(10));
  for (TaskId i = 1; i < 10; ++i) {
    EXPECT_EQ(t.depth(i), 1u);
    EXPECT_EQ(t.child_index(i), i - 1);
  }
  // Later-forked siblings precede earlier ones.
  EXPECT_TRUE(t.preorder_less(9, 1));
  EXPECT_FALSE(t.preorder_less(1, 9));
}

class ForkTreeShapes : public ::testing::TestWithParam<double> {};

TEST_P(ForkTreeShapes, LcaPlusConsistentWithAncestorQueries) {
  const Trace tr = random_tree_trace(40, /*seed=*/7, GetParam());
  const ForkTree t(tr);
  for (TaskId a = 0; a < 40; ++a) {
    for (TaskId b = 0; b < 40; ++b) {
      const LcaPlus r = t.lca_plus(a, b);
      switch (r.kind) {
        case LcaPlusKind::AncPlus:
          EXPECT_TRUE(t.is_ancestor(a, b));
          break;
        case LcaPlusKind::DecStar:
          EXPECT_TRUE(a == b || t.is_ancestor(b, a));
          break;
        case LcaPlusKind::Sib:
          EXPECT_EQ(t.parent(r.a_side), t.parent(r.b_side));
          EXPECT_NE(r.a_side, r.b_side);
          EXPECT_TRUE(r.a_side == a || t.is_ancestor(r.a_side, a));
          EXPECT_TRUE(r.b_side == b || t.is_ancestor(r.b_side, b));
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DepthBias, ForkTreeShapes,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0));

}  // namespace
}  // namespace tj::trace
