// Section 4: TJ subsumes KJ. Theorem 4.3 (a ≺ b implies a < b on KJ-valid
// traces), Corollary 4.4 (KJ-valid traces are TJ-valid), and the strictness
// witnesses from Sections 2.3/2.4 and Figure 1.

#include <gtest/gtest.h>

#include "trace/kj_judgment.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace tj::trace {
namespace {

class Subsumption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Subsumption, KnowledgeImpliesTjPermission) {
  // Theorem 4.3 on random KJ-valid traces.
  const Trace t = random_kj_valid_trace(40, 60, GetParam(), 0.4);
  ASSERT_TRUE(is_kj_valid(t));
  const KjJudgment kj(t);
  const TjJudgment tj(t);
  for (TaskId a = 0; a < 40; ++a) {
    for (TaskId b = 0; b < 40; ++b) {
      if (kj.knows(a, b)) {
        EXPECT_TRUE(tj.less(a, b)) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(Subsumption, KjValidTracesAreTjValid) {
  // Corollary 4.4.
  const Trace t = random_kj_valid_trace(40, 60, GetParam(), 0.4);
  ASSERT_TRUE(is_kj_valid(t));
  EXPECT_TRUE(is_tj_valid(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Subsumption,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(SubsumptionStrictness, Figure1RightIsTjOnly) {
  // a=0, b=1, c=2, d=3, e=4; e joins c without joining b first.
  const Trace t{init(0),    fork(0, 1), fork(1, 2),
                fork(0, 3), fork(3, 4), join(4, 2)};
  EXPECT_TRUE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
}

TEST(SubsumptionStrictness, Listing1UnorderedDescendantJoin) {
  // main=0 forks 1; 1 forks 2 and 3 (the divide-and-conquer). A run where
  // main polls a grandchild from the queue before its parent:
  const Trace t{init(0),    fork(0, 1), fork(1, 2), fork(1, 3),
                join(0, 2), join(0, 1), join(0, 3)};
  EXPECT_TRUE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
  // The KJ-friendly ordering of the same joins is accepted by both.
  const Trace ordered{init(0),    fork(0, 1), fork(1, 2), fork(1, 3),
                      join(0, 1), join(0, 2), join(0, 3)};
  EXPECT_TRUE(is_kj_valid(ordered));
  EXPECT_TRUE(is_tj_valid(ordered));
}

TEST(SubsumptionStrictness, Listing2MapReduceAlwaysViolatesKj) {
  // main=0; spawner=1 (async mapper spawning); mappers=2,3 (children of 1);
  // reducer=4 (child of 0, forked after 1) joins the mappers directly.
  const Trace t{init(0),    fork(0, 1), fork(1, 2), fork(1, 3), fork(0, 4),
                join(4, 2), join(4, 3), join(0, 4), join(0, 1)};
  EXPECT_TRUE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
}

TEST(SubsumptionStrictness, ArbitraryDescendantJoinIsTjValid) {
  // Sec. 7.2: a task may join ANY descendant regardless of join order.
  Trace t = chain_trace(8);
  for (TaskId d = 7; d >= 1; --d) t.push_join(0, d);  // deepest first
  EXPECT_TRUE(is_tj_valid(t));
  EXPECT_FALSE(is_kj_valid(t));
}

TEST(SubsumptionStrictness, TjPermissionIsStrictlyLarger) {
  // On the Figure-1 fork tree, count the permitted pairs under each policy.
  const Trace t{init(0), fork(0, 1), fork(1, 2), fork(0, 3), fork(3, 4)};
  const TjJudgment tj(t);
  const KjJudgment kj(t);
  int tj_pairs = 0;
  int kj_pairs = 0;
  for (TaskId a = 0; a < 5; ++a) {
    for (TaskId b = 0; b < 5; ++b) {
      tj_pairs += tj.less(a, b);
      kj_pairs += kj.knows(a, b);
      if (kj.knows(a, b)) EXPECT_TRUE(tj.less(a, b));
    }
  }
  EXPECT_GT(tj_pairs, kj_pairs);
  EXPECT_EQ(tj_pairs, 10);  // total order over 5 tasks: C(5,2)
}

TEST(SubsumptionStrictness, TjIsMaximallyPermissive) {
  // Sec. 4's closing argument: < is a total order, so adding any pair (b,a)
  // with a < b would let a trace join both ways — a 2-cycle deadlock.
  const Trace t{init(0), fork(0, 1), fork(0, 2)};
  const TjJudgment tj(t);
  // For every ordered pair exactly one direction is permitted...
  for (TaskId a = 0; a < 3; ++a) {
    for (TaskId b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_NE(tj.less(a, b), tj.less(b, a));
    }
  }
  // ...and joining along permitted edges in both orders cannot cycle,
  // while adding the reverse pair would (2 < 1 permitted; 1 < 2 would
  // close join(2,1);join(1,2)).
  EXPECT_TRUE(tj.less(2, 1));
  EXPECT_FALSE(tj.less(1, 2));
}

}  // namespace
}  // namespace tj::trace
