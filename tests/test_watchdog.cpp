// Join watchdog: detects joins blocked past the stall threshold, runs the
// on-demand cycle scan, and reports the blocked task, its join target and
// the admitting gate verdict — distinguishing external stalls (acyclic) from
// genuine cycles the gate could not see.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/watchdog.hpp"

namespace tj::runtime {
namespace {

TEST(Watchdog, DisabledByDefaultAndCostsNothing) {
  Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  EXPECT_EQ(rt.watchdog(), nullptr);
  rt.root([] {
    auto f = async([] { return 1; });
    EXPECT_EQ(f.get(), 1);
  });
}

TEST(Watchdog, ReportsExternallyBlockedJoinNamingWaiterAndTarget) {
  // Synthetic stall: the join target spins on an external flag the policies
  // know nothing about. The watchdog must report the blocked join — naming
  // the waiting task and the join target — and find the WFG acyclic (the
  // stall is external, not a deadlock).
  std::mutex mu;
  std::vector<StallReport> reports;
  std::atomic<bool> release{false};

  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 5;
  cfg.watchdog.stall_ms = 25;
  cfg.watchdog.on_stall = [&](const StallReport& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reports.push_back(r);
    }
    release.store(true, std::memory_order_release);  // unblock the target
  };
  Runtime rt(cfg);
  ASSERT_NE(rt.watchdog(), nullptr);

  // Safety net so a watchdog bug fails the assertions below instead of
  // hanging the suite forever.
  std::thread safety([&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    release.store(true, std::memory_order_release);
  });

  std::uint64_t root_uid = 0;
  std::uint64_t target_uid = 0;
  rt.root([&] {
    root_uid = current_task().uid();
    auto stuck = async([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return 9;
    });
    target_uid = stuck.task().uid();
    EXPECT_EQ(stuck.get(), 9);  // blocks long enough to trip the watchdog
  });
  safety.join();

  ASSERT_GE(rt.watchdog()->stalls_reported(), 1u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(reports.empty());
  const StallReport& r = reports.front();
  ASSERT_FALSE(r.stalled.empty());
  const StallReport::BlockedJoin& bj = r.stalled.front();
  EXPECT_EQ(bj.waiter, root_uid);
  EXPECT_EQ(bj.target, target_uid);
  EXPECT_FALSE(bj.on_promise);
  EXPECT_GE(bj.blocked_for.count(), 25);
  EXPECT_TRUE(r.cycles.empty()) << "external stall misdiagnosed as a cycle";
  // The human-readable dump names both tasks and the verdict.
  const std::string text = r.to_string();
  EXPECT_NE(text.find("joining task"), std::string::npos) << text;
  EXPECT_NE(text.find("acyclic"), std::string::npos) << text;
}

TEST(Watchdog, ReportsStalledPromiseAwait) {
  std::mutex mu;
  std::vector<StallReport> reports;
  std::atomic<bool> release{false};

  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.scheduler = SchedulerMode::Blocking;
  cfg.workers = 2;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 5;
  cfg.watchdog.stall_ms = 25;
  cfg.watchdog.on_stall = [&](const StallReport& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reports.push_back(r);
    }
    release.store(true, std::memory_order_release);
  };
  Runtime rt(cfg);

  std::thread safety([&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    release.store(true, std::memory_order_release);
  });

  std::uint64_t promise_uid = 0;
  rt.root([&] {
    auto p = make_promise<int>();
    promise_uid = p.uid();
    auto fulfiller = async_owning(p, [p, &release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      p.fulfill(5);
    });
    EXPECT_EQ(p.get(), 5);  // the await stalls until the watchdog fires
    fulfiller.join();
  });
  safety.join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(reports.empty());
  bool saw_await = false;
  for (const StallReport& r : reports) {
    for (const auto& bj : r.stalled) {
      if (bj.on_promise && bj.target == promise_uid) saw_await = true;
    }
  }
  EXPECT_TRUE(saw_await);
}

TEST(Watchdog, QuickJoinsAreNeverReported) {
  Config cfg;
  cfg.policy = core::PolicyChoice::TJ_SP;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 5;
  cfg.watchdog.stall_ms = 10000;  // nothing in this test blocks that long
  cfg.watchdog.on_stall = [](const StallReport&) {
    ADD_FAILURE() << "watchdog fired on a healthy workload";
  };
  Runtime rt(cfg);
  rt.root([] {
    std::vector<Future<int>> fs;
    for (int i = 0; i < 200; ++i) fs.push_back(async([i] { return i; }));
    for (auto& f : fs) (void)f.get();
  });
  EXPECT_EQ(rt.watchdog()->stalls_reported(), 0u);
}

}  // namespace
}  // namespace tj::runtime
