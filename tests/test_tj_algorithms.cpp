// Unit tests for the three TJ verifier algorithms' internals: TJ-GT tree
// fields (Algorithm 2), TJ-JP jump tables, TJ-SP spawn paths (Algorithm 3),
// byte accounting, and lock-free concurrent use per the Sec. 5.1 contract.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tj_gt.hpp"
#include "core/tj_jp.hpp"
#include "core/tj_sp.hpp"

namespace tj::core {
namespace {

TEST(TjGt, NodeFieldsPerAlgorithm2) {
  TjGtVerifier v;
  auto* root = static_cast<TjGtVerifier::Node*>(v.add_child(nullptr));
  EXPECT_EQ(root->parent, nullptr);
  EXPECT_EQ(root->depth, 0u);
  EXPECT_EQ(root->children, 0u);

  auto* c0 = static_cast<TjGtVerifier::Node*>(v.add_child(root));
  auto* c1 = static_cast<TjGtVerifier::Node*>(v.add_child(root));
  EXPECT_EQ(root->children, 2u);
  EXPECT_EQ(c0->ix, 0u);
  EXPECT_EQ(c1->ix, 1u);
  EXPECT_EQ(c0->depth, 1u);
  EXPECT_EQ(c0->parent, root);
}

TEST(TjGt, LessCases) {
  TjGtVerifier v;
  auto* a = v.add_child(nullptr);
  auto* b = v.add_child(a);   // first child
  auto* c = v.add_child(b);   // grandchild via b
  auto* d = v.add_child(a);   // second child
  // anc+ / dec*
  EXPECT_TRUE(v.permits_join(a, b));
  EXPECT_TRUE(v.permits_join(a, c));
  EXPECT_FALSE(v.permits_join(c, a));
  EXPECT_FALSE(v.permits_join(b, a));
  // sib: the later-forked subtree precedes
  EXPECT_TRUE(v.permits_join(d, b));
  EXPECT_TRUE(v.permits_join(d, c));
  EXPECT_FALSE(v.permits_join(b, d));
  EXPECT_FALSE(v.permits_join(c, d));
  // irreflexive
  EXPECT_FALSE(v.permits_join(b, b));
}

TEST(TjGt, DeepChainBothDirections) {
  TjGtVerifier v;
  std::vector<PolicyNode*> chain{v.add_child(nullptr)};
  for (int i = 0; i < 200; ++i) chain.push_back(v.add_child(chain.back()));
  EXPECT_TRUE(v.permits_join(chain.front(), chain.back()));
  EXPECT_FALSE(v.permits_join(chain.back(), chain.front()));
  EXPECT_TRUE(v.permits_join(chain[50], chain[180]));
  EXPECT_FALSE(v.permits_join(chain[180], chain[50]));
}

TEST(TjGt, BytesGrowLinearly) {
  TjGtVerifier v;
  auto* root = v.add_child(nullptr);
  const std::size_t one = v.bytes_in_use();
  EXPECT_GT(one, 0u);
  for (int i = 0; i < 99; ++i) v.add_child(root);
  EXPECT_EQ(v.bytes_in_use(), 100 * one);  // constant per task (Table 1)
}

TEST(TjJp, JumpTableShape) {
  TjJpVerifier v;
  std::vector<PolicyNode*> chain{v.add_child(nullptr)};
  for (int i = 0; i < 16; ++i) chain.push_back(v.add_child(chain.back()));
  const auto* n16 = static_cast<const TjJpVerifier::Node*>(chain[16]);
  EXPECT_EQ(n16->depth, 16u);
  ASSERT_EQ(n16->jump_count, 5u);  // ⌊log2(16)⌋+1
  EXPECT_EQ(n16->jumps[0], chain[15]);
  EXPECT_EQ(n16->jumps[1], chain[14]);
  EXPECT_EQ(n16->jumps[2], chain[12]);
  EXPECT_EQ(n16->jumps[3], chain[8]);
  EXPECT_EQ(n16->jumps[4], chain[0]);
}

TEST(TjJp, LessOnDeepChain) {
  TjJpVerifier v;
  std::vector<PolicyNode*> chain{v.add_child(nullptr)};
  for (int i = 0; i < 1000; ++i) chain.push_back(v.add_child(chain.back()));
  EXPECT_TRUE(v.permits_join(chain[0], chain[1000]));
  EXPECT_TRUE(v.permits_join(chain[123], chain[777]));
  EXPECT_FALSE(v.permits_join(chain[777], chain[123]));
  EXPECT_FALSE(v.permits_join(chain[42], chain[42]));
}

TEST(TjJp, LessAcrossSubtrees) {
  TjJpVerifier v;
  auto* root = v.add_child(nullptr);
  // Two subtrees of different depths under the root.
  auto* s0 = v.add_child(root);
  PolicyNode* deep = s0;
  for (int i = 0; i < 40; ++i) deep = v.add_child(deep);
  auto* s1 = v.add_child(root);
  PolicyNode* shallow = v.add_child(s1);
  // s1 forked after s0: the s1 subtree precedes all of s0's.
  EXPECT_TRUE(v.permits_join(shallow, deep));
  EXPECT_FALSE(v.permits_join(deep, shallow));
}

TEST(TjSp, PathsPerAlgorithm3) {
  TjSpVerifier v;
  auto* root = static_cast<TjSpVerifier::Node*>(v.add_child(nullptr));
  EXPECT_TRUE(root->path.empty());
  auto* c0 = static_cast<TjSpVerifier::Node*>(v.add_child(root));
  auto* c1 = static_cast<TjSpVerifier::Node*>(v.add_child(root));
  auto* g = static_cast<TjSpVerifier::Node*>(v.add_child(c1));
  EXPECT_EQ(c0->path, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(c1->path, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(g->path, (std::vector<std::uint32_t>{1, 0}));
}

TEST(TjSp, LessPrefixAndDivergence) {
  TjSpVerifier v;
  auto* root = v.add_child(nullptr);
  auto* c0 = v.add_child(root);
  auto* c1 = v.add_child(root);
  auto* g = v.add_child(c1);
  EXPECT_TRUE(v.permits_join(root, g));   // shorter path is ancestor (anc+)
  EXPECT_FALSE(v.permits_join(g, root));  // dec*
  EXPECT_TRUE(v.permits_join(c1, g));
  EXPECT_TRUE(v.permits_join(g, c0));     // diverge at index 0: 1 > 0
  EXPECT_FALSE(v.permits_join(c0, g));
  EXPECT_FALSE(v.permits_join(g, g));
}

TEST(TjSp, ReleaseReturnsBytes) {
  TjSpVerifier v;
  auto* root = v.add_child(nullptr);
  auto* child = v.add_child(root);
  const std::size_t with_two = v.bytes_in_use();
  v.release(child);
  EXPECT_LT(v.bytes_in_use(), with_two);
  v.release(root);
  EXPECT_EQ(v.bytes_in_use(), 0u);
}

TEST(TjSp, BytesGrowWithDepth) {
  // O(h) state per task: a deep task costs more than a shallow one (Table 1).
  TjSpVerifier v;
  auto* root = v.add_child(nullptr);
  PolicyNode* deep = root;
  const std::size_t before = v.bytes_in_use();
  deep = v.add_child(deep);
  const std::size_t d1 = v.bytes_in_use() - before;
  for (int i = 0; i < 62; ++i) deep = v.add_child(deep);
  const std::size_t before_last = v.bytes_in_use();
  v.add_child(deep);
  const std::size_t d64 = v.bytes_in_use() - before_last;
  EXPECT_GT(d64, d1);
}

template <typename V>
void concurrent_contract_smoke() {
  // Sec. 5.1: add_child and Less may be called concurrently, as long as no
  // two add_child calls share a parent. Each thread owns a private subtree
  // under its own child of the root and concurrently queries across trees.
  V v;
  auto* root = v.add_child(nullptr);
  constexpr int kThreads = 8;
  std::vector<PolicyNode*> bases;
  for (int i = 0; i < kThreads; ++i) bases.push_back(v.add_child(root));

  std::atomic<PolicyNode*> latest[kThreads];
  for (int i = 0; i < kThreads; ++i) latest[i].store(bases[i]);
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      PolicyNode* mine = bases[static_cast<std::size_t>(i)];
      for (int step = 0; step < 300; ++step) {
        mine = v.add_child(mine);
        latest[i].store(mine, std::memory_order_release);
        // Query against some other thread's latest published node.
        PolicyNode* other =
            latest[(i + 1) % kThreads].load(std::memory_order_acquire);
        const bool fwd = v.permits_join(mine, other);
        const bool bwd = v.permits_join(other, mine);
        if (fwd && bwd) failed.store(true);  // would break trichotomy
        if (!v.permits_join(root, mine)) failed.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(TjConcurrency, GtSmoke) { concurrent_contract_smoke<TjGtVerifier>(); }
TEST(TjConcurrency, JpSmoke) { concurrent_contract_smoke<TjJpVerifier>(); }
TEST(TjConcurrency, SpSmoke) { concurrent_contract_smoke<TjSpVerifier>(); }

}  // namespace
}  // namespace tj::core
