// Series and NQueens: numeric/combinatorial validation, plus the policy
// behaviour the paper's evaluation hinges on (NQueens violates KJ
// nondeterministically but never TJ).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/nqueens.hpp"
#include "apps/series.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {
namespace {

TEST(Series, LeadingCoefficientOfXPlusOneToTheX) {
  // a0 = (1/2)∫₀² (x+1)^x dx ≈ 2.8819 (converged trapezoid value; JGF's
  // published 2.8729 reflects its coarser fixed-step quadrature).
  const CoefficientPair c = series_coefficient(0, 20'000);
  EXPECT_NEAR(c.a, 2.8819, 2e-3);
  EXPECT_EQ(c.b, 0.0);
}

TEST(Series, FirstHarmonics) {
  // Converged values for k=1: a1 ≈ 1.1340, b1 ≈ -1.8821.
  const CoefficientPair c = series_coefficient(1, 20'000);
  EXPECT_NEAR(c.a, 1.1340, 2e-3);
  EXPECT_NEAR(c.b, -1.8821, 2e-3);
}

TEST(Series, CoefficientsDecay) {
  const CoefficientPair c2 = series_coefficient(2, 5'000);
  const CoefficientPair c40 = series_coefficient(40, 5'000);
  EXPECT_GT(std::hypot(c2.a, c2.b), std::hypot(c40.a, c40.b));
}

TEST(Series, ParallelMatchesSequentialSum) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const SeriesParams p = SeriesParams::tiny();
  const SeriesResult r = run_series(rt, p);
  double expected = 0.0;
  for (std::size_t k = 0; k < p.coefficients; ++k) {
    const CoefficientPair c = series_coefficient(k, p.integration_steps);
    expected += c.a + c.b;
  }
  EXPECT_NEAR(r.checksum, expected, 1e-9);
  EXPECT_EQ(r.tasks, 1u + p.coefficients);
}

TEST(Series, RootJoinsAllInForkOrderIsKjValid) {
  runtime::Runtime rt({.policy = core::PolicyChoice::KJ_SS});
  (void)run_series(rt, SeriesParams::tiny());
  EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
}

TEST(NQueens, SequentialReferenceCounts) {
  EXPECT_EQ(nqueens_reference(4), 2u);
  EXPECT_EQ(nqueens_reference(5), 10u);
  EXPECT_EQ(nqueens_reference(6), 4u);
  EXPECT_EQ(nqueens_reference(7), 40u);
  EXPECT_EQ(nqueens_reference(8), 92u);
}

TEST(NQueens, ParallelCountMatchesReference) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  NQueensParams p{.board = 8, .parallel_depth = 3};
  EXPECT_EQ(run_nqueens(rt, p).solutions, 92u);
}

TEST(NQueens, CutoffDepthDoesNotChangeTheCount) {
  for (std::size_t depth : {0u, 1u, 2u, 4u}) {
    runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
    NQueensParams p{.board = 7, .parallel_depth = depth};
    EXPECT_EQ(run_nqueens(rt, p).solutions, 40u) << "depth=" << depth;
  }
}

TEST(NQueens, NeverViolatesTj) {
  // Sec. 6.2: "it never violates TJ". Repeat to cover schedule variety.
  for (int i = 0; i < 5; ++i) {
    runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
    (void)run_nqueens(rt, NQueensParams::small());
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u);
  }
}

TEST(NQueens, ViolatesKjAndFallbackFiltersEveryFalsePositive) {
  // Sec. 6.2: NQueens violates KJ (nondeterministically) and triggers cycle
  // detection; the program is deadlock-free so every rejection must be
  // filtered as a false positive and the count still correct.
  std::uint64_t rejections = 0;
  for (int i = 0; i < 5 && rejections == 0; ++i) {
    runtime::Runtime rt({.policy = core::PolicyChoice::KJ_SS});
    const NQueensResult r = run_nqueens(rt, NQueensParams::small());
    EXPECT_EQ(r.solutions, 14200u);
    const auto s = rt.gate_stats();
    EXPECT_EQ(s.policy_rejections, s.false_positives);
    EXPECT_EQ(s.deadlocks_averted, 0u);
    rejections += s.policy_rejections;
  }
  EXPECT_GT(rejections, 0u) << "expected at least one KJ violation";
}

TEST(NQueens, KjVcAgreesWithKjSsOnViolationBehaviour) {
  runtime::Runtime rt({.policy = core::PolicyChoice::KJ_VC});
  const NQueensResult r = run_nqueens(rt, NQueensParams::small());
  EXPECT_EQ(r.solutions, 14200u);
  const auto s = rt.gate_stats();
  EXPECT_EQ(s.policy_rejections, s.false_positives);
}

}  // namespace
}  // namespace tj::apps
