// Barrier-based Jacobi must reproduce the futures-based (and sequential)
// arithmetic exactly, regardless of worker count.

#include <gtest/gtest.h>

#include "apps/jacobi.hpp"
#include "apps/jacobi_barrier.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {
namespace {

TEST(JacobiBarrier, MatchesSequentialReference) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const JacobiBarrierParams p = JacobiBarrierParams::tiny();
  const JacobiBarrierResult r = run_jacobi_barrier(rt, p);
  const JacobiParams ref{.n = p.n, .blocks = 1, .iterations = p.iterations};
  EXPECT_DOUBLE_EQ(r.checksum, jacobi_reference(ref));
  EXPECT_EQ(r.barrier_phases, p.iterations);
  EXPECT_EQ(r.tasks, 1u + p.workers);
}

TEST(JacobiBarrier, WorkerCountDoesNotChangeTheResult) {
  double first = 0.0;
  for (std::size_t workers : {1u, 3u, 8u}) {
    runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
    JacobiBarrierParams p{.n = 50, .workers = workers, .iterations = 6};
    const double checksum = run_jacobi_barrier(rt, p).checksum;
    if (workers == 1u) {
      first = checksum;
    } else {
      EXPECT_DOUBLE_EQ(checksum, first) << "workers=" << workers;
    }
  }
}

TEST(JacobiBarrier, AgreesWithFuturesBasedJacobi) {
  runtime::Runtime rt1({.policy = core::PolicyChoice::TJ_SP});
  runtime::Runtime rt2({.policy = core::PolicyChoice::TJ_SP});
  const JacobiParams fp{.n = 64, .blocks = 4, .iterations = 5};
  const JacobiBarrierParams bp{.n = 64, .workers = 4, .iterations = 5};
  EXPECT_DOUBLE_EQ(run_jacobi(rt1, fp).checksum,
                   run_jacobi_barrier(rt2, bp).checksum);
}

TEST(JacobiBarrier, MoreWorkersThanPoolThreads) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP, .workers = 2});
  JacobiBarrierParams p{.n = 40, .workers = 6, .iterations = 4};
  const JacobiBarrierResult r = run_jacobi_barrier(rt, p);
  const JacobiParams ref{.n = p.n, .blocks = 1, .iterations = p.iterations};
  EXPECT_DOUBLE_EQ(r.checksum, jacobi_reference(ref));
}

}  // namespace
}  // namespace tj::apps
