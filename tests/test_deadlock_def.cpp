// Tests for the offline deadlock definition (Definition 3.9).

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/deadlock.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

TEST(DeadlockDef, NoJoinsNoDeadlock) {
  EXPECT_FALSE(contains_deadlock(Trace{init(0), fork(0, 1), fork(0, 2)}));
}

TEST(DeadlockDef, SelfJoinIsTheNZeroCase) {
  const Trace t{init(0), fork(0, 1), join(1, 1)};
  const auto cycle = find_deadlock_cycle(t);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 1u);
  EXPECT_EQ(cycle->front(), 1u);
}

TEST(DeadlockDef, TwoCycle) {
  const Trace t{init(0), fork(0, 1), fork(0, 2), join(1, 2), join(2, 1)};
  const auto cycle = find_deadlock_cycle(t);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

TEST(DeadlockDef, LongCycleDetected) {
  for (std::uint32_t len : {3u, 5u, 17u}) {
    const Trace t = deadlocking_trace(len);
    const auto cycle = find_deadlock_cycle(t);
    ASSERT_TRUE(cycle.has_value()) << "len=" << len;
    EXPECT_EQ(cycle->size(), len);
  }
}

TEST(DeadlockDef, WitnessIsARealCycle) {
  const Trace t = deadlocking_trace(6);
  const auto cycle = find_deadlock_cycle(t);
  ASSERT_TRUE(cycle.has_value());
  // Every consecutive pair (and the wrap-around) must be a join in t.
  auto has_join = [&t](TaskId a, TaskId b) {
    return std::any_of(t.actions().begin(), t.actions().end(),
                       [&](const Action& act) {
                         return act == join(a, b);
                       });
  };
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(has_join((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

TEST(DeadlockDef, ChainOfJoinsIsNotACycle) {
  const Trace t{init(0), fork(0, 1), fork(0, 2), fork(0, 3),
                join(1, 2), join(2, 3)};
  EXPECT_FALSE(contains_deadlock(t));
}

TEST(DeadlockDef, DiamondIsNotACycle) {
  // 1 and 2 both join 3; 0 joins 1 and 2: a DAG, not a cycle.
  const Trace t{init(0), fork(0, 1), fork(0, 2), fork(0, 3),
                join(1, 3), join(2, 3), join(0, 1), join(0, 2)};
  EXPECT_FALSE(contains_deadlock(t));
}

TEST(DeadlockDef, CycleBuriedAmongOtherJoins) {
  Trace t = star_trace(10);
  t.push_join(0, 1).push_join(0, 2).push_join(5, 6).push_join(6, 7)
      .push_join(7, 5);  // 5→6→7→5
  EXPECT_TRUE(contains_deadlock(t));
}

TEST(DeadlockDef, RandomTjTracesAreDeadlockFree) {
  // Theorem 3.11 (deadlock-freedom of TJ), property-tested.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Trace t = random_tj_valid_trace(40, 60, seed, 0.4);
    EXPECT_FALSE(contains_deadlock(t)) << "seed=" << seed;
  }
}

TEST(DeadlockDef, RandomKjTracesAreDeadlockFree) {
  // KJ is also sound; its traces never deadlock either.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Trace t = random_kj_valid_trace(40, 60, seed, 0.4);
    EXPECT_FALSE(contains_deadlock(t)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace tj::trace
