// Tests for the reference TJ judgment (Definition 3.3) and its metatheory:
// irreflexivity (Lemma 3.5), transitivity (Lemma 3.8), total order
// (Theorem 3.10), and agreement with the preorder characterization
// (Theorems 3.15/3.17).

#include <gtest/gtest.h>

#include "trace/fork_tree.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

TEST(TjJudgment, RuleTjLeftParentPrecedesChild) {
  TjJudgment tj(Trace{init(0), fork(0, 1)});
  EXPECT_TRUE(tj.less(0, 1));
  EXPECT_FALSE(tj.less(1, 0));
}

TEST(TjJudgment, RuleTjLeftTransfersLessEq) {
  // c ≤ a at fork(a,b) yields c < b; with c = grandparent.
  TjJudgment tj(Trace{init(0), fork(0, 1), fork(1, 2)});
  EXPECT_TRUE(tj.less(0, 2));
}

TEST(TjJudgment, RuleTjRightYoungerSiblingPrecedes) {
  // fork(a,b) after a < c makes b < c: forking d after b gives d < b.
  TjJudgment tj(Trace{init(0), fork(0, 1), fork(0, 3)});
  EXPECT_TRUE(tj.less(3, 1));
  EXPECT_FALSE(tj.less(1, 3));
}

TEST(TjJudgment, JoinsDoNotChangeTheRelation) {
  const Trace base{init(0), fork(0, 1), fork(0, 2)};
  TjJudgment without(base);
  TjJudgment with(base + Trace{join(0, 1), join(2, 1)});
  for (TaskId a = 0; a < 3; ++a) {
    for (TaskId b = 0; b < 3; ++b) {
      EXPECT_EQ(without.less(a, b), with.less(a, b));
    }
  }
}

TEST(TjJudgment, Figure1LeftPermissions) {
  // a=0 forks b=1 then d=3; b forks c=2. TJ allows d to join c directly.
  TjJudgment tj(Trace{init(0), fork(0, 1), fork(1, 2), fork(0, 3)});
  EXPECT_TRUE(tj.less(3, 1));  // d < b
  EXPECT_TRUE(tj.less(3, 2));  // d < c (transitively through b)
  EXPECT_TRUE(tj.less(0, 2));  // a < c
  EXPECT_FALSE(tj.less(2, 3));
}

TEST(TjJudgment, Figure1RightPermissions) {
  // Right diagram: a=0 forks b=1, d=3; b forks c=2; d forks e=4; e joins c.
  TjJudgment tj(
      Trace{init(0), fork(0, 1), fork(1, 2), fork(0, 3), fork(3, 4)});
  EXPECT_TRUE(tj.less(4, 1));  // e inherits d's permission on b
  EXPECT_TRUE(tj.less(4, 2));  // e < c — the join KJ rejects, TJ accepts
  EXPECT_FALSE(tj.less(2, 4));
}

TEST(TjJudgment, UnknownTasksAreUnrelated) {
  TjJudgment tj(Trace{init(0), fork(0, 1)});
  EXPECT_FALSE(tj.less(0, 9));
  EXPECT_FALSE(tj.less(9, 0));
  EXPECT_FALSE(tj.less(8, 9));
}

TEST(TjJudgment, LessEqIsReflexive) {
  TjJudgment tj(Trace{init(0), fork(0, 1)});
  EXPECT_TRUE(tj.less_eq(0, 0));
  EXPECT_TRUE(tj.less_eq(1, 1));
  EXPECT_TRUE(tj.less_eq(0, 1));
  EXPECT_FALSE(tj.less_eq(1, 0));
}

TEST(TjJudgment, IncrementalMatchesBatch) {
  const Trace t = random_tree_trace(30, /*seed=*/5);
  TjJudgment batch(t);
  TjJudgment inc;
  for (const Action& a : t.actions()) inc.push(a);
  for (TaskId a = 0; a < 30; ++a) {
    for (TaskId b = 0; b < 30; ++b) {
      EXPECT_EQ(batch.less(a, b), inc.less(a, b));
    }
  }
}

struct PropertyParams {
  std::uint64_t seed;
  double depth_bias;
};

class TjJudgmentProperties : public ::testing::TestWithParam<PropertyParams> {
 protected:
  static constexpr std::uint32_t kTasks = 48;
  Trace trace_ = random_tree_trace(kTasks, GetParam().seed,
                                   GetParam().depth_bias);
  TjJudgment tj_{trace_};
};

TEST_P(TjJudgmentProperties, Irreflexivity) {
  for (TaskId a = 0; a < kTasks; ++a) {
    EXPECT_FALSE(tj_.less(a, a)) << "a=" << a;
  }
}

TEST_P(TjJudgmentProperties, Transitivity) {
  for (TaskId a = 0; a < kTasks; ++a) {
    for (TaskId b = 0; b < kTasks; ++b) {
      if (!tj_.less(a, b)) continue;
      for (TaskId c = 0; c < kTasks; ++c) {
        if (tj_.less(b, c)) {
          EXPECT_TRUE(tj_.less(a, c))
              << "a=" << a << " b=" << b << " c=" << c;
        }
      }
    }
  }
}

TEST_P(TjJudgmentProperties, Trichotomy) {
  for (TaskId a = 0; a < kTasks; ++a) {
    for (TaskId b = 0; b < kTasks; ++b) {
      const int count = (a == b ? 1 : 0) + (tj_.less(a, b) ? 1 : 0) +
                        (tj_.less(b, a) ? 1 : 0);
      EXPECT_EQ(count, 1) << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(TjJudgmentProperties, AgreesWithPreorderDecisionProcedure) {
  const ForkTree tree(trace_);
  for (TaskId a = 0; a < kTasks; ++a) {
    for (TaskId b = 0; b < kTasks; ++b) {
      EXPECT_EQ(tj_.less(a, b), tree.preorder_less(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, TjJudgmentProperties,
    ::testing::Values(PropertyParams{1, 0.0}, PropertyParams{2, 0.3},
                      PropertyParams{3, 0.5}, PropertyParams{4, 0.8},
                      PropertyParams{5, 1.0}, PropertyParams{6, 0.3},
                      PropertyParams{7, 0.6}, PropertyParams{8, 0.9}));

}  // namespace
}  // namespace tj::trace
