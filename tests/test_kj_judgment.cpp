// Tests for the reference KJ judgment (Definition 4.1).

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/kj_judgment.hpp"
#include "trace/trace_gen.hpp"

namespace tj::trace {
namespace {

TEST(KjJudgment, KjChildParentKnowsChild) {
  KjJudgment kj(Trace{init(0), fork(0, 1)});
  EXPECT_TRUE(kj.knows(0, 1));
  EXPECT_FALSE(kj.knows(1, 0));  // the child does not know the parent
}

TEST(KjJudgment, NothingKnowsTheRoot) {
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(1, 2), join(0, 1)});
  EXPECT_FALSE(kj.knows(1, 0));
  EXPECT_FALSE(kj.knows(2, 0));
  EXPECT_FALSE(kj.knows(0, 0));
}

TEST(KjJudgment, KjInheritChildGetsParentKnowledgeAtForkTime) {
  // 0 forks 1, then forks 2: 2 inherits knowledge of 1.
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(0, 2)});
  EXPECT_TRUE(kj.knows(2, 1));
  EXPECT_FALSE(kj.knows(1, 2));  // 1 was forked before 2 existed
}

TEST(KjJudgment, InheritanceIsASnapshotNotALiveView) {
  // 1 is forked before 2, so 1 never learns about 2 through inheritance,
  // even though their shared parent later knows both.
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(0, 2), fork(0, 3)});
  EXPECT_TRUE(kj.knows(3, 1));
  EXPECT_TRUE(kj.knows(3, 2));
  EXPECT_FALSE(kj.knows(1, 2));
  EXPECT_FALSE(kj.knows(2, 3));
}

TEST(KjJudgment, TasksDoNotKnowThemselves) {
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(1, 2)});
  EXPECT_FALSE(kj.knows(0, 0));
  EXPECT_FALSE(kj.knows(1, 1));
  EXPECT_FALSE(kj.knows(2, 2));
}

TEST(KjJudgment, GrandchildrenAreStrangers) {
  // The root does NOT know its grandchild until it joins the child —
  // the motivating gap of Sec. 2.3.
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(1, 2)});
  EXPECT_FALSE(kj.knows(0, 2));
}

TEST(KjJudgment, KjLearnJoinMergesKnowledge) {
  Trace t{init(0), fork(0, 1), fork(1, 2)};
  KjJudgment kj(t);
  EXPECT_FALSE(kj.knows(0, 2));
  kj.push(join(0, 1));
  EXPECT_TRUE(kj.knows(0, 2));  // learned 2 from 1
}

TEST(KjJudgment, LearnedKnowledgeFlowsToLaterChildren) {
  KjJudgment kj(
      Trace{init(0), fork(0, 1), fork(1, 2), join(0, 1), fork(0, 3)});
  EXPECT_TRUE(kj.knows(3, 2));  // 3 inherits what 0 learned from 1
}

TEST(KjJudgment, Figure1RightEJoinCIsNotKnown) {
  // a=0 forks b=1, d=3; b forks c=2; d forks e=4. KJ rejects join(e, c).
  KjJudgment kj(
      Trace{init(0), fork(0, 1), fork(1, 2), fork(0, 3), fork(3, 4)});
  EXPECT_TRUE(kj.knows(4, 1));   // e knows b (inherited from d from a)
  EXPECT_FALSE(kj.knows(4, 2));  // e does NOT know c — the KJ ✗ of Fig. 1
}

TEST(KjJudgment, KnowledgeOfListsExactly) {
  KjJudgment kj(Trace{init(0), fork(0, 1), fork(0, 2), fork(1, 3)});
  const std::vector<TaskId> k0 = kj.knowledge_of(0);
  EXPECT_EQ(k0, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(kj.knowledge_of(1), (std::vector<TaskId>{3}));
  EXPECT_TRUE(kj.knowledge_of(42).empty());
}

TEST(KjJudgment, MonotoneUnderTraceExtension) {
  const Trace t = random_kj_valid_trace(30, 20, /*seed=*/17);
  KjJudgment partial;
  KjJudgment full(t);
  for (const Action& a : t.actions()) {
    partial.push(a);
    // Every fact in the prefix judgment must persist in the full one.
    for (TaskId x = 0; x < 30; ++x) {
      for (TaskId y = 0; y < 30; ++y) {
        if (partial.knows(x, y)) {
          EXPECT_TRUE(full.knows(x, y)) << "x=" << x << " y=" << y;
        }
      }
    }
  }
}

TEST(KjJudgment, KnowledgeImpliesExistence) {
  const Trace t = random_kj_valid_trace(40, 30, /*seed=*/23);
  KjJudgment kj(t);
  for (TaskId a = 0; a < 40; ++a) {
    for (TaskId b = 0; b < 40; ++b) {
      if (kj.knows(a, b)) {
        EXPECT_TRUE(kj.knows_task(a));
        EXPECT_TRUE(kj.knows_task(b));
      }
    }
  }
}

}  // namespace
}  // namespace tj::trace
