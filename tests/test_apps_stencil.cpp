// Jacobi and Smith-Waterman: parallel results must equal the sequential
// references bit-for-bit / exactly, under every verifier.

#include <gtest/gtest.h>

#include "apps/jacobi.hpp"
#include "apps/smith_waterman.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {
namespace {

TEST(JacobiApp, MatchesSequentialReference) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const JacobiParams p = JacobiParams::tiny();
  const JacobiResult r = run_jacobi(rt, p);
  EXPECT_DOUBLE_EQ(r.checksum, jacobi_reference(p));
}

TEST(JacobiApp, TaskCount) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  JacobiParams p = JacobiParams::tiny();  // 4 blocks/side, 4 iterations
  const JacobiResult r = run_jacobi(rt, p);
  EXPECT_EQ(r.tasks, 1u + p.iterations * p.blocks * p.blocks);
}

TEST(JacobiApp, UnevenBlockSplit) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  JacobiParams p{.n = 50, .blocks = 3, .iterations = 3};
  EXPECT_DOUBLE_EQ(run_jacobi(rt, p).checksum, jacobi_reference(p));
}

TEST(JacobiApp, SingleIteration) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  JacobiParams p{.n = 32, .blocks = 2, .iterations = 1};
  EXPECT_DOUBLE_EQ(run_jacobi(rt, p).checksum, jacobi_reference(p));
}

TEST(JacobiApp, HeatFlowsIntoTheGrid) {
  // The hot boundary must raise the interior sum across iterations.
  JacobiParams p1{.n = 32, .blocks = 2, .iterations = 1};
  JacobiParams p8{.n = 32, .blocks = 2, .iterations = 8};
  EXPECT_GT(jacobi_reference(p8), jacobi_reference(p1));
}

TEST(JacobiApp, ValidUnderEveryVerifier) {
  for (auto pol : {core::PolicyChoice::TJ_GT, core::PolicyChoice::TJ_SP,
                   core::PolicyChoice::KJ_VC, core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    const JacobiParams p = JacobiParams::tiny();
    EXPECT_DOUBLE_EQ(run_jacobi(rt, p).checksum, jacobi_reference(p))
        << core::to_string(pol);
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

TEST(SmithWaterman, RandomDnaDeterministicAndWellFormed) {
  const std::string a = random_dna(500, 1);
  EXPECT_EQ(a, random_dna(500, 1));
  EXPECT_NE(a, random_dna(500, 2));
  for (char c : a) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(SmithWaterman, IdenticalSequencesScorePerfect) {
  SmithWatermanParams p = SmithWatermanParams::tiny();
  p.seed = 5;
  // Aligning a sequence against itself: best local alignment is the whole
  // sequence, score = length * match.
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const std::string s = random_dna(p.length, p.seed);
  // Use the reference DP directly on equal sequences via a tweaked params
  // run: seed ^ 0x5eed produces the second sequence, so instead check the
  // invariant on the reference function with equal inputs by construction.
  // (The app API fixes the seeds; this test validates the DP kernel.)
  std::vector<int> h((p.length + 1) * (p.length + 1), 0);
  int best = 0;
  for (std::size_t r = 1; r <= p.length; ++r) {
    for (std::size_t c = 1; c <= p.length; ++c) {
      const int sub = (s[r - 1] == s[c - 1]) ? p.match : p.mismatch;
      const int diag = h[(r - 1) * (p.length + 1) + c - 1] + sub;
      const int up = h[(r - 1) * (p.length + 1) + c] + p.gap;
      const int left = h[r * (p.length + 1) + c - 1] + p.gap;
      const int v = std::max({0, diag, up, left});
      h[r * (p.length + 1) + c] = v;
      best = std::max(best, v);
    }
  }
  EXPECT_EQ(best, static_cast<int>(p.length) * p.match);
}

TEST(SmithWaterman, ParallelMatchesSequential) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const SmithWatermanParams p = SmithWatermanParams::tiny();
  const SmithWatermanResult r = run_smith_waterman(rt, p);
  EXPECT_EQ(r.best_score, smith_waterman_reference(p));
  EXPECT_GT(r.best_score, 0);
}

TEST(SmithWaterman, UnevenChunkSplit) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  SmithWatermanParams p = SmithWatermanParams::tiny();
  p.length = 130;
  p.chunks = 7;
  EXPECT_EQ(run_smith_waterman(rt, p).best_score,
            smith_waterman_reference(p));
}

TEST(SmithWaterman, TaskCountIsChunksSquared) {
  runtime::Runtime rt({.policy = core::PolicyChoice::TJ_SP});
  const SmithWatermanParams p = SmithWatermanParams::tiny();
  const SmithWatermanResult r = run_smith_waterman(rt, p);
  EXPECT_EQ(r.tasks, 1u + p.chunks * p.chunks);
}

TEST(SmithWaterman, ValidUnderEveryVerifier) {
  for (auto pol : {core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_VC,
                   core::PolicyChoice::KJ_SS}) {
    runtime::Runtime rt({.policy = pol});
    const SmithWatermanParams p = SmithWatermanParams::tiny();
    EXPECT_EQ(run_smith_waterman(rt, p).best_score,
              smith_waterman_reference(p))
        << core::to_string(pol);
    EXPECT_EQ(rt.gate_stats().policy_rejections, 0u) << core::to_string(pol);
  }
}

}  // namespace
}  // namespace tj::apps
