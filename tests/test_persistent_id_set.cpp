// Unit and property tests for the persistent bitmap trie behind KJ-SS.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "kj/persistent_id_set.hpp"

namespace tj::kj {
namespace {

core::PolicyAllocator g_alloc;

TEST(PersistentIdSet, EmptySet) {
  const PersistentIdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(123456));
  EXPECT_EQ(s.size(), 0u);
}

TEST(PersistentIdSet, InsertAndContains) {
  PersistentIdSet s;
  s = s.insert(5, &g_alloc);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(6));
  EXPECT_EQ(s.size(), 1u);
}

TEST(PersistentIdSet, InsertIsPersistent) {
  PersistentIdSet v1;
  v1 = v1.insert(1, &g_alloc);
  const PersistentIdSet v2 = v1.insert(2, &g_alloc);
  EXPECT_TRUE(v2.contains(1));
  EXPECT_TRUE(v2.contains(2));
  EXPECT_TRUE(v1.contains(1));
  EXPECT_FALSE(v1.contains(2)) << "older version must be unaffected";
}

TEST(PersistentIdSet, DuplicateInsertIsIdempotent) {
  PersistentIdSet s;
  s = s.insert(42, &g_alloc);
  const PersistentIdSet t = s.insert(42, &g_alloc);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(42));
}

TEST(PersistentIdSet, GrowsAcrossLeafBoundaries) {
  PersistentIdSet s;
  const std::vector<std::uint32_t> ids{0,    63,    64,     65,    1023,
                                       1024, 99999, 100000, 1 << 20};
  for (std::uint32_t id : ids) s = s.insert(id, &g_alloc);
  for (std::uint32_t id : ids) {
    EXPECT_TRUE(s.contains(id)) << id;
  }
  EXPECT_FALSE(s.contains(62));
  EXPECT_FALSE(s.contains(66));
  EXPECT_FALSE(s.contains((1 << 20) - 1));
  EXPECT_EQ(s.size(), ids.size());
}

TEST(PersistentIdSet, UnionBasics) {
  PersistentIdSet a;
  PersistentIdSet b;
  a = a.insert(1, &g_alloc).insert(100, &g_alloc);
  b = b.insert(2, &g_alloc).insert(100000, &g_alloc);
  const PersistentIdSet u = PersistentIdSet::union_of(a, b, &g_alloc);
  for (std::uint32_t id : {1u, 2u, 100u, 100000u}) {
    EXPECT_TRUE(u.contains(id)) << id;
  }
  EXPECT_EQ(u.size(), 4u);
  // Inputs unchanged.
  EXPECT_FALSE(a.contains(2));
  EXPECT_FALSE(b.contains(1));
}

TEST(PersistentIdSet, UnionWithEmpty) {
  PersistentIdSet a;
  a = a.insert(7, &g_alloc);
  const PersistentIdSet e;
  EXPECT_EQ(PersistentIdSet::union_of(a, e, &g_alloc).size(), 1u);
  EXPECT_EQ(PersistentIdSet::union_of(e, a, &g_alloc).size(), 1u);
  EXPECT_TRUE(PersistentIdSet::union_of(e, e, &g_alloc).empty());
}

TEST(PersistentIdSet, UnionOfSnapshotIsCheapInBytes) {
  // Merging a set with its own earlier snapshot should allocate (almost)
  // nothing: every subtree is shared.
  core::PolicyAllocator alloc;
  PersistentIdSet big;
  for (std::uint32_t i = 0; i < 10'000; ++i) big = big.insert(i, &alloc);
  const PersistentIdSet snapshot = big;  // O(1)
  for (std::uint32_t i = 10'000; i < 10'100; ++i) big = big.insert(i, &alloc);
  const std::size_t before = alloc.total_allocated();
  const PersistentIdSet u = PersistentIdSet::union_of(big, snapshot, &alloc);
  EXPECT_EQ(alloc.total_allocated(), before) << "subset union must not allocate";
  EXPECT_EQ(u.size(), 10'100u);
}

TEST(PersistentIdSet, MatchesStdSetOnRandomWorkload) {
  std::mt19937_64 rng(99);
  PersistentIdSet s;
  std::set<std::uint32_t> ref;
  std::vector<PersistentIdSet> versions;
  std::vector<std::set<std::uint32_t>> ref_versions;
  for (int step = 0; step < 3'000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng() % 50'000);
    s = s.insert(id, &g_alloc);
    ref.insert(id);
    if (step % 500 == 0) {
      versions.push_back(s);
      ref_versions.push_back(ref);
    }
  }
  EXPECT_EQ(s.size(), ref.size());
  std::uniform_int_distribution<std::uint32_t> probe(0, 60'000);
  for (int i = 0; i < 5'000; ++i) {
    const std::uint32_t id = probe(rng);
    EXPECT_EQ(s.contains(id), ref.contains(id)) << id;
  }
  // Unions of random versions match reference unions.
  for (std::size_t i = 0; i + 1 < versions.size(); ++i) {
    const PersistentIdSet u =
        PersistentIdSet::union_of(versions[i], versions[i + 1], &g_alloc);
    std::set<std::uint32_t> ru = ref_versions[i];
    ru.insert(ref_versions[i + 1].begin(), ref_versions[i + 1].end());
    EXPECT_EQ(u.size(), ru.size());
    for (std::uint32_t id : ru) {
      EXPECT_TRUE(u.contains(id)) << id;
    }
  }
}

TEST(PersistentIdSet, ByteAccountingReturnsToZero) {
  core::PolicyAllocator alloc;
  {
    PersistentIdSet s;
    for (std::uint32_t i = 0; i < 5'000; ++i) s = s.insert(i * 3, &alloc);
    EXPECT_GT(alloc.live_bytes(), 0u);
  }
  EXPECT_EQ(alloc.live_bytes(), 0u);
}

}  // namespace
}  // namespace tj::kj
