// Differential fuzzer: generates random traces and cross-checks every online
// verifier against the reference judgments, the preorder decision procedure,
// and the metatheory (total order, deadlock-freedom, subsumption). On a
// discrepancy it MINIMIZES the witness and prints it in parseable notation.
//
//   fuzz_policies [--iterations=N] [--tasks=N] [--joins=N] [--seed=S]
//
// Runs forever-ish by default budget (10k traces); exit 0 = no discrepancy.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/verifier.hpp"
#include "trace/deadlock.hpp"
#include "trace/fork_tree.hpp"
#include "trace/kj_judgment.hpp"
#include "trace/minimize.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace {

using namespace tj;
using trace::TaskId;
using trace::Trace;

struct Options {
  std::uint64_t iterations = 10'000;
  std::uint32_t tasks = 24;
  std::uint32_t joins = 24;
  std::uint64_t seed = 12345;
};

// Replays the trace through a verifier; returns per-task nodes.
struct Replay {
  std::unique_ptr<core::Verifier> verifier;
  std::vector<core::PolicyNode*> nodes;

  explicit Replay(core::PolicyChoice p, const Trace& t)
      : verifier(core::make_verifier(p)) {
    for (const trace::Action& a : t.actions()) {
      switch (a.kind) {
        case trace::ActionKind::Init:
          at(a.actor) = verifier->add_child(nullptr);
          break;
        case trace::ActionKind::Fork:
          at(a.target) = verifier->add_child(nodes[a.actor]);
          break;
        case trace::ActionKind::Join:
          verifier->on_join_complete(nodes[a.actor], nodes[a.target]);
          break;
      }
    }
  }

  ~Replay() {
    for (core::PolicyNode* n : nodes) {
      if (n != nullptr) verifier->release(n);
    }
  }

  core::PolicyNode*& at(TaskId id) {
    if (id >= nodes.size()) nodes.resize(id + 1, nullptr);
    return nodes[id];
  }

  bool permits(TaskId a, TaskId b) {
    return verifier->permits_join(nodes[a], nodes[b]);
  }
};

// Returns an explanation of the first discrepancy found, or "".
std::string check_one(const Trace& t) {
  const trace::TjJudgment tj(t);
  const trace::KjJudgment kj(t);
  const trace::ForkTree tree(t);
  const auto tasks = t.tasks();
  // Theorem 4.3's hypothesis: subsumption is only promised on KJ-valid
  // traces (an *invalid* join can KJ-learn facts like a ≺ a).
  const bool kj_valid = trace::is_kj_valid(t);

  Replay gt(core::PolicyChoice::TJ_GT, t);
  Replay jp(core::PolicyChoice::TJ_JP, t);
  Replay sp(core::PolicyChoice::TJ_SP, t);
  Replay vc(core::PolicyChoice::KJ_VC, t);
  Replay ss(core::PolicyChoice::KJ_SS, t);

  char buf[160];
  for (TaskId a : tasks) {
    for (TaskId b : tasks) {
      const bool ref_tj = tj.less(a, b);
      const bool ref_kj = kj.knows(a, b);
      if (tree.preorder_less(a, b) != ref_tj) {
        std::snprintf(buf, sizeof buf, "preorder!=judgment a=%u b=%u", a, b);
        return buf;
      }
      if (gt.permits(a, b) != ref_tj || jp.permits(a, b) != ref_tj ||
          sp.permits(a, b) != ref_tj) {
        std::snprintf(buf, sizeof buf, "TJ verifier mismatch a=%u b=%u", a, b);
        return buf;
      }
      if (vc.permits(a, b) != ref_kj || ss.permits(a, b) != ref_kj) {
        std::snprintf(buf, sizeof buf, "KJ verifier mismatch a=%u b=%u", a, b);
        return buf;
      }
      if (kj_valid && ref_kj && !ref_tj) {
        std::snprintf(buf, sizeof buf, "subsumption broken a=%u b=%u", a, b);
        return buf;
      }
      const int tri = (a == b ? 1 : 0) + (ref_tj ? 1 : 0) +
                      (tj.less(b, a) ? 1 : 0);
      if (tri != 1) {
        std::snprintf(buf, sizeof buf, "trichotomy broken a=%u b=%u", a, b);
        return buf;
      }
    }
  }
  if (trace::is_tj_valid(t) && trace::contains_deadlock(t)) {
    return "TJ-valid trace contains a deadlock";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--iterations=")) {
      o.iterations = std::strtoull(v, nullptr, 10);
    } else if (const char* v2 = val("--tasks=")) {
      o.tasks = static_cast<std::uint32_t>(std::atoi(v2));
    } else if (const char* v3 = val("--joins=")) {
      o.joins = static_cast<std::uint32_t>(std::atoi(v3));
    } else if (const char* v4 = val("--seed=")) {
      o.seed = std::strtoull(v4, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  for (std::uint64_t i = 0; i < o.iterations; ++i) {
    const std::uint64_t seed = o.seed + i;
    // Alternate the three generators for coverage.
    const double bias = 0.1 * static_cast<double>(i % 11);
    Trace t;
    switch (i % 3) {
      case 0:
        t = trace::random_structural_trace(o.tasks, o.joins, seed, bias);
        break;
      case 1:
        t = trace::random_tj_valid_trace(o.tasks, o.joins, seed, bias);
        break;
      default:
        t = trace::random_kj_valid_trace(o.tasks, o.joins, seed, bias);
        break;
    }
    const std::string why = check_one(t);
    if (!why.empty()) {
      // Shrink to the smallest trace that still shows a discrepancy.
      const Trace min = trace::minimize_trace(t, [](const Trace& c) {
        return !check_one(c).empty();
      });
      std::fprintf(stderr, "DISCREPANCY after %llu traces: %s\n",
                   static_cast<unsigned long long>(i), why.c_str());
      std::fprintf(stderr, "minimized witness: %s\n",
                   min.to_string().c_str());
      return 1;
    }
    if ((i + 1) % 1000 == 0) {
      std::fprintf(stderr, "[fuzz] %llu traces ok\n",
                   static_cast<unsigned long long>(i + 1));
    }
  }
  std::printf("fuzz_policies: %llu traces, no discrepancies\n",
              static_cast<unsigned long long>(o.iterations));
  return 0;
}
