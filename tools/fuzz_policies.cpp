// Differential fuzzer: generates random traces and cross-checks every online
// verifier against the reference judgments, the preorder decision procedure,
// and the metatheory (total order, deadlock-freedom, subsumption). Promise
// traces additionally cross-check the online OwpVerifier against the offline
// ownership judgment, action by action. On a discrepancy it MINIMIZES the
// witness and prints it in parseable notation.
//
//   fuzz_policies [--iterations=N] [--tasks=N] [--joins=N] [--promises=N]
//                 [--ops=N] [--seed=S] [--record=DIR]
//                 [--fault-seed=S [--budget-chaos]]
//
// Runs forever-ish by default budget (10k traces); exit 0 = no discrepancy.
// With --record=DIR, any discrepancy is also dumped to DIR as parseable
// trace files (full + minimized witness) replayable through trace_check.
//
// Chaos mode: --fault-seed=S switches from trace fuzzing to driving the
// *live runtime* under the deterministic fault-injection layer
// (runtime/fault_injection.hpp), sweeping FaultPlan::chaos(S), chaos(S+1),
// ... across both scheduler modes (default 64 plans; override with
// --iterations=N). Each run must terminate, resolve every future/promise,
// and reconcile gate statistics — the same invariants the chaos tests
// assert, fuzzable over an unbounded seed range. With --record=DIR the
// runs execute under the flight recorder, and a violating run's event
// stream is bridged back to the offline trace format and dumped to DIR.
//
// Budget chaos: --budget-chaos (with --fault-seed=S) additionally arms the
// resource governor with per-seed randomized — typically hostile — budgets,
// so each run may degrade its policy ladder partway or all the way to
// WFG-only at an arbitrary point in the schedule, concurrently with the
// injected faults. A degraded run may accept strictly more joins (the WFG
// fallback is the precision backstop at every level), so the injected-vs-
// observed rejection equality is relaxed to >=; what must still hold is
// termination, no lost results, exact gate-stat reconciliation, and a
// deadlock-free recorded trace (record_trace is forced on and the run's
// Def. 3.1 trace is checked with trace::contains_deadlock).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/owp_replay.hpp"
#include "obs/replay_bridge.hpp"
#include "obs/witness.hpp"
#include "core/verifier.hpp"
#include "runtime/api.hpp"
#include "trace/deadlock.hpp"
#include "trace/fork_tree.hpp"
#include "trace/kj_judgment.hpp"
#include "trace/minimize.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/tj_judgment.hpp"
#include "trace/trace_gen.hpp"
#include "trace/validity.hpp"

namespace {

using namespace tj;
using trace::TaskId;
using trace::Trace;

struct Options {
  std::uint64_t iterations = 10'000;
  std::uint32_t tasks = 24;
  std::uint32_t joins = 24;
  std::uint32_t promises = 8;
  std::uint32_t ops = 32;
  std::uint64_t seed = 12345;
  std::string record_dir;  ///< non-empty: dump discrepancy witnesses here
};

// Writes a replayable witness file under the --record directory; failures
// to record never mask the discrepancy exit code, they just warn.
void record_witness(const std::string& dir, const std::string& name,
                    const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  if (!out || !(out << text)) {
    std::fprintf(stderr, "warning: could not record witness to %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(stderr, "witness recorded: %s\n", path.c_str());
}

// Replays the trace through a verifier; returns per-task nodes.
struct Replay {
  std::unique_ptr<core::Verifier> verifier;
  std::vector<core::PolicyNode*> nodes;

  explicit Replay(core::PolicyChoice p, const Trace& t)
      : verifier(core::make_verifier(p)) {
    for (const trace::Action& a : t.actions()) {
      switch (a.kind) {
        case trace::ActionKind::Init:
          at(a.actor) = verifier->add_child(nullptr);
          break;
        case trace::ActionKind::Fork:
          at(a.target) = verifier->add_child(nodes[a.actor]);
          break;
        case trace::ActionKind::Join:
          verifier->on_join_complete(nodes[a.actor], nodes[a.target]);
          break;
        case trace::ActionKind::Make:
        case trace::ActionKind::Fulfill:
        case trace::ActionKind::Transfer:
        case trace::ActionKind::Await:
          break;  // promise actions are invisible to the join verifiers
      }
    }
  }

  ~Replay() {
    for (core::PolicyNode* n : nodes) {
      if (n != nullptr) verifier->release(n);
    }
  }

  core::PolicyNode*& at(TaskId id) {
    if (id >= nodes.size()) nodes.resize(id + 1, nullptr);
    return nodes[id];
  }

  bool permits(TaskId a, TaskId b) {
    return verifier->permits_join(nodes[a], nodes[b]);
  }

  core::Witness explain(TaskId a, TaskId b) {
    core::Witness w = verifier->explain(nodes[a], nodes[b]);
    // Replay nodes carry no runtime uids; stamp the trace ids so the
    // rendered witness and the offline validator name the right tasks.
    w.waiter = a;
    w.target = b;
    return w;
  }
};

// Renders each policy's provenance witness for every join it would reject
// on `t` — dumped next to a minimized discrepancy trace so the refutation
// names its evidence (the spawn paths / clocks / sets behind each verdict),
// not just the verdict. Capped to keep discrepancy dumps readable.
std::string explain_rejections(const Trace& t) {
  const core::PolicyChoice policies[] = {
      core::PolicyChoice::TJ_GT, core::PolicyChoice::TJ_JP,
      core::PolicyChoice::TJ_SP, core::PolicyChoice::KJ_VC,
      core::PolicyChoice::KJ_SS};
  constexpr std::size_t kMaxWitnesses = 24;
  const auto tasks = t.tasks();
  std::string out;
  std::size_t dumped = 0;
  for (const core::PolicyChoice p : policies) {
    Replay rep(p, t);
    for (TaskId a : tasks) {
      for (TaskId b : tasks) {
        if (a == b || rep.permits(a, b)) continue;
        if (++dumped > kMaxWitnesses) {
          out += "... (witness cap reached)\n";
          return out;
        }
        const core::Witness w = rep.explain(a, b);
        const obs::WitnessValidation v = obs::validate_witness(w, t);
        out += obs::to_text(w);
        out += "  offline validation: ";
        out += to_string(v.verdict);
        if (!v.reason.empty()) {
          out += " (" + v.reason + ")";
        }
        out += "\n";
      }
    }
  }
  return out;
}

// Returns an explanation of the first discrepancy found, or "".
std::string check_one(const Trace& t) {
  const trace::TjJudgment tj(t);
  const trace::KjJudgment kj(t);
  const trace::ForkTree tree(t);
  const auto tasks = t.tasks();
  // Theorem 4.3's hypothesis: subsumption is only promised on KJ-valid
  // traces (an *invalid* join can KJ-learn facts like a ≺ a).
  const bool kj_valid = trace::is_kj_valid(t);

  Replay gt(core::PolicyChoice::TJ_GT, t);
  Replay jp(core::PolicyChoice::TJ_JP, t);
  Replay sp(core::PolicyChoice::TJ_SP, t);
  Replay vc(core::PolicyChoice::KJ_VC, t);
  Replay ss(core::PolicyChoice::KJ_SS, t);

  char buf[160];
  for (TaskId a : tasks) {
    for (TaskId b : tasks) {
      const bool ref_tj = tj.less(a, b);
      const bool ref_kj = kj.knows(a, b);
      if (tree.preorder_less(a, b) != ref_tj) {
        std::snprintf(buf, sizeof buf, "preorder!=judgment a=%u b=%u", a, b);
        return buf;
      }
      if (gt.permits(a, b) != ref_tj || jp.permits(a, b) != ref_tj ||
          sp.permits(a, b) != ref_tj) {
        std::snprintf(buf, sizeof buf, "TJ verifier mismatch a=%u b=%u", a, b);
        return buf;
      }
      if (vc.permits(a, b) != ref_kj || ss.permits(a, b) != ref_kj) {
        std::snprintf(buf, sizeof buf, "KJ verifier mismatch a=%u b=%u", a, b);
        return buf;
      }
      if (kj_valid && ref_kj && !ref_tj) {
        std::snprintf(buf, sizeof buf, "subsumption broken a=%u b=%u", a, b);
        return buf;
      }
      const int tri = (a == b ? 1 : 0) + (ref_tj ? 1 : 0) +
                      (tj.less(b, a) ? 1 : 0);
      if (tri != 1) {
        std::snprintf(buf, sizeof buf, "trichotomy broken a=%u b=%u", a, b);
        return buf;
      }
    }
  }
  // TJ judges joins only, so its deadlock-freedom theorem is stated for
  // promise-free traces; a lone `await` on an unfulfilled promise deadlocks
  // without ever being visible to TJ. Promise traces get the analogous
  // guarantee from OWP in check_owp() below.
  const auto& acts = t.actions();
  const bool promise_free =
      std::none_of(acts.begin(), acts.end(), [](const trace::Action& a) {
        return a.kind == trace::ActionKind::Make ||
               a.kind == trace::ActionKind::Fulfill ||
               a.kind == trace::ActionKind::Transfer ||
               a.kind == trace::ActionKind::Await;
      });
  if (promise_free && trace::is_tj_valid(t) && trace::contains_deadlock(t)) {
    return "TJ-valid trace contains a deadlock";
  }
  return "";
}

// Differential check for the ownership policy: feeds the trace action by
// action to the *online* OwpVerifier (via its replay shim) and the offline
// OwpJudgment, requiring identical verdicts, then cross-checks soundness
// against the extended deadlock definition.
std::string check_owp(const Trace& t) {
  core::OwpTraceReplay online;
  trace::OwpJudgment offline;
  char buf[160];
  std::size_t idx = 0;
  for (const trace::Action& a : t.actions()) {
    bool offline_ok = true;
    switch (a.kind) {
      case trace::ActionKind::Join:
        offline_ok = offline.valid_join(a.actor, a.target);
        break;
      case trace::ActionKind::Await:
        offline_ok = offline.valid_await(a.actor, a.promise);
        break;
      case trace::ActionKind::Fulfill:
        offline_ok = offline.valid_fulfill(a.actor, a.promise);
        break;
      case trace::ActionKind::Transfer:
        offline_ok = offline.valid_transfer(a.actor, a.target, a.promise);
        break;
      default:
        break;
    }
    if (online.feed(a) != offline_ok) {
      std::snprintf(buf, sizeof buf,
                    "OWP online/offline disagreement at action %zu", idx);
      return buf;
    }
    offline.push(a);
    ++idx;
  }
  if (trace::is_owp_valid(t) && trace::contains_deadlock(t)) {
    return "OWP-valid trace contains a deadlock";
  }
  return "";
}

// Combined predicate: join-policy differential plus the ownership policy.
std::string check_all(const Trace& t) {
  std::string why = check_one(t);
  if (why.empty()) why = check_owp(t);
  return why;
}

// splitmix64 — deterministic per-seed budget randomization for budget chaos.
std::uint64_t mix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Chaos mode: one live-runtime run under a deterministic FaultPlan.
// Returns an explanation of the first violated invariant, or "". With a
// record dir, the run executes under the flight recorder and a violating
// run's recorded events are bridged into an offline trace file.
// With `budget_chaos`, the governor is armed with seed-randomized budgets
// (see the file header for the relaxed invariants that implies).
std::string check_fault_plan(std::uint64_t seed, runtime::SchedulerMode mode,
                             const std::string& record_dir,
                             bool budget_chaos) {
  runtime::Config cfg;
  cfg.policy = budget_chaos ? core::PolicyChoice::TJ_GT  // full 3-level ladder
                            : core::PolicyChoice::TJ_SP;
  cfg.fault = core::FaultMode::Fallback;
  cfg.scheduler = mode;
  cfg.workers = 3;
  cfg.fault_plan = runtime::FaultPlan::chaos(seed);
  cfg.obs.enabled = !record_dir.empty();
  if (budget_chaos) {
    std::uint64_t s = seed * 0x2545f4914f6cdd1dULL + 1;
    cfg.record_trace = true;  // enables the recorded-trace deadlock check
    cfg.governor.enabled = true;
    cfg.governor.poll_ms = 1 + static_cast<std::uint32_t>(mix64(s) % 3);
    // Byte budget from "trips instantly" (256B) to "never trips" (1MB).
    cfg.governor.max_verifier_bytes = std::size_t{256} << (mix64(s) % 13);
    if (mix64(s) % 3 == 0) {
      cfg.governor.max_verifier_nodes = std::size_t{8} << (mix64(s) % 6);
    }
    if (mix64(s) % 3 == 0) {
      cfg.governor.max_wfg_edges = std::size_t{8} << (mix64(s) % 5);
    }
    cfg.governor.trip_polls = 1 + static_cast<std::uint32_t>(mix64(s) % 3);
    cfg.governor.cooldown_polls =
        1 + static_cast<std::uint32_t>(mix64(s) % 6);
    if (mix64(s) % 2 == 0) {
      cfg.governor.spawn_inline_watermark = 8 + (mix64(s) % 40);
    }
  }
  runtime::Runtime rt(cfg);

  constexpr int kFanout = 16;
  constexpr int kPromises = 6;
  // Budget chaos runs a few rounds so governor trips land mid-schedule, not
  // only after the interesting work is done.
  const int rounds = budget_chaos ? 3 : 1;
  unsigned futures_resolved = 0;
  unsigned promises_resolved = 0;
  rt.root([&] {
    for (int round = 0; round < rounds; ++round) {
      std::vector<runtime::Future<long>> fs;
      for (int i = 0; i < kFanout; ++i) {
        fs.push_back(runtime::async([i]() -> long {
          auto inner = runtime::async([i] { return static_cast<long>(i); });
          return inner.get() + 1;
        }));
      }
      std::vector<runtime::Promise<long>> ps;
      std::vector<runtime::Future<void>> owners;
      for (int i = 0; i < kPromises; ++i) {
        ps.push_back(runtime::make_promise<long>());
        owners.push_back(runtime::async_owning(
            ps.back(), [p = ps.back(), i] { p.fulfill(i); }));
      }
      for (auto& f : fs) {
        try {
          (void)f.get();
          ++futures_resolved;
        } catch (const runtime::TjError&) {
          ++futures_resolved;
        }
      }
      for (auto& p : ps) {
        try {
          (void)p.get();
          ++promises_resolved;
        } catch (const runtime::TjError&) {
          ++promises_resolved;
        }
      }
      for (auto& f : owners) {
        try {
          f.join();
        } catch (const runtime::TjError&) {
        }
      }
    }
  });

  char buf[160];
  std::string why;
  const unsigned want_futures = static_cast<unsigned>(kFanout * rounds);
  const unsigned want_promises = static_cast<unsigned>(kPromises * rounds);
  if (futures_resolved != want_futures || promises_resolved != want_promises) {
    std::snprintf(buf, sizeof buf, "lost results: futures %u/%u promises %u/%u",
                  futures_resolved, want_futures, promises_resolved,
                  want_promises);
    why = buf;
  }
  const core::GateStats s = rt.gate_stats();
  const runtime::FaultStats fi = rt.fault_stats();
  // Without a ladder every rejection is injected (the workload is TJ-valid);
  // a degrading ladder adds genuine cross-level rejections on top.
  if (why.empty() && (budget_chaos
                          ? s.policy_rejections < fi.join_rejections
                          : s.policy_rejections != fi.join_rejections)) {
    std::snprintf(buf, sizeof buf, "join rejections %llu %s injected %llu",
                  static_cast<unsigned long long>(s.policy_rejections),
                  budget_chaos ? "<" : "!=",
                  static_cast<unsigned long long>(fi.join_rejections));
    why = buf;
  }
  if (why.empty() &&
      s.policy_rejections + s.owp_rejections !=
          s.false_positives + s.owp_false_positives +
              (s.deadlocks_averted - s.deadlocks_averted_approved)) {
    std::snprintf(buf, sizeof buf,
                  "unreconciled rejections: %llu+%llu != %llu+%llu+(%llu-%llu)",
                  static_cast<unsigned long long>(s.policy_rejections),
                  static_cast<unsigned long long>(s.owp_rejections),
                  static_cast<unsigned long long>(s.false_positives),
                  static_cast<unsigned long long>(s.owp_false_positives),
                  static_cast<unsigned long long>(s.deadlocks_averted),
                  static_cast<unsigned long long>(s.deadlocks_averted_approved));
    why = buf;
  }
  if (why.empty() && budget_chaos &&
      trace::contains_deadlock(rt.recorded_trace())) {
    why = "budget-chaos run recorded a deadlocked trace";
  }
  if (!why.empty() && rt.recorder() != nullptr) {
    // Bridge the recorded run back into the offline notation so the failing
    // schedule can be replayed through trace_check / the offline judgments.
    const obs::RecordedRun run = obs::extract_run(rt.recorder()->drain());
    char name[96];
    std::snprintf(name, sizeof name, "fault-%llu-%s.trace",
                  static_cast<unsigned long long>(seed),
                  std::string(to_string(mode)).c_str());
    record_witness(record_dir, name,
                   obs::to_trace_text(run.trace, "chaos violation: " + why));
  }
  return why;
}

int run_fault_plan_sweep(std::uint64_t first_seed, std::uint64_t plans,
                         const std::string& record_dir, bool budget_chaos) {
  for (std::uint64_t i = 0; i < plans; ++i) {
    const std::uint64_t seed = first_seed + i;
    for (const runtime::SchedulerMode mode :
         {runtime::SchedulerMode::Cooperative,
          runtime::SchedulerMode::Blocking}) {
      const std::string why =
          check_fault_plan(seed, mode, record_dir, budget_chaos);
      if (!why.empty()) {
        std::fprintf(stderr,
                     "FAULT-PLAN VIOLATION seed=%llu scheduler=%s%s: %s\n",
                     static_cast<unsigned long long>(seed),
                     std::string(to_string(mode)).c_str(),
                     budget_chaos ? " budget-chaos" : "", why.c_str());
        return 1;
      }
    }
    if ((i + 1) % 16 == 0) {
      std::fprintf(stderr, "[chaos] %llu plans ok\n",
                   static_cast<unsigned long long>(i + 1));
    }
  }
  std::printf("fuzz_policies: %llu fault plans x 2 schedulers%s, "
              "all invariants held\n",
              static_cast<unsigned long long>(plans),
              budget_chaos ? " under randomized governor budgets" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  bool iterations_set = false;
  std::uint64_t fault_seed = 0;
  bool fault_mode = false;
  bool budget_chaos = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--iterations=")) {
      o.iterations = std::strtoull(v, nullptr, 10);
      iterations_set = true;
    } else if (const char* vf = val("--fault-seed=")) {
      fault_seed = std::strtoull(vf, nullptr, 10);
      fault_mode = true;
    } else if (const char* v2 = val("--tasks=")) {
      o.tasks = static_cast<std::uint32_t>(std::atoi(v2));
    } else if (const char* v3 = val("--joins=")) {
      o.joins = static_cast<std::uint32_t>(std::atoi(v3));
    } else if (const char* vp = val("--promises=")) {
      o.promises = static_cast<std::uint32_t>(std::atoi(vp));
    } else if (const char* vo = val("--ops=")) {
      o.ops = static_cast<std::uint32_t>(std::atoi(vo));
    } else if (const char* v4 = val("--seed=")) {
      o.seed = std::strtoull(v4, nullptr, 10);
    } else if (const char* vr = val("--record=")) {
      o.record_dir = vr;
    } else if (arg == "--budget-chaos") {
      budget_chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (budget_chaos && !fault_mode) {
    std::fprintf(stderr, "--budget-chaos requires --fault-seed=S\n");
    return 2;
  }
  if (fault_mode) {
    // Trace-fuzz iteration budgets are far too large for live runtime runs.
    return run_fault_plan_sweep(fault_seed, iterations_set ? o.iterations : 64,
                                o.record_dir, budget_chaos);
  }

  for (std::uint64_t i = 0; i < o.iterations; ++i) {
    const std::uint64_t seed = o.seed + i;
    // Alternate the five generators for coverage: three join-only shapes
    // plus adversarial and OWP-valid promise traces.
    const double bias = 0.1 * static_cast<double>(i % 11);
    Trace t;
    switch (i % 5) {
      case 0:
        t = trace::random_structural_trace(o.tasks, o.joins, seed, bias);
        break;
      case 1:
        t = trace::random_tj_valid_trace(o.tasks, o.joins, seed, bias);
        break;
      case 2:
        t = trace::random_kj_valid_trace(o.tasks, o.joins, seed, bias);
        break;
      case 3:
        t = trace::random_promise_trace(o.tasks, o.promises, o.ops, seed);
        break;
      default:
        t = trace::random_owp_valid_trace(o.tasks, o.promises, o.ops, seed);
        break;
    }
    const std::string why = check_all(t);
    if (!why.empty()) {
      // Shrink to the smallest trace that still shows a discrepancy.
      const Trace min = trace::minimize_trace(t, [](const Trace& c) {
        return !check_all(c).empty();
      });
      std::fprintf(stderr, "DISCREPANCY after %llu traces: %s\n",
                   static_cast<unsigned long long>(i), why.c_str());
      std::fprintf(stderr, "minimized witness: %s\n",
                   min.to_string().c_str());
      if (!o.record_dir.empty()) {
        char name[96];
        std::snprintf(name, sizeof name, "discrepancy-%llu.trace",
                      static_cast<unsigned long long>(seed));
        record_witness(o.record_dir, name,
                       obs::to_trace_text(t, "discrepancy: " + why));
        std::snprintf(name, sizeof name, "discrepancy-%llu-min.trace",
                      static_cast<unsigned long long>(seed));
        record_witness(o.record_dir, name,
                       obs::to_trace_text(min, "minimized witness: " + why));
        // Each rejecting policy's provenance witness for the minimized
        // trace, validated offline — WHY each verdict fell the way it did.
        std::snprintf(name, sizeof name, "discrepancy-%llu-witness.txt",
                      static_cast<unsigned long long>(seed));
        record_witness(o.record_dir, name, explain_rejections(min));
      }
      return 1;
    }
    if ((i + 1) % 1000 == 0) {
      std::fprintf(stderr, "[fuzz] %llu traces ok\n",
                   static_cast<unsigned long long>(i + 1));
    }
  }
  std::printf("fuzz_policies: %llu traces, no discrepancies\n",
              static_cast<unsigned long long>(o.iterations));
  return 0;
}
