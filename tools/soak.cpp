// Long-lived robustness soak: one Runtime per scheduler mode hosts a
// rotating mix of the six evaluation benchmarks plus a promise-dataflow
// stage for a wall-clock budget, under deliberately tight governor budgets
// (so the degradation ladder is exercised down to the WFG-only floor) and,
// optionally, deterministic fault-injection chaos (--fault-seed).
//
// Pass criteria, checked per mode and printed at the end:
//   * zero hangs            — the loop finishes and every stage settles; any
//                             watchdog-confirmed waits-for cycle fails the run
//   * zero lost results     — every app iteration reproduces the sequential
//                             reference value exactly, even fully degraded
//   * monotone degradation  — governor transitions only ever step the ladder
//                             down (GC enablement keeps the level)
//   * exact reconciliation  — policy_rejections + owp_rejections ==
//                             false_positives + owp_false_positives +
//                             deadlocks_averted
//   * bounded RSS           — peak resident set under --max-rss-mb
//
//   ./build/tools/soak --seconds=60 --fault-seed=7
//   ./build/tools/soak --seconds=10 --scheduler=cooperative   # CI smoke

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/crypt.hpp"
#include "apps/jacobi.hpp"
#include "apps/nqueens.hpp"
#include "apps/series.hpp"
#include "apps/smith_waterman.hpp"
#include "apps/strassen.hpp"
#include "harness/memory_sampler.hpp"
#include "runtime/api.hpp"
#include "runtime/introspect.hpp"

namespace rtj = tj::runtime;
namespace apps = tj::apps;

namespace {

struct Options {
  unsigned seconds = 30;
  std::uint64_t fault_seed = 0;          // 0 = no chaos
  std::string scheduler = "both";        // blocking | cooperative | both
  std::size_t max_rss_mb = 1024;
  std::size_t max_verifier_kb = 64;      // tight by design
  std::size_t inline_watermark = 256;
  bool expect_floor = true;              // tight budgets must reach WFG-only
  unsigned introspect_ms = 0;            // 0 = dump only on SIGUSR1
};

bool parse_arg(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_arg(argv[i], "--seconds", v)) {
      o.seconds = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--minutes", v)) {
      o.seconds =
          60 * static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--fault-seed", v)) {
      o.fault_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--scheduler", v)) {
      o.scheduler = v;
    } else if (parse_arg(argv[i], "--max-rss-mb", v)) {
      o.max_rss_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--max-verifier-kb", v)) {
      o.max_verifier_kb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--inline-watermark", v)) {
      o.inline_watermark = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--introspect-ms", v)) {
      o.introspect_ms =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--no-floor-check", v) ||
               std::strcmp(argv[i], "--no-floor-check") == 0) {
      o.expect_floor = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

/// Reference values, computed once (sequentially, outside any runtime).
struct Expected {
  double series_checksum;
  double jacobi_checksum;
  std::uint64_t nqueens_solutions;
  int sw_best_score;
  double strassen_checksum;
};

Expected compute_expected() {
  Expected e{};
  {
    const auto p = apps::SeriesParams::tiny();
    double sum = 0.0;
    for (std::size_t k = 0; k < p.coefficients; ++k) {
      const auto c = apps::series_coefficient(k, p.integration_steps);
      sum += c.a + c.b;
    }
    e.series_checksum = sum;
  }
  e.jacobi_checksum = apps::jacobi_reference(apps::JacobiParams::tiny());
  e.nqueens_solutions =
      apps::nqueens_reference(apps::NQueensParams::tiny().board);
  e.sw_best_score =
      apps::smith_waterman_reference(apps::SmithWatermanParams::tiny());
  {
    const auto p = apps::StrassenParams::tiny();
    const auto a = apps::Matrix::random(p.n, p.seed);
    const auto b = apps::Matrix::random(p.n, p.seed ^ 0xabcdef);
    e.strassen_checksum = apps::strassen_sequential(a, b, p.cutoff).checksum();
  }
  return e;
}

struct ModeResult {
  std::uint64_t iterations = 0;
  std::uint64_t lost_results = 0;
  std::uint64_t promise_ok = 0;
  std::uint64_t promise_recovered = 0;
  std::uint64_t watchdog_cycles = 0;
  std::size_t final_level = 0;
  std::size_t ladder_floor = 0;
  std::string history;
  bool monotone = true;
  bool reconciled = false;
  tj::core::GateStats stats;
};

bool close(double a, double b) {
  const double d = a > b ? a - b : b - a;
  const double m = a > 0 ? a : -a;
  return d <= 1e-9 * (m > 1.0 ? m : 1.0);
}

/// Cross-owned promise pair (the canonical OWP deadlock): one side faults
/// and recovers. Returns true iff both futures settled without a hang;
/// `recovered` is set when any stage took a fault-recovery path (expected
/// under chaos, and on the side whose await closes the obligation cycle).
bool promise_stage(bool& recovered) {
  // Atomic: both cross tasks may take the recovery path concurrently.
  auto flag = std::make_shared<std::atomic<bool>>(false);
  auto cross = [flag](rtj::Promise<int> mine, rtj::Promise<int> theirs) {
    try {
      const int got = theirs.get();
      mine.fulfill(got + 1);
      return got + 1;
    } catch (const rtj::TjError&) {
      flag->store(true, std::memory_order_relaxed);
      try {
        mine.fulfill(100);
      } catch (const rtj::TjError&) {
        // Injected fulfill failure: the promise is orphaned at task exit and
        // the sibling's await faults — still no hang.
      }
      return 100;
    }
  };
  rtj::Promise<int> p1 = rtj::make_promise<int>();
  rtj::Promise<int> p2 = rtj::make_promise<int>();
  rtj::Future<int> t1 = rtj::async_owning(p1, [=] { return cross(p1, p2); });
  rtj::Future<int> t2 = rtj::async_owning(p2, [=] { return cross(p2, p1); });
  int settled = 0;
  for (const auto& f : {t1, t2}) {
    try {
      (void)f.get();
      ++settled;
    } catch (const rtj::TjError&) {
      flag->store(true, std::memory_order_relaxed);
      ++settled;  // a faulted join still settled — only a hang is a failure
    }
  }
  recovered = flag->load(std::memory_order_relaxed);
  return settled == 2;
}

ModeResult run_mode(rtj::SchedulerMode mode, const Options& o,
                    const Expected& exp) {
  ModeResult r;
  rtj::Config cfg;
  cfg.policy = tj::core::PolicyChoice::TJ_GT;  // full 3-level ladder
  cfg.scheduler = mode;
  cfg.workers = 4;
  cfg.obs.enabled = true;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 2;
  cfg.governor.max_verifier_bytes = o.max_verifier_kb * 1024;
  cfg.governor.trip_polls = 3;
  cfg.governor.cooldown_polls = 8;
  cfg.governor.spawn_inline_watermark = o.inline_watermark;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 100;
  cfg.watchdog.stall_ms = 10'000;
  if (o.fault_seed != 0) {
    cfg.fault_plan = rtj::FaultPlan::chaos(o.fault_seed);
  }
  std::uint64_t cycles_seen = 0;
  cfg.watchdog.on_stall = [&cycles_seen](const rtj::StallReport& rep) {
    // A stall with an acyclic WFG is slowness (tiny machine, chaos delays);
    // a confirmed cycle is a real deadlock and fails the soak.
    cycles_seen += rep.cycles.size();
    std::fputs(rep.to_string().c_str(), stderr);
  };

  rtj::Runtime rt(cfg);
  // Live introspection: `kill -USR1 <pid>` dumps a runtime snapshot (WFG
  // edges, ladder level, governor state, recent witnesses, blocked waits) to
  // stderr; --introspect-ms additionally dumps on a fixed cadence.
  rtj::IntrospectionHook hook(rt);
  auto last_dump = std::chrono::steady_clock::now();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(o.seconds);
  rt.root([&] {
    std::uint64_t i = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (o.introspect_ms != 0 &&
          std::chrono::steady_clock::now() - last_dump >=
              std::chrono::milliseconds(o.introspect_ms)) {
        hook.request();
        last_dump = std::chrono::steady_clock::now();
      }
      // Each iteration is one request span (ids from 1, tenants cycling
      // over three lanes): tasks it spawns inherit the stamp, so the
      // recorded stream slices per-iteration in trace_dump / export_chrome.
      rtj::RequestScope span(i + 1, static_cast<std::uint8_t>(i % 3 + 1));
      bool ok = true;
      switch (i % 7) {
        case 0:
          ok = close(apps::run_series_nested(apps::SeriesParams::tiny())
                         .checksum,
                     exp.series_checksum);
          break;
        case 1:
          ok = apps::run_crypt_nested(apps::CryptParams::tiny()).roundtrip_ok;
          break;
        case 2:
          ok = close(apps::run_jacobi_nested(apps::JacobiParams::tiny())
                         .checksum,
                     exp.jacobi_checksum);
          break;
        case 3:
          ok = apps::run_nqueens_nested(apps::NQueensParams::tiny())
                   .solutions == exp.nqueens_solutions;
          break;
        case 4:
          ok = apps::run_smith_waterman_nested(
                   apps::SmithWatermanParams::tiny())
                   .best_score == exp.sw_best_score;
          break;
        case 5:
          ok = close(apps::run_strassen_nested(apps::StrassenParams::tiny())
                         .checksum,
                     exp.strassen_checksum);
          break;
        case 6: {
          bool recovered = false;
          ok = promise_stage(recovered);
          if (ok && !recovered) ++r.promise_ok;
          if (recovered) ++r.promise_recovered;
          break;
        }
      }
      if (!ok) ++r.lost_results;
      ++i;
    }
    r.iterations = i;
  });

  r.watchdog_cycles = cycles_seen;
  if (const rtj::ResourceGovernor* gov = rt.governor()) {
    r.final_level = gov->level();
    r.history = gov->history_string();
    std::size_t prev_to = 0;
    for (const auto& t : gov->transitions()) {
      if (t.to_level < t.from_level || t.from_level < prev_to) {
        r.monotone = false;  // stepped up, or skipped history — never sound
      }
      prev_to = t.to_level;
    }
  }
  if (auto* lad = dynamic_cast<tj::core::LadderVerifier*>(rt.verifier())) {
    r.ladder_floor = lad->level_count() - 1;
  }
  r.stats = rt.gate_stats();
  // Exact reconciliation: every rejection was either cleared by the
  // fallback or a genuinely averted deadlock; cycles caught on approved
  // edges (deadlocks_averted_approved) involve no rejection.
  r.reconciled =
      r.stats.policy_rejections + r.stats.owp_rejections ==
      r.stats.false_positives + r.stats.owp_false_positives +
          (r.stats.deadlocks_averted - r.stats.deadlocks_averted_approved);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  rtj::IntrospectionHook::install_signal_handler();
  std::printf("soak: %us per mode, fault-seed=%llu, verifier budget %zuKB, "
              "inline watermark %zu\n",
              o.seconds, static_cast<unsigned long long>(o.fault_seed),
              o.max_verifier_kb, o.inline_watermark);
  const Expected exp = compute_expected();

  std::vector<rtj::SchedulerMode> modes;
  if (o.scheduler == "both" || o.scheduler == "blocking") {
    modes.push_back(rtj::SchedulerMode::Blocking);
  }
  if (o.scheduler == "both" || o.scheduler == "cooperative") {
    modes.push_back(rtj::SchedulerMode::Cooperative);
  }
  if (modes.empty()) {
    std::fprintf(stderr, "unknown --scheduler=%s\n", o.scheduler.c_str());
    return 2;
  }

  tj::harness::MemorySampler rss(100);
  bool pass = true;
  for (const rtj::SchedulerMode mode : modes) {
    const ModeResult r = run_mode(mode, o, exp);
    const bool mode_ok =
        r.lost_results == 0 && r.watchdog_cycles == 0 && r.monotone &&
        r.reconciled && (!o.expect_floor || r.final_level == r.ladder_floor);
    pass = pass && mode_ok;
    std::printf(
        "[%s] %s: %llu iterations, %llu lost results, promise ok/recovered "
        "%llu/%llu, level %zu/%zu, monotone=%d, reconciled=%d, "
        "watchdog cycles %llu\n",
        mode_ok ? "PASS" : "FAIL", std::string(to_string(mode)).c_str(),
        static_cast<unsigned long long>(r.iterations),
        static_cast<unsigned long long>(r.lost_results),
        static_cast<unsigned long long>(r.promise_ok),
        static_cast<unsigned long long>(r.promise_recovered),
        r.final_level, r.ladder_floor, r.monotone ? 1 : 0,
        r.reconciled ? 1 : 0,
        static_cast<unsigned long long>(r.watchdog_cycles));
    if (!r.history.empty()) {
      std::printf("       degradation: %s\n", r.history.c_str());
    }
    if (!r.reconciled) {
      const auto& s = r.stats;
      std::printf("       stats: joins=%llu rej=%llu fp=%llu averted=%llu "
                  "awaits=%llu owp_rej=%llu owp_fp=%llu\n",
                  static_cast<unsigned long long>(s.joins_checked),
                  static_cast<unsigned long long>(s.policy_rejections),
                  static_cast<unsigned long long>(s.false_positives),
                  static_cast<unsigned long long>(s.deadlocks_averted),
                  static_cast<unsigned long long>(s.awaits_checked),
                  static_cast<unsigned long long>(s.owp_rejections),
                  static_cast<unsigned long long>(s.owp_false_positives));
    }
  }

  rss.stop();
  const std::size_t peak_mb = rss.peak_bytes() >> 20;
  const bool rss_ok = peak_mb <= o.max_rss_mb;
  std::printf("[%s] peak RSS %zuMB (budget %zuMB, avg %.0fMB over %llu "
              "samples)\n",
              rss_ok ? "PASS" : "FAIL", peak_mb, o.max_rss_mb,
              rss.average_bytes() / (1024.0 * 1024.0),
              static_cast<unsigned long long>(rss.samples()));
  pass = pass && rss_ok;

  std::printf("soak %s\n", pass ? "PASSED" : "FAILED");
  return pass ? 0 : 1;
}
