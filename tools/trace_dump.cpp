// trace_dump: run one benchmark app with the flight recorder enabled and
// export what it saw — a Chrome Trace / Perfetto timeline, the offline
// trace (Definition 3.1 notation, replayable through trace_check), the
// metrics registry, or the raw event stream.
//
//   $ trace_dump --app=series --size=tiny --trace=-   | trace_check -
//   $ trace_dump --app=nqueens --chrome=nqueens.json  # open in Perfetto
//   $ trace_dump --app=jacobi --metrics --events
//
// Exit code: 0 on success, 1 if the app self-check fails or events were
// dropped while an export needing a complete stream (--trace) was
// requested, 2 on bad usage.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/policy_ids.hpp"
#include "obs/contention.hpp"
#include "obs/export_chrome.hpp"
#include "obs/replay_bridge.hpp"
#include "runtime/api.hpp"
#include "runtime/runtime.hpp"

namespace {

struct Options {
  std::string app = "series";
  tj::apps::AppSize size = tj::apps::AppSize::Tiny;
  tj::core::PolicyChoice policy = tj::core::PolicyChoice::TJ_SP;
  tj::runtime::SchedulerMode scheduler =
      tj::runtime::SchedulerMode::Cooperative;
  unsigned workers = 0;
  std::size_t buffer = std::size_t{1} << 16;
  std::string chrome_path;  ///< --chrome=<file>: Chrome Trace JSON
  std::string trace_path;   ///< --trace=<file|->: offline trace text
  bool print_metrics = false;
  bool print_events = false;
  unsigned requests = 0;    ///< --requests=N: run app N times, each a span
  long tenant = -1;         ///< --tenant=<idx>: event filter (see below)
  long long request = -1;   ///< --request=<id>: event filter
};

int usage(std::ostream& os) {
  os << "usage: trace_dump --app=<name> [options]\n"
        "  --app=<name>          benchmark app (see --list)\n"
        "  --size=tiny|small|medium|large   problem size (default tiny)\n"
        "  --policy=<p>          TJ-GT|TJ-JP|TJ-SP|KJ-VC|KJ-SS|cycle-only|"
        "none (default TJ-SP)\n"
        "  --scheduler=cooperative|blocking (default cooperative)\n"
        "  --workers=N           worker threads (default hardware)\n"
        "  --buffer=N            per-thread event capacity (default 65536)\n"
        "  --chrome=<file>       write Chrome Trace / Perfetto JSON\n"
        "  --trace=<file|->      write the offline trace (trace_check "
        "syntax)\n"
        "  --metrics             print the metrics registry, lock-contention\n"
        "                        histograms, and worker-state shares\n"
        "  --events              print every recorded event\n"
        "  --requests=N          run the app N times, each under its own\n"
        "                        request span (ids 1..N, alternating tenants)\n"
        "  --tenant=<idx>        keep only events stamped with this tenant\n"
        "                        index (affects --events and --chrome)\n"
        "  --request=<id>        keep only events stamped with this request id\n"
        "  --list                list available apps and exit\n";
  return 2;
}

bool parse_policy(const std::string& s, tj::core::PolicyChoice& out) {
  using tj::core::PolicyChoice;
  for (PolicyChoice p :
       {PolicyChoice::None, PolicyChoice::TJ_GT, PolicyChoice::TJ_JP,
        PolicyChoice::TJ_SP, PolicyChoice::KJ_VC, PolicyChoice::KJ_SS,
        PolicyChoice::CycleOnly}) {
    if (s == tj::core::to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

bool parse_size(const std::string& s, tj::apps::AppSize& out) {
  using tj::apps::AppSize;
  for (AppSize z :
       {AppSize::Tiny, AppSize::Small, AppSize::Medium, AppSize::Large}) {
    if (s == tj::apps::to_string(z)) {
      out = z;
      return true;
    }
  }
  return false;
}

bool write_file(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "trace_dump: cannot open " << path << " for writing\n";
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout), 0;
    if (arg == "--list") {
      for (const tj::apps::AppInfo& a : tj::apps::all_apps()) {
        std::cout << a.name << (a.extra ? " (extra)" : "") << " — "
                  << a.description << "\n";
      }
      return 0;
    }
    if (arg == "--metrics") {
      opt.print_metrics = true;
    } else if (arg == "--events") {
      opt.print_events = true;
    } else if (const char* v = val("--app=")) {
      opt.app = v;
    } else if (const char* v = val("--size=")) {
      if (!parse_size(v, opt.size)) {
        std::cerr << "trace_dump: unknown size '" << v << "'\n";
        return 2;
      }
    } else if (const char* v = val("--policy=")) {
      if (!parse_policy(v, opt.policy)) {
        std::cerr << "trace_dump: unknown policy '" << v << "'\n";
        return 2;
      }
    } else if (const char* v = val("--scheduler=")) {
      const std::string s = v;
      if (s == "cooperative") {
        opt.scheduler = tj::runtime::SchedulerMode::Cooperative;
      } else if (s == "blocking") {
        opt.scheduler = tj::runtime::SchedulerMode::Blocking;
      } else {
        std::cerr << "trace_dump: unknown scheduler '" << s << "'\n";
        return 2;
      }
    } else if (const char* v = val("--workers=")) {
      opt.workers = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = val("--buffer=")) {
      opt.buffer = static_cast<std::size_t>(std::stoull(v));
    } else if (const char* v = val("--chrome=")) {
      opt.chrome_path = v;
    } else if (const char* v = val("--trace=")) {
      opt.trace_path = v;
    } else if (const char* v = val("--requests=")) {
      opt.requests = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = val("--tenant=")) {
      opt.tenant = std::stol(v);
    } else if (const char* v = val("--request=")) {
      opt.request = std::stoll(v);
    } else {
      std::cerr << "trace_dump: unknown flag " << arg << "\n";
      return usage(std::cerr);
    }
  }

  const tj::apps::AppInfo* app = tj::apps::find_app(opt.app);
  if (app == nullptr) {
    std::cerr << "trace_dump: unknown app '" << opt.app
              << "' (try --list)\n";
    return 2;
  }

  tj::runtime::Config cfg;
  cfg.policy = opt.policy;
  cfg.scheduler = opt.scheduler;
  cfg.workers = opt.workers;
  cfg.obs.enabled = true;
  cfg.obs.buffer_capacity = opt.buffer;

  tj::apps::AppOutcome outcome;
  std::vector<tj::obs::Event> events;
  std::uint64_t dropped = 0;
  std::size_t threads = 0;
  std::string metrics_text;
  std::string contention_text;
  std::string workers_text;
  if (opt.requests > 0 && !opt.trace_path.empty()) {
    // Each request is a separate runtime instance; the concatenated stream
    // has N roots and would not bridge into one replayable trace.
    std::cerr << "trace_dump: --requests and --trace are incompatible\n";
    return 2;
  }
  // Each request span runs on its own runtime (a runtime hosts exactly one
  // root task); streams are concatenated with rebased sequence numbers. Ids
  // are 1..N with tenants alternating 0/1, so a single dump exercises
  // several Chrome lanes.
  const unsigned runs = std::max(1u, opt.requests);
  for (unsigned i = 0; i < runs; ++i) {
    tj::runtime::Runtime rt(cfg);
    std::optional<tj::runtime::RequestScope> span;
    if (opt.requests > 0) {
      span.emplace(i + 1, static_cast<std::uint8_t>(i % 2 + 1));
    }
    tj::apps::AppOutcome one = app->run(rt, opt.size);
    if (i == 0 || !one.valid) outcome = one;
    // The runtime quiesces between top-level calls, so the drain below sees
    // the complete stream; destruction would discard it.
    tj::obs::FlightRecorder* rec = rt.recorder();
    std::vector<tj::obs::Event> part = rec->drain();
    const std::uint64_t base =
        events.empty() ? 0 : events.back().seq + 1;
    events.reserve(events.size() + part.size());
    for (tj::obs::Event e : part) {
      e.seq += base;
      events.push_back(e);
    }
    dropped += rec->events_dropped();
    threads = std::max(threads, rec->thread_count());
    metrics_text = rec->metrics().to_string();
    // Lock + worker-state profiles ride along with --metrics. The worker
    // board dies with the runtime, so read it here; the contention registry
    // is process-cumulative, so the last read covers every run.
    contention_text = tj::obs::ContentionRegistry::instance().to_string();
    workers_text = rt.scheduler().worker_states().to_string();
  }

  // Summary goes to stderr so `--trace=- | trace_check -` stays clean.
  std::cerr << "trace_dump: " << app->name << "/" << tj::apps::to_string(opt.size)
            << " policy=" << tj::core::to_string(opt.policy)
            << " scheduler=" << tj::runtime::to_string(opt.scheduler)
            << ": " << events.size() << " events from " << threads
            << " thread(s), " << dropped << " dropped; app "
            << (outcome.valid ? "valid" : "INVALID") << " (" << outcome.detail
            << ")\n";

  // Request/tenant slicing applies to the human-facing views (--events,
  // --chrome); the offline-trace bridge below always gets the full stream,
  // since a sliced trace would not replay.
  std::vector<tj::obs::Event> view = events;
  if (opt.tenant >= 0 || opt.request >= 0) {
    const bool annotated =
        std::any_of(events.begin(), events.end(),
                    [](const tj::obs::Event& e) { return e.request != 0; });
    if (!annotated) {
      std::cerr << "trace_dump: stream carries no request annotations — "
                   "recorded without request spans (pre-upgrade stream or no "
                   "RequestScope installed; try --requests=N), so "
                   "--tenant/--request cannot slice it\n";
      return 1;
    }
    const auto keep = [&](const tj::obs::Event& e) {
      // CLI takes the tenant *index*; events store index+1 (0 = none).
      if (opt.tenant >= 0 &&
          e.tenant != static_cast<std::uint8_t>(opt.tenant + 1)) {
        return false;
      }
      if (opt.request >= 0 &&
          e.request != static_cast<std::uint64_t>(opt.request)) {
        return false;
      }
      return true;
    };
    view.erase(std::remove_if(view.begin(), view.end(),
                              [&](const tj::obs::Event& e) { return !keep(e); }),
               view.end());
    std::cerr << "trace_dump: filter kept " << view.size() << "/"
              << events.size() << " events\n";
  }

  if (opt.print_events) {
    for (const tj::obs::Event& e : view) {
      std::cout << tj::obs::to_string(e) << "\n";
    }
  }
  if (opt.print_metrics) {
    std::cout << metrics_text;
    std::cout << contention_text;
    std::cout << workers_text;
  }

  if (!opt.chrome_path.empty() &&
      !write_file(opt.chrome_path, tj::obs::to_chrome_json(view))) {
    return 2;
  }

  if (!opt.trace_path.empty()) {
    if (dropped != 0) {
      // A trace with holes parses but lies; refuse rather than mislead the
      // offline checker.
      std::cerr << "trace_dump: refusing to bridge an incomplete stream ("
                << dropped << " events dropped; raise --buffer)\n";
      return 1;
    }
    const tj::obs::RecordedRun run = tj::obs::extract_run(events);
    std::ostringstream header;
    header << "recorded live run: app=" << app->name
           << " size=" << tj::apps::to_string(opt.size)
           << " policy=" << tj::core::to_string(opt.policy)
           << " scheduler=" << tj::runtime::to_string(opt.scheduler)
           << " events=" << events.size() << " verdicts="
           << run.verdicts.size();
    if (!write_file(opt.trace_path,
                    tj::obs::to_trace_text(run.trace, header.str()))) {
      return 2;
    }
    if (run.skipped_events != 0) {
      std::cerr << "trace_dump: " << run.skipped_events
                << " structural event(s) skipped during bridging\n";
      return 1;
    }
  }

  return outcome.valid ? 0 : 1;
}
