// tj_top: a live top-style terminal dashboard over the telemetry JSONL
// stream a TelemetrySink writes (tools/loadgen --telemetry=FILE, or any
// service embedding the sink). Plain ANSI — clear-screen + a little color —
// no curses dependency. Each refresh re-reads the file's new lines, keeps a
// rolling window of samples, and renders gate stats, the degradation
// ladder, per-tenant admission ledgers, every histogram's p50/p99/p999, and
// ASCII sparklines of the request-latency tail and per-tick throughput.
//
//   ./build/tools/tj_top /tmp/tj-telemetry.jsonl            # follow live
//   ./build/tools/tj_top --once /tmp/tj-telemetry.jsonl    # one frame
//   ./build/tools/tj_top --selftest                         # CI smoke
//
// When the stream holds several schedulers' samples (loadgen runs one
// runtime per mode into one file), the dashboard follows the most recent
// scheduler's series so sparklines never mix modes.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/slo.hpp"

namespace slo = tj::obs::slo;

namespace {

struct Options {
  std::string file;
  bool once = false;
  bool selftest = false;
  bool color = true;
  unsigned interval_ms = 500;
  unsigned frames = 0;  // 0 = until interrupted
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      o.once = true;
    } else if (a == "--selftest") {
      o.selftest = true;
    } else if (a == "--no-color") {
      o.color = false;
    } else if (a.rfind("--interval-ms=", 0) == 0) {
      o.interval_ms = static_cast<unsigned>(
          std::strtoul(a.c_str() + 14, nullptr, 10));
    } else if (a.rfind("--frames=", 0) == 0) {
      o.frames = static_cast<unsigned>(
          std::strtoul(a.c_str() + 9, nullptr, 10));
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tj_top: unknown flag %s\n", a.c_str());
      std::exit(2);
    } else {
      o.file = a;
    }
  }
  if (!o.selftest && o.file.empty()) {
    std::fprintf(stderr,
                 "usage: tj_top [--once] [--frames=N] [--interval-ms=N] "
                 "[--no-color] TELEMETRY.jsonl\n");
    std::exit(2);
  }
  return o;
}

double num_at(const slo::Json& s, const char* path) {
  const slo::Json* v = s.at_path(path);
  return v != nullptr && v->is_number() ? v->number() : 0.0;
}

std::string str_at(const slo::Json& s, const char* path) {
  const slo::Json* v = s.at_path(path);
  return v != nullptr ? v->str() : std::string{};
}

bool truthy_at(const slo::Json& s, const char* path) {
  const slo::Json* v = s.at_path(path);
  if (v == nullptr) return false;
  if (v->kind() == slo::Json::Kind::Bool) return v->boolean();
  return v->is_number() && v->number() != 0;
}

std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e7) {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
  } else if (ns >= 1e4) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

/// ASCII sparkline (10 levels, space = zero) over the given series, scaled
/// to its own max — shape over absolute value, like any top-style gauge.
std::string sparkline(const std::vector<double>& xs, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  const std::size_t n = std::min(xs.size(), width);
  if (n == 0) return "";
  double mx = 0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) {
    mx = std::max(mx, xs[i]);
  }
  std::string out;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) {
    const double f = mx > 0 ? xs[i] / mx : 0.0;
    const int lvl = std::min(9, static_cast<int>(f * 9.0 + 0.5));
    out.push_back(kLevels[lvl]);
  }
  return out;
}

struct Palette {
  const char* bold = "";
  const char* dim = "";
  const char* red = "";
  const char* yellow = "";
  const char* green = "";
  const char* reset = "";
};

Palette palette(bool color) {
  Palette p;
  if (color) {
    p.bold = "\x1b[1m";
    p.dim = "\x1b[2m";
    p.red = "\x1b[31m";
    p.yellow = "\x1b[33m";
    p.green = "\x1b[32m";
    p.reset = "\x1b[0m";
  }
  return p;
}

/// Renders one frame from the rolling same-scheduler sample window.
std::string render(const std::vector<slo::Json>& win, const Palette& c) {
  std::ostringstream os;
  const slo::Json& s = win.back();

  const std::string sched = str_at(s, "scheduler");
  os << c.bold << "tj_top" << c.reset << "  t=" << num_at(s, "t_ms") << "ms"
     << "  samples=" << win.size();
  if (!sched.empty()) os << "  scheduler=" << sched;
  os << "\n";

  const double level = num_at(s, "ladder_level");
  const double levels = num_at(s, "ladder_levels");
  os << "policy " << c.bold << str_at(s, "active_policy") << c.reset
     << " (configured " << str_at(s, "configured_policy") << ")"
     << "  ladder " << (level > 0 ? c.yellow : c.green) << level << "/"
     << (levels > 0 ? levels - 1 : 0) << c.reset
     << "  live_tasks " << num_at(s, "live_tasks")
     << "  pressure " << (truthy_at(s, "governor.pressure") ? "YES" : "no")
     << "  watchdog stalls=" << num_at(s, "watchdog_stalls")
     << " cycles=" << num_at(s, "watchdog_cycles") << "\n";

  os << "gate   joins=" << num_at(s, "gate.joins_checked")
     << " rejections=" << num_at(s, "gate.policy_rejections")
     << " averted=" << num_at(s, "gate.deadlocks_averted")
     << " scans=" << num_at(s, "gate.cycle_checks")
     << " awaits=" << num_at(s, "gate.awaits_checked") << "\n";
  os << "front  checked=" << num_at(s, "gate.requests_checked")
     << " admitted=" << num_at(s, "gate.requests_admitted") << " shed="
     << (num_at(s, "gate.requests_shed") > 0 ? c.red : c.green)
     << num_at(s, "gate.requests_shed") << c.reset
     << "  obs events=" << num_at(s, "obs.events")
     << " dropped=" << num_at(s, "obs.dropped") << "\n";

  if (const slo::Json* tenants = s.find("tenants");
      tenants != nullptr && tenants->is_array() && !tenants->array().empty()) {
    os << c.dim << "tenant       in_flight   admitted       shed   released"
       << c.reset << "\n";
    for (const slo::Json& t : tenants->array()) {
      char line[128];
      std::snprintf(line, sizeof line, "  %-10s %9.0f  %9.0f  %9.0f  %9.0f",
                    str_at(t, "name").c_str(), num_at(t, "in_flight"),
                    num_at(t, "admitted"), num_at(t, "shed"),
                    num_at(t, "released"));
      os << line;
      if (truthy_at(t, "in_cooldown")) os << "  " << c.red << "COOLDOWN"
                                            << c.reset;
      os << "\n";
    }
  }

  if (const slo::Json* hist = s.find("hist");
      hist != nullptr && hist->is_object()) {
    os << c.dim
       << "histogram                     count        p50        p99       "
          "p999        max"
       << c.reset << "\n";
    for (const auto& [name, h] : hist->members()) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %-26s %9.0f  %9s  %9s  %9s  %9s", name.c_str(),
                    num_at(h, "count"), fmt_ns(num_at(h, "p50_ns")).c_str(),
                    fmt_ns(num_at(h, "p99_ns")).c_str(),
                    fmt_ns(num_at(h, "p999_ns")).c_str(),
                    fmt_ns(num_at(h, "max_ns")).c_str());
      os << line << "\n";
    }
  }

  // Lock panel: the contention observatory's per-site registry, hottest
  // sites first (by p99 wait, the tail a blocked worker actually feels).
  if (const slo::Json* sites = s.at_path("contention.sites");
      sites != nullptr && sites->is_array() && !sites->array().empty()) {
    std::vector<const slo::Json*> hot;
    for (const slo::Json& x : sites->array()) hot.push_back(&x);
    std::sort(hot.begin(), hot.end(),
              [](const slo::Json* a, const slo::Json* b) {
                return num_at(*a, "wait.p99_ns") > num_at(*b, "wait.p99_ns");
              });
    os << c.dim
       << "lock site              acquis  contended   share   wait_p99  "
          "wait_max  long_holds"
       << c.reset << "\n";
    constexpr std::size_t kTopSites = 8;
    for (std::size_t i = 0; i < std::min(hot.size(), kTopSites); ++i) {
      const slo::Json& site = *hot[i];
      const double acq = num_at(site, "acquisitions");
      const double con = num_at(site, "contended");
      const double share = acq > 0 ? con / acq : 0.0;
      char line[192];
      std::snprintf(line, sizeof line,
                    "  %-20s %8.0f  %9.0f  %s%5.1f%%%s  %9s %9s  %10.0f",
                    str_at(site, "site").c_str(), acq, con,
                    share > 0.25 ? c.red : (share > 0.05 ? c.yellow : ""),
                    100.0 * share, c.reset,
                    fmt_ns(num_at(site, "wait.p99_ns")).c_str(),
                    fmt_ns(num_at(site, "wait.max_ns")).c_str(),
                    num_at(site, "hold.count"));
      os << line << "\n";
    }
  }

  // Worker-state strip: cumulative time shares rendered as a proportional
  // bar (i=idle s=stealing R=running j=blocked-join l=blocked-lock), plus
  // the instantaneous census.
  if (const slo::Json* w = s.find("workers");
      w != nullptr && w->is_object() && num_at(*w, "count") > 0) {
    static const char* kStates[] = {"idle", "stealing", "running",
                                    "blocked_join", "blocked_lock"};
    static const char kGlyph[] = {'i', 's', 'R', 'j', 'l'};
    double ns[5], total = 0;
    for (int i = 0; i < 5; ++i) {
      ns[i] = num_at(*w, (std::string(kStates[i]) + "_ns").c_str());
      total += ns[i];
    }
    constexpr std::size_t kBar = 40;
    std::string bar;
    for (int i = 0; i < 5 && total > 0; ++i) {
      bar.append(static_cast<std::size_t>(ns[i] / total * kBar + 0.5),
                 kGlyph[i]);
    }
    bar.resize(kBar, ' ');
    os << "workers " << num_at(*w, "count")
       << "  eff_par=" << num_at(*w, "effective_parallelism") << "  [" << bar
       << "]  now:";
    for (int i = 0; i < 5; ++i) {
      os << ' ' << kGlyph[i] << '='
         << num_at(*w, (std::string(kStates[i]) + "_now").c_str());
    }
    os << "\n";
  }

  // Sparklines over the window: the latency tail's evolution plus per-tick
  // completion rate (the request-latency histogram's count delta).
  std::vector<double> p99s, p999s, rate, lock;
  for (const slo::Json& w : win) {
    p99s.push_back(num_at(w, "hist.request_latency_ns.p99_ns"));
    p999s.push_back(num_at(w, "hist.request_latency_ns.p999_ns"));
    rate.push_back(num_at(w, "delta.request_latency_ns.count"));
    lock.push_back(num_at(w, "delta.lock_contended"));
  }
  constexpr std::size_t kWidth = 48;
  if (p99s.back() > 0 || win.size() > 1) {
    os << "p99  [" << sparkline(p99s, kWidth) << "] "
       << fmt_ns(p99s.back()) << "\n";
    os << "p999 [" << sparkline(p999s, kWidth) << "] "
       << fmt_ns(p999s.back()) << "\n";
    os << "rate [" << sparkline(rate, kWidth) << "] " << rate.back()
       << "/tick\n";
  }
  if (s.at_path("contention.sites") != nullptr && win.size() > 1) {
    os << "lock [" << sparkline(lock, kWidth) << "] " << lock.back()
       << " contended/tick\n";
  }
  return os.str();
}

/// Incremental JSONL decoder for a file a writer is still appending to.
/// A poll may observe a line the writer has only half flushed; getline()
/// would consume that fragment as a "complete" line, fail to parse it, and
/// then misparse its remainder on the next poll. feed() therefore only
/// consumes byte ranges terminated by '\n' and carries the unterminated
/// tail to the next poll; finish() (final frame / --once) flushes whatever
/// tail remains, since no more bytes are coming to complete it. Lines that
/// still fail to parse are counted, never fatal — one torn write must not
/// take the dashboard down.
struct LineFeeder {
  std::vector<slo::Json> samples;
  std::uint64_t malformed = 0;
  std::string carry;

  void feed(std::string_view chunk) {
    carry.append(chunk.data(), chunk.size());
    std::size_t start = 0;
    for (std::size_t nl = carry.find('\n', start); nl != std::string::npos;
         nl = carry.find('\n', start)) {
      take_line(std::string_view(carry).substr(start, nl - start));
      start = nl + 1;
    }
    carry.erase(0, start);
  }

  void finish() {
    if (carry.empty()) return;
    take_line(carry);
    carry.clear();
  }

 private:
  void take_line(std::string_view line) {
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) return;
    try {
      samples.push_back(slo::parse_json(std::string(line)));
    } catch (const std::exception&) {
      ++malformed;
    }
  }
};

int run(const Options& o) {
  LineFeeder feed;
  std::vector<slo::Json>& samples = feed.samples;
  std::ifstream in;
  unsigned frame = 0;

  const auto read_new = [&] {
    if (!in.is_open()) {
      in.open(o.file);
      if (!in) return false;
    }
    in.clear();  // past EOF from the previous poll
    char buf[4096];
    while (in.read(buf, sizeof buf), in.gcount() > 0) {
      feed.feed(std::string_view(buf, static_cast<std::size_t>(in.gcount())));
    }
    return true;
  };

  const Palette c = palette(o.color);
  for (;;) {
    const bool opened = read_new();
    if (!opened && o.once) {
      std::fprintf(stderr, "tj_top: cannot open %s\n", o.file.c_str());
      return 1;
    }
    const bool last = o.once || (o.frames != 0 && frame + 1 >= o.frames);
    // No more polls will complete a carried tail — parse it as-is (a fully
    // written file may simply lack a trailing newline).
    if (last) feed.finish();
    if (!samples.empty()) {
      // Rolling window: the most recent scheduler's contiguous suffix.
      const std::string sched = str_at(samples.back(), "scheduler");
      std::vector<slo::Json> win;
      for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
        if (str_at(*it, "scheduler") != sched) break;
        win.insert(win.begin(), *it);
      }
      if (!o.once) std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(render(win, c).c_str(), stdout);
      if (feed.malformed > 0) {
        std::printf("%sskipped %llu malformed line(s)%s\n", c.dim,
                    static_cast<unsigned long long>(feed.malformed), c.reset);
      }
      std::fflush(stdout);
    } else if (o.once) {
      std::fprintf(stderr, "tj_top: no samples in %s\n", o.file.c_str());
      return 1;
    }
    ++frame;
    if (last) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
  }
}

int selftest() {
  // Two synthetic samples exercising every rendered section; any parse or
  // render failure exits nonzero, so CI catches schema drift between the
  // sink and the dashboard.
  const char* kLines[] = {
      R"({"t_ms":100,"seq":0,"scheduler":"cooperative","configured_policy":"TJ-GT","active_policy":"TJ-GT","ladder_level":0,"ladder_levels":3,"live_tasks":4,"watchdog_stalls":0,"watchdog_cycles":0,"gate":{"joins_checked":10,"policy_rejections":1,"deadlocks_averted":0,"cycle_checks":2,"awaits_checked":0,"requests_checked":5,"requests_admitted":5,"requests_shed":0},"obs":{"events":100,"dropped":0},"governor":{"attached":true,"pressure":false},"tenants":[{"name":"gold","in_flight":1,"admitted":3,"shed":0,"released":2,"in_cooldown":false}],"hist":{"request_latency_ns":{"count":3,"sum_ns":300,"p50_ns":1000,"p90_ns":2000,"p99_ns":4000,"p999_ns":8000,"max_ns":9000}},"contention":{"enabled":true,"sites":[{"site":"sched.queue","uncontended":90,"contended":10,"acquisitions":100,"wait":{"count":10,"sum_ns":5000,"p50_ns":300,"p99_ns":900,"max_ns":1200},"hold":{"count":1,"sum_ns":200000,"p99_ns":200000,"max_ns":200000}},{"site":"wfg.graph","uncontended":50,"contended":0,"acquisitions":50,"wait":{"count":0,"sum_ns":0,"p50_ns":0,"p99_ns":0,"max_ns":0},"hold":{"count":0,"sum_ns":0,"p99_ns":0,"max_ns":0}}]},"workers":{"count":4,"transitions":12,"effective_parallelism":1.5,"idle_now":1,"idle_ns":100,"stealing_now":0,"stealing_ns":10,"running_now":2,"running_ns":300,"blocked_join_now":1,"blocked_join_ns":50,"blocked_lock_now":0,"blocked_lock_ns":40},"delta":{"request_latency_ns":{"count":3,"sum_ns":300},"lock_acquisitions":100,"lock_contended":10}})",
      R"({"t_ms":200,"seq":1,"scheduler":"cooperative","configured_policy":"TJ-GT","active_policy":"TJ-SP","ladder_level":1,"ladder_levels":3,"live_tasks":7,"watchdog_stalls":0,"watchdog_cycles":0,"gate":{"joins_checked":30,"policy_rejections":2,"deadlocks_averted":0,"cycle_checks":4,"awaits_checked":0,"requests_checked":9,"requests_admitted":8,"requests_shed":1},"obs":{"events":260,"dropped":0},"governor":{"attached":true,"pressure":true},"tenants":[{"name":"gold","in_flight":0,"admitted":5,"shed":1,"released":5,"in_cooldown":true}],"hist":{"request_latency_ns":{"count":8,"sum_ns":900,"p50_ns":1100,"p90_ns":2500,"p99_ns":5000,"p999_ns":16000,"max_ns":17000}},"contention":{"enabled":true,"sites":[{"site":"sched.queue","uncontended":150,"contended":50,"acquisitions":200,"wait":{"count":50,"sum_ns":90000,"p50_ns":700,"p99_ns":2100,"max_ns":4000},"hold":{"count":2,"sum_ns":400000,"p99_ns":300000,"max_ns":300000}},{"site":"wfg.graph","uncontended":80,"contended":1,"acquisitions":81,"wait":{"count":1,"sum_ns":500,"p50_ns":500,"p99_ns":500,"max_ns":500},"hold":{"count":0,"sum_ns":0,"p99_ns":0,"max_ns":0}}]},"workers":{"count":4,"transitions":40,"effective_parallelism":2.2,"idle_now":0,"idle_ns":150,"stealing_now":1,"stealing_ns":30,"running_now":3,"running_ns":800,"blocked_join_now":0,"blocked_join_ns":90,"blocked_lock_now":0,"blocked_lock_ns":60},"delta":{"request_latency_ns":{"count":5,"sum_ns":600},"lock_acquisitions":100,"lock_contended":40}})",
  };
  std::vector<slo::Json> win;
  for (const char* l : kLines) win.push_back(slo::parse_json(l));
  const std::string frame = render(win, palette(false));
  std::fputs(frame.c_str(), stdout);
  bool ok = frame.find("TJ-SP") != std::string::npos &&
            frame.find("gold") != std::string::npos &&
            frame.find("p999") != std::string::npos &&
            frame.find("COOLDOWN") != std::string::npos &&
            // Contention observatory panels: both lock sites render (the
            // hotter one first), the worker strip carries the census, and
            // the contended-per-tick sparkline picks up the delta.
            frame.find("sched.queue") != std::string::npos &&
            frame.find("wfg.graph") != std::string::npos &&
            frame.find("sched.queue") < frame.find("wfg.graph") &&
            frame.find("eff_par=2.2") != std::string::npos &&
            frame.find("40 contended/tick") != std::string::npos;

  // The follow-mode decoder: a line torn across two polls reassembles, a
  // malformed line is counted and skipped (never fatal), and finish()
  // flushes an unterminated-but-complete tail.
  LineFeeder f;
  const std::string l0 = std::string(kLines[0]) + "\n";
  f.feed(std::string_view(l0).substr(0, 40));  // torn mid-line
  ok = ok && f.samples.empty();                // fragment must NOT be consumed
  f.feed(std::string_view(l0).substr(40));     // completed on the next poll
  f.feed("{\"seq\": GARBAGE\n");               // malformed: counted, skipped
  f.feed("not json at all\n");
  f.feed(kLines[1]);  // complete line, but no trailing newline yet
  ok = ok && f.samples.size() == 1 && f.malformed == 2;
  f.finish();  // final frame: the tail is as complete as it will ever be
  ok = ok && f.samples.size() == 2 && f.malformed == 2 &&
       num_at(f.samples[1], "gate.joins_checked") == 30;

  std::puts(ok ? "tj_top selftest OK" : "tj_top selftest FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.selftest) return selftest();
  return run(o);
}
