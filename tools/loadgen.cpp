// Service-mode load generator: open-loop (Poisson) request traffic against
// one long-lived Runtime per scheduler mode, with per-tenant admission
// control at the front door, per-request deadlines, and optional chaos
// (deterministic fault injection + hostile governor budgets) under live
// traffic.
//
// Open-loop means arrivals are scheduled by the clock, not by completions:
// when the service falls behind, queueing delay shows up in request latency
// instead of silently throttling the generator. Each request is one of the
// six evaluation kernels or a promise-dataflow stage, submitted for one of
// three tenants (the "noisy" tenant gets half the traffic but the smallest
// budget — admission isolation is the point). A request's life:
//
//   arrival --(try_admit)--> admitted --> spawned --> joined by deadline
//        \-> shed --> retried with backoff (up to --retries) --> final shed
//                                          admitted-but-late --> timed out
//
// Every request ends in exactly one disposition, and the tool asserts the
// books balance exactly:
//   submitted == completed + shed + timed_out
//   gate.requests_checked == gate.requests_admitted + gate.requests_shed
//   per tenant: admitted == released (+ 0 in flight at drain)
//   policy reconciliation + monotone ladder downgrades, as in tools/soak.
//
// Latency (measured from the *scheduled* arrival, so it includes queueing
// and retry delay) is reported as p50/p99/p999 per tenant plus SLO
// attainment (fraction of submitted requests completed within deadline).
// --json emits one machine-readable JSON object per run.
//
//   ./build/tools/loadgen --seconds=30 --rate=40 --fault-seed=7 --hostile
//   ./build/tools/loadgen --seconds=5 --scheduler=cooperative --json
//
// `kill -USR1 <pid>` dumps a live runtime snapshot (including per-tenant
// admission state) to stderr, exactly as in tools/soak.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/crypt.hpp"
#include "apps/jacobi.hpp"
#include "apps/nqueens.hpp"
#include "apps/series.hpp"
#include "apps/smith_waterman.hpp"
#include "apps/strassen.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "runtime/api.hpp"
#include "runtime/backoff.hpp"
#include "runtime/introspect.hpp"

namespace rtj = tj::runtime;
namespace apps = tj::apps;

using Clock = std::chrono::steady_clock;

namespace {

/// SIGINT/SIGTERM request a graceful wind-down: arrivals stop, in-flight
/// requests drain, and the --json report (marked "interrupted": true) is
/// still emitted — an interrupted run must leave an artifact, not a corpse.
std::atomic<bool> g_stop{false};

extern "C" void on_interrupt(int) { g_stop.store(true); }

struct Options {
  unsigned seconds = 10;
  double rate = 30.0;            // mean arrivals per second (all tenants)
  unsigned deadline_ms = 400;    // per-request SLO deadline
  unsigned retries = 3;          // shed-retry budget per request
  std::uint64_t fault_seed = 0;  // 0 = no chaos
  std::uint64_t seed = 42;       // arrival/mix RNG
  std::string scheduler = "both";
  std::string policy = "tj-gt";  // tj-gt | tj-sp | cycle | async
  unsigned threads = 4;          // worker-pool size (recorded in the report)
  bool hostile = false;          // tight governor + shared-pressure budgets
  unsigned introspect_ms = 0;    // 0 = dump only on SIGUSR1
  bool json = false;
  std::string json_file;  // empty = stdout
  // Continuous telemetry + SLO gating (obs/telemetry.hpp, obs/slo.hpp).
  std::string telemetry_file;   // JSONL time series; "" = off
  std::string prom_file;        // Prometheus text dump; "" = off
  unsigned telemetry_ms = 100;  // sampling cadence
  std::string slo_rules;        // e.g. "p99_ms<250,shed_rate<=0.6"
};

bool parse_arg(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_arg(argv[i], "--seconds", v)) {
      o.seconds = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--rate", v)) {
      o.rate = std::strtod(v.c_str(), nullptr);
    } else if (parse_arg(argv[i], "--deadline-ms", v)) {
      o.deadline_ms =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--retries", v)) {
      o.retries = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--fault-seed", v)) {
      o.fault_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--seed", v)) {
      o.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parse_arg(argv[i], "--scheduler", v)) {
      o.scheduler = v;
    } else if (parse_arg(argv[i], "--policy", v)) {
      o.policy = v;
    } else if (parse_arg(argv[i], "--threads", v)) {
      o.threads = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--introspect-ms", v)) {
      o.introspect_ms =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--telemetry", v)) {
      o.telemetry_file = v;
    } else if (parse_arg(argv[i], "--prom", v)) {
      o.prom_file = v;
    } else if (parse_arg(argv[i], "--telemetry-ms", v)) {
      o.telemetry_ms =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (parse_arg(argv[i], "--slo", v)) {
      o.slo_rules = v;
    } else if (std::strcmp(argv[i], "--hostile") == 0) {
      o.hostile = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = true;
    } else if (parse_arg(argv[i], "--json", v)) {
      o.json = true;
      o.json_file = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (o.rate <= 0.0 || o.seconds == 0 || o.deadline_ms == 0) {
    std::fprintf(stderr, "loadgen: --rate, --seconds, --deadline-ms must be "
                         "positive\n");
    std::exit(2);
  }
  if (!o.slo_rules.empty() && o.telemetry_file.empty()) {
    std::fprintf(stderr, "loadgen: --slo requires --telemetry=FILE (rules "
                         "evaluate over the JSONL stream)\n");
    std::exit(2);
  }
  if (o.telemetry_ms == 0) o.telemetry_ms = 100;
  if (o.threads == 0) {
    std::fprintf(stderr, "loadgen: --threads must be positive\n");
    std::exit(2);
  }
  return o;
}

tj::core::PolicyChoice parse_policy(const std::string& p) {
  if (p == "tj-gt") return tj::core::PolicyChoice::TJ_GT;
  if (p == "tj-sp") return tj::core::PolicyChoice::TJ_SP;
  if (p == "cycle") return tj::core::PolicyChoice::CycleOnly;
  if (p == "async") return tj::core::PolicyChoice::Async;
  std::fprintf(stderr,
               "loadgen: unknown --policy=%s (tj-gt|tj-sp|cycle|async)\n",
               p.c_str());
  std::exit(2);
}

// ---- deterministic RNG (arrivals + request mix) ----

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed | 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  /// Uniform in (0, 1].
  double u01() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
  }
};

// ---- sequential reference values (as in tools/soak) ----

struct Expected {
  double series_checksum;
  double jacobi_checksum;
  std::uint64_t nqueens_solutions;
  int sw_best_score;
  double strassen_checksum;
};

Expected compute_expected() {
  Expected e{};
  {
    const auto p = apps::SeriesParams::tiny();
    double sum = 0.0;
    for (std::size_t k = 0; k < p.coefficients; ++k) {
      const auto c = apps::series_coefficient(k, p.integration_steps);
      sum += c.a + c.b;
    }
    e.series_checksum = sum;
  }
  e.jacobi_checksum = apps::jacobi_reference(apps::JacobiParams::tiny());
  e.nqueens_solutions =
      apps::nqueens_reference(apps::NQueensParams::tiny().board);
  e.sw_best_score =
      apps::smith_waterman_reference(apps::SmithWatermanParams::tiny());
  {
    const auto p = apps::StrassenParams::tiny();
    const auto a = apps::Matrix::random(p.n, p.seed);
    const auto b = apps::Matrix::random(p.n, p.seed ^ 0xabcdef);
    e.strassen_checksum = apps::strassen_sequential(a, b, p.cutoff).checksum();
  }
  return e;
}

bool close(double a, double b) {
  const double d = a > b ? a - b : b - a;
  const double m = a > 0 ? a : -a;
  return d <= 1e-9 * (m > 1.0 ? m : 1.0);
}

/// Cross-owned promise pair (as in tools/soak): one request type exercises
/// the OWP machinery; under chaos a side may fault and recover.
bool promise_stage(std::atomic<std::uint64_t>& recovered_count) {
  auto flag = std::make_shared<std::atomic<bool>>(false);
  auto cross = [flag](rtj::Promise<int> mine, rtj::Promise<int> theirs) {
    try {
      const int got = theirs.get();
      mine.fulfill(got + 1);
      return got + 1;
    } catch (const rtj::TjError&) {
      flag->store(true, std::memory_order_relaxed);
      try {
        mine.fulfill(100);
      } catch (const rtj::TjError&) {
        // Injected fulfill failure: orphaned at exit, sibling faults — no
        // hang either way.
      }
      return 100;
    }
  };
  rtj::Promise<int> p1 = rtj::make_promise<int>();
  rtj::Promise<int> p2 = rtj::make_promise<int>();
  rtj::Future<int> t1 = rtj::async_owning(p1, [=] { return cross(p1, p2); });
  rtj::Future<int> t2 = rtj::async_owning(p2, [=] { return cross(p2, p1); });
  int settled = 0;
  for (const auto& f : {t1, t2}) {
    try {
      (void)f.get();
      ++settled;
    } catch (const rtj::TjError&) {
      flag->store(true, std::memory_order_relaxed);
      ++settled;  // faulted but settled — only a hang is a failure
    }
  }
  if (flag->load(std::memory_order_relaxed)) {
    recovered_count.fetch_add(1, std::memory_order_relaxed);
  }
  return settled == 2;
}

constexpr int kKinds = 7;

/// Runs one request kernel in the current task context; true iff the result
/// matches the sequential reference.
bool run_kernel(int kind, const Expected& exp,
                std::atomic<std::uint64_t>& promise_recovered) {
  switch (kind) {
    case 0:
      return close(apps::run_series_nested(apps::SeriesParams::tiny()).checksum,
                   exp.series_checksum);
    case 1:
      return apps::run_crypt_nested(apps::CryptParams::tiny()).roundtrip_ok;
    case 2:
      return close(apps::run_jacobi_nested(apps::JacobiParams::tiny()).checksum,
                   exp.jacobi_checksum);
    case 3:
      return apps::run_nqueens_nested(apps::NQueensParams::tiny()).solutions ==
             exp.nqueens_solutions;
    case 4:
      return apps::run_smith_waterman_nested(apps::SmithWatermanParams::tiny())
                 .best_score == exp.sw_best_score;
    case 5:
      return close(
          apps::run_strassen_nested(apps::StrassenParams::tiny()).checksum,
          exp.strassen_checksum);
    default:
      return promise_stage(promise_recovered);
  }
}

// ---- tenants ----

struct TenantSpec {
  rtj::TenantBudget budget;
  double weight;  // share of arrivals
};

/// The fixed three-tenant mix: the noisy tenant gets half the traffic but
/// the smallest in-flight budget, so overload sheds *its* requests while
/// gold/silver keep their latency.
std::vector<TenantSpec> make_tenants(const Options& o) {
  std::vector<TenantSpec> t(3);
  t[0].budget.name = "gold";
  t[0].budget.max_in_flight = 8;
  t[0].weight = 0.25;
  t[1].budget.name = "silver";
  t[1].budget.max_in_flight = 6;
  t[1].weight = 0.25;
  t[2].budget.name = "noisy";
  t[2].budget.max_in_flight = 3;
  t[2].budget.shed_cooldown_ms = 10;
  t[2].weight = 0.50;
  if (o.hostile) {
    // Shared-pressure budgets: the noisy tenant is also shed when the
    // runtime itself is saturated, before the governor must act.
    t[2].budget.max_live_tasks = 192;
    t[2].budget.max_verifier_bytes = 96 * 1024;
  }
  return t;
}

// ---- results ----

struct LatSummary {
  std::uint64_t count = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0, max_ms = 0, mean_ms = 0;
};

LatSummary summarize(const tj::obs::LatencyHistogram& h) {
  LatSummary s;
  const tj::obs::LatencyHistogram::Summary sum = h.summary();
  s.count = sum.count;
  if (s.count == 0) return s;
  s.p50_ms = static_cast<double>(sum.p50_ns) / 1e6;
  s.p99_ms = static_cast<double>(sum.p99_ns) / 1e6;
  s.p999_ms = static_cast<double>(sum.p999_ns) / 1e6;
  s.max_ms = static_cast<double>(sum.max_ns) / 1e6;
  s.mean_ms = static_cast<double>(sum.sum_ns) /
              static_cast<double>(sum.count) / 1e6;
  return s;
}

struct TenantResult {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   // settled (faulted-but-settled included)
  std::uint64_t shed = 0;        // final disposition after retries
  std::uint64_t timed_out = 0;   // admitted but deadline expired
  std::uint64_t faulted = 0;     // subset of completed
  std::uint64_t in_deadline = 0; // subset of completed: met the SLO
  std::uint64_t retries = 0;     // backoff retries scheduled
  std::uint64_t shed_attempts = 0;  // try_admit sheds (≥ `shed`)
  LatSummary lat;
  double slo() const {
    return submitted != 0
               ? static_cast<double>(in_deadline) /
                     static_cast<double>(submitted)
               : 1.0;
  }
};

struct ModeResult {
  std::string scheduler;
  double wall_s = 0;
  std::uint64_t submitted = 0, completed = 0, shed = 0, timed_out = 0;
  std::uint64_t faulted = 0, in_deadline = 0, retries = 0, lost = 0;
  std::uint64_t admit_attempts = 0;  // try_admit calls (arrivals + retries)
  std::uint64_t promise_recovered = 0;
  LatSummary lat;
  std::vector<TenantResult> tenants;
  bool conservation = false;
  bool reconciled = false;            // policy-rejection invariant (soak's)
  bool admission_reconciled = false;  // checked == admitted + shed, exactly
  bool admission_balanced = false;    // per tenant: admitted == released
  bool monotone = true;
  bool interrupted = false;  // SIGINT/SIGTERM wound this mode down early
  std::uint64_t watchdog_cycles = 0;
  std::size_t final_level = 0, ladder_floor = 0;
  std::string history;
  tj::core::GateStats stats;
  // Telemetry stream health (trivially true when --telemetry is off): the
  // final JSONL sample's gate/admission counters must equal the end-of-run
  // gate_stats() exactly — the time series ends on the truth.
  bool telemetry_reconciled = true;
  std::uint64_t telemetry_samples = 0;
  // Contention-registry health (trivially true when --telemetry is off):
  // every lock site in the final sample must balance exactly —
  // acquisitions == contended + uncontended, and the wait histogram never
  // counted more events than the contended counter admits. A profiled
  // mutex that drops or double-counts an acquisition fails the run.
  bool contention_reconciled = true;
  std::uint64_t contention_sites = 0;

  bool pass() const {
    return conservation && reconciled && admission_reconciled &&
           admission_balanced && monotone && watchdog_cycles == 0 &&
           lost == 0 && telemetry_reconciled && contention_reconciled;
  }
};

// ---- the dispatcher ----

/// One in-flight or shed-retrying request.
struct Request {
  std::uint64_t id = 0;  ///< request-span id (stamped into obs events)
  std::size_t tenant = 0;
  int kind = 0;
  Clock::time_point arrival{};   // scheduled arrival: the latency epoch
  Clock::time_point deadline{};  // arrival + deadline_ms
  Clock::time_point retry_at{};  // for the shed-retry queue
  unsigned retries_left = 0;
  rtj::Backoff backoff;
  rtj::Future<bool> fut;  // valid once admitted and spawned
};

void run_mode(rtj::SchedulerMode mode, const Options& o, const Expected& exp,
              const std::vector<TenantSpec>& tenants, ModeResult& r) {
  r.scheduler = std::string(to_string(mode));
  r.tenants.assign(tenants.size(), TenantResult{});
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    r.tenants[i].name = tenants[i].budget.name;
  }

  rtj::Config cfg;
  cfg.policy = parse_policy(o.policy);  // tj-gt = the full 3-level ladder
  cfg.scheduler = mode;
  cfg.workers = o.threads;
  cfg.obs.enabled = true;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 2;
  cfg.governor.spawn_inline_watermark = 256;
  if (o.hostile) {
    cfg.governor.max_verifier_bytes = 64 * 1024;
    cfg.governor.spawn_inline_watermark = 128;
  }
  cfg.governor.trip_polls = 3;
  cfg.governor.cooldown_polls = 8;
  for (const TenantSpec& t : tenants) {
    cfg.governor.tenants.push_back(t.budget);
  }
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 100;
  cfg.watchdog.stall_ms = 10'000;
  if (o.fault_seed != 0) {
    cfg.fault_plan = rtj::FaultPlan::chaos(o.fault_seed);
  }
  std::uint64_t cycles_seen = 0;
  cfg.watchdog.on_stall = [&cycles_seen](const rtj::StallReport& rep) {
    cycles_seen += rep.cycles.size();
    std::fputs(rep.to_string().c_str(), stderr);
  };

  rtj::Runtime rt(cfg);
  rtj::AdmissionController& adm = *rt.admission();
  rtj::IntrospectionHook hook(rt);
  auto last_dump = Clock::now();

  // Per-tenant + overall latency histograms (loadgen-owned; the runtime's
  // metrics registry keeps measuring joins underneath, independently).
  std::vector<tj::obs::LatencyHistogram> lat(tenants.size());
  tj::obs::LatencyHistogram lat_all;
  std::atomic<std::uint64_t> promise_recovered{0};

  // Continuous telemetry: the sink samples RuntimeSnapshot + histogram
  // summaries on its own thread while traffic runs; the request-latency
  // histograms are registered so the stream carries the user-visible tail,
  // not just verifier internals.
  tj::obs::TelemetryConfig tcfg;
  tcfg.jsonl_path = o.telemetry_file;
  tcfg.prometheus_path = o.prom_file;
  tcfg.cadence_ms = o.telemetry_ms;
  tcfg.scheduler_label = r.scheduler;
  tj::obs::TelemetrySink sink(rt, tcfg);
  sink.register_histogram("request_latency_ns", &lat_all);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    sink.register_histogram("request_latency_" + tenants[i].budget.name +
                                "_ns",
                            &lat[i]);
  }
  sink.start();

  Rng rng(o.seed ^ (mode == rtj::SchedulerMode::Cooperative ? 0xc0 : 0xb0));
  const auto start = Clock::now();
  const auto end = start + std::chrono::seconds(o.seconds);
  const auto deadline_len = std::chrono::milliseconds(o.deadline_ms);

  auto next_interval = [&] {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(rng.u01()) / o.rate));
  };
  auto pick_tenant = [&] {
    double x = rng.u01(), acc = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      acc += tenants[i].weight;
      if (x <= acc) return i;
    }
    return tenants.size() - 1;
  };

  rt.root([&] {
    std::uint64_t next_request_id = 1;  // 0 means "no request" in obs events
    std::vector<Request> in_flight;   // admission order: front = oldest
    std::vector<Request> retrying;    // shed, waiting out their backoff
    std::vector<rtj::Future<bool>> drain;  // timed out; joined at the end
    auto next_arrival = start + next_interval();

    auto spawn_request = [&](Request& q) {
      const int kind = q.kind;
      q.fut = rtj::async([kind, &exp, &promise_recovered] {
        return run_kernel(kind, exp, promise_recovered);
      });
    };
    // Settles a ready request: harvest the result, release the slot.
    auto finish = [&](Request& q) {
      TenantResult& t = r.tenants[q.tenant];
      bool ok = false;
      try {
        ok = q.fut.get();
      } catch (const std::exception&) {
        ++t.faulted;
        ok = true;  // faulted-but-settled: accounted, not lost
      }
      const auto now = Clock::now();
      ++t.completed;
      if (now <= q.deadline) ++t.in_deadline;
      if (!ok) ++r.lost;
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - q.arrival)
              .count());
      lat[q.tenant].record(ns);
      lat_all.record(ns);
      adm.release(q.tenant);
    };
    // Admission attempt; on admit the request is spawned and tracked, on
    // shed it is scheduled for a backoff retry (or finally shed). The
    // RequestScope brackets the front door: the AdmissionShed event and the
    // whole spawned task tree (transitively) carry this request's id and
    // tenant lane in every flight-recorder event.
    auto attempt = [&](Request&& q) {
      rtj::RequestScope span(q.id, static_cast<std::uint8_t>(q.tenant + 1));
      ++r.admit_attempts;
      const rtj::AdmissionController::Verdict v = adm.try_admit(q.tenant);
      if (v.admitted) {
        spawn_request(q);
        in_flight.push_back(std::move(q));
        return;
      }
      TenantResult& t = r.tenants[q.tenant];
      ++t.shed_attempts;
      if (q.retries_left == 0) {
        ++t.shed;
        return;
      }
      --q.retries_left;
      const auto retry_at = Clock::now() + q.backoff.next();
      if (retry_at > q.deadline) {
        ++t.shed;  // a retry that can't beat the deadline is a final shed
        return;
      }
      ++t.retries;
      q.retry_at = retry_at;
      retrying.push_back(std::move(q));
    };

    for (;;) {
      auto now = Clock::now();
      if (!r.interrupted && g_stop.load(std::memory_order_relaxed)) {
        // Graceful wind-down: no new arrivals, and the backoff queue takes
        // its terminal disposition NOW (final shed) so conservation stays
        // exact; in-flight requests drain through the normal reap path.
        r.interrupted = true;
        for (const Request& q : retrying) ++r.tenants[q.tenant].shed;
        retrying.clear();
      }
      if (o.introspect_ms != 0 &&
          now - last_dump >= std::chrono::milliseconds(o.introspect_ms)) {
        hook.request();
        last_dump = now;
      }

      // 1. Reap ready requests BEFORE expiring deadlines: a request that
      //    finished in time but is observed late still counts completed.
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->fut.ready()) {
          finish(*it);
          it = in_flight.erase(it);
        } else {
          ++it;
        }
      }
      // 2. Expire deadlines: withdraw (the task keeps running; its future
      //    moves to the drain list so it is still joined — timed-out work
      //    is never lost, just no longer awaited).
      now = Clock::now();
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (now >= it->deadline) {
          ++r.tenants[it->tenant].timed_out;
          adm.release(it->tenant);
          drain.push_back(std::move(it->fut));
          it = in_flight.erase(it);
        } else {
          ++it;
        }
      }
      // 3. Due shed-retries.
      for (auto it = retrying.begin(); it != retrying.end();) {
        if (now >= it->retry_at) {
          Request q = std::move(*it);
          it = retrying.erase(it);
          attempt(std::move(q));
        } else {
          ++it;
        }
      }
      // 4. Open-loop arrivals: every interval the clock has passed yields a
      //    request, whether or not the service kept up.
      while (!r.interrupted && next_arrival <= now && next_arrival < end) {
        Request q;
        q.id = next_request_id++;
        q.tenant = pick_tenant();
        q.kind = static_cast<int>(rng.next() % kKinds);
        q.arrival = next_arrival;
        q.deadline = next_arrival + deadline_len;
        q.retries_left = o.retries;
        q.backoff = rtj::Backoff(std::chrono::milliseconds(2),
                                 std::chrono::milliseconds(50),
                                 rng.next());
        ++r.tenants[q.tenant].submitted;
        next_arrival += next_interval();
        attempt(std::move(q));
      }

      if ((next_arrival >= end || r.interrupted) && in_flight.empty() &&
          retrying.empty()) {
        break;
      }

      // 5. Sleep until the next event — by joining the oldest in-flight
      //    request with exactly that budget (the deadline-aware join path:
      //    on Timeout the wait edge is withdrawn and we go around again).
      now = Clock::now();
      auto wake = (next_arrival < end && !r.interrupted)
                      ? next_arrival
                      : now + std::chrono::milliseconds(50);
      for (const Request& q : in_flight) wake = std::min(wake, q.deadline);
      for (const Request& q : retrying) wake = std::min(wake, q.retry_at);
      if (wake <= now) continue;
      const auto dt = wake - now;
      if (!in_flight.empty()) {
        try {
          if (in_flight.front().fut.join_for(dt) == rtj::JoinOutcome::Ready) {
            finish(in_flight.front());
            in_flight.erase(in_flight.begin());
          }
        } catch (const rtj::TjError&) {
          // A faulted join settles the request; harvest it on the next pass
          // via ready()/finish() (the task is done once join faults land).
        }
      } else {
        std::this_thread::sleep_until(wake);
      }
    }

    // Drain withdrawn (timed-out) requests: they were released and counted,
    // but their tasks still run to completion — join them so the runtime
    // quiesces cleanly and nothing is abandoned mid-chaos.
    for (const auto& f : drain) {
      try {
        f.join();
      } catch (const std::exception&) {
        // Disposition was already recorded at timeout; a faulted straggler
        // changes nothing.
      }
    }
  });

  // Stop telemetry FIRST: the workload has quiesced, so the sink's final
  // synchronous sample and the gate_stats() read below see the same frozen
  // counters — the reconciliation check compares them exactly.
  sink.stop();

  r.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  r.watchdog_cycles = cycles_seen;
  r.promise_recovered = promise_recovered.load(std::memory_order_relaxed);

  // Roll up per-tenant counters and latency.
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    TenantResult& t = r.tenants[i];
    t.lat = summarize(lat[i]);
    r.submitted += t.submitted;
    r.completed += t.completed;
    r.shed += t.shed;
    r.timed_out += t.timed_out;
    r.faulted += t.faulted;
    r.in_deadline += t.in_deadline;
    r.retries += t.retries;
  }
  r.lat = summarize(lat_all);
  r.conservation = r.submitted == r.completed + r.shed + r.timed_out;

  // Admission reconciliation: the gate's front-door stats must agree both
  // internally (checked == admitted + shed) and with the controller's and
  // the generator's own books — exactly, even under chaos.
  r.stats = rt.gate_stats();
  std::uint64_t adm_admitted = 0, adm_shed = 0;
  bool balanced = true;
  for (const auto& s : rt.admission()->snapshot()) {
    balanced = balanced && s.in_flight == 0 && s.admitted == s.released;
    adm_admitted += s.admitted;
    adm_shed += s.shed;
  }
  std::uint64_t gen_shed_attempts = 0;
  for (const TenantResult& t : r.tenants) gen_shed_attempts += t.shed_attempts;
  r.admission_balanced = balanced;
  r.admission_reconciled =
      r.stats.requests_checked ==
          r.stats.requests_admitted + r.stats.requests_shed &&
      r.stats.requests_checked == r.admit_attempts &&
      r.stats.requests_admitted == adm_admitted &&
      r.stats.requests_shed == adm_shed && adm_shed == gen_shed_attempts;

  // Policy reconciliation + monotone ladder, as in tools/soak.
  r.reconciled =
      r.stats.policy_rejections + r.stats.owp_rejections ==
      r.stats.false_positives + r.stats.owp_false_positives +
          (r.stats.deadlocks_averted - r.stats.deadlocks_averted_approved);
  if (const rtj::ResourceGovernor* gov = rt.governor()) {
    r.final_level = gov->level();
    r.history = gov->history_string();
    std::size_t prev_to = 0;
    for (const auto& t : gov->transitions()) {
      if (t.to_level < t.from_level || t.from_level < prev_to) {
        r.monotone = false;
      }
      prev_to = t.to_level;
    }
  }
  if (auto* lad = dynamic_cast<tj::core::LadderVerifier*>(rt.verifier())) {
    r.ladder_floor = lad->level_count() - 1;
  }

  // Telemetry reconciliation: re-read this mode's samples from the JSONL
  // file and require the final one to agree with gate_stats() counter for
  // counter. Going through the file (not the sink's memory) also proves the
  // stream round-trips: schema-valid JSON, correct scheduler label, nothing
  // truncated.
  if (!o.telemetry_file.empty()) {
    r.telemetry_reconciled = false;
    try {
      namespace slo = tj::obs::slo;
      std::vector<slo::Json> mine;
      for (slo::Json& s : slo::parse_jsonl_file(o.telemetry_file)) {
        const slo::Json* sched = s.find("scheduler");
        if (sched != nullptr && sched->str() == r.scheduler) {
          mine.push_back(std::move(s));
        }
      }
      r.telemetry_samples = mine.size();
      if (!mine.empty()) {
        const slo::Json& last = mine.back();
        const auto eq = [&last](const char* path, std::uint64_t want) {
          const slo::Json* v = last.at_path(path);
          return v != nullptr && v->is_number() &&
                 v->number() == static_cast<double>(want);
        };
        r.telemetry_reconciled =
            eq("gate.requests_checked", r.stats.requests_checked) &&
            eq("gate.requests_admitted", r.stats.requests_admitted) &&
            eq("gate.requests_shed", r.stats.requests_shed) &&
            eq("gate.joins_checked", r.stats.joins_checked) &&
            eq("gate.awaits_checked", r.stats.awaits_checked) &&
            eq("gate.policy_rejections", r.stats.policy_rejections) &&
            eq("hist.request_latency_ns.count", lat_all.count());

        // Contention reconciliation over the final (post-quiesce) sample:
        // the sink takes it synchronously in stop() after the workload has
        // drained, so every site must balance exactly — not approximately.
        const slo::Json* sites = last.at_path("contention.sites");
        if (sites != nullptr && sites->is_array()) {
          r.contention_sites = sites->array().size();
          for (const slo::Json& site : sites->array()) {
            const auto num = [&site](const char* key) -> double {
              const slo::Json* v = site.find(key);
              return v != nullptr && v->is_number() ? v->number() : -1.0;
            };
            const double acq = num("acquisitions");
            const double con = num("contended");
            const double unc = num("uncontended");
            const slo::Json* wc = site.at_path("wait.count");
            const double waits =
                wc != nullptr && wc->is_number() ? wc->number() : -1.0;
            const bool ok = acq >= 0 && con >= 0 && unc >= 0 && waits >= 0 &&
                            acq == con + unc && waits <= con;
            if (!ok) {
              const slo::Json* name = site.find("site");
              std::fprintf(stderr,
                           "loadgen: lock site %s does not reconcile: "
                           "acquisitions=%.0f contended=%.0f "
                           "uncontended=%.0f wait.count=%.0f\n",
                           name != nullptr ? name->str().c_str() : "?", acq,
                           con, unc, waits);
              r.contention_reconciled = false;
            }
          }
        }
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "loadgen: telemetry stream unusable: %s\n",
                   ex.what());
    }
  }
}

// ---- reporting ----

void print_mode(std::FILE* out, const ModeResult& r) {
  std::fprintf(
      out,
      "[%s] %s%s: %llu submitted = %llu completed + %llu shed + %llu "
      "timed_out (%llu faulted, %llu retries, %llu lost) in %.1fs "
      "(%.1f done/s)\n",
      r.pass() ? "PASS" : "FAIL", r.scheduler.c_str(),
      r.interrupted ? " (INTERRUPTED)" : "",
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.timed_out),
      static_cast<unsigned long long>(r.faulted),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.lost), r.wall_s,
      r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s : 0.0);
  std::fprintf(out,
               "       checks: conservation=%d reconciled=%d admission=%d "
               "balanced=%d monotone=%d telemetry=%d contention=%d "
               "cycles=%llu level=%zu/%zu\n",
               r.conservation ? 1 : 0, r.reconciled ? 1 : 0,
               r.admission_reconciled ? 1 : 0, r.admission_balanced ? 1 : 0,
               r.monotone ? 1 : 0, r.telemetry_reconciled ? 1 : 0,
               r.contention_reconciled ? 1 : 0,
               static_cast<unsigned long long>(r.watchdog_cycles),
               r.final_level, r.ladder_floor);
  if (r.telemetry_samples != 0) {
    std::fprintf(out,
                 "       telemetry: %llu samples, final reconciled=%d, "
                 "%llu lock sites reconciled=%d\n",
                 static_cast<unsigned long long>(r.telemetry_samples),
                 r.telemetry_reconciled ? 1 : 0,
                 static_cast<unsigned long long>(r.contention_sites),
                 r.contention_reconciled ? 1 : 0);
  }
  for (const TenantResult& t : r.tenants) {
    std::fprintf(out,
                 "       %-6s: slo=%.3f submitted=%llu completed=%llu "
                 "shed=%llu timed_out=%llu p50=%.1fms p99=%.1fms "
                 "p999=%.1fms\n",
                 t.name.c_str(), t.slo(),
                 static_cast<unsigned long long>(t.submitted),
                 static_cast<unsigned long long>(t.completed),
                 static_cast<unsigned long long>(t.shed),
                 static_cast<unsigned long long>(t.timed_out), t.lat.p50_ms,
                 t.lat.p99_ms, t.lat.p999_ms);
  }
  if (!r.history.empty()) {
    std::fprintf(out, "       degradation: %s\n", r.history.c_str());
  }
}

void json_lat(std::ostringstream& os, const LatSummary& l) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"count\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"p999_ms\": %.3f, \"max_ms\": %.3f, \"mean_ms\": %.3f}",
                static_cast<unsigned long long>(l.count), l.p50_ms, l.p99_ms,
                l.p999_ms, l.max_ms, l.mean_ms);
  os << buf;
}

std::string to_json(const Options& o, const std::vector<ModeResult>& modes,
                    bool pass) {
  std::ostringstream os;
  bool interrupted = false;
  for (const ModeResult& r : modes) interrupted = interrupted || r.interrupted;
  os << "{\n  \"tool\": \"loadgen\",\n";
  os << "  \"seconds\": " << o.seconds << ",\n";
  os << "  \"rate_hz\": " << o.rate << ",\n";
  os << "  \"deadline_ms\": " << o.deadline_ms << ",\n";
  os << "  \"fault_seed\": " << o.fault_seed << ",\n";
  os << "  \"policy\": \"" << o.policy << "\",\n";
  os << "  \"threads\": " << o.threads << ",\n";
  os << "  \"hostile\": " << (o.hostile ? "true" : "false") << ",\n";
  os << "  \"interrupted\": " << (interrupted ? "true" : "false") << ",\n";
  os << "  \"modes\": [\n";
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const ModeResult& r = modes[m];
    os << "    {\n";
    os << "      \"scheduler\": \"" << r.scheduler << "\",\n";
    os << "      \"interrupted\": " << (r.interrupted ? "true" : "false")
       << ",\n";
    os << "      \"wall_seconds\": " << r.wall_s << ",\n";
    os << "      \"throughput_rps\": "
       << (r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s : 0.0)
       << ",\n";
    os << "      \"requests\": {\"submitted\": " << r.submitted
       << ", \"completed\": " << r.completed << ", \"shed\": " << r.shed
       << ", \"timed_out\": " << r.timed_out << ", \"faulted\": " << r.faulted
       << ", \"retries\": " << r.retries << ", \"lost\": " << r.lost
       << "},\n";
    os << "      \"slo_attainment\": "
       << (r.submitted != 0
               ? static_cast<double>(r.in_deadline) /
                     static_cast<double>(r.submitted)
               : 1.0)
       << ",\n";
    os << "      \"latency_ms\": ";
    json_lat(os, r.lat);
    os << ",\n";
    os << "      \"checks\": {\"conservation_exact\": "
       << (r.conservation ? "true" : "false")
       << ", \"gate_reconciled\": " << (r.reconciled ? "true" : "false")
       << ", \"admission_reconciled\": "
       << (r.admission_reconciled ? "true" : "false")
       << ", \"admission_balanced\": "
       << (r.admission_balanced ? "true" : "false")
       << ", \"monotone_downgrades\": " << (r.monotone ? "true" : "false")
       << ", \"telemetry_reconciled\": "
       << (r.telemetry_reconciled ? "true" : "false")
       << ", \"contention_reconciled\": "
       << (r.contention_reconciled ? "true" : "false")
       << ", \"watchdog_cycles\": " << r.watchdog_cycles << "},\n";
    os << "      \"telemetry_samples\": " << r.telemetry_samples << ",\n";
    os << "      \"contention_sites\": " << r.contention_sites << ",\n";
    os << "      \"ladder\": {\"final_level\": " << r.final_level
       << ", \"floor\": " << r.ladder_floor << "},\n";
    os << "      \"admission\": {\"checked\": " << r.stats.requests_checked
       << ", \"admitted\": " << r.stats.requests_admitted
       << ", \"shed\": " << r.stats.requests_shed << "},\n";
    os << "      \"tenants\": [\n";
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
      const TenantResult& t = r.tenants[i];
      os << "        {\"name\": \"" << t.name
         << "\", \"submitted\": " << t.submitted
         << ", \"completed\": " << t.completed << ", \"shed\": " << t.shed
         << ", \"timed_out\": " << t.timed_out
         << ", \"faulted\": " << t.faulted << ", \"retries\": " << t.retries
         << ", \"slo_attainment\": " << t.slo() << ", \"latency_ms\": ";
      json_lat(os, t.lat);
      os << "}" << (i + 1 < r.tenants.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (m + 1 < modes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"pass\": " << (pass ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  rtj::IntrospectionHook::install_signal_handler();
  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  // Human-readable output goes to stderr when the JSON report owns stdout.
  std::FILE* out = (o.json && o.json_file.empty()) ? stderr : stdout;
  std::fprintf(out,
               "loadgen: %us per mode @ %.0f req/s, deadline %ums, "
               "policy=%s, fault-seed=%llu%s\n",
               o.seconds, o.rate, o.deadline_ms, o.policy.c_str(),
               static_cast<unsigned long long>(o.fault_seed),
               o.hostile ? ", hostile budgets" : "");
  const Expected exp = compute_expected();
  const std::vector<TenantSpec> tenants = make_tenants(o);

  // One telemetry stream per invocation: truncate up front, then each
  // mode's sink appends its samples (distinguished by the scheduler field).
  if (!o.telemetry_file.empty()) {
    std::ofstream trunc(o.telemetry_file, std::ios::trunc);
    if (!trunc) {
      std::fprintf(stderr, "loadgen: cannot write --telemetry=%s\n",
                   o.telemetry_file.c_str());
      return 2;
    }
  }

  std::vector<rtj::SchedulerMode> modes;
  if (o.scheduler == "both" || o.scheduler == "blocking") {
    modes.push_back(rtj::SchedulerMode::Blocking);
  }
  if (o.scheduler == "both" || o.scheduler == "cooperative") {
    modes.push_back(rtj::SchedulerMode::Cooperative);
  }
  if (modes.empty()) {
    std::fprintf(stderr, "unknown --scheduler=%s\n", o.scheduler.c_str());
    return 2;
  }

  std::vector<ModeResult> results;
  results.reserve(modes.size());
  bool pass = true;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    results.emplace_back();
    run_mode(modes[i], o, exp, tenants, results.back());
    print_mode(out, results.back());
    pass = pass && results.back().pass();
    // An interrupt drains the current mode but skips the rest: the report
    // below covers exactly the modes that ran.
    if (g_stop.load(std::memory_order_relaxed)) break;
  }

  // Declarative SLO gate: every mode's final sample must satisfy every
  // rule; a violated rule (or a metric the stream does not carry) fails
  // the run with the same nonzero exit CI already watches.
  if (!o.slo_rules.empty()) {
    try {
      namespace slo = tj::obs::slo;
      const std::vector<slo::Rule> rules = slo::parse_rules(o.slo_rules);
      std::vector<slo::Json> samples =
          slo::parse_jsonl_file(o.telemetry_file);
      for (const ModeResult& r : results) {
        std::vector<slo::Json> mine;
        for (const slo::Json& s : samples) {
          const slo::Json* sched = s.find("scheduler");
          if (sched != nullptr && sched->str() == r.scheduler) {
            mine.push_back(s);
          }
        }
        const slo::Evaluation ev = slo::evaluate(mine, rules);
        std::fprintf(out, "[%s] slo %s:\n%s",
                     ev.pass ? "PASS" : "FAIL", r.scheduler.c_str(),
                     ev.to_string().c_str());
        pass = pass && ev.pass;
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "loadgen: slo evaluation failed: %s\n", ex.what());
      pass = false;
    }
  }

  if (o.json) {
    const std::string doc = to_json(o, results, pass);
    if (o.json_file.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream f(o.json_file);
      f << doc;
      if (!f) {
        std::fprintf(stderr, "loadgen: cannot write %s\n",
                     o.json_file.c_str());
        return 2;
      }
    }
  }
  std::fprintf(out, "loadgen %s\n", pass ? "PASSED" : "FAILED");
  return pass ? 0 : 1;
}
