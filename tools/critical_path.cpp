// critical_path: run one benchmark app with the flight recorder enabled,
// reconstruct the causal DAG from the event stream, and report how much of
// the verifier's overhead (policy checks + WFG cycle scans) and of the
// blocked-join/await time sat on the critical path vs off it.
//
//   $ critical_path --app=series --size=tiny
//   $ critical_path --app=nqueens --policy=KJ-VC --scheduler=blocking --check
//
// --check additionally asserts the attribution reconciles against the
// metrics histograms: for every category, on-path + off-path must equal the
// histogram's sum_ns exactly when no events were dropped (both sides record
// the same payloads), and be ≤ it when drops occurred. Exit code: 0 on
// success, 1 if the app self-check or --check fails, 2 on bad usage.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/policy_ids.hpp"
#include "obs/causal.hpp"
#include "runtime/runtime.hpp"

namespace {

struct Options {
  std::string app = "series";
  tj::apps::AppSize size = tj::apps::AppSize::Tiny;
  tj::core::PolicyChoice policy = tj::core::PolicyChoice::TJ_SP;
  tj::runtime::SchedulerMode scheduler =
      tj::runtime::SchedulerMode::Cooperative;
  unsigned workers = 0;
  std::size_t buffer = std::size_t{1} << 18;
  bool check = false;
  bool print_path = false;
};

int usage(std::ostream& os) {
  os << "usage: critical_path --app=<name> [options]\n"
        "  --app=<name>          benchmark app (see trace_dump --list)\n"
        "  --size=tiny|small|medium|large   problem size (default tiny)\n"
        "  --policy=<p>          TJ-GT|TJ-JP|TJ-SP|KJ-VC|KJ-SS|cycle-only|"
        "none (default TJ-SP)\n"
        "  --scheduler=cooperative|blocking (default cooperative)\n"
        "  --workers=N           worker threads (default hardware)\n"
        "  --buffer=N            per-thread event capacity (default 262144)\n"
        "  --path                print every event on the critical path\n"
        "  --check               fail unless attribution reconciles with the"
        " metrics histograms\n";
  return 2;
}

bool parse_policy(const std::string& s, tj::core::PolicyChoice& out) {
  using tj::core::PolicyChoice;
  for (PolicyChoice p :
       {PolicyChoice::None, PolicyChoice::TJ_GT, PolicyChoice::TJ_JP,
        PolicyChoice::TJ_SP, PolicyChoice::KJ_VC, PolicyChoice::KJ_SS,
        PolicyChoice::CycleOnly}) {
    if (s == tj::core::to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

bool parse_size(const std::string& s, tj::apps::AppSize& out) {
  using tj::apps::AppSize;
  for (AppSize z :
       {AppSize::Tiny, AppSize::Small, AppSize::Medium, AppSize::Large}) {
    if (s == tj::apps::to_string(z)) {
      out = z;
      return true;
    }
  }
  return false;
}

/// One category's reconciliation: the attribution partition vs the metrics
/// histogram that timed the same intervals.
bool reconcile(const char* name, const tj::obs::PathAttribution& a,
               const tj::obs::LatencyHistogram& h, std::uint64_t dropped,
               bool strict) {
  const auto s = h.summary();
  const bool exact = a.total_ns() == s.sum_ns && a.count == s.count;
  const bool ok = dropped == 0 ? exact
                               : a.total_ns() <= s.sum_ns && a.count <= s.count;
  std::cout << "reconcile " << name << ": attributed " << a.total_ns()
            << "ns/" << a.count << " vs histogram " << s.sum_ns << "ns/"
            << s.count << (ok ? " OK" : " MISMATCH")
            << (dropped != 0 && !exact ? " (events dropped)" : "") << "\n";
  return ok || !strict;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout), 0;
    if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--path") {
      opt.print_path = true;
    } else if (const char* v = val("--app=")) {
      opt.app = v;
    } else if (const char* v = val("--size=")) {
      if (!parse_size(v, opt.size)) {
        std::cerr << "critical_path: unknown size '" << v << "'\n";
        return 2;
      }
    } else if (const char* v = val("--policy=")) {
      if (!parse_policy(v, opt.policy)) {
        std::cerr << "critical_path: unknown policy '" << v << "'\n";
        return 2;
      }
    } else if (const char* v = val("--scheduler=")) {
      const std::string s = v;
      if (s == "cooperative") {
        opt.scheduler = tj::runtime::SchedulerMode::Cooperative;
      } else if (s == "blocking") {
        opt.scheduler = tj::runtime::SchedulerMode::Blocking;
      } else {
        std::cerr << "critical_path: unknown scheduler '" << s << "'\n";
        return 2;
      }
    } else if (const char* v = val("--workers=")) {
      opt.workers = static_cast<unsigned>(std::stoul(v));
    } else if (const char* v = val("--buffer=")) {
      opt.buffer = static_cast<std::size_t>(std::stoull(v));
    } else {
      std::cerr << "critical_path: unknown flag " << arg << "\n";
      return usage(std::cerr);
    }
  }

  const tj::apps::AppInfo* app = tj::apps::find_app(opt.app);
  if (app == nullptr) {
    std::cerr << "critical_path: unknown app '" << opt.app << "'\n";
    return 2;
  }

  tj::runtime::Config cfg;
  cfg.policy = opt.policy;
  cfg.scheduler = opt.scheduler;
  cfg.workers = opt.workers;
  cfg.obs.enabled = true;
  cfg.obs.buffer_capacity = opt.buffer;

  tj::apps::AppOutcome outcome;
  std::vector<tj::obs::Event> events;
  std::uint64_t dropped = 0;
  tj::obs::LatencyHistogram::Summary hist_policy, hist_scan, hist_join,
      hist_await;
  bool ok = true;
  {
    tj::runtime::Runtime rt(cfg);
    outcome = app->run(rt, opt.size);
    tj::obs::FlightRecorder* rec = rt.recorder();
    events = rec->drain();
    dropped = rec->events_dropped();

    const tj::obs::CriticalPathReport rep =
        tj::obs::analyze_critical_path(events);
    std::cout << app->name << "/" << tj::apps::to_string(opt.size)
              << " policy=" << tj::core::to_string(opt.policy)
              << " scheduler=" << tj::runtime::to_string(opt.scheduler)
              << ": " << events.size() << " events, " << dropped
              << " dropped\n"
              << rep.to_string();
    if (opt.print_path) {
      for (const tj::obs::Event& e : rep.path) {
        std::cout << "  | " << tj::obs::to_string(e) << "\n";
      }
    }

    const tj::obs::Metrics& m = rec->metrics();
    ok &= reconcile("policy-check", rep.policy_check, m.policy_check_ns,
                    dropped, opt.check);
    ok &= reconcile("cycle-scan", rep.cycle_scan, m.cycle_scan_ns, dropped,
                    opt.check);
    ok &= reconcile("blocked-join", rep.blocked_join, m.blocked_join_ns,
                    dropped, opt.check);
    ok &= reconcile("blocked-await", rep.blocked_await, m.blocked_await_ns,
                    dropped, opt.check);
  }

  if (!outcome.valid) {
    std::cerr << "critical_path: app self-check FAILED (" << outcome.detail
              << ")\n";
    return 1;
  }
  return ok ? 0 : 1;
}
