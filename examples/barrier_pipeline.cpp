// Deadlock-avoiding barriers: a two-stage pipeline where each stage's
// workers synchronise on their own CheckedBarrier, plus a demonstration of
// the cross-barrier deadlock the verifier averts.
//
// Stage 1 workers produce a block of data per phase; stage 2 workers consume
// the previous phase's block. A shared BarrierDomain lets the Armus-style
// resource graph see both barriers, so a mis-ordered await that would
// deadlock across them faults (DeadlockAvoidedError) instead of hanging.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/barrier.hpp"

namespace rtj = tj::runtime;

int main() {
  rtj::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP, .workers = 8});

  constexpr int kWorkers = 3;
  constexpr int kPhases = 4;

  const long expected = [] {
    long total = 0;
    for (int ph = 0; ph < kPhases; ++ph) {
      total += static_cast<long>(kWorkers) * ph;
    }
    return total;
  }();

  const long consumed = rt.root([&] {
    rtj::BarrierDomain domain;
    rtj::CheckedBarrier& stage = domain.create_barrier();

    std::vector<std::atomic<long>> buffer(kWorkers);
    std::atomic<long> total{0};
    std::atomic<bool> start{false};

    std::vector<rtj::Future<void>> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.push_back(rtj::async([&, w] {
        while (!start.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int ph = 0; ph < kPhases; ++ph) {
          buffer[w].store(ph, std::memory_order_relaxed);  // produce
          stage.await();  // everyone produced phase ph
          total.fetch_add(
              buffer[(w + 1) % kWorkers].load(std::memory_order_relaxed));
          stage.await();  // everyone consumed before the next produce
        }
      }));
      stage.register_party(workers.back().task().uid());
    }
    start.store(true, std::memory_order_release);
    for (auto& f : workers) f.join();
    return total.load();
  });

  std::printf("pipeline consumed checksum: %ld (expected %ld)\n", consumed,
              expected);

  // Part 2: the cross-barrier deadlock, averted and recovered.
  rtj::Runtime rt2({.policy = tj::core::PolicyChoice::TJ_SP, .workers = 4});
  const bool averted = rt2.root([] {
    rtj::BarrierDomain domain;
    rtj::CheckedBarrier& x = domain.create_barrier();
    rtj::CheckedBarrier& y = domain.create_barrier();
    std::atomic<bool> start{false};
    std::atomic<bool> caught{false};
    auto a = rtj::async([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      x.await();
      y.await();
    });
    auto b = rtj::async([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      try {
        y.await();  // wrong order: would deadlock against a's x.await()
      } catch (const rtj::DeadlockAvoidedError& e) {
        std::printf("averted: %s\n", e.what());
        caught.store(true);
        x.await();  // recover in the right order
        y.await();
      }
    });
    x.register_party(a.task().uid());
    y.register_party(a.task().uid());
    x.register_party(b.task().uid());
    y.register_party(b.task().uid());
    start.store(true, std::memory_order_release);
    a.join();
    b.join();
    return caught.load();
  });

  std::printf("cross-barrier deadlock averted and recovered: %s\n",
              averted ? "yes" : "no (schedule did not produce the race)");
  return consumed == expected ? 0 : 1;
}
