// Deadlock avoidance in action: two sibling tasks join each other cross-wise,
// which would deadlock under an unchecked runtime. The TJ verifier rejects
// the half of the cross that goes against the total order; cycle detection
// confirms the deadlock, and the join FAULTS — without blocking — inside the
// offending task, which catches the error and recovers with a fallback value.
// This is the avoidance-over-detection advantage of Sec. 7.1.

#include <atomic>
#include <cstdio>
#include <thread>

#include "runtime/api.hpp"

namespace rtj = tj::runtime;

namespace {

using Slot = std::atomic<const rtj::Future<int>*>;

// Waits until the sibling's Future is published, then tries to join it.
// On a deadlock fault, recovers with a local fallback value.
int cross_join(Slot& sibling, const char* name) {
  const rtj::Future<int>* other;
  while ((other = sibling.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  try {
    return other->get() + 1;
  } catch (const rtj::DeadlockAvoidedError& e) {
    std::printf("[%s] join faulted: %s — recovering with fallback\n", name,
                e.what());
    return 100;
  }
}

}  // namespace

int main() {
  rtj::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP, .workers = 4});

  const int total = rt.root([&] {
    Slot slot1{nullptr};
    Slot slot2{nullptr};

    rtj::Future<int> t1 =
        rtj::async([&slot2] { return cross_join(slot2, "t1"); });
    rtj::Future<int> t2 =
        rtj::async([&slot1] { return cross_join(slot1, "t2"); });

    slot1.store(&t1, std::memory_order_release);
    slot2.store(&t2, std::memory_order_release);

    return t1.get() + t2.get();  // both terminate: no deadlock happened
  });

  const auto gs = rt.gate_stats();
  std::printf("both tasks completed; total = %d\n", total);
  std::printf("deadlocks averted: %llu\n",
              static_cast<unsigned long long>(gs.deadlocks_averted));
  // Exactly one side of the cross faulted and recovered: one task returns
  // 100 (fallback), the other returns 100 + 1.
  return (total == 201 && gs.deadlocks_averted >= 1) ? 0 : 1;
}
