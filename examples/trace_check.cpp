// Offline trace checker: reads a trace in the paper's notation from a file
// (or stdin) and reports structural validity, TJ validity (Def. 3.4), KJ
// validity (Def. 4.2), ownership-policy (OWP) validity for promise actions
// and deadlock cycles (extended Def. 3.9).
//
//   $ echo "init(0); fork(0,1); fork(1,2); join(0,2)" | ./trace_check -
//   structural : VALID
//   TJ         : VALID
//   KJ         : INVALID at #3 join(0,2): valid-join-R: not t ⊢ a ≺ b (KJ)
//   OWP        : VALID
//   deadlock   : none
//
// Promise actions use make(task,pN); fulfill(task,pN); await(task,pN);
// transfer(from,to,pN) notation.
//
// Exit code: 0 if TJ-valid, OWP-valid and deadlock-free, 1 otherwise,
// 2 on bad input.

#include <fstream>
#include <iostream>
#include <sstream>

#include "trace/deadlock.hpp"
#include "trace/parse.hpp"
#include "trace/validity.hpp"

namespace {

void report(const char* label, const tj::trace::ValidityResult& r) {
  if (r.valid) {
    std::cout << label << ": VALID\n";
    return;
  }
  std::cout << label << ": INVALID at #" << r.violation->index << " "
            << tj::trace::to_string(r.violation->action) << ": "
            << r.violation->reason << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <file|->   (trace in "
                 "'init(0); fork(0,1); join(0,1)' notation)\n";
    return 2;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  tj::trace::Trace t;
  try {
    t = tj::trace::parse_trace(text);
  } catch (const tj::trace::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "parsed " << t.size() << " actions over " << t.tasks().size()
            << " tasks (" << t.fork_count() << " forks, " << t.join_count()
            << " joins) and " << t.promises().size() << " promises ("
            << t.make_count() << " makes, " << t.await_count()
            << " awaits)\n";

  const auto structural =
      tj::trace::check_valid(t, tj::trace::PolicyKind::Structural);
  const auto tj_v = tj::trace::check_valid(t, tj::trace::PolicyKind::TJ);
  const auto kj_v = tj::trace::check_valid(t, tj::trace::PolicyKind::KJ);
  const auto owp_v = tj::trace::check_valid(t, tj::trace::PolicyKind::OWP);
  report("structural", structural);
  report("TJ        ", tj_v);
  report("KJ        ", kj_v);
  report("OWP       ", owp_v);

  const auto cycle = tj::trace::find_deadlock_cycle(t);
  if (cycle.has_value()) {
    std::cout << "deadlock  : CYCLE";
    for (tj::trace::TaskId id : *cycle) std::cout << " " << id;
    std::cout << "\n";
  } else {
    std::cout << "deadlock  : none\n";
  }
  return (tj_v.valid && owp_v.valid && !cycle.has_value()) ? 0 : 1;
}
