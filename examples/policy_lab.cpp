// Policy lab: runs one real workload (Strassen) under every verifier and
// prints times, verifier state sizes and gate statistics side by side —
// a miniature of the Table-2 harness, showing how to use the library's
// measurement pieces programmatically.

#include <cstdio>

#include "apps/app_registry.hpp"
#include "harness/runner.hpp"

namespace {

constexpr tj::core::PolicyChoice kPolicies[] = {
    tj::core::PolicyChoice::None,  tj::core::PolicyChoice::TJ_GT,
    tj::core::PolicyChoice::TJ_JP, tj::core::PolicyChoice::TJ_SP,
    tj::core::PolicyChoice::KJ_VC, tj::core::PolicyChoice::KJ_SS,
    tj::core::PolicyChoice::CycleOnly,
};

}  // namespace

int main() {
  const tj::apps::AppInfo* app = tj::apps::find_app("strassen");
  if (app == nullptr) return 1;

  tj::harness::RunConfig cfg;
  cfg.size = tj::apps::AppSize::Small;
  cfg.reps = 3;
  cfg.warmups = 1;

  std::printf("%-12s %10s %14s %10s %10s %10s\n", "policy", "time[s]",
              "verifier[B]", "joins", "rejected", "valid");
  bool all_valid = true;
  for (tj::core::PolicyChoice p : kPolicies) {
    const tj::harness::Measurement m = tj::harness::measure(*app, p, cfg);
    all_valid = all_valid && m.app_valid;
    std::printf("%-12s %10.4f %14.0f %10llu %10llu %10s\n",
                std::string(tj::core::to_string(p)).c_str(), m.time_s.mean,
                m.verifier_peak_bytes,
                static_cast<unsigned long long>(m.gate.joins_checked),
                static_cast<unsigned long long>(m.gate.policy_rejections),
                m.app_valid ? "yes" : "NO");
  }
  return all_valid ? 0 : 1;
}
