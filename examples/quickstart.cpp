// Quickstart: fork/join with an always-on Transitive Joins verifier.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "runtime/api.hpp"

namespace rtj = tj::runtime;

namespace {

// A recursive parallel sum: each task forks two halves and joins them —
// parent-joins-child, trivially TJ-valid (rule I).
long parallel_sum(const std::vector<int>& xs, std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1024) {
    long acc = 0;
    for (std::size_t i = lo; i < hi; ++i) acc += xs[i];
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  auto left = rtj::async([&xs, lo, mid] { return parallel_sum(xs, lo, mid); });
  auto right = rtj::async([&xs, mid, hi] { return parallel_sum(xs, mid, hi); });
  return left.get() + right.get();
}

}  // namespace

int main() {
  // Pick the paper's evaluated verifier (TJ-SP) with cycle-detection
  // fallback; every Future::get() below is a checked join.
  rtj::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP});

  std::vector<int> xs(1 << 20);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<int>(i % 7);

  const long total = rt.root([&] { return parallel_sum(xs, 0, xs.size()); });

  const auto gs = rt.gate_stats();
  std::printf("sum = %ld\n", total);
  std::printf("tasks created     : %llu\n",
              static_cast<unsigned long long>(rt.tasks_created()));
  std::printf("joins checked     : %llu\n",
              static_cast<unsigned long long>(gs.joins_checked));
  std::printf("policy rejections : %llu (TJ admits this program outright)\n",
              static_cast<unsigned long long>(gs.policy_rejections));
  std::printf("verifier state    : %zu bytes peak\n", rt.policy_peak_bytes());
  long expected = 0;
  for (int v : xs) expected += v;
  return total == expected ? 0 : 1;
}
