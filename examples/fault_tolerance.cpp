// Recoverable faults end-to-end: the catch → cancel → retry pattern.
//
// A work unit is farmed out under a CancellationScope. One task hits a
// deadlock-avoidance fault (a cross-sibling join cycle the policy rejects);
// the scope reacts by cancelling the still-pending sibling tasks — their
// futures fail fast with CancelledError carrying the originating fault
// instead of computing results nobody will consume. The scope *owner*
// survives, observes the fault at its joins, and retries the whole unit
// with a corrected join structure, which succeeds.
//
// Build: cmake --build build --target fault_tolerance && build/examples/fault_tolerance

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/cancellation.hpp"

namespace rt = tj::runtime;

namespace {

// Attempt 1: tasks 0 and 1 join *each other* — a genuine deadlock the
// policy faults instead of blocking into. The remaining siblings would be
// wasted work once the unit has failed; the scope cancels them.
long attempt_with_cycle() {
  rt::CancellationScope scope;
  std::atomic<const rt::Future<long>*> slot0{nullptr};
  std::atomic<const rt::Future<long>*> slot1{nullptr};
  auto cross = [](std::atomic<const rt::Future<long>*>& other) -> long {
    const rt::Future<long>* f;
    while ((f = other.load(std::memory_order_acquire)) == nullptr) {
      std::this_thread::yield();
    }
    return f->get() + 1;  // one of the two joins faults here
  };
  std::vector<rt::Future<long>> unit;
  unit.push_back(rt::async([&slot1, &cross] { return cross(slot1); }));
  unit.push_back(rt::async([&slot0, &cross] { return cross(slot0); }));
  for (int i = 2; i < 8; ++i) {
    unit.push_back(rt::async([i]() -> long {
      // Straggler work that should NOT run once the unit has failed.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return i;
    }));
  }
  slot0.store(&unit[0], std::memory_order_release);
  slot1.store(&unit[1], std::memory_order_release);

  long acc = 0;
  std::exception_ptr fault;
  for (auto& f : unit) {
    try {
      acc += f.get();
    } catch (const rt::DeadlockAvoidedError& e) {
      std::printf("  [fault]   %s\n", e.what());
      fault = std::current_exception();
      scope.cancel(fault);  // stop the rest of the unit, keep the cause
    } catch (const rt::CancelledError& e) {
      std::printf("  [cancel]  sibling failed fast: %s\n", e.what());
    }
  }
  std::printf("  [scope]   cancelled=%s, queued tasks cancelled=%llu\n",
              scope.cancelled() ? "yes" : "no",
              static_cast<unsigned long long>(scope.tasks_cancelled()));
  if (fault) std::rethrow_exception(fault);
  return acc;
}

// Attempt 2: corrected join order — a one-directional chain (younger joins
// older) computes the same unit without a cycle.
long attempt_corrected() {
  std::vector<rt::Future<long>> unit;
  unit.push_back(rt::async([] { return 1L; }));
  const rt::Future<long> first = unit[0];
  unit.push_back(rt::async([first] { return first.get() + 1; }));
  for (int i = 2; i < 8; ++i) {
    unit.push_back(rt::async([i] { return static_cast<long>(i); }));
  }
  long acc = 0;
  for (auto& f : unit) acc += f.get();
  return acc;
}

}  // namespace

int main() {
  rt::Runtime runtime({.policy = tj::core::PolicyChoice::TJ_SP,
                       .workers = 4});
  const long result = runtime.root([]() -> long {
    std::printf("attempt 1: cross-sibling join cycle under a "
                "CancellationScope\n");
    try {
      return attempt_with_cycle();
    } catch (const rt::DeadlockAvoidedError&) {
      std::printf("attempt 2: retry with corrected join order\n");
      return attempt_corrected();  // the scope owner is the recovery point
    }
  });
  const auto s = runtime.gate_stats();
  std::printf("result=%ld  (deadlocks averted: %llu)\n", result,
              static_cast<unsigned long long>(s.deadlocks_averted));
  return result == 30 ? 0 : 1;  // 1 + 2 + (2+3+4+5+6+7)
}
