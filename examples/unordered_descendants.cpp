// Listing 1 of the paper: a divide-and-conquer routine whose tasks push
// their Futures onto a shared concurrent queue; the root awaits completion by
// joining every queued Future in arbitrary order. The queue respects no
// parent/child order, so runs of this program can violate Known Joins
// nondeterministically — but never Transitive Joins, because the root
// transitively precedes every descendant.
//
// We run the same program under KJ-SS and under TJ-SP (both with precise
// fallback, as in the paper's evaluation) and print how often each policy
// flagged a join.

#include <cstdio>
#include <random>

#include "runtime/api.hpp"
#include "runtime/concurrent_queue.hpp"

namespace rtj = tj::runtime;

namespace {

using TaskQueue = rtj::ConcurrentQueue<rtj::Future<int>>;

// Listing 1's f(): each call forks two children which recurse; every child
// launches before its Future is pushed.
void divide(TaskQueue& tasks, int depth) {
  if (depth == 0) return;
  tasks.push(rtj::async([&tasks, depth] {
    divide(tasks, depth - 1);
    return 1;
  }));
  tasks.push(rtj::async([&tasks, depth] {
    divide(tasks, depth - 1);
    return 1;
  }));
}

int run_under(tj::core::PolicyChoice policy, unsigned long long* rejections) {
  rtj::Runtime rt({.policy = policy});
  const int result = rt.root([&] {
    TaskQueue tasks;
    divide(tasks, /*depth=*/8);
    // "May join with any descendant": drain both ends pseudo-randomly.
    std::mt19937_64 rng(12345);
    int acc = 0;
    while (auto f = (rng() & 1) ? tasks.poll_back() : tasks.poll()) {
      acc += f->get();
    }
    return acc;
  });
  *rejections = rt.gate_stats().policy_rejections;
  return result;
}

}  // namespace

int main() {
  unsigned long long kj_rej = 0;
  unsigned long long tj_rej = 0;
  const int kj_result = run_under(tj::core::PolicyChoice::KJ_SS, &kj_rej);
  const int tj_result = run_under(tj::core::PolicyChoice::TJ_SP, &tj_rej);

  std::printf("tasks completed (KJ run): %d\n", kj_result);
  std::printf("tasks completed (TJ run): %d\n", tj_result);
  std::printf("KJ-SS flagged joins : %llu (each cleared by cycle detection)\n",
              kj_rej);
  std::printf("TJ-SP flagged joins : %llu (transitivity admits them all)\n",
              tj_rej);
  return (tj_rej == 0 && kj_result == tj_result) ? 0 : 1;
}
