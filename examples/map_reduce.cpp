// Listing 2 of the paper: a map-reduce whose mappers are spawned by an
// asynchronous helper task (so they are *grandchildren* of main) while the
// reducers — children of main — join them directly. Under KJ the line-16
// join is ALWAYS illegal unless extra joins are inserted on the critical
// path; under TJ the reducers inherit main's transitive permission to join
// its grandchildren, so reduction starts as soon as results arrive.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/api.hpp"

namespace rtj = tj::runtime;

namespace {

constexpr std::size_t kMappers = 64;   // N
constexpr std::size_t kReducers = 4;   // C

long work(std::size_t i) {
  long acc = 0;
  for (std::size_t k = 0; k <= i % 1000; ++k) acc += static_cast<long>(k);
  return acc;
}

struct Run {
  long result = 0;
  unsigned long long rejections = 0;
  unsigned long long false_positives = 0;
};

Run run_under(tj::core::PolicyChoice policy) {
  rtj::Runtime rt({.policy = policy});
  Run out;
  out.result = rt.root([&] {
    // AtomicReferenceArray<Future> mappers = ... (volatile slots)
    std::vector<std::atomic<const rtj::Future<long>*>> mappers(kMappers);
    std::vector<rtj::Future<long>> storage(kMappers);

    // Async mapper spawning (lines 4–7): main does NOT wait for it.
    auto spawner = rtj::async([&] {
      for (std::size_t i = 0; i < kMappers; ++i) {
        storage[i] = rtj::async([i] { return work(i); });
        mappers[i].store(&storage[i], std::memory_order_release);
      }
    });

    // Chunked reduce phase (lines 9–20): reducers join mappers directly.
    std::vector<rtj::Future<long>> reducers;
    for (std::size_t c = 0; c < kReducers; ++c) {
      reducers.push_back(rtj::async([&, c] {
        long acc = 0;
        for (std::size_t i = c * kMappers / kReducers;
             i < (c + 1) * kMappers / kReducers; ++i) {
          const rtj::Future<long>* f;
          while ((f = mappers[i].load(std::memory_order_acquire)) == nullptr) {
            std::this_thread::yield();  // lines 14–15's spin
          }
          acc += f->get();  // line 16: the join KJ forbids
        }
        return acc;
      }));
    }

    long acc = 0;
    for (const auto& r : reducers) acc += r.get();  // lines 21–23
    spawner.join();  // tidy shutdown; TJ needs no particular order
    return acc;
  });
  const auto gs = rt.gate_stats();
  out.rejections = gs.policy_rejections;
  out.false_positives = gs.false_positives;
  return out;
}

}  // namespace

int main() {
  const Run kj = run_under(tj::core::PolicyChoice::KJ_SS);
  const Run tjr = run_under(tj::core::PolicyChoice::TJ_SP);

  std::printf("map-reduce result (KJ run): %ld\n", kj.result);
  std::printf("map-reduce result (TJ run): %ld\n", tjr.result);
  std::printf("KJ-SS: %llu joins flagged (%llu false positives filtered by "
              "cycle detection)\n",
              kj.rejections, kj.false_positives);
  std::printf("TJ-SP: %llu joins flagged — the reducers inherit main's "
              "transitive permission\n",
              tjr.rejections);
  // Listing 2 ALWAYS violates KJ (the reducers join strangers) and never TJ.
  return (kj.rejections > 0 && tjr.rejections == 0 && kj.result == tjr.result)
             ? 0
             : 1;
}
