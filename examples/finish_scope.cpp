// The `finish` construct of Sec. 2.3 built on Futures: a parallel directory
// walker that spawns one task per "directory" of a synthetic tree, each task
// spawning children for its subdirectories. The scope's await() joins every
// transitively spawned task in arrival order — arbitrary descendants — the
// pattern Transitive Joins admits outright.

#include <atomic>
#include <cstdio>

#include "runtime/finish.hpp"

namespace rtj = tj::runtime;

namespace {

// Synthetic filesystem: node (depth, index) has `kFanout` children until
// kDepth; every node carries (index % 7) "files".
constexpr int kDepth = 6;
constexpr int kFanout = 4;

void walk(rtj::FinishScope& scope, std::atomic<long>& files, int depth,
          long index) {
  files.fetch_add(index % 7, std::memory_order_relaxed);
  if (depth == kDepth) return;
  for (int c = 0; c < kFanout; ++c) {
    const long child = index * kFanout + c + 1;
    scope.spawn([&scope, &files, depth, child] {
      walk(scope, files, depth + 1, child);
    });
  }
}

}  // namespace

int main() {
  rtj::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP});

  // Count "files" with a FinishScope...
  std::atomic<long> files{0};
  rt.root([&files] {
    rtj::FinishScope scope;
    walk(scope, files, 0, 0);
    scope.await();  // joins all descendants, in whatever order they landed
  });

  std::printf("finish scope counted %ld files across the tree\n",
              files.load());
  std::printf("tasks: %llu, rejections: %llu (TJ admits every join)\n",
              static_cast<unsigned long long>(rt.tasks_created()),
              static_cast<unsigned long long>(
                  rt.gate_stats().policy_rejections));

  // ...and sum a reduction with a finish accumulator (Shirako et al. [30]).
  rtj::Runtime rt2({.policy = tj::core::PolicyChoice::TJ_SP});
  const long total = rt2.root([] {
    rtj::FinishAccumulator<long> acc(0, [](long a, long b) { return a + b; });
    for (long i = 1; i <= 1000; ++i) {
      acc.spawn([i] { return i * i; });
    }
    return acc.await();
  });
  std::printf("finish accumulator: sum of squares 1..1000 = %ld\n", total);
  return total == 333'833'500L ? 0 : 1;
}
