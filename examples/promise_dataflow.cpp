// Promise dataflow with ownership-policy (OWP) deadlock avoidance: two
// sibling tasks each own a promise the *other* awaits. An unchecked runtime
// deadlocks — each side blocks on a value only the blocked peer can produce.
// Under OWP the second await closes an obligation cycle in the ownership
// graph; the WFG fallback confirms the cycle and the await FAULTS — without
// blocking — inside the offending task, which recovers by fulfilling its own
// promise with a fallback value. The promise counterpart of
// deadlock_recovery.cpp's cross-join.

#include <cstdio>

#include "runtime/api.hpp"

namespace rtj = tj::runtime;

namespace {

// Awaits the sibling's promise; on a deadlock fault recovers locally. Either
// way this task discharges its own obligation by fulfilling `mine`.
int cross_await(rtj::Promise<int> mine, rtj::Promise<int> theirs,
                const char* name) {
  try {
    const int got = theirs.get();
    mine.fulfill(got + 1);
    return got + 1;
  } catch (const rtj::DeadlockAvoidedError& e) {
    std::printf("[%s] await faulted: %s — recovering with fallback\n", name,
                e.what());
    mine.fulfill(100);  // unblocks the sibling's (legal) await
    return 100;
  }
}

}  // namespace

int main() {
  rtj::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP, .workers = 4});

  const int total = rt.root([] {
    // Root makes both promises and hands each to the task obligated to
    // fulfill it; async_owning transfers ownership before the child runs.
    rtj::Promise<int> p1 = rtj::make_promise<int>();
    rtj::Promise<int> p2 = rtj::make_promise<int>();

    rtj::Future<int> t1 =
        rtj::async_owning(p1, [p1, p2] { return cross_await(p1, p2, "t1"); });
    rtj::Future<int> t2 =
        rtj::async_owning(p2, [p1, p2] { return cross_await(p2, p1, "t2"); });

    return t1.get() + t2.get();  // both terminate: no deadlock happened
  });

  const auto gs = rt.gate_stats();
  std::printf("both tasks completed; total = %d\n", total);
  std::printf("awaits checked: %llu, OWP rejections: %llu, deadlocks "
              "averted: %llu\n",
              static_cast<unsigned long long>(gs.awaits_checked),
              static_cast<unsigned long long>(gs.owp_rejections),
              static_cast<unsigned long long>(gs.deadlocks_averted));
  // Exactly one side of the cross faulted and recovered: one task returns
  // 100 (fallback), the other 100 + 1.
  return (total == 201 && gs.owp_rejections >= 1 && gs.deadlocks_averted >= 1)
             ? 0
             : 1;
}
