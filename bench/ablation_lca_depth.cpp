// Ablation: the three TJ LCA algorithms across fork-tree depth. The paper
// (Sec. 6) argues TJ-JP "may only pay off if the fork tree is very deep" and
// picks TJ-SP for cache locality since their benchmarks never exceed depth 8.
// This bench measures the join-check cost on chains of depth 2^k to expose
// the crossover: TJ-GT/TJ-SP are O(h), TJ-JP is O(log h).

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "core/verifier.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::core::PolicyNode;

void bench_less_on_chain(benchmark::State& state, PolicyChoice policy) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  auto v = tj::core::make_verifier(policy);
  std::vector<PolicyNode*> chain;
  chain.reserve(depth + 1);
  chain.push_back(v->add_child(nullptr));
  for (std::size_t i = 0; i < depth; ++i) {
    chain.push_back(v->add_child(chain.back()));
  }
  // Query random ancestor/descendant pairs: the worst case walks the
  // whole depth difference.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, depth);
  for (auto _ : state) {
    const bool r = v->permits_join(chain[pick(rng)], chain[pick(rng)]);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(tj::core::to_string(policy)));
  for (PolicyNode* n : chain) v->release(n);
}

void bench_less_shallow_wide(benchmark::State& state, PolicyChoice policy) {
  // The benchmark regime of the paper: depth ≤ 8, wide fan-out. TJ-SP's
  // task-local arrays should shine here.
  const auto width = static_cast<std::size_t>(state.range(0));
  auto v = tj::core::make_verifier(policy);
  std::vector<PolicyNode*> nodes;
  nodes.push_back(v->add_child(nullptr));
  for (std::size_t d = 0; d < 4; ++d) {
    const std::size_t level_base = nodes.size() - 1;
    for (std::size_t i = 0; i < width; ++i) {
      nodes.push_back(v->add_child(nodes[level_base]));
    }
  }
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::size_t> pick(0, nodes.size() - 1);
  for (auto _ : state) {
    const bool r = v->permits_join(nodes[pick(rng)], nodes[pick(rng)]);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(tj::core::to_string(policy)));
  for (PolicyNode* n : nodes) v->release(n);
}

void register_all() {
  for (PolicyChoice p :
       {PolicyChoice::TJ_GT, PolicyChoice::TJ_JP, PolicyChoice::TJ_SP}) {
    const std::string name(tj::core::to_string(p));
    benchmark::RegisterBenchmark(
        ("Ablation/LessOnChainDepth/" + name).c_str(),
        [p](benchmark::State& st) { bench_less_on_chain(st, p); })
        // Cap at 4096: a TJ-SP chain holds O(h²) path words in total.
        ->RangeMultiplier(4)
        ->Range(8, 1 << 12);
    benchmark::RegisterBenchmark(
        ("Ablation/LessShallowWide/" + name).c_str(),
        [p](benchmark::State& st) { bench_less_shallow_wide(st, p); })
        ->Arg(64)
        ->Arg(512);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
