// Runtime-primitive microbenchmarks: the per-operation cost the verifiers
// add to async (fork) and to Future::get on an already-completed task (the
// non-blocking join fast path). This is the micro-level view behind Table
// 2's whole-program overheads.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/api.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::runtime::Config;
using tj::runtime::Future;
using tj::runtime::Runtime;

constexpr PolicyChoice kPolicies[] = {
    PolicyChoice::None,  PolicyChoice::TJ_GT, PolicyChoice::TJ_JP,
    PolicyChoice::TJ_SP, PolicyChoice::KJ_VC, PolicyChoice::KJ_SS,
    PolicyChoice::CycleOnly,
};

void bench_spawn(benchmark::State& state, PolicyChoice p) {
  Runtime rt({.policy = p, .workers = 2});
  rt.root([&state] {
    // Spawn trivial tasks; each iteration measures async() itself. The
    // tasks drain concurrently; root() quiesces afterwards.
    for (auto _ : state) {
      auto f = tj::runtime::async([] {});
      benchmark::DoNotOptimize(f);
    }
  });
  state.SetLabel(std::string(tj::core::to_string(p)));
}

void bench_completed_join(benchmark::State& state, PolicyChoice p) {
  Runtime rt({.policy = p, .workers = 2});
  rt.root([&state] {
    auto f = tj::runtime::async([] { return 1; });
    f.join();  // ensure completion: joins below never block
    for (auto _ : state) {
      benchmark::DoNotOptimize(f.get());
    }
  });
  state.SetLabel(std::string(tj::core::to_string(p)));
}

void bench_sibling_join_chain(benchmark::State& state, PolicyChoice p) {
  // Ten thousand siblings joined in fork order per iteration: the Series
  // pattern, as one number.
  const std::size_t kTasks = 10'000;
  Runtime rt({.policy = p});
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) acc += f.get();
      benchmark::DoNotOptimize(acc);
    }
  });
  state.SetLabel(std::string(tj::core::to_string(p)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

// Watchdog-idle overhead: same fork-all-join-all workload with the stall
// detector enabled but never firing (stall_ms far above any real wait). The
// per-join cost is one mutex-guarded map insert/erase on the *blocking*
// path only; completed-join fast paths pay nothing. Compare against
// RuntimeOps/ForkAllJoinAll10k/tj-sp — the delta should be within noise.
void bench_join_chain_watchdog_idle(benchmark::State& state) {
  const std::size_t kTasks = 10'000;
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.watchdog.enabled = true;
  cfg.watchdog.poll_ms = 50;
  cfg.watchdog.stall_ms = 60'000;  // idle: nothing stalls this long
  Runtime rt(cfg);
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) acc += f.get();
      benchmark::DoNotOptimize(acc);
    }
  });
  state.SetLabel("tj-sp+watchdog-idle");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

// Flight-recorder overhead: the same fork-all-join-all workload with the
// recorder enabled. Each fork/join adds a handful of events (spawn, start,
// verdict, complete, end), each costing one atomic fetch_add + clock read +
// SPSC push. Compare against RuntimeOps/ForkAllJoinAll10k/tj-sp; the ratio
// is the recorder-on overhead factor reported in docs/benchmarks.md. The
// buffer is sized so nothing drops — a dropping run measures less work.
void bench_join_chain_recorder_on(benchmark::State& state) {
  const std::size_t kTasks = 10'000;
  Config cfg;
  cfg.policy = PolicyChoice::TJ_SP;
  cfg.obs.enabled = true;
  cfg.obs.buffer_capacity = std::size_t{1} << 20;
  Runtime rt(cfg);
  std::uint64_t dropped = 0;
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) acc += f.get();
      benchmark::DoNotOptimize(acc);
    }
  });
  dropped = rt.recorder()->events_dropped();
  state.counters["events"] =
      static_cast<double>(rt.recorder()->events_recorded());
  state.counters["dropped"] = static_cast<double>(dropped);
  state.SetLabel(dropped == 0 ? "tj-sp+recorder" : "tj-sp+recorder DROPPED");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

// Async-mode (optimistic verification) hot-path cost. The gate approves
// every join/await immediately — the per-operation policy work is zero by
// construction — so what this column actually measures is the cost of the
// machinery async mode keeps running: the flight recorder events each
// fork/join emits (async implies recorder-on) plus the background detector
// thread consuming them. Compare against ForkAllJoinAll10k/tj-sp (the
// cheapest sound synchronous policy) and /recorder-on (same event traffic,
// no detector): async vs recorder-on isolates the detector's share, and
// async vs tj-sp is the headline "~1.0x" claim. The ring is sized so
// nothing drops — a drop-induced failover would silently downgrade the
// run to synchronous CycleOnly and measure the wrong mode; the `failover`
// counter (and a poisoned label) make that impossible to miss.
tj::runtime::Config async_config() {
  Config cfg;
  cfg.policy = PolicyChoice::Async;
  cfg.obs.buffer_capacity = std::size_t{1} << 20;
  return cfg;
}

void annotate_async(benchmark::State& state, const Runtime& rt,
                    std::string_view label) {
  const auto rs = rt.recovery()->status();
  state.counters["events"] =
      static_cast<double>(rt.recorder()->events_recorded());
  state.counters["dropped"] =
      static_cast<double>(rt.recorder()->events_dropped());
  state.counters["failover"] = rs.detector.failed_over ? 1.0 : 0.0;
  state.counters["recovered"] = static_cast<double>(rs.cycles_recovered);
  state.SetLabel(rs.detector.failed_over ? std::string(label) + " FAILED-OVER"
                                         : std::string(label));
}

void bench_spawn_async(benchmark::State& state) {
  Config cfg = async_config();
  cfg.workers = 2;
  Runtime rt(cfg);
  rt.root([&state] {
    for (auto _ : state) {
      auto f = tj::runtime::async([] {});
      benchmark::DoNotOptimize(f);
    }
  });
  annotate_async(state, rt, "async");
}

void bench_completed_join_async(benchmark::State& state) {
  Config cfg = async_config();
  cfg.workers = 2;
  Runtime rt(cfg);
  rt.root([&state] {
    auto f = tj::runtime::async([] { return 1; });
    f.join();
    for (auto _ : state) {
      benchmark::DoNotOptimize(f.get());
    }
  });
  annotate_async(state, rt, "async");
}

void bench_join_chain_async(benchmark::State& state) {
  const std::size_t kTasks = 10'000;
  Runtime rt(async_config());
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) acc += f.get();
      benchmark::DoNotOptimize(acc);
    }
  });
  annotate_async(state, rt, "async");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

// Governor-idle overhead: the fork-all-join-all workload with the resource
// governor enabled but every budget unlimited, so it polls (every 5 ms) and
// never trips. The steady-state cost has two parts: the ladder verifier's
// extra virtual hop + level/forest tag per node on every policy check, and
// the sampler thread's periodic footprint probe. Compare against
// RuntimeOps/ForkAllJoinAll10k/tj-gt — the ratio is the price of keeping
// the degradation machinery armed.
void bench_join_chain_governor_idle(benchmark::State& state) {
  const std::size_t kTasks = 10'000;
  Config cfg;
  cfg.policy = PolicyChoice::TJ_GT;
  cfg.governor.enabled = true;
  cfg.governor.poll_ms = 5;  // budgets stay 0 = unlimited: never trips
  Runtime rt(cfg);
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) acc += f.get();
      benchmark::DoNotOptimize(acc);
    }
  });
  state.SetLabel("tj-gt+governor-idle");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

// Deadline-join overhead: identical workload, but every join goes through
// get_for() with a deadline that never expires. The completed-join fast
// path is deadline-free; only joins that actually block pay for the timed
// wait (a wait_for loop instead of wait, plus the withdraw-on-timeout
// bookkeeping that never runs here). Compare against
// RuntimeOps/ForkAllJoinAll10k/tj-sp: the delta is what `join_for` costs
// when you use it everywhere as a hang-proofing idiom.
void bench_join_chain_deadline_join(benchmark::State& state) {
  const std::size_t kTasks = 10'000;
  Runtime rt({.policy = PolicyChoice::TJ_SP});
  rt.root([&state, kTasks] {
    for (auto _ : state) {
      std::vector<Future<int>> fs;
      fs.reserve(kTasks);
      for (std::size_t i = 0; i < kTasks; ++i) {
        fs.push_back(tj::runtime::async([] { return 1; }));
      }
      int acc = 0;
      for (const auto& f : fs) {
        auto v = f.get_for(std::chrono::seconds(60));
        acc += v ? *v : 0;
      }
      benchmark::DoNotOptimize(acc);
    }
  });
  state.SetLabel("tj-sp+join_for");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}

void register_all() {
  benchmark::RegisterBenchmark("RuntimeOps/ForkAllJoinAll10k/governor-idle",
                               bench_join_chain_governor_idle)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("RuntimeOps/ForkAllJoinAll10k/join_for",
                               bench_join_chain_deadline_join)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("RuntimeOps/ForkAllJoinAll10k/watchdog-idle",
                               bench_join_chain_watchdog_idle)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("RuntimeOps/ForkAllJoinAll10k/recorder-on",
                               bench_join_chain_recorder_on)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("RuntimeOps/Spawn/async", bench_spawn_async)
      ->Iterations(50000);
  benchmark::RegisterBenchmark("RuntimeOps/CompletedJoin/async",
                               bench_completed_join_async);
  benchmark::RegisterBenchmark("RuntimeOps/ForkAllJoinAll10k/async",
                               bench_join_chain_async)
      ->Iterations(3)
      ->Unit(benchmark::kMillisecond);
  for (PolicyChoice p : kPolicies) {
    const std::string name(tj::core::to_string(p));
    benchmark::RegisterBenchmark(
        ("RuntimeOps/Spawn/" + name).c_str(),
        [p](benchmark::State& st) { bench_spawn(st, p); })
        ->Iterations(50000);
    benchmark::RegisterBenchmark(
        ("RuntimeOps/CompletedJoin/" + name).c_str(),
        [p](benchmark::State& st) { bench_completed_join(st, p); });
    benchmark::RegisterBenchmark(
        ("RuntimeOps/ForkAllJoinAll10k/" + name).c_str(),
        [p](benchmark::State& st) { bench_sibling_join_chain(st, p); })
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  // `--json[=FILE]` is shorthand for Google Benchmark's JSON switches, so CI
  // and the loadgen SLO tooling share one machine-readable flag convention.
  std::vector<char*> args(argv, argv + argc);
  std::string fmt_arg, out_arg, out_fmt_arg;
  for (auto it = args.begin() + 1; it != args.end(); ++it) {
    const std::string_view a = *it;
    if (a == "--json") {
      fmt_arg = "--benchmark_format=json";
      it = args.erase(it);
      args.push_back(fmt_arg.data());
      break;
    }
    if (a.rfind("--json=", 0) == 0) {
      out_arg = "--benchmark_out=" + std::string(a.substr(7));
      out_fmt_arg = "--benchmark_out_format=json";
      it = args.erase(it);
      args.push_back(out_arg.data());
      args.push_back(out_fmt_arg.data());
      break;
    }
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
