// The cost of falling back to cycle detection (Sec. 6 motivation: "because
// the fallback cycle detection is slow, the performance of each verifier can
// be impacted if the policy frequently triggers false positives").
//
// Micro: per-join cost of (a) a policy-approved join, (b) a policy-rejected
// join cleared by the fallback, (c) an Armus-style always-checked join, as a
// function of how many blocked tasks the waits-for graph holds.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/guarded.hpp"

namespace {

using tj::core::FaultMode;
using tj::core::JoinGate;
using tj::core::PolicyChoice;
using tj::core::PolicyNode;

struct Setup {
  std::unique_ptr<tj::core::Verifier> verifier;
  std::unique_ptr<JoinGate> gate;
  std::vector<PolicyNode*> nodes;  // star under a root

  explicit Setup(PolicyChoice p, std::size_t n) {
    verifier = tj::core::make_verifier(p);
    gate = std::make_unique<JoinGate>(
        p, verifier.get(), FaultMode::Fallback);
    if (verifier) {
      nodes.push_back(verifier->add_child(nullptr));
      for (std::size_t i = 1; i < n; ++i) {
        nodes.push_back(verifier->add_child(nodes.front()));
      }
    }
  }

  // Pre-populates `blocked` wait edges forming a long chain so cycle checks
  // have something to walk: task i waits on task i+1, starting at task 2.
  void preblock(std::size_t blocked) {
    for (std::size_t i = 2; i < 2 + blocked; ++i) {
      PolicyNode* a = nodes.empty() ? nullptr : nodes[i];
      PolicyNode* b = nodes.empty() ? nullptr : nodes[i + 1];
      (void)gate->enter_join(i, i + 1, a, b, false);
    }
  }
};

void approved_join(benchmark::State& state) {
  Setup s(PolicyChoice::TJ_SP, 4096);
  for (auto _ : state) {
    // Root joins a child: approved, registers and removes an edge.
    (void)s.gate->enter_join(0, 1, s.nodes[0], s.nodes[1], false);
    s.gate->leave_join(0, 1, s.nodes[0], s.nodes[1], true);
  }
}
BENCHMARK(approved_join);

void rejected_join_cleared_by_fallback(benchmark::State& state) {
  Setup s(PolicyChoice::TJ_SP, 4096);
  s.preblock(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // Child 1 joins child 2: TJ-rejected (1 is the older sibling), the
    // probation cycle check walks the chain of blocked tasks.
    (void)s.gate->enter_join(1, 2, s.nodes[1], s.nodes[2], false);
    s.gate->leave_join(1, 2, s.nodes[1], s.nodes[2], true);
  }
  state.SetLabel("blocked=" + std::to_string(state.range(0)));
}
BENCHMARK(rejected_join_cleared_by_fallback)->Arg(0)->Arg(64)->Arg(1024);

void armus_only_join(benchmark::State& state) {
  Setup s(PolicyChoice::CycleOnly, 4096);
  s.preblock(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // Join the head of the blocked chain so the check walks its length.
    (void)s.gate->enter_join(0, 2, nullptr, nullptr, false);
    s.gate->leave_join(0, 2, nullptr, nullptr, true);
  }
  state.SetLabel("blocked=" + std::to_string(state.range(0)));
}
BENCHMARK(armus_only_join)->Arg(0)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
