// Table 1 (time columns): empirical per-operation cost of Fork (add_child)
// and of the Join check (permits_join / Less) for each verifier, across tree
// shapes. Expected asymptotics:
//
//            KJ-VC     KJ-SS     TJ-GT       TJ-JP       TJ-SP
//   Fork     O(n)      O(1)      O(1)        O(log h)    O(h)
//   Join     O(n)      O(n)      O(h)        O(log h)    O(h)
//
// Chains maximize h (= n); stars minimize it (h = 1), separating the n- and
// h-dependent verifiers.

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "core/verifier.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::core::PolicyNode;
using tj::core::Verifier;

enum class Shape { Chain, Star, Balanced4 };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::Chain:
      return "chain";
    case Shape::Star:
      return "star";
    case Shape::Balanced4:
      return "balanced4";
  }
  return "?";
}

// Builds a tree of `n` tasks with the given shape; returns all nodes.
std::vector<PolicyNode*> build_tree(Verifier& v, Shape shape, std::size_t n) {
  std::vector<PolicyNode*> nodes;
  nodes.reserve(n);
  nodes.push_back(v.add_child(nullptr));
  for (std::size_t i = 1; i < n; ++i) {
    switch (shape) {
      case Shape::Chain:
        nodes.push_back(v.add_child(nodes.back()));
        break;
      case Shape::Star:
        nodes.push_back(v.add_child(nodes.front()));
        break;
      case Shape::Balanced4:
        nodes.push_back(v.add_child(nodes[(i - 1) / 4]));
        break;
    }
  }
  return nodes;
}

void bench_fork(benchmark::State& state, PolicyChoice policy, Shape shape) {
  // Build the tree once, then repeatedly fork (and immediately release) a
  // child at the frontier node — the deep end of a chain, the hub of a star.
  // The release is included in the timing; it is O(state size), the same
  // order as the fork itself, so trends are preserved.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto v = tj::core::make_verifier(policy);
  auto nodes = build_tree(*v, shape, n);
  PolicyNode* frontier = nodes.back();
  for (auto _ : state) {
    PolicyNode* child = v->add_child(frontier);
    benchmark::DoNotOptimize(child);
    v->release(child);
  }
  state.SetLabel(std::string(tj::core::to_string(policy)) + "/" +
                 shape_name(shape));
  for (PolicyNode* node : nodes) v->release(node);
}

void bench_join_check(benchmark::State& state, PolicyChoice policy,
                      Shape shape) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto v = tj::core::make_verifier(policy);
  auto nodes = build_tree(*v, shape, n);
  // For KJ verifiers, teach the root about everything first so the checks
  // exercise real membership queries rather than early misses.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    v->on_join_complete(nodes.front(), nodes[i]);
  }
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (auto _ : state) {
    const bool r = v->permits_join(nodes[pick(rng)], nodes[pick(rng)]);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(tj::core::to_string(policy)) + "/" +
                 shape_name(shape));
  for (PolicyNode* node : nodes) v->release(node);
}

void register_all() {
  constexpr PolicyChoice kPolicies[] = {PolicyChoice::KJ_VC,
                                        PolicyChoice::KJ_SS,
                                        PolicyChoice::TJ_GT,
                                        PolicyChoice::TJ_JP,
                                        PolicyChoice::TJ_SP};
  constexpr Shape kShapes[] = {Shape::Chain, Shape::Star, Shape::Balanced4};
  for (PolicyChoice p : kPolicies) {
    for (Shape s : kShapes) {
      const std::string pname(tj::core::to_string(p));
      benchmark::RegisterBenchmark(
          ("Table1/Fork/" + pname + "/" + shape_name(s)).c_str(),
          [p, s](benchmark::State& st) { bench_fork(st, p, s); })
          ->Arg(256)
          ->Arg(1024)
          ->Arg(4096)
          // Fixed iteration budget: TJ-GT/TJ-JP keep tree nodes alive for
          // the verifier's lifetime, so unbounded iteration counts would
          // grow memory without bound.
          ->Iterations(100000);
      benchmark::RegisterBenchmark(
          ("Table1/JoinCheck/" + pname + "/" + shape_name(s)).c_str(),
          [p, s](benchmark::State& st) { bench_join_check(st, p, s); })
          ->Arg(256)
          ->Arg(1024)
          ->Arg(4096);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
