// Figure 2: mean execution time with a 95% confidence interval per benchmark
// per policy, rendered as ASCII interval plots plus a CSV block for external
// plotting. Same measurement pipeline as Table 2 with more repetitions per
// cell (the paper uses 30 post-warmup runs; default here is 8 to keep the
// default bench sweep quick — pass --reps=30 for the full methodology).
//
// Flags: --size=..., --reps=N, --warmups=N, --apps=a,b,c, --observe (as
// table2).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using tj::core::PolicyChoice;

}  // namespace

int main(int argc, char** argv) {
  tj::harness::RunConfig run;
  run.size = tj::apps::AppSize::Small;
  run.reps = 8;
  run.warmups = 1;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--size=", 0) == 0) {
      const std::string s = arg.substr(7);
      run.size = s == "tiny"     ? tj::apps::AppSize::Tiny
                 : s == "small"  ? tj::apps::AppSize::Small
                 : s == "medium" ? tj::apps::AppSize::Medium
                                 : tj::apps::AppSize::Large;
    } else if (arg.rfind("--reps=", 0) == 0) {
      run.reps = static_cast<unsigned>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--warmups=", 0) == 0) {
      run.warmups = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--apps=", 0) == 0) {
      std::string rest = arg.substr(7);
      std::size_t pos = 0;
      while (pos <= rest.size()) {
        const std::size_t comma = rest.find(',', pos);
        only.push_back(rest.substr(pos, comma - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--observe") {
      run.observe = true;  // flight recorder on in every cell; see runner.hpp
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const PolicyChoice policies[] = {PolicyChoice::KJ_VC, PolicyChoice::KJ_SS,
                                   PolicyChoice::TJ_SP};
  std::vector<tj::harness::BenchmarkRecord> rows;
  for (const tj::apps::AppInfo& app : tj::apps::all_apps()) {
    if (only.empty() ? app.extra
                     : std::find(only.begin(), only.end(), app.name) ==
                           only.end()) {
      continue;  // extras run only when named via --apps
    }
    std::fprintf(stderr, "[fig2] %s (interleaved rounds)...\n",
                 app.name.c_str());
    const tj::harness::BenchmarkRun measured = tj::harness::measure_interleaved(
        app, {policies[0], policies[1], policies[2]}, run);
    tj::harness::BenchmarkRecord rec;
    rec.name = app.name;
    rec.baseline = measured.baseline;
    rec.policies = measured.policies;
    rows.push_back(std::move(rec));
  }

  std::printf("%s\n", tj::harness::render_figure2(rows).c_str());
  std::printf("CSV for external plotting:\n%s\n",
              tj::harness::render_csv(rows).c_str());
  return 0;
}
