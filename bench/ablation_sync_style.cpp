// Sync-style ablation: the same Jacobi stencil synchronised two ways —
// fine-grained futures (each block joins 5 predecessor tasks; verified by
// TJ-SP) vs a global CheckedBarrier over persistent workers (verified by the
// Armus-style resource graph). Relates to the paper's Sec. 2.4 critical-path
// argument: joins express *minimal* dependencies, barriers over-synchronise
// but amortise verification to one check per blocked party per phase.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/jacobi_barrier.hpp"
#include "harness/stats.hpp"
#include "harness/timer.hpp"
#include "runtime/runtime.hpp"

namespace {

using tj::core::PolicyChoice;

struct Cell {
  std::string label;
  tj::harness::Summary time;
  double checksum;
  std::uint64_t tasks;
};

template <typename RunFn>
Cell run_cell(const std::string& label, PolicyChoice policy, unsigned reps,
              RunFn&& run) {
  std::vector<double> times;
  Cell cell;
  cell.label = label;
  for (unsigned i = 0; i < reps + 1; ++i) {
    tj::runtime::Runtime rt({.policy = policy});
    tj::harness::Timer t;
    const auto result = run(rt);
    if (i > 0) times.push_back(t.seconds());  // first rep is warmup
    cell.checksum = result.checksum;
    cell.tasks = result.tasks;
  }
  cell.time = tj::harness::summarize(times);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned reps = 3;
  tj::apps::JacobiParams fparams = tj::apps::JacobiParams::small();
  tj::apps::JacobiBarrierParams bparams = tj::apps::JacobiBarrierParams::small();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<unsigned>(std::atoi(arg.c_str() + 7));
    } else if (arg == "--size=medium") {
      fparams = tj::apps::JacobiParams::medium();
      bparams = tj::apps::JacobiBarrierParams::medium();
    } else if (arg == "--size=tiny") {
      fparams = tj::apps::JacobiParams::tiny();
      bparams = tj::apps::JacobiBarrierParams::tiny();
    }
  }

  std::printf(
      "Sync-style ablation: Jacobi %zux%zu, %zu iterations (mean of %u)\n\n",
      fparams.n, fparams.n, fparams.iterations, reps);
  std::printf("%-34s %10s %10s %10s\n", "configuration", "time[s]", "ci95",
              "tasks");

  std::vector<Cell> cells;
  cells.push_back(run_cell("futures/joins, no policy", PolicyChoice::None,
                           reps, [&](tj::runtime::Runtime& rt) {
                             return tj::apps::run_jacobi(rt, fparams);
                           }));
  cells.push_back(run_cell("futures/joins, TJ-SP", PolicyChoice::TJ_SP, reps,
                           [&](tj::runtime::Runtime& rt) {
                             return tj::apps::run_jacobi(rt, fparams);
                           }));
  cells.push_back(run_cell("barrier workers, no policy", PolicyChoice::None,
                           reps, [&](tj::runtime::Runtime& rt) {
                             return tj::apps::run_jacobi_barrier(rt, bparams);
                           }));
  cells.push_back(run_cell("barrier workers, TJ-SP", PolicyChoice::TJ_SP,
                           reps, [&](tj::runtime::Runtime& rt) {
                             return tj::apps::run_jacobi_barrier(rt, bparams);
                           }));

  bool checksums_agree = true;
  for (const Cell& c : cells) {
    std::printf("%-34s %10.4f %10.4f %10llu\n", c.label.c_str(), c.time.mean,
                c.time.ci95, static_cast<unsigned long long>(c.tasks));
    checksums_agree = checksums_agree &&
                      std::abs(c.checksum - cells[0].checksum) <
                          1e-6 * (1.0 + std::abs(cells[0].checksum));
  }
  std::printf("\nchecksums agree across all configurations: %s\n",
              checksums_agree ? "yes" : "NO");
  return checksums_agree ? 0 : 1;
}
