// Table 1 (space row): measured verifier state for n tasks per tree shape.
// Expected: KJ-VC O(n²) on chains, KJ-SS O(n), TJ-GT O(n), TJ-JP O(n log h),
// TJ-SP O(nh) — so on chains TJ-SP and KJ-VC blow up while stars keep every
// verifier linear.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/verifier.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::core::PolicyNode;
using tj::core::Verifier;

enum class Shape { Chain, Star, Balanced4 };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::Chain:
      return "chain";
    case Shape::Star:
      return "star";
    case Shape::Balanced4:
      return "balanced4";
  }
  return "?";
}

std::size_t bytes_for(PolicyChoice policy, Shape shape, std::size_t n) {
  auto v = tj::core::make_verifier(policy);
  std::vector<PolicyNode*> nodes;
  nodes.reserve(n);
  nodes.push_back(v->add_child(nullptr));
  for (std::size_t i = 1; i < n; ++i) {
    switch (shape) {
      case Shape::Chain:
        nodes.push_back(v->add_child(nodes.back()));
        break;
      case Shape::Star:
        nodes.push_back(v->add_child(nodes.front()));
        break;
      case Shape::Balanced4:
        nodes.push_back(v->add_child(nodes[(i - 1) / 4]));
        break;
    }
  }
  const std::size_t bytes = v->bytes_in_use();
  for (PolicyNode* node : nodes) v->release(node);
  return bytes;
}

}  // namespace

int main() {
  constexpr PolicyChoice kPolicies[] = {PolicyChoice::KJ_VC,
                                        PolicyChoice::KJ_SS,
                                        PolicyChoice::TJ_GT,
                                        PolicyChoice::TJ_JP,
                                        PolicyChoice::TJ_SP};
  constexpr Shape kShapes[] = {Shape::Chain, Shape::Star, Shape::Balanced4};
  // Chains keep the quadratic verifiers (KJ-VC, TJ-SP) affordable; the
  // shallow shapes scale higher to show their linearity.
  auto sizes_for = [](Shape s) {
    switch (s) {
      case Shape::Chain:  // TJ-SP and KJ-VC are quadratic here
        return std::vector<std::size_t>{1 << 10, 1 << 11, 1 << 12};
      case Shape::Balanced4:  // KJ-VC clock widths grow with ancestor ids
        return std::vector<std::size_t>{1 << 12, 1 << 14};
      case Shape::Star:
        return std::vector<std::size_t>{1 << 12, 1 << 14, 1 << 16};
    }
    return std::vector<std::size_t>{1 << 12};
  };

  std::printf("Table 1 (space): verifier state bytes for n tasks\n");
  std::printf("Expected: KJ-VC O(n^2) / KJ-SS O(n) / TJ-GT O(n) / "
              "TJ-JP O(n log h) / TJ-SP O(nh)\n\n");
  std::printf("%-10s %-10s", "shape", "n");
  for (PolicyChoice p : kPolicies) {
    std::printf(" %12s", std::string(tj::core::to_string(p)).c_str());
  }
  std::printf("\n");
  for (Shape s : kShapes) {
    for (std::size_t n : sizes_for(s)) {
      std::printf("%-10s %-10zu", shape_name(s), n);
      for (PolicyChoice p : kPolicies) {
        std::printf(" %12zu", bytes_for(p, s, n));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Per-task growth on chains shows the h-dependence of TJ-SP and "
              "the n-dependence of KJ-VC;\nstars collapse h to 1, where every "
              "verifier is linear.\n");
  return 0;
}
