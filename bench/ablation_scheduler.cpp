// Ablation: cooperative vs blocking work-sharing runtimes (paper footnote 4:
// NQueens had to run on the cooperative runtime because KJ-SS anomalously
// timed out under the blocking one). Runs Strassen and NQueens under TJ-SP
// and the baseline in both scheduler modes.

#include <cstdio>

#include "apps/app_registry.hpp"
#include "harness/runner.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::runtime::SchedulerMode;

}  // namespace

int main(int argc, char** argv) {
  tj::harness::RunConfig run;
  run.size = tj::apps::AppSize::Small;
  run.reps = 3;
  run.warmups = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--size=", 0) == 0) {
      const std::string s = arg.substr(7);
      run.size = s == "tiny"     ? tj::apps::AppSize::Tiny
                 : s == "small"  ? tj::apps::AppSize::Small
                 : s == "medium" ? tj::apps::AppSize::Medium
                                 : tj::apps::AppSize::Large;
    } else if (arg.rfind("--reps=", 0) == 0) {
      run.reps = static_cast<unsigned>(std::atoi(arg.c_str() + 7));
    }
  }

  std::printf("Scheduler ablation (footnote 4): cooperative vs blocking\n\n");
  std::printf("%-14s %-13s %-10s %10s %10s %8s\n", "benchmark", "scheduler",
              "policy", "time[s]", "ci95[s]", "valid");
  bool ok = true;
  for (const char* name : {"strassen", "nqueens", "jacobi"}) {
    const tj::apps::AppInfo* app = tj::apps::find_app(name);
    for (SchedulerMode mode :
         {SchedulerMode::Cooperative, SchedulerMode::Blocking}) {
      run.scheduler = mode;
      for (PolicyChoice p : {PolicyChoice::None, PolicyChoice::TJ_SP}) {
        const tj::harness::Measurement m = tj::harness::measure(*app, p, run);
        ok = ok && m.app_valid;
        std::printf("%-14s %-13s %-10s %10.4f %10.4f %8s\n", name,
                    std::string(to_string(mode)).c_str(),
                    std::string(tj::core::to_string(p)).c_str(), m.time_s.mean,
                    m.time_s.ci95, m.app_valid ? "yes" : "NO");
      }
    }
  }
  return ok ? 0 : 1;
}
