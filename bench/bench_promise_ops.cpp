// Promise-primitive microbenchmarks: the per-operation cost the ownership
// policy (OWP) adds to make/fulfill/get, to re-reading a fulfilled promise,
// to the spawn-owning handoff idiom, and to ordinary joins while a live
// promise keeps the ownership verifier active. Compare each pair of rows
// (unverified vs owp) for the verification overhead.

#include <benchmark/benchmark.h>

#include <string>

#include "runtime/api.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::core::PromisePolicy;
using tj::runtime::Config;
using tj::runtime::Promise;
using tj::runtime::Runtime;

constexpr PromisePolicy kModes[] = {PromisePolicy::Unverified,
                                    PromisePolicy::OWP};

const char* mode_name(PromisePolicy m) {
  return m == PromisePolicy::OWP ? "owp" : "unverified";
}

// Full promise lifecycle in one task: make, fulfill, read. No joins, no
// blocking — isolates the gate/verifier bookkeeping per promise.
void bench_make_fulfill_get(benchmark::State& state, PromisePolicy m) {
  Runtime rt({.policy = PolicyChoice::None, .promise_policy = m, .workers = 2});
  rt.root([&state] {
    for (auto _ : state) {
      auto p = tj::runtime::make_promise<int>();
      p.fulfill(42);
      benchmark::DoNotOptimize(p.get());
    }
  });
  state.SetLabel(mode_name(m));
}

// get() on an already-fulfilled promise: the read fast path every additional
// reader pays (one enter_await check, no blocking).
void bench_fulfilled_get(benchmark::State& state, PromisePolicy m) {
  Runtime rt({.policy = PolicyChoice::None, .promise_policy = m, .workers = 2});
  rt.root([&state] {
    auto p = tj::runtime::make_promise<int>();
    p.fulfill(7);
    for (auto _ : state) {
      benchmark::DoNotOptimize(p.get());
    }
  });
  state.SetLabel(mode_name(m));
}

// The canonical dataflow handoff: make a promise, spawn the task obligated
// to fulfill it (ownership transfer included), block until the value lands.
void bench_owned_handoff(benchmark::State& state, PromisePolicy m) {
  Runtime rt({.policy = PolicyChoice::None, .promise_policy = m, .workers = 2});
  rt.root([&state] {
    for (auto _ : state) {
      auto p = tj::runtime::make_promise<int>();
      tj::runtime::async_owning(p, [p] { p.fulfill(1); });
      benchmark::DoNotOptimize(p.get());
    }
  });
  state.SetLabel(mode_name(m));
}

// Completed-join cost while one unfulfilled promise is live: with OWP the
// gate can no longer skip join registration (a mixed future/promise cycle
// must stay visible), so this is the tax promises put on ordinary joins.
void bench_join_with_live_promise(benchmark::State& state, PromisePolicy m) {
  Runtime rt({.policy = PolicyChoice::None, .promise_policy = m, .workers = 2});
  rt.root([&state] {
    auto p = tj::runtime::make_promise<int>();  // live: verifier active
    auto f = tj::runtime::async([] { return 1; });
    f.join();  // ensure completion: joins below never block
    for (auto _ : state) {
      benchmark::DoNotOptimize(f.get());
    }
    p.fulfill(0);
  });
  state.SetLabel(mode_name(m));
}

void register_all() {
  for (PromisePolicy m : kModes) {
    const std::string name(mode_name(m));
    benchmark::RegisterBenchmark(
        ("PromiseOps/MakeFulfillGet/" + name).c_str(),
        [m](benchmark::State& st) { bench_make_fulfill_get(st, m); });
    benchmark::RegisterBenchmark(
        ("PromiseOps/FulfilledGet/" + name).c_str(),
        [m](benchmark::State& st) { bench_fulfilled_get(st, m); });
    benchmark::RegisterBenchmark(
        ("PromiseOps/OwnedHandoff/" + name).c_str(),
        [m](benchmark::State& st) { bench_owned_handoff(st, m); })
        ->Iterations(20000);
    benchmark::RegisterBenchmark(
        ("PromiseOps/JoinWithLivePromise/" + name).c_str(),
        [m](benchmark::State& st) { bench_join_with_live_promise(st, m); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
