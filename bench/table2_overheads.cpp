// Table 2: runtime and memory overheads of the verifiers on the six paper
// benchmarks (baseline + KJ-VC + KJ-SS + TJ-SP by default), with geometric
// means — the paper's headline result. Also prints the gate statistics that
// explain the NQueens row (KJ violates, TJ does not).
//
// Measurement runs INTERLEAVED: every round executes the baseline and each
// policy once (warmup rounds discarded), so heap/page warm-up is symmetric
// across cells — see docs/benchmarks.md.
//
// Flags:
//   --size=tiny|small|medium|large   workload scale        (default small)
//   --reps=N                         measured reps per cell (default 5)
//   --warmups=N                      discarded warmup runs  (default 1)
//   --apps=a,b,c                     subset of benchmarks
//   --policies=TJ-SP,KJ-VC,...       subset of verifiers (baseline implied)
//   --scheduler=cooperative|blocking
//   --observe                        flight recorder on in EVERY cell (its
//                                    cost is measured; obs_events/obs_dropped
//                                    appear in the CSV)
//   --csv                            also dump machine-readable CSV

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace {

using tj::core::PolicyChoice;

struct Options {
  tj::harness::RunConfig run;
  std::vector<std::string> apps;
  std::vector<PolicyChoice> policies{PolicyChoice::KJ_VC, PolicyChoice::KJ_SS,
                                     PolicyChoice::TJ_SP};
  bool csv = false;
};

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    out.push_back(s.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

PolicyChoice parse_policy(const std::string& name) {
  for (PolicyChoice p :
       {PolicyChoice::TJ_GT, PolicyChoice::TJ_JP, PolicyChoice::TJ_SP,
        PolicyChoice::KJ_VC, PolicyChoice::KJ_SS, PolicyChoice::CycleOnly}) {
    if (name == std::string(tj::core::to_string(p))) return p;
  }
  std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  o.run.size = tj::apps::AppSize::Small;
  o.run.reps = 5;
  o.run.warmups = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--size=")) {
      const std::string s = v;
      o.run.size = s == "tiny"     ? tj::apps::AppSize::Tiny
                   : s == "small"  ? tj::apps::AppSize::Small
                   : s == "medium" ? tj::apps::AppSize::Medium
                                   : tj::apps::AppSize::Large;
    } else if (const char* v2 = value("--reps=")) {
      o.run.reps = static_cast<unsigned>(std::atoi(v2));
    } else if (const char* v3 = value("--warmups=")) {
      o.run.warmups = static_cast<unsigned>(std::atoi(v3));
    } else if (const char* v4 = value("--apps=")) {
      o.apps = split(v4);
    } else if (const char* v5 = value("--policies=")) {
      o.policies.clear();
      for (const std::string& p : split(v5)) o.policies.push_back(parse_policy(p));
    } else if (const char* v6 = value("--scheduler=")) {
      o.run.scheduler = std::string(v6) == "blocking"
                            ? tj::runtime::SchedulerMode::Blocking
                            : tj::runtime::SchedulerMode::Cooperative;
    } else if (arg == "--observe") {
      o.run.observe = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::vector<tj::harness::BenchmarkRecord> rows;
  bool all_valid = true;
  for (const tj::apps::AppInfo& app : tj::apps::all_apps()) {
    if (o.apps.empty() ? app.extra
                       : std::find(o.apps.begin(), o.apps.end(), app.name) ==
                             o.apps.end()) {
      continue;  // extras run only when named via --apps
    }
    std::fprintf(stderr, "[table2] %s (interleaved rounds)...\n",
                 app.name.c_str());
    const tj::harness::BenchmarkRun run =
        tj::harness::measure_interleaved(app, o.policies, o.run);
    tj::harness::BenchmarkRecord rec;
    rec.name = app.name;
    rec.baseline = run.baseline;
    rec.policies = run.policies;
    all_valid = all_valid && rec.baseline.app_valid;
    for (const auto& p : rec.policies) all_valid = all_valid && p.app_valid;
    rows.push_back(std::move(rec));
  }

  std::printf("%s\n", tj::harness::render_table2(rows).c_str());
  std::printf("%s\n", tj::harness::render_gate_stats(rows).c_str());
  if (o.csv) {
    std::printf("%s\n", tj::harness::render_csv(rows).c_str());
  }
  if (!all_valid) {
    std::fprintf(stderr, "SELF-CHECK FAILURE: at least one run invalid\n");
    return 1;
  }
  return 0;
}
