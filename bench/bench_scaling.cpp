// Multicore scaling benchmark: contended fork/join + promise-ping
// throughput, ops/sec vs thread count, one column per policy. This is the
// macro view of the contention observatory — every cell runs with lock
// profiling force-enabled (no recorder needed) and reports the measured
// lock-contention share alongside its throughput, so the scaling curve and
// its serialization ceiling (ROADMAP item 1: the gate/WFG/scheduler locks)
// are read off the same table.
//
// Workload per op, per driver task: make a promise, fork a child that owns
// and fulfills it, await the promise, then join the child. That touches
// every profiled hot site per op — gate.await + gate.witness on the verdict
// paths, wfg.graph on blocking edges, sched.queue on submit/dequeue — with
// `threads` driver tasks hammering them concurrently.
//
// Output: a human table, and with --json[=FILE] the machine-readable
// BENCH_scaling.json artifact (schema "tj-scaling-v1", documented in
// docs/benchmarks.md). The async cell force-fails (poisoned=true, non-zero
// exit) if its detector failed over mid-run: a failed-over run silently
// measures synchronous CycleOnly, which is the wrong column.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/contention.hpp"
#include "runtime/api.hpp"

namespace {

using tj::core::PolicyChoice;
using tj::obs::SiteSnapshot;
using tj::runtime::Config;
using tj::runtime::Runtime;

struct PolicyColumn {
  const char* name;  // column label (doubles as --policies= selector)
  PolicyChoice policy;
};

// "owp" is PolicyChoice::None with the default ownership policy on: it
// isolates what promise verification costs with no join policy at all.
constexpr PolicyColumn kColumns[] = {
    {"tj-gt", PolicyChoice::TJ_GT}, {"tj-jp", PolicyChoice::TJ_JP},
    {"tj-sp", PolicyChoice::TJ_SP}, {"kj-vc", PolicyChoice::KJ_VC},
    {"kj-ss", PolicyChoice::KJ_SS}, {"owp", PolicyChoice::None},
    {"cycle", PolicyChoice::CycleOnly}, {"async", PolicyChoice::Async},
};

struct Cell {
  std::string policy;
  unsigned threads = 0;
  std::uint64_t ops = 0;
  std::uint64_t wall_ns = 0;
  double ops_per_sec = 0;
  // Registry deltas over this cell only (the registry is cumulative).
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t wait_sum_ns = 0;
  double contended_share = 0;   ///< contended / acquisitions
  double lock_wait_share = 0;   ///< wait_sum / (threads * wall) — cpu share
  std::string top_site;         ///< site with the largest wait-ns delta
  std::uint64_t top_site_wait_ns = 0;
  double effective_parallelism = 0;  ///< mean workers Running (this runtime)
  bool poisoned = false;
  std::string poison_reason;
};

std::map<std::string, SiteSnapshot> registry_by_name() {
  std::map<std::string, SiteSnapshot> out;
  for (SiteSnapshot& s : tj::obs::ContentionRegistry::instance().snapshot()) {
    out.emplace(s.name, std::move(s));
  }
  return out;
}

Cell run_cell(const PolicyColumn& col, unsigned threads, std::uint64_t ops) {
  Cell cell;
  cell.policy = col.name;
  cell.threads = threads;
  cell.ops = ops * threads;

  Config cfg;
  cfg.policy = col.policy;
  cfg.workers = threads;
  // Async needs headroom so ring drops cannot trigger a failover mid-cell
  // (which would silently measure the wrong mode).
  if (col.policy == PolicyChoice::Async) {
    cfg.obs.buffer_capacity = std::size_t{1} << 20;
  }

  // Lock/worker profiling on for the whole cell, recorder not required.
  tj::obs::ContentionEnableGuard profiling(true);
  const std::map<std::string, SiteSnapshot> before = registry_by_name();

  Runtime rt(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  rt.root([threads, ops] {
    std::vector<tj::runtime::Future<std::uint64_t>> drivers;
    drivers.reserve(threads);
    for (unsigned d = 0; d < threads; ++d) {
      drivers.push_back(tj::runtime::async([ops] {
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
          auto p = tj::runtime::make_promise<int>();
          auto child = tj::runtime::async_owning(
              p, [p] { p.fulfill(1); return 1; });
          acc += static_cast<std::uint64_t>(p.get());
          acc += static_cast<std::uint64_t>(child.get());
        }
        return acc;
      }));
    }
    std::uint64_t total = 0;
    for (auto& f : drivers) total += f.get();
    return total;
  });
  const auto t1 = std::chrono::steady_clock::now();

  cell.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  cell.ops_per_sec = cell.wall_ns == 0
                         ? 0
                         : static_cast<double>(cell.ops) * 1e9 /
                               static_cast<double>(cell.wall_ns);
  cell.effective_parallelism =
      rt.scheduler().worker_states().totals().effective_parallelism();

  if (col.policy == PolicyChoice::Async && rt.recovery() != nullptr &&
      rt.recovery()->failed_over()) {
    cell.poisoned = true;
    cell.poison_reason = "detector failed over: cell measured a synchronous "
                         "ladder level, not async";
  }

  // Diff the cumulative registry: this cell's contention only.
  for (const auto& [name, after] : registry_by_name()) {
    const auto it = before.find(name);
    const std::uint64_t acq =
        after.acquisitions - (it != before.end() ? it->second.acquisitions : 0);
    const std::uint64_t con =
        after.contended - (it != before.end() ? it->second.contended : 0);
    const std::uint64_t wait =
        after.wait.sum_ns - (it != before.end() ? it->second.wait.sum_ns : 0);
    cell.acquisitions += acq;
    cell.contended += con;
    cell.wait_sum_ns += wait;
    if (wait > cell.top_site_wait_ns) {
      cell.top_site_wait_ns = wait;
      cell.top_site = name;
    }
  }
  if (cell.acquisitions != 0) {
    cell.contended_share = static_cast<double>(cell.contended) /
                           static_cast<double>(cell.acquisitions);
  }
  if (cell.wall_ns != 0) {
    cell.lock_wait_share =
        static_cast<double>(cell.wait_sum_ns) /
        (static_cast<double>(threads) * static_cast<double>(cell.wall_ns));
  }
  return cell;
}

std::string jesc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string to_json(const std::vector<Cell>& cells,
                    const std::vector<unsigned>& threads,
                    const std::vector<std::string>& policies,
                    unsigned hw) {
  std::ostringstream os;
  os << "{\"schema\":\"tj-scaling-v1\",\"hw_concurrency\":" << hw
     << ",\"threads\":[";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    os << (i != 0 ? "," : "") << threads[i];
  }
  os << "],\"policies\":[";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    os << (i != 0 ? "," : "") << '"' << policies[i] << '"';
  }
  os << "],\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) os << ",";
    os << "{\"policy\":\"" << c.policy << "\",\"threads\":" << c.threads
       << ",\"ops\":" << c.ops << ",\"wall_ns\":" << c.wall_ns
       << ",\"ops_per_sec\":" << c.ops_per_sec
       << ",\"acquisitions\":" << c.acquisitions
       << ",\"contended\":" << c.contended
       << ",\"wait_sum_ns\":" << c.wait_sum_ns
       << ",\"contended_share\":" << c.contended_share
       << ",\"lock_wait_share\":" << c.lock_wait_share << ",\"top_site\":\""
       << jesc(c.top_site) << "\",\"top_site_wait_ns\":" << c.top_site_wait_ns
       << ",\"effective_parallelism\":" << c.effective_parallelism
       << ",\"poisoned\":" << (c.poisoned ? "true" : "false")
       << ",\"poison_reason\":\"" << jesc(c.poison_reason) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  unsigned max_threads = hw;
  std::uint64_t ops = 2000;  // per driver task
  bool json = false;
  std::string json_file;
  std::string policy_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-threads=", 0) == 0) {
      max_threads = static_cast<unsigned>(std::atoi(arg.c_str() + 14));
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg.rfind("--policies=", 0) == 0) {
      policy_filter = arg.substr(11);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scaling [--max-threads=N] [--ops=N]\n"
                   "                     [--policies=csv] [--json[=FILE]]\n");
      return 2;
    }
  }
  if (max_threads == 0) max_threads = 1;

  // Thread counts: powers of two up to the cap, plus the cap itself.
  std::vector<unsigned> threads;
  for (unsigned t = 1; t <= max_threads; t *= 2) threads.push_back(t);
  if (threads.back() != max_threads) threads.push_back(max_threads);

  std::vector<PolicyColumn> columns;
  for (const PolicyColumn& col : kColumns) {
    if (!policy_filter.empty() &&
        ("," + policy_filter + ",").find("," + std::string(col.name) + ",") ==
            std::string::npos) {
      continue;
    }
    columns.push_back(col);
  }
  if (columns.empty()) {
    std::fprintf(stderr, "bench_scaling: no policies matched '%s'\n",
                 policy_filter.c_str());
    return 2;
  }

  std::printf("Scaling: fork/join + promise ping, %llu ops/driver, hw=%u\n\n",
              static_cast<unsigned long long>(ops), hw);
  std::printf("%-8s %8s %12s %10s %10s %8s  %s\n", "policy", "threads",
              "ops/sec", "contended", "lock_wait", "eff_par", "top site");

  std::vector<Cell> cells;
  std::vector<std::string> policies;
  bool ok = true;
  for (const PolicyColumn& col : columns) {
    policies.push_back(col.name);
    for (unsigned t : threads) {
      Cell c = run_cell(col, t, ops);
      std::printf("%-8s %8u %12.0f %9.1f%% %9.1f%% %8.2f  %s%s\n",
                  c.policy.c_str(), c.threads, c.ops_per_sec,
                  100.0 * c.contended_share, 100.0 * c.lock_wait_share,
                  c.effective_parallelism, c.top_site.c_str(),
                  c.poisoned ? "  POISONED" : "");
      ok = ok && !c.poisoned;
      cells.push_back(std::move(c));
    }
  }

  if (json) {
    const std::string doc = to_json(cells, threads, policies, hw);
    if (json_file.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out(json_file, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "bench_scaling: cannot write %s\n",
                     json_file.c_str());
        return 2;
      }
      out << doc;
    }
  }
  return ok ? 0 : 1;
}
