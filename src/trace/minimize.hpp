#pragma once
// Trace minimization: given a trace exhibiting a property (e.g. "TJ-valid
// but KJ-invalid", or "contains a deadlock"), shrink it to a locally minimal
// witness while preserving the property — ddmin-style, adapted to traces:
// dropping a fork also drops every action mentioning the forked task, so
// candidates stay structurally well-formed.
//
// Research tooling: the examples and tests use it to boil benchmark-sized
// policy discrepancies down to readable counterexamples.

#include <functional>

#include "trace/trace.hpp"

namespace tj::trace {

using TracePredicate = std::function<bool(const Trace&)>;

/// Returns a trace that still satisfies `keep` and from which no single
/// join can be removed — and no single task (with all its actions) can be
/// removed — without violating it. Pre: keep(t) is true.
Trace minimize_trace(const Trace& t, const TracePredicate& keep);

/// One reduction step helpers (exposed for tests):

/// The trace without action index `i` (joins only; removing forks this way
/// would break well-formedness).
Trace drop_join(const Trace& t, std::size_t index);

/// The trace without task `victim`: its fork and every action it performs
/// or receives are removed. Removing a task with descendants also removes
/// the descendants (their forks would dangle).
Trace drop_task(const Trace& t, TaskId victim);

/// The trace with task `victim` spliced out: its children are re-parented to
/// the victim's own parent (fork actors rewritten in place), and every join
/// mentioning the victim is dropped. The root cannot be spliced (returns t).
Trace splice_task(const Trace& t, TaskId victim);

}  // namespace tj::trace
