#pragma once
// Trace minimization: given a trace exhibiting a property (e.g. "TJ-valid
// but KJ-invalid", or "contains a deadlock"), shrink it to a locally minimal
// witness while preserving the property — ddmin-style, adapted to traces:
// dropping a fork also drops every action mentioning the forked task, and
// dropping a make drops every action on the made promise, so candidates stay
// structurally well-formed.
//
// Research tooling: the examples, tests and the differential fuzzer use it to
// boil benchmark-sized policy discrepancies down to readable counterexamples.

#include <functional>

#include "trace/trace.hpp"

namespace tj::trace {

using TracePredicate = std::function<bool(const Trace&)>;

/// Returns a trace that still satisfies `keep` and from which no single
/// join/await/transfer/fulfill can be removed — and no single task or promise
/// (with all its actions) can be removed — without violating it.
/// Pre: keep(t) is true.
Trace minimize_trace(const Trace& t, const TracePredicate& keep);

/// One reduction step helpers (exposed for tests):

/// The trace without action index `i`. Applies only to joins, awaits,
/// transfers and fulfills; removing inits, forks or makes this way would
/// break well-formedness (use drop_task / drop_promise for those).
Trace drop_action(const Trace& t, std::size_t index);

/// Backwards-compatible alias of drop_action restricted to joins.
Trace drop_join(const Trace& t, std::size_t index);

/// The trace without task `victim`: its fork and every action it performs
/// or receives are removed. Removing a task with descendants also removes
/// the descendants (their forks would dangle), and removing a task removes
/// every promise it made (their makes would dangle).
Trace drop_task(const Trace& t, TaskId victim);

/// The trace without promise `victim`: its make and every fulfill, transfer
/// and await on it are removed.
Trace drop_promise(const Trace& t, PromiseId victim);

/// The trace with task `victim` spliced out: its children are re-parented to
/// the victim's own parent (fork actors rewritten in place), its promise
/// operations are re-attributed to the parent, and every join/await that
/// blocks the victim (or joins on it) is dropped. The root cannot be spliced
/// (returns t).
Trace splice_task(const Trace& t, TaskId victim);

}  // namespace tj::trace
