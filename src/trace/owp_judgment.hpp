#pragma once
// Reference implementation of the Ownership Policy judgment for promises,
// after "An Ownership Policy and Deadlock Detector for Promises" (Voss &
// Sarkar, arXiv:2101.01312). The policy maintains, for every unfulfilled
// promise, exactly one *owning* task — the task responsible for fulfilling
// it — and forbids a task from blocking in a way that (transitively) waits
// on itself through ownership obligations.
//
// The judgment accumulates a history graph H over tasks:
//   - join(a,b)  adds the edge a → b (a's completion waits on b; equivalently
//     a awaits b's implicit completion-promise, owned by b itself);
//   - await(a,p) on a promise p that is unfulfilled at that point adds the
//     edge a → owner(p) (the fulfilment obligation rests with p's owner).
// Edges are *frozen* at their insertion-time owner: later transfers do not
// rewrite history. An await (or join) is OWP-valid iff adding its edge does
// not close a cycle in H, i.e. the obligated task does not already reach the
// waiter. This is deliberately conservative — a historical path may no longer
// be live — which is exactly the shape the runtime's guarded WFG fallback is
// built to refine, the same way it refines TJ's rejections.
//
// Ownership rules (valid-make / valid-fulfill / valid-transfer): a promise is
// owned by its maker; only the current owner may fulfill or transfer it;
// fulfilment is single-assignment. These mirror the follow-up paper's
// requirement that an unfulfilled promise always has a well-defined task
// responsible for it, which is what makes the blocked-on-owned-promise check
// meaningful.

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "trace/trace.hpp"

namespace tj::trace {

class OwpJudgment {
 public:
  OwpJudgment() = default;
  explicit OwpJudgment(const Trace& t) { push_all(t); }

  /// Extends the judgment with one more action. Learning is unconditional
  /// (like the TJ/KJ judgments): even an OWP-invalid action, once present in
  /// the trace, contributes its edges/ownership effects, so prefix replay of
  /// structurally-valid-but-policy-invalid traces stays well defined.
  void push(const Action& a);
  void push_all(const Trace& t);

  /// OWP validity of the *next* action given the trace pushed so far.
  /// valid_await: p is fulfilled, or its owner is a different task that does
  /// not already reach `a` in H (adding a → owner(p) closes no cycle).
  bool valid_await(TaskId a, PromiseId p) const;
  /// valid_join: adding a → b closes no cycle in H (b does not reach a).
  /// Joins are awaits on the target's implicit completion-promise.
  bool valid_join(TaskId a, TaskId b) const;
  /// valid_transfer: a currently owns the unfulfilled promise p.
  bool valid_transfer(TaskId a, TaskId b, PromiseId p) const;
  /// valid_fulfill: a currently owns the unfulfilled promise p.
  bool valid_fulfill(TaskId a, PromiseId p) const;

  /// Current owner of p (nullopt if p is unknown or already fulfilled).
  std::optional<TaskId> owner_of(PromiseId p) const;
  bool fulfilled(PromiseId p) const { return fulfilled_.contains(p); }
  bool has_promise(PromiseId p) const {
    return owner_.contains(p) || fulfilled_.contains(p);
  }

  /// True iff `from` reaches `to` in H (reflexively: reaches(x,x) is true).
  bool reaches(TaskId from, TaskId to) const;

  /// True iff H contains the direct edge from → to (witness chain replay).
  bool has_edge(TaskId from, TaskId to) const {
    const auto it = edges_.find(from);
    return it != edges_.end() && it->second.contains(to);
  }

  std::size_t promise_count() const {
    return owner_.size() + fulfilled_.size();
  }

 private:
  std::unordered_map<PromiseId, TaskId> owner_;  // unfulfilled promises only
  std::unordered_set<PromiseId> fulfilled_;
  std::unordered_map<TaskId, std::unordered_set<TaskId>> edges_;  // H
};

}  // namespace tj::trace
