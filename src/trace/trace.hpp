#pragma once
// A trace is a sequence of actions (Definition 3.1). This type also caches
// the task set and offers convenience constructors used throughout the tests
// and generators.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/action.hpp"

namespace tj::trace {

class Trace {
 public:
  Trace() = default;
  Trace(std::initializer_list<Action> actions);
  explicit Trace(std::vector<Action> actions);

  /// Appends an action; returns *this for fluent building.
  Trace& push(const Action& a);
  Trace& push_init(TaskId a) { return push(init(a)); }
  Trace& push_fork(TaskId a, TaskId b) { return push(fork(a, b)); }
  Trace& push_join(TaskId a, TaskId b) { return push(join(a, b)); }
  Trace& push_make(TaskId a, PromiseId p) { return push(make(a, p)); }
  Trace& push_fulfill(TaskId a, PromiseId p) { return push(fulfill(a, p)); }
  Trace& push_transfer(TaskId a, TaskId b, PromiseId p) {
    return push(transfer(a, b, p));
  }
  Trace& push_await(TaskId a, PromiseId p) { return push(await(a, p)); }

  /// Removes the last action (no-op on an empty trace).
  void pop();

  const std::vector<Action>& actions() const { return actions_; }
  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const Action& operator[](std::size_t i) const { return actions_[i]; }

  /// All task ids mentioned as actor or (fork) target, in first-mention order.
  /// Promise ids never appear here — they live in their own id space.
  std::vector<TaskId> tasks() const;

  /// All promise ids mentioned by promise actions, in first-mention order.
  std::vector<PromiseId> promises() const;

  /// Number of fork actions (== number of non-root tasks in a valid trace).
  std::size_t fork_count() const;

  /// Number of join actions.
  std::size_t join_count() const;

  /// Number of make actions (== number of promises in a valid trace).
  std::size_t make_count() const;

  /// Number of await actions.
  std::size_t await_count() const;

  /// Trace concatenation t1; t2.
  friend Trace operator+(const Trace& t1, const Trace& t2);

  /// A prefix of the first n actions.
  Trace prefix(std::size_t n) const;

  std::string to_string() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<Action> actions_;
};

std::ostream& operator<<(std::ostream& os, const Trace& t);

}  // namespace tj::trace
