#pragma once
// The fork tree T of a trace (Definition 3.12), with the extended lowest
// common ancestor lca+ (Definition 3.14) and the preorder decision procedure
// of Theorem 3.15. This is the *offline reference*: the online algorithms in
// src/core implement the same queries incrementally and concurrently.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace tj::trace {

/// Outcome of lca+(a,b) per Definition 3.14.
enum class LcaPlusKind : std::uint8_t {
  AncPlus,  ///< a is a proper ancestor of b
  DecStar,  ///< a is a descendant of, or equal to, b
  Sib,      ///< siblings a',b' (ancestors of a,b resp.) under the LCA
};

struct LcaPlus {
  LcaPlusKind kind;
  /// For Sib: the sibling ancestors of a and b. Unused otherwise (kNoTask).
  TaskId a_side = kNoTask;
  TaskId b_side = kNoTask;
};

/// Immutable fork tree built from the fork actions of a trace.
/// Requires the trace to satisfy valid-init / valid-fork structure
/// (checked; throws std::invalid_argument otherwise).
class ForkTree {
 public:
  explicit ForkTree(const Trace& t);

  std::size_t task_count() const { return parent_.size(); }
  TaskId root() const { return root_; }
  bool contains(TaskId a) const { return a < parent_.size() && known_[a]; }

  /// Parent of a (Definition 3.7); kNoTask for the root.
  TaskId parent(TaskId a) const { return parent_[a]; }
  /// Local child index I(a): position among siblings in fork order (Def 3.12).
  std::uint32_t child_index(TaskId a) const { return index_[a]; }
  std::uint32_t depth(TaskId a) const { return depth_[a]; }
  const std::vector<TaskId>& children(TaskId a) const { return children_[a]; }

  /// True iff a is a proper ancestor of b (Definition 3.7).
  bool is_ancestor(TaskId a, TaskId b) const;

  /// Extended lowest common ancestor (Definition 3.14).
  LcaPlus lca_plus(TaskId a, TaskId b) const;

  /// Traditional lowest common ancestor.
  TaskId lca(TaskId a, TaskId b) const;

  /// The preorder decision procedure of Theorem 3.15: a <T b.
  bool preorder_less(TaskId a, TaskId b) const;

  /// The full preorder traversal sequence (root first). By Theorem 3.17 this
  /// linearizes the TJ join-permission total order.
  std::vector<TaskId> preorder() const;

 private:
  TaskId root_ = kNoTask;
  std::vector<TaskId> parent_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::vector<TaskId>> children_;
  std::vector<bool> known_;
};

}  // namespace tj::trace
