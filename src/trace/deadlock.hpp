#pragma once
// Deadlock per Definition 3.9: a trace contains a deadlock if there are tasks
// a0..an with join(an,a0) and join(ai,ai+1) for all i < n — i.e. the directed
// graph whose edges are the trace's join actions contains a cycle
// (including self-loops, the n = 0 case).
//
// Extended for promises (Voss & Sarkar, arXiv:2101.01312): an await(a,p) on a
// promise that is *unfulfilled at that point of the trace* contributes the
// edge a → owner(p), with the owner frozen at await time — the obligated task
// is the one that must make progress for `a` to unblock. Awaits on already-
// fulfilled promises never block and contribute nothing. A self-edge
// (awaiting a promise you own) is a deadlock of its own, the n = 0 case.

#include <optional>
#include <vector>

#include "trace/trace.hpp"

namespace tj::trace {

/// Returns a witness cycle (task sequence a0..an as in Def. 3.9, extended
/// with ownership-obligation edges for awaits) if the trace's blocking
/// actions form a cycle, std::nullopt otherwise.
std::optional<std::vector<TaskId>> find_deadlock_cycle(const Trace& t);

inline bool contains_deadlock(const Trace& t) {
  return find_deadlock_cycle(t).has_value();
}

}  // namespace tj::trace
