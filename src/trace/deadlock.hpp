#pragma once
// Deadlock per Definition 3.9: a trace contains a deadlock if there are tasks
// a0..an with join(an,a0) and join(ai,ai+1) for all i < n — i.e. the directed
// graph whose edges are the trace's join actions contains a cycle
// (including self-loops, the n = 0 case).

#include <optional>
#include <vector>

#include "trace/trace.hpp"

namespace tj::trace {

/// Returns a witness cycle (task sequence a0..an as in Def. 3.9) if the
/// trace's join actions form a cycle, std::nullopt otherwise.
std::optional<std::vector<TaskId>> find_deadlock_cycle(const Trace& t);

inline bool contains_deadlock(const Trace& t) {
  return find_deadlock_cycle(t).has_value();
}

}  // namespace tj::trace
