#include "trace/minimize.hpp"

#include <unordered_set>

namespace tj::trace {

namespace {

constexpr bool droppable(ActionKind k) {
  return k == ActionKind::Join || k == ActionKind::Await ||
         k == ActionKind::Transfer || k == ActionKind::Fulfill;
}

}  // namespace

Trace drop_action(const Trace& t, std::size_t index) {
  Trace out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == index && droppable(t[i].kind)) continue;
    out.push(t[i]);
  }
  return out;
}

Trace drop_join(const Trace& t, std::size_t index) {
  if (index < t.size() && t[index].kind != ActionKind::Join) return t;
  return drop_action(t, index);
}

Trace drop_task(const Trace& t, TaskId victim) {
  // Collect the victim's whole subtree: descendants' forks would dangle.
  std::unordered_set<TaskId> doomed{victim};
  for (const Action& a : t.actions()) {
    if (a.kind == ActionKind::Fork && doomed.contains(a.actor)) {
      doomed.insert(a.target);
    }
  }
  // Promises made by doomed tasks lose their make: doom them too.
  std::unordered_set<PromiseId> doomed_promises;
  for (const Action& a : t.actions()) {
    if (a.kind == ActionKind::Make && doomed.contains(a.actor)) {
      doomed_promises.insert(a.promise);
    }
  }
  Trace out;
  for (const Action& a : t.actions()) {
    if (doomed.contains(a.actor)) continue;
    if ((a.kind == ActionKind::Fork || a.kind == ActionKind::Join ||
         a.kind == ActionKind::Transfer) &&
        doomed.contains(a.target)) {
      continue;
    }
    if (a.promise != kNoPromise && doomed_promises.contains(a.promise)) {
      continue;
    }
    out.push(a);
  }
  return out;
}

Trace drop_promise(const Trace& t, PromiseId victim) {
  Trace out;
  for (const Action& a : t.actions()) {
    if (is_promise_action(a.kind) && a.promise == victim) continue;
    out.push(a);
  }
  return out;
}

Trace splice_task(const Trace& t, TaskId victim) {
  // Locate the victim's parent; the root (or an unknown task) is unsplicable.
  TaskId parent = kNoTask;
  for (const Action& a : t.actions()) {
    if (a.kind == ActionKind::Fork && a.target == victim) {
      parent = a.actor;
      break;
    }
  }
  if (parent == kNoTask) return t;
  Trace out;
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case ActionKind::Init:
        out.push(a);
        break;
      case ActionKind::Fork:
        if (a.target == victim) break;  // the victim's own fork disappears
        if (a.actor == victim) {
          out.push(fork(parent, a.target));  // re-parent the children
        } else {
          out.push(a);
        }
        break;
      case ActionKind::Join:
        if (a.actor != victim && a.target != victim) out.push(a);
        break;
      case ActionKind::Make:
        // Re-attribute the victim's promises to the parent so they survive.
        out.push(a.actor == victim ? make(parent, a.promise) : a);
        break;
      case ActionKind::Fulfill:
        out.push(a.actor == victim ? fulfill(parent, a.promise) : a);
        break;
      case ActionKind::Transfer: {
        const TaskId from = a.actor == victim ? parent : a.actor;
        const TaskId to = a.target == victim ? parent : a.target;
        if (from == to) break;  // a self-transfer says nothing; drop it
        out.push(transfer(from, to, a.promise));
        break;
      }
      case ActionKind::Await:
        // The victim's blocking disappears with it (like its joins).
        if (a.actor != victim) out.push(a);
        break;
    }
  }
  return out;
}

Trace minimize_trace(const Trace& t, const TracePredicate& keep) {
  Trace current = t;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pass 1: drop joins/awaits/transfers/fulfills, last-to-first (later
    // actions depend on nothing after them).
    for (std::size_t i = current.size(); i-- > 0;) {
      if (!droppable(current[i].kind)) continue;
      Trace candidate = drop_action(current, i);
      if (keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
    // Pass 2: drop whole promises (make + every action on them).
    for (PromiseId p : current.promises()) {
      Trace candidate = drop_promise(current, p);
      if (candidate.size() != current.size() && keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
    // Pass 3: drop whole tasks (never the root).
    for (TaskId task : current.tasks()) {
      if (current.empty()) break;
      if (current[0].kind == ActionKind::Init && task == current[0].actor) {
        continue;
      }
      Trace candidate = drop_task(current, task);
      if (candidate.size() != current.size() && keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
    // Pass 4: splice single tasks out (collapses chains a drop would sever).
    for (TaskId task : current.tasks()) {
      Trace candidate = splice_task(current, task);
      if (candidate != current && keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
  }
  return current;
}

}  // namespace tj::trace
