#include "trace/minimize.hpp"

#include <unordered_set>

namespace tj::trace {

Trace drop_join(const Trace& t, std::size_t index) {
  Trace out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == index && t[i].kind == ActionKind::Join) continue;
    out.push(t[i]);
  }
  return out;
}

Trace drop_task(const Trace& t, TaskId victim) {
  // Collect the victim's whole subtree: descendants' forks would dangle.
  std::unordered_set<TaskId> doomed{victim};
  for (const Action& a : t.actions()) {
    if (a.kind == ActionKind::Fork && doomed.contains(a.actor)) {
      doomed.insert(a.target);
    }
  }
  Trace out;
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case ActionKind::Init:
        if (!doomed.contains(a.actor)) out.push(a);
        break;
      case ActionKind::Fork:
        if (!doomed.contains(a.actor) && !doomed.contains(a.target)) {
          out.push(a);
        }
        break;
      case ActionKind::Join:
        if (!doomed.contains(a.actor) && !doomed.contains(a.target)) {
          out.push(a);
        }
        break;
    }
  }
  return out;
}

Trace splice_task(const Trace& t, TaskId victim) {
  // Locate the victim's parent; the root (or an unknown task) is unsplicable.
  TaskId parent = kNoTask;
  for (const Action& a : t.actions()) {
    if (a.kind == ActionKind::Fork && a.target == victim) {
      parent = a.actor;
      break;
    }
  }
  if (parent == kNoTask) return t;
  Trace out;
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case ActionKind::Init:
        out.push(a);
        break;
      case ActionKind::Fork:
        if (a.target == victim) break;  // the victim's own fork disappears
        if (a.actor == victim) {
          out.push(fork(parent, a.target));  // re-parent the children
        } else {
          out.push(a);
        }
        break;
      case ActionKind::Join:
        if (a.actor != victim && a.target != victim) out.push(a);
        break;
    }
  }
  return out;
}

Trace minimize_trace(const Trace& t, const TracePredicate& keep) {
  Trace current = t;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pass 1: drop joins, last-to-first (later joins depend on nothing).
    for (std::size_t i = current.size(); i-- > 0;) {
      if (current[i].kind != ActionKind::Join) continue;
      Trace candidate = drop_join(current, i);
      if (keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
    // Pass 2: drop whole tasks (never the root).
    for (TaskId task : current.tasks()) {
      if (current.empty()) break;
      if (current[0].kind == ActionKind::Init && task == current[0].actor) {
        continue;
      }
      Trace candidate = drop_task(current, task);
      if (candidate.size() != current.size() && keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
    // Pass 3: splice single tasks out (collapses chains a drop would sever).
    for (TaskId task : current.tasks()) {
      Trace candidate = splice_task(current, task);
      if (candidate.size() != current.size() && keep(candidate)) {
        current = std::move(candidate);
        progressed = true;
      }
    }
  }
  return current;
}

}  // namespace tj::trace
