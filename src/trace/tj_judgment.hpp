#pragma once
// Reference implementation of the Transitive Joins judgment t ⊢ a < b
// (Definition 3.3) by direct incremental closure of the inference rules
// TJ-left, TJ-right, TJ-mono. Quadratic in the number of tasks; intended for
// property tests and cross-validation against the O(·) online algorithms.

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace tj::trace {

class TjJudgment {
 public:
  TjJudgment() = default;
  explicit TjJudgment(const Trace& t) { push_all(t); }

  /// Extends the judgment with one more action.
  /// Only fork actions change the relation (TJ has no join rule).
  void push(const Action& a);
  void push_all(const Trace& t);

  /// t ⊢ a < b for the trace pushed so far.
  bool less(TaskId a, TaskId b) const;

  /// t ⊢ a ≤ b, i.e. a = b or a < b.
  bool less_eq(TaskId a, TaskId b) const { return a == b || less(a, b); }

  std::size_t task_count() const { return tasks_; }
  bool knows_task(TaskId a) const { return a < known_.size() && known_[a]; }

 private:
  void ensure(TaskId a);

  // less_[a][b] == true iff a < b has been derived.
  std::vector<std::vector<bool>> less_;
  std::vector<bool> known_;
  std::size_t tasks_ = 0;
};

}  // namespace tj::trace
