#include "trace/euler_lca.hpp"

#include <algorithm>
#include <stdexcept>

namespace tj::trace {

EulerLca::EulerLca(const ForkTree& tree) : tree_(tree) {
  const std::size_t n = tree.task_count();
  first_.assign(n, 0);

  // Iterative Euler tour: push the node every time the walk visits it.
  tour_.reserve(2 * n);
  depth_at_.reserve(2 * n);
  struct Frame {
    TaskId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{tree.root()}};
  first_[tree.root()] = 0;
  tour_.push_back(tree.root());
  depth_at_.push_back(tree.depth(tree.root()));
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = tree.children(f.node);
    if (f.next_child >= kids.size()) {
      stack.pop_back();
      if (!stack.empty()) {
        tour_.push_back(stack.back().node);
        depth_at_.push_back(tree.depth(stack.back().node));
      }
      continue;
    }
    const TaskId child = kids[f.next_child++];
    first_[child] = static_cast<std::uint32_t>(tour_.size());
    tour_.push_back(child);
    depth_at_.push_back(tree.depth(child));
    stack.push_back({child});
  }

  // Sparse table over tour positions; ties prefer the RIGHT position so a
  // range minimum is the LAST occurrence of the LCA in the range — which
  // makes tour[argmin + 1] the LCA's child toward the range's right end.
  const std::size_t m = tour_.size();
  log2_.assign(m + 1, 0);
  for (std::size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;
  const std::uint32_t levels = log2_[m] + 1;
  table_.assign(levels, std::vector<std::uint32_t>(m));
  for (std::size_t i = 0; i < m; ++i) {
    table_[0][i] = static_cast<std::uint32_t>(i);
  }
  for (std::uint32_t k = 1; k < levels; ++k) {
    const std::size_t half = 1ull << (k - 1);
    for (std::size_t i = 0; i + (1ull << k) <= m; ++i) {
      table_[k][i] = min_pos(table_[k - 1][i], table_[k - 1][i + half]);
    }
  }
}

std::uint32_t EulerLca::range_min(std::uint32_t l, std::uint32_t r) const {
  if (l > r) std::swap(l, r);
  const std::uint32_t k = log2_[r - l + 1];
  return min_pos(table_[k][l], table_[k][r + 1 - (1u << k)]);
}

TaskId EulerLca::lca(TaskId a, TaskId b) const {
  if (!tree_.contains(a) || !tree_.contains(b)) {
    throw std::invalid_argument("EulerLca: unknown task");
  }
  return tour_[range_min(first_[a], first_[b])];
}

TaskId EulerLca::child_toward(TaskId anc, TaskId v) const {
  // Rightmost occurrence of `anc` in [first(anc), first(v)]: the next tour
  // entry is the child of anc whose subtree holds v.
  const std::uint32_t pos = range_min(first_[anc], first_[v]);
  return tour_[pos + 1];
}

LcaPlus EulerLca::lca_plus(TaskId a, TaskId b) const {
  const TaskId l = lca(a, b);
  if (a == b || l == b) return {LcaPlusKind::DecStar};
  if (l == a) return {LcaPlusKind::AncPlus};
  return {LcaPlusKind::Sib, child_toward(l, a), child_toward(l, b)};
}

bool EulerLca::preorder_less(TaskId a, TaskId b) const {
  const LcaPlus r = lca_plus(a, b);
  switch (r.kind) {
    case LcaPlusKind::AncPlus:
      return true;
    case LcaPlusKind::DecStar:
      return false;
    case LcaPlusKind::Sib:
      return tree_.child_index(r.a_side) > tree_.child_index(r.b_side);
  }
  return false;
}

}  // namespace tj::trace
