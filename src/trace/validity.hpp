#pragma once
// Trace validity per Definition 3.2 (valid-init / valid-fork / valid-join-R),
// instantiated with a choice of join-permission relation R: the structural
// relation (any join between existing tasks), the TJ relation < (Def. 3.4),
// or the KJ relation ≺ (Def. 4.2).

#include <cstddef>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace tj::trace {

enum class PolicyKind : std::uint8_t {
  Structural,  ///< R relates all pairs of existing tasks (shape checks only)
  TJ,          ///< Transitive Joins: R_t(a,b) := t ⊢ a < b
  KJ,          ///< Known Joins: R_t(a,b) := t ⊢ a ≺ b
  OWP,         ///< Ownership Policy for promises (Voss & Sarkar 2021):
               ///< joins/awaits must not close a cycle in the obligation
               ///< history; fulfill/transfer restricted to the owner
};

std::string to_string(PolicyKind k);

struct Violation {
  std::size_t index;   ///< position of the offending action in the trace
  Action action;       ///< the offending action
  std::string reason;  ///< human-readable rule that failed
};

struct ValidityResult {
  bool valid = true;
  std::optional<Violation> violation;

  explicit operator bool() const { return valid; }
};

/// Checks the full trace. The first violating action (if any) is reported.
ValidityResult check_valid(const Trace& t, PolicyKind policy);

/// Convenience wrappers.
inline bool is_tj_valid(const Trace& t) {
  return check_valid(t, PolicyKind::TJ).valid;
}
inline bool is_kj_valid(const Trace& t) {
  return check_valid(t, PolicyKind::KJ).valid;
}
inline bool is_structurally_valid(const Trace& t) {
  return check_valid(t, PolicyKind::Structural).valid;
}
inline bool is_owp_valid(const Trace& t) {
  return check_valid(t, PolicyKind::OWP).valid;
}

}  // namespace tj::trace
