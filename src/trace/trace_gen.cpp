#include "trace/trace_gen.hpp"

#include <algorithm>
#include <vector>

#include "trace/kj_judgment.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/tj_judgment.hpp"

namespace tj::trace {

Trace chain_trace(std::uint32_t n_tasks) {
  Trace t;
  t.push_init(0);
  for (TaskId i = 1; i < n_tasks; ++i) t.push_fork(i - 1, i);
  return t;
}

Trace star_trace(std::uint32_t n_tasks) {
  Trace t;
  t.push_init(0);
  for (TaskId i = 1; i < n_tasks; ++i) t.push_fork(0, i);
  return t;
}

Trace balanced_tree_trace(std::uint32_t arity, std::uint32_t depth) {
  Trace t;
  t.push_init(0);
  TaskId next = 1;
  // Breadth-first: level d holds arity^d tasks.
  std::vector<TaskId> level{0};
  for (std::uint32_t d = 0; d < depth; ++d) {
    std::vector<TaskId> next_level;
    next_level.reserve(level.size() * arity);
    for (TaskId p : level) {
      for (std::uint32_t c = 0; c < arity; ++c) {
        t.push_fork(p, next);
        next_level.push_back(next);
        ++next;
      }
    }
    level = std::move(next_level);
  }
  return t;
}

namespace {

// Shared fork-schedule: decides which existing task forks each new task.
std::vector<TaskId> fork_parents(std::uint32_t n_tasks, Rng& rng,
                                 double depth_bias) {
  std::vector<TaskId> parents(n_tasks, kNoTask);
  std::bernoulli_distribution deep(depth_bias);
  for (TaskId b = 1; b < n_tasks; ++b) {
    if (b == 1 || deep(rng)) {
      parents[b] = b - 1;  // most recently created
    } else {
      parents[b] = std::uniform_int_distribution<TaskId>(0, b - 1)(rng);
    }
  }
  return parents;
}

// Interleaves forks with joins drawn by `pick_join`, which returns false when
// no join is currently possible. `on_action` observes every emitted action so
// callers can keep incremental judgments in sync.
template <typename PickJoin, typename OnAction>
Trace interleaved_trace(std::uint32_t n_tasks, std::uint32_t n_joins, Rng& rng,
                        double depth_bias, PickJoin&& pick_join,
                        OnAction&& on_action) {
  Trace t;
  auto emit = [&](const Action& a) {
    t.push(a);
    on_action(a);
  };
  emit(init(0));
  const std::vector<TaskId> parents = fork_parents(n_tasks, rng, depth_bias);
  TaskId next_fork = 1;
  std::uint32_t joins_left = n_joins;
  // Random interleave: at each step flip between fork and join weighted by
  // how many of each remain.
  while (next_fork < n_tasks || joins_left > 0) {
    const std::uint64_t forks_rem = n_tasks - next_fork;
    const std::uint64_t total = forks_rem + joins_left;
    const bool do_fork =
        forks_rem > 0 &&
        (joins_left == 0 ||
         std::uniform_int_distribution<std::uint64_t>(0, total - 1)(rng) <
             forks_rem);
    if (do_fork) {
      emit(fork(parents[next_fork], next_fork));
      ++next_fork;
    } else {
      Action j = join(0, 0);
      if (pick_join(next_fork, j)) {
        emit(j);
        --joins_left;
      } else if (forks_rem > 0) {
        emit(fork(parents[next_fork], next_fork));
        ++next_fork;
      } else {
        break;  // no joins possible and no forks left
      }
    }
  }
  return t;
}

}  // namespace

Trace random_tree_trace(std::uint32_t n_tasks, std::uint64_t seed,
                        double depth_bias) {
  Rng rng(seed);
  Trace t;
  t.push_init(0);
  const std::vector<TaskId> parents = fork_parents(n_tasks, rng, depth_bias);
  for (TaskId b = 1; b < n_tasks; ++b) t.push_fork(parents[b], b);
  return t;
}

Trace random_tj_valid_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                            std::uint64_t seed, double depth_bias) {
  Rng rng(seed);
  TjJudgment tj;
  auto pick_join = [&](TaskId created, Action& out) {
    if (created < 2) return false;
    // < is a total order over created tasks, so a uniformly random ordered
    // pair is TJ-valid with probability 1/2; orient it by the judgment.
    std::uniform_int_distribution<TaskId> pick(0, created - 1);
    for (int tries = 0; tries < 16; ++tries) {
      const TaskId a = pick(rng);
      const TaskId b = pick(rng);
      if (a == b) continue;
      if (tj.less(a, b)) {
        out = join(a, b);
        return true;
      }
      if (tj.less(b, a)) {
        out = join(b, a);
        return true;
      }
    }
    return false;
  };
  return interleaved_trace(n_tasks, n_joins, rng, depth_bias, pick_join,
                           [&](const Action& a) { tj.push(a); });
}

Trace random_kj_valid_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                            std::uint64_t seed, double depth_bias) {
  Rng rng(seed);
  KjJudgment kj;
  auto pick_join = [&](TaskId created, Action& out) {
    if (created < 2) return false;
    std::uniform_int_distribution<TaskId> pick(0, created - 1);
    for (int tries = 0; tries < 16; ++tries) {
      const TaskId a = pick(rng);
      const auto ks = kj.knowledge_of(a);
      if (ks.empty()) continue;
      const TaskId b =
          ks[std::uniform_int_distribution<std::size_t>(0, ks.size() - 1)(rng)];
      out = join(a, b);
      return true;
    }
    return false;
  };
  return interleaved_trace(n_tasks, n_joins, rng, depth_bias, pick_join,
                           [&](const Action& a) { kj.push(a); });
}

Trace random_structural_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                              std::uint64_t seed, double depth_bias) {
  Rng rng(seed);
  auto pick_join = [&](TaskId created, Action& out) {
    if (created < 2) return false;
    std::uniform_int_distribution<TaskId> pick(0, created - 1);
    const TaskId a = pick(rng);
    TaskId b = pick(rng);
    if (a == b) b = (b + 1) % created;
    out = join(a, b);
    return true;
  };
  return interleaved_trace(n_tasks, n_joins, rng, depth_bias, pick_join,
                           [](const Action&) {});
}

namespace {

// Shared skeleton of the two promise-trace generators: interleaves forks,
// makes and `n_ops` promise/join operations, weighted by how many of each
// remain. `valid_only` restricts every operation to what the ownership
// judgment permits at that point.
Trace promise_trace_impl(std::uint32_t n_tasks, std::uint32_t n_promises,
                         std::uint32_t n_ops, Rng& rng, double depth_bias,
                         bool valid_only) {
  Trace t;
  OwpJudgment owp;
  auto emit = [&](const Action& a) {
    t.push(a);
    owp.push(a);
  };
  emit(init(0));
  if (n_tasks == 0) n_tasks = 1;
  const std::vector<TaskId> parents = fork_parents(n_tasks, rng, depth_bias);
  TaskId next_fork = 1;
  PromiseId next_make = 0;
  std::vector<PromiseId> unfulfilled;
  std::uint32_t ops_left = n_ops;

  auto pick_task = [&] {
    return std::uniform_int_distribution<TaskId>(0, next_fork - 1)(rng);
  };
  auto pick_unfulfilled = [&] {
    return unfulfilled[std::uniform_int_distribution<std::size_t>(
        0, unfulfilled.size() - 1)(rng)];
  };
  auto mark_fulfilled = [&](PromiseId p) {
    unfulfilled.erase(std::find(unfulfilled.begin(), unfulfilled.end(), p));
  };

  // Emits one promise/join operation; false if none is currently possible.
  auto emit_op = [&]() -> bool {
    // Candidate kinds this round, feasibility-filtered.
    ActionKind kinds[4];
    std::size_t n_kinds = 0;
    if (next_make > 0) kinds[n_kinds++] = ActionKind::Await;
    if (!unfulfilled.empty()) {
      kinds[n_kinds++] = ActionKind::Fulfill;
      if (next_fork > 1) kinds[n_kinds++] = ActionKind::Transfer;
    }
    if (next_fork > 1) kinds[n_kinds++] = ActionKind::Join;
    if (n_kinds == 0) return false;
    for (int tries = 0; tries < 16; ++tries) {
      const ActionKind k =
          kinds[std::uniform_int_distribution<std::size_t>(0, n_kinds - 1)(
              rng)];
      switch (k) {
        case ActionKind::Await: {
          const TaskId a = pick_task();
          const PromiseId p =
              std::uniform_int_distribution<PromiseId>(0, next_make - 1)(rng);
          if (valid_only && !owp.valid_await(a, p)) break;
          emit(await(a, p));
          return true;
        }
        case ActionKind::Fulfill: {
          const PromiseId p = pick_unfulfilled();
          const TaskId a = valid_only ? *owp.owner_of(p) : pick_task();
          emit(fulfill(a, p));
          mark_fulfilled(p);
          return true;
        }
        case ActionKind::Transfer: {
          const PromiseId p = pick_unfulfilled();
          const TaskId a = valid_only ? *owp.owner_of(p) : pick_task();
          const TaskId b = pick_task();
          if (a == b) break;
          emit(transfer(a, b, p));
          return true;
        }
        case ActionKind::Join: {
          const TaskId a = pick_task();
          const TaskId b = pick_task();
          if (a == b) break;
          if (valid_only && !owp.valid_join(a, b)) break;
          emit(join(a, b));
          return true;
        }
        default:
          break;
      }
    }
    return false;
  };

  while (next_fork < n_tasks || next_make < n_promises || ops_left > 0) {
    const std::uint64_t forks_rem = n_tasks - next_fork;
    const std::uint64_t makes_rem = n_promises - next_make;
    const std::uint64_t total = forks_rem + makes_rem + ops_left;
    const std::uint64_t roll =
        std::uniform_int_distribution<std::uint64_t>(0, total - 1)(rng);
    if (roll < forks_rem) {
      emit(fork(parents[next_fork], next_fork));
      ++next_fork;
    } else if (roll < forks_rem + makes_rem) {
      const TaskId a = pick_task();
      emit(make(a, next_make));
      unfulfilled.push_back(next_make);
      ++next_make;
    } else if (emit_op()) {
      --ops_left;
    } else if (forks_rem > 0) {
      emit(fork(parents[next_fork], next_fork));
      ++next_fork;
    } else if (makes_rem > 0) {
      const TaskId a = pick_task();
      emit(make(a, next_make));
      unfulfilled.push_back(next_make);
      ++next_make;
    } else {
      break;  // nothing feasible remains
    }
  }
  return t;
}

}  // namespace

Trace random_promise_trace(std::uint32_t n_tasks, std::uint32_t n_promises,
                           std::uint32_t n_ops, std::uint64_t seed,
                           double depth_bias) {
  Rng rng(seed);
  return promise_trace_impl(n_tasks, n_promises, n_ops, rng, depth_bias,
                            /*valid_only=*/false);
}

Trace random_owp_valid_trace(std::uint32_t n_tasks, std::uint32_t n_promises,
                             std::uint32_t n_ops, std::uint64_t seed,
                             double depth_bias) {
  Rng rng(seed);
  return promise_trace_impl(n_tasks, n_promises, n_ops, rng, depth_bias,
                            /*valid_only=*/true);
}

Trace deadlocking_trace(std::uint32_t cycle_len) {
  Trace t;
  t.push_init(0);
  if (cycle_len == 0) cycle_len = 1;
  if (cycle_len == 1) {
    t.push_fork(0, 1);
    t.push_join(1, 1);  // self-loop, the n = 0 case of Def. 3.9
    return t;
  }
  for (TaskId i = 1; i <= cycle_len; ++i) t.push_fork(0, i);
  for (TaskId i = 1; i < cycle_len; ++i) t.push_join(i, i + 1);
  t.push_join(cycle_len, 1);
  return t;
}

}  // namespace tj::trace
