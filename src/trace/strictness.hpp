#pragma once
// Strictness classification of a trace's computation graph, per the models
// discussed in Sec. 1:
//   * fully strict (Cilk):        every join targets a child of the joiner;
//   * terminally strict (async-finish): every join targets a descendant of
//     the joiner (the "join all tasks created transitively within a scope"
//     discipline can only produce descendant joins);
//   * arbitrary (Futures):        anything else.
// The hierarchy is strict: FullyStrict ⊂ TerminallyStrict ⊂ Arbitrary, and
// both restricted classes are KJ-expressible only up to join ordering —
// which is exactly the gap TJ closes (Sec. 2.3).

#include <cstdint>
#include <string_view>

#include "trace/trace.hpp"

namespace tj::trace {

enum class Strictness : std::uint8_t {
  FullyStrict,      ///< all joins are parent → child
  TerminallyStrict, ///< all joins are ancestor → descendant
  Arbitrary,        ///< at least one join crosses subtrees
};

constexpr std::string_view to_string(Strictness s) {
  switch (s) {
    case Strictness::FullyStrict:
      return "fully-strict";
    case Strictness::TerminallyStrict:
      return "terminally-strict";
    case Strictness::Arbitrary:
      return "arbitrary";
  }
  return "<bad strictness>";
}

/// Classifies the trace's join edges against its fork tree. A trace without
/// joins is fully strict. Pre: the trace is structurally valid.
Strictness classify_strictness(const Trace& t);

}  // namespace tj::trace
