#include "trace/deadlock.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace tj::trace {

namespace {

enum class Mark : std::uint8_t { White, Grey, Black };

// Iterative DFS looking for a back edge; fills `cycle` with the witness.
bool dfs_cycle(TaskId start,
               const std::unordered_map<TaskId, std::vector<TaskId>>& adj,
               std::unordered_map<TaskId, Mark>& mark,
               std::vector<TaskId>& cycle) {
  struct Frame {
    TaskId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{start}};
  mark[start] = Mark::Grey;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto it = adj.find(f.node);
    const std::vector<TaskId>* out = it == adj.end() ? nullptr : &it->second;
    if (out == nullptr || f.next_child >= out->size()) {
      mark[f.node] = Mark::Black;
      stack.pop_back();
      continue;
    }
    const TaskId next = (*out)[f.next_child++];
    const Mark m = mark.contains(next) ? mark[next] : Mark::White;
    if (m == Mark::Grey) {
      // Back edge: the cycle is the grey suffix of the stack from `next`.
      auto first = std::find_if(stack.begin(), stack.end(),
                                [next](const Frame& fr) {
                                  return fr.node == next;
                                });
      for (auto jt = first; jt != stack.end(); ++jt) cycle.push_back(jt->node);
      return true;
    }
    if (m == Mark::White) {
      mark[next] = Mark::Grey;
      stack.push_back({next});
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<TaskId>> find_deadlock_cycle(const Trace& t) {
  std::unordered_map<TaskId, std::vector<TaskId>> adj;
  std::unordered_set<TaskId> nodes;
  // Replayed promise state: who owns each unfulfilled promise *at this point*
  // of the trace (await edges freeze the owner of their moment).
  std::unordered_map<PromiseId, TaskId> owner;
  std::unordered_set<PromiseId> fulfilled;
  auto add_edge = [&](TaskId from, TaskId to) {
    adj[from].push_back(to);
    nodes.insert(from);
    nodes.insert(to);
  };
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case ActionKind::Join:
        if (a.actor == a.target) {
          return std::vector<TaskId>{a.actor};  // n = 0
        }
        add_edge(a.actor, a.target);
        break;
      case ActionKind::Make:
        if (!owner.contains(a.promise) && !fulfilled.contains(a.promise)) {
          owner[a.promise] = a.actor;
        }
        break;
      case ActionKind::Fulfill:
        owner.erase(a.promise);
        fulfilled.insert(a.promise);
        break;
      case ActionKind::Transfer:
        if (owner.contains(a.promise)) owner[a.promise] = a.target;
        break;
      case ActionKind::Await: {
        const auto it = owner.find(a.promise);
        if (it == owner.end()) break;  // fulfilled or unknown: never blocks
        if (it->second == a.actor) {
          return std::vector<TaskId>{a.actor};  // awaits own obligation
        }
        add_edge(a.actor, it->second);
        break;
      }
      case ActionKind::Init:
      case ActionKind::Fork:
        break;
    }
  }
  std::unordered_map<TaskId, Mark> mark;
  for (TaskId n : nodes) {
    if (mark.contains(n) && mark[n] != Mark::White) continue;
    std::vector<TaskId> cycle;
    if (dfs_cycle(n, adj, mark, cycle)) return cycle;
  }
  return std::nullopt;
}

}  // namespace tj::trace
