#include "trace/deadlock.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace tj::trace {

namespace {

enum class Mark : std::uint8_t { White, Grey, Black };

// Iterative DFS looking for a back edge; fills `cycle` with the witness.
bool dfs_cycle(TaskId start,
               const std::unordered_map<TaskId, std::vector<TaskId>>& adj,
               std::unordered_map<TaskId, Mark>& mark,
               std::vector<TaskId>& cycle) {
  struct Frame {
    TaskId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{start}};
  mark[start] = Mark::Grey;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto it = adj.find(f.node);
    const std::vector<TaskId>* out = it == adj.end() ? nullptr : &it->second;
    if (out == nullptr || f.next_child >= out->size()) {
      mark[f.node] = Mark::Black;
      stack.pop_back();
      continue;
    }
    const TaskId next = (*out)[f.next_child++];
    const Mark m = mark.contains(next) ? mark[next] : Mark::White;
    if (m == Mark::Grey) {
      // Back edge: the cycle is the grey suffix of the stack from `next`.
      auto first = std::find_if(stack.begin(), stack.end(),
                                [next](const Frame& fr) {
                                  return fr.node == next;
                                });
      for (auto jt = first; jt != stack.end(); ++jt) cycle.push_back(jt->node);
      return true;
    }
    if (m == Mark::White) {
      mark[next] = Mark::Grey;
      stack.push_back({next});
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<TaskId>> find_deadlock_cycle(const Trace& t) {
  std::unordered_map<TaskId, std::vector<TaskId>> adj;
  std::unordered_set<TaskId> nodes;
  for (const Action& a : t.actions()) {
    if (a.kind != ActionKind::Join) continue;
    if (a.actor == a.target) return std::vector<TaskId>{a.actor};  // n = 0
    adj[a.actor].push_back(a.target);
    nodes.insert(a.actor);
    nodes.insert(a.target);
  }
  std::unordered_map<TaskId, Mark> mark;
  for (TaskId n : nodes) {
    if (mark.contains(n) && mark[n] != Mark::White) continue;
    std::vector<TaskId> cycle;
    if (dfs_cycle(n, adj, mark, cycle)) return cycle;
  }
  return std::nullopt;
}

}  // namespace tj::trace
