#pragma once
// Offline O(1)-query lowest common ancestors via Euler tour + sparse-table
// RMQ — the classic construction the paper cites (Harel & Tarjan 1984;
// Bender & Farach-Colton 2004 simplify it, and TJ-JP adapts their jump
// pointers to the online setting). Built once over a complete fork tree;
// used to cross-check the online algorithms at scale and as the natural
// batch decision procedure for <T (Theorem 3.15).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/fork_tree.hpp"

namespace tj::trace {

class EulerLca {
 public:
  /// Preprocesses the tree: O(n log n) time and space.
  explicit EulerLca(const ForkTree& tree);

  /// Traditional LCA in O(1).
  TaskId lca(TaskId a, TaskId b) const;

  /// Extended LCA (Definition 3.14) in O(1) using the precomputed sibling
  /// ancestors: which children of lca(a,b) lead to a and b.
  LcaPlus lca_plus(TaskId a, TaskId b) const;

  /// a <T b (Theorem 3.15) in O(1).
  bool preorder_less(TaskId a, TaskId b) const;

 private:
  // Minimum by depth of two Euler-tour positions; ties prefer the RIGHT
  // position (see the sparse-table comment in the .cpp).
  std::uint32_t min_pos(std::uint32_t x, std::uint32_t y) const {
    if (depth_at_[x] < depth_at_[y]) return x;
    if (depth_at_[y] < depth_at_[x]) return y;
    return std::max(x, y);
  }
  // Position of the minimum-depth node within tour range [l, r].
  std::uint32_t range_min(std::uint32_t l, std::uint32_t r) const;

  // The node just below `anc` on the path to `v` (anc must be a proper
  // ancestor of v): child_toward(anc, v). O(1) via the tour position right
  // after anc's first occurrence within [first(anc), first(v)]... computed
  // with one extra RMQ-style step; see the .cpp.
  TaskId child_toward(TaskId anc, TaskId v) const;

  const ForkTree& tree_;
  std::vector<std::uint32_t> first_;     // first tour position per task
  std::vector<TaskId> tour_;             // Euler tour nodes (2n-1 entries)
  std::vector<std::uint32_t> depth_at_;  // depth per tour position
  std::vector<std::vector<std::uint32_t>> table_;  // sparse table of
                                                   // min-positions
  std::vector<std::uint32_t> log2_;      // floor(log2(i)) lookup
};

}  // namespace tj::trace
