#include "trace/tj_judgment.hpp"

#include <algorithm>

namespace tj::trace {

void TjJudgment::ensure(TaskId a) {
  if (a >= known_.size()) {
    const std::size_t need = a + 1;
    known_.resize(need, false);
    less_.resize(need);
    for (auto& row : less_) row.resize(need, false);
  }
  if (!known_[a]) {
    known_[a] = true;
    ++tasks_;
  }
}

void TjJudgment::push(const Action& act) {
  switch (act.kind) {
    case ActionKind::Init:
      ensure(act.actor);
      break;
    case ActionKind::Fork: {
      const TaskId a = act.actor;
      const TaskId b = act.target;
      ensure(a);
      ensure(b);
      const std::size_t n = known_.size();
      // Both rules' premises refer to the relation BEFORE this fork;
      // snapshot a's row since TJ-left extends it (with a < b) while
      // TJ-right still needs the pre-fork contents.
      const std::vector<bool> a_row = less_[a];
      // TJ-left: for every c with t ⊢ c ≤ a, derive c < b.
      for (TaskId c = 0; c < n; ++c) {
        if (known_[c] && (c == a || less_[c][a])) less_[c][b] = true;
      }
      // TJ-right: for every c with t ⊢ a < c, derive b < c.
      for (TaskId c = 0; c < n; ++c) {
        if (known_[c] && a_row[c]) less_[b][c] = true;
      }
      break;
    }
    case ActionKind::Join:
      break;  // no TJ rule consumes joins; TJ-mono preserves the relation
    case ActionKind::Make:
    case ActionKind::Fulfill:
    case ActionKind::Transfer:
    case ActionKind::Await:
      break;  // TJ speaks only about the fork tree; promises are invisible
  }
}

void TjJudgment::push_all(const Trace& t) {
  for (const Action& a : t.actions()) push(a);
}

bool TjJudgment::less(TaskId a, TaskId b) const {
  if (a >= known_.size() || b >= known_.size()) return false;
  if (!known_[a] || !known_[b]) return false;
  return less_[a][b];
}

}  // namespace tj::trace
