#include "trace/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace tj::trace {

std::string to_string(const Action& a) {
  std::ostringstream os;
  os << a;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Action& a) {
  switch (a.kind) {
    case ActionKind::Init:
      return os << "init(" << a.actor << ")";
    case ActionKind::Fork:
      return os << "fork(" << a.actor << "," << a.target << ")";
    case ActionKind::Join:
      return os << "join(" << a.actor << "," << a.target << ")";
  }
  return os << "<bad action>";
}

Trace::Trace(std::initializer_list<Action> actions) : actions_(actions) {}

Trace::Trace(std::vector<Action> actions) : actions_(std::move(actions)) {}

Trace& Trace::push(const Action& a) {
  actions_.push_back(a);
  return *this;
}

void Trace::pop() {
  if (!actions_.empty()) actions_.pop_back();
}

std::vector<TaskId> Trace::tasks() const {
  std::vector<TaskId> out;
  auto add = [&out](TaskId t) {
    if (t != kNoTask && std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    }
  };
  for (const Action& a : actions_) {
    add(a.actor);
    if (a.kind == ActionKind::Fork) add(a.target);
  }
  return out;
}

std::size_t Trace::fork_count() const {
  return static_cast<std::size_t>(
      std::count_if(actions_.begin(), actions_.end(),
                    [](const Action& a) { return a.kind == ActionKind::Fork; }));
}

std::size_t Trace::join_count() const {
  return static_cast<std::size_t>(
      std::count_if(actions_.begin(), actions_.end(),
                    [](const Action& a) { return a.kind == ActionKind::Join; }));
}

Trace operator+(const Trace& t1, const Trace& t2) {
  Trace out = t1;
  out.actions_.insert(out.actions_.end(), t2.actions_.begin(),
                      t2.actions_.end());
  return out;
}

Trace Trace::prefix(std::size_t n) const {
  n = std::min(n, actions_.size());
  return Trace(std::vector<Action>(actions_.begin(),
                                   actions_.begin() + static_cast<long>(n)));
}

std::string Trace::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Trace& t) {
  os << "[";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i) os << "; ";
    os << t[i];
  }
  return os << "]";
}

}  // namespace tj::trace
