#include "trace/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace tj::trace {

std::string to_string(const Action& a) {
  std::ostringstream os;
  os << a;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Action& a) {
  switch (a.kind) {
    case ActionKind::Init:
      return os << "init(" << a.actor << ")";
    case ActionKind::Fork:
      return os << "fork(" << a.actor << "," << a.target << ")";
    case ActionKind::Join:
      return os << "join(" << a.actor << "," << a.target << ")";
    case ActionKind::Make:
      return os << "make(" << a.actor << ",p" << a.promise << ")";
    case ActionKind::Fulfill:
      return os << "fulfill(" << a.actor << ",p" << a.promise << ")";
    case ActionKind::Transfer:
      return os << "transfer(" << a.actor << "," << a.target << ",p"
                << a.promise << ")";
    case ActionKind::Await:
      return os << "await(" << a.actor << ",p" << a.promise << ")";
  }
  return os << "<bad action>";
}

Trace::Trace(std::initializer_list<Action> actions) : actions_(actions) {}

Trace::Trace(std::vector<Action> actions) : actions_(std::move(actions)) {}

Trace& Trace::push(const Action& a) {
  actions_.push_back(a);
  return *this;
}

void Trace::pop() {
  if (!actions_.empty()) actions_.pop_back();
}

std::vector<TaskId> Trace::tasks() const {
  std::vector<TaskId> out;
  auto add = [&out](TaskId t) {
    if (t != kNoTask && std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    }
  };
  for (const Action& a : actions_) {
    add(a.actor);
    if (a.kind == ActionKind::Fork || a.kind == ActionKind::Transfer) {
      add(a.target);
    }
  }
  return out;
}

std::vector<PromiseId> Trace::promises() const {
  std::vector<PromiseId> out;
  for (const Action& a : actions_) {
    if (a.promise != kNoPromise &&
        std::find(out.begin(), out.end(), a.promise) == out.end()) {
      out.push_back(a.promise);
    }
  }
  return out;
}

std::size_t Trace::fork_count() const {
  return static_cast<std::size_t>(
      std::count_if(actions_.begin(), actions_.end(),
                    [](const Action& a) { return a.kind == ActionKind::Fork; }));
}

std::size_t Trace::join_count() const {
  return static_cast<std::size_t>(
      std::count_if(actions_.begin(), actions_.end(),
                    [](const Action& a) { return a.kind == ActionKind::Join; }));
}

std::size_t Trace::make_count() const {
  return static_cast<std::size_t>(
      std::count_if(actions_.begin(), actions_.end(),
                    [](const Action& a) { return a.kind == ActionKind::Make; }));
}

std::size_t Trace::await_count() const {
  return static_cast<std::size_t>(std::count_if(
      actions_.begin(), actions_.end(),
      [](const Action& a) { return a.kind == ActionKind::Await; }));
}

Trace operator+(const Trace& t1, const Trace& t2) {
  Trace out = t1;
  out.actions_.insert(out.actions_.end(), t2.actions_.begin(),
                      t2.actions_.end());
  return out;
}

Trace Trace::prefix(std::size_t n) const {
  n = std::min(n, actions_.size());
  return Trace(std::vector<Action>(actions_.begin(),
                                   actions_.begin() + static_cast<long>(n)));
}

std::string Trace::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Trace& t) {
  os << "[";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i) os << "; ";
    os << t[i];
  }
  return os << "]";
}

}  // namespace tj::trace
