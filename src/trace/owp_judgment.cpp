#include "trace/owp_judgment.hpp"

#include <vector>

namespace tj::trace {

void OwpJudgment::push(const Action& a) {
  switch (a.kind) {
    case ActionKind::Init:
    case ActionKind::Fork:
      break;  // no ownership effect; forks transfer nothing implicitly
    case ActionKind::Join:
      edges_[a.actor].insert(a.target);
      break;
    case ActionKind::Make:
      if (!has_promise(a.promise)) owner_[a.promise] = a.actor;
      break;
    case ActionKind::Fulfill:
      owner_.erase(a.promise);
      fulfilled_.insert(a.promise);
      break;
    case ActionKind::Transfer:
      // The trace is ground truth: ownership moves even if the transfer was
      // OWP-invalid (validity is judged separately, before the push).
      if (owner_.contains(a.promise)) owner_[a.promise] = a.target;
      break;
    case ActionKind::Await: {
      const auto it = owner_.find(a.promise);
      if (it != owner_.end()) edges_[a.actor].insert(it->second);
      break;
    }
  }
}

void OwpJudgment::push_all(const Trace& t) {
  for (const Action& a : t.actions()) push(a);
}

bool OwpJudgment::reaches(TaskId from, TaskId to) const {
  if (from == to) return true;
  std::vector<TaskId> stack{from};
  std::unordered_set<TaskId> visited{from};
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    const auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (const TaskId next : it->second) {
      if (next == to) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

bool OwpJudgment::valid_await(TaskId a, PromiseId p) const {
  if (fulfilled_.contains(p)) return true;  // never blocks
  const auto it = owner_.find(p);
  if (it == owner_.end()) return false;  // unknown promise
  // Blocking on a promise whose fulfilment obligation already reaches the
  // waiter (including owner == a itself) could self-deadlock: reject.
  return !reaches(it->second, a);
}

bool OwpJudgment::valid_join(TaskId a, TaskId b) const {
  return !reaches(b, a);
}

bool OwpJudgment::valid_transfer(TaskId a, TaskId b, PromiseId p) const {
  (void)b;
  const auto it = owner_.find(p);
  return it != owner_.end() && it->second == a;
}

bool OwpJudgment::valid_fulfill(TaskId a, PromiseId p) const {
  const auto it = owner_.find(p);
  return it != owner_.end() && it->second == a;
}

std::optional<TaskId> OwpJudgment::owner_of(PromiseId p) const {
  const auto it = owner_.find(p);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

}  // namespace tj::trace
