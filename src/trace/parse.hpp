#pragma once
// Textual trace format: a ';'- or newline-separated list of actions in the
// paper's notation, e.g. "init(0); fork(0,1); join(0,1)", plus the promise
// actions "make(0,p1); transfer(0,1,p1); fulfill(1,p1); await(0,p1)" (the
// 'p' prefix on promise ids is optional on input, always printed on output).
// Round-trips with Trace::to_string() (modulo brackets and whitespace).

#include <stdexcept>
#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace tj::trace {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}

  /// Byte offset into the input where parsing failed.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parses a trace. Accepts optional surrounding '[' ']', ';' or newline
/// separators, '#'-to-end-of-line comments, and arbitrary whitespace.
/// Throws ParseError on malformed input (syntax only — validity per
/// Definition 3.2 is a separate check, see trace/validity.hpp).
Trace parse_trace(std::string_view text);

}  // namespace tj::trace
