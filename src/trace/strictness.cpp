#include "trace/strictness.hpp"

#include "trace/fork_tree.hpp"

namespace tj::trace {

Strictness classify_strictness(const Trace& t) {
  const ForkTree tree(t);
  bool fully = true;
  for (const Action& a : t.actions()) {
    if (a.kind != ActionKind::Join) continue;
    if (tree.contains(a.target) && tree.parent(a.target) == a.actor) {
      continue;  // parent → child: fine for every class
    }
    fully = false;
    if (!tree.is_ancestor(a.actor, a.target)) {
      return Strictness::Arbitrary;  // crosses subtrees (or goes upward)
    }
  }
  return fully ? Strictness::FullyStrict : Strictness::TerminallyStrict;
}

}  // namespace tj::trace
