#include "trace/validity.hpp"

#include <unordered_set>

#include "trace/kj_judgment.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/tj_judgment.hpp"

namespace tj::trace {

std::string to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::Structural:
      return "Structural";
    case PolicyKind::TJ:
      return "TJ";
    case PolicyKind::KJ:
      return "KJ";
    case PolicyKind::OWP:
      return "OWP";
  }
  return "<bad policy>";
}

ValidityResult check_valid(const Trace& t, PolicyKind policy) {
  std::unordered_set<TaskId> tasks;
  bool saw_init = false;
  TjJudgment tj;
  KjJudgment kj;
  OwpJudgment owp;

  auto fail = [&](std::size_t i, std::string reason) {
    return ValidityResult{false, Violation{i, t[i], std::move(reason)}};
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    switch (a.kind) {
      case ActionKind::Init:
        if (saw_init) return fail(i, "valid-init: second init action");
        if (i != 0) return fail(i, "valid-init: init must be first");
        saw_init = true;
        tasks.insert(a.actor);
        break;
      case ActionKind::Fork:
        if (!saw_init) return fail(i, "valid-fork: trace must start with init");
        if (!tasks.contains(a.actor)) {
          return fail(i, "valid-fork: forking task not in A");
        }
        if (tasks.contains(a.target)) {
          return fail(i, "valid-fork: forked task already in A");
        }
        tasks.insert(a.target);
        break;
      case ActionKind::Join:
        if (!saw_init) return fail(i, "valid-join: trace must start with init");
        if (!tasks.contains(a.actor) || !tasks.contains(a.target)) {
          return fail(i, "valid-join: tasks not in A");
        }
        switch (policy) {
          case PolicyKind::Structural:
            break;
          case PolicyKind::TJ:
            if (!tj.less(a.actor, a.target)) {
              return fail(i, "valid-join-R: not t ⊢ a < b (TJ)");
            }
            break;
          case PolicyKind::KJ:
            if (!kj.knows(a.actor, a.target)) {
              return fail(i, "valid-join-R: not t ⊢ a ≺ b (KJ)");
            }
            break;
          case PolicyKind::OWP:
            if (!owp.valid_join(a.actor, a.target)) {
              return fail(i, "valid-join-OWP: b reaches a in H");
            }
            break;
        }
        break;
      case ActionKind::Make:
        if (!saw_init) return fail(i, "valid-make: trace must start with init");
        if (!tasks.contains(a.actor)) {
          return fail(i, "valid-make: making task not in A");
        }
        if (owp.has_promise(a.promise)) {
          return fail(i, "valid-make: promise already in P");
        }
        break;
      case ActionKind::Fulfill:
        if (!tasks.contains(a.actor)) {
          return fail(i, "valid-fulfill: fulfilling task not in A");
        }
        if (!owp.has_promise(a.promise)) {
          return fail(i, "valid-fulfill: promise not in P");
        }
        if (owp.fulfilled(a.promise)) {
          return fail(i, "valid-fulfill: promise already fulfilled");
        }
        if (policy == PolicyKind::OWP &&
            !owp.valid_fulfill(a.actor, a.promise)) {
          return fail(i, "valid-fulfill-OWP: only the owner may fulfill");
        }
        break;
      case ActionKind::Transfer:
        if (!tasks.contains(a.actor) || !tasks.contains(a.target)) {
          return fail(i, "valid-transfer: tasks not in A");
        }
        if (!owp.has_promise(a.promise)) {
          return fail(i, "valid-transfer: promise not in P");
        }
        if (owp.fulfilled(a.promise)) {
          return fail(i, "valid-transfer: promise already fulfilled");
        }
        if (policy == PolicyKind::OWP &&
            !owp.valid_transfer(a.actor, a.target, a.promise)) {
          return fail(i, "valid-transfer-OWP: only the owner may transfer");
        }
        break;
      case ActionKind::Await:
        if (!tasks.contains(a.actor)) {
          return fail(i, "valid-await: awaiting task not in A");
        }
        if (!owp.has_promise(a.promise)) {
          return fail(i, "valid-await: promise not in P");
        }
        if (policy == PolicyKind::OWP && !owp.valid_await(a.actor, a.promise)) {
          return fail(i, "valid-await-OWP: owner(p) reaches a in H");
        }
        break;
    }
    // Judgments track the trace-so-far regardless of which policy is active,
    // so all are in sync when queried.
    tj.push(a);
    kj.push(a);
    owp.push(a);
  }
  if (!saw_init && !t.empty()) {
    return fail(0, "valid-init: trace must start with init");
  }
  return {};
}

}  // namespace tj::trace
