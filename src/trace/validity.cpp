#include "trace/validity.hpp"

#include <unordered_set>

#include "trace/kj_judgment.hpp"
#include "trace/tj_judgment.hpp"

namespace tj::trace {

std::string to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::Structural:
      return "Structural";
    case PolicyKind::TJ:
      return "TJ";
    case PolicyKind::KJ:
      return "KJ";
  }
  return "<bad policy>";
}

ValidityResult check_valid(const Trace& t, PolicyKind policy) {
  std::unordered_set<TaskId> tasks;
  bool saw_init = false;
  TjJudgment tj;
  KjJudgment kj;

  auto fail = [&](std::size_t i, std::string reason) {
    return ValidityResult{false, Violation{i, t[i], std::move(reason)}};
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Action& a = t[i];
    switch (a.kind) {
      case ActionKind::Init:
        if (saw_init) return fail(i, "valid-init: second init action");
        if (i != 0) return fail(i, "valid-init: init must be first");
        saw_init = true;
        tasks.insert(a.actor);
        break;
      case ActionKind::Fork:
        if (!saw_init) return fail(i, "valid-fork: trace must start with init");
        if (!tasks.contains(a.actor)) {
          return fail(i, "valid-fork: forking task not in A");
        }
        if (tasks.contains(a.target)) {
          return fail(i, "valid-fork: forked task already in A");
        }
        tasks.insert(a.target);
        break;
      case ActionKind::Join:
        if (!saw_init) return fail(i, "valid-join: trace must start with init");
        if (!tasks.contains(a.actor) || !tasks.contains(a.target)) {
          return fail(i, "valid-join: tasks not in A");
        }
        switch (policy) {
          case PolicyKind::Structural:
            break;
          case PolicyKind::TJ:
            if (!tj.less(a.actor, a.target)) {
              return fail(i, "valid-join-R: not t ⊢ a < b (TJ)");
            }
            break;
          case PolicyKind::KJ:
            if (!kj.knows(a.actor, a.target)) {
              return fail(i, "valid-join-R: not t ⊢ a ≺ b (KJ)");
            }
            break;
        }
        break;
    }
    // Judgments track the trace-so-far regardless of which policy is active,
    // so both are in sync when queried.
    tj.push(a);
    kj.push(a);
  }
  if (!saw_init && !t.empty()) {
    return fail(0, "valid-init: trace must start with init");
  }
  return {};
}

}  // namespace tj::trace
