#pragma once
// Deterministic (seeded) generators for traces and fork trees, used by the
// property-test suites and by the Table-1 complexity benches.

#include <cstdint>
#include <random>

#include "trace/trace.hpp"

namespace tj::trace {

using Rng = std::mt19937_64;

/// init(0); fork(0,1); fork(1,2); ... — height n-1 (worst case h = n).
Trace chain_trace(std::uint32_t n_tasks);

/// init(0); fork(0,1); ... fork(0,n-1) — height 1.
Trace star_trace(std::uint32_t n_tasks);

/// Complete `arity`-ary tree of the given depth (root at depth 0).
Trace balanced_tree_trace(std::uint32_t arity, std::uint32_t depth);

/// Random tree over n tasks. `depth_bias` in [0,1]: probability that each new
/// task is forked by the most recently created task (1.0 → chain) instead of
/// a uniformly random existing task (0.0 → shallow, star-ish trees).
Trace random_tree_trace(std::uint32_t n_tasks, std::uint64_t seed,
                        double depth_bias = 0.3);

/// Random TJ-valid trace: the forks of random_tree_trace interleaved with
/// n_joins joins, each drawn uniformly from the pairs the TJ judgment
/// permits at that point.
Trace random_tj_valid_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                            std::uint64_t seed, double depth_bias = 0.3);

/// Random KJ-valid trace (analogous, drawn from the KJ knowledge relation).
/// KJ-valid joins also change the relation (KJ-learn), which the generator
/// tracks.
Trace random_kj_valid_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                            std::uint64_t seed, double depth_bias = 0.3);

/// Random structurally-valid trace: joins pair arbitrary existing tasks.
/// May violate both policies and may contain deadlock cycles.
Trace random_structural_trace(std::uint32_t n_tasks, std::uint32_t n_joins,
                              std::uint64_t seed, double depth_bias = 0.3);

/// A trace whose join actions form a cycle of the given length ≥ 1 over
/// sibling tasks (guaranteed deadlock per Definition 3.9).
Trace deadlocking_trace(std::uint32_t cycle_len);

/// Random structurally-valid *promise* trace: forks interleaved with makes,
/// owner-respecting-or-not transfers, fulfills, awaits and joins. May violate
/// the ownership policy and may contain (extended) deadlock cycles. Drives
/// the differential fuzzer's adversarial side.
Trace random_promise_trace(std::uint32_t n_tasks, std::uint32_t n_promises,
                           std::uint32_t n_ops, std::uint64_t seed,
                           double depth_bias = 0.3);

/// Random OWP-valid promise trace: every join/await/transfer/fulfill is drawn
/// from the actions the ownership judgment permits at that point (transfers
/// and fulfills by the current owner only; awaits/joins only when they close
/// no obligation cycle). Such traces are extended-deadlock-free by the
/// policy's soundness argument, which the property tests cross-check.
Trace random_owp_valid_trace(std::uint32_t n_tasks, std::uint32_t n_promises,
                             std::uint32_t n_ops, std::uint64_t seed,
                             double depth_bias = 0.3);

}  // namespace tj::trace
