#include "trace/parse.hpp"

#include <cctype>

namespace tj::trace {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Trace run() {
    Trace out;
    skip_noise();
    if (peek() == '[') {
      ++pos_;
      skip_noise();
    }
    while (!done() && peek() != ']') {
      out.push(action());
      skip_noise();
      while (!done() && (peek() == ';' || peek() == ',')) {
        ++pos_;
        skip_noise();
      }
    }
    if (!done() && peek() == ']') {
      ++pos_;
      skip_noise();
    }
    if (!done()) fail("trailing input after trace");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(what + " (at offset " + std::to_string(pos_) + ")",
                     pos_);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return done() ? '\0' : text_[pos_]; }

  void skip_noise() {
    while (!done()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!done() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view word() {
    const std::size_t start = pos_;
    while (!done() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an action name");
    return text_.substr(start, pos_ - start);
  }

  TaskId number(const char* what = "task id") {
    skip_noise();
    if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail(std::string("expected a ") + what);
    }
    std::uint64_t v = 0;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + static_cast<std::uint64_t>(peek() - '0');
      if (v > 0xffffffffull) fail(std::string(what) + " out of range");
      ++pos_;
    }
    return static_cast<TaskId>(v);
  }

  /// A promise id: an integer with an optional 'p' prefix, e.g. "p3" or "3".
  PromiseId promise_id() {
    skip_noise();
    if (peek() == 'p' || peek() == 'P') ++pos_;
    return number("promise id (e.g. p3)");
  }

  void expect(char c) {
    skip_noise();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool accept(char c) {
    skip_noise();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Action action() {
    const std::string_view name = word();
    expect('(');
    const TaskId a = number();
    if (name == "init") {
      expect(')');
      return init(a);
    }
    if (name == "make" || name == "fulfill" || name == "await") {
      expect(',');
      const PromiseId p = promise_id();
      expect(')');
      if (name == "make") return make(a, p);
      if (name == "fulfill") return fulfill(a, p);
      return await(a, p);
    }
    if (name == "transfer") {
      // transfer(from-task, to-task, promise) — diagnose the common
      // two-argument mistake explicitly rather than with a bare "expected ','".
      expect(',');
      const TaskId b = number("to-task id");
      skip_noise();
      if (!accept(',')) {
        fail(
            "transfer takes three arguments: "
            "transfer(from-task, to-task, promise), e.g. transfer(0,1,p2)");
      }
      const PromiseId p = promise_id();
      expect(')');
      return transfer(a, b, p);
    }
    expect(',');
    const TaskId b = number();
    expect(')');
    if (name == "fork") return fork(a, b);
    if (name == "join") return join(a, b);
    fail("unknown action '" + std::string(name) + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Trace parse_trace(std::string_view text) { return Parser(text).run(); }

}  // namespace tj::trace
