#include "trace/parse.hpp"

#include <cctype>

namespace tj::trace {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Trace run() {
    Trace out;
    skip_noise();
    if (peek() == '[') {
      ++pos_;
      skip_noise();
    }
    while (!done() && peek() != ']') {
      out.push(action());
      skip_noise();
      while (!done() && (peek() == ';' || peek() == ',')) {
        ++pos_;
        skip_noise();
      }
    }
    if (!done() && peek() == ']') {
      ++pos_;
      skip_noise();
    }
    if (!done()) fail("trailing input after trace");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(what + " (at offset " + std::to_string(pos_) + ")",
                     pos_);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return done() ? '\0' : text_[pos_]; }

  void skip_noise() {
    while (!done()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!done() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view word() {
    const std::size_t start = pos_;
    while (!done() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an action name");
    return text_.substr(start, pos_ - start);
  }

  TaskId number() {
    skip_noise();
    if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected a task id");
    }
    std::uint64_t v = 0;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + static_cast<std::uint64_t>(peek() - '0');
      if (v > 0xffffffffull) fail("task id out of range");
      ++pos_;
    }
    return static_cast<TaskId>(v);
  }

  void expect(char c) {
    skip_noise();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Action action() {
    const std::string_view name = word();
    expect('(');
    const TaskId a = number();
    if (name == "init") {
      expect(')');
      return init(a);
    }
    expect(',');
    const TaskId b = number();
    expect(')');
    if (name == "fork") return fork(a, b);
    if (name == "join") return join(a, b);
    fail("unknown action '" + std::string(name) + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Trace parse_trace(std::string_view text) { return Parser(text).run(); }

}  // namespace tj::trace
