#include "trace/enumerate.hpp"

namespace tj::trace {

namespace {

struct Enumerator {
  const EnumBounds& bounds;
  const std::function<bool(const Trace&)>& visit;
  Trace trace;
  std::uint32_t tasks = 1;  // task 0 is the root
  std::uint32_t joins = 0;
  std::uint64_t visited = 0;
  bool stopped = false;

  bool emit() {
    ++visited;
    if (!visit(trace)) {
      stopped = true;
    }
    return !stopped;
  }

  void recurse() {
    if (stopped) return;
    // Extend with a fork: the new task is named `tasks` (canonical order);
    // any existing task may be the parent.
    if (tasks < bounds.max_tasks) {
      for (TaskId parent = 0; parent < tasks && !stopped; ++parent) {
        trace.push_fork(parent, tasks);
        ++tasks;
        if (emit()) recurse();
        --tasks;
        trace.pop();
      }
    }
    // Extend with a join between any ordered pair of existing tasks
    // (self-joins included: they are the n = 0 deadlock of Def. 3.9).
    if (joins < bounds.max_joins) {
      for (TaskId a = 0; a < tasks && !stopped; ++a) {
        for (TaskId b = 0; b < tasks && !stopped; ++b) {
          const Action j = join(a, b);
          if (bounds.skip_duplicate_joins && !trace.empty() &&
              trace[trace.size() - 1] == j) {
            continue;
          }
          trace.push(j);
          ++joins;
          if (emit()) recurse();
          --joins;
          trace.pop();
        }
      }
    }
  }
};

}  // namespace

std::uint64_t for_each_trace(const EnumBounds& bounds,
                             const std::function<bool(const Trace&)>& visit) {
  Enumerator e{bounds, visit, Trace{init(0)}};
  if (!e.emit()) return e.visited;
  e.recurse();
  return e.visited;
}

std::uint64_t count_traces(const EnumBounds& bounds) {
  return for_each_trace(bounds, [](const Trace&) { return true; });
}

}  // namespace tj::trace
