#pragma once
// Reference implementation of the Known Joins judgment t ⊢ a ≺ b
// (Definition 4.1), i.e. the knowledge relation of Cogumbreiro et al. 2017
// recapitulated in Section 4 of the TJ paper. Implemented as explicit
// knowledge sets: K(a) = { b | a ≺ b }.

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace tj::trace {

class KjJudgment {
 public:
  KjJudgment() = default;
  explicit KjJudgment(const Trace& t) { push_all(t); }

  /// Extends the judgment with one more action. Unlike TJ, KJ consumes join
  /// actions (KJ-learn): join(a,b) merges b's knowledge into a's.
  void push(const Action& a);
  void push_all(const Trace& t);

  /// t ⊢ a ≺ b (a knows b) for the trace pushed so far.
  bool knows(TaskId a, TaskId b) const;

  /// The knowledge set K(a) as a list of task ids.
  std::vector<TaskId> knowledge_of(TaskId a) const;

  std::size_t task_count() const { return tasks_; }
  bool knows_task(TaskId a) const { return a < known_.size() && known_[a]; }

 private:
  void ensure(TaskId a);

  std::vector<std::vector<bool>> knows_;  // knows_[a][b] == a ≺ b
  std::vector<bool> known_;
  std::size_t tasks_ = 0;
};

}  // namespace tj::trace
