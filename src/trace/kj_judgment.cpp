#include "trace/kj_judgment.hpp"

namespace tj::trace {

void KjJudgment::ensure(TaskId a) {
  if (a >= known_.size()) {
    const std::size_t need = a + 1;
    known_.resize(need, false);
    knows_.resize(need);
    for (auto& row : knows_) row.resize(need, false);
  }
  if (!known_[a]) {
    known_[a] = true;
    ++tasks_;
  }
}

void KjJudgment::push(const Action& act) {
  switch (act.kind) {
    case ActionKind::Init:
      ensure(act.actor);
      break;
    case ActionKind::Fork: {
      const TaskId a = act.actor;
      const TaskId b = act.target;
      ensure(a);
      ensure(b);
      // KJ-inherit: the child receives the parent's knowledge at fork time.
      knows_[b] = knows_[a];
      // KJ-child: the parent knows the child.
      knows_[a][b] = true;
      break;
    }
    case ActionKind::Join: {
      const TaskId a = act.actor;
      const TaskId b = act.target;
      ensure(a);
      ensure(b);
      // KJ-learn: the waiting task acquires the joinee's knowledge.
      const std::size_t n = known_.size();
      for (std::size_t c = 0; c < n; ++c) {
        if (knows_[b][c]) knows_[a][c] = true;
      }
      break;
    }
    case ActionKind::Make:
    case ActionKind::Fulfill:
    case ActionKind::Transfer:
    case ActionKind::Await:
      break;  // KJ's knowledge relation is over tasks; promises are invisible
  }
}

void KjJudgment::push_all(const Trace& t) {
  for (const Action& a : t.actions()) push(a);
}

bool KjJudgment::knows(TaskId a, TaskId b) const {
  if (a >= known_.size() || b >= known_.size()) return false;
  if (!known_[a] || !known_[b]) return false;
  return knows_[a][b];
}

std::vector<TaskId> KjJudgment::knowledge_of(TaskId a) const {
  std::vector<TaskId> out;
  if (a >= known_.size() || !known_[a]) return out;
  for (TaskId b = 0; b < knows_[a].size(); ++b) {
    if (knows_[a][b]) out.push_back(b);
  }
  return out;
}

}  // namespace tj::trace
