#pragma once
// Bounded-exhaustive trace enumeration: every structurally valid trace with
// at most `max_tasks` tasks and `max_joins` joins (task names canonicalized
// to creation order, so enumeration is up to renaming). Used to check the
// paper's theorems exhaustively at small scope — a complement to the random
// property tests:
//   * Theorem 3.11: no TJ-valid trace contains a deadlock;
//   * Corollary 4.4: every KJ-valid trace is TJ-valid;
//   * maximal permissiveness (Sec. 4): for every pair b ≮ a there is an
//     extension whose joins deadlock once join(b, a) is admitted.

#include <cstdint>
#include <functional>

#include "trace/trace.hpp"

namespace tj::trace {

struct EnumBounds {
  std::uint32_t max_tasks = 4;  ///< including the root
  std::uint32_t max_joins = 3;
  /// When true, identical consecutive joins are skipped (they never change
  /// any judgment and inflate the space).
  bool skip_duplicate_joins = true;
};

/// Calls `visit` for every canonical structurally-valid trace within bounds
/// (including the bare init(0) trace). Traces are visited in DFS order:
/// every visited trace's prefixes were visited before it. Returns the number
/// of traces visited. Enumeration stops early if `visit` returns false.
std::uint64_t for_each_trace(const EnumBounds& bounds,
                             const std::function<bool(const Trace&)>& visit);

/// Number of traces within bounds (for test sanity checks).
std::uint64_t count_traces(const EnumBounds& bounds);

}  // namespace tj::trace
