#pragma once
// Trace actions per Definition 3.1 of the paper — init(a), fork(a,b),
// join(a,b) — extended with the promise operations of the authors' follow-up
// ("An Ownership Policy and Deadlock Detector for Promises", Voss & Sarkar,
// arXiv:2101.01312): make(a,p), fulfill(a,p), transfer(a,b,p), await(a,p).

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tj::trace {

/// Tasks are denoted by dense integer ids; the root is conventionally 0.
using TaskId = std::uint32_t;

/// Promises live in their own dense id space (printed with a `p` prefix).
using PromiseId = std::uint32_t;

inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);
inline constexpr PromiseId kNoPromise = static_cast<PromiseId>(-1);

enum class ActionKind : std::uint8_t {
  Init,      ///< init(a): a is the root task
  Fork,      ///< fork(a,b): a forks b
  Join,      ///< join(a,b): a awaits the termination of b
  Make,      ///< make(a,p): a allocates promise p and becomes its owner
  Fulfill,   ///< fulfill(a,p): a writes p's value (single assignment)
  Transfer,  ///< transfer(a,b,p): a hands ownership of p to task b
  Await,     ///< await(a,p): a blocks until p is fulfilled
};

/// True for the four promise operations.
constexpr bool is_promise_action(ActionKind k) {
  return k == ActionKind::Make || k == ActionKind::Fulfill ||
         k == ActionKind::Transfer || k == ActionKind::Await;
}

/// One action of a trace. For Init, `target` is unused (kNoTask); `promise`
/// is used only by the promise actions (kNoPromise otherwise).
struct Action {
  ActionKind kind;
  TaskId actor;                    ///< a in every action
  TaskId target;                   ///< b in fork(a,b)/join(a,b)/transfer(a,b,p)
  PromiseId promise = kNoPromise;  ///< p in make/fulfill/transfer/await

  friend bool operator==(const Action&, const Action&) = default;
};

constexpr Action init(TaskId a) { return {ActionKind::Init, a, kNoTask}; }
constexpr Action fork(TaskId a, TaskId b) { return {ActionKind::Fork, a, b}; }
constexpr Action join(TaskId a, TaskId b) { return {ActionKind::Join, a, b}; }
constexpr Action make(TaskId a, PromiseId p) {
  return {ActionKind::Make, a, kNoTask, p};
}
constexpr Action fulfill(TaskId a, PromiseId p) {
  return {ActionKind::Fulfill, a, kNoTask, p};
}
constexpr Action transfer(TaskId a, TaskId b, PromiseId p) {
  return {ActionKind::Transfer, a, b, p};
}
constexpr Action await(TaskId a, PromiseId p) {
  return {ActionKind::Await, a, kNoTask, p};
}

std::string to_string(const Action& a);
std::ostream& operator<<(std::ostream& os, const Action& a);

}  // namespace tj::trace
