#pragma once
// Trace actions per Definition 3.1 of the paper: init(a), fork(a,b), join(a,b).

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tj::trace {

/// Tasks are denoted by dense integer ids; the root is conventionally 0.
using TaskId = std::uint32_t;

inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

enum class ActionKind : std::uint8_t {
  Init,  ///< init(a): a is the root task
  Fork,  ///< fork(a,b): a forks b
  Join,  ///< join(a,b): a awaits the termination of b
};

/// One action of a trace. For Init, `target` is unused (kNoTask).
struct Action {
  ActionKind kind;
  TaskId actor;   ///< a in init(a)/fork(a,b)/join(a,b)
  TaskId target;  ///< b in fork(a,b)/join(a,b)

  friend bool operator==(const Action&, const Action&) = default;
};

constexpr Action init(TaskId a) { return {ActionKind::Init, a, kNoTask}; }
constexpr Action fork(TaskId a, TaskId b) { return {ActionKind::Fork, a, b}; }
constexpr Action join(TaskId a, TaskId b) { return {ActionKind::Join, a, b}; }

std::string to_string(const Action& a);
std::ostream& operator<<(std::ostream& os, const Action& a);

}  // namespace tj::trace
