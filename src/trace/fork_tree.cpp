#include "trace/fork_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace tj::trace {

namespace {

void ensure_size(std::size_t need, std::vector<TaskId>& parent,
                 std::vector<std::uint32_t>& index,
                 std::vector<std::uint32_t>& depth,
                 std::vector<std::vector<TaskId>>& children,
                 std::vector<bool>& known) {
  if (need <= parent.size()) return;
  parent.resize(need, kNoTask);
  index.resize(need, 0);
  depth.resize(need, 0);
  children.resize(need);
  known.resize(need, false);
}

}  // namespace

ForkTree::ForkTree(const Trace& t) {
  for (const Action& a : t.actions()) {
    switch (a.kind) {
      case ActionKind::Init: {
        if (root_ != kNoTask) {
          throw std::invalid_argument("ForkTree: multiple init actions");
        }
        ensure_size(a.actor + 1, parent_, index_, depth_, children_, known_);
        root_ = a.actor;
        known_[a.actor] = true;
        break;
      }
      case ActionKind::Fork: {
        if (root_ == kNoTask) {
          throw std::invalid_argument("ForkTree: fork before init");
        }
        ensure_size(std::max(a.actor, a.target) + 1, parent_, index_, depth_,
                    children_, known_);
        if (!known_[a.actor]) {
          throw std::invalid_argument("ForkTree: fork by unknown task");
        }
        if (known_[a.target]) {
          throw std::invalid_argument("ForkTree: fork of existing task");
        }
        known_[a.target] = true;
        parent_[a.target] = a.actor;
        index_[a.target] =
            static_cast<std::uint32_t>(children_[a.actor].size());
        depth_[a.target] = depth_[a.actor] + 1;
        children_[a.actor].push_back(a.target);
        break;
      }
      case ActionKind::Join:
      case ActionKind::Make:
      case ActionKind::Fulfill:
      case ActionKind::Transfer:
      case ActionKind::Await:
        break;  // neither joins nor promise actions shape the tree
    }
  }
  if (root_ == kNoTask) {
    throw std::invalid_argument("ForkTree: trace has no init action");
  }
}

bool ForkTree::is_ancestor(TaskId a, TaskId b) const {
  if (!contains(a) || !contains(b) || a == b) return false;
  while (depth_[b] > depth_[a]) b = parent_[b];
  return a == b;
}

LcaPlus ForkTree::lca_plus(TaskId a, TaskId b) const {
  if (!contains(a) || !contains(b)) {
    throw std::invalid_argument("lca_plus: unknown task");
  }
  if (is_ancestor(a, b)) return {LcaPlusKind::AncPlus};
  if (a == b || is_ancestor(b, a)) return {LcaPlusKind::DecStar};
  // Lift both to a common depth, remembering the last node passed on each
  // side; then walk up in lockstep until the parents coincide.
  TaskId x = a;
  TaskId y = b;
  while (depth_[x] > depth_[y]) x = parent_[x];
  while (depth_[y] > depth_[x]) y = parent_[y];
  while (parent_[x] != parent_[y]) {
    x = parent_[x];
    y = parent_[y];
  }
  return {LcaPlusKind::Sib, x, y};
}

TaskId ForkTree::lca(TaskId a, TaskId b) const {
  const LcaPlus r = lca_plus(a, b);
  switch (r.kind) {
    case LcaPlusKind::AncPlus:
      return a;
    case LcaPlusKind::DecStar:
      return b;
    case LcaPlusKind::Sib:
      return parent_[r.a_side];
  }
  return kNoTask;
}

bool ForkTree::preorder_less(TaskId a, TaskId b) const {
  const LcaPlus r = lca_plus(a, b);
  switch (r.kind) {
    case LcaPlusKind::AncPlus:
      return true;
    case LcaPlusKind::DecStar:
      return false;
    case LcaPlusKind::Sib:
      // Theorem 3.15(c): a <T b iff I(a') > I(b'). Note the inversion: the
      // *later*-forked subtree precedes in the TJ order, i.e. <T enumerates
      // children newest-first under each node.
      return index_[r.a_side] > index_[r.b_side];
  }
  return false;
}

std::vector<TaskId> ForkTree::preorder() const {
  std::vector<TaskId> out;
  out.reserve(task_count());
  std::vector<TaskId> stack{root_};
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    // Children pushed oldest-first so the newest child is visited first,
    // matching Theorem 3.15(c)'s I(a') > I(b') orientation.
    for (TaskId c : children_[v]) stack.push_back(c);
  }
  return out;
}

}  // namespace tj::trace
