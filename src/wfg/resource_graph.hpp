#pragma once
// Generalized waits-for bookkeeping in the style of Armus (Cogumbreiro et
// al., PPoPP'15 — the fallback detector the TJ paper builds on). Armus
// models *barrier* synchronisation, which single-target join edges cannot
// express: a blocked task waits on a set of resources (events/phases), and
// each resource is signalled by a set of provider tasks.
//
// Deadlock = a cycle alternating task → resource (waits-on) and resource →
// task (provided-by) edges. Armus checks either projection, whichever is
// smaller; both are exposed here:
//   * WFG mode: task a → task b  iff a waits on a resource b provides;
//   * SG  mode: res  r → res  s  iff some provider of r waits on s.
//
// This substrate powers the runtime's CheckedBarrier (see
// runtime/barrier.hpp) and is independently testable.

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tj::wfg {

using ResId = std::uint64_t;
using TaskUid = std::uint64_t;

class ResourceGraph {
 public:
  ResourceGraph() = default;
  ResourceGraph(const ResourceGraph&) = delete;
  ResourceGraph& operator=(const ResourceGraph&) = delete;

  /// Declares that `task` can signal `res` (e.g. a registered barrier party
  /// that has not arrived yet). Idempotent.
  void add_provider(ResId res, TaskUid task);

  /// Removes a provider (the party arrived / deregistered). Idempotent.
  void remove_provider(ResId res, TaskUid task);

  /// Atomically checks whether blocking `task` on all of `resources` would
  /// create a deadlock cycle; if not, records the wait. A task has at most
  /// one wait set at a time (it is single-threaded).
  /// Returns false (and records nothing) if blocking would deadlock.
  bool try_wait(TaskUid task, const std::vector<ResId>& resources);

  /// Clears `task`'s wait set (it unblocked or faulted).
  void clear_wait(TaskUid task);

  /// Diagnostic: the tasks on some deadlock cycle through `task` if it were
  /// to block on `resources` (empty when safe). Read-only.
  std::vector<TaskUid> witness_cycle(TaskUid task,
                                     const std::vector<ResId>& resources) const;

  /// Armus's two projections (diagnostics/tests; cycle checks use the
  /// bipartite graph directly).
  std::vector<std::pair<TaskUid, TaskUid>> wfg_projection() const;
  std::vector<std::pair<ResId, ResId>> sg_projection() const;

  std::size_t blocked_count() const;
  std::uint64_t cycle_checks() const { return checks_; }

 private:
  // Pre: lock held. DFS over task→res→task edges from `start` looking for
  // `needle`; optionally records the task path.
  bool reaches_task(const std::vector<ResId>& first_hop, TaskUid needle,
                    std::vector<TaskUid>* path) const;

  mutable std::mutex mu_;
  std::unordered_map<ResId, std::unordered_set<TaskUid>> providers_;
  std::unordered_map<TaskUid, std::vector<ResId>> waiting_;
  std::uint64_t checks_ = 0;
};

}  // namespace tj::wfg
