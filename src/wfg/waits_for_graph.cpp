#include "wfg/waits_for_graph.hpp"

#include <algorithm>

namespace tj::wfg {

bool WaitsForGraph::closes_cycle(NodeId waiter, NodeId target,
                                 std::vector<NodeId>* cycle) const {
  // Functional graph: follow the unique out-edge chain from `target`; the
  // new edge waiter → target closes a cycle iff the chain reaches `waiter`.
  // The walk is step-bounded: once the optimistic (unchecked) insert mode
  // exists the graph may already hold a cycle NOT involving `waiter`, and an
  // unbounded walk would orbit it forever. More steps than live edges ⇒ the
  // walk is trapped in such a foreign cycle ⇒ waiter is not on it.
  NodeId cur = target;
  std::size_t steps = 0;
  while (steps++ <= edges_.size()) {
    if (cur == waiter) {
      if (cycle != nullptr) {
        cycle->clear();
        cycle->push_back(waiter);
        for (NodeId n = target; n != waiter;
             n = edges_.find(n)->second.target) {
          cycle->push_back(n);
        }
      }
      return true;
    }
    const auto it = edges_.find(cur);
    if (it == edges_.end()) return false;
    cur = it->second.target;
  }
  return false;
}

void WaitsForGraph::erase_edge_locked(NodeId from) {
  const auto it = edges_.find(from);
  if (it == edges_.end()) return;
  if (it->second.kind == EdgeKind::Probation) --probation_;
  if (it->second.kind == EdgeKind::Owner) --owner_edges_;
  edges_.erase(it);
}

WaitVerdict WaitsForGraph::add_wait(NodeId waiter, NodeId target,
                                    std::vector<NodeId>* cycle) {
  std::scoped_lock lock(mu_);
  if (!fast_path()) {
    cycle_checks_.fetch_add(1, std::memory_order_relaxed);
    if (closes_cycle(waiter, target, cycle)) {
      return WaitVerdict::WouldDeadlock;
    }
  }
  edges_[waiter] = Edge{target, EdgeKind::Approved};
  return WaitVerdict::Added;
}

WaitVerdict WaitsForGraph::add_probation_wait(NodeId waiter, NodeId target,
                                              std::vector<NodeId>* cycle) {
  std::scoped_lock lock(mu_);
  cycle_checks_.fetch_add(1, std::memory_order_relaxed);
  if (closes_cycle(waiter, target, cycle)) return WaitVerdict::WouldDeadlock;
  edges_[waiter] = Edge{target, EdgeKind::Probation};
  ++probation_;
  return WaitVerdict::Added;
}

WaitVerdict WaitsForGraph::add_checked_wait(NodeId waiter, NodeId target,
                                            std::vector<NodeId>* cycle) {
  std::scoped_lock lock(mu_);
  cycle_checks_.fetch_add(1, std::memory_order_relaxed);
  if (closes_cycle(waiter, target, cycle)) return WaitVerdict::WouldDeadlock;
  edges_[waiter] = Edge{target, EdgeKind::Approved};
  return WaitVerdict::Added;
}

void WaitsForGraph::add_unchecked_wait(NodeId waiter, NodeId target) {
  std::scoped_lock lock(mu_);
  // Deliberately no closes_cycle: the async gate mode trades the synchronous
  // scan for bounded-latency recovery by the background detector.
  edges_[waiter] = Edge{target, EdgeKind::Approved};
}

void WaitsForGraph::remove_wait(NodeId waiter) {
  std::scoped_lock lock(mu_);
  erase_edge_locked(waiter);
}

void WaitsForGraph::add_owner_edge(NodeId promise, NodeId owner) {
  std::scoped_lock lock(mu_);
  edges_[promise] = Edge{owner, EdgeKind::Owner};
  ++owner_edges_;
}

WaitVerdict WaitsForGraph::retarget_owner_edge(NodeId promise,
                                               NodeId new_owner,
                                               std::vector<NodeId>* cycle) {
  std::scoped_lock lock(mu_);
  const auto it = edges_.find(promise);
  cycle_checks_.fetch_add(1, std::memory_order_relaxed);
  // The chain from new_owner reaching the promise node means new_owner
  // (transitively) waits on this very promise: re-pointing would deadlock it.
  if (closes_cycle(promise, new_owner, cycle)) {
    return WaitVerdict::WouldDeadlock;
  }
  if (it != edges_.end() && it->second.kind == EdgeKind::Owner) {
    it->second.target = new_owner;
  } else {
    edges_[promise] = Edge{new_owner, EdgeKind::Owner};
    ++owner_edges_;
  }
  return WaitVerdict::Added;
}

void WaitsForGraph::remove_owner_edge(NodeId promise) {
  std::scoped_lock lock(mu_);
  erase_edge_locked(promise);
}

bool WaitsForGraph::is_waiting(NodeId waiter) const {
  std::scoped_lock lock(mu_);
  return edges_.contains(waiter);
}

std::size_t WaitsForGraph::edge_count() const {
  std::scoped_lock lock(mu_);
  return edges_.size();
}

std::size_t WaitsForGraph::probation_count() const {
  std::scoped_lock lock(mu_);
  return probation_;
}

std::size_t WaitsForGraph::owner_edge_count() const {
  std::scoped_lock lock(mu_);
  return owner_edges_;
}

std::vector<std::vector<NodeId>> WaitsForGraph::find_all_cycles() const {
  std::scoped_lock lock(mu_);
  std::vector<std::vector<NodeId>> cycles;
  // Functional graph: colour nodes by the walk that first reached them.
  // A walk that re-enters ITS OWN trail found a cycle; one that reaches a
  // previously coloured node merges into known territory.
  std::unordered_map<NodeId, std::size_t> colour;
  std::size_t walk = 0;
  for (const auto& [start, edge] : edges_) {
    (void)edge;
    if (colour.contains(start)) continue;
    ++walk;
    std::vector<NodeId> trail;
    NodeId cur = start;
    while (true) {
      const auto seen = colour.find(cur);
      if (seen != colour.end()) {
        if (seen->second == walk) {
          // Re-entered this walk's trail: the cycle is the suffix from cur.
          const auto first =
              std::find(trail.begin(), trail.end(), cur);
          cycles.emplace_back(first, trail.end());
        }
        break;
      }
      colour[cur] = walk;
      trail.push_back(cur);
      const auto it = edges_.find(cur);
      if (it == edges_.end()) break;
      cur = it->second.target;
    }
  }
  return cycles;
}

std::vector<WaitsForGraph::EdgeView> WaitsForGraph::edges() const {
  std::scoped_lock lock(mu_);
  std::vector<EdgeView> out;
  out.reserve(edges_.size());
  for (const auto& [from, edge] : edges_) {
    out.push_back(EdgeView{from, edge.target, edge.kind});
  }
  return out;
}

std::vector<NodeId> WaitsForGraph::chain_from(NodeId from) const {
  std::scoped_lock lock(mu_);
  std::vector<NodeId> out{from};
  NodeId cur = from;
  while (true) {
    const auto it = edges_.find(cur);
    if (it == edges_.end()) break;
    cur = it->second.target;
    // Guard against concurrent-cycle display; cap at edge count.
    if (out.size() > edges_.size() + 1) break;
    out.push_back(cur);
  }
  return out;
}

}  // namespace tj::wfg
