#include "wfg/resource_graph.hpp"

#include <algorithm>

namespace tj::wfg {

void ResourceGraph::add_provider(ResId res, TaskUid task) {
  std::scoped_lock lock(mu_);
  providers_[res].insert(task);
}

void ResourceGraph::remove_provider(ResId res, TaskUid task) {
  std::scoped_lock lock(mu_);
  const auto it = providers_.find(res);
  if (it == providers_.end()) return;
  it->second.erase(task);
  if (it->second.empty()) providers_.erase(it);
}

bool ResourceGraph::reaches_task(const std::vector<ResId>& first_hop,
                                 TaskUid needle,
                                 std::vector<TaskUid>* path) const {
  // DFS over task→res→task edges. `path` (when requested) accumulates the
  // provider tasks along the current branch.
  std::unordered_set<TaskUid> visited;
  struct Frame {
    TaskUid task;
    std::size_t next = 0;          // index into its wait set walk state
    std::vector<TaskUid> fanout;   // provider tasks reachable in one hop
  };

  auto expand = [this](const std::vector<ResId>& waits) {
    std::vector<TaskUid> out;
    for (ResId r : waits) {
      const auto pit = providers_.find(r);
      if (pit == providers_.end()) continue;
      out.insert(out.end(), pit->second.begin(), pit->second.end());
    }
    return out;
  };

  std::vector<Frame> stack;
  stack.push_back({needle, 0, expand(first_hop)});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next >= f.fanout.size()) {
      stack.pop_back();
      if (path != nullptr && !path->empty()) path->pop_back();
      continue;
    }
    const TaskUid t = f.fanout[f.next++];
    if (t == needle) {
      return true;  // `path` holds the intermediate tasks of the cycle
    }
    if (!visited.insert(t).second) continue;
    const auto wit = waiting_.find(t);
    if (wit == waiting_.end()) continue;  // t is runnable: chain ends
    if (path != nullptr) path->push_back(t);
    stack.push_back({t, 0, expand(wit->second)});
  }
  return false;
}

bool ResourceGraph::try_wait(TaskUid task,
                             const std::vector<ResId>& resources) {
  std::scoped_lock lock(mu_);
  ++checks_;
  if (reaches_task(resources, task, nullptr)) return false;
  waiting_[task] = resources;
  return true;
}

void ResourceGraph::clear_wait(TaskUid task) {
  std::scoped_lock lock(mu_);
  waiting_.erase(task);
}

std::vector<TaskUid> ResourceGraph::witness_cycle(
    TaskUid task, const std::vector<ResId>& resources) const {
  std::scoped_lock lock(mu_);
  std::vector<TaskUid> path;
  if (!reaches_task(resources, task, &path)) return {};
  path.insert(path.begin(), task);
  return path;
}

std::vector<std::pair<TaskUid, TaskUid>> ResourceGraph::wfg_projection()
    const {
  std::scoped_lock lock(mu_);
  std::vector<std::pair<TaskUid, TaskUid>> edges;
  for (const auto& [task, waits] : waiting_) {
    for (ResId r : waits) {
      const auto pit = providers_.find(r);
      if (pit == providers_.end()) continue;
      for (TaskUid p : pit->second) edges.emplace_back(task, p);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::pair<ResId, ResId>> ResourceGraph::sg_projection() const {
  std::scoped_lock lock(mu_);
  std::vector<std::pair<ResId, ResId>> edges;
  for (const auto& [res, provs] : providers_) {
    for (TaskUid p : provs) {
      const auto wit = waiting_.find(p);
      if (wit == waiting_.end()) continue;
      for (ResId s : wit->second) edges.emplace_back(res, s);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::size_t ResourceGraph::blocked_count() const {
  std::scoped_lock lock(mu_);
  return waiting_.size();
}

}  // namespace tj::wfg
