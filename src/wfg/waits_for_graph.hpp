#pragma once
// Waits-for graph with on-demand cycle detection. Plays the role Armus plays
// in the paper's evaluation (Sec. 6): when a conservative policy flags a join,
// the graph decides precisely whether blocking would truly deadlock.
//
// Every *blocking* join registers a wait edge here (waiter → target); a task
// waits on at most one target at a time, so the graph is functional (at most
// one out-edge per node) and a cycle check is a simple chain walk.
//
// Soundness note (an explicit fix over a naive fallback): a cycle can be
// closed by a *policy-approved* edge if some policy-rejected ("probation")
// edge is already present in the graph. TJ/KJ soundness only rules out
// all-approved cycles. We therefore check every insertion for cycles whenever
// at least one probation edge is live; when no probation edge exists,
// insertions are unchecked O(1). Deadlock-free programs that never trip the
// policy thus pay no cycle-detection cost, matching the paper's fast path.
//
// Promises add a second edge class: a persistent *owner edge* from a promise
// node to the task currently obligated to fulfill it (Voss & Sarkar's
// ownership model). Owner edges make mixed future/promise cycles visible to
// the chain walk (waiter → promise → owner → ...), so the graph remains the
// single source of truth for "would blocking deadlock". TJ's soundness
// theorem covers futures only, so while any owner edge is live every
// insertion is cycle-checked, exactly as with probation edges; futures-only
// programs keep the unchecked fast path. Promise nodes share the NodeId
// space via a reserved high bit (see promise_node_id).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/contention.hpp"

namespace tj::wfg {

using NodeId = std::uint64_t;

/// Maps a promise uid into the node-id space shared with task uids.
constexpr NodeId promise_node_id(std::uint64_t promise_uid) {
  return promise_uid | (NodeId{1} << 63);
}

/// True when a node id names a promise rather than a task.
constexpr bool is_promise_node(NodeId id) {
  return (id & (NodeId{1} << 63)) != 0;
}

/// The promise uid a promise node id encodes.
constexpr std::uint64_t promise_uid_of(NodeId id) {
  return id & ~(NodeId{1} << 63);
}

/// Result of attempting to register a wait edge.
enum class WaitVerdict : std::uint8_t {
  Added,          ///< edge registered; safe to block
  WouldDeadlock,  ///< edge would close a cycle; not registered
};

class WaitsForGraph {
 public:
  enum class EdgeKind : std::uint8_t { Approved, Probation, Owner };

  /// One edge of the edges() snapshot (live-introspection dump).
  struct EdgeView {
    NodeId from;
    NodeId to;
    EdgeKind kind;
  };

  WaitsForGraph() = default;
  WaitsForGraph(const WaitsForGraph&) = delete;
  WaitsForGraph& operator=(const WaitsForGraph&) = delete;

  // On every add_* method, `cycle` (when non-null) receives the concrete
  // cycle a WouldDeadlock verdict found — the node sequence waiter → target
  // → … back around, excluding the closing repeat of waiter — captured
  // atomically under the graph lock. Untouched on Added (cold path only).

  /// Registers waiter → target for a policy-approved join. Checks for a cycle
  /// only if probation edges are live (see header comment).
  WaitVerdict add_wait(NodeId waiter, NodeId target,
                       std::vector<NodeId>* cycle = nullptr);

  /// Registers waiter → target for a policy-rejected join; always cycle-checks
  /// and marks the edge as probation while it lasts.
  WaitVerdict add_probation_wait(NodeId waiter, NodeId target,
                                 std::vector<NodeId>* cycle = nullptr);

  /// Unconditionally cycle-checks and registers (the Armus-only baseline,
  /// where every join is verified by cycle detection).
  WaitVerdict add_checked_wait(NodeId waiter, NodeId target,
                               std::vector<NodeId>* cycle = nullptr);

  /// Registers waiter → target with NO cycle check whatsoever — the
  /// optimistic (async-detection) gate mode, where insertion must stay O(1)
  /// and a background detector is responsible for finding the cycles this
  /// may create. The graph therefore tolerates live cycles: every other
  /// entry point bounds its chain walks, and find_all_cycles() is the
  /// authoritative ground-truth scan the detector confirms against.
  void add_unchecked_wait(NodeId waiter, NodeId target);

  /// Removes the waiter's edge once its join completed (or was aborted).
  void remove_wait(NodeId waiter);

  /// Registers the persistent owner edge promise → owner for a freshly made
  /// promise (cannot close a cycle: the promise node has no in-edges yet).
  void add_owner_edge(NodeId promise, NodeId owner);

  /// Re-points the owner edge at a new owner (ownership transfer). Cycle-
  /// checked: transferring a promise to a task that (transitively) waits on
  /// it would deadlock that task; on WouldDeadlock the edge is unchanged.
  WaitVerdict retarget_owner_edge(NodeId promise, NodeId new_owner,
                                  std::vector<NodeId>* cycle = nullptr);

  /// Drops the owner edge once the promise is fulfilled (or orphaned).
  void remove_owner_edge(NodeId promise);

  /// True iff waiter currently has a registered edge.
  bool is_waiting(NodeId waiter) const;

  std::size_t edge_count() const;
  std::size_t probation_count() const;
  std::size_t owner_edge_count() const;

  /// Total cycle checks performed (for evaluation counters). Atomic so the
  /// flight recorder can sample it before/after a scan without taking mu_.
  std::uint64_t cycle_checks() const {
    return cycle_checks_.load(std::memory_order_relaxed);
  }

  /// The wait chain starting at `from` (follows out-edges until none).
  std::vector<NodeId> chain_from(NodeId from) const;

  /// A consistent snapshot of every live edge (live introspection / verdict
  /// witnesses). Takes the graph lock; not for hot paths.
  std::vector<EdgeView> edges() const;

  /// Scans the whole graph for cycles among the currently blocked tasks —
  /// the *detection* flavour of the deadlock problem (Sec. 7.1 category 2),
  /// usable as a diagnostic sweep. Since each task waits on at most one
  /// target, cycles are disjoint; every cycle is returned once.
  std::vector<std::vector<NodeId>> find_all_cycles() const;

 private:
  struct Edge {
    NodeId target;
    EdgeKind kind;
  };

  // Pre: lock held. True iff target ⇝ waiter through current edges; when so
  // and `cycle` is non-null, records [waiter, target, …] up to (excluding)
  // the closing repeat of waiter.
  bool closes_cycle(NodeId waiter, NodeId target,
                    std::vector<NodeId>* cycle = nullptr) const;

  // Pre: lock held. Approved insertions are unchecked only while the graph
  // holds no edge class TJ's soundness does not cover.
  bool fast_path() const { return probation_ == 0 && owner_edges_ == 0; }

  void erase_edge_locked(NodeId from);

  // Profiled ("wfg.graph"): with the gate locks, the serialization ROADMAP
  // item 1 targets — its contended share is the number to watch.
  mutable obs::ProfiledMutex mu_{"wfg.graph"};
  std::unordered_map<NodeId, Edge> edges_;  // guarded by mu_
  std::size_t probation_ = 0;               // guarded by mu_
  std::size_t owner_edges_ = 0;             // guarded by mu_
  std::atomic<std::uint64_t> cycle_checks_{0};  // relaxed; written under mu_
};

}  // namespace tj::wfg
