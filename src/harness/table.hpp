#pragma once
// Text renderers for the reproduced artifacts: Table 2 (overhead factors and
// geometric means), Figure 2 (means with 95% confidence intervals as ASCII
// interval plots) and a CSV dump for external plotting.

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace tj::harness {

/// One benchmark's measurements: baseline first, then one entry per policy.
struct BenchmarkRecord {
  std::string name;
  Measurement baseline;
  std::vector<Measurement> policies;
};

/// Table 2: per benchmark the baseline absolute time (s) and memory (MB),
/// then time/memory overhead factors per policy; geometric-mean footer.
/// The best factor in each row is marked with '*' (the paper bold-faces it).
std::string render_table2(const std::vector<BenchmarkRecord>& rows);

/// Figure 2: per benchmark, mean execution time ± 95% CI per policy as a
/// horizontal interval plot.
std::string render_figure2(const std::vector<BenchmarkRecord>& rows);

/// Verifier diagnostics: joins checked, rejections, false positives, cycle
/// checks — the mechanism behind the NQueens narrative (Sec. 6.2).
std::string render_gate_stats(const std::vector<BenchmarkRecord>& rows);

/// Machine-readable dump (one line per benchmark × policy).
std::string render_csv(const std::vector<BenchmarkRecord>& rows);

}  // namespace tj::harness
