#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tj::harness {

namespace {

// Two-sided 97.5% Student-t quantiles for 1..30 degrees of freedom.
constexpr double kT975[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double t975(std::size_t df) {
  if (df == 0) return 0.0;
  if (df <= 30) return kT975[df - 1];
  return 1.96;
}

}  // namespace

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("geometric_mean: empty sample");
  double log_acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) {
      throw std::invalid_argument("geometric_mean: non-positive input");
    }
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double ci95_half_width(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return t975(xs.size() - 1) * stddev(xs) /
         std::sqrt(static_cast<double>(xs.size()));
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.ci95 = ci95_half_width(xs);
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

}  // namespace tj::harness
