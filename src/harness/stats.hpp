#pragma once
// Statistics used by the evaluation: the paper reports steady-state means of
// 30 post-warmup runs, 95% confidence intervals (Figure 2) and geometric
// means of overhead factors (Table 2).

#include <cstddef>
#include <vector>

namespace tj::harness {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // sample variance (n-1)
double stddev(const std::vector<double>& xs);

/// Geometric mean; requires strictly positive inputs.
double geometric_mean(const std::vector<double>& xs);

/// Half-width of the 95% confidence interval for the mean, using Student's
/// t quantile for n-1 degrees of freedom (normal approximation for n > 30).
double ci95_half_width(const std::vector<double>& xs);

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< half-width
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

}  // namespace tj::harness
