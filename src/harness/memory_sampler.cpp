#include "harness/memory_sampler.hpp"

#include <unistd.h>

#include <chrono>
#include <fstream>

namespace tj::harness {

std::size_t current_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::size_t total_pages = 0;
  std::size_t rss_pages = 0;
  statm >> total_pages >> rss_pages;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::size_t>(page > 0 ? page : 4096);
}

MemorySampler::MemorySampler(unsigned interval_ms) {
  // Guaranteed pre-run sample, taken synchronously so the measured region
  // can never observe zero samples no matter how fast it finishes.
  sample_once();
  thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
}

MemorySampler::~MemorySampler() { stop(); }

void MemorySampler::stop() {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true) && thread_.joinable()) {
    thread_.join();
    // Guaranteed post-run sample: the peak reflects at least the RSS at the
    // end of the measured region even if every periodic tick missed it.
    sample_once();
  }
}

void MemorySampler::sample_once() {
  const std::size_t rss = current_rss_bytes();
  sum_bytes_.fetch_add(rss, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (rss > peak && !peak_bytes_.compare_exchange_weak(
                           peak, rss, std::memory_order_relaxed)) {
  }
}

void MemorySampler::loop(unsigned interval_ms) {
  while (!stop_.load(std::memory_order_relaxed)) {
    sample_once();
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

double MemorySampler::average_bytes() const {
  const std::uint64_t n = count_.load();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_bytes_.load()) / static_cast<double>(n);
}

std::size_t MemorySampler::peak_bytes() const { return peak_bytes_.load(); }

}  // namespace tj::harness
