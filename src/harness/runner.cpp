#include "harness/runner.hpp"

#include <algorithm>

#include "harness/memory_sampler.hpp"
#include "obs/causal.hpp"
#include "runtime/runtime.hpp"

namespace tj::harness {

namespace {

// Gate stats accumulate via the field-complete operator+= defined alongside
// GateStats (core/guarded.hpp); recorder counters ride along here. When
// observing, the rep's event stream is drained (the runtime is quiescent and
// about to be destroyed) and the critical-path attribution of verifier
// overhead accumulated — this happens after the app reported its wall time,
// so the analysis never contaminates the measurement.
void accumulate_run(Measurement& m, const runtime::Runtime& rt) {
  m.gate += rt.gate_stats();
  if (obs::FlightRecorder* rec = rt.recorder(); rec != nullptr) {
    m.obs_events += rec->events_recorded();
    m.obs_dropped += rec->events_dropped();
    const obs::CriticalPathReport rep =
        obs::analyze_critical_path(rec->drain());
    m.verifier_on_path_ns += rep.verifier_on_path_ns();
    m.verifier_off_path_ns += rep.verifier_off_path_ns();
  }
}

}  // namespace

Measurement measure(const apps::AppInfo& app, core::PolicyChoice policy,
                    const RunConfig& cfg) {
  Measurement m;
  m.policy = policy;

  runtime::Config rt_cfg;
  rt_cfg.policy = policy;
  rt_cfg.fault = core::FaultMode::Fallback;
  rt_cfg.scheduler = cfg.scheduler;
  rt_cfg.workers = cfg.workers;
  rt_cfg.obs.enabled = cfg.observe;
  rt_cfg.obs.buffer_capacity = cfg.observe_buffer;

  std::vector<double> times;
  std::vector<double> verifier_bytes;
  std::vector<double> rss_deltas;
  times.reserve(cfg.reps);

  const unsigned total = cfg.warmups + cfg.reps;
  for (unsigned rep = 0; rep < total; ++rep) {
    const bool counted = rep >= cfg.warmups;
    const std::size_t rss_start = current_rss_bytes();
    MemorySampler sampler(/*interval_ms=*/5);
    runtime::Runtime rt(rt_cfg);
    // The app reports the wall time of its parallel section; reference
    // computations and self-checks stay off the clock.
    const apps::AppOutcome outcome = app.run(rt, cfg.size);
    sampler.stop();
    if (!counted) continue;
    times.push_back(outcome.seconds);
    verifier_bytes.push_back(static_cast<double>(rt.policy_peak_bytes()));
    const std::size_t peak = std::max(sampler.peak_bytes(), rss_start);
    rss_deltas.push_back(static_cast<double>(peak - rss_start));
    accumulate_run(m, rt);
    m.app_valid = m.app_valid && outcome.valid;
    m.tasks = outcome.tasks;
  }

  m.time_s = summarize(times);
  m.verifier_peak_bytes = verifier_bytes.empty() ? 0.0 : mean(verifier_bytes);
  m.rss_peak_delta_bytes = rss_deltas.empty() ? 0.0 : mean(rss_deltas);
  return m;
}

BenchmarkRun measure_interleaved(
    const apps::AppInfo& app, const std::vector<core::PolicyChoice>& policies,
    const RunConfig& cfg) {
  struct Cell {
    core::PolicyChoice policy;
    std::vector<double> times;
    std::vector<double> verifier_bytes;
    std::vector<double> rss_deltas;
    Measurement acc;  ///< gate/recorder accumulation, validity, task count
  };
  std::vector<Cell> cells;
  cells.push_back({core::PolicyChoice::None, {}, {}, {}, {}});
  for (core::PolicyChoice p : policies) {
    cells.push_back({p, {}, {}, {}, {}});
  }

  // The app's memory footprint is captured on the very first (cold)
  // execution: once the retained heap is warm, per-run RSS deltas are ~0.
  double first_run_delta = 0.0;
  bool first_run = true;

  const unsigned rounds = cfg.warmups + cfg.reps;
  for (unsigned round = 0; round < rounds; ++round) {
    const bool counted = round >= cfg.warmups;
    for (Cell& cell : cells) {
      runtime::Config rt_cfg;
      rt_cfg.policy = cell.policy;
      rt_cfg.fault = core::FaultMode::Fallback;
      rt_cfg.scheduler = cfg.scheduler;
      rt_cfg.workers = cfg.workers;
      rt_cfg.obs.enabled = cfg.observe;
      rt_cfg.obs.buffer_capacity = cfg.observe_buffer;
      const std::size_t rss_start = current_rss_bytes();
      MemorySampler sampler(/*interval_ms=*/5);
      runtime::Runtime rt(rt_cfg);
      const apps::AppOutcome outcome = app.run(rt, cfg.size);
      sampler.stop();
      if (first_run) {
        first_run = false;
        first_run_delta = static_cast<double>(
            std::max(sampler.peak_bytes(), rss_start) - rss_start);
      }
      if (!counted) continue;
      cell.times.push_back(outcome.seconds);
      cell.verifier_bytes.push_back(
          static_cast<double>(rt.policy_peak_bytes()));
      const std::size_t peak = std::max(sampler.peak_bytes(), rss_start);
      cell.rss_deltas.push_back(static_cast<double>(peak - rss_start));
      accumulate_run(cell.acc, rt);
      cell.acc.app_valid = cell.acc.app_valid && outcome.valid;
      cell.acc.tasks = outcome.tasks;
    }
  }

  auto finish = [](const Cell& cell) {
    Measurement m = cell.acc;
    m.policy = cell.policy;
    m.time_s = summarize(cell.times);
    m.verifier_peak_bytes =
        cell.verifier_bytes.empty() ? 0.0 : mean(cell.verifier_bytes);
    m.rss_peak_delta_bytes =
        cell.rss_deltas.empty() ? 0.0 : mean(cell.rss_deltas);
    return m;
  };

  BenchmarkRun out;
  out.baseline = finish(cells.front());
  out.baseline.rss_peak_delta_bytes =
      std::max(out.baseline.rss_peak_delta_bytes, first_run_delta);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    out.policies.push_back(finish(cells[i]));
  }
  return out;
}

double time_factor(const Measurement& policy, const Measurement& baseline) {
  if (baseline.time_s.mean <= 0.0) return 0.0;
  return policy.time_s.mean / baseline.time_s.mean;
}

double memory_factor(const Measurement& policy, const Measurement& baseline) {
  // The app footprint is taken from the baseline's RSS delta; the verifier
  // term is the deterministic byte counter. Floor the footprint at 1 MiB so
  // tiny workloads don't divide by RSS sampling noise.
  const double footprint =
      std::max(baseline.rss_peak_delta_bytes, 1.0 * (1 << 20));
  return (footprint + policy.verifier_peak_bytes) / footprint;
}

}  // namespace tj::harness
