#pragma once
// Benchmark runner: executes one application under one policy for several
// repetitions on fresh runtimes, recording execution times, verifier bytes,
// RSS, and gate statistics — the data behind Table 2 and Figure 2.

#include <cstdint>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/guarded.hpp"
#include "core/policy_ids.hpp"
#include "harness/stats.hpp"
#include "runtime/config.hpp"

namespace tj::harness {

struct RunConfig {
  apps::AppSize size = apps::AppSize::Small;
  unsigned reps = 10;
  unsigned warmups = 1;
  runtime::SchedulerMode scheduler = runtime::SchedulerMode::Cooperative;
  unsigned workers = 0;  ///< 0 → hardware concurrency
  /// Run every cell with the flight recorder enabled; event/drop counts are
  /// then reported per cell (obs_events/obs_dropped). The recorder's own
  /// overhead is part of what gets measured — use the same flag across every
  /// compared cell.
  bool observe = false;
  /// Per-thread event-buffer capacity when `observe` is set.
  std::size_t observe_buffer = std::size_t{1} << 16;
};

struct Measurement {
  core::PolicyChoice policy = core::PolicyChoice::None;
  Summary time_s;                  ///< post-warmup execution times
  double verifier_peak_bytes = 0;  ///< mean across reps (deterministic metric)
  double rss_peak_delta_bytes = 0; ///< mean of per-rep (peak − start) RSS
  core::GateStats gate;            ///< accumulated across reps
  bool app_valid = true;           ///< every rep passed the app self-check
  std::uint64_t tasks = 0;         ///< tasks per rep (last rep)
  std::uint64_t obs_events = 0;    ///< flight-recorder events (all reps)
  std::uint64_t obs_dropped = 0;   ///< events dropped on full rings (all reps)
  /// Critical-path attribution of verifier overhead (policy checks + WFG
  /// cycle scans), accumulated across reps; zero unless `observe` is set.
  /// on + off reconciles with the metrics histograms' sums per rep (see
  /// obs/causal.hpp).
  std::uint64_t verifier_on_path_ns = 0;
  std::uint64_t verifier_off_path_ns = 0;
};

/// Runs `app` under `policy` per `cfg`. Throws only on harness misuse; app
/// self-check failures are reported through `app_valid`.
Measurement measure(const apps::AppInfo& app, core::PolicyChoice policy,
                    const RunConfig& cfg);

/// Measures one benchmark under the baseline AND each policy with the reps
/// INTERLEAVED round-robin (warmup rounds first, then `reps` measured
/// rounds, each running every cell once). Interleaving keeps heap/page
/// warm-up symmetric across cells — measuring cells back-to-back makes
/// whichever runs first look systematically slower. Prefer this for any
/// cross-policy comparison (it is what the Table-2/Figure-2 binaries use).
struct BenchmarkRun {
  Measurement baseline;
  std::vector<Measurement> policies;
};
BenchmarkRun measure_interleaved(const apps::AppInfo& app,
                                 const std::vector<core::PolicyChoice>& policies,
                                 const RunConfig& cfg);

/// Overhead factor helpers (paper Table 2 semantics).
double time_factor(const Measurement& policy, const Measurement& baseline);

/// Memory factor: (baseline footprint + verifier peak) / baseline footprint,
/// with the baseline footprint taken from the baseline run's RSS delta.
/// Deterministic in the verifier term; see EXPERIMENTS.md for rationale.
double memory_factor(const Measurement& policy, const Measurement& baseline);

}  // namespace tj::harness
