#pragma once
// Resident-set-size sampling, mirroring the paper's methodology ("memory
// usage is the average amount of memory in use ... sampled once every
// 100 ms"). A background thread reads /proc/self/statm on an interval and
// records average and peak RSS. The deterministic verifier-byte counter
// (Verifier::bytes_in_use) is the primary memory metric; this is the
// secondary, whole-process one.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace tj::harness {

/// Current resident set size in bytes (0 if /proc is unavailable).
std::size_t current_rss_bytes();

class MemorySampler {
 public:
  /// Takes one guaranteed sample synchronously before the sampling thread
  /// starts, so even a measured region shorter than the interval records a
  /// meaningful average/peak (short cold runs used to race the first tick
  /// and report zero samples).
  explicit MemorySampler(unsigned interval_ms = 10);
  ~MemorySampler();
  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;

  /// Stops sampling (idempotent); takes one final guaranteed sample after
  /// joining the thread, bracketing the run. Average/peak are stable
  /// afterwards.
  void stop();

  double average_bytes() const;
  std::size_t peak_bytes() const;
  std::uint64_t samples() const { return count_.load(); }

 private:
  void sample_once();
  void loop(unsigned interval_ms);

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bytes_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::thread thread_;
};

}  // namespace tj::harness
