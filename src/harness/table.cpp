#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tj::harness {

namespace {

std::string fmt(double v, int prec = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string pad(std::string s, std::size_t width, bool left = false) {
  if (s.size() < width) {
    const std::string fill(width - s.size(), ' ');
    s = left ? s + fill : fill + s;
  }
  return s;
}

}  // namespace

std::string render_table2(const std::vector<BenchmarkRecord>& rows) {
  std::ostringstream os;
  os << "Table 2: runtime and memory overheads for verification\n";
  os << "('*' marks the best factor in each row, as the paper's bold face)\n\n";
  if (rows.empty()) return os.str();

  const std::size_t np = rows.front().policies.size();
  os << pad("Benchmark", 14, true) << pad("Base", 10);
  for (const Measurement& p : rows.front().policies) {
    os << pad(std::string(core::to_string(p.policy)), 10);
  }
  os << "\n";

  std::vector<std::vector<double>> time_factors(np);
  std::vector<std::vector<double>> mem_factors(np);

  for (const BenchmarkRecord& r : rows) {
    // Time row.
    std::vector<double> tf(np);
    for (std::size_t i = 0; i < np; ++i) {
      tf[i] = time_factor(r.policies[i], r.baseline);
      time_factors[i].push_back(tf[i]);
    }
    const double best_t = *std::min_element(tf.begin(), tf.end());
    os << pad(r.name, 14, true) << pad(fmt(r.baseline.time_s.mean, 3) + "s", 10);
    for (std::size_t i = 0; i < np; ++i) {
      std::string cell = fmt(tf[i]) + "x";
      if (tf[i] == best_t) cell += "*";
      os << pad(cell, 10);
    }
    os << "\n";
    // Memory row.
    std::vector<double> mf(np);
    for (std::size_t i = 0; i < np; ++i) {
      mf[i] = memory_factor(r.policies[i], r.baseline);
      mem_factors[i].push_back(mf[i]);
    }
    const double best_m = *std::min_element(mf.begin(), mf.end());
    const double base_mb = r.baseline.rss_peak_delta_bytes / (1 << 20);
    os << pad("", 14, true) << pad(fmt(base_mb, 1) + "MB", 10);
    for (std::size_t i = 0; i < np; ++i) {
      std::string cell = fmt(mf[i]) + "x";
      if (mf[i] == best_m) cell += "*";
      os << pad(cell, 10);
    }
    os << "\n";
  }

  os << "\n" << pad("Geom. mean", 14, true) << pad("time", 10);
  for (std::size_t i = 0; i < np; ++i) {
    os << pad(fmt(geometric_mean(time_factors[i])) + "x", 10);
  }
  os << "\n" << pad("", 14, true) << pad("mem", 10);
  for (std::size_t i = 0; i < np; ++i) {
    os << pad(fmt(geometric_mean(mem_factors[i])) + "x", 10);
  }
  os << "\n";
  return os.str();
}

std::string render_figure2(const std::vector<BenchmarkRecord>& rows) {
  std::ostringstream os;
  os << "Figure 2: execution times per policy (mean with 95% CI)\n\n";
  for (const BenchmarkRecord& r : rows) {
    // Scale all bars of a benchmark to its slowest policy mean + CI.
    double top = r.baseline.time_s.mean + r.baseline.time_s.ci95;
    for (const Measurement& p : r.policies) {
      top = std::max(top, p.time_s.mean + p.time_s.ci95);
    }
    if (top <= 0.0) top = 1.0;
    os << r.name << "\n";
    auto bar = [&](const std::string& label, const Summary& t) {
      constexpr int kWidth = 50;
      const int m = static_cast<int>(std::lround(t.mean / top * kWidth));
      const int lo =
          static_cast<int>(std::lround((t.mean - t.ci95) / top * kWidth));
      const int hi =
          static_cast<int>(std::lround((t.mean + t.ci95) / top * kWidth));
      std::string lane(kWidth + 2, ' ');
      for (int i = std::max(0, lo); i <= std::min(kWidth + 1, hi); ++i) {
        lane[static_cast<std::size_t>(i)] = '-';
      }
      if (m >= 0 && m <= kWidth + 1) lane[static_cast<std::size_t>(m)] = 'o';
      os << "  " << pad(label, 10, true) << "|" << lane << "| "
         << fmt(t.mean, 4) << "s +/- " << fmt(t.ci95, 4) << "\n";
    };
    bar("baseline", r.baseline.time_s);
    for (const Measurement& p : r.policies) {
      bar(std::string(core::to_string(p.policy)), p.time_s);
    }
    os << "\n";
  }
  return os.str();
}

std::string render_gate_stats(const std::vector<BenchmarkRecord>& rows) {
  std::ostringstream os;
  os << "Verifier gate statistics (accumulated over reps)\n\n";
  os << pad("Benchmark", 14, true) << pad("Policy", 10) << pad("joins", 12)
     << pad("rejected", 12) << pad("false-pos", 12) << pad("cycle-chk", 12)
     << pad("averted", 10) << "\n";
  for (const BenchmarkRecord& r : rows) {
    for (const Measurement& p : r.policies) {
      os << pad(r.name, 14, true)
         << pad(std::string(core::to_string(p.policy)), 10)
         << pad(std::to_string(p.gate.joins_checked), 12)
         << pad(std::to_string(p.gate.policy_rejections), 12)
         << pad(std::to_string(p.gate.false_positives), 12)
         << pad(std::to_string(p.gate.cycle_checks), 12)
         << pad(std::to_string(p.gate.deadlocks_averted), 10) << "\n";
    }
  }
  return os.str();
}

std::string render_csv(const std::vector<BenchmarkRecord>& rows) {
  std::ostringstream os;
  os << "benchmark,policy,time_mean_s,time_ci95_s,time_factor,"
        "verifier_peak_bytes,rss_peak_delta_bytes,mem_factor,joins,"
        "rejections,false_positives,cycle_checks,app_valid,"
        "obs_events,obs_dropped,verifier_on_path_ns,verifier_off_path_ns\n";
  for (const BenchmarkRecord& r : rows) {
    auto line = [&](const Measurement& m) {
      os << r.name << "," << core::to_string(m.policy) << ","
         << m.time_s.mean << "," << m.time_s.ci95 << ","
         << time_factor(m, r.baseline) << "," << m.verifier_peak_bytes << ","
         << m.rss_peak_delta_bytes << "," << memory_factor(m, r.baseline)
         << "," << m.gate.joins_checked << "," << m.gate.policy_rejections
         << "," << m.gate.false_positives << "," << m.gate.cycle_checks << ","
         << (m.app_valid ? 1 : 0) << "," << m.obs_events << ","
         << m.obs_dropped << "," << m.verifier_on_path_ns << ","
         << m.verifier_off_path_ns << "\n";
    };
    line(r.baseline);
    for (const Measurement& p : r.policies) line(p);
  }
  return os.str();
}

}  // namespace tj::harness
