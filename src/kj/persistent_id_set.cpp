#include "kj/persistent_id_set.hpp"

#include <bit>

namespace tj::kj {

// One node type serves both roles: height 0 → `bits` is the 64-id bitmap;
// height > 0 → `kids` are the 16 children. Immutable after construction.
struct PersistentIdSet::Node {
  explicit Node(core::PolicyAllocator* a) : alloc(a) {
    if (alloc != nullptr) alloc->add(sizeof(Node));
  }
  ~Node() {
    if (alloc != nullptr) alloc->sub(sizeof(Node));
  }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  core::PolicyAllocator* alloc;
  std::uint64_t bits = 0;
  NodePtr kids[1u << kFanBits];
};

PersistentIdSet::NodePtr PersistentIdSet::make_leaf(
    std::uint64_t bits, core::PolicyAllocator* alloc) {
  auto n = std::make_shared<Node>(alloc);
  n->bits = bits;
  return n;
}

PersistentIdSet::NodePtr PersistentIdSet::make_inner(
    core::PolicyAllocator* alloc) {
  return std::make_shared<Node>(alloc);
}

bool PersistentIdSet::contains(std::uint32_t id) const {
  if (root_ == nullptr || id >= capacity(height_)) return false;
  const Node* node = root_.get();
  for (std::uint32_t h = height_; h > 0; --h) {
    const std::uint32_t slot =
        (id >> (kLeafBits + kFanBits * (h - 1))) & ((1u << kFanBits) - 1);
    node = node->kids[slot].get();
    if (node == nullptr) return false;
  }
  return (node->bits >> (id & 63)) & 1u;
}

PersistentIdSet::NodePtr PersistentIdSet::insert_rec(
    const NodePtr& node, std::uint32_t height, std::uint32_t id,
    core::PolicyAllocator* alloc) {
  if (height == 0) {
    const std::uint64_t bit = 1ull << (id & 63);
    if (node != nullptr && (node->bits & bit)) return node;  // already present
    return make_leaf((node != nullptr ? node->bits : 0) | bit, alloc);
  }
  const std::uint32_t slot =
      (id >> (kLeafBits + kFanBits * (height - 1))) & ((1u << kFanBits) - 1);
  auto fresh = std::make_shared<Node>(alloc);
  if (node != nullptr) {
    for (std::uint32_t i = 0; i < (1u << kFanBits); ++i) {
      fresh->kids[i] = node->kids[i];
    }
  }
  fresh->kids[slot] = insert_rec(node != nullptr ? node->kids[slot] : nullptr,
                                 height - 1, id, alloc);
  return fresh;
}

PersistentIdSet PersistentIdSet::insert(std::uint32_t id,
                                        core::PolicyAllocator* alloc) const {
  NodePtr root = root_;
  std::uint32_t height = height_;
  if (root == nullptr) {
    // Start with the smallest trie that fits `id`.
    height = 0;
    while (id >= capacity(height)) ++height;
  } else {
    while (id >= capacity(height)) {
      // Lift: the old root becomes child 0 of a taller root.
      auto lifted = std::make_shared<Node>(alloc);
      lifted->kids[0] = root;
      root = std::move(lifted);
      ++height;
    }
  }
  return PersistentIdSet(insert_rec(root, height, id, alloc), height);
}

PersistentIdSet::NodePtr PersistentIdSet::merge_rec(
    const NodePtr& a, const NodePtr& b, std::uint32_t height,
    core::PolicyAllocator* alloc) {
  if (a == b || b == nullptr) return a;  // pointer equality: shared history
  if (a == nullptr) return b;
  if (height == 0) {
    if ((a->bits | b->bits) == a->bits) return a;
    if ((a->bits | b->bits) == b->bits) return b;
    return make_leaf(a->bits | b->bits, alloc);
  }
  NodePtr merged[1u << kFanBits];
  bool all_a = true;
  bool all_b = true;
  for (std::uint32_t i = 0; i < (1u << kFanBits); ++i) {
    merged[i] = merge_rec(a->kids[i], b->kids[i], height - 1, alloc);
    all_a = all_a && merged[i] == a->kids[i];
    all_b = all_b && merged[i] == b->kids[i];
  }
  if (all_a) return a;  // b ⊆ a below this point: reuse a wholesale
  if (all_b) return b;
  auto fresh = std::make_shared<Node>(alloc);
  for (std::uint32_t i = 0; i < (1u << kFanBits); ++i) {
    fresh->kids[i] = std::move(merged[i]);
  }
  return fresh;
}

PersistentIdSet PersistentIdSet::union_of(const PersistentIdSet& a,
                                          const PersistentIdSet& b,
                                          core::PolicyAllocator* alloc) {
  if (a.root_ == nullptr) return b;
  if (b.root_ == nullptr) return a;
  // Lift the shorter trie to the taller one's height.
  NodePtr ra = a.root_;
  NodePtr rb = b.root_;
  std::uint32_t ha = a.height_;
  std::uint32_t hb = b.height_;
  while (ha < hb) {
    auto lifted = std::make_shared<Node>(alloc);
    lifted->kids[0] = ra;
    ra = std::move(lifted);
    ++ha;
  }
  while (hb < ha) {
    auto lifted = std::make_shared<Node>(alloc);
    lifted->kids[0] = rb;
    rb = std::move(lifted);
    ++hb;
  }
  return PersistentIdSet(merge_rec(ra, rb, ha, alloc), ha);
}

std::size_t PersistentIdSet::count_rec(const NodePtr& node,
                                       std::uint32_t height) {
  if (node == nullptr) return 0;
  if (height == 0) return static_cast<std::size_t>(std::popcount(node->bits));
  std::size_t total = 0;
  for (const NodePtr& kid : node->kids) {
    total += count_rec(kid, height - 1);
  }
  return total;
}

std::size_t PersistentIdSet::size() const {
  return count_rec(root_, height_);
}

}  // namespace tj::kj
