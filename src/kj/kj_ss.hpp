#pragma once
// KJ-SS: the Known Joins policy implemented with snapshot sets. A task's
// knowledge is a persistent id set (kj/persistent_id_set.hpp): forking
// snapshots the parent's set for the child in O(1) (shared root pointer),
// the parent then inserts the new child id via an O(log n) path copy
// (KJ-child), a membership check is O(log n) and allocation-free, and a
// completed join unions the joinee's final set into the joiner's with
// structural sharing (KJ-learn). These are the Table-1 KJ-SS bounds — O(1)
// fork, O(n) worst-case join (the union), O(n) shared space.

#include <atomic>
#include <cstdint>

#include "core/verifier.hpp"
#include "kj/persistent_id_set.hpp"

namespace tj::kj {

class KjSsVerifier final : public core::Verifier {
 public:
  core::PolicyNode* add_child(core::PolicyNode* parent) override;
  bool permits_join(const core::PolicyNode* joiner,
                    const core::PolicyNode* joinee) override;
  core::Witness explain(const core::PolicyNode* joiner,
                        const core::PolicyNode* joinee) override;
  void on_join_complete(core::PolicyNode* joiner,
                        const core::PolicyNode* joinee) override;
  void release(core::PolicyNode* node) override;
  core::PolicyChoice kind() const override {
    return core::PolicyChoice::KJ_SS;
  }

  struct Node final : core::PolicyNode {
    std::uint32_t id = 0;    // dense task id; immutable
    PersistentIdSet knows;   // mutated (re-pointed) by the owning task only
  };

  /// The knowledge query (exposed for tests): joiner ≺-knows joinee.
  static bool knows(const Node* joiner, const Node* joinee) {
    return joiner->knows.contains(joinee->id);
  }

 private:
  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace tj::kj
