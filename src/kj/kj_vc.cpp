#include "kj/kj_vc.hpp"

#include <algorithm>

namespace tj::kj {

core::PolicyNode* KjVcVerifier::add_child(core::PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  if (u != nullptr) maybe_compact(u);  // before the child copies the clock
  auto* v = new Node;
  v->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (u != nullptr) {
    // Copy the parent's clock BEFORE bumping it: the child inherits the
    // parent's knowledge but not its own birth (KJ-inherit).
    v->clock = u->clock;
    v->parent_id = u->id;
    v->birth = u->forks + 1;
    // KJ-child: the parent observes its own new fork.
    u->forks += 1;
    const std::size_t old_cap = u->clock.capacity();
    if (u->clock.size() <= u->id) u->clock.resize(u->id + 1, 0);
    u->clock[u->id] = u->forks;
    if (u->clock.capacity() != old_cap) {
      alloc_.add((u->clock.capacity() - old_cap) * sizeof(std::uint32_t));
    }
  }
  alloc_.add(node_bytes(*v));
  alloc_.note_node_created();
  {
    std::scoped_lock lock(gc_mu_);
    if (info_.size() <= v->id) info_.resize(v->id + 1);
    IdInfo& vi = info_[v->id];
    vi.has_parent = u != nullptr;
    if (u != nullptr) {
      vi.parent_id = u->id;
      info_[u->id].live_children += 1;
    }
  }
  return v;
}

bool KjVcVerifier::knows(const Node* joiner, const Node* joinee) {
  if (joinee->birth == 0) return false;  // nothing ever knows the root
  const std::uint32_t p = joinee->parent_id;
  if (p >= joiner->clock.size()) return false;
  return joiner->clock[p] >= joinee->birth;
}

bool KjVcVerifier::permits_join(const core::PolicyNode* joiner,
                                const core::PolicyNode* joinee) {
  return knows(static_cast<const Node*>(joiner),
               static_cast<const Node*>(joinee));
}

core::Witness KjVcVerifier::explain(const core::PolicyNode* joiner,
                                    const core::PolicyNode* joinee) {
  // Called on the rejecting joiner's own thread, so reading its clock (owner-
  // mutated only) races nothing; the joinee's id fields are immutable.
  const auto* a = static_cast<const Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  core::Witness w;
  w.kind = core::WitnessKind::KjClock;
  w.policy = kind();
  w.joiner_id = a->id;
  w.joinee_id = b->id;
  w.joinee_parent = b->parent_id;
  w.joinee_birth = b->birth;
  w.observed_clock =
      b->parent_id < a->clock.size() ? a->clock[b->parent_id] : 0;
  return w;
}

void KjVcVerifier::on_join_complete(core::PolicyNode* joiner,
                                    const core::PolicyNode* joinee) {
  auto* a = static_cast<Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // KJ-learn: componentwise max. The joinee has terminated, so its clock is
  // stable; the runtime's completion synchronization orders this read.
  const std::size_t old_cap = a->clock.capacity();
  if (b->clock.size() > a->clock.size()) a->clock.resize(b->clock.size(), 0);
  for (std::size_t i = 0; i < b->clock.size(); ++i) {
    a->clock[i] = std::max(a->clock[i], b->clock[i]);
  }
  if (a->clock.capacity() != old_cap) {
    alloc_.add((a->clock.capacity() - old_cap) * sizeof(std::uint32_t));
  }
  maybe_compact(a);  // after the merge: the joinee's death may have retired
                     // components the merge just copied in
}

void KjVcVerifier::release(core::PolicyNode* node) {
  auto* v = static_cast<Node*>(node);
  {
    std::scoped_lock lock(gc_mu_);
    if (info_.size() <= v->id) info_.resize(v->id + 1);
    IdInfo& vi = info_[v->id];
    vi.dead = true;
    if (vi.live_children == 0) retire_locked(v->id);
    if (vi.has_parent) {
      IdInfo& pi = info_[vi.parent_id];
      pi.live_children -= 1;
      if (pi.dead && pi.live_children == 0) retire_locked(vi.parent_id);
    }
  }
  alloc_.sub(node_bytes(*v));
  alloc_.note_node_released();
  delete v;
}

void KjVcVerifier::retire_locked(std::uint32_t id) {
  if (retired_.size() <= id) retired_.resize(id + 1, false);
  if (retired_[id]) return;
  retired_[id] = true;
  retired_count_ += 1;
  gc_epoch_.fetch_add(1, std::memory_order_release);
}

void KjVcVerifier::maybe_compact(Node* n) {
  if (!gc_active_.load(std::memory_order_relaxed)) return;
  if (n->gc_epoch == gc_epoch_.load(std::memory_order_acquire)) return;
  std::scoped_lock lock(gc_mu_);
  const std::uint64_t epoch = gc_epoch_.load(std::memory_order_relaxed);
  const std::size_t old_cap = n->clock.capacity();
  const std::size_t bound = std::min(n->clock.size(), retired_.size());
  for (std::size_t i = 0; i < bound; ++i) {
    if (retired_[i]) n->clock[i] = 0;
  }
  while (!n->clock.empty() && n->clock.back() == 0) n->clock.pop_back();
  n->clock.shrink_to_fit();
  const std::size_t new_cap = n->clock.capacity();
  if (new_cap < old_cap) {
    alloc_.sub((old_cap - new_cap) * sizeof(std::uint32_t));
  }
  n->gc_epoch = epoch;
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t KjVcVerifier::retired_components() const {
  std::scoped_lock lock(gc_mu_);
  return retired_count_;
}

}  // namespace tj::kj
