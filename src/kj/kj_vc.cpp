#include "kj/kj_vc.hpp"

#include <algorithm>

namespace tj::kj {

core::PolicyNode* KjVcVerifier::add_child(core::PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  auto* v = new Node;
  v->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (u != nullptr) {
    // Copy the parent's clock BEFORE bumping it: the child inherits the
    // parent's knowledge but not its own birth (KJ-inherit).
    v->clock = u->clock;
    v->parent_id = u->id;
    v->birth = u->forks + 1;
    // KJ-child: the parent observes its own new fork.
    u->forks += 1;
    const std::size_t old_cap = u->clock.capacity();
    if (u->clock.size() <= u->id) u->clock.resize(u->id + 1, 0);
    u->clock[u->id] = u->forks;
    if (u->clock.capacity() != old_cap) {
      alloc_.add((u->clock.capacity() - old_cap) * sizeof(std::uint32_t));
    }
  }
  alloc_.add(node_bytes(*v));
  return v;
}

bool KjVcVerifier::knows(const Node* joiner, const Node* joinee) {
  if (joinee->birth == 0) return false;  // nothing ever knows the root
  const std::uint32_t p = joinee->parent_id;
  if (p >= joiner->clock.size()) return false;
  return joiner->clock[p] >= joinee->birth;
}

bool KjVcVerifier::permits_join(const core::PolicyNode* joiner,
                                const core::PolicyNode* joinee) {
  return knows(static_cast<const Node*>(joiner),
               static_cast<const Node*>(joinee));
}

void KjVcVerifier::on_join_complete(core::PolicyNode* joiner,
                                    const core::PolicyNode* joinee) {
  auto* a = static_cast<Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // KJ-learn: componentwise max. The joinee has terminated, so its clock is
  // stable; the runtime's completion synchronization orders this read.
  const std::size_t old_cap = a->clock.capacity();
  if (b->clock.size() > a->clock.size()) a->clock.resize(b->clock.size(), 0);
  for (std::size_t i = 0; i < b->clock.size(); ++i) {
    a->clock[i] = std::max(a->clock[i], b->clock[i]);
  }
  if (a->clock.capacity() != old_cap) {
    alloc_.add((a->clock.capacity() - old_cap) * sizeof(std::uint32_t));
  }
}

void KjVcVerifier::release(core::PolicyNode* node) {
  auto* v = static_cast<Node*>(node);
  alloc_.sub(node_bytes(*v));
  delete v;
}

}  // namespace tj::kj
