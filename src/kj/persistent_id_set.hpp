#pragma once
// A persistent (immutable, structurally shared) set of dense integer ids —
// the "snapshot set" substrate for KJ-SS. Implemented as a 16-ary radix trie
// over 64-bit leaf bitmaps:
//   * snapshot:   O(1)   (copy the root pointer)
//   * insert:     O(log n) path copy, returning a new version
//   * contains:   O(log n), allocation-free
//   * union:      structural merge with pointer-equality short-circuits, so
//                 merging a set with its own descendant snapshot is cheap
// Task ids are dense (assigned sequentially by the verifier), which keeps
// the trie compact without hashing.

#include <cstdint>
#include <memory>

#include "core/policy_alloc.hpp"

namespace tj::kj {

class PersistentIdSet {
 public:
  /// The empty set.
  PersistentIdSet() = default;

  bool empty() const { return root_ == nullptr; }
  bool contains(std::uint32_t id) const;

  /// A new version containing `id`. Allocations are charged to `alloc`.
  PersistentIdSet insert(std::uint32_t id,
                         core::PolicyAllocator* alloc) const;

  /// The union of two versions. Shared subtrees are reused wholesale.
  static PersistentIdSet union_of(const PersistentIdSet& a,
                                  const PersistentIdSet& b,
                                  core::PolicyAllocator* alloc);

  /// Number of ids in the set (walks the trie; for tests/diagnostics).
  std::size_t size() const;

 private:
  static constexpr std::uint32_t kLeafBits = 6;   // 64 ids per leaf
  static constexpr std::uint32_t kFanBits = 4;    // 16 children per node

  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  PersistentIdSet(NodePtr root, std::uint32_t height)
      : root_(std::move(root)), height_(height) {}

  /// Ids representable at `height`: 64 · 16^height.
  static std::uint64_t capacity(std::uint32_t height) {
    return 1ull << (kLeafBits + kFanBits * height);
  }

  static NodePtr make_leaf(std::uint64_t bits, core::PolicyAllocator* alloc);
  static NodePtr make_inner(core::PolicyAllocator* alloc);
  static NodePtr insert_rec(const NodePtr& node, std::uint32_t height,
                            std::uint32_t id, core::PolicyAllocator* alloc);
  static NodePtr merge_rec(const NodePtr& a, const NodePtr& b,
                           std::uint32_t height,
                           core::PolicyAllocator* alloc);
  static std::size_t count_rec(const NodePtr& node, std::uint32_t height);

  NodePtr root_;
  std::uint32_t height_ = 0;  // levels of inner nodes above the leaves
};

}  // namespace tj::kj
