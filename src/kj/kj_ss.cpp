#include "kj/kj_ss.hpp"

namespace tj::kj {

core::PolicyNode* KjSsVerifier::add_child(core::PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  auto* v = new Node;
  v->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  alloc_.add(sizeof(Node));
  alloc_.note_node_created();
  if (u != nullptr) {
    // KJ-inherit: the child snapshots the parent's set (pre KJ-child) —
    // a pointer copy thanks to persistence.
    v->knows = u->knows;
    // KJ-child: the parent's new version additionally knows the child.
    u->knows = u->knows.insert(v->id, &alloc_);
  }
  return v;
}

bool KjSsVerifier::permits_join(const core::PolicyNode* joiner,
                                const core::PolicyNode* joinee) {
  return knows(static_cast<const Node*>(joiner),
               static_cast<const Node*>(joinee));
}

core::Witness KjSsVerifier::explain(const core::PolicyNode* joiner,
                                    const core::PolicyNode* joinee) {
  // Called on the rejecting joiner's own thread; its set pointer is owner-
  // mutated only, so re-probing membership here races nothing.
  const auto* a = static_cast<const Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  core::Witness w;
  w.kind = core::WitnessKind::KjSet;
  w.policy = kind();
  w.joiner_id = a->id;
  w.joinee_id = b->id;
  w.set_member = knows(a, b);
  return w;
}

void KjSsVerifier::on_join_complete(core::PolicyNode* joiner,
                                    const core::PolicyNode* joinee) {
  auto* a = static_cast<Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // KJ-learn: structural union with the joinee's final set (the joinee has
  // terminated; completion synchronization orders this read). Snapshots
  // taken from a common history share subtrees, which the merge reuses.
  a->knows = PersistentIdSet::union_of(a->knows, b->knows, &alloc_);
}

void KjSsVerifier::release(core::PolicyNode* node) {
  auto* v = static_cast<Node*>(node);
  alloc_.sub(sizeof(Node));
  alloc_.note_node_released();
  delete v;  // drops this version's references; shared trie nodes die with
             // their last referencing task
}

}  // namespace tj::kj
