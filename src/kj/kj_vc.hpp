#pragma once
// KJ-VC: the Known Joins policy (Cogumbreiro et al. 2017) implemented with
// vector clocks. Each task carries a clock indexed by task id whose component
// for task p counts how many of p's forks this task has observed. Task x
// knows task y iff clock_x[parent(y)] ≥ birth(y), where birth(y) is y's
// 1-based index among its parent's forks.
//
// Knowledge flows exactly along the KJ rules: the child receives a copy of
// the parent's clock taken *before* the parent's component is bumped for this
// fork (KJ-inherit — a task does not know itself), the bump itself encodes
// KJ-child, and a completed join merges the joinee's final clock into the
// joiner's (KJ-learn). Fork is O(n) (clock copy), join check O(1) plus the
// O(n) merge, total space O(n²) — the Table-1 bounds.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/verifier.hpp"

namespace tj::kj {

class KjVcVerifier final : public core::Verifier {
 public:
  core::PolicyNode* add_child(core::PolicyNode* parent) override;
  bool permits_join(const core::PolicyNode* joiner,
                    const core::PolicyNode* joinee) override;
  core::Witness explain(const core::PolicyNode* joiner,
                        const core::PolicyNode* joinee) override;
  void on_join_complete(core::PolicyNode* joiner,
                        const core::PolicyNode* joinee) override;
  void release(core::PolicyNode* node) override;
  core::PolicyChoice kind() const override {
    return core::PolicyChoice::KJ_VC;
  }

  struct Node final : core::PolicyNode {
    std::uint32_t id = 0;         // dense task id; immutable
    std::uint32_t parent_id = 0;  // immutable; meaningless for the root
    std::uint32_t birth = 0;      // 1-based fork index at the parent; 0 = root
    std::uint32_t forks = 0;      // forks performed; mutated by owner only
    std::vector<std::uint32_t> clock;  // mutated by owner only
    std::uint64_t gc_epoch = 0;   // last GC epoch this clock was compacted at
  };

  /// The knowledge query (exposed for tests): joiner ≺-knows joinee.
  static bool knows(const Node* joiner, const Node* joinee);

  // ---- Epoch GC of vector-clock components (memory-pressure response) ----
  //
  // A clock component p is *retired* once task p is dead and all of p's
  // children are dead: knows() only ever reads clock[parent(y)] for a live
  // joinee y, and a dead task forks no further children, so component p can
  // never be consulted again. Retirement bumps a global epoch; each node's
  // clock is compacted lazily on its owner thread's next mutation
  // (add_child as parent / on_join_complete as joiner) — clocks are owner-
  // mutated only, so no other thread may touch them. Compaction zeroes
  // retired components and truncates + shrinks trailing zeros, returning
  // capacity to the allocator accounting. GC bookkeeping is always
  // maintained; compaction itself runs only while gc is enabled (the
  // ResourceGovernor turns it on under memory pressure before considering a
  // policy downgrade).

  /// Enables/disables lazy clock compaction. Idempotent; thread-safe.
  void set_gc(bool enabled) {
    gc_active_.store(enabled, std::memory_order_relaxed);
  }
  bool gc_enabled() const {
    return gc_active_.load(std::memory_order_relaxed);
  }
  /// Number of per-node compactions performed (metrics hook).
  std::uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Number of retired clock components (tests/diagnostics).
  std::size_t retired_components() const;

 private:
  std::size_t node_bytes(const Node& n) const {
    return sizeof(Node) + n.clock.capacity() * sizeof(std::uint32_t);
  }

  // Per-id liveness used to decide retirement.  guarded by gc_mu_
  struct IdInfo {
    std::uint32_t live_children = 0;
    std::uint32_t parent_id = 0;
    bool has_parent = false;
    bool dead = false;
  };

  // Pre: gc_mu_ held. Marks `id` retired and bumps the epoch.
  void retire_locked(std::uint32_t id);
  // Compacts n's clock if the epoch moved since its last compaction.
  // Must run on n's owner thread.
  void maybe_compact(Node* n);

  std::atomic<std::uint32_t> next_id_{0};

  std::atomic<bool> gc_active_{false};
  std::atomic<std::uint64_t> gc_epoch_{0};
  std::atomic<std::uint64_t> compactions_{0};
  mutable std::mutex gc_mu_;
  std::vector<IdInfo> info_;        // indexed by id; guarded by gc_mu_
  std::vector<bool> retired_;       // indexed by id; guarded by gc_mu_
  std::size_t retired_count_ = 0;   // guarded by gc_mu_
};

}  // namespace tj::kj
