#pragma once
// KJ-VC: the Known Joins policy (Cogumbreiro et al. 2017) implemented with
// vector clocks. Each task carries a clock indexed by task id whose component
// for task p counts how many of p's forks this task has observed. Task x
// knows task y iff clock_x[parent(y)] ≥ birth(y), where birth(y) is y's
// 1-based index among its parent's forks.
//
// Knowledge flows exactly along the KJ rules: the child receives a copy of
// the parent's clock taken *before* the parent's component is bumped for this
// fork (KJ-inherit — a task does not know itself), the bump itself encodes
// KJ-child, and a completed join merges the joinee's final clock into the
// joiner's (KJ-learn). Fork is O(n) (clock copy), join check O(1) plus the
// O(n) merge, total space O(n²) — the Table-1 bounds.

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/verifier.hpp"

namespace tj::kj {

class KjVcVerifier final : public core::Verifier {
 public:
  core::PolicyNode* add_child(core::PolicyNode* parent) override;
  bool permits_join(const core::PolicyNode* joiner,
                    const core::PolicyNode* joinee) override;
  void on_join_complete(core::PolicyNode* joiner,
                        const core::PolicyNode* joinee) override;
  void release(core::PolicyNode* node) override;
  core::PolicyChoice kind() const override {
    return core::PolicyChoice::KJ_VC;
  }

  struct Node final : core::PolicyNode {
    std::uint32_t id = 0;         // dense task id; immutable
    std::uint32_t parent_id = 0;  // immutable; meaningless for the root
    std::uint32_t birth = 0;      // 1-based fork index at the parent; 0 = root
    std::uint32_t forks = 0;      // forks performed; mutated by owner only
    std::vector<std::uint32_t> clock;  // mutated by owner only
  };

  /// The knowledge query (exposed for tests): joiner ≺-knows joinee.
  static bool knows(const Node* joiner, const Node* joinee);

 private:
  std::size_t node_bytes(const Node& n) const {
    return sizeof(Node) + n.clock.capacity() * sizeof(std::uint32_t);
  }

  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace tj::kj
