#include "apps/matrix.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace tj::apps {

Matrix Matrix::random(std::size_t n, std::uint64_t seed) {
  Matrix m(n);
  // splitmix64 per entry: deterministic and cheap.
  std::uint64_t s = seed;
  for (double& v : m.data_) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    v = static_cast<double>(z % 2000) / 1000.0 - 1.0;  // in [-1, 1)
  }
  return m;
}

Matrix Matrix::quadrant(int qr, int qc) const {
  assert(n_ % 2 == 0);
  const std::size_t h = n_ / 2;
  Matrix q(h);
  const std::size_t r0 = static_cast<std::size_t>(qr) * h;
  const std::size_t c0 = static_cast<std::size_t>(qc) * h;
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < h; ++c) {
      q.at(r, c) = at(r0 + r, c0 + c);
    }
  }
  return q;
}

void Matrix::set_quadrant(int qr, int qc, const Matrix& q) {
  const std::size_t h = q.n();
  assert(h * 2 == n_);
  const std::size_t r0 = static_cast<std::size_t>(qr) * h;
  const std::size_t c0 = static_cast<std::size_t>(qc) * h;
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < h; ++c) {
      at(r0 + r, c0 + c) = q.at(r, c);
    }
  }
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  assert(a.n() == b.n());
  Matrix out(a.n());
  for (std::size_t i = 0; i < out.data_.size(); ++i) {
    out.data_[i] = a.data_[i] + b.data_[i];
  }
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  assert(a.n() == b.n());
  Matrix out(a.n());
  for (std::size_t i = 0; i < out.data_.size(); ++i) {
    out.data_[i] = a.data_[i] - b.data_[i];
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::checksum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.n() == b.n());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  assert(a.n() == b.n());
  const std::size_t n = a.n();
  Matrix c(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

}  // namespace tj::apps
