#include "apps/idea.hpp"

#include <cassert>

namespace tj::apps::idea {

std::uint16_t mul(std::uint16_t a, std::uint16_t b) {
  // Low-High algorithm for multiplication mod 2^16 + 1 with 0 ≡ 2^16.
  if (a == 0) return static_cast<std::uint16_t>(0x10001u - b);
  if (b == 0) return static_cast<std::uint16_t>(0x10001u - a);
  const std::uint32_t p = static_cast<std::uint32_t>(a) * b;
  const std::uint16_t lo = static_cast<std::uint16_t>(p);
  const std::uint16_t hi = static_cast<std::uint16_t>(p >> 16);
  return static_cast<std::uint16_t>(lo - hi + (lo < hi ? 1 : 0));
}

std::uint16_t mul_inv(std::uint16_t x) {
  // Fermat: x^(p-2) mod p for prime p = 2^16 + 1; 0 stands for 2^16, which
  // is its own inverse, so inv(0) = 0.
  if (x <= 1) return x;
  std::uint64_t base = x;
  std::uint64_t acc = 1;
  std::uint32_t e = 0x10001u - 2;
  while (e != 0) {
    if (e & 1u) acc = acc * base % 0x10001u;
    base = base * base % 0x10001u;
    e >>= 1;
  }
  return static_cast<std::uint16_t>(acc == 0x10000u ? 0 : acc);
}

KeySchedule encrypt_schedule(const Key& key) {
  KeySchedule z{};
  for (std::size_t i = 0; i < 8; ++i) {
    z[i] = static_cast<std::uint16_t>((key[2 * i] << 8) | key[2 * i + 1]);
  }
  // Each further subkey is extracted from the user key rotated left by 25
  // bits per group of eight (the classic shift recurrence).
  for (std::size_t i = 8; i < kSubkeys; ++i) {
    if ((i & 7) < 6) {
      z[i] = static_cast<std::uint16_t>(((z[i - 7] & 127) << 9) |
                                        (z[i - 6] >> 7));
    } else if ((i & 7) == 6) {
      z[i] = static_cast<std::uint16_t>(((z[i - 7] & 127) << 9) |
                                        (z[i - 14] >> 7));
    } else {
      z[i] = static_cast<std::uint16_t>(((z[i - 15] & 127) << 9) |
                                        (z[i - 14] >> 7));
    }
  }
  return z;
}

KeySchedule decrypt_schedule(const KeySchedule& enc) {
  // Schneier-style inversion: build the schedule back-to-front. The two
  // middle (additive) keys swap roles in every round except the outermost
  // transforms, tracking the x2/x3 swap in the round function.
  KeySchedule dk{};
  const std::uint16_t* z = enc.data();
  std::uint16_t* p = dk.data() + kSubkeys;
  auto neg = [](std::uint16_t v) {
    return static_cast<std::uint16_t>(0u - v);
  };

  std::uint16_t t1 = mul_inv(*z++);
  std::uint16_t t2 = neg(*z++);
  std::uint16_t t3 = neg(*z++);
  *--p = mul_inv(*z++);
  *--p = t3;
  *--p = t2;
  *--p = t1;

  for (int r = 1; r < 8; ++r) {
    t1 = *z++;
    *--p = *z++;
    *--p = t1;
    t1 = mul_inv(*z++);
    t2 = neg(*z++);
    t3 = neg(*z++);
    *--p = mul_inv(*z++);
    *--p = t2;
    *--p = t3;
    *--p = t1;
  }

  t1 = *z++;
  *--p = *z++;
  *--p = t1;
  // The first decryption round pairs with the encryption output transform:
  // like the final transform above, its additive keys are NOT swapped.
  t1 = mul_inv(*z++);
  t2 = neg(*z++);
  t3 = neg(*z++);
  *--p = mul_inv(*z++);
  *--p = t3;
  *--p = t2;
  *--p = t1;
  assert(p == dk.data());
  return dk;
}

void crypt_block(std::span<std::uint8_t, kBlockBytes> block,
                 const KeySchedule& ks) {
  auto load16 = [&](std::size_t i) {
    return static_cast<std::uint16_t>((block[2 * i] << 8) | block[2 * i + 1]);
  };
  std::uint16_t x1 = load16(0);
  std::uint16_t x2 = load16(1);
  std::uint16_t x3 = load16(2);
  std::uint16_t x4 = load16(3);

  const std::uint16_t* k = ks.data();
  for (int round = 0; round < 8; ++round) {
    x1 = mul(x1, *k++);
    x2 = static_cast<std::uint16_t>(x2 + *k++);
    x3 = static_cast<std::uint16_t>(x3 + *k++);
    x4 = mul(x4, *k++);
    const std::uint16_t s3 = x3;
    x3 = mul(static_cast<std::uint16_t>(x1 ^ x3), *k++);
    const std::uint16_t s2 = x2;
    x2 = mul(static_cast<std::uint16_t>((x2 ^ x4) + x3), *k++);
    x3 = static_cast<std::uint16_t>(x3 + x2);
    x1 ^= x2;
    x4 ^= x3;
    x2 ^= s3;
    x3 ^= s2;
  }
  const std::uint16_t y1 = mul(x1, *k++);
  const std::uint16_t y2 = static_cast<std::uint16_t>(x3 + *k++);
  const std::uint16_t y3 = static_cast<std::uint16_t>(x2 + *k++);
  const std::uint16_t y4 = mul(x4, *k++);

  auto store16 = [&](std::size_t i, std::uint16_t v) {
    block[2 * i] = static_cast<std::uint8_t>(v >> 8);
    block[2 * i + 1] = static_cast<std::uint8_t>(v);
  };
  store16(0, y1);
  store16(1, y2);
  store16(2, y3);
  store16(3, y4);
}

void crypt_range(std::span<std::uint8_t> data, std::size_t first_block,
                 std::size_t last_block, const KeySchedule& ks) {
  for (std::size_t b = first_block; b < last_block; ++b) {
    crypt_block(data.subspan(b * kBlockBytes).first<kBlockBytes>(), ks);
  }
}

}  // namespace tj::apps::idea
