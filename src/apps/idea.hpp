#pragma once
// IDEA block cipher (International Data Encryption Algorithm), the kernel of
// the Java Grande Forum Crypt benchmark the paper adapts. 64-bit blocks,
// 128-bit key, 8.5 rounds over three 16-bit group operations: XOR, addition
// mod 2^16 and multiplication in GF(2^16 + 1) with 0 ≡ 2^16.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace tj::apps::idea {

inline constexpr std::size_t kBlockBytes = 8;
inline constexpr std::size_t kKeyBytes = 16;
inline constexpr std::size_t kSubkeys = 52;

using Key = std::array<std::uint8_t, kKeyBytes>;
using KeySchedule = std::array<std::uint16_t, kSubkeys>;

/// Multiplication in GF(2^16 + 1); operand 0 represents 2^16.
std::uint16_t mul(std::uint16_t a, std::uint16_t b);

/// Multiplicative inverse in GF(2^16 + 1); inv(0) == 0 (2^16 is self-inverse).
std::uint16_t mul_inv(std::uint16_t x);

/// Expands the 128-bit user key into the 52 encryption subkeys.
KeySchedule encrypt_schedule(const Key& key);

/// Derives the decryption schedule from an encryption schedule.
KeySchedule decrypt_schedule(const KeySchedule& enc);

/// Transforms one 8-byte block in place (big-endian 16-bit words), using
/// either schedule: the cipher is its own inverse under the derived keys.
void crypt_block(std::span<std::uint8_t, kBlockBytes> block,
                 const KeySchedule& ks);

/// Transforms `data` (whole blocks only; size must be a multiple of 8)
/// over the half-open block range [first_block, last_block).
void crypt_range(std::span<std::uint8_t> data, std::size_t first_block,
                 std::size_t last_block, const KeySchedule& ks);

}  // namespace tj::apps::idea
