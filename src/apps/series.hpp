#pragma once
// Series benchmark (Java Grande Forum, adapted as in Sec. 6.1): the first N
// Fourier coefficient pairs of f(x) = (x+1)^x on [0,2], one independent task
// per pair, all forked by the root and joined by the root in fork order —
// KJ-valid and TJ-valid. The paper runs N = 10^6 tasks; the policy-state
// footprint relative to the tiny baseline data makes Series the memory
// stress test of the evaluation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct SeriesParams {
  std::size_t coefficients = 10'000;  ///< number of (a_k, b_k) tasks
  std::size_t integration_steps = 100;

  static SeriesParams tiny() { return {200, 100}; }
  static SeriesParams small() { return {4'000, 500}; }
  static SeriesParams medium() { return {20'000, 500}; }
  static SeriesParams large() { return {100'000, 250}; }
  /// The paper spawns one million tasks.
  static SeriesParams paper() { return {1'000'000, 1'000}; }
};

struct SeriesResult {
  double a0 = 0.0;           ///< leading coefficient (≈ 2.8729 at convergence)
  double checksum = 0.0;     ///< sum over all coefficients
  std::uint64_t tasks = 0;
};

SeriesResult run_series(runtime::Runtime& rt, const SeriesParams& p);

/// Same computation from within an existing task context (tasks left 0 —
/// the hosting runtime's counter is shared). For soak tests that cycle many
/// app iterations through one long-lived Runtime.
SeriesResult run_series_nested(const SeriesParams& p);

/// Sequential reference: the (a_k, b_k) pair for one k (k = 0 → (a_0, 0)).
struct CoefficientPair {
  double a;
  double b;
};
CoefficientPair series_coefficient(std::size_t k,
                                   std::size_t integration_steps);

}  // namespace tj::apps
