#include "apps/series.hpp"

#include <cmath>

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

double f(double x) { return std::pow(x + 1.0, x); }

// Trapezoid rule on [0,2] for f(x)·w(x).
template <typename W>
double integrate(std::size_t steps, W&& w) {
  const double h = 2.0 / static_cast<double>(steps);
  double acc = 0.5 * (f(0.0) * w(0.0) + f(2.0) * w(2.0));
  for (std::size_t i = 1; i < steps; ++i) {
    const double x = h * static_cast<double>(i);
    acc += f(x) * w(x);
  }
  return acc * h;
}

}  // namespace

CoefficientPair series_coefficient(std::size_t k,
                                   std::size_t integration_steps) {
  if (k == 0) {
    // a_0 = (1/2)·∫ f dx over one period of length 2.
    return {0.5 * integrate(integration_steps, [](double) { return 1.0; }),
            0.0};
  }
  const double w = M_PI * static_cast<double>(k);
  return {integrate(integration_steps, [w](double x) { return std::cos(w * x); }),
          integrate(integration_steps, [w](double x) { return std::sin(w * x); })};
}

SeriesResult run_series_nested(const SeriesParams& p) {
  SeriesResult out;
  std::vector<runtime::Future<CoefficientPair>> tasks;
  tasks.reserve(p.coefficients);
  for (std::size_t k = 0; k < p.coefficients; ++k) {
    tasks.push_back(runtime::async(
        [k, steps = p.integration_steps] {
          return series_coefficient(k, steps);
        }));
  }
  double sum = 0.0;
  for (std::size_t k = 0; k < p.coefficients; ++k) {
    const CoefficientPair c = tasks[k].get();
    if (k == 0) out.a0 = c.a;
    sum += c.a + c.b;
  }
  out.checksum = sum;
  return out;
}

SeriesResult run_series(runtime::Runtime& rt, const SeriesParams& p) {
  SeriesResult out;
  rt.root([&] { out = run_series_nested(p); });
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
