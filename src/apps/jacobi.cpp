#include "apps/jacobi.hpp"

#include <cmath>
#include <vector>

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

// Grid of (n+2)² with a fixed hot top edge and sinusoidal left edge; the
// interior starts at zero. Deterministic so parallel and sequential runs
// agree bit-for-bit (pure averaging, no reductions).
std::vector<double> initial_grid(std::size_t n) {
  const std::size_t w = n + 2;
  std::vector<double> g(w * w, 0.0);
  for (std::size_t c = 0; c < w; ++c) g[c] = 1.0;  // top boundary row
  for (std::size_t r = 0; r < w; ++r) {
    g[r * w] = std::sin(static_cast<double>(r) * 0.01);  // left boundary
  }
  return g;
}

void relax_block(const std::vector<double>& src, std::vector<double>& dst,
                 std::size_t w, std::size_t r0, std::size_t r1,
                 std::size_t c0, std::size_t c1) {
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t c = c0; c < c1; ++c) {
      dst[r * w + c] = 0.25 * (src[(r - 1) * w + c] + src[(r + 1) * w + c] +
                               src[r * w + c - 1] + src[r * w + c + 1]);
    }
  }
}

double interior_sum(const std::vector<double>& g, std::size_t n) {
  const std::size_t w = n + 2;
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    for (std::size_t c = 1; c <= n; ++c) acc += g[r * w + c];
  }
  return acc;
}

}  // namespace

JacobiResult run_jacobi_nested(const JacobiParams& p) {
  using runtime::Future;
  const std::size_t n = p.n;
  const std::size_t nb = p.blocks;
  const std::size_t w = n + 2;

  JacobiResult out;
  out.checksum = [&] {
    std::vector<double> a = initial_grid(n);
    std::vector<double> b = a;
    std::vector<Future<void>> prev;  // empty before the first iteration
    for (std::size_t it = 0; it < p.iterations; ++it) {
      std::vector<double>& src = (it % 2 == 0) ? a : b;
      std::vector<double>& dst = (it % 2 == 0) ? b : a;
      std::vector<Future<void>> cur;
      cur.reserve(nb * nb);
      for (std::size_t bi = 0; bi < nb; ++bi) {
        for (std::size_t bj = 0; bj < nb; ++bj) {
          // Dependencies: own block plus the four neighbours, one iteration
          // back (their writes border this block's reads).
          std::vector<Future<void>> deps;
          if (!prev.empty()) {
            deps.reserve(5);
            auto dep = [&](std::size_t i, std::size_t j) {
              deps.push_back(prev[i * nb + j]);
            };
            dep(bi, bj);
            if (bi > 0) dep(bi - 1, bj);
            if (bi + 1 < nb) dep(bi + 1, bj);
            if (bj > 0) dep(bi, bj - 1);
            if (bj + 1 < nb) dep(bi, bj + 1);
          }
          const std::size_t r0 = 1 + bi * n / nb;
          const std::size_t r1 = 1 + (bi + 1) * n / nb;
          const std::size_t c0 = 1 + bj * n / nb;
          const std::size_t c1 = 1 + (bj + 1) * n / nb;
          cur.push_back(runtime::async(
              [deps = std::move(deps), &src, &dst, w, r0, r1, c0, c1] {
                for (const Future<void>& d : deps) d.join();
                relax_block(src, dst, w, r0, r1, c0, c1);
              }));
        }
      }
      prev = std::move(cur);
    }
    for (const Future<void>& f : prev) f.join();
    const std::vector<double>& final_grid = (p.iterations % 2 == 0) ? a : b;
    return interior_sum(final_grid, n);
  }();
  return out;
}

JacobiResult run_jacobi(runtime::Runtime& rt, const JacobiParams& p) {
  JacobiResult out;
  rt.root([&] { out = run_jacobi_nested(p); });
  out.tasks = rt.tasks_created();
  return out;
}

double jacobi_reference(const JacobiParams& p) {
  const std::size_t n = p.n;
  const std::size_t w = n + 2;
  std::vector<double> a = initial_grid(n);
  std::vector<double> b = a;
  for (std::size_t it = 0; it < p.iterations; ++it) {
    std::vector<double>& src = (it % 2 == 0) ? a : b;
    std::vector<double>& dst = (it % 2 == 0) ? b : a;
    relax_block(src, dst, w, 1, n + 1, 1, n + 1);
  }
  const std::vector<double>& final_grid = (p.iterations % 2 == 0) ? a : b;
  return interior_sum(final_grid, n);
}

}  // namespace tj::apps
