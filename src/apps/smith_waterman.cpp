#include "apps/smith_waterman.hpp"

#include <algorithm>
#include <atomic>
#include <random>
#include <vector>

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

// Fills H over the half-open cell ranges [r0,r1)×[c0,c1); 1-based cells,
// row/col 0 is the all-zero DP border. Returns the chunk's max score.
int fill_chunk(std::vector<int>& h, std::size_t w, const std::string& s1,
               const std::string& s2, const SmithWatermanParams& p,
               std::size_t r0, std::size_t r1, std::size_t c0,
               std::size_t c1) {
  int best = 0;
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t c = c0; c < c1; ++c) {
      const int sub =
          (s1[r - 1] == s2[c - 1]) ? p.match : p.mismatch;
      const int diag = h[(r - 1) * w + (c - 1)] + sub;
      const int up = h[(r - 1) * w + c] + p.gap;
      const int left = h[r * w + (c - 1)] + p.gap;
      const int v = std::max({0, diag, up, left});
      h[r * w + c] = v;
      best = std::max(best, v);
    }
  }
  return best;
}

}  // namespace

std::string random_dna(std::size_t length, std::uint64_t seed) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::mt19937_64 rng(seed);
  std::string s(length, 'A');
  for (char& ch : s) ch = kBases[rng() % 4];
  return s;
}

SmithWatermanResult run_smith_waterman_nested(const SmithWatermanParams& p) {
  using runtime::Future;
  const std::string s1 = random_dna(p.length, p.seed);
  const std::string s2 = random_dna(p.length, p.seed ^ 0x5eed);
  const std::size_t n = p.length;
  const std::size_t nb = p.chunks;
  const std::size_t w = n + 1;

  SmithWatermanResult out;
  out.best_score = [&] {
    std::vector<int> h(w * w, 0);
    std::vector<Future<int>> chunk(nb * nb);
    // Fork all chunk tasks in wavefront-compatible row-major order; each
    // waits on its N/W/NW neighbours, which were forked earlier.
    for (std::size_t bi = 0; bi < nb; ++bi) {
      for (std::size_t bj = 0; bj < nb; ++bj) {
        std::vector<Future<int>> deps;
        deps.reserve(3);
        if (bi > 0) deps.push_back(chunk[(bi - 1) * nb + bj]);
        if (bj > 0) deps.push_back(chunk[bi * nb + (bj - 1)]);
        if (bi > 0 && bj > 0) deps.push_back(chunk[(bi - 1) * nb + (bj - 1)]);
        const std::size_t r0 = 1 + bi * n / nb;
        const std::size_t r1 = 1 + (bi + 1) * n / nb;
        const std::size_t c0 = 1 + bj * n / nb;
        const std::size_t c1 = 1 + (bj + 1) * n / nb;
        chunk[bi * nb + bj] = runtime::async(
            [deps = std::move(deps), &h, w, &s1, &s2, &p, r0, r1, c0, c1] {
              for (const Future<int>& d : deps) d.join();
              return fill_chunk(h, w, s1, s2, p, r0, r1, c0, c1);
            });
      }
    }
    int best = 0;
    for (const Future<int>& f : chunk) best = std::max(best, f.get());
    return best;
  }();
  return out;
}

SmithWatermanResult run_smith_waterman(runtime::Runtime& rt,
                                       const SmithWatermanParams& p) {
  SmithWatermanResult out;
  rt.root([&] { out = run_smith_waterman_nested(p); });
  out.tasks = rt.tasks_created();
  return out;
}

int smith_waterman_reference(const SmithWatermanParams& p) {
  const std::string s1 = random_dna(p.length, p.seed);
  const std::string s2 = random_dna(p.length, p.seed ^ 0x5eed);
  const std::size_t n = p.length;
  const std::size_t w = n + 1;
  std::vector<int> h(w * w, 0);
  return fill_chunk(h, w, s1, s2, p, 1, n + 1, 1, n + 1);
}

}  // namespace tj::apps
