#include "apps/nqueens.hpp"

#include <vector>

#include "runtime/api.hpp"
#include "runtime/concurrent_queue.hpp"

namespace tj::apps {

namespace {

using Placement = std::vector<std::uint8_t>;  // column per placed row

bool safe(const Placement& rows, std::size_t col) {
  const std::size_t r = rows.size();
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t c = rows[i];
    if (c == col) return false;
    const std::size_t dr = r - i;
    if (c + dr == col || col + dr == c) return false;
  }
  return true;
}

std::uint64_t count_sequential(std::size_t board, Placement& rows) {
  if (rows.size() == board) return 1;
  std::uint64_t total = 0;
  for (std::size_t col = 0; col < board; ++col) {
    if (!safe(rows, col)) continue;
    rows.push_back(static_cast<std::uint8_t>(col));
    total += count_sequential(board, rows);
    rows.pop_back();
  }
  return total;
}

using TaskQueue = runtime::ConcurrentQueue<runtime::Future<std::uint64_t>>;

// Expands one partial placement: below the cutoff it forks one child per
// safe column (pushing each Future onto the shared queue — Listing 1's
// "child launches before being pushed" included); at the cutoff it counts
// sequentially. Expansion tasks contribute 0 themselves.
std::uint64_t expand(std::size_t board, std::size_t cutoff, Placement rows,
                     TaskQueue& tasks) {
  if (rows.size() >= cutoff || rows.size() == board) {
    return count_sequential(board, rows);
  }
  for (std::size_t col = 0; col < board; ++col) {
    if (!safe(rows, col)) continue;
    Placement next = rows;
    next.push_back(static_cast<std::uint8_t>(col));
    tasks.push(runtime::async([board, cutoff, next = std::move(next),
                               &tasks]() mutable {
      return expand(board, cutoff, std::move(next), tasks);
    }));
  }
  return 0;
}

}  // namespace

NQueensResult run_nqueens_nested(const NQueensParams& p) {
  NQueensResult out;
  TaskQueue tasks;
  std::uint64_t total = expand(p.board, p.parallel_depth, Placement{}, tasks);
  // The spawner joins all tasks "in any order" (Sec. 6.1): drain both queue
  // ends pseudo-randomly. Joining a late-pushed task typically reaches a
  // descendant before its parent — the nondeterministic KJ violation the
  // paper reports (always TJ-valid: the spawner precedes every task in <T).
  // Quiescence on empty still holds: each joined task pushed its children
  // before terminating.
  std::uint64_t lcg = 0x243f6a8885a308d3ull ^ (p.board << 8);
  auto next_from_back = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 62) & 1;
  };
  while (auto f = next_from_back() ? tasks.poll_back() : tasks.poll()) {
    total += f->get();
  }
  out.solutions = total;
  return out;
}

NQueensResult run_nqueens(runtime::Runtime& rt, const NQueensParams& p) {
  NQueensResult out;
  rt.root([&] { out = run_nqueens_nested(p); });
  out.tasks = rt.tasks_created();
  return out;
}

std::uint64_t nqueens_reference(std::size_t board) {
  Placement rows;
  return count_sequential(board, rows);
}

}  // namespace tj::apps
