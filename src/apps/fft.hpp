#pragma once
// Parallel radix-2 FFT (Cooley–Tukey) — a second "experiment customization"
// benchmark. The recursion forks the even/odd halves as tasks and the parent
// joins its own children before the butterfly combine: fully strict again,
// but with a memory-traffic-bound profile very different from mergesort's.

#include <complex>
#include <cstdint>
#include <vector>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct FftParams {
  std::size_t n = 1 << 16;       ///< transform size (power of two)
  std::size_t cutoff = 1 << 10;  ///< sequential-FFT threshold
  std::uint64_t seed = 31;

  static FftParams tiny() { return {1 << 10, 1 << 6, 31}; }
  static FftParams small() { return {1 << 20, 1 << 14, 31}; }
  static FftParams medium() { return {1 << 22, 1 << 15, 31}; }
  static FftParams large() { return {1 << 23, 1 << 15, 31}; }
};

struct FftResult {
  bool roundtrip_ok = false;  ///< inverse(forward(x)) ≈ x
  double spectrum_energy = 0.0;
  std::uint64_t tasks = 0;
};

FftResult run_fft(runtime::Runtime& rt, const FftParams& p);

/// Sequential reference transform (in place; inverse when `inverse`).
void fft_sequential(std::vector<std::complex<double>>& xs, bool inverse);

}  // namespace tj::apps
