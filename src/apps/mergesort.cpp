#include "apps/mergesort.hpp"

#include <algorithm>
#include <random>

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

// Sorts [lo, hi) of `data` using `scratch` as the merge buffer.
void sort_range(std::vector<std::uint32_t>& data,
                std::vector<std::uint32_t>& scratch, std::size_t lo,
                std::size_t hi, std::size_t cutoff) {
  if (hi - lo <= cutoff) {
    std::sort(data.begin() + static_cast<long>(lo),
              data.begin() + static_cast<long>(hi));
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  auto left = runtime::async([&data, &scratch, lo, mid, cutoff] {
    sort_range(data, scratch, lo, mid, cutoff);
  });
  auto right = runtime::async([&data, &scratch, mid, hi, cutoff] {
    sort_range(data, scratch, mid, hi, cutoff);
  });
  left.join();
  right.join();
  // Merge the sorted halves through the scratch buffer (disjoint ranges per
  // recursion level, so sibling merges never overlap).
  std::merge(data.begin() + static_cast<long>(lo),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(mid),
             data.begin() + static_cast<long>(hi),
             scratch.begin() + static_cast<long>(lo));
  std::copy(scratch.begin() + static_cast<long>(lo),
            scratch.begin() + static_cast<long>(hi),
            data.begin() + static_cast<long>(lo));
}

std::uint64_t content_hash(const std::vector<std::uint32_t>& xs) {
  // Order-independent: sum of a per-element mix.
  std::uint64_t acc = 0;
  for (std::uint32_t x : xs) {
    std::uint64_t z = x + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    acc += z ^ (z >> 27);
  }
  return acc;
}

}  // namespace

MergesortResult run_mergesort(runtime::Runtime& rt, const MergesortParams& p) {
  std::vector<std::uint32_t> data(p.elements);
  std::mt19937_64 rng(p.seed);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng());
  const std::uint64_t before = content_hash(data);

  std::vector<std::uint32_t> scratch(p.elements);
  rt.root([&] { sort_range(data, scratch, 0, data.size(), p.cutoff); });

  MergesortResult out;
  out.checksum = content_hash(data);
  out.sorted = out.checksum == before &&
               std::is_sorted(data.begin(), data.end());
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
