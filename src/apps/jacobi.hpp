#pragma once
// Jacobi benchmark (Sec. 6.1): iterative 5-point stencil over a square grid,
// computed in blocks. Each iteration forks a blocks×blocks array of tasks;
// a block task first joins the previous-iteration tasks of its own block and
// of up to four neighbours, then relaxes its block. All tasks are forked by
// the root, so every join targets an older sibling — KJ-valid and TJ-valid.
// The paper runs an 8192×8192 grid, 16×16 blocks, 30 iterations.

#include <cstddef>
#include <cstdint>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct JacobiParams {
  std::size_t n = 512;      ///< interior grid dimension
  std::size_t blocks = 8;   ///< blocks per side (blocks² tasks per iteration)
  std::size_t iterations = 10;

  static JacobiParams tiny() { return {64, 4, 4}; }
  static JacobiParams small() { return {2048, 16, 20}; }
  static JacobiParams medium() { return {4096, 16, 30}; }
  static JacobiParams large() { return {8192, 16, 30}; }
  /// The paper's configuration.
  static JacobiParams paper() { return {8192, 16, 30}; }
};

struct JacobiResult {
  double checksum = 0.0;  ///< sum of the final grid's interior
  std::uint64_t tasks = 0;
};

JacobiResult run_jacobi(runtime::Runtime& rt, const JacobiParams& p);

/// Same computation from within an existing task context (tasks left 0).
JacobiResult run_jacobi_nested(const JacobiParams& p);

/// Sequential reference computing the identical relaxation.
double jacobi_reference(const JacobiParams& p);

}  // namespace tj::apps
