#pragma once
// NQueens benchmark (Sec. 6.1): divide-and-conquer solution counting. Tasks
// expand partial placements down to a cutoff depth and solve the remainder
// sequentially; every spawned task is pushed onto a shared concurrent queue
// which the ROOT drains, joining tasks in whatever order they surface
// (Listing 1's pattern). The root may join a descendant before that task's
// parent — nondeterministically KJ-INVALID, but always TJ-valid: this is the
// benchmark that forces the KJ verifiers onto the cycle-detection fallback.

#include <cstddef>
#include <cstdint>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct NQueensParams {
  std::size_t board = 10;         ///< board size n
  std::size_t parallel_depth = 3; ///< rows expanded as tasks

  static NQueensParams tiny() { return {7, 2}; }
  static NQueensParams small() { return {12, 5}; }
  static NQueensParams medium() { return {13, 6}; }
  static NQueensParams large() { return {14, 7}; }
  /// The paper spawns ~3.4M tasks with 14 recursion levels (8 parallel).
  static NQueensParams paper() { return {14, 8}; }
};

struct NQueensResult {
  std::uint64_t solutions = 0;
  std::uint64_t tasks = 0;
};

NQueensResult run_nqueens(runtime::Runtime& rt, const NQueensParams& p);

/// Same computation from within an existing task context (tasks left 0).
/// NOTE: the drain order makes the *calling task* the any-order joiner, so
/// the KJ-invalid joins target the caller, exactly as the root variant.
NQueensResult run_nqueens_nested(const NQueensParams& p);

/// Sequential reference count.
std::uint64_t nqueens_reference(std::size_t board);

}  // namespace tj::apps
