#include "apps/app_registry.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "apps/crypt.hpp"
#include "apps/fft.hpp"
#include "apps/jacobi.hpp"
#include "apps/mergesort.hpp"
#include "apps/nqueens.hpp"
#include "apps/series.hpp"
#include "apps/smith_waterman.hpp"
#include "apps/strassen.hpp"

namespace tj::apps {

std::string_view to_string(AppSize s) {
  switch (s) {
    case AppSize::Tiny:
      return "tiny";
    case AppSize::Small:
      return "small";
    case AppSize::Medium:
      return "medium";
    case AppSize::Large:
      return "large";
  }
  return "<bad size>";
}

namespace {

template <typename P>
P pick(AppSize s) {
  switch (s) {
    case AppSize::Tiny:
      return P::tiny();
    case AppSize::Small:
      return P::small();
    case AppSize::Medium:
      return P::medium();
    case AppSize::Large:
      return P::large();
  }
  return P::small();
}

// Times just the parallel portion; reference/self-check work stays outside
// the clock so overhead factors compare only what the paper compares.
template <typename Fn>
auto timed(double* seconds, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  auto result = fn();
  *seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

// Sequential references are deterministic per size: compute once, reuse
// across repetitions and policies.
template <typename V>
class ReferenceCache {
 public:
  template <typename Make>
  V get(AppSize size, Make&& make) {
    std::scoped_lock lock(mu_);
    auto it = cache_.find(size);
    if (it == cache_.end()) {
      it = cache_.emplace(size, make()).first;
    }
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<AppSize, V> cache_;
};

// Known solution counts for the reference boards used by the size presets.
std::uint64_t queens_expected(std::size_t board) {
  switch (board) {
    case 7:
      return 40;
    case 8:
      return 92;
    case 9:
      return 352;
    case 10:
      return 724;
    case 11:
      return 2'680;
    case 12:
      return 14'200;
    case 13:
      return 73'712;
    case 14:
      return 365'596;
    default:
      return 0;
  }
}

std::vector<AppInfo> build_registry() {
  std::vector<AppInfo> apps;

  apps.push_back(AppInfo{
      "jacobi", "iterative 5-point stencil, blocked; joins 5 older siblings",
      /*kj_valid=*/true, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        static ReferenceCache<double> refs;
        const auto p = pick<JacobiParams>(s);
        AppOutcome o;
        const JacobiResult r =
            timed(&o.seconds, [&] { return run_jacobi(rt, p); });
        const double ref = refs.get(s, [&p] { return jacobi_reference(p); });
        o.metric = r.checksum;
        o.tasks = r.tasks;
        o.valid = std::fabs(r.checksum - ref) < 1e-6 * (1.0 + std::fabs(ref));
        std::ostringstream os;
        os << "checksum=" << r.checksum << " ref=" << ref;
        o.detail = os.str();
        return o;
      }});

  apps.push_back(AppInfo{
      "smithwaterman",
      "local DNA alignment DP, chunked wavefront; joins 3 older siblings",
      /*kj_valid=*/true, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        static ReferenceCache<int> refs;
        const auto p = pick<SmithWatermanParams>(s);
        AppOutcome o;
        const SmithWatermanResult r =
            timed(&o.seconds, [&] { return run_smith_waterman(rt, p); });
        const int ref =
            refs.get(s, [&p] { return smith_waterman_reference(p); });
        o.metric = r.best_score;
        o.tasks = r.tasks;
        o.valid = r.best_score == ref;
        std::ostringstream os;
        os << "score=" << r.best_score << " ref=" << ref;
        o.detail = os.str();
        return o;
      }});

  apps.push_back(AppInfo{
      "crypt", "IDEA encrypt+decrypt; root forks and joins each phase",
      /*kj_valid=*/true, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        const auto p = pick<CryptParams>(s);
        AppOutcome o;
        const CryptResult r =
            timed(&o.seconds, [&] { return run_crypt(rt, p); });
        o.metric = static_cast<double>(r.ciphertext_checksum);
        o.tasks = r.tasks;
        o.valid = r.roundtrip_ok;
        o.detail = r.roundtrip_ok ? "roundtrip ok" : "ROUNDTRIP FAILED";
        return o;
      }});

  apps.push_back(AppInfo{
      "strassen",
      "divide-and-conquer matrix multiply; joins children and older siblings",
      /*kj_valid=*/true, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        static ReferenceCache<double> refs;
        const auto p = pick<StrassenParams>(s);
        AppOutcome o;
        const StrassenResult r =
            timed(&o.seconds, [&] { return run_strassen(rt, p); });
        const double ref = refs.get(s, [&p] {
          const Matrix a = Matrix::random(p.n, p.seed);
          const Matrix b = Matrix::random(p.n, p.seed ^ 0xabcdef);
          return strassen_sequential(a, b, p.cutoff).checksum();
        });
        o.metric = r.checksum;
        o.tasks = r.tasks;
        o.valid = std::fabs(r.checksum - ref) < 1e-6 * (1.0 + std::fabs(ref));
        std::ostringstream os;
        os << "checksum=" << r.checksum << " ref=" << ref;
        o.detail = os.str();
        return o;
      }});

  apps.push_back(AppInfo{
      "series",
      "Fourier coefficients, one task per pair; root joins all in order",
      /*kj_valid=*/true, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        const auto p = pick<SeriesParams>(s);
        AppOutcome o;
        const SeriesResult r =
            timed(&o.seconds, [&] { return run_series(rt, p); });
        o.metric = r.checksum;
        o.tasks = r.tasks;
        // a0 of (x+1)^x over [0,2] converges to ≈ 2.8819; loose bounds keep
        // the check meaningful at every integration resolution.
        o.valid = r.a0 > 2.80 && r.a0 < 2.95;
        std::ostringstream os;
        os << "a0=" << r.a0 << " checksum=" << r.checksum;
        o.detail = os.str();
        return o;
      }});

  apps.push_back(AppInfo{
      "nqueens",
      "divide-and-conquer solution count; ROOT joins queue in arrival order "
      "(KJ-invalid nondeterministically, TJ-valid)",
      /*kj_valid=*/false, /*extra=*/false,
      [](runtime::Runtime& rt, AppSize s) {
        const auto p = pick<NQueensParams>(s);
        AppOutcome o;
        const NQueensResult r =
            timed(&o.seconds, [&] { return run_nqueens(rt, p); });
        const std::uint64_t ref = queens_expected(p.board);
        o.metric = static_cast<double>(r.solutions);
        o.tasks = r.tasks;
        o.valid = ref != 0 && r.solutions == ref;
        std::ostringstream os;
        os << "solutions=" << r.solutions << " expected=" << ref;
        o.detail = os.str();
        return o;
      }});

  apps.push_back(AppInfo{
      "mergesort",
      "parallel merge sort (extra benchmark); parent joins its two children",
      /*kj_valid=*/true, /*extra=*/true,
      [](runtime::Runtime& rt, AppSize s) {
        const auto p = pick<MergesortParams>(s);
        AppOutcome o;
        const MergesortResult r =
            timed(&o.seconds, [&] { return run_mergesort(rt, p); });
        o.metric = static_cast<double>(r.checksum);
        o.tasks = r.tasks;
        o.valid = r.sorted;
        o.detail = r.sorted ? "sorted" : "NOT SORTED";
        return o;
      }});

  apps.push_back(AppInfo{
      "fft",
      "parallel radix-2 FFT (extra benchmark); parent joins its two children",
      /*kj_valid=*/true, /*extra=*/true,
      [](runtime::Runtime& rt, AppSize s) {
        const auto p = pick<FftParams>(s);
        AppOutcome o;
        const FftResult r = timed(&o.seconds, [&] { return run_fft(rt, p); });
        o.metric = r.spectrum_energy;
        o.tasks = r.tasks;
        o.valid = r.roundtrip_ok;
        o.detail = r.roundtrip_ok ? "roundtrip ok" : "ROUNDTRIP FAILED";
        return o;
      }});

  return apps;
}

}  // namespace

const std::vector<AppInfo>& all_apps() {
  static const std::vector<AppInfo> apps = build_registry();
  return apps;
}

const AppInfo* find_app(std::string_view name) {
  for (const AppInfo& a : all_apps()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace tj::apps
