#pragma once
// Parallel merge sort — an "experiment customization" benchmark beyond the
// paper's six (its Appendix A.7 invites adding programs to the harness).
// Divide-and-conquer with parent-joins-children only: fully strict, hence
// valid under KJ and TJ alike; a useful sanity workload where every policy
// should cost next to nothing.

#include <cstdint>
#include <vector>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct MergesortParams {
  std::size_t elements = 1 << 20;
  std::size_t cutoff = 1 << 14;  ///< sequential-sort threshold
  std::uint64_t seed = 21;

  static MergesortParams tiny() { return {1 << 12, 1 << 8, 21}; }
  static MergesortParams small() { return {1 << 22, 1 << 16, 21}; }
  static MergesortParams medium() { return {1 << 24, 1 << 17, 21}; }
  static MergesortParams large() { return {1 << 25, 1 << 17, 21}; }
};

struct MergesortResult {
  bool sorted = false;          ///< output is a sorted permutation of input
  std::uint64_t checksum = 0;   ///< order-independent content hash
  std::uint64_t tasks = 0;
};

MergesortResult run_mergesort(runtime::Runtime& rt, const MergesortParams& p);

}  // namespace tj::apps
