#include "apps/fft.hpp"

#include <cmath>
#include <random>

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

using Complex = std::complex<double>;

// Strided recursive Cooley–Tukey: transforms n elements of `in` starting at
// `base` with stride `stride` into out[0..n).
void fft_rec(const std::vector<Complex>& in, std::vector<Complex>& out,
             std::size_t out_base, std::size_t in_base, std::size_t stride,
             std::size_t n, bool inverse, std::size_t cutoff, bool parallel) {
  if (n == 1) {
    out[out_base] = in[in_base];
    return;
  }
  const std::size_t half = n / 2;
  auto run_halves = [&] {
    if (parallel && n > cutoff) {
      auto even = runtime::async([&, half] {
        fft_rec(in, out, out_base, in_base, stride * 2, half, inverse, cutoff,
                true);
      });
      auto odd = runtime::async([&, half] {
        fft_rec(in, out, out_base + half, in_base + stride, stride * 2, half,
                inverse, cutoff, true);
      });
      even.join();
      odd.join();
    } else {
      fft_rec(in, out, out_base, in_base, stride * 2, half, inverse, cutoff,
              false);
      fft_rec(in, out, out_base + half, in_base + stride, stride * 2, half,
              inverse, cutoff, false);
    }
  };
  run_halves();
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < half; ++k) {
    const double angle =
        sign * 2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
    const Complex w(std::cos(angle), std::sin(angle));
    const Complex e = out[out_base + k];
    const Complex o = w * out[out_base + half + k];
    out[out_base + k] = e + o;
    out[out_base + half + k] = e - o;
  }
}

void transform(std::vector<Complex>& xs, bool inverse, std::size_t cutoff,
               bool parallel) {
  std::vector<Complex> out(xs.size());
  fft_rec(xs, out, 0, 0, 1, xs.size(), inverse, cutoff, parallel);
  xs.swap(out);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(xs.size());
    for (Complex& x : xs) x *= scale;
  }
}

}  // namespace

void fft_sequential(std::vector<Complex>& xs, bool inverse) {
  transform(xs, inverse, xs.size() + 1, /*parallel=*/false);
}

FftResult run_fft(runtime::Runtime& rt, const FftParams& p) {
  std::vector<Complex> signal(p.n);
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> amp(-1.0, 1.0);
  for (Complex& x : signal) x = Complex(amp(rng), amp(rng));
  const std::vector<Complex> original = signal;

  FftResult out;
  rt.root([&] {
    transform(signal, /*inverse=*/false, p.cutoff, /*parallel=*/true);
    for (const Complex& x : signal) out.spectrum_energy += std::norm(x);
    transform(signal, /*inverse=*/true, p.cutoff, /*parallel=*/true);
  });

  double worst = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    worst = std::max(worst, std::abs(signal[i] - original[i]));
  }
  out.roundtrip_ok = worst < 1e-9 * static_cast<double>(p.n);
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
