#include "apps/jacobi_barrier.hpp"

#include <cmath>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/barrier.hpp"

namespace tj::apps {

namespace {

// Identical grid setup to apps/jacobi.cpp so the checksums agree.
std::vector<double> initial_grid(std::size_t n) {
  const std::size_t w = n + 2;
  std::vector<double> g(w * w, 0.0);
  for (std::size_t c = 0; c < w; ++c) g[c] = 1.0;
  for (std::size_t r = 0; r < w; ++r) {
    g[r * w] = std::sin(static_cast<double>(r) * 0.01);
  }
  return g;
}

}  // namespace

JacobiBarrierResult run_jacobi_barrier(runtime::Runtime& rt,
                                       const JacobiBarrierParams& p) {
  using runtime::Future;
  const std::size_t n = p.n;
  const std::size_t w = n + 2;
  const std::size_t nw = p.workers;

  JacobiBarrierResult out;
  out.checksum = rt.root([&] {
    std::vector<double> a = initial_grid(n);
    std::vector<double> b = a;
    runtime::BarrierDomain domain;
    runtime::CheckedBarrier& bar = domain.create_barrier();

    std::atomic<bool> start{false};
    std::vector<Future<void>> workers;
    workers.reserve(nw);
    for (std::size_t me = 0; me < nw; ++me) {
      // Worker `me` owns interior rows [r0, r1) for the whole run.
      const std::size_t r0 = 1 + me * n / nw;
      const std::size_t r1 = 1 + (me + 1) * n / nw;
      workers.push_back(runtime::async([&, r0, r1] {
        while (!start.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (std::size_t it = 0; it < p.iterations; ++it) {
          const std::vector<double>& src = (it % 2 == 0) ? a : b;
          std::vector<double>& dst = (it % 2 == 0) ? b : a;
          for (std::size_t r = r0; r < r1; ++r) {
            for (std::size_t c = 1; c <= n; ++c) {
              dst[r * w + c] =
                  0.25 * (src[(r - 1) * w + c] + src[(r + 1) * w + c] +
                          src[r * w + c - 1] + src[r * w + c + 1]);
            }
          }
          bar.await();  // iteration boundary replaces the 5-way joins
        }
      }));
      bar.register_party(workers.back().task().uid());
    }
    start.store(true, std::memory_order_release);
    for (const auto& f : workers) f.join();
    out.barrier_phases = bar.phase();

    const std::vector<double>& final_grid = (p.iterations % 2 == 0) ? a : b;
    double acc = 0.0;
    for (std::size_t r = 1; r <= n; ++r) {
      for (std::size_t c = 1; c <= n; ++c) acc += final_grid[r * w + c];
    }
    return acc;
  });
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
