#include "apps/crypt.hpp"

#include <random>
#include <vector>

#include "apps/idea.hpp"
#include "runtime/api.hpp"

namespace tj::apps {

namespace {

// One fork-all / join-all phase over whole 8-byte blocks.
void crypt_phase(std::vector<std::uint8_t>& data, std::size_t n_tasks,
                 const idea::KeySchedule& ks) {
  const std::size_t blocks = data.size() / idea::kBlockBytes;
  const std::size_t per_task = (blocks + n_tasks - 1) / n_tasks;
  std::vector<runtime::Future<void>> phase;
  phase.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const std::size_t first = t * per_task;
    const std::size_t last = std::min(first + per_task, blocks);
    if (first >= last) break;
    phase.push_back(runtime::async([&data, first, last, &ks] {
      idea::crypt_range(std::span<std::uint8_t>(data), first, last, ks);
    }));
  }
  for (const auto& f : phase) f.join();
}

}  // namespace

CryptResult run_crypt_nested(const CryptParams& p) {
  std::vector<std::uint8_t> data(p.bytes - p.bytes % idea::kBlockBytes);
  std::mt19937_64 rng(p.seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::vector<std::uint8_t> original = data;

  idea::Key key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const idea::KeySchedule enc = idea::encrypt_schedule(key);
  const idea::KeySchedule dec = idea::decrypt_schedule(enc);

  CryptResult out;
  crypt_phase(data, p.tasks_per_phase, enc);
  // FNV-1a over the ciphertext so validation covers the encrypt phase too.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : data) {
    h = (h ^ b) * 1099511628211ull;
  }
  out.ciphertext_checksum = h;
  crypt_phase(data, p.tasks_per_phase, dec);
  out.roundtrip_ok = (data == original);
  return out;
}

CryptResult run_crypt(runtime::Runtime& rt, const CryptParams& p) {
  CryptResult out;
  rt.root([&] { out = run_crypt_nested(p); });
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
