#pragma once
// Smith-Waterman benchmark (Sec. 6.1): local DNA sequence alignment by
// dynamic programming over a chunked score matrix. Each chunk task joins the
// tasks of its north, west and north-west neighbour chunks (older siblings,
// all forked by the root) before filling its chunk — KJ-valid and TJ-valid.
// The paper aligns two 21,726-base sequences over 40×40 chunks.

#include <cstddef>
#include <cstdint>
#include <string>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct SmithWatermanParams {
  std::size_t length = 2'000;  ///< bases per sequence
  std::size_t chunks = 10;     ///< chunk grid side (chunks² tasks)
  std::uint64_t seed = 11;
  int match = 2;
  int mismatch = -1;
  int gap = -1;

  static SmithWatermanParams tiny() { return {128, 4, 11, 2, -1, -1}; }
  static SmithWatermanParams small() { return {4'000, 20, 11, 2, -1, -1}; }
  static SmithWatermanParams medium() { return {8'000, 40, 11, 2, -1, -1}; }
  static SmithWatermanParams large() { return {12'000, 40, 11, 2, -1, -1}; }
  /// The paper's configuration.
  static SmithWatermanParams paper() { return {21'726, 40, 11, 2, -1, -1}; }
};

struct SmithWatermanResult {
  int best_score = 0;  ///< maximum local-alignment score
  std::uint64_t tasks = 0;
};

SmithWatermanResult run_smith_waterman(runtime::Runtime& rt,
                                       const SmithWatermanParams& p);

/// Same computation from within an existing task context (tasks left 0).
SmithWatermanResult run_smith_waterman_nested(const SmithWatermanParams& p);

/// Sequential reference DP (same scoring) for validation.
int smith_waterman_reference(const SmithWatermanParams& p);

/// Deterministic random DNA sequence over {A,C,G,T}.
std::string random_dna(std::size_t length, std::uint64_t seed);

}  // namespace tj::apps
