#pragma once
// Barrier-style Jacobi: the same stencil as apps/jacobi.hpp, but synchronised
// by P persistent worker tasks and a CheckedBarrier per iteration instead of
// per-block futures-and-joins. Enables the sync-style ablation
// (bench/ablation_sync_style.cpp): fine-grained join dependencies vs a
// global barrier on identical numerics — the design space around the
// paper's critical-path discussion (Sec. 2.4).

#include <cstddef>
#include <cstdint>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct JacobiBarrierParams {
  std::size_t n = 512;       ///< interior grid dimension
  std::size_t workers = 8;   ///< persistent worker tasks (row strips)
  std::size_t iterations = 10;

  static JacobiBarrierParams tiny() { return {64, 4, 4}; }
  static JacobiBarrierParams small() { return {2048, 16, 20}; }
  static JacobiBarrierParams medium() { return {4096, 16, 30}; }
};

struct JacobiBarrierResult {
  double checksum = 0.0;  ///< sum of the final grid's interior
  std::uint64_t tasks = 0;
  std::uint64_t barrier_phases = 0;
};

/// Must produce the same checksum as jacobi_reference with matching n and
/// iterations (the block structure does not affect the arithmetic).
JacobiBarrierResult run_jacobi_barrier(runtime::Runtime& rt,
                                       const JacobiBarrierParams& p);

}  // namespace tj::apps
