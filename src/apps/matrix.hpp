#pragma once
// Dense square matrices for the Strassen benchmark: value semantics,
// quadrant split/assemble, and a blocked sequential multiply used both as
// the recursion cutoff kernel and as the validation reference.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tj::apps {

class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t n() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  const std::vector<double>& data() const { return data_; }

  /// Deterministic pseudo-random fill (for workload generation).
  static Matrix random(std::size_t n, std::uint64_t seed);

  /// Quadrant extraction/insertion; `qr`,`qc` in {0,1}. Pre: n is even.
  Matrix quadrant(int qr, int qc) const;
  void set_quadrant(int qr, int qc, const Matrix& q);

  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);

  double frobenius_norm() const;
  double checksum() const;

  /// Max |a-b| entrywise (for validation tolerances).
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Cache-blocked sequential multiply (i-k-j loop order).
Matrix naive_multiply(const Matrix& a, const Matrix& b);

}  // namespace tj::apps
