#pragma once
// Strassen benchmark (Sec. 6.1): block-wise matrix multiplication with seven
// recursive multiplications per level. At every level the current task
// spawns the seven product tasks and four quadrant-assembly tasks; each
// assembly task joins the product tasks it needs (its older siblings) and
// the parent joins the assembly tasks — KJ-valid and TJ-valid.

#include <cstddef>
#include <cstdint>

#include "apps/matrix.hpp"
#include "runtime/runtime.hpp"

namespace tj::apps {

struct StrassenParams {
  std::size_t n = 256;       ///< matrix dimension (power of two)
  std::size_t cutoff = 64;   ///< direct-multiply block size
  std::uint64_t seed = 42;   ///< workload seed

  static StrassenParams tiny() { return {64, 16, 42}; }
  static StrassenParams small() { return {512, 64, 42}; }
  static StrassenParams medium() { return {1024, 128, 42}; }
  static StrassenParams large() { return {2048, 128, 42}; }
  /// The paper multiplies 4096×4096 with cutoff 128 (30,811 tasks, depth 5).
  static StrassenParams paper() { return {4096, 128, 42}; }
};

struct StrassenResult {
  double checksum = 0.0;     ///< sum of entries of the product
  std::uint64_t tasks = 0;   ///< tasks created by the run
};

/// Parallel Strassen under the given (already-configured) runtime.
StrassenResult run_strassen(runtime::Runtime& rt, const StrassenParams& p);

/// Same computation from within an existing task context (tasks left 0).
StrassenResult run_strassen_nested(const StrassenParams& p);

/// Sequential Strassen (same arithmetic, no tasks) for cross-checking.
Matrix strassen_sequential(const Matrix& a, const Matrix& b,
                           std::size_t cutoff);

}  // namespace tj::apps
