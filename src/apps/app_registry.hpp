#pragma once
// Uniform handle over the six evaluation benchmarks so the harness, tests
// and Table-2/Figure-2 binaries can iterate them.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/runtime.hpp"

namespace tj::apps {

enum class AppSize : std::uint8_t { Tiny, Small, Medium, Large };

std::string_view to_string(AppSize s);

/// Outcome of one application run: a self-check plus scale counters.
struct AppOutcome {
  bool valid = false;        ///< app-specific self-check passed
  double metric = 0.0;       ///< app-specific result (checksum/score/count)
  double seconds = 0.0;      ///< wall time of the parallel run only
                             ///< (self-check/reference work excluded)
  std::uint64_t tasks = 0;   ///< tasks created
  std::string detail;        ///< human-readable result summary
};

struct AppInfo {
  std::string name;
  std::string description;
  /// True iff the app's join pattern satisfies Known Joins (all but NQueens).
  bool kj_valid = true;
  /// Extra benchmark beyond the paper's six (Appendix A.7 customization);
  /// the Table-2/Figure-2 harnesses skip extras unless explicitly named.
  bool extra = false;
  /// Runs the app on an already-configured runtime.
  std::function<AppOutcome(runtime::Runtime&, AppSize)> run;
};

/// The paper's six benchmarks in Table-2 order, followed by the extras
/// (mergesort, fft).
const std::vector<AppInfo>& all_apps();

/// Lookup by name ("jacobi", "smithwaterman", "crypt", "strassen", "series",
/// "nqueens"); nullptr if unknown.
const AppInfo* find_app(std::string_view name);

}  // namespace tj::apps
