#include "apps/strassen.hpp"

#include "runtime/api.hpp"

namespace tj::apps {

namespace {

using runtime::Future;
using runtime::async;

Matrix strassen_combine_11(const Matrix& m1, const Matrix& m4,
                           const Matrix& m5, const Matrix& m7) {
  return m1 + m4 - m5 + m7;
}
Matrix strassen_combine_12(const Matrix& m3, const Matrix& m5) {
  return m3 + m5;
}
Matrix strassen_combine_21(const Matrix& m2, const Matrix& m4) {
  return m2 + m4;
}
Matrix strassen_combine_22(const Matrix& m1, const Matrix& m2,
                           const Matrix& m3, const Matrix& m6) {
  return m1 - m2 + m3 + m6;
}

Matrix assemble(const Matrix& c11, const Matrix& c12, const Matrix& c21,
                const Matrix& c22) {
  Matrix c(c11.n() * 2);
  c.set_quadrant(0, 0, c11);
  c.set_quadrant(0, 1, c12);
  c.set_quadrant(1, 0, c21);
  c.set_quadrant(1, 1, c22);
  return c;
}

// Parallel recursion: runs inside a task context. Spawns the seven product
// tasks, then four combine tasks that join the products they need, then
// joins the combines.
Matrix strassen_par(const Matrix& a, const Matrix& b, std::size_t cutoff) {
  const std::size_t n = a.n();
  if (n <= cutoff) return naive_multiply(a, b);

  const Matrix a11 = a.quadrant(0, 0), a12 = a.quadrant(0, 1);
  const Matrix a21 = a.quadrant(1, 0), a22 = a.quadrant(1, 1);
  const Matrix b11 = b.quadrant(0, 0), b12 = b.quadrant(0, 1);
  const Matrix b21 = b.quadrant(1, 0), b22 = b.quadrant(1, 1);

  // The seven Strassen products.
  Future<Matrix> m1 =
      async([=] { return strassen_par(a11 + a22, b11 + b22, cutoff); });
  Future<Matrix> m2 =
      async([=] { return strassen_par(a21 + a22, b11, cutoff); });
  Future<Matrix> m3 =
      async([=] { return strassen_par(a11, b12 - b22, cutoff); });
  Future<Matrix> m4 =
      async([=] { return strassen_par(a22, b21 - b11, cutoff); });
  Future<Matrix> m5 =
      async([=] { return strassen_par(a11 + a12, b22, cutoff); });
  Future<Matrix> m6 =
      async([=] { return strassen_par(a21 - a11, b11 + b12, cutoff); });
  Future<Matrix> m7 =
      async([=] { return strassen_par(a12 - a22, b21 + b22, cutoff); });

  // Four addition tasks; each joins its older product siblings.
  Future<Matrix> c11 = async([=] {
    return strassen_combine_11(m1.get(), m4.get(), m5.get(), m7.get());
  });
  Future<Matrix> c12 = async([=] {
    return strassen_combine_12(m3.get(), m5.get());
  });
  Future<Matrix> c21 = async([=] {
    return strassen_combine_21(m2.get(), m4.get());
  });
  Future<Matrix> c22 = async([=] {
    return strassen_combine_22(m1.get(), m2.get(), m3.get(), m6.get());
  });

  return assemble(c11.get(), c12.get(), c21.get(), c22.get());
}

}  // namespace

Matrix strassen_sequential(const Matrix& a, const Matrix& b,
                           std::size_t cutoff) {
  const std::size_t n = a.n();
  if (n <= cutoff) return naive_multiply(a, b);

  const Matrix a11 = a.quadrant(0, 0), a12 = a.quadrant(0, 1);
  const Matrix a21 = a.quadrant(1, 0), a22 = a.quadrant(1, 1);
  const Matrix b11 = b.quadrant(0, 0), b12 = b.quadrant(0, 1);
  const Matrix b21 = b.quadrant(1, 0), b22 = b.quadrant(1, 1);

  const Matrix m1 = strassen_sequential(a11 + a22, b11 + b22, cutoff);
  const Matrix m2 = strassen_sequential(a21 + a22, b11, cutoff);
  const Matrix m3 = strassen_sequential(a11, b12 - b22, cutoff);
  const Matrix m4 = strassen_sequential(a22, b21 - b11, cutoff);
  const Matrix m5 = strassen_sequential(a11 + a12, b22, cutoff);
  const Matrix m6 = strassen_sequential(a21 - a11, b11 + b12, cutoff);
  const Matrix m7 = strassen_sequential(a12 - a22, b21 + b22, cutoff);

  return assemble(strassen_combine_11(m1, m4, m5, m7),
                  strassen_combine_12(m3, m5), strassen_combine_21(m2, m4),
                  strassen_combine_22(m1, m2, m3, m6));
}

StrassenResult run_strassen_nested(const StrassenParams& p) {
  const Matrix a = Matrix::random(p.n, p.seed);
  const Matrix b = Matrix::random(p.n, p.seed ^ 0xabcdef);
  StrassenResult out;
  out.checksum = strassen_par(a, b, p.cutoff).checksum();
  return out;
}

StrassenResult run_strassen(runtime::Runtime& rt, const StrassenParams& p) {
  const Matrix a = Matrix::random(p.n, p.seed);
  const Matrix b = Matrix::random(p.n, p.seed ^ 0xabcdef);
  StrassenResult out;
  const Matrix c = rt.root([&] { return strassen_par(a, b, p.cutoff); });
  out.checksum = c.checksum();
  out.tasks = rt.tasks_created();
  return out;
}

}  // namespace tj::apps
