#pragma once
// Crypt benchmark (Java Grande Forum, Sec. 6.1): IDEA-encrypt then decrypt a
// buffer, each phase embarrassingly parallel across tasks forked and joined
// by the root — KJ-valid and TJ-valid. The paper uses 50 MB across 8192
// tasks per phase.

#include <cstddef>
#include <cstdint>

#include "runtime/runtime.hpp"

namespace tj::apps {

struct CryptParams {
  std::size_t bytes = 1 << 20;      ///< data size (multiple of 8)
  std::size_t tasks_per_phase = 64;
  std::uint64_t seed = 7;

  static CryptParams tiny() { return {1 << 14, 16, 7}; }
  static CryptParams small() { return {1 << 23, 128, 7}; }
  static CryptParams medium() { return {1 << 25, 1024, 7}; }
  static CryptParams large() { return {1 << 26, 4096, 7}; }
  /// The paper encrypts/decrypts 50 MB over 8192 tasks per phase.
  static CryptParams paper() { return {50u << 20, 8192, 7}; }
};

struct CryptResult {
  bool roundtrip_ok = false;  ///< decrypt(encrypt(x)) == x
  std::uint64_t ciphertext_checksum = 0;
  std::uint64_t tasks = 0;
};

CryptResult run_crypt(runtime::Runtime& rt, const CryptParams& p);

/// Same computation from within an existing task context (tasks left 0).
CryptResult run_crypt_nested(const CryptParams& p);

}  // namespace tj::apps
