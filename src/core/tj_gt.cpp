#include "core/tj_gt.hpp"

namespace tj::core {

TjGtVerifier::~TjGtVerifier() {
  Node* cur = alloc_head_.load(std::memory_order_acquire);
  while (cur != nullptr) {
    Node* next = cur->next_alloc;
    delete cur;
    cur = next;
  }
}

PolicyNode* TjGtVerifier::add_child(PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  auto* v = new Node;
  if (u != nullptr) {
    v->parent = u;
    v->depth = u->depth + 1;
    v->ix = u->children;  // only the owning task forks under u (contract 3)
    u->children += 1;
  }
  alloc_.add(sizeof(Node));
  alloc_.note_node_created();  // GT nodes live for the verifier's lifetime
  // Thread v onto the ownership chain (lock-free push).
  Node* head = alloc_head_.load(std::memory_order_relaxed);
  do {
    v->next_alloc = head;
  } while (!alloc_head_.compare_exchange_weak(head, v,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  return v;
}

bool TjGtVerifier::less(const Node* v1, const Node* v2) {
  if (v1 == v2) return false;
  if (v1->depth < v2->depth) {
    // v1 <T v2  ⇔  v1 ≠ v2 ∧ ¬(v2 <T v1); recursing once flips the depths.
    return !less(v2, v1);
  }
  // Child indices we arrive by (Algorithm 2 lines 14–22). i2 is always set
  // because the loop below takes at least one step for v2 or the joint walk
  // does; i1 stays unset exactly when v1 is already the LCA (anc+ case —
  // but then depth(v1) ≥ depth(v2) forces v1 == v2 handled above, so here
  // i1 unset means v2 is an ancestor of v1: the dec* case).
  bool have_i1 = false;
  std::uint32_t i1 = 0;
  std::uint32_t i2 = 0;
  const Node* a = v1;
  const Node* b = v2;
  while (b->depth < a->depth) {
    have_i1 = true;
    i1 = a->ix;
    a = a->parent;
  }
  while (a != b) {
    have_i1 = true;
    i1 = a->ix;
    i2 = b->ix;
    a = a->parent;
    b = b->parent;
  }
  if (!have_i1) {
    // Unreachable given the depth ordering enforced above, kept for parity
    // with Algorithm 2's anc+ branch when called with depth(v1) < depth(v2).
    return true;
  }
  if (a == v2) {
    // v2 is an ancestor of v1 (dec* case): v1 ≮T v2.
    return false;
  }
  return i1 > i2;  // Theorem 3.15(c)
}

bool TjGtVerifier::permits_join(const PolicyNode* joiner,
                                const PolicyNode* joinee) {
  return less(static_cast<const Node*>(joiner),
              static_cast<const Node*>(joinee));
}

namespace {
// The spawn path (sibling indices root → v); parent/ix are immutable after
// add_child returns, so the rootward walk is safe from any thread.
std::vector<std::uint32_t> gt_path(const TjGtVerifier::Node* v) {
  std::vector<std::uint32_t> path(v->depth);
  for (std::size_t i = v->depth; i > 0; --i) {
    path[i - 1] = v->ix;
    v = v->parent;
  }
  return path;
}
}  // namespace

Witness TjGtVerifier::explain(const PolicyNode* joiner,
                              const PolicyNode* joinee) {
  Witness w;
  w.kind = WitnessKind::TjPath;
  w.policy = kind();
  w.waiter_path = gt_path(static_cast<const Node*>(joiner));
  w.target_path = gt_path(static_cast<const Node*>(joinee));
  return w;
}

}  // namespace tj::core
