#pragma once
// JoinGate: composes a conservative policy verifier with the waits-for-graph
// fallback, reproducing the paper's evaluation setup (Sec. 6): "if the given
// policy flags a join as invalid, general cycle detection is invoked to
// determine if the join would truly create a deadlock or if it is just a
// false positive" — sound *and* precise as implemented.

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/verifier.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::core {

/// What a join attempt may do after the gate has ruled.
enum class JoinDecision : std::uint8_t {
  Proceed,               ///< policy-approved
  ProceedFalsePositive,  ///< policy rejected; cycle detection cleared it
  FaultPolicy,           ///< policy rejected and FaultMode::Throw is active
  FaultDeadlock,         ///< blocking would truly deadlock (WFG cycle)
};

constexpr bool is_fault(JoinDecision d) {
  return d == JoinDecision::FaultPolicy || d == JoinDecision::FaultDeadlock;
}

/// How a policy rejection is handled.
enum class FaultMode : std::uint8_t {
  Fallback,  ///< consult cycle detection; fault only on a real cycle
  Throw,     ///< fault immediately on any policy rejection (policy-only mode)
};

/// Counters mirrored from the evaluation's discussion.
struct GateStats {
  std::uint64_t joins_checked = 0;
  std::uint64_t policy_rejections = 0;
  std::uint64_t false_positives = 0;    ///< rejections cleared by the fallback
  std::uint64_t deadlocks_averted = 0;  ///< joins faulted on a real cycle
  std::uint64_t cycle_checks = 0;       ///< WFG cycle detections performed
};

class JoinGate {
 public:
  /// `verifier` may be nullptr for PolicyChoice::None (every join approved
  /// unchecked) and CycleOnly (every join cycle-checked).
  JoinGate(PolicyChoice kind, Verifier* verifier, FaultMode mode);

  /// Rules on a join (waiter → target). Unless the target has already
  /// terminated (`target_done`, which cannot deadlock) or the verdict is a
  /// fault, the wait edge is registered so later checks can see it. On a
  /// Proceed* verdict the caller MUST eventually call leave_join().
  /// The policy-state pointers may be nullptr when no verifier is active.
  JoinDecision enter_join(wfg::NodeId waiter, wfg::NodeId target,
                          PolicyNode* waiter_state,
                          const PolicyNode* target_state, bool target_done);

  /// Unregisters the wait edge and applies the policy's join rule (KJ-learn).
  /// `completed` is false when the join was abandoned (e.g. an exception).
  void leave_join(wfg::NodeId waiter, PolicyNode* waiter_state,
                  const PolicyNode* target_state, bool completed);

  GateStats stats() const;
  const wfg::WaitsForGraph& graph() const { return wfg_; }
  PolicyChoice kind() const { return kind_; }

 private:
  PolicyChoice kind_;
  Verifier* verifier_;  // not owned
  FaultMode mode_;
  wfg::WaitsForGraph wfg_;
  std::atomic<std::uint64_t> joins_checked_{0};
  std::atomic<std::uint64_t> policy_rejections_{0};
  std::atomic<std::uint64_t> false_positives_{0};
  std::atomic<std::uint64_t> deadlocks_averted_{0};
};

}  // namespace tj::core
