#pragma once
// JoinGate: composes a conservative policy verifier with the waits-for-graph
// fallback, reproducing the paper's evaluation setup (Sec. 6): "if the given
// policy flags a join as invalid, general cycle detection is invoked to
// determine if the join would truly create a deadlock or if it is just a
// false positive" — sound *and* precise as implemented.

// Promises route through the same composition (the follow-up paper's
// Ownership Policy): OWP rejections on awaits fall back to the WFG exactly
// like TJ rejections on joins, and the WFG's persistent owner edges make
// mixed future/promise cycles visible to either side's fallback.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/owp.hpp"
#include "core/verifier.hpp"
#include "obs/contention.hpp"
#include "obs/recorder.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::core {

/// What a join attempt may do after the gate has ruled.
enum class JoinDecision : std::uint8_t {
  Proceed,               ///< policy-approved
  ProceedFalsePositive,  ///< policy rejected; cycle detection cleared it
  FaultPolicy,           ///< policy rejected and FaultMode::Throw is active
  FaultDeadlock,         ///< blocking would truly deadlock (WFG cycle)
};

constexpr bool is_fault(JoinDecision d) {
  return d == JoinDecision::FaultPolicy || d == JoinDecision::FaultDeadlock;
}

/// How a policy rejection is handled.
enum class FaultMode : std::uint8_t {
  Fallback,  ///< consult cycle detection; fault only on a real cycle
  Throw,     ///< fault immediately on any policy rejection (policy-only mode)
};

/// Counters mirrored from the evaluation's discussion.
struct GateStats {
  std::uint64_t joins_checked = 0;
  std::uint64_t policy_rejections = 0;
  std::uint64_t false_positives = 0;    ///< rejections cleared by the fallback
  std::uint64_t deadlocks_averted = 0;  ///< joins faulted on a real cycle
  /// Of deadlocks_averted: cycles caught on an edge the policy/OWP had
  /// APPROVED (no rejection involved — an allowed wait closed the cycle, or
  /// a transfer's retarget would have). The exact reconciliation invariant
  /// is then: policy_rejections + owp_rejections == false_positives +
  /// owp_false_positives + (deadlocks_averted - deadlocks_averted_approved).
  std::uint64_t deadlocks_averted_approved = 0;
  std::uint64_t cycle_checks = 0;       ///< WFG cycle detections performed
  // Promise / ownership-policy counters (zero unless promises are in play).
  std::uint64_t awaits_checked = 0;
  std::uint64_t owp_rejections = 0;       ///< OWP flagged an await or join
  std::uint64_t owp_false_positives = 0;  ///< ...that the fallback cleared
  std::uint64_t ownership_violations = 0;  ///< non-owner fulfill/transfer tries
  std::uint64_t promises_orphaned = 0;  ///< owner died holding them unfulfilled
  // Admission-control counters (zero unless per-tenant budgets are wired —
  // see runtime/admission.hpp). The front-door invariant is exact:
  // requests_checked == requests_admitted + requests_shed.
  std::uint64_t requests_checked = 0;   ///< admission verdicts issued
  std::uint64_t requests_admitted = 0;  ///< ...that let the request in
  std::uint64_t requests_shed = 0;      ///< ...shed at the front door
  /// Async-mode recoveries: cycles the background detector confirmed against
  /// this gate's WFG and broke by killing a victim — deadlocks that formed
  /// BECAUSE the optimistic mode approved without checking. Disjoint from
  /// deadlocks_averted (synchronous pre-block faults), so the async ledger is
  /// deadlock_incidents == deadlocks_averted + cycles_recovered, and the
  /// rejection identity above is untouched (a recovery rejects nothing).
  std::uint64_t cycles_recovered = 0;
};

/// Field-complete accumulation — the single shared definition of "add these
/// stats up" (harness aggregation across reps, test assertions). Any new
/// GateStats field must be added here too.
inline GateStats& operator+=(GateStats& acc, const GateStats& s) {
  acc.joins_checked += s.joins_checked;
  acc.policy_rejections += s.policy_rejections;
  acc.false_positives += s.false_positives;
  acc.deadlocks_averted += s.deadlocks_averted;
  acc.deadlocks_averted_approved += s.deadlocks_averted_approved;
  acc.cycle_checks += s.cycle_checks;
  acc.awaits_checked += s.awaits_checked;
  acc.owp_rejections += s.owp_rejections;
  acc.owp_false_positives += s.owp_false_positives;
  acc.ownership_violations += s.ownership_violations;
  acc.promises_orphaned += s.promises_orphaned;
  acc.requests_checked += s.requests_checked;
  acc.requests_admitted += s.requests_admitted;
  acc.requests_shed += s.requests_shed;
  acc.cycles_recovered += s.cycles_recovered;
  return acc;
}

/// Gate ruling on a fulfill attempt.
enum class FulfillDecision : std::uint8_t {
  Proceed,         ///< fulfill may commit
  FaultNotOwner,   ///< ownership violation under FaultMode::Throw
  AlreadySettled,  ///< promise already fulfilled or orphaned (usage error)
};

/// Seam for the deterministic fault-injection layer (testing only; see
/// runtime/fault_injection.hpp). When wired, the gate consults it on every
/// join/await ruling and may flip an approved verdict into a *spurious*
/// policy rejection — which then flows through the ordinary rejection
/// accounting and fallback machinery, so injected rejections are
/// indistinguishable from real ones to everything downstream (including the
/// stats reconciliation `rejections == false_positives + deadlocks_averted`).
class GateFaultHooks {
 public:
  virtual ~GateFaultHooks() = default;
  /// True ⇒ treat the current (policy-approved) join as a policy rejection.
  virtual bool inject_join_rejection() noexcept = 0;
  /// True ⇒ treat the current (OWP-approved) await as an OWP rejection.
  virtual bool inject_await_rejection() noexcept = 0;
};

/// Gate ruling on an ownership transfer.
enum class TransferDecision : std::uint8_t {
  Ok,
  OrphanedReceiverDead,  ///< transfer landed on a task that died meanwhile;
                         ///< the promise is now orphaned — propagate it
  FaultNotOwner,         ///< caller does not own the promise
  FaultWouldDeadlock,    ///< new owner transitively waits on this promise
  FaultSettled,          ///< promise already fulfilled or orphaned
  FaultTargetDead,       ///< receiving task already terminated
};

class JoinGate {
 public:
  /// `verifier` may be nullptr for PolicyChoice::None (every join approved
  /// unchecked) and CycleOnly (every join cycle-checked). `owp` may be
  /// nullptr (PromisePolicy::Unverified): promise operations are then
  /// recorded but never checked.
  /// `hooks` may be nullptr (no fault injection — the production setup).
  /// `rec` may be nullptr (flight recording off — the default): every
  /// instrumentation site then costs exactly one null-pointer branch.
  JoinGate(PolicyChoice kind, Verifier* verifier, FaultMode mode,
           OwpVerifier* owp = nullptr, GateFaultHooks* hooks = nullptr,
           obs::FlightRecorder* rec = nullptr);

  /// Rules on a join (waiter → target). Unless the target has already
  /// terminated (`target_done`, which cannot deadlock) or the verdict is a
  /// fault, the wait edge is registered so later checks can see it. On a
  /// Proceed* verdict the caller MUST eventually call leave_join().
  /// The policy-state pointers may be nullptr when no verifier is active.
  /// When `why` is non-null, any ruling other than a plain approval fills it
  /// with the rejection's provenance (see core/witness.hpp) — cold path only;
  /// approvals never touch it.
  JoinDecision enter_join(wfg::NodeId waiter, wfg::NodeId target,
                          PolicyNode* waiter_state,
                          const PolicyNode* target_state, bool target_done,
                          Witness* why = nullptr);

  /// Unregisters the wait edge and applies the policy's join rule (KJ-learn)
  /// plus, when promises are live, the OWP's obligation edge.
  /// `completed` is false when the join was abandoned (e.g. an exception).
  void leave_join(wfg::NodeId waiter, wfg::NodeId target,
                  PolicyNode* waiter_state, const PolicyNode* target_state,
                  bool completed);

  /// Registers a spawn-backpressure inline run as a waits-for edge
  /// waiter → target: the inlining parent cannot proceed until the child
  /// completes, exactly like a join — but with no policy ruling, KJ-learn,
  /// or trace action (from the formalism's view no join happens). The edge
  /// is registered as *probation* deliberately: while it lives, every
  /// join/await ruling cycle-checks, so an inlined child that blocks on
  /// something only its suspended parent's continuation can provide (e.g.
  /// awaiting a promise the parent still owns) is faulted as an averted
  /// deadlock instead of hanging on an acyclic-looking graph. Returns false
  /// (registering nothing) when the gate maintains no graph or the edge
  /// would itself close a cycle (unreachable for a fresh child: it has no
  /// out-edges yet); pair a true return with inline_run_end().
  bool inline_run_begin(wfg::NodeId waiter, wfg::NodeId target);
  void inline_run_end(wfg::NodeId waiter);

  // ---- promise path (all no-ops / Proceed when no OwpVerifier is wired) ----

  /// Registers a fresh promise: OWP node + persistent WFG owner edge.
  /// Returns nullptr when promises are unverified.
  PromiseNode* promise_made(std::uint64_t owner_uid, std::uint64_t promise_uid);

  /// Rules on and (if clean) commits an ownership transfer p: from → to.
  TransferDecision promise_transfer(PromiseNode* p, std::uint64_t from_uid,
                                    std::uint64_t to_uid);

  /// Rules on a blocking await. `fulfilled` short-circuits (cannot block).
  /// On a Proceed* verdict the caller MUST eventually call leave_await().
  /// `why` as in enter_join (Witness::on_promise is set; target is p's uid).
  JoinDecision enter_await(std::uint64_t waiter_uid, PromiseNode* p,
                           bool fulfilled, Witness* why = nullptr);

  /// Unregisters the await's wait edge.
  void leave_await(std::uint64_t waiter_uid);

  /// Ownership check before fulfilling. The caller performs the state
  /// transition itself and then calls fulfill_committed().
  FulfillDecision enter_fulfill(PromiseNode* p, std::uint64_t by_uid);

  /// Marks the promise settled in the OWP and drops its owner edge.
  void fulfill_committed(PromiseNode* p);

  /// Records a task's termination; orphans every unfulfilled promise it still
  /// owned and returns their uids so the runtime can fault their awaiters.
  std::vector<std::uint64_t> task_exited(std::uint64_t uid);

  /// Releases a promise's policy state when its last handle dies.
  void promise_released(PromiseNode* p);

  /// Admission seam: the runtime's AdmissionController reports every
  /// front-door verdict here, so request accounting lives beside the
  /// join/await accounting and GateStats carries the exact invariant
  /// requests_checked == requests_admitted + requests_shed.
  void note_admission(bool admitted) {
    requests_checked_.fetch_add(1, std::memory_order_relaxed);
    (admitted ? requests_admitted_ : requests_shed_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Recovery seam: the async detector's supervisor confirmed a cycle in
  /// this gate's WFG and is breaking it. Counts the recovery
  /// (GateStats::cycles_recovered) and files the witness — whose chain is
  /// the concrete confirmed cycle, rotated to start at the victim — into
  /// the same bounded ring the rejection witnesses use, so introspection
  /// and offline validation see recoveries exactly like avoidances.
  void note_cycle_recovered(Witness w);

  GateStats stats() const;

  /// The most recent rejection witnesses (bounded ring, newest last). Each
  /// non-approval ruling appends its witness; once full, the oldest is
  /// dropped and witnesses_dropped() counts it. For introspection dumps and
  /// tests — rejections are rare, so the lock here is uncontended.
  std::vector<Witness> witnesses() const;
  std::uint64_t witnesses_dropped() const {
    return witnesses_dropped_.load(std::memory_order_relaxed);
  }

  const wfg::WaitsForGraph& graph() const { return wfg_; }
  PolicyChoice kind() const { return kind_; }
  /// The policy actually ruling right now. Differs from kind() only when the
  /// verifier is a degradation ladder that has been stepped down (its kind()
  /// reports the active level); diagnostics (watchdog stall reports, verdict
  /// events) use this so a degraded gate is never misattributed to the
  /// configured policy.
  PolicyChoice active_kind() const {
    return verifier_ != nullptr ? verifier_->kind() : kind_;
  }
  OwpVerifier* ownership_verifier() const { return owp_; }
  obs::FlightRecorder* recorder() const { return rec_; }

 private:
  /// The actual join ruling; enter_join wraps it with verdict recording.
  /// `why` is never null here (enter_join supplies a local when the caller
  /// passed none) and is filled on every non-approval ruling.
  JoinDecision rule_join(wfg::NodeId waiter, wfg::NodeId target,
                         PolicyNode* waiter_state,
                         const PolicyNode* target_state, bool target_done,
                         Witness* why);
  /// The actual await ruling; enter_await wraps it with verdict recording.
  JoinDecision rule_await(std::uint64_t waiter_uid, PromiseNode* p,
                          bool fulfilled, Witness* why);
  /// Stamps the ruling's endpoints/outcome on a freshly filled witness,
  /// appends it to the bounded log, and emits a VerdictExplained event.
  void record_witness(Witness& w, std::uint64_t waiter, std::uint64_t target,
                      JoinDecision d, bool on_promise);
  /// Runs `scan()` (a WFG add_*_wait call), timing it and emitting a
  /// CycleScan event when the graph actually performed a cycle detection.
  template <typename F>
  wfg::WaitVerdict timed_scan(std::uint64_t waiter, std::uint64_t target,
                              F&& scan);
  /// Records a fault-injection firing (event + metrics counter).
  void record_injected(std::uint64_t actor, obs::InjectedFault site);

  PolicyChoice kind_;
  Verifier* verifier_;  // not owned
  FaultMode mode_;
  OwpVerifier* owp_;        // not owned; nullptr ⇒ promises unverified
  GateFaultHooks* hooks_;   // not owned; nullptr ⇒ no fault injection
  obs::FlightRecorder* rec_;  // not owned; nullptr ⇒ recording off
  wfg::WaitsForGraph wfg_;
  // Serializes {permits_await, WFG edge insertion, on_await} so two racing
  // awaits cannot both observe a cycle-free obligation graph and insert the
  // edges that jointly close a cycle. Without it the WFG still averts the
  // deadlock (it sees the union atomically) but attributes the fault to the
  // fallback instead of an OWP rejection. Profiled: ROADMAP item 1 names
  // this serialization as the scaling ceiling, so its contention is a
  // first-class measurement ("gate.await" in the contention registry).
  obs::ProfiledMutex await_mu_{"gate.await"};
  std::atomic<std::uint64_t> joins_checked_{0};
  std::atomic<std::uint64_t> policy_rejections_{0};
  std::atomic<std::uint64_t> false_positives_{0};
  std::atomic<std::uint64_t> deadlocks_averted_{0};
  std::atomic<std::uint64_t> deadlocks_averted_approved_{0};
  std::atomic<std::uint64_t> awaits_checked_{0};
  std::atomic<std::uint64_t> owp_rejections_{0};
  std::atomic<std::uint64_t> owp_false_positives_{0};
  std::atomic<std::uint64_t> ownership_violations_{0};
  std::atomic<std::uint64_t> promises_orphaned_{0};
  std::atomic<std::uint64_t> requests_checked_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> cycles_recovered_{0};

  static constexpr std::size_t kWitnessLogCap = 256;
  mutable obs::ProfiledMutex witness_mu_{"gate.witness"};
  std::vector<Witness> witness_log_;  // ring, newest last; guarded above
  std::size_t witness_head_ = 0;      // ring start index; guarded above
  std::atomic<std::uint64_t> witnesses_dropped_{0};
};

}  // namespace tj::core
