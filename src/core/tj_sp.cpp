#include "core/tj_sp.hpp"

namespace tj::core {

PolicyNode* TjSpVerifier::add_child(PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  auto* v = new Node;
  if (u != nullptr) {
    // Algorithm 3 line 4: p ← append(copy(u.path), u.children).
    v->path.reserve(u->path.size() + 1);
    v->path = u->path;
    v->path.push_back(u->children);
    u->children += 1;
  }
  alloc_.add(node_bytes(*v));
  alloc_.note_node_created();
  return v;
}

void TjSpVerifier::release(PolicyNode* node) {
  auto* v = static_cast<Node*>(node);
  alloc_.sub(node_bytes(*v));
  alloc_.note_node_released();
  delete v;  // spawn paths are task-local: reclaimed with the task
}

bool TjSpVerifier::less(const Node* v1, const Node* v2) {
  const auto& p1 = v1->path;
  const auto& p2 = v2->path;
  const std::size_t common = std::min(p1.size(), p2.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (p1[i] != p2[i]) return p1[i] > p2[i];  // diverging sibling indices
  }
  // One path is a prefix of the other: the shorter is the ancestor
  // (anc+ → true when v1 is shorter; dec*/equal → false).
  return p1.size() < p2.size();
}

bool TjSpVerifier::permits_join(const PolicyNode* joiner,
                                const PolicyNode* joinee) {
  return less(static_cast<const Node*>(joiner),
              static_cast<const Node*>(joinee));
}

Witness TjSpVerifier::explain(const PolicyNode* joiner,
                              const PolicyNode* joinee) {
  Witness w;
  w.kind = WitnessKind::TjPath;
  w.policy = kind();
  w.waiter_path = static_cast<const Node*>(joiner)->path;
  w.target_path = static_cast<const Node*>(joinee)->path;
  return w;
}

}  // namespace tj::core
