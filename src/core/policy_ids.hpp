#pragma once
// Identifiers for the verifier implementations evaluated in the paper.

#include <cstdint>
#include <string_view>

namespace tj::core {

enum class PolicyChoice : std::uint8_t {
  None,       ///< baseline: joins are unchecked
  TJ_GT,      ///< Transitive Joins, shared global tree (Alg. 2)
  TJ_JP,      ///< Transitive Joins, jump pointers (Sec. 5.2.2)
  TJ_SP,      ///< Transitive Joins, spawn paths (Alg. 3) — the evaluated one
  KJ_VC,      ///< Known Joins, vector clocks
  KJ_SS,      ///< Known Joins, snapshot sets
  CycleOnly,  ///< no policy; every join verified by cycle detection (Armus)
  Async,      ///< optimistic: approve immediately, detect cycles off-path
};

/// Verification applied to *promise* operations (make/fulfill/transfer/
/// await), orthogonal to the join policy above. Futures are covered by
/// PolicyChoice; promises — which any task may fulfill — need the ownership
/// discipline of the authors' follow-up paper (arXiv:2101.01312).
enum class PromisePolicy : std::uint8_t {
  Unverified,  ///< baseline: promise operations are unchecked
  OWP,         ///< Ownership Policy verifier (Voss & Sarkar 2021)
};

constexpr std::string_view to_string(PromisePolicy p) {
  switch (p) {
    case PromisePolicy::Unverified:
      return "unverified";
    case PromisePolicy::OWP:
      return "OWP";
  }
  return "<bad promise policy>";
}

constexpr std::string_view to_string(PolicyChoice p) {
  switch (p) {
    case PolicyChoice::None:
      return "none";
    case PolicyChoice::TJ_GT:
      return "TJ-GT";
    case PolicyChoice::TJ_JP:
      return "TJ-JP";
    case PolicyChoice::TJ_SP:
      return "TJ-SP";
    case PolicyChoice::KJ_VC:
      return "KJ-VC";
    case PolicyChoice::KJ_SS:
      return "KJ-SS";
    case PolicyChoice::CycleOnly:
      return "cycle-only";
    case PolicyChoice::Async:
      return "async";
  }
  return "<bad policy>";
}

}  // namespace tj::core
