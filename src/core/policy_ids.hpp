#pragma once
// Identifiers for the verifier implementations evaluated in the paper.

#include <cstdint>
#include <string_view>

namespace tj::core {

enum class PolicyChoice : std::uint8_t {
  None,       ///< baseline: joins are unchecked
  TJ_GT,      ///< Transitive Joins, shared global tree (Alg. 2)
  TJ_JP,      ///< Transitive Joins, jump pointers (Sec. 5.2.2)
  TJ_SP,      ///< Transitive Joins, spawn paths (Alg. 3) — the evaluated one
  KJ_VC,      ///< Known Joins, vector clocks
  KJ_SS,      ///< Known Joins, snapshot sets
  CycleOnly,  ///< no policy; every join verified by cycle detection (Armus)
};

constexpr std::string_view to_string(PolicyChoice p) {
  switch (p) {
    case PolicyChoice::None:
      return "none";
    case PolicyChoice::TJ_GT:
      return "TJ-GT";
    case PolicyChoice::TJ_JP:
      return "TJ-JP";
    case PolicyChoice::TJ_SP:
      return "TJ-SP";
    case PolicyChoice::KJ_VC:
      return "KJ-VC";
    case PolicyChoice::KJ_SS:
      return "KJ-SS";
    case PolicyChoice::CycleOnly:
      return "cycle-only";
  }
  return "<bad policy>";
}

}  // namespace tj::core
