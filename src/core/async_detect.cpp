#include "core/async_detect.hpp"

#include <chrono>

#include "core/guarded.hpp"

namespace tj::core {

AsyncDetector::AsyncDetector(DetectorConfig cfg, const JoinGate& gate,
                             obs::FlightRecorder& rec, DetectorSink& sink,
                             DetectorFaultHooks* faults)
    : cfg_(cfg), gate_(gate), rec_(rec), sink_(sink), faults_(faults) {}

AsyncDetector::~AsyncDetector() { stop(); }

void AsyncDetector::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { supervisor_loop(); });
}

void AsyncDetector::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

DetectorStatus AsyncDetector::status() const {
  DetectorStatus s;
  s.running = running_.load(std::memory_order_acquire);
  s.failed_over = failed_over_.load(std::memory_order_acquire);
  s.failover_reason = failover_reason_.load(std::memory_order_acquire);
  s.lag_events = lag_events_.load(std::memory_order_relaxed);
  s.events_lost = rec_.events_dropped() +
                  injected_drops_.load(std::memory_order_relaxed);
  s.events_applied = events_applied_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.authoritative_scans =
      authoritative_scans_.load(std::memory_order_relaxed);
  s.cycles_confirmed = cycles_confirmed_.load(std::memory_order_relaxed);
  s.respawns = respawns_.load(std::memory_order_relaxed);
  return s;
}

void AsyncDetector::supervisor_loop() {
  running_.store(true, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    if (run_incarnation() == RunEnd::Stopped) break;
    // The incarnation was killed (injected death). Revive it: its in-memory
    // shadow is gone, which the next incarnation repairs by resyncing from
    // the live graph. Past the respawn budget the optimistic mode is no
    // longer trustworthy — fail over — but keep reviving regardless so
    // stale pre-failover cycles are still found and broken.
    const std::uint32_t deaths =
        respawns_.fetch_add(1, std::memory_order_relaxed) + 1;
    rec_.metrics().detector_respawns.fetch_add(1, std::memory_order_relaxed);
    if (deaths > cfg_.max_respawns) {
      fail_over(obs::DetectorFailoverReason::Death,
                lag_events_.load(std::memory_order_relaxed));
    }
  }
  running_.store(false, std::memory_order_release);
}

AsyncDetector::RunEnd AsyncDetector::run_incarnation() {
  resync_shadow_from_graph();
  lag_streak_ = 0;
  ticks_since_scan_ = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (faults_ != nullptr && faults_->kill_detector()) {
      record_injected(obs::InjectedFault::DetectorDeath);
      return RunEnd::Killed;
    }
    tick();
    std::this_thread::sleep_for(std::chrono::microseconds(cfg_.tick_us));
  }
  // Final drain so a run that stops right after forming a cycle (tests,
  // shutdown) still sees it confirmed and reported.
  tick();
  authoritative_scan();
  return RunEnd::Stopped;
}

void AsyncDetector::tick() {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr) {
    const std::uint64_t delay_us = faults_->detector_delay_us();
    if (delay_us != 0) {
      record_injected(obs::InjectedFault::DetectorDelay);
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }

  // Lag is the backlog observed when the detector wakes — how stale the
  // shadow is about to be. It must be read BEFORE the drain below: after
  // consume() the residual is near-zero by construction (the drain empties
  // the ring), which would make the lag budget unenforceable no matter how
  // far behind the detector fell during its sleep or an injected stall.
  const std::uint64_t recorded = rec_.events_recorded();
  const std::uint64_t consumed = rec_.events_consumed();
  const std::uint64_t lag = recorded > consumed ? recorded - consumed : 0;
  lag_events_.store(lag, std::memory_order_relaxed);

  batch_.clear();
  rec_.consume(batch_);
  if (!batch_.empty() && faults_ != nullptr &&
      faults_->drop_detector_batch()) {
    // The batch was consumed (the watermark advanced) but never applied —
    // exactly what a crash between pop and apply would lose.
    record_injected(obs::InjectedFault::DetectorDrop);
    injected_drops_.fetch_add(batch_.size(), std::memory_order_relaxed);
  } else {
    for (const obs::Event& e : batch_) apply_event(e);
    events_applied_.fetch_add(batch_.size(), std::memory_order_relaxed);
  }
  const std::uint64_t lost =
      rec_.events_dropped() + injected_drops_.load(std::memory_order_relaxed);

  if (!failed_over_.load(std::memory_order_acquire)) {
    if (lag > cfg_.lag_budget_events) {
      ++lag_streak_;
      if (lag_streak_ == 1) {
        obs::Event e;
        e.kind = obs::EventKind::DetectorLag;
        e.payload = lag;
        e.target = lost;
        rec_.emit(e);
      }
      if (lag_streak_ >= cfg_.lag_trips_to_failover) {
        fail_over(obs::DetectorFailoverReason::Lag, lag);
      }
    } else {
      lag_streak_ = 0;
    }
    if (!failed_over_.load(std::memory_order_acquire) &&
        lost > cfg_.drop_budget_events) {
      fail_over(obs::DetectorFailoverReason::Drops, lag);
    }
  }

  ++ticks_since_scan_;
  if (shadow_has_cycle() || ticks_since_scan_ >= cfg_.full_scan_ticks) {
    authoritative_scan();
    ticks_since_scan_ = 0;
  }
}

void AsyncDetector::apply_event(const obs::Event& e) {
  using obs::EventKind;
  switch (e.kind) {
    case EventKind::JoinVerdict:
      if (!is_fault(static_cast<JoinDecision>(e.detail))) {
        shadow_[e.actor] = e.target;
      }
      break;
    case EventKind::AwaitVerdict:
      if (!is_fault(static_cast<JoinDecision>(e.detail))) {
        shadow_[e.actor] = wfg::promise_node_id(e.target);
      }
      break;
    case EventKind::JoinComplete:
    case EventKind::JoinTimeout:
    case EventKind::AwaitComplete:
      shadow_.erase(e.actor);
      break;
    case EventKind::PromiseMake:
      shadow_[wfg::promise_node_id(e.target)] = e.actor;
      break;
    case EventKind::PromiseTransfer:
      shadow_[wfg::promise_node_id(e.payload)] = e.target;
      break;
    case EventKind::PromiseFulfill:
      shadow_.erase(wfg::promise_node_id(e.target));
      break;
    case EventKind::TaskEnd:
      // The task's own wait edge (if a break/cancel unwound it without a
      // completion event) dies with it; owner edges of promises it orphaned
      // are repaired by the next resync.
      shadow_.erase(e.actor);
      break;
    default:
      break;  // not a graph-shaped event
  }
}

bool AsyncDetector::shadow_has_cycle() const {
  // Functional graph: colour nodes by the walk that first reached them; a
  // walk re-entering its own trail found a cycle (same algorithm as
  // WaitsForGraph::find_all_cycles, minus cycle extraction).
  std::unordered_map<wfg::NodeId, std::size_t> colour;
  std::size_t walk = 0;
  for (const auto& [start, to] : shadow_) {
    (void)to;
    if (colour.contains(start)) continue;
    ++walk;
    wfg::NodeId cur = start;
    while (true) {
      const auto seen = colour.find(cur);
      if (seen != colour.end()) {
        if (seen->second == walk) return true;
        break;
      }
      colour[cur] = walk;
      const auto it = shadow_.find(cur);
      if (it == shadow_.end()) break;
      cur = it->second;
    }
  }
  return false;
}

void AsyncDetector::authoritative_scan() {
  authoritative_scans_.fetch_add(1, std::memory_order_relaxed);
  // Ground truth: every cycle returned here is a set of edges registered in
  // the gate's WFG at one instant under its lock — a real deadlock among
  // currently blocked waiters, never a shadow artefact.
  const auto cycles = gate_.graph().find_all_cycles();
  for (const auto& cycle : cycles) {
    cycles_confirmed_.fetch_add(1, std::memory_order_relaxed);
    sink_.recover_cycle(cycle);
  }
  resync_shadow_from_graph();
}

void AsyncDetector::resync_shadow_from_graph() {
  shadow_.clear();
  for (const auto& ev : gate_.graph().edges()) {
    shadow_[ev.from] = ev.to;
  }
}

void AsyncDetector::record_injected(obs::InjectedFault site) {
  rec_.metrics().faults_injected.fetch_add(1, std::memory_order_relaxed);
  obs::Event e;
  e.kind = obs::EventKind::FaultInjected;
  e.detail = static_cast<std::uint8_t>(site);
  rec_.emit(e);
}

void AsyncDetector::fail_over(obs::DetectorFailoverReason reason,
                              std::uint64_t backlog) {
  if (failed_over_.exchange(true, std::memory_order_acq_rel)) return;
  failover_reason_.store(static_cast<std::uint8_t>(reason),
                         std::memory_order_release);
  rec_.metrics().detector_failovers.fetch_add(1, std::memory_order_relaxed);
  obs::Event e;
  e.kind = obs::EventKind::DetectorFailover;
  e.payload = backlog;
  e.detail = static_cast<std::uint8_t>(reason);
  rec_.emit(e);
  sink_.on_failover(reason, backlog);
}

}  // namespace tj::core
