#include "core/owp.hpp"

#include <algorithm>
#include <vector>

namespace tj::core {

OwpVerifier::~OwpVerifier() = default;

bool OwpVerifier::reaches_locked(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return true;
  std::vector<std::uint64_t> stack{from};
  std::unordered_set<std::uint64_t> visited{from};
  while (!stack.empty()) {
    const std::uint64_t cur = stack.back();
    stack.pop_back();
    const auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (const std::uint64_t next : it->second) {
      if (next == to) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void OwpVerifier::add_edge_locked(std::uint64_t from, std::uint64_t to) {
  if (edges_[from].insert(to).second) alloc_.add(edge_bytes());
}

PromiseNode* OwpVerifier::on_make(std::uint64_t owner_uid,
                                  std::uint64_t promise_uid) {
  active_.store(true, std::memory_order_relaxed);
  auto* node = new PromiseNode(promise_uid, owner_uid);
  alloc_.add(node_bytes());
  alloc_.note_node_created();
  std::scoped_lock lock(mu_);
  owned_[owner_uid].insert(node);
  return node;
}

TransferResult OwpVerifier::check_transfer(const PromiseNode* p,
                                           std::uint64_t from_uid,
                                           std::uint64_t to_uid) const {
  std::scoped_lock lock(mu_);
  switch (p->state_) {
    case PromiseNode::State::Fulfilled:
      return TransferResult::Fulfilled;
    case PromiseNode::State::Orphaned:
      return TransferResult::Orphaned;
    case PromiseNode::State::Unfulfilled:
      break;
  }
  if (p->owner_ != from_uid) return TransferResult::NotOwner;
  if (dead_tasks_.contains(to_uid)) return TransferResult::TargetDead;
  return TransferResult::Ok;
}

bool OwpVerifier::commit_transfer(PromiseNode* p, std::uint64_t to_uid) {
  std::scoped_lock lock(mu_);
  if (p->state_ != PromiseNode::State::Unfulfilled) return false;
  const auto it = owned_.find(p->owner_);
  if (it != owned_.end()) it->second.erase(p);
  p->owner_ = to_uid;
  if (dead_tasks_.contains(to_uid)) {
    // The receiver terminated between check and commit: nobody is left to
    // fulfill the promise — orphan it now rather than losing it.
    p->state_ = PromiseNode::State::Orphaned;
    return true;
  }
  owned_[to_uid].insert(p);
  return false;
}

FulfillResult OwpVerifier::check_fulfill(const PromiseNode* p,
                                         std::uint64_t by_uid) const {
  std::scoped_lock lock(mu_);
  if (p->state_ != PromiseNode::State::Unfulfilled) {
    return FulfillResult::Settled;
  }
  return p->owner_ == by_uid ? FulfillResult::Ok : FulfillResult::NotOwner;
}

void OwpVerifier::commit_fulfill(PromiseNode* p) {
  std::scoped_lock lock(mu_);
  if (p->state_ != PromiseNode::State::Unfulfilled) return;
  const auto it = owned_.find(p->owner_);
  if (it != owned_.end()) it->second.erase(p);
  p->state_ = PromiseNode::State::Fulfilled;
}

AwaitVerdict OwpVerifier::permits_await(std::uint64_t waiter_uid,
                                        const PromiseNode* p) const {
  std::scoped_lock lock(mu_);
  switch (p->state_) {
    case PromiseNode::State::Fulfilled:
      return AwaitVerdict::Allow;  // never blocks
    case PromiseNode::State::Orphaned:
      return AwaitVerdict::RejectOrphaned;
    case PromiseNode::State::Unfulfilled:
      break;
  }
  // Blocking on a promise whose obligation already reaches the waiter
  // (including owning it yourself) could self-deadlock: reject and let the
  // precise fallback rule.
  return reaches_locked(p->owner_, waiter_uid) ? AwaitVerdict::RejectCycle
                                               : AwaitVerdict::Allow;
}

void OwpVerifier::on_await(std::uint64_t waiter_uid, const PromiseNode* p) {
  std::scoped_lock lock(mu_);
  if (p->state_ != PromiseNode::State::Unfulfilled) return;
  add_edge_locked(waiter_uid, p->owner_);
}

bool OwpVerifier::permits_join(std::uint64_t waiter_uid,
                               std::uint64_t target_uid) const {
  std::scoped_lock lock(mu_);
  return !reaches_locked(target_uid, waiter_uid);
}

void OwpVerifier::on_join(std::uint64_t waiter_uid, std::uint64_t target_uid) {
  std::scoped_lock lock(mu_);
  add_edge_locked(waiter_uid, target_uid);
}

namespace {
// BFS with parent links: the shortest path from ⇝ to over H, inclusive of
// both endpoints ([from] when from == to). Empty when unreachable.
std::vector<std::uint64_t> chain_locked(
    const std::unordered_map<std::uint64_t,
                             std::unordered_set<std::uint64_t>>& edges,
    std::uint64_t from, std::uint64_t to) {
  if (from == to) return {from};
  std::unordered_map<std::uint64_t, std::uint64_t> parent;
  std::vector<std::uint64_t> frontier{from};
  parent.emplace(from, from);
  while (!frontier.empty()) {
    std::vector<std::uint64_t> next;
    for (const std::uint64_t cur : frontier) {
      const auto it = edges.find(cur);
      if (it == edges.end()) continue;
      for (const std::uint64_t succ : it->second) {
        if (!parent.emplace(succ, cur).second) continue;
        if (succ == to) {
          std::vector<std::uint64_t> path{to};
          for (std::uint64_t n = cur; ; n = parent.at(n)) {
            path.push_back(n);
            if (n == from) break;
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next.push_back(succ);
      }
    }
    frontier = std::move(next);
  }
  return {};
}
}  // namespace

Witness OwpVerifier::explain_join(std::uint64_t waiter_uid,
                                  std::uint64_t target_uid) const {
  Witness w;
  w.kind = WitnessKind::OwpChain;
  w.policy = PolicyChoice::None;  // OWP is the promise policy, not a join one
  w.waiter = waiter_uid;
  w.target = target_uid;
  std::scoped_lock lock(mu_);
  w.chain = chain_locked(edges_, target_uid, waiter_uid);
  return w;
}

Witness OwpVerifier::explain_await(std::uint64_t waiter_uid,
                                   const PromiseNode* p) const {
  Witness w;
  w.policy = PolicyChoice::None;
  w.on_promise = true;
  w.waiter = waiter_uid;
  w.target = p->uid_;
  std::scoped_lock lock(mu_);
  if (p->state_ == PromiseNode::State::Orphaned) {
    w.kind = WitnessKind::OwpOrphan;
    return w;
  }
  w.kind = WitnessKind::OwpChain;
  w.chain = chain_locked(edges_, p->owner_, waiter_uid);
  return w;
}

std::vector<std::uint64_t> OwpVerifier::on_task_exit(std::uint64_t uid) {
  // Unconditional (no active() fast-path): the dead-task set must be complete
  // for check_transfer/commit_transfer to reliably refuse handoffs to
  // terminated tasks — a stale relaxed read of active_ here could let a
  // transfer land on a dead receiver and strand its awaiters.
  std::scoped_lock lock(mu_);
  dead_tasks_.insert(uid);
  const auto it = owned_.find(uid);
  if (it == owned_.end()) return {};
  std::vector<std::uint64_t> orphans;
  orphans.reserve(it->second.size());
  for (PromiseNode* p : it->second) {
    p->state_ = PromiseNode::State::Orphaned;
    orphans.push_back(p->uid_);
  }
  owned_.erase(it);
  return orphans;
}

void OwpVerifier::release(PromiseNode* p) {
  if (p == nullptr) return;
  {
    std::scoped_lock lock(mu_);
    if (p->state_ == PromiseNode::State::Unfulfilled) {
      const auto it = owned_.find(p->owner_);
      if (it != owned_.end()) it->second.erase(p);
    }
  }
  alloc_.sub(node_bytes());
  alloc_.note_node_released();
  delete p;
}

}  // namespace tj::core
