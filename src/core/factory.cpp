#include <memory>

#include "core/owp.hpp"
#include "core/tj_gt.hpp"
#include "core/tj_jp.hpp"
#include "core/tj_sp.hpp"
#include "core/verifier.hpp"
#include "kj/kj_ss.hpp"
#include "kj/kj_vc.hpp"

namespace tj::core {

std::unique_ptr<Verifier> make_verifier(PolicyChoice p) {
  switch (p) {
    case PolicyChoice::None:
    case PolicyChoice::CycleOnly:
    case PolicyChoice::Async:
      return nullptr;  // no per-join policy check (Async rules off-path)
    case PolicyChoice::TJ_GT:
      return std::make_unique<TjGtVerifier>();
    case PolicyChoice::TJ_JP:
      return std::make_unique<TjJpVerifier>();
    case PolicyChoice::TJ_SP:
      return std::make_unique<TjSpVerifier>();
    case PolicyChoice::KJ_VC:
      return std::make_unique<kj::KjVcVerifier>();
    case PolicyChoice::KJ_SS:
      return std::make_unique<kj::KjSsVerifier>();
  }
  return nullptr;
}

std::unique_ptr<OwpVerifier> make_ownership_verifier(PromisePolicy p) {
  switch (p) {
    case PromisePolicy::Unverified:
      return nullptr;
    case PromisePolicy::OWP:
      return std::make_unique<OwpVerifier>();
  }
  return nullptr;
}

}  // namespace tj::core
