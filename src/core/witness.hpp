#pragma once
// Rejection provenance: a Witness is the self-contained explanation a policy
// (or the WFG fallback) produces for "why was this join/await not simply
// approved". Every rejection path in the JoinGate captures one, attaches it
// to the error it raises and to a VerdictExplained flight-recorder event, and
// obs/witness.{hpp,cpp} renders it as text / Graphviz DOT and replays it
// through the offline trace formalism for independent confirmation.
//
// The struct is a plain value: no pointers into verifier state, so a witness
// outlives the run that produced it (it can be serialized next to a fuzzer's
// minimized trace, or carried inside an in-flight exception while the
// verifier is torn down).

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/policy_ids.hpp"

namespace tj::core {

/// What kind of evidence the witness carries.
enum class WitnessKind : std::uint8_t {
  None,         ///< no explanation available (e.g. PolicyChoice::None)
  TjPath,       ///< TJ: spawn paths whose comparison yields ¬(waiter <T target)
  KjClock,      ///< KJ-VC: clock[parent(joinee)] < birth(joinee)
  KjSet,        ///< KJ-SS: joinee's id is absent from the joiner's snapshot set
  OwpChain,     ///< OWP: obligation chain target/owner ⇝ waiter in H
  OwpOrphan,    ///< OWP: the promise is orphaned (owner died unfulfilled)
  LadderMixed,  ///< ladder: cross-level/forest pair, conservatively rejected
  WfgCycle,     ///< WFG: the concrete cycle the new edge would close
  Injected,     ///< fault-injection flipped an approved verdict (no evidence)
};

constexpr std::string_view to_string(WitnessKind k) {
  switch (k) {
    case WitnessKind::None: return "none";
    case WitnessKind::TjPath: return "tj-path";
    case WitnessKind::KjClock: return "kj-clock";
    case WitnessKind::KjSet: return "kj-set";
    case WitnessKind::OwpChain: return "owp-chain";
    case WitnessKind::OwpOrphan: return "owp-orphan";
    case WitnessKind::LadderMixed: return "ladder-mixed";
    case WitnessKind::WfgCycle: return "wfg-cycle";
    case WitnessKind::Injected: return "injected";
  }
  return "<bad witness kind>";
}

struct Witness {
  WitnessKind kind = WitnessKind::None;
  /// The policy that produced the rejection (the ACTIVE policy under a
  /// ladder; CycleOnly for pure WFG evidence).
  PolicyChoice policy = PolicyChoice::None;
  /// The gate's final ruling for the edge, as a raw core::JoinDecision value
  /// (kept untyped to avoid a guarded.hpp dependency cycle).
  std::uint8_t outcome = 0;
  bool on_promise = false;  ///< target names a promise uid, not a task uid
  std::uint64_t waiter = 0;
  std::uint64_t target = 0;
  /// Length of the runtime's recorded trace (Config::record_trace) at the
  /// moment of rejection — the prefix at which the offline validator
  /// evaluates prefix-sensitive judgments. 0 when no trace was recorded.
  std::uint64_t trace_pos = 0;

  // --- TjPath: sibling-index spawn paths, root → task (Algorithm 3). ---
  std::vector<std::uint32_t> waiter_path;
  std::vector<std::uint32_t> target_path;

  // --- KjClock / KjSet evidence. ---
  std::uint32_t joiner_id = 0;
  std::uint32_t joinee_id = 0;
  std::uint32_t joinee_parent = 0;   ///< parent(joinee)'s dense id
  std::uint32_t joinee_birth = 0;    ///< 1-based fork index at the parent
  std::uint32_t observed_clock = 0;  ///< joiner's clock[parent(joinee)]
  bool set_member = false;           ///< KJ-SS membership actually observed

  // --- LadderMixed: the immutable (level, forest) tags of the pair. ---
  std::uint32_t waiter_level = 0;
  std::uint32_t target_level = 0;
  std::uint64_t waiter_forest = 0;
  std::uint64_t target_forest = 0;

  // --- OwpChain / WfgCycle: the node chain that is the evidence. ---
  /// OwpChain: obligation path target (or owner(p)) ⇝ waiter over task uids.
  /// WfgCycle: the cycle the rejected edge would close, in wait order
  /// [waiter, target, …] with the closing edge back to waiter implicit, over
  /// WFG node ids (promise nodes carry the reserved high bit, see
  /// wfg::promise_node_id).
  std::vector<std::uint64_t> chain;

  bool empty() const { return kind == WitnessKind::None; }
};

}  // namespace tj::core
