#pragma once
// Replays an offline trace through the *online* OwpVerifier, exactly as the
// runtime would — on_make at makes, check/commit at fulfills and transfers,
// permits/on_await at awaits, permits/on_join at joins — so tests and the
// fuzzer can compare the online verdict of every action against the offline
// reference judgment (trace/owp_judgment.hpp) on the same prefix.
//
// Learning is unconditional, mirroring OwpJudgment::push: the trace is
// ground truth, so an OWP-invalid action still applies its ownership and
// history effects after its verdict is taken. Task exits do not appear in
// the trace model, so the replay never orphans a promise.

#include <unordered_map>

#include "core/owp.hpp"
#include "trace/action.hpp"
#include "trace/trace.hpp"

namespace tj::core {

class OwpTraceReplay {
 public:
  OwpTraceReplay() = default;
  OwpTraceReplay(const OwpTraceReplay&) = delete;
  OwpTraceReplay& operator=(const OwpTraceReplay&) = delete;

  ~OwpTraceReplay() {
    for (auto& [id, node] : nodes_) v_.release(node);
  }

  /// Takes the online verdict of `a` (true = the policy permits it), then
  /// applies the action. Actions the OWP has no opinion on (init/fork/make)
  /// report true.
  bool feed(const trace::Action& a) {
    switch (a.kind) {
      case trace::ActionKind::Init:
      case trace::ActionKind::Fork:
        return true;
      case trace::ActionKind::Join: {
        const bool ok = v_.permits_join(a.actor, a.target);
        v_.on_join(a.actor, a.target);
        return ok;
      }
      case trace::ActionKind::Make:
        if (!nodes_.contains(a.promise)) {
          nodes_.emplace(a.promise, v_.on_make(a.actor, a.promise));
        }
        return true;
      case trace::ActionKind::Fulfill: {
        PromiseNode* p = nodes_.at(a.promise);
        const bool ok = v_.check_fulfill(p, a.actor) == FulfillResult::Ok;
        v_.commit_fulfill(p);
        return ok;
      }
      case trace::ActionKind::Transfer: {
        PromiseNode* p = nodes_.at(a.promise);
        const bool ok =
            v_.check_transfer(p, a.actor, a.target) == TransferResult::Ok;
        v_.commit_transfer(p, a.target);
        return ok;
      }
      case trace::ActionKind::Await: {
        PromiseNode* p = nodes_.at(a.promise);
        const bool ok = v_.permits_await(a.actor, p) == AwaitVerdict::Allow;
        v_.on_await(a.actor, p);
        return ok;
      }
    }
    return true;
  }

  OwpVerifier& verifier() { return v_; }

 private:
  OwpVerifier v_;
  std::unordered_map<trace::PromiseId, PromiseNode*> nodes_;
};

}  // namespace tj::core
