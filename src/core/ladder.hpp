#pragma once
// Degradation ladder: a composite Verifier that can be stepped down through a
// sequence of ever-cheaper policies at runtime — the adaptive analogue of the
// paper's offline "pick a cheaper policy" answer to Table 1's blow-ups
// (KJ-VC's O(n²) space on NQueens) and of Armus's runtime graph-model
// switching. Ladders per configured policy:
//
//   TJ-GT: TJ-GT → TJ-SP → WFG-only        TJ-JP: TJ-JP → TJ-SP → WFG-only
//   TJ-SP: TJ-SP → WFG-only                KJ-VC: KJ-VC → WFG-only
//   KJ-SS: KJ-SS → WFG-only
//
// The final level is always WFG-only (PolicyChoice::CycleOnly): permits_join
// answers false unconditionally, so every join takes the gate's probation
// path and is precisely ruled by cycle detection — Armus's baseline.
//
// Soundness (the full argument lives in docs/robustness.md §"Degradation
// ladder"): every node is tagged with the (level, forest) it was created
// under, and permits_join delegates to a level verifier ONLY for two nodes of
// the same level and forest — a pair for which that verifier's standalone
// soundness theorem applies verbatim. Every other pair (cross-level,
// cross-forest, or final-level) is answered `false`, which routes the join
// through the WFG probation path; while any probation edge is live the WFG
// cycle-checks *every* insertion (see wfg/waits_for_graph.hpp), so a cycle
// that mixes levels cannot slip through an unchecked approved edge: its
// cycle-closing insertion happens while the mixed (rejected ⇒ probation)
// edge is live. Downgrading therefore only ever makes the policy MORE
// conservative — it rejects more, never approves more — and rejections are
// refined, not trusted. No quiescent point is needed: a verdict never reads
// the current level, only the immutable tags of the two nodes involved, so a
// downgrade concurrent with a join cannot produce a mixed-logic verdict.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/verifier.hpp"

namespace tj::core {

class LadderVerifier final : public Verifier {
 public:
  /// Builds the ladder for `configured` (must be a real policy, not
  /// None/CycleOnly — see make_ladder_verifier).
  explicit LadderVerifier(PolicyChoice configured);

  PolicyNode* add_child(PolicyNode* parent) override;
  bool permits_join(const PolicyNode* joiner,
                    const PolicyNode* joinee) override;
  Witness explain(const PolicyNode* joiner, const PolicyNode* joinee) override;
  void on_join_complete(PolicyNode* joiner, const PolicyNode* joinee) override;
  void release(PolicyNode* node) override;

  /// The ACTIVE policy — what the gate is effectively running right now.
  PolicyChoice kind() const override {
    return level_kind(level_.load(std::memory_order_relaxed));
  }
  /// The policy the ladder was configured with (level 0).
  PolicyChoice configured() const { return level_kind(0); }

  /// Aggregated across all level verifiers plus the ladder's own wrappers.
  std::size_t state_bytes() const override;
  std::size_t state_nodes() const override;

  // ---- governor interface ----

  std::size_t level() const { return level_.load(std::memory_order_relaxed); }
  std::size_t level_count() const { return kinds_.size(); }
  PolicyChoice level_kind(std::size_t i) const { return kinds_[i]; }

  /// Steps down one level. Returns false (and does nothing) when already at
  /// the WFG-only floor. Thread-safe; monotone (there is no way back up —
  /// nodes created under an abandoned level keep their tags, and recovery
  /// simply means pressure subsides and no further downgrades happen).
  bool downgrade();

  /// The verifier backing level `i` (nullptr for the WFG-only floor). The
  /// governor uses this to reach policy-specific pressure valves (KJ-VC's
  /// epoch GC) before resorting to a downgrade.
  Verifier* level_verifier(std::size_t i) const { return levels_[i].get(); }
  Verifier* active_verifier() const {
    return levels_[level_.load(std::memory_order_relaxed)].get();
  }

  struct Node final : PolicyNode {
    PolicyNode* inner = nullptr;  // node in levels_[level]; null on the floor
    std::uint32_t level = 0;      // immutable: level active at creation
    std::uint64_t forest = 0;     // immutable: which root this descends from
  };

 private:
  std::vector<std::unique_ptr<Verifier>> levels_;  // back() == nullptr (floor)
  std::vector<PolicyChoice> kinds_;                // parallel to levels_
  std::atomic<std::size_t> level_{0};
  std::atomic<std::uint64_t> next_forest_{0};
};

/// nullptr for None/CycleOnly (nothing to degrade), a ladder otherwise.
std::unique_ptr<LadderVerifier> make_ladder_verifier(PolicyChoice p);

}  // namespace tj::core
