#include "core/ladder.hpp"

namespace tj::core {

LadderVerifier::LadderVerifier(PolicyChoice configured) {
  auto push = [this](PolicyChoice p) {
    kinds_.push_back(p);
    levels_.push_back(make_verifier(p));  // nullptr for CycleOnly (the floor)
  };
  switch (configured) {
    case PolicyChoice::TJ_GT:
      push(PolicyChoice::TJ_GT);
      push(PolicyChoice::TJ_SP);
      break;
    case PolicyChoice::TJ_JP:
      push(PolicyChoice::TJ_JP);
      push(PolicyChoice::TJ_SP);
      break;
    case PolicyChoice::TJ_SP:
      push(PolicyChoice::TJ_SP);
      break;
    case PolicyChoice::KJ_VC:
      push(PolicyChoice::KJ_VC);
      break;
    case PolicyChoice::KJ_SS:
      push(PolicyChoice::KJ_SS);
      break;
    case PolicyChoice::Async:
      // Optimistic level: no verifier at all (the gate approves without
      // asking and a background detector watches the event stream). The
      // floor below is where lag/drop failover lands — synchronous
      // WFG-checked ruling, reached by the same monotone downgrade() every
      // other rung uses.
      push(PolicyChoice::Async);
      break;
    case PolicyChoice::None:
    case PolicyChoice::CycleOnly:
      break;  // make_ladder_verifier never builds these; floor-only ladder
  }
  push(PolicyChoice::CycleOnly);
}

PolicyNode* LadderVerifier::add_child(PolicyNode* parent) {
  const auto* u = static_cast<const Node*>(parent);
  const std::size_t cur = level_.load(std::memory_order_acquire);
  auto* v = new Node;
  v->level = static_cast<std::uint32_t>(cur);
  Verifier* lv = levels_[cur].get();
  if (u != nullptr && u->level == cur) {
    // Same level: extend the parent's forest inside that level's verifier.
    v->forest = u->forest;
    if (lv != nullptr) v->inner = lv->add_child(u->inner);
  } else {
    // Root task, or the parent predates the current level: start a fresh
    // forest. The level verifier sees a new root (add_child(nullptr)); the
    // forest tag keeps its partial order from ever being asked to compare
    // across forests, where its soundness theorem does not speak.
    v->forest = next_forest_.fetch_add(1, std::memory_order_relaxed);
    if (lv != nullptr) v->inner = lv->add_child(nullptr);
  }
  alloc_.add(sizeof(Node));
  alloc_.note_node_created();
  return v;
}

bool LadderVerifier::permits_join(const PolicyNode* joiner,
                                  const PolicyNode* joinee) {
  const auto* a = static_cast<const Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // Delegate only when the pair lives entirely inside one level verifier's
  // world; everything else is conservatively rejected into the WFG probation
  // path (which rules precisely). The WFG-only floor has no verifier, so all
  // of its joins land here too — Armus's check-every-join baseline.
  if (a->level != b->level || a->forest != b->forest) return false;
  Verifier* lv = levels_[a->level].get();
  if (lv == nullptr) return false;
  return lv->permits_join(a->inner, b->inner);
}

Witness LadderVerifier::explain(const PolicyNode* joiner,
                                const PolicyNode* joinee) {
  const auto* a = static_cast<const Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // Mirror of permits_join: a same-level+forest pair was rejected by that
  // level's verifier (delegate for its evidence); everything else — including
  // the WFG-only floor — is the ladder's own conservative cross-world
  // rejection, witnessed by the pair's immutable tags.
  if (a->level == b->level && a->forest == b->forest) {
    Verifier* lv = levels_[a->level].get();
    if (lv != nullptr) return lv->explain(a->inner, b->inner);
  }
  Witness w;
  w.kind = WitnessKind::LadderMixed;
  w.policy = kind();
  w.waiter_level = a->level;
  w.target_level = b->level;
  w.waiter_forest = a->forest;
  w.target_forest = b->forest;
  return w;
}

void LadderVerifier::on_join_complete(PolicyNode* joiner,
                                      const PolicyNode* joinee) {
  auto* a = static_cast<Node*>(joiner);
  const auto* b = static_cast<const Node*>(joinee);
  // KJ-learn stays sound for any really-completed join, but only nodes of
  // the same level share a verifier to learn through. (TJ levels no-op.)
  if (a->level != b->level) return;
  Verifier* lv = levels_[a->level].get();
  if (lv != nullptr) lv->on_join_complete(a->inner, b->inner);
}

void LadderVerifier::release(PolicyNode* node) {
  auto* v = static_cast<Node*>(node);
  Verifier* lv = levels_[v->level].get();
  if (lv != nullptr && v->inner != nullptr) lv->release(v->inner);
  alloc_.sub(sizeof(Node));
  alloc_.note_node_released();
  delete v;
}

std::size_t LadderVerifier::state_bytes() const {
  std::size_t total = alloc_.live_bytes();
  for (const auto& lv : levels_) {
    if (lv != nullptr) total += lv->state_bytes();
  }
  return total;
}

std::size_t LadderVerifier::state_nodes() const {
  std::size_t total = alloc_.live_nodes();
  for (const auto& lv : levels_) {
    if (lv != nullptr) total += lv->state_nodes();
  }
  return total;
}

bool LadderVerifier::downgrade() {
  std::size_t cur = level_.load(std::memory_order_relaxed);
  while (cur + 1 < levels_.size()) {
    if (level_.compare_exchange_weak(cur, cur + 1, std::memory_order_release,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<LadderVerifier> make_ladder_verifier(PolicyChoice p) {
  if (p == PolicyChoice::None || p == PolicyChoice::CycleOnly) return nullptr;
  return std::make_unique<LadderVerifier>(p);
}

}  // namespace tj::core
