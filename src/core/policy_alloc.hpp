#pragma once
// Byte accounting for verifier state. The paper reports verifier *memory
// overhead*; on a JVM that is RSS sampling, here the primary, deterministic
// metric is exact live bytes of policy state, tracked through this counter.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tj::core {

class PolicyAllocator {
 public:
  void add(std::size_t bytes) {
    live_.fetch_add(bytes, std::memory_order_relaxed);
    total_.fetch_add(bytes, std::memory_order_relaxed);
    // Peak tracking is approximate under concurrency (relaxed CAS loop);
    // exactness is not required for overhead factors.
    std::size_t cur = live_.load(std::memory_order_relaxed);
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
    }
  }

  void sub(std::size_t bytes) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_allocated() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Node accounting: one count per live PolicyNode. The resource governor
  /// polls live_nodes() alongside live_bytes(); both are relaxed counters,
  /// cheap enough to update on every node create/release.
  void note_node_created() {
    nodes_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_node_released() {
    nodes_.fetch_sub(1, std::memory_order_relaxed);
  }
  std::size_t live_nodes() const {
    return nodes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::size_t> nodes_{0};
};

}  // namespace tj::core
