#pragma once
// TJ-SP (Algorithm 3): the spawn-path verifier — the variant evaluated in the
// paper. The shared tree is replaced by a task-local array recording the
// task's path from the root: each fork copies the parent's path and appends
// the child's sibling index. A join check scans for the longest common prefix
// and compares the diverging indices; prefix containment discriminates the
// anc+/dec* cases by path length. O(h) fork, O(h) join check, O(nh) space —
// but fully task-local (cache-friendly, reclaimable with the task).

#include <cstdint>
#include <vector>

#include "core/verifier.hpp"

namespace tj::core {

class TjSpVerifier final : public Verifier {
 public:
  PolicyNode* add_child(PolicyNode* parent) override;
  bool permits_join(const PolicyNode* joiner,
                    const PolicyNode* joinee) override;
  Witness explain(const PolicyNode* joiner, const PolicyNode* joinee) override;
  void release(PolicyNode* node) override;
  PolicyChoice kind() const override { return PolicyChoice::TJ_SP; }

  struct Node final : PolicyNode {
    std::vector<std::uint32_t> path;  // sibling indices root → task; immutable
    std::uint32_t children = 0;       // mutated only by the owning task
  };

  /// v1 <T v2 by spawn-path comparison (Algorithm 3 Less).
  static bool less(const Node* v1, const Node* v2);

 private:
  static std::size_t node_bytes(const Node& n) {
    return sizeof(Node) + n.path.capacity() * sizeof(std::uint32_t);
  }
};

}  // namespace tj::core
