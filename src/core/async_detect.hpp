#pragma once
// Optimistic asynchronous deadlock detection (the bottom rung of the
// overhead ladder, PolicyChoice::Async). The gate approves every join/await
// immediately with zero policy work; this background detector consumes the
// flight recorder's event stream, maintains a *shadow* waits-for graph, and
// when the shadow suggests a cycle confirms it against the gate's live WFG —
// the ground truth — before handing it to the recovery layer to break.
// Confirmation against the live graph is what makes recoveries sound: a
// reported cycle is a set of edges that are all simultaneously registered at
// scan time, i.e. a real deadlock, never a stale-shadow artefact.
//
// Bounded latency is enforced, not hoped for: the detector tracks its
// consumption watermark against the recorder's emit counter. If the backlog
// exceeds the lag budget for too many consecutive ticks, if too many events
// are lost (ring overflow or injected drops), or if the detector thread dies
// more often than the respawn budget tolerates, the detector *fails over*:
// it tells its sink to step the gate's degradation ladder down to a
// synchronous level (monotone downgrade — no quiescent point needed; in-
// flight optimistic approvals simply complete and their edges drain), then
// keeps scanning for stale pre-failover cycles so nothing formed under
// optimism is ever left hanging.

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/event.hpp"
#include "obs/recorder.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::core {

class JoinGate;

/// Detector knobs (embedded in runtime::Config as `detector`).
struct DetectorConfig {
  /// Consumption tick period. Recovery latency is O(tick_us) in the common
  /// case (shadow spots the cycle on the next tick after its last edge's
  /// verdict event lands).
  std::uint64_t tick_us = 200;
  /// Backlog (events recorded but not yet consumed) considered "lagging".
  std::uint64_t lag_budget_events = 65536;
  /// Consecutive lagging ticks before the detector fails over.
  std::uint32_t lag_trips_to_failover = 5;
  /// Events lost (recorder ring drops + injected batch drops) tolerated
  /// before failover. Loss is survivable in small doses because every
  /// authoritative scan resyncs the shadow from the live graph.
  std::uint64_t drop_budget_events = 4096;
  /// Detector-thread deaths revived before failover.
  std::uint32_t max_respawns = 3;
  /// Run an authoritative ground-truth scan every this-many ticks even when
  /// the shadow looks acyclic (safety net against shadow staleness).
  std::uint32_t full_scan_ticks = 16;
};

/// Fault-injection seam for the detector (runtime/fault_injection.hpp
/// implements it; nullptr in production). Mirrors GateFaultHooks.
class DetectorFaultHooks {
 public:
  virtual ~DetectorFaultHooks() = default;
  /// Microseconds to stall consumption this tick (0 = none).
  virtual std::uint64_t detector_delay_us() noexcept = 0;
  /// True ⇒ discard this tick's consumed batch without applying it.
  virtual bool drop_detector_batch() noexcept = 0;
  /// True ⇒ kill the detector incarnation (the supervisor respawns it).
  virtual bool kill_detector() noexcept = 0;
};

/// Where the detector reports. Implemented by the runtime's
/// RecoverySupervisor (victim selection and wait-breaking live there — the
/// detector only finds and confirms).
class DetectorSink {
 public:
  virtual ~DetectorSink() = default;
  /// A confirmed cycle from the gate's live WFG (node ids; promise nodes
  /// carry the high bit). May be reported again on later scans if it is
  /// still unbroken — the sink dedups per incarnation and re-noisily
  /// re-posts the break until the victim actually wakes.
  virtual void recover_cycle(const std::vector<wfg::NodeId>& cycle) = 0;
  /// Budget exhausted: the sink must step the ladder to a synchronous
  /// level. Called at most once per detector lifetime.
  virtual void on_failover(obs::DetectorFailoverReason reason,
                           std::uint64_t backlog) = 0;
};

/// Point-in-time detector health (watchdog stall reports, introspection,
/// telemetry).
struct DetectorStatus {
  bool running = false;      ///< thread alive (supervisor loop active)
  bool failed_over = false;  ///< optimistic mode abandoned
  std::uint8_t failover_reason = 0;  ///< DetectorFailoverReason when above
  std::uint64_t lag_events = 0;      ///< recorded − consumed at last tick
  std::uint64_t events_lost = 0;     ///< ring drops + injected batch drops
  std::uint64_t events_applied = 0;  ///< events folded into the shadow
  std::uint64_t ticks = 0;
  std::uint64_t authoritative_scans = 0;
  std::uint64_t cycles_confirmed = 0;  ///< cycles handed to the sink
  std::uint32_t respawns = 0;          ///< injected deaths survived
};

class AsyncDetector {
 public:
  /// `faults` may be nullptr (no injection). The gate, recorder, and sink
  /// must outlive the detector.
  AsyncDetector(DetectorConfig cfg, const JoinGate& gate,
                obs::FlightRecorder& rec, DetectorSink& sink,
                DetectorFaultHooks* faults);
  ~AsyncDetector();
  AsyncDetector(const AsyncDetector&) = delete;
  AsyncDetector& operator=(const AsyncDetector&) = delete;

  void start();
  void stop();

  DetectorStatus status() const;
  bool failed_over() const {
    return failed_over_.load(std::memory_order_acquire);
  }

 private:
  /// Outcome of one detector incarnation's tick loop.
  enum class RunEnd : std::uint8_t { Stopped, Killed };

  void supervisor_loop();
  RunEnd run_incarnation();
  void tick();
  void apply_event(const obs::Event& e);
  bool shadow_has_cycle() const;
  void authoritative_scan();
  void resync_shadow_from_graph();
  void record_injected(obs::InjectedFault site);
  void fail_over(obs::DetectorFailoverReason reason, std::uint64_t backlog);

  const DetectorConfig cfg_;
  const JoinGate& gate_;
  obs::FlightRecorder& rec_;
  DetectorSink& sink_;
  DetectorFaultHooks* faults_;  // not owned; nullptr ⇒ no injection

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_over_{false};
  std::atomic<std::uint8_t> failover_reason_{0};
  std::atomic<std::uint64_t> lag_events_{0};
  std::atomic<std::uint64_t> injected_drops_{0};  ///< events in dropped batches
  std::atomic<std::uint64_t> events_applied_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> authoritative_scans_{0};
  std::atomic<std::uint64_t> cycles_confirmed_{0};
  std::atomic<std::uint32_t> respawns_{0};

  // Detector-thread-only state (rebuilt on respawn — an incarnation that
  // died loses its in-memory view and resyncs from the live graph).
  std::unordered_map<wfg::NodeId, wfg::NodeId> shadow_;
  std::vector<obs::Event> batch_;
  std::uint32_t lag_streak_ = 0;
  std::uint32_t ticks_since_scan_ = 0;
};

}  // namespace tj::core
