#pragma once
// TJ-JP (Sec. 5.2.2): jump-pointer verifier. Each node keeps pointers to its
// 2^i-th ancestors, so the LCA walk of TJ-GT becomes a binary search:
// O(log h) per fork (building the table) and O(log h) per join check, at
// O(n log h) space.
//
// Deviation from the paper's sketch: the paper pairs each jump pointer with
// the child index it arrives through. We binary-descend both nodes to the two
// sibling ancestors *just below* the LCA and compare their own `ix` fields
// directly, which makes the arrival indices redundant.

#include <atomic>
#include <cstdint>

#include "core/verifier.hpp"

namespace tj::core {

class TjJpVerifier final : public Verifier {
 public:
  TjJpVerifier() = default;
  ~TjJpVerifier() override;

  PolicyNode* add_child(PolicyNode* parent) override;
  bool permits_join(const PolicyNode* joiner,
                    const PolicyNode* joinee) override;
  Witness explain(const PolicyNode* joiner, const PolicyNode* joinee) override;
  PolicyChoice kind() const override { return PolicyChoice::TJ_JP; }

  struct Node final : PolicyNode {
    ~Node() override { delete[] jumps; }
    const Node** jumps = nullptr;   // jumps[i] = 2^i-th ancestor; immutable
    std::uint32_t jump_count = 0;   // ⌊log2(depth)⌋+1 for depth ≥ 1
    std::uint32_t ix = 0;           // index among parent's children; immutable
    std::uint32_t depth = 0;        // immutable
    std::uint32_t children = 0;     // mutated only by the owning task
    Node* next_alloc = nullptr;     // intrusive arena chain
  };

  /// v1 <T v2 by binary lifting; exposed for tests and Table-1 benches.
  static bool less(const Node* v1, const Node* v2);

 private:
  static const Node* ancestor_at_depth(const Node* v, std::uint32_t depth);

  std::atomic<Node*> alloc_head_{nullptr};
};

}  // namespace tj::core
