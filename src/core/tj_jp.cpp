#include "core/tj_jp.hpp"

#include <bit>

namespace tj::core {

TjJpVerifier::~TjJpVerifier() {
  Node* cur = alloc_head_.load(std::memory_order_acquire);
  while (cur != nullptr) {
    Node* next = cur->next_alloc;
    delete cur;
    cur = next;
  }
}

PolicyNode* TjJpVerifier::add_child(PolicyNode* parent) {
  auto* u = static_cast<Node*>(parent);
  auto* v = new Node;
  if (u != nullptr) {
    v->depth = u->depth + 1;
    v->ix = u->children;
    u->children += 1;
    // jumps[i] is the 2^i-th ancestor: jumps[0] = parent, and
    // jumps[i] = jumps[i-1]->jumps[i-1] while it exists.
    v->jump_count = std::bit_width(v->depth);  // ⌊log2(depth)⌋ + 1
    v->jumps = new const Node*[v->jump_count];
    v->jumps[0] = u;
    for (std::uint32_t i = 1; i < v->jump_count; ++i) {
      const Node* half = v->jumps[i - 1];
      v->jumps[i] = half->jumps[i - 1];
    }
  }
  alloc_.add(sizeof(Node) + v->jump_count * sizeof(const Node*));
  alloc_.note_node_created();  // JP nodes live for the verifier's lifetime
  Node* head = alloc_head_.load(std::memory_order_relaxed);
  do {
    v->next_alloc = head;
  } while (!alloc_head_.compare_exchange_weak(head, v,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  return v;
}

const TjJpVerifier::Node* TjJpVerifier::ancestor_at_depth(
    const Node* v, std::uint32_t depth) {
  while (v->depth > depth) {
    std::uint32_t step = v->depth - depth;
    // Largest power of two ≤ step.
    const std::uint32_t i = std::bit_width(step) - 1;
    v = v->jumps[i];
  }
  return v;
}

bool TjJpVerifier::less(const Node* v1, const Node* v2) {
  if (v1 == v2) return false;
  if (v1->depth < v2->depth) {
    const Node* lifted = ancestor_at_depth(v2, v1->depth);
    if (lifted == v1) return true;  // anc+: v1 is a proper ancestor of v2
    v2 = lifted;
  } else if (v1->depth > v2->depth) {
    const Node* lifted = ancestor_at_depth(v1, v2->depth);
    if (lifted == v2) return false;  // dec*: v2 is a proper ancestor of v1
    v1 = lifted;
  }
  // Same depth, different nodes: binary-descend to just below the LCA.
  while (v1->jumps[0] != v2->jumps[0]) {
    // Find the highest jump that keeps them apart and take it on both sides.
    std::uint32_t i = std::min(v1->jump_count, v2->jump_count) - 1;
    while (i > 0 && v1->jumps[i] == v2->jumps[i]) --i;
    v1 = v1->jumps[i];
    v2 = v2->jumps[i];
  }
  return v1->ix > v2->ix;  // Theorem 3.15(c)
}

bool TjJpVerifier::permits_join(const PolicyNode* joiner,
                                const PolicyNode* joinee) {
  return less(static_cast<const Node*>(joiner),
              static_cast<const Node*>(joinee));
}

namespace {
// The spawn path via jumps[0] (= parent); all fields immutable after
// add_child returns, so the rootward walk is safe from any thread.
std::vector<std::uint32_t> jp_path(const TjJpVerifier::Node* v) {
  std::vector<std::uint32_t> path(v->depth);
  for (std::size_t i = v->depth; i > 0; --i) {
    path[i - 1] = v->ix;
    v = v->jumps[0];
  }
  return path;
}
}  // namespace

Witness TjJpVerifier::explain(const PolicyNode* joiner,
                              const PolicyNode* joinee) {
  Witness w;
  w.kind = WitnessKind::TjPath;
  w.policy = kind();
  w.waiter_path = jp_path(static_cast<const Node*>(joiner));
  w.target_path = jp_path(static_cast<const Node*>(joinee));
  return w;
}

}  // namespace tj::core
