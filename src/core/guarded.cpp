#include "core/guarded.hpp"

#include <utility>

namespace tj::core {

namespace {
// A WFG-fallback witness: the concrete cycle the rejected edge would close.
// `attributed` is the join policy whose rejection routed the edge into the
// fallback (active_kind() on the probation path), CycleOnly when the cycle
// was found on an edge no policy had rejected (pure WFG evidence), or None
// when the rejection originated from the ownership policy.
Witness wfg_witness(PolicyChoice attributed,
                    std::vector<wfg::NodeId>&& cycle) {
  Witness w;
  w.kind = WitnessKind::WfgCycle;
  w.policy = attributed;
  w.chain = std::move(cycle);
  return w;
}
}  // namespace

JoinGate::JoinGate(PolicyChoice kind, Verifier* verifier, FaultMode mode,
                   OwpVerifier* owp, GateFaultHooks* hooks,
                   obs::FlightRecorder* rec)
    : kind_(kind), verifier_(verifier), mode_(mode), owp_(owp),
      hooks_(hooks), rec_(rec) {}

template <typename F>
wfg::WaitVerdict JoinGate::timed_scan(std::uint64_t waiter,
                                      std::uint64_t target, F&& scan) {
  if (rec_ == nullptr) return scan();
  const std::uint64_t scans_before = wfg_.cycle_checks();
  const std::uint64_t t0 = rec_->now_ns();
  const wfg::WaitVerdict v = scan();
  const std::uint64_t dt = rec_->now_ns() - t0;
  if (wfg_.cycle_checks() != scans_before) {
    rec_->metrics().cycle_scan_ns.record(dt);
    obs::Event e;
    e.kind = obs::EventKind::CycleScan;
    e.actor = waiter;
    e.target = target;
    e.payload = dt;
    e.detail = v == wfg::WaitVerdict::WouldDeadlock ? 1 : 0;
    rec_->emit(e);
  }
  return v;
}

void JoinGate::record_injected(std::uint64_t actor, obs::InjectedFault site) {
  if (rec_ == nullptr) return;
  rec_->metrics().faults_injected.fetch_add(1, std::memory_order_relaxed);
  obs::Event e;
  e.kind = obs::EventKind::FaultInjected;
  e.actor = actor;
  e.detail = static_cast<std::uint8_t>(site);
  rec_->emit(e);
}

JoinDecision JoinGate::enter_join(wfg::NodeId waiter, wfg::NodeId target,
                                  PolicyNode* waiter_state,
                                  const PolicyNode* target_state,
                                  bool target_done, Witness* why) {
  Witness local;
  Witness* w = why != nullptr ? why : &local;
  if (rec_ == nullptr) {
    const JoinDecision d =
        rule_join(waiter, target, waiter_state, target_state, target_done, w);
    if (!w->empty()) record_witness(*w, waiter, target, d, false);
    return d;
  }
  const std::uint64_t t0 = rec_->now_ns();
  const JoinDecision d =
      rule_join(waiter, target, waiter_state, target_state, target_done, w);
  const std::uint64_t dt = rec_->now_ns() - t0;
  rec_->metrics().policy_check_ns.record(dt);
  obs::Event e;
  e.kind = obs::EventKind::JoinVerdict;
  e.actor = waiter;
  e.target = target;
  e.payload = dt;  // ruling duration: the critical-path profiler attributes it
  e.policy = static_cast<std::uint8_t>(active_kind());
  e.detail = static_cast<std::uint8_t>(d);
  rec_->emit(e);
  if (!w->empty()) record_witness(*w, waiter, target, d, false);
  return d;
}

JoinDecision JoinGate::rule_join(wfg::NodeId waiter, wfg::NodeId target,
                                 PolicyNode* waiter_state,
                                 const PolicyNode* target_state,
                                 bool target_done, Witness* why) {
  joins_checked_.fetch_add(1, std::memory_order_relaxed);
  // TJ/KJ soundness covers futures only; once a promise exists, joins are
  // additionally screened by the ownership policy's obligation history.
  const bool owp_live = owp_ != nullptr && owp_->active();

  if (kind_ == PolicyChoice::None && !owp_live) {
    // Baseline: unchecked joins, no graph maintenance at all.
    return JoinDecision::Proceed;
  }

  if (kind_ == PolicyChoice::Async &&
      active_kind() == PolicyChoice::Async) {
    // Optimistic mode: approve immediately with zero policy work — no
    // verifier, no OWP verdict, no cycle scan, no injection hook (detector
    // faults are this mode's chaos surface). Blocking joins still register
    // their edge UNCHECKED so the graph stays the ground truth the
    // background detector confirms candidate cycles against; the cycles
    // this may admit are the detector's job to recover. Once the ladder
    // has failed over (active_kind() != Async) new joins fall through to
    // the synchronous machinery below — no quiescent point needed.
    if (target_done) return JoinDecision::Proceed;
    wfg_.add_unchecked_wait(waiter, target);
    return JoinDecision::Proceed;
  }

  if (kind_ == PolicyChoice::CycleOnly) {
    // The Armus-alone baseline: every blocking join pays a cycle check.
    // Owner edges are visible to the chain walk, so mixed future/promise
    // cycles are covered with no extra OWP consultation.
    if (target_done) return JoinDecision::Proceed;
    std::vector<wfg::NodeId> cycle;
    if (timed_scan(waiter, target, [&] {
          return wfg_.add_checked_wait(waiter, target, &cycle);
        }) == wfg::WaitVerdict::WouldDeadlock) {
      deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
      deadlocks_averted_approved_.fetch_add(1, std::memory_order_relaxed);
      *why = wfg_witness(PolicyChoice::CycleOnly, std::move(cycle));
      return JoinDecision::FaultDeadlock;
    }
    return JoinDecision::Proceed;
  }

  bool approved = verifier_ == nullptr ||  // PolicyChoice::None with live OWP
                  verifier_->permits_join(waiter_state, target_state);
  bool owp_rejected = false;
  if (approved && owp_live && !owp_->permits_join(waiter, target)) {
    approved = false;
    owp_rejected = true;
  }
  // Fault injection: a spurious rejection takes the exact path a real one
  // takes (counters, fallback, probation edge), so chaos tests exercise the
  // recovery machinery and the stats still reconcile.
  bool injected = false;
  if (approved && hooks_ != nullptr && hooks_->inject_join_rejection()) {
    approved = false;
    injected = true;
    record_injected(waiter, obs::InjectedFault::JoinRejection);
  }

  if (approved) {
    if (target_done) return JoinDecision::Proceed;
    // Approved blocking joins still register their edge: a probation edge
    // elsewhere may need it to witness (or rule out) a cycle.
    std::vector<wfg::NodeId> cycle;
    if (timed_scan(waiter, target, [&] {
          return wfg_.add_wait(waiter, target, &cycle);
        }) == wfg::WaitVerdict::WouldDeadlock) {
      deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
      deadlocks_averted_approved_.fetch_add(1, std::memory_order_relaxed);
      // No policy rejected this edge: the cycle is pure WFG evidence.
      *why = wfg_witness(PolicyChoice::CycleOnly, std::move(cycle));
      return JoinDecision::FaultDeadlock;
    }
    return JoinDecision::Proceed;
  }

  // Rejection provenance (cold path — the edge is already off the fast path).
  if (injected) {
    why->kind = WitnessKind::Injected;
    why->policy = active_kind();
  } else if (owp_rejected) {
    *why = owp_->explain_join(waiter, target);
  } else if (verifier_ != nullptr) {
    *why = verifier_->explain(waiter_state, target_state);
  }

  auto& rejections = owp_rejected ? owp_rejections_ : policy_rejections_;
  auto& cleared = owp_rejected ? owp_false_positives_ : false_positives_;
  rejections.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == FaultMode::Throw) {
    return JoinDecision::FaultPolicy;
  }
  if (target_done) {
    // A join on a terminated task cannot block, hence cannot deadlock:
    // trivially a false positive of the policy.
    cleared.fetch_add(1, std::memory_order_relaxed);
    return JoinDecision::ProceedFalsePositive;
  }
  std::vector<wfg::NodeId> cycle;
  if (timed_scan(waiter, target, [&] {
        return wfg_.add_probation_wait(waiter, target, &cycle);
      }) == wfg::WaitVerdict::WouldDeadlock) {
    deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
    // The fallback confirmed the rejection: the concrete cycle supersedes
    // the policy's conservative evidence, attributed to the rejecting policy.
    *why = wfg_witness(owp_rejected ? PolicyChoice::None : active_kind(),
                       std::move(cycle));
    return JoinDecision::FaultDeadlock;
  }
  cleared.fetch_add(1, std::memory_order_relaxed);
  return JoinDecision::ProceedFalsePositive;
}

void JoinGate::record_witness(Witness& w, std::uint64_t waiter,
                              std::uint64_t target, JoinDecision d,
                              bool on_promise) {
  w.waiter = waiter;
  w.target = target;
  w.outcome = static_cast<std::uint8_t>(d);
  w.on_promise = w.on_promise || on_promise;
  if (rec_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::VerdictExplained;
    e.actor = waiter;
    e.target = target;
    e.payload = w.chain.size();  // evidence-chain length (0 for local facts)
    e.policy = static_cast<std::uint8_t>(w.policy);
    e.detail = static_cast<std::uint8_t>(w.kind);
    if (w.on_promise) e.flags = obs::kFlagPromise;
    rec_->emit(e);
  }
  std::scoped_lock lock(witness_mu_);
  if (witness_log_.size() < kWitnessLogCap) {
    witness_log_.push_back(w);
  } else {
    witness_log_[witness_head_] = w;
    witness_head_ = (witness_head_ + 1) % kWitnessLogCap;
    witnesses_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<Witness> JoinGate::witnesses() const {
  std::scoped_lock lock(witness_mu_);
  std::vector<Witness> out;
  out.reserve(witness_log_.size());
  for (std::size_t i = 0; i < witness_log_.size(); ++i) {
    out.push_back(witness_log_[(witness_head_ + i) % witness_log_.size()]);
  }
  return out;
}

void JoinGate::leave_join(wfg::NodeId waiter, wfg::NodeId target,
                          PolicyNode* waiter_state,
                          const PolicyNode* target_state, bool completed) {
  const bool owp_live = owp_ != nullptr && owp_->active();
  if (kind_ != PolicyChoice::None || owp_live) {
    wfg_.remove_wait(waiter);  // no-op if the join never registered an edge
  }
  if (completed && verifier_ != nullptr) {
    verifier_->on_join_complete(waiter_state, target_state);
  }
  if (completed && owp_live) {
    // The completed join's obligation edge enters H: a later await must not
    // send target's fulfilment duties back through this waiter.
    owp_->on_join(waiter, target);
  }
}

bool JoinGate::inline_run_begin(wfg::NodeId waiter, wfg::NodeId target) {
  const bool owp_live = owp_ != nullptr && owp_->active();
  if (kind_ == PolicyChoice::None && !owp_live) {
    return false;  // baseline: no graph maintenance at all
  }
  if (kind_ == PolicyChoice::Async &&
      active_kind() == PolicyChoice::Async) {
    // Optimistic mode: the inline-run edge enters unchecked like every
    // other async edge; a child that blocks on its suspended parent's
    // obligations becomes a detector-recovered cycle, not a sync scan.
    wfg_.add_unchecked_wait(waiter, target);
    return true;
  }
  std::vector<wfg::NodeId> cycle;
  return timed_scan(waiter, target, [&] {
           return wfg_.add_probation_wait(waiter, target, &cycle);
         }) == wfg::WaitVerdict::Added;
}

void JoinGate::inline_run_end(wfg::NodeId waiter) {
  wfg_.remove_wait(waiter);
}

PromiseNode* JoinGate::promise_made(std::uint64_t owner_uid,
                                    std::uint64_t promise_uid) {
  if (owp_ == nullptr) return nullptr;
  PromiseNode* node = owp_->on_make(owner_uid, promise_uid);
  wfg_.add_owner_edge(wfg::promise_node_id(promise_uid), owner_uid);
  return node;
}

TransferDecision JoinGate::promise_transfer(PromiseNode* p,
                                            std::uint64_t from_uid,
                                            std::uint64_t to_uid) {
  if (owp_ == nullptr) return TransferDecision::Ok;  // unverified: no owners
  switch (owp_->check_transfer(p, from_uid, to_uid)) {
    case TransferResult::Fulfilled:
    case TransferResult::Orphaned:
      return TransferDecision::FaultSettled;
    case TransferResult::NotOwner:
      ownership_violations_.fetch_add(1, std::memory_order_relaxed);
      return TransferDecision::FaultNotOwner;
    case TransferResult::TargetDead:
      ownership_violations_.fetch_add(1, std::memory_order_relaxed);
      return TransferDecision::FaultTargetDead;
    case TransferResult::Ok:
      break;
  }
  // The new owner must not already (transitively) wait on this promise.
  const wfg::NodeId pnode = wfg::promise_node_id(p->uid());
  if (wfg_.retarget_owner_edge(pnode, to_uid) ==
      wfg::WaitVerdict::WouldDeadlock) {
    deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
    deadlocks_averted_approved_.fetch_add(1, std::memory_order_relaxed);
    return TransferDecision::FaultWouldDeadlock;
  }
  if (owp_->commit_transfer(p, to_uid)) {
    // Receiver died between check and commit: the promise is orphaned.
    wfg_.remove_owner_edge(pnode);
    promises_orphaned_.fetch_add(1, std::memory_order_relaxed);
    return TransferDecision::OrphanedReceiverDead;
  }
  return TransferDecision::Ok;
}

JoinDecision JoinGate::enter_await(std::uint64_t waiter_uid, PromiseNode* p,
                                   bool fulfilled, Witness* why) {
  Witness local;
  Witness* w = why != nullptr ? why : &local;
  const std::uint64_t pr_uid = p != nullptr ? p->uid() : 0;
  if (rec_ == nullptr) {
    const JoinDecision d = rule_await(waiter_uid, p, fulfilled, w);
    if (!w->empty()) record_witness(*w, waiter_uid, pr_uid, d, true);
    return d;
  }
  const std::uint64_t t0 = rec_->now_ns();
  const JoinDecision d = rule_await(waiter_uid, p, fulfilled, w);
  const std::uint64_t dt = rec_->now_ns() - t0;
  rec_->metrics().policy_check_ns.record(dt);
  obs::Event e;
  e.kind = obs::EventKind::AwaitVerdict;
  e.actor = waiter_uid;
  e.target = pr_uid;
  e.payload = dt;  // ruling duration: the critical-path profiler attributes it
  e.policy = static_cast<std::uint8_t>(active_kind());
  e.detail = static_cast<std::uint8_t>(d);
  e.flags = obs::kFlagPromise;
  rec_->emit(e);
  if (!w->empty()) record_witness(*w, waiter_uid, pr_uid, d, true);
  return d;
}

JoinDecision JoinGate::rule_await(std::uint64_t waiter_uid, PromiseNode* p,
                                  bool fulfilled, Witness* why) {
  awaits_checked_.fetch_add(1, std::memory_order_relaxed);
  if (fulfilled || owp_ == nullptr) {
    // A settled promise cannot block; unverified promises are never checked.
    return JoinDecision::Proceed;
  }
  const wfg::NodeId pnode = wfg::promise_node_id(p->uid());
  if (kind_ == PolicyChoice::Async &&
      active_kind() == PolicyChoice::Async) {
    // Optimistic mode, await flavour: skip the OWP verdict and the
    // check-and-insert lock entirely; the unchecked edge (plus the owner
    // edges promise_made/transfer keep maintaining) makes promise cycles
    // visible to the detector's ground-truth scan. An await on an already
    // orphaned promise is caught by the runtime's post-wait settle check.
    wfg_.add_unchecked_wait(waiter_uid, pnode);
    return JoinDecision::Proceed;
  }
  // Check-and-insert must be atomic across both graphs (see await_mu_).
  std::scoped_lock lock(await_mu_);
  AwaitVerdict verdict = owp_->permits_await(waiter_uid, p);
  bool injected = false;
  if (verdict == AwaitVerdict::Allow && hooks_ != nullptr &&
      hooks_->inject_await_rejection()) {
    // Injected spurious rejection: route through the probation path exactly
    // like a conservative OWP rejection.
    verdict = AwaitVerdict::RejectCycle;
    injected = true;
    record_injected(waiter_uid, obs::InjectedFault::AwaitRejection);
  }
  switch (verdict) {
    case AwaitVerdict::RejectOrphaned:
      // Nobody is obligated to fulfill the promise: blocking on it is a
      // certain deadlock, and no WFG cycle can witness the absence of a
      // fulfiller — fault directly.
      owp_rejections_.fetch_add(1, std::memory_order_relaxed);
      deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
      *why = owp_->explain_await(waiter_uid, p);
      return JoinDecision::FaultDeadlock;
    case AwaitVerdict::Allow: {
      std::vector<wfg::NodeId> cycle;
      if (timed_scan(waiter_uid, pnode, [&] {
            return wfg_.add_wait(waiter_uid, pnode, &cycle);
          }) == wfg::WaitVerdict::WouldDeadlock) {
        deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
        deadlocks_averted_approved_.fetch_add(1, std::memory_order_relaxed);
        *why = wfg_witness(PolicyChoice::CycleOnly, std::move(cycle));
        why->on_promise = true;
        return JoinDecision::FaultDeadlock;
      }
      owp_->on_await(waiter_uid, p);
      return JoinDecision::Proceed;
    }
    case AwaitVerdict::RejectCycle:
      break;
  }
  if (injected) {
    why->kind = WitnessKind::Injected;
    why->policy = PolicyChoice::None;
    why->on_promise = true;
  } else {
    *why = owp_->explain_await(waiter_uid, p);
  }
  owp_rejections_.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == FaultMode::Throw) {
    return JoinDecision::FaultPolicy;
  }
  std::vector<wfg::NodeId> cycle;
  if (timed_scan(waiter_uid, pnode, [&] {
        return wfg_.add_probation_wait(waiter_uid, pnode, &cycle);
      }) == wfg::WaitVerdict::WouldDeadlock) {
    deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
    *why = wfg_witness(PolicyChoice::None, std::move(cycle));
    why->on_promise = true;
    return JoinDecision::FaultDeadlock;
  }
  // A historical obligation path that is no longer live: proceed, but keep
  // the (now probationary) edge and still learn the obligation.
  owp_false_positives_.fetch_add(1, std::memory_order_relaxed);
  owp_->on_await(waiter_uid, p);
  return JoinDecision::ProceedFalsePositive;
}

void JoinGate::leave_await(std::uint64_t waiter_uid) {
  if (owp_ == nullptr) return;
  wfg_.remove_wait(waiter_uid);
}

FulfillDecision JoinGate::enter_fulfill(PromiseNode* p, std::uint64_t by_uid) {
  const auto ruled = [&](FulfillDecision d) {
    if (rec_ != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::FulfillVerdict;
      e.actor = by_uid;
      e.target = p != nullptr ? p->uid() : 0;
      e.policy = static_cast<std::uint8_t>(kind_);
      e.detail = static_cast<std::uint8_t>(d);
      e.flags = obs::kFlagPromise;
      rec_->emit(e);
    }
    return d;
  };
  if (owp_ == nullptr) return ruled(FulfillDecision::Proceed);
  switch (owp_->check_fulfill(p, by_uid)) {
    case FulfillResult::Settled:
      return ruled(FulfillDecision::AlreadySettled);
    case FulfillResult::NotOwner:
      // The value still gets published either way (the fulfilment itself is
      // benign); the *violation* is what the policy reports.
      ownership_violations_.fetch_add(1, std::memory_order_relaxed);
      return ruled(mode_ == FaultMode::Throw ? FulfillDecision::FaultNotOwner
                                             : FulfillDecision::Proceed);
    case FulfillResult::Ok:
      break;
  }
  return ruled(FulfillDecision::Proceed);
}

void JoinGate::fulfill_committed(PromiseNode* p) {
  if (owp_ == nullptr || p == nullptr) return;
  owp_->commit_fulfill(p);
  wfg_.remove_owner_edge(wfg::promise_node_id(p->uid()));
}

std::vector<std::uint64_t> JoinGate::task_exited(std::uint64_t uid) {
  if (owp_ == nullptr) return {};
  std::vector<std::uint64_t> orphans = owp_->on_task_exit(uid);
  for (const std::uint64_t promise_uid : orphans) {
    wfg_.remove_owner_edge(wfg::promise_node_id(promise_uid));
  }
  promises_orphaned_.fetch_add(orphans.size(), std::memory_order_relaxed);
  return orphans;
}

void JoinGate::promise_released(PromiseNode* p) {
  if (owp_ == nullptr || p == nullptr) return;
  owp_->release(p);
}

void JoinGate::note_cycle_recovered(Witness w) {
  cycles_recovered_.fetch_add(1, std::memory_order_relaxed);
  record_witness(w, w.waiter, w.target, JoinDecision::FaultDeadlock,
                 w.on_promise);
}

GateStats JoinGate::stats() const {
  GateStats s;
  s.joins_checked = joins_checked_.load(std::memory_order_relaxed);
  s.policy_rejections = policy_rejections_.load(std::memory_order_relaxed);
  s.false_positives = false_positives_.load(std::memory_order_relaxed);
  s.deadlocks_averted = deadlocks_averted_.load(std::memory_order_relaxed);
  s.deadlocks_averted_approved =
      deadlocks_averted_approved_.load(std::memory_order_relaxed);
  s.cycle_checks = wfg_.cycle_checks();
  s.awaits_checked = awaits_checked_.load(std::memory_order_relaxed);
  s.owp_rejections = owp_rejections_.load(std::memory_order_relaxed);
  s.owp_false_positives =
      owp_false_positives_.load(std::memory_order_relaxed);
  s.ownership_violations =
      ownership_violations_.load(std::memory_order_relaxed);
  s.promises_orphaned = promises_orphaned_.load(std::memory_order_relaxed);
  s.requests_checked = requests_checked_.load(std::memory_order_relaxed);
  s.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  s.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  s.cycles_recovered = cycles_recovered_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tj::core
