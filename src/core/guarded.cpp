#include "core/guarded.hpp"

namespace tj::core {

JoinGate::JoinGate(PolicyChoice kind, Verifier* verifier, FaultMode mode)
    : kind_(kind), verifier_(verifier), mode_(mode) {}

JoinDecision JoinGate::enter_join(wfg::NodeId waiter, wfg::NodeId target,
                                  PolicyNode* waiter_state,
                                  const PolicyNode* target_state,
                                  bool target_done) {
  joins_checked_.fetch_add(1, std::memory_order_relaxed);

  if (kind_ == PolicyChoice::None) {
    // Baseline: unchecked joins, no graph maintenance at all.
    return JoinDecision::Proceed;
  }

  if (kind_ == PolicyChoice::CycleOnly) {
    // The Armus-alone baseline: every blocking join pays a cycle check.
    if (target_done) return JoinDecision::Proceed;
    if (wfg_.add_checked_wait(waiter, target) ==
        wfg::WaitVerdict::WouldDeadlock) {
      deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
      return JoinDecision::FaultDeadlock;
    }
    return JoinDecision::Proceed;
  }

  if (verifier_->permits_join(waiter_state, target_state)) {
    if (target_done) return JoinDecision::Proceed;
    // Approved blocking joins still register their edge: a probation edge
    // elsewhere may need it to witness (or rule out) a cycle.
    if (wfg_.add_wait(waiter, target) == wfg::WaitVerdict::WouldDeadlock) {
      deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
      return JoinDecision::FaultDeadlock;
    }
    return JoinDecision::Proceed;
  }

  policy_rejections_.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == FaultMode::Throw) {
    return JoinDecision::FaultPolicy;
  }
  if (target_done) {
    // A join on a terminated task cannot block, hence cannot deadlock:
    // trivially a false positive of the policy.
    false_positives_.fetch_add(1, std::memory_order_relaxed);
    return JoinDecision::ProceedFalsePositive;
  }
  if (wfg_.add_probation_wait(waiter, target) ==
      wfg::WaitVerdict::WouldDeadlock) {
    deadlocks_averted_.fetch_add(1, std::memory_order_relaxed);
    return JoinDecision::FaultDeadlock;
  }
  false_positives_.fetch_add(1, std::memory_order_relaxed);
  return JoinDecision::ProceedFalsePositive;
}

void JoinGate::leave_join(wfg::NodeId waiter, PolicyNode* waiter_state,
                          const PolicyNode* target_state, bool completed) {
  if (kind_ != PolicyChoice::None) {
    wfg_.remove_wait(waiter);  // no-op if the join never registered an edge
  }
  if (completed && verifier_ != nullptr) {
    verifier_->on_join_complete(waiter_state, target_state);
  }
}

GateStats JoinGate::stats() const {
  GateStats s;
  s.joins_checked = joins_checked_.load(std::memory_order_relaxed);
  s.policy_rejections = policy_rejections_.load(std::memory_order_relaxed);
  s.false_positives = false_positives_.load(std::memory_order_relaxed);
  s.deadlocks_averted = deadlocks_averted_.load(std::memory_order_relaxed);
  s.cycle_checks = wfg_.cycle_checks();
  return s;
}

}  // namespace tj::core
