#pragma once
// Online Ownership Policy verifier for promises, after "An Ownership Policy
// and Deadlock Detector for Promises" (Voss & Sarkar, arXiv:2101.01312).
//
// Invariant maintained: every unfulfilled promise has exactly one *owning*
// task — the task responsible for fulfilling it. Ownership starts at the
// maker and moves only by explicit transfer (e.g. at a fork handoff). The
// policy check is the online twin of trace/owp_judgment.hpp: a task may not
// block on a promise whose fulfilment obligation already (transitively)
// reaches it through the accumulated obligation-history graph H, where
//   join(a,b) contributes a → b, and
//   await(a,p) on an unfulfilled p contributes a → owner(p) (owner frozen at
//   await time).
// Like TJ, the policy is conservative: a historical path may no longer be
// live, so rejections are routed through the guarded WFG fallback (see
// core/guarded.hpp) which rules precisely. Races between the policy check
// and concurrent awaits are likewise backstopped by the WFG, which cycle-
// checks every insertion while promise owner edges are live.
//
// The verifier additionally detects *orphaned* promises: when a task
// terminates still owning unfulfilled promises, no task is responsible for
// them any more, so any (present or future) await on them is a guaranteed
// deadlock — reported as such, matching the follow-up paper's detector.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/policy_alloc.hpp"
#include "core/policy_ids.hpp"
#include "core/witness.hpp"

namespace tj::core {

/// Per-promise policy state. Opaque outside the verifier; guarded by the
/// verifier's mutex.
class PromiseNode {
 public:
  std::uint64_t uid() const { return uid_; }

 private:
  friend class OwpVerifier;

  enum class State : std::uint8_t { Unfulfilled, Fulfilled, Orphaned };

  explicit PromiseNode(std::uint64_t uid, std::uint64_t owner)
      : uid_(uid), owner_(owner) {}

  std::uint64_t uid_;
  std::uint64_t owner_;  // meaningful while state_ == Unfulfilled
  State state_ = State::Unfulfilled;
};

/// Policy verdict on an await attempt.
enum class AwaitVerdict : std::uint8_t {
  Allow,           ///< no obligation path from the owner back to the waiter
  RejectCycle,     ///< conservative rejection — refine via the WFG fallback
  RejectOrphaned,  ///< owner terminated without fulfilling: certain deadlock
};

/// Outcome of a transfer attempt.
enum class TransferResult : std::uint8_t {
  Ok,
  NotOwner,    ///< the calling task does not own the promise
  Fulfilled,   ///< nothing to transfer: the promise is already fulfilled
  Orphaned,    ///< the promise was orphaned by a dead owner
  TargetDead,  ///< the receiving task already terminated
};

/// Outcome of a fulfill attempt's policy check.
enum class FulfillResult : std::uint8_t {
  Ok,
  NotOwner,  ///< fulfilled by a non-owner: an ownership violation
  Settled,   ///< already fulfilled or orphaned (caller raises a usage error)
};

class OwpVerifier {
 public:
  OwpVerifier() = default;
  OwpVerifier(const OwpVerifier&) = delete;
  OwpVerifier& operator=(const OwpVerifier&) = delete;
  ~OwpVerifier();

  /// True once any promise has been made: futures-only programs pay exactly
  /// one relaxed load per join and nothing else.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Registers a fresh promise owned by `owner_uid`. Returns its node.
  PromiseNode* on_make(std::uint64_t owner_uid, std::uint64_t promise_uid);

  /// Phase 1 of a transfer: validates ownership and target liveness under the
  /// verifier lock. Does not move ownership (the caller must still clear the
  /// WFG retarget check) — commit_transfer() finishes the move.
  TransferResult check_transfer(const PromiseNode* p, std::uint64_t from_uid,
                                std::uint64_t to_uid) const;
  /// Returns true if the receiver died between check and commit, in which
  /// case the promise was orphaned instead (the caller must propagate that
  /// to the promise's shared state).
  bool commit_transfer(PromiseNode* p, std::uint64_t to_uid);

  /// Phase 1 of a fulfill: the ownership-policy view. Never blocks state
  /// transitions — commit_fulfill() marks the promise settled.
  FulfillResult check_fulfill(const PromiseNode* p,
                              std::uint64_t by_uid) const;
  void commit_fulfill(PromiseNode* p);

  /// The OWP check for await(waiter, p).
  AwaitVerdict permits_await(std::uint64_t waiter_uid,
                             const PromiseNode* p) const;

  /// Records the obligation edge waiter → owner(p) after an await was allowed
  /// to proceed (or cleared by the fallback). No-op if p settled meanwhile.
  void on_await(std::uint64_t waiter_uid, const PromiseNode* p);

  /// The OWP view of join(waiter, target): does target's obligation history
  /// already reach the waiter? Consulted by the gate *in addition to* the
  /// configured future policy once promises exist, since TJ/KJ soundness
  /// does not cover ownership obligations.
  bool permits_join(std::uint64_t waiter_uid, std::uint64_t target_uid) const;

  /// Records the obligation edge waiter → target for a completed join.
  void on_join(std::uint64_t waiter_uid, std::uint64_t target_uid);

  /// Rejection provenance: the obligation chain target ⇝ waiter in H that
  /// made permits_join answer false (Witness::chain, task uids). Cold path
  /// only; the chain is found by BFS under the verifier lock.
  Witness explain_join(std::uint64_t waiter_uid,
                       std::uint64_t target_uid) const;

  /// Rejection provenance for an await: OwpOrphan when the promise is
  /// orphaned, else the chain owner(p) ⇝ waiter that made permits_await
  /// reject. Witness::target is the promise uid (on_promise set).
  Witness explain_await(std::uint64_t waiter_uid, const PromiseNode* p) const;

  /// Marks `uid` dead and orphans every unfulfilled promise it still owns.
  /// Returns the orphaned promises' uids (ownership violations: the owner
  /// terminated without fulfilling or transferring).
  std::vector<std::uint64_t> on_task_exit(std::uint64_t uid);

  /// Releases a promise's policy state when its last handle dies.
  void release(PromiseNode* p);

  std::size_t bytes_in_use() const { return alloc_.live_bytes(); }
  std::size_t peak_bytes() const { return alloc_.peak_bytes(); }

  /// Governance hooks mirroring Verifier::state_bytes()/state_nodes().
  std::size_t state_bytes() const { return alloc_.live_bytes(); }
  std::size_t state_nodes() const { return alloc_.live_nodes(); }

  std::string_view name() const { return to_string(PromisePolicy::OWP); }

 private:
  // Pre: mu_ held. True iff `from` reaches `to` in H (reflexively).
  bool reaches_locked(std::uint64_t from, std::uint64_t to) const;
  // Pre: mu_ held.
  void add_edge_locked(std::uint64_t from, std::uint64_t to);

  static constexpr std::size_t node_bytes() { return sizeof(PromiseNode); }
  static constexpr std::size_t edge_bytes() { return sizeof(std::uint64_t); }

  std::atomic<bool> active_{false};

  mutable std::mutex mu_;
  // H: obligation-history edges over task uids.        guarded by mu_
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> edges_;
  // Unfulfilled promises each live task still owns.    guarded by mu_
  std::unordered_map<std::uint64_t, std::unordered_set<PromiseNode*>> owned_;
  // Tasks known to have terminated.                    guarded by mu_
  std::unordered_set<std::uint64_t> dead_tasks_;

  PolicyAllocator alloc_;
};

/// Factory mirroring make_verifier(): nullptr for PromisePolicy::Unverified.
std::unique_ptr<OwpVerifier> make_ownership_verifier(PromisePolicy p);

}  // namespace tj::core
