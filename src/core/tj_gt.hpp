#pragma once
// TJ-GT (Algorithm 2): the shared-global-tree verifier. Each task's state is
// one tree vertex {parent, ix, depth, children}. Fork is O(1); a join check
// walks two root-ward paths, O(h). All fields read by Less are immutable
// after add_child returns, so no synchronization is needed (Sec. 5.2.1).

#include <atomic>

#include "core/verifier.hpp"

namespace tj::core {

class TjGtVerifier final : public Verifier {
 public:
  TjGtVerifier() = default;
  ~TjGtVerifier() override;

  PolicyNode* add_child(PolicyNode* parent) override;
  bool permits_join(const PolicyNode* joiner,
                    const PolicyNode* joinee) override;
  Witness explain(const PolicyNode* joiner, const PolicyNode* joinee) override;
  PolicyChoice kind() const override { return PolicyChoice::TJ_GT; }

  struct Node final : PolicyNode {
    const Node* parent = nullptr;  // immutable after construction
    std::uint32_t ix = 0;          // index among parent's children; immutable
    std::uint32_t depth = 0;       // immutable
    std::uint32_t children = 0;    // mutated only by the owning task's forks
    Node* next_alloc = nullptr;    // intrusive arena chain (owner bookkeeping)
  };

  /// The <T decision: v1 <T v2 per Theorem 3.15. Exposed for direct testing
  /// and the Table-1 micro-benchmarks.
  static bool less(const Node* v1, const Node* v2);

 private:
  // Lock-free intrusive allocation chain; the verifier owns every node for
  // its whole lifetime (the paper's monotonically growing tree).
  std::atomic<Node*> alloc_head_{nullptr};
};

}  // namespace tj::core
