#pragma once
// The verifier interface of Section 5.1 (Algorithm 1). A verifier maintains a
// real or virtual fork tree T through AddChild and answers join-permission
// queries through Less-style checks. The runtime upholds the paper's
// contract:
//   (3) AddChild is never called concurrently with itself on the same parent
//       (only the task owning a node forks children under it);
//   (4) every node passed to permits_join was previously returned by
//       add_child.
// In exchange the verifiers promise:
//   (1) every add_child call returns a distinct node;
//   (2) add_child and permits_join may be called concurrently.
//
// The KJ verifiers additionally use on_join_complete (the KJ-learn rule);
// for TJ verifiers it is a no-op — the paper highlights exactly this
// simplification (Sec. 7.2: a join updates no permission state under TJ).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "core/policy_alloc.hpp"
#include "core/policy_ids.hpp"
#include "core/witness.hpp"

namespace tj::core {

/// Opaque per-task policy state. Concrete verifiers subclass this.
class PolicyNode {
 public:
  virtual ~PolicyNode() = default;

 protected:
  PolicyNode() = default;
  PolicyNode(const PolicyNode&) = delete;
  PolicyNode& operator=(const PolicyNode&) = delete;
};

class Verifier {
 public:
  virtual ~Verifier() = default;

  /// Creates per-task state for a new task forked by `parent`
  /// (nullptr → root task). Must return a distinct node per call.
  virtual PolicyNode* add_child(PolicyNode* parent) = 0;

  /// Whether the policy permits joiner to block on joinee.
  /// Thread-safe against concurrent add_child / permits_join.
  virtual bool permits_join(const PolicyNode* joiner,
                            const PolicyNode* joinee) = 0;

  /// Invoked after a join on `joinee` by `joiner` completed successfully.
  /// Only the joiner's owning thread calls this, and `joinee`'s task has
  /// terminated (its state is stable). Default: no-op (TJ needs no join rule).
  virtual void on_join_complete(PolicyNode* joiner, const PolicyNode* joinee) {
    (void)joiner;
    (void)joinee;
  }

  /// Invoked when the owning task record dies. Verifiers for which per-task
  /// state is task-local (TJ-SP, KJ-*) reclaim it here; tree-based verifiers
  /// keep nodes alive for the lifetime of the verifier (the paper's
  /// monotonically growing structure). After this call the node must not be
  /// passed to any other method.
  virtual void release(PolicyNode* node) { (void)node; }

  virtual PolicyChoice kind() const = 0;
  std::string_view name() const { return to_string(kind()); }

  /// Rejection provenance: explains why permits_join(joiner, joinee) answered
  /// false, as self-contained evidence (core/witness.hpp). Only meaningful
  /// right after a rejection, on the rejecting thread — called on the cold
  /// path only, never per join. The default carries no evidence beyond the
  /// policy id; every concrete verifier overrides it.
  virtual Witness explain(const PolicyNode* joiner, const PolicyNode* joinee) {
    (void)joiner;
    (void)joinee;
    Witness w;
    w.policy = kind();
    return w;
  }

  /// Exact live bytes of verifier state (policy memory-overhead metric).
  std::size_t bytes_in_use() const { return alloc_.live_bytes(); }
  std::size_t peak_bytes() const { return alloc_.peak_bytes(); }

  /// Resource-governance hooks: cheap (two relaxed loads) snapshots of the
  /// verifier's live footprint, polled by the ResourceGovernor to decide
  /// degradation. state_bytes() == bytes_in_use() for every current policy;
  /// it is a distinct virtual so composite verifiers (the degradation
  /// ladder) can aggregate across levels.
  virtual std::size_t state_bytes() const { return alloc_.live_bytes(); }
  virtual std::size_t state_nodes() const { return alloc_.live_nodes(); }

 protected:
  PolicyAllocator alloc_;
};

/// Factory for every verifier the evaluation exercises (PolicyChoice::None
/// and CycleOnly yield nullptr: no per-join policy check).
std::unique_ptr<Verifier> make_verifier(PolicyChoice p);

}  // namespace tj::core
