#pragma once
// Metrics registry: counters plus log-bucketed latency histograms for the
// quantities the paper's evaluation discusses per join — policy-check time,
// time spent blocked in an admitted join/await, and the cost of a WFG
// fallback cycle scan. All updates are relaxed atomics: safe from any
// thread, never a lock on the hot path.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace tj::obs {

/// Log2-bucketed histogram of nanosecond latencies. Bucket 0 holds exact
/// zeros; bucket i (1 ≤ i < kBuckets-1) holds values in [2^(i-1), 2^i);
/// the last bucket is the explicit overflow bucket for everything at or
/// above 2^(kBuckets-2) ns (≈ 4.6 minutes) — large values are counted, not
/// silently clamped away.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  static constexpr std::size_t bucket_index(std::uint64_t ns) {
    if (ns == 0) return 0;
    const std::size_t w = static_cast<std::size_t>(std::bit_width(ns));
    return w < kBuckets - 1 ? w : kBuckets - 1;
  }

  /// Lower bound (inclusive) of bucket i in ns.
  static constexpr std::uint64_t bucket_floor(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t ns) noexcept {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    update_min(ns);
    update_max(ns);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Total of all recorded values — the reconciliation anchor the critical-
  /// path profiler's on-path + off-path attribution must sum to.
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Count in the overflow (last) bucket.
  std::uint64_t overflow_count() const { return bucket_count(kBuckets - 1); }
  /// Min/max recorded value; 0 when empty.
  std::uint64_t min_ns() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  std::uint64_t max_ns() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// The smallest bucket floor F such that at least `q` (0..1) of recorded
  /// values are < 2F — a log2-resolution upper percentile estimate.
  std::uint64_t approx_quantile_ns(double q) const;

  /// One consistent-enough snapshot of the headline statistics (each field
  /// is a relaxed read; a concurrent record() may skew them by one sample).
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t p50_ns = 0;  ///< log2-resolution estimates (bucket floors)
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;  ///< the service-level tail the SLOs gate on
  };
  Summary summary() const;

  /// "count=… min=… p50≈… p99≈… max=…" plus the nonzero buckets.
  std::string to_string() const;

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

/// The recorder's fixed metric set. Histograms are updated by the gate and
/// runtime only while recording is enabled; counters mirror incident events
/// so they can be read without draining the event stream.
struct Metrics {
  LatencyHistogram policy_check_ns;   ///< gate policy evaluation (join+await)
  LatencyHistogram blocked_join_ns;   ///< wall time blocked in admitted joins
  LatencyHistogram blocked_await_ns;  ///< wall time blocked in admitted awaits
  LatencyHistogram cycle_scan_ns;     ///< WFG fallback scan duration
  /// Async-mode recovery latency: cycle formation (victim's wait edge
  /// registered) → victim's wait broken. The bounded-latency promise the
  /// recovery SLO (recovery_p99_ms) gates on. Empty outside Async mode.
  LatencyHistogram recovery_ns;

  std::atomic<std::uint64_t> faults_injected{0};
  std::atomic<std::uint64_t> compensation_spawns{0};
  std::atomic<std::uint64_t> stall_reports{0};
  // Resource-governance counters (zero unless the governor is enabled).
  std::atomic<std::uint64_t> policy_downgrades{0};  ///< ladder steps taken
  std::atomic<std::uint64_t> spawn_inlines{0};      ///< backpressure inlines
  std::atomic<std::uint64_t> join_timeouts{0};      ///< join_for expirations
  std::atomic<std::uint64_t> kj_compactions{0};     ///< KJ-VC clock compactions
  // Per-tenant admission control (zero unless GovernorConfig::tenants is
  // set); mirrors the gate's requests_admitted/requests_shed stats.
  std::atomic<std::uint64_t> requests_admitted{0};  ///< front-door admits
  std::atomic<std::uint64_t> requests_shed{0};      ///< front-door sheds
  // Async-detection counters (zero outside PolicyChoice::Async).
  std::atomic<std::uint64_t> cycles_recovered{0};   ///< cycles broken
  std::atomic<std::uint64_t> detector_failovers{0}; ///< optimistic→sync trips
  std::atomic<std::uint64_t> detector_respawns{0};  ///< detector-thread revivals

  /// Visits (name, histogram) for each histogram in the registry.
  template <typename F>
  void for_each_histogram(F&& f) const {
    f("policy_check_ns", policy_check_ns);
    f("blocked_join_ns", blocked_join_ns);
    f("blocked_await_ns", blocked_await_ns);
    f("cycle_scan_ns", cycle_scan_ns);
    f("recovery_ns", recovery_ns);
  }

  std::string to_string() const;
};

}  // namespace tj::obs
