#include "obs/recorder.hpp"

#include <algorithm>
#include <thread>

namespace tj::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

FlightRecorder::FlightRecorder(ObsConfig cfg)
    : cfg_(cfg),
      id_(next_recorder_id()),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::ThreadLog& FlightRecorder::local_log() {
  struct Cache {
    std::uint64_t recorder_id = 0;
    ThreadLog* log = nullptr;
  };
  thread_local Cache cache;
  if (cache.recorder_id == id_) return *cache.log;

  std::scoped_lock lk(reg_mu_);
  ThreadLog*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    logs_.push_back(std::make_unique<ThreadLog>(cfg_.buffer_capacity));
    slot = logs_.back().get();
  }
  cache = {id_, slot};
  return *slot;
}

std::uint64_t FlightRecorder::events_recorded() const {
  std::scoped_lock lk(reg_mu_);
  std::uint64_t total = 0;
  for (const auto& log : logs_) {
    total += log->pushed.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t FlightRecorder::events_dropped() const {
  std::scoped_lock lk(reg_mu_);
  std::uint64_t total = 0;
  for (const auto& log : logs_) {
    total += log->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t FlightRecorder::thread_count() const {
  std::scoped_lock lk(reg_mu_);
  return logs_.size();
}

std::vector<Event> FlightRecorder::drain() {
  std::scoped_lock lk(consume_mu_, reg_mu_);
  std::vector<Event> out;
  for (auto& log : logs_) {
    Event e;
    while (log->ring.try_pop(e)) out.push_back(e);
  }
  consumed_.fetch_add(out.size(), std::memory_order_relaxed);
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::size_t FlightRecorder::consume(std::vector<Event>& out) {
  std::vector<ThreadLog*> logs;
  {
    std::scoped_lock lk(reg_mu_);
    logs.reserve(logs_.size());
    for (const auto& log : logs_) logs.push_back(log.get());
  }
  std::scoped_lock lk(consume_mu_);
  const std::size_t before = out.size();
  for (ThreadLog* log : logs) {
    Event e;
    while (log->ring.try_pop(e)) out.push_back(e);
  }
  const std::size_t popped = out.size() - before;
  consumed_.fetch_add(popped, std::memory_order_relaxed);
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return popped;
}

std::vector<Event> FlightRecorder::recent(std::uint64_t uid,
                                          std::size_t max_events) const {
  std::vector<Event> matched;
  {
    std::scoped_lock lk(consume_mu_, reg_mu_);
    for (const auto& log : logs_) {
      log->ring.for_each_live([&](const Event& e) {
        if (e.actor == uid || (e.target == uid && (e.flags & kFlagPromise) == 0)) {
          matched.push_back(e);
        }
      });
    }
  }
  std::sort(matched.begin(), matched.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  if (matched.size() > max_events) {
    matched.erase(matched.begin(),
                  matched.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return matched;
}

}  // namespace tj::obs
