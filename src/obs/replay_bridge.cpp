#include "obs/replay_bridge.hpp"

#include <sstream>
#include <unordered_map>

namespace tj::obs {

namespace {

/// Dense-id allocator: runtime uid → first-mention-order TaskId/PromiseId.
class IdMap {
 public:
  /// The dense id for `uid`, allocating on first sight.
  std::uint32_t intern(std::uint64_t uid) {
    auto [it, inserted] = map_.try_emplace(uid, next_);
    if (inserted) ++next_;
    return it->second;
  }

  /// The dense id for `uid`, or nullopt-like sentinel if never seen.
  bool lookup(std::uint64_t uid, std::uint32_t& out) const {
    auto it = map_.find(uid);
    if (it == map_.end()) return false;
    out = it->second;
    return true;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
  std::uint32_t next_ = 0;
};

}  // namespace

RecordedRun extract_run(const std::vector<Event>& events) {
  RecordedRun run;
  IdMap tasks;
  IdMap promises;

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::TaskInit:
        run.trace.push_init(tasks.intern(e.actor));
        break;
      case EventKind::TaskSpawn: {
        std::uint32_t a;
        if (!tasks.lookup(e.actor, a)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_fork(a, tasks.intern(e.target));
        break;
      }
      case EventKind::JoinComplete: {
        std::uint32_t a, b;
        if (!tasks.lookup(e.actor, a) || !tasks.lookup(e.target, b)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_join(a, b);
        break;
      }
      case EventKind::PromiseMake: {
        std::uint32_t a;
        if (!tasks.lookup(e.actor, a)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_make(a, promises.intern(e.target));
        break;
      }
      case EventKind::PromiseFulfill: {
        std::uint32_t a, p;
        if (!tasks.lookup(e.actor, a) || !promises.lookup(e.target, p)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_fulfill(a, p);
        break;
      }
      case EventKind::PromiseTransfer: {
        std::uint32_t a, b, p;
        if (!tasks.lookup(e.actor, a) || !tasks.lookup(e.target, b) ||
            !promises.lookup(e.payload, p)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_transfer(a, b, p);
        break;
      }
      case EventKind::AwaitComplete: {
        std::uint32_t a, p;
        if (!tasks.lookup(e.actor, a) || !promises.lookup(e.target, p)) {
          ++run.skipped_events;
          break;
        }
        run.trace.push_await(a, p);
        break;
      }
      case EventKind::JoinVerdict: {
        RecordedRun::Verdict v;
        std::uint32_t a, b;
        if (!tasks.lookup(e.actor, a) || !tasks.lookup(e.target, b)) {
          ++run.skipped_events;
          break;
        }
        v.is_await = false;
        v.waiter = a;
        v.target = b;
        v.decision = e.detail;
        v.policy = e.policy;
        run.verdicts.push_back(v);
        break;
      }
      case EventKind::AwaitVerdict: {
        RecordedRun::Verdict v;
        std::uint32_t a, p;
        if (!tasks.lookup(e.actor, a) || !promises.lookup(e.target, p)) {
          ++run.skipped_events;
          break;
        }
        v.is_await = true;
        v.waiter = a;
        v.promise = p;
        v.decision = e.detail;
        v.policy = e.policy;
        run.verdicts.push_back(v);
        break;
      }
      default:
        break;  // non-structural: scheduler, metrics, faults, barriers
    }
  }
  return run;
}

std::string to_trace_text(const trace::Trace& t, const std::string& header) {
  std::ostringstream os;
  if (!header.empty()) {
    std::istringstream lines(header);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << "\n";
  }
  for (const trace::Action& a : t.actions()) {
    os << trace::to_string(a) << "\n";
  }
  return os.str();
}

}  // namespace tj::obs
