#pragma once
// Runtime→formalism bridge: turns a drained flight-recorder stream back
// into an offline trace (Definition 3.1 actions, the format accepted by
// src/trace/parse), so a live run can be replayed through the offline
// TJ/KJ/OWP judgments and cross-checked against the verdicts the gate
// actually issued. Runtime uids are remapped to the dense TaskId/PromiseId
// spaces the formalism uses, in first-mention order, so the root becomes
// task 0 exactly as the paper's notation assumes.
//
// This header deliberately depends only on src/trace (not src/core): the
// gate's decision enums travel through Event::detail as raw bytes and are
// kept raw here, so tj_core can link tj_obs without a cycle.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "trace/trace.hpp"

namespace tj::obs {

/// A recorded run, re-expressed in the offline formalism.
struct RecordedRun {
  trace::Trace trace;

  /// One entry per gate ruling (JoinVerdict/AwaitVerdict), in event order,
  /// with ids remapped into the trace's dense spaces.
  struct Verdict {
    bool is_await = false;        ///< await(a,p) ruling vs join(a,b) ruling
    trace::TaskId waiter = trace::kNoTask;
    trace::TaskId target = trace::kNoTask;      ///< join target (tasks)
    trace::PromiseId promise = trace::kNoPromise;  ///< await target
    std::uint8_t decision = 0;    ///< raw core::JoinDecision value
    std::uint8_t policy = 0;      ///< raw core::PolicyChoice of the ruling
  };
  std::vector<Verdict> verdicts;

  /// Structural events that could not be translated because an id they
  /// reference was never introduced (possible only if events were dropped).
  std::uint64_t skipped_events = 0;
};

/// Extracts the offline trace and verdict list from a drained, seq-sorted
/// event stream. Non-structural events (scheduler, metrics, faults) are
/// ignored; structural events with unresolvable ids are counted in
/// `skipped_events` instead of corrupting the trace.
RecordedRun extract_run(const std::vector<Event>& events);

/// Serializes a trace one action per line — the exact syntax parse_trace
/// accepts — with an optional '#' comment header.
std::string to_trace_text(const trace::Trace& t, const std::string& header = "");

}  // namespace tj::obs
