// TelemetrySink implementation. Compiled into tj_runtime (not tj_obs): it
// consumes RuntimeSnapshot, and the obs library sits below the runtime.

#include "obs/telemetry.hpp"

#include <cstdio>
#include <sstream>

#include "core/policy_ids.hpp"
#include "runtime/introspect.hpp"
#include "runtime/runtime.hpp"

namespace tj::obs {

namespace {

/// Minimal JSON string escape; telemetry names are ASCII but tenant names
/// come from user config.
std::string jesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_summary(std::ostringstream& os, const LatencyHistogram& h) {
  const LatencyHistogram::Summary s = h.summary();
  os << "{\"count\":" << s.count << ",\"sum_ns\":" << s.sum_ns
     << ",\"min_ns\":" << s.min_ns << ",\"max_ns\":" << s.max_ns
     << ",\"p50_ns\":" << s.p50_ns << ",\"p90_ns\":" << s.p90_ns
     << ",\"p99_ns\":" << s.p99_ns << ",\"p999_ns\":" << s.p999_ns << "}";
}

}  // namespace

TelemetrySink::TelemetrySink(const runtime::Runtime& rt, TelemetryConfig cfg)
    : rt_(rt), cfg_(std::move(cfg)) {}

TelemetrySink::~TelemetrySink() { stop(); }

void TelemetrySink::register_histogram(std::string name,
                                       const LatencyHistogram* h) {
  extra_.push_back({std::move(name), h});
}

void TelemetrySink::start() {
  std::scoped_lock lock(mu_);
  if (started_) return;
  // The recorder IS the obs on/off switch: no recorder, no telemetry —
  // the same single null-pointer branch contract every emit site has.
  if (rt_.recorder() == nullptr) return;
  if (cfg_.jsonl_path.empty() && cfg_.prometheus_path.empty()) return;
  if (!cfg_.jsonl_path.empty()) {
    jsonl_.open(cfg_.jsonl_path, std::ios::app);
    if (!jsonl_) return;
  }
  epoch_ = std::chrono::steady_clock::now();
  // Delta slots: the fixed metrics registry first, then registered extras.
  std::size_t fixed = 0;
  rt_.recorder()->metrics().for_each_histogram(
      [&fixed](const char*, const LatencyHistogram&) { ++fixed; });
  hist_prev_.assign(fixed + extra_.size(), DeltaState{});
  started_ = true;
  active_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { sampler_loop(); });
}

void TelemetrySink::stop() {
  {
    std::scoped_lock lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  {
    std::scoped_lock lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final synchronous sample: the workload has quiesced by the time a
  // service stops its sink, so this line carries the end-of-run truth the
  // reconciliation check compares against gate_stats().
  std::scoped_lock lock(mu_);
  sample_locked();
  if (jsonl_.is_open()) {
    jsonl_.flush();
    jsonl_.close();
  }
}

void TelemetrySink::sample_now() {
  if (!active()) return;
  std::scoped_lock lock(mu_);
  sample_locked();
}

void TelemetrySink::sampler_loop() {
  const auto cadence = std::chrono::milliseconds(
      cfg_.cadence_ms == 0 ? 1 : cfg_.cadence_ms);
  std::unique_lock stop_lock(stop_mu_);
  while (!stop_cv_.wait_for(stop_lock, cadence,
                            [this] { return stop_requested_; })) {
    stop_lock.unlock();
    {
      std::scoped_lock lock(mu_);
      sample_locked();
    }
    stop_lock.lock();
  }
}

void TelemetrySink::sample_locked() {
  const runtime::RuntimeSnapshot s = runtime::snapshot(rt_);
  const Metrics& m = rt_.recorder()->metrics();
  const std::uint64_t t_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const std::uint64_t seq = samples_.fetch_add(1, std::memory_order_relaxed);

  std::ostringstream os;
  os << "{\"t_ms\":" << t_ms << ",\"seq\":" << seq;
  if (!cfg_.scheduler_label.empty()) {
    os << ",\"scheduler\":\"" << jesc(cfg_.scheduler_label) << "\"";
  }
  os << ",\"configured_policy\":\"" << core::to_string(s.configured)
     << "\",\"active_policy\":\"" << core::to_string(s.active)
     << "\",\"ladder_level\":" << s.ladder_level
     << ",\"ladder_levels\":" << s.ladder_levels
     << ",\"tasks_created\":" << s.tasks_created
     << ",\"promises_made\":" << s.promises_made
     << ",\"live_tasks\":" << s.live_tasks
     << ",\"watchdog_stalls\":" << s.watchdog_stalls
     << ",\"watchdog_cycles\":" << s.watchdog_cycles;

  os << ",\"gate\":{\"joins_checked\":" << s.gate.joins_checked
     << ",\"policy_rejections\":" << s.gate.policy_rejections
     << ",\"false_positives\":" << s.gate.false_positives
     << ",\"deadlocks_averted\":" << s.gate.deadlocks_averted
     << ",\"cycle_checks\":" << s.gate.cycle_checks
     << ",\"awaits_checked\":" << s.gate.awaits_checked
     << ",\"owp_rejections\":" << s.gate.owp_rejections
     << ",\"ownership_violations\":" << s.gate.ownership_violations
     << ",\"promises_orphaned\":" << s.gate.promises_orphaned
     << ",\"requests_checked\":" << s.gate.requests_checked
     << ",\"requests_admitted\":" << s.gate.requests_admitted
     << ",\"requests_shed\":" << s.gate.requests_shed
     << ",\"cycles_recovered\":" << s.gate.cycles_recovered << "}";

  if (s.recovery_attached) {
    os << ",\"detector\":{\"running\":"
       << (s.recovery.detector.running ? "true" : "false")
       << ",\"failed_over\":"
       << (s.recovery.detector.failed_over ? "true" : "false")
       << ",\"lag_events\":" << s.recovery.detector.lag_events
       << ",\"events_lost\":" << s.recovery.detector.events_lost
       << ",\"events_applied\":" << s.recovery.detector.events_applied
       << ",\"scans\":" << s.recovery.detector.authoritative_scans
       << ",\"cycles_confirmed\":" << s.recovery.detector.cycles_confirmed
       << ",\"respawns\":" << s.recovery.detector.respawns
       << ",\"cycles_recovered\":" << s.recovery.cycles_recovered
       << ",\"breaks_posted\":" << s.recovery.breaks_posted
       << ",\"waits_registered\":" << s.recovery.waits_registered << "}";
  }

  os << ",\"counters\":{\"faults_injected\":"
     << m.faults_injected.load(std::memory_order_relaxed)
     << ",\"compensation_spawns\":"
     << m.compensation_spawns.load(std::memory_order_relaxed)
     << ",\"stall_reports\":"
     << m.stall_reports.load(std::memory_order_relaxed)
     << ",\"policy_downgrades\":"
     << m.policy_downgrades.load(std::memory_order_relaxed)
     << ",\"spawn_inlines\":"
     << m.spawn_inlines.load(std::memory_order_relaxed)
     << ",\"join_timeouts\":"
     << m.join_timeouts.load(std::memory_order_relaxed)
     << ",\"kj_compactions\":"
     << m.kj_compactions.load(std::memory_order_relaxed)
     << ",\"requests_admitted\":"
     << m.requests_admitted.load(std::memory_order_relaxed)
     << ",\"requests_shed\":"
     << m.requests_shed.load(std::memory_order_relaxed) << "}";

  os << ",\"obs\":{\"events\":" << s.obs_events
     << ",\"dropped\":" << s.obs_dropped << "}";

  // Contention observatory: cumulative per-site counters + wait/hold
  // summaries. The registry is process-global, so in multi-runtime
  // processes (loadgen runs one runtime per mode) sites accumulate across
  // runs — readers diff or read the final sample, whose per-site
  // invariant acquisitions == uncontended + contended holds exactly.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
  os << ",\"contention\":{\"enabled\":"
     << (s.contention_enabled ? "true" : "false") << ",\"sites\":[";
  for (std::size_t i = 0; i < s.lock_sites.size(); ++i) {
    const SiteSnapshot& site = s.lock_sites[i];
    lock_acquisitions += site.acquisitions;
    lock_contended += site.contended;
    if (i != 0) os << ",";
    os << "{\"site\":\"" << jesc(site.name)
       << "\",\"uncontended\":" << site.uncontended
       << ",\"contended\":" << site.contended
       << ",\"acquisitions\":" << site.acquisitions << ",\"wait\":{\"count\":"
       << site.wait.count << ",\"sum_ns\":" << site.wait.sum_ns
       << ",\"p50_ns\":" << site.wait.p50_ns << ",\"p99_ns\":"
       << site.wait.p99_ns << ",\"max_ns\":" << site.wait.max_ns
       << "},\"hold\":{\"count\":" << site.hold.count << ",\"sum_ns\":"
       << site.hold.sum_ns << ",\"p99_ns\":" << site.hold.p99_ns
       << ",\"max_ns\":" << site.hold.max_ns << "}}";
  }
  os << "]}";

  // Worker-state timelines: census now + cumulative ns per state.
  const WorkerStateBoard::Totals& w = s.workers;
  os << ",\"workers\":{\"count\":" << w.workers
     << ",\"transitions\":" << w.transitions
     << ",\"effective_parallelism\":" << w.effective_parallelism();
  for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
    const char* name = to_string(static_cast<WorkerState>(i));
    os << ",\"" << name << "_now\":" << w.current[i] << ",\"" << name
       << "_ns\":" << w.state_ns[i];
  }
  os << "}";

  os << ",\"governor\":{\"attached\":"
     << (s.governor_attached ? "true" : "false")
     << ",\"pressure\":" << (s.governor_pressure ? "true" : "false")
     << ",\"verifier_bytes\":" << s.governor.verifier_bytes
     << ",\"wfg_edges\":" << s.governor.wfg_edges << "}";

  os << ",\"tenants\":[";
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const auto& t = s.tenants[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << jesc(t.name) << "\",\"in_flight\":" << t.in_flight
       << ",\"admitted\":" << t.admitted << ",\"shed\":" << t.shed
       << ",\"released\":" << t.released
       << ",\"in_cooldown\":" << (t.in_cooldown ? "true" : "false") << "}";
  }
  os << "]";

  // Cumulative summaries plus per-tick deltas for every histogram, fixed
  // registry first, then service-registered extras — one flat namespace.
  os << ",\"hist\":{";
  std::size_t slot = 0;
  bool first_h = true;
  std::ostringstream deltas;
  const auto one = [&](const char* name, const LatencyHistogram& h) {
    if (!first_h) os << ",";
    first_h = false;
    os << "\"" << name << "\":";
    write_summary(os, h);
    DeltaState& prev = hist_prev_[slot];
    const std::uint64_t c = h.count();
    const std::uint64_t sum = h.sum_ns();
    if (slot != 0) deltas << ",";
    deltas << "\"" << name << "\":{\"count\":" << (c - prev.count)
           << ",\"sum_ns\":" << (sum - prev.sum_ns) << "}";
    prev.count = c;
    prev.sum_ns = sum;
    ++slot;
  };
  m.for_each_histogram(one);
  for (const ExtraHist& e : extra_) one(e.name.c_str(), *e.hist);
  os << "}";

  os << ",\"delta\":{" << deltas.str()
     << ",\"joins_checked\":" << (s.gate.joins_checked - prev_joins_checked_)
     << ",\"requests_checked\":"
     << (s.gate.requests_checked - prev_requests_checked_)
     << ",\"lock_acquisitions\":"
     << (lock_acquisitions - prev_lock_acquisitions_)
     << ",\"lock_contended\":" << (lock_contended - prev_lock_contended_)
     << "}}";
  prev_joins_checked_ = s.gate.joins_checked;
  prev_requests_checked_ = s.gate.requests_checked;
  prev_lock_acquisitions_ = lock_acquisitions;
  prev_lock_contended_ = lock_contended;

  // One worker-census event per tick so export_chrome can draw the state
  // counts as counter tracks alongside the event timeline. 12 bits per
  // state caps each count at 4095 — far above any real pool.
  if (s.workers.workers != 0) {
    Event ev;
    ev.kind = EventKind::WorkerSample;
    ev.actor = s.workers.workers;
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
      const std::uint64_t c =
          s.workers.current[i] < 0xfff ? s.workers.current[i] : 0xfff;
      packed |= c << (12 * i);
    }
    ev.payload = packed;
    rt_.recorder()->emit(ev);
  }

  if (jsonl_.is_open()) jsonl_ << os.str() << "\n";

  if (!cfg_.prometheus_path.empty()) {
    const std::string text = render_prometheus(s);
    const std::string tmp = cfg_.prometheus_path + ".tmp";
    if (std::ofstream out(tmp, std::ios::trunc); out) {
      out << text;
      out.close();
      std::rename(tmp.c_str(), cfg_.prometheus_path.c_str());
    }
  }
}

std::string TelemetrySink::render_prometheus(
    const runtime::RuntimeSnapshot& s) {
  const Metrics& m = rt_.recorder()->metrics();
  std::ostringstream os;
  const auto counter = [&os](const char* name, std::uint64_t v,
                             const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name
       << " counter\n"
       << name << ' ' << v << "\n";
  };
  const auto gauge = [&os](const char* name, std::uint64_t v,
                           const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name
       << " gauge\n"
       << name << ' ' << v << "\n";
  };
  counter("tj_joins_checked", s.gate.joins_checked, "gate join verdicts");
  counter("tj_policy_rejections", s.gate.policy_rejections,
          "joins the policy flagged");
  counter("tj_deadlocks_averted", s.gate.deadlocks_averted,
          "joins faulted on a real cycle");
  counter("tj_cycle_checks", s.gate.cycle_checks, "WFG fallback scans");
  counter("tj_awaits_checked", s.gate.awaits_checked, "gate await verdicts");
  counter("tj_requests_checked", s.gate.requests_checked,
          "admission verdicts");
  counter("tj_requests_admitted", s.gate.requests_admitted,
          "requests admitted");
  counter("tj_requests_shed", s.gate.requests_shed, "requests shed");
  counter("tj_cycles_recovered", s.gate.cycles_recovered,
          "async-mode deadlock cycles broken by recovery");
  if (s.recovery_attached) {
    gauge("tj_detector_lag_events", s.recovery.detector.lag_events,
          "async detector consumption backlog");
    counter("tj_detector_failovers",
            m.detector_failovers.load(std::memory_order_relaxed),
            "async detector budget failovers");
  }
  counter("tj_watchdog_stalls", s.watchdog_stalls, "stall batches reported");
  counter("tj_watchdog_cycles", s.watchdog_cycles,
          "cycles found by stall scans");
  counter("tj_faults_injected",
          m.faults_injected.load(std::memory_order_relaxed),
          "chaos faults fired");
  counter("tj_policy_downgrades",
          m.policy_downgrades.load(std::memory_order_relaxed),
          "degradation ladder steps");
  counter("tj_obs_events", s.obs_events, "flight-recorder events buffered");
  counter("tj_obs_dropped", s.obs_dropped, "flight-recorder events dropped");
  gauge("tj_live_tasks", s.live_tasks, "tasks submitted and not terminated");
  gauge("tj_ladder_level", s.ladder_level, "active degradation level");
  gauge("tj_governor_pressure", s.governor_pressure ? 1 : 0,
        "governor over budget now");

  // Contention observatory: per-site lock counters + wait quantiles, and
  // the worker-state census/timelines.
  if (!s.lock_sites.empty()) {
    os << "# HELP tj_lock_acquisitions profiled lock acquisitions by site\n"
       << "# TYPE tj_lock_acquisitions counter\n";
    for (const auto& site : s.lock_sites) {
      os << "tj_lock_acquisitions{site=\"" << site.name
         << "\",outcome=\"uncontended\"} " << site.uncontended << "\n"
         << "tj_lock_acquisitions{site=\"" << site.name
         << "\",outcome=\"contended\"} " << site.contended << "\n";
    }
    os << "# TYPE tj_lock_wait_ns summary\n";
    for (const auto& site : s.lock_sites) {
      os << "tj_lock_wait_ns{site=\"" << site.name << "\",quantile=\"0.5\"} "
         << site.wait.p50_ns << "\n"
         << "tj_lock_wait_ns{site=\"" << site.name << "\",quantile=\"0.99\"} "
         << site.wait.p99_ns << "\n"
         << "tj_lock_wait_ns_sum{site=\"" << site.name << "\"} "
         << site.wait.sum_ns << "\n"
         << "tj_lock_wait_ns_count{site=\"" << site.name << "\"} "
         << site.wait.count << "\n";
    }
    os << "# HELP tj_lock_long_holds contended holds at or above 100us\n"
       << "# TYPE tj_lock_long_holds counter\n";
    for (const auto& site : s.lock_sites) {
      os << "tj_lock_long_holds{site=\"" << site.name << "\"} "
         << site.hold.count << "\n";
    }
  }
  gauge("tj_workers", s.workers.workers, "scheduler worker threads");
  os << "# HELP tj_worker_state_now workers currently in each state\n"
     << "# TYPE tj_worker_state_now gauge\n";
  for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
    os << "tj_worker_state_now{state=\""
       << to_string(static_cast<WorkerState>(i)) << "\"} "
       << s.workers.current[i] << "\n";
  }
  os << "# HELP tj_worker_state_ns cumulative ns per worker state\n"
     << "# TYPE tj_worker_state_ns counter\n";
  for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
    os << "tj_worker_state_ns{state=\""
       << to_string(static_cast<WorkerState>(i)) << "\"} "
       << s.workers.state_ns[i] << "\n";
  }
  os << "# HELP tj_worker_effective_parallelism mean workers running\n"
     << "# TYPE tj_worker_effective_parallelism gauge\n"
     << "tj_worker_effective_parallelism "
     << s.workers.effective_parallelism() << "\n";

  os << "# HELP tj_tenant_requests per-tenant admission ledger\n"
     << "# TYPE tj_tenant_requests counter\n";
  for (const auto& t : s.tenants) {
    os << "tj_tenant_requests{tenant=\"" << t.name
       << "\",outcome=\"admitted\"} " << t.admitted << "\n"
       << "tj_tenant_requests{tenant=\"" << t.name << "\",outcome=\"shed\"} "
       << t.shed << "\n";
  }

  const auto hist = [&os](const char* name, const LatencyHistogram& h) {
    const LatencyHistogram::Summary sum = h.summary();
    os << "# TYPE tj_" << name << " summary\n";
    os << "tj_" << name << "{quantile=\"0.5\"} " << sum.p50_ns << "\n"
       << "tj_" << name << "{quantile=\"0.9\"} " << sum.p90_ns << "\n"
       << "tj_" << name << "{quantile=\"0.99\"} " << sum.p99_ns << "\n"
       << "tj_" << name << "{quantile=\"0.999\"} " << sum.p999_ns << "\n"
       << "tj_" << name << "_sum " << sum.sum_ns << "\n"
       << "tj_" << name << "_count " << sum.count << "\n";
  };
  m.for_each_histogram(hist);
  for (const ExtraHist& e : extra_) hist(e.name.c_str(), *e.hist);
  return os.str();
}

}  // namespace tj::obs
