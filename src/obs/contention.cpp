#include "obs/contention.hpp"

#include <sstream>

namespace tj::obs {

namespace {
std::atomic<int> g_profiling_refs{0};
}  // namespace

bool contention_profiling_enabled() {
  return g_profiling_refs.load(std::memory_order_relaxed) > 0;
}

void contention_profiling_retain() {
  g_profiling_refs.fetch_add(1, std::memory_order_relaxed);
}

void contention_profiling_release() {
  g_profiling_refs.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t contention_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- registry --------------------------------------------------------------

ContentionRegistry& ContentionRegistry::instance() {
  // Leaked singleton: lock sites may record during static destruction
  // (runtime members unwind in arbitrary order at process exit).
  static ContentionRegistry* r = new ContentionRegistry();
  return *r;
}

SiteStats* ContentionRegistry::intern(const char* name) {
  std::scoped_lock lock(mu_);
  for (SiteStats* s : sites_) {
    if (s->name == name) return s;
  }
  auto* s = new SiteStats();
  s->name = name;
  sites_.push_back(s);
  return s;
}

SiteSnapshot snapshot_site(const SiteStats& s) {
  SiteSnapshot out;
  out.name = s.name;
  // Read order preserves wait.count <= contended <= acquisitions: the
  // wait summary first, then contended (writers bump contended before
  // recording the wait), then uncontended.
  out.wait = s.wait_ns.summary();
  out.hold = s.hold_ns.summary();
  out.contended = s.contended.load(std::memory_order_relaxed);
  out.uncontended = s.uncontended.load(std::memory_order_relaxed);
  out.acquisitions = out.uncontended + out.contended;
  return out;
}

std::vector<SiteSnapshot> ContentionRegistry::snapshot() const {
  std::vector<SiteStats*> sites;
  {
    std::scoped_lock lock(mu_);
    sites = sites_;
  }
  std::vector<SiteSnapshot> out;
  out.reserve(sites.size());
  for (const SiteStats* s : sites) out.push_back(snapshot_site(*s));
  return out;
}

std::size_t ContentionRegistry::site_count() const {
  std::scoped_lock lock(mu_);
  return sites_.size();
}

std::string ContentionRegistry::to_string() const {
  std::ostringstream os;
  os << "lock contention (" << site_count() << " sites)\n";
  for (const SiteSnapshot& s : snapshot()) {
    os << "  " << s.name << ": acquisitions=" << s.acquisitions
       << " uncontended=" << s.uncontended << " contended=" << s.contended;
    if (s.wait.count != 0) {
      os << " wait{count=" << s.wait.count << " p50=" << s.wait.p50_ns
         << "ns p99=" << s.wait.p99_ns << "ns max=" << s.wait.max_ns
         << "ns sum=" << s.wait.sum_ns << "ns}";
    }
    if (s.hold.count != 0) {
      os << " long-hold{count=" << s.hold.count << " p99=" << s.hold.p99_ns
         << "ns max=" << s.hold.max_ns << "ns}";
    }
    os << "\n";
  }
  return os.str();
}

// ---- worker states ---------------------------------------------------------

const char* to_string(WorkerState s) {
  switch (s) {
    case WorkerState::Idle:
      return "idle";
    case WorkerState::Stealing:
      return "stealing";
    case WorkerState::Running:
      return "running";
    case WorkerState::BlockedJoin:
      return "blocked_join";
    case WorkerState::BlockedLock:
      return "blocked_lock";
  }
  return "?";
}

WorkerSlot*& tls_worker_slot() {
  thread_local WorkerSlot* slot = nullptr;
  return slot;
}

WorkerStateBoard::~WorkerStateBoard() {
  for (WorkerSlot* s : slots_) delete s;
}

WorkerSlot* WorkerStateBoard::register_worker() {
  auto* slot = new WorkerSlot();
  if (contention_profiling_enabled()) {
    slot->last_ns.store(contention_now_ns(), std::memory_order_relaxed);
  }
  std::scoped_lock lock(mu_);
  slots_.push_back(slot);
  return slot;
}

WorkerStateBoard::Totals WorkerStateBoard::totals() const {
  std::vector<WorkerSlot*> slots;
  {
    std::scoped_lock lock(mu_);
    slots = slots_;
  }
  Totals t;
  t.workers = slots.size();
  const std::uint64_t now = contention_now_ns();
  for (const WorkerSlot* s : slots) {
    const auto cur = static_cast<std::size_t>(
        s->state.load(std::memory_order_relaxed));
    ++t.current[cur < kWorkerStateCount ? cur : 0];
    for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
      t.state_ns[i] += s->state_ns[i].load(std::memory_order_relaxed);
    }
    // Charge the in-progress interval to the current state, so a profile
    // read mid-run accounts for the whole timed window (one-transition
    // skew when a worker flips concurrently — acceptable for a profile).
    const std::uint64_t last = s->last_ns.load(std::memory_order_relaxed);
    if (last != 0 && now > last && cur < kWorkerStateCount) {
      t.state_ns[cur] += now - last;
    }
    t.transitions += s->transitions.load(std::memory_order_relaxed);
  }
  return t;
}

std::string WorkerStateBoard::to_string() const {
  const Totals t = totals();
  std::ostringstream os;
  os << "workers=" << t.workers << " transitions=" << t.transitions
     << " effective_parallelism=" << t.effective_parallelism() << "\n";
  const std::uint64_t total = t.total_ns();
  for (std::size_t i = 0; i < kWorkerStateCount; ++i) {
    const double share =
        total == 0 ? 0.0
                   : static_cast<double>(t.state_ns[i]) /
                         static_cast<double>(total);
    os << "  " << obs::to_string(static_cast<WorkerState>(i)) << ": now="
       << t.current[i] << " ns=" << t.state_ns[i] << " share=" << share
       << "\n";
  }
  return os.str();
}

}  // namespace tj::obs
