#pragma once
// The flight recorder: per-thread lock-free SPSC rings of timestamped
// events plus the metrics registry. Always compiled, off by default — when
// the runtime's config leaves it disabled no recorder exists at all and
// every instrumentation site short-circuits on a single null-pointer
// branch. When enabled, emitting an event costs one atomic fetch_add (the
// global sequence number), one steady-clock read, and one SPSC push into
// the calling thread's ring; memory is bounded by capacity × threads, and a
// full ring drops the event into an explicit per-thread drop counter — loss
// is always visible, never silent.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/contention.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/ring_buffer.hpp"

namespace tj::obs {

/// Recorder knobs (embedded in runtime::Config as `obs`).
struct ObsConfig {
  bool enabled = false;
  /// Events buffered per emitting thread (rounded up to a power of two).
  /// 2^16 events ≈ 3.5 MiB/thread at 56 B/event.
  std::size_t buffer_capacity = std::size_t{1} << 16;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(ObsConfig cfg);
  ~FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Nanoseconds since this recorder's construction (event timestamps).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records `e`, stamping its seq and t_ns, plus the thread's current
  /// request context for any attribution field the site left at zero (an
  /// explicit site-set request/tenant wins). Thread-safe; lock-free after a
  /// thread's first emit (which registers its ring under a mutex).
  void emit(Event e) {
    e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    e.t_ns = now_ns();
    const RequestContext& ctx = tls_request_context();
    if (e.request == 0) e.request = ctx.request;
    if (e.tenant == 0) e.tenant = ctx.tenant;
    ThreadLog& log = local_log();
    if (log.ring.try_push(e)) {
      log.pushed.fetch_add(1, std::memory_order_relaxed);
    } else {
      log.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Events successfully buffered / dropped on full rings, across threads.
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;
  /// Number of threads that have emitted at least one event.
  std::size_t thread_count() const;

  /// Pops every buffered event, merged and sorted by sequence number.
  /// Call only while no thread is emitting (e.g. after the runtime
  /// quiesced); concurrent emits may be missed, never corrupted.
  std::vector<Event> drain();

  /// Best-effort snapshot of the most recent still-buffered events naming
  /// `uid` as actor or target, oldest-first, at most `max_events`. Safe
  /// concurrently with emitters (the watchdog calls this mid-run).
  std::vector<Event> recent(std::uint64_t uid, std::size_t max_events) const;

  /// Incremental consumption for the async detector: pops everything
  /// currently buffered into `out` (appended, sorted by seq among this
  /// batch) and returns the number popped. Safe concurrently with emitters.
  /// Cross-ring ordering is approximate — a lower-seq event still in flight
  /// on another thread can land in a later batch — which the detector
  /// tolerates by confirming every candidate against the gate's live WFG.
  std::size_t consume(std::vector<Event>& out);

  /// Events handed out through consume() so far (the detector's watermark;
  /// lag = events_recorded() - events_consumed()).
  std::uint64_t events_consumed() const {
    return consumed_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadLog {
    explicit ThreadLog(std::size_t capacity) : ring(capacity) {}
    SpscRing<Event> ring;
    std::atomic<std::uint64_t> pushed{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  /// This thread's ring, creating and registering it on first use. A
  /// one-entry thread-local cache keyed by recorder id makes repeat emits
  /// lock-free; the id (never reused) guards against a recorder being
  /// destroyed and another allocated at the same address.
  ThreadLog& local_log();

  const ObsConfig cfg_;
  const std::uint64_t id_;  ///< process-unique recorder id
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> seq_{0};
  Metrics metrics_;

  // Profiled ("recorder.registry"): cold after each thread's first emit,
  // but every counter read crosses it — contention here means telemetry
  // sampling is fighting the emit paths.
  mutable obs::ProfiledMutex reg_mu_{"recorder.registry"};
  // Append-only while the recorder lives (stable ThreadLog addresses).
  std::vector<std::unique_ptr<ThreadLog>> logs_;          // guarded by reg_mu_
  std::map<std::thread::id, ThreadLog*> by_thread_;       // guarded by reg_mu_

  // Serializes the popping side of every ring (consume vs drain) AND keeps
  // recent()'s peek from racing a concurrent pop: the rings are SPSC, so
  // only one consumer may advance tails at a time, and a peeked slot is
  // only immutable until popped. Taken together with reg_mu_ only via
  // std::scoped_lock (deadlock-order safe); never nested one inside the
  // other.
  mutable obs::ProfiledMutex consume_mu_{"recorder.consume"};
  std::atomic<std::uint64_t> consumed_{0};
};

}  // namespace tj::obs
