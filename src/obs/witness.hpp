#pragma once
// Rendering and offline validation of rejection-provenance witnesses
// (core/witness.hpp). A witness is the gate's claim about WHY an edge was
// forbidden; this module makes the claim inspectable (to_text / to_dot) and
// checkable (validate_witness): the evidence is replayed through the trace
// formalism (trace/{tj,kj,owp}_judgment) to confirm that it independently
// forbids the edge — or, for conservative and injected rejections, that it
// demonstrably fails to.

#include <string>

#include "core/witness.hpp"
#include "trace/trace.hpp"

namespace tj::obs {

/// Outcome of replaying a witness through the trace formalism.
enum class WitnessVerdict : std::uint8_t {
  Confirmed,  ///< the evidence (and the offline judgment, when a trace is
              ///< given) independently forbids the edge
  Spurious,   ///< the evidence fails to forbid the edge — expected for
              ///< injected rejections and for conservative false positives
              ///< the fallback cleared
  Invalid,    ///< the witness is internally inconsistent or contradicts the
              ///< recorded trace: it explains nothing
};

constexpr std::string_view to_string(WitnessVerdict v) {
  switch (v) {
    case WitnessVerdict::Confirmed: return "confirmed";
    case WitnessVerdict::Spurious: return "spurious";
    case WitnessVerdict::Invalid: return "invalid";
  }
  return "<bad witness verdict>";
}

struct WitnessValidation {
  WitnessVerdict verdict = WitnessVerdict::Invalid;
  std::string reason;  ///< one line: what was checked and what it found
};

/// Human-readable multi-line rendering (header + per-kind evidence lines).
std::string to_text(const core::Witness& w);

/// Graphviz DOT rendering: the evidence as a graph, with the rejected edge
/// dashed and red. Always a syntactically complete `digraph witness { ... }`.
std::string to_dot(const core::Witness& w);

/// Replays `w` through the offline formalism against `t` (the runtime's
/// recorded trace; may be empty, in which case only the witness's
/// self-contained evidence is checked). When w.trace_pos is nonzero the
/// prefix of that length is used, so prefix-sensitive judgments (KJ, OWP)
/// are evaluated exactly as of the rejection.
WitnessValidation validate_witness(const core::Witness& w,
                                   const trace::Trace& t);

}  // namespace tj::obs
