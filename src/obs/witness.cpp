#include "obs/witness.hpp"

#include <cstdint>
#include <sstream>
#include <vector>

#include "trace/fork_tree.hpp"
#include "trace/kj_judgment.hpp"
#include "trace/owp_judgment.hpp"
#include "trace/tj_judgment.hpp"

namespace tj::obs {

namespace {

// Mirrors wfg::promise_node_id's reserved high bit without pulling the WFG
// header into the obs layer.
constexpr std::uint64_t kPromiseBit = std::uint64_t{1} << 63;

// Raw core::JoinDecision values (Witness::outcome is kept untyped to avoid a
// guarded.hpp dependency in the witness header).
std::string_view outcome_name(std::uint8_t outcome) {
  switch (outcome) {
    case 0: return "proceed";
    case 1: return "proceed-false-positive";
    case 2: return "fault-policy";
    case 3: return "fault-deadlock";
  }
  return "<bad outcome>";
}

// Replica of TjSpVerifier::less on raw spawn paths: p1 <T p2 by diverging
// sibling index (later-forked subtree first), prefix ⇒ ancestor.
bool sp_less(const std::vector<std::uint32_t>& p1,
             const std::vector<std::uint32_t>& p2) {
  const std::size_t common = std::min(p1.size(), p2.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (p1[i] != p2[i]) return p1[i] > p2[i];
  }
  return p1.size() < p2.size();
}

std::string path_str(const std::vector<std::uint32_t>& p) {
  std::ostringstream os;
  os << "root";
  for (const std::uint32_t ix : p) os << '.' << ix;
  return os.str();
}

std::string wfg_node_name(std::uint64_t n) {
  std::ostringstream os;
  if ((n & kPromiseBit) != 0) {
    os << 'p' << (n & ~kPromiseBit);
  } else {
    os << 't' << n;
  }
  return os.str();
}

}  // namespace

std::string to_text(const core::Witness& w) {
  std::ostringstream os;
  os << "witness[" << to_string(w.kind) << "] "
     << (w.on_promise ? "await " : "join ") << w.waiter << " -> "
     << (w.on_promise ? "p" : "") << w.target
     << " outcome=" << outcome_name(w.outcome)
     << " policy=" << core::to_string(w.policy);
  if (w.trace_pos != 0) os << " trace_pos=" << w.trace_pos;
  os << '\n';
  switch (w.kind) {
    case core::WitnessKind::TjPath:
      os << "  waiter spawn path: " << path_str(w.waiter_path) << '\n'
         << "  target spawn path: " << path_str(w.target_path) << '\n'
         << "  evidence: the waiter does not precede the target in the fork "
            "tree's newest-first preorder, so TJ forbids the join\n";
      break;
    case core::WitnessKind::KjClock:
      os << "  joiner kj-id " << w.joiner_id << " observed clock["
         << w.joinee_parent << "]=" << w.observed_clock
         << "; joinee kj-id " << w.joinee_id << " was fork #"
         << w.joinee_birth << " of parent " << w.joinee_parent << '\n'
         << "  evidence: "
         << (w.joinee_birth == 0
                 ? "the joinee is the root (nothing ever knows the root)\n"
                 : "the joiner's clock has not reached the joinee's birth, "
                   "so the joiner does not know it\n");
      break;
    case core::WitnessKind::KjSet:
      os << "  joiner kj-id " << w.joiner_id << " knowledge set "
         << (w.set_member ? "CONTAINS" : "does not contain") << " joinee kj-id "
         << w.joinee_id << '\n'
         << "  evidence: an unknown joinee may not be joined under KJ\n";
      break;
    case core::WitnessKind::OwpChain: {
      os << "  obligation chain in H:";
      for (const std::uint64_t n : w.chain) os << ' ' << n;
      os << '\n'
         << "  evidence: the "
         << (w.on_promise ? "promise owner's" : "target's")
         << " obligation history already reaches the waiter — blocking could "
            "wait on itself\n";
      break;
    }
    case core::WitnessKind::OwpOrphan:
      os << "  evidence: the promise's owner terminated without fulfilling "
            "or transferring it; no task can ever wake the waiter\n";
      break;
    case core::WitnessKind::LadderMixed:
      os << "  waiter tag: level " << w.waiter_level << ", forest "
         << w.waiter_forest << "; target tag: level " << w.target_level
         << ", forest " << w.target_forest << '\n'
         << "  evidence: the pair is outside any single level verifier's "
            "soundness theorem (or on the WFG-only floor); the ladder "
            "conservatively rejects into the cycle-checked fallback\n";
      break;
    case core::WitnessKind::WfgCycle: {
      os << "  wait cycle:";
      for (const std::uint64_t n : w.chain) os << ' ' << wfg_node_name(n);
      os << " -> " << wfg_node_name(w.chain.empty() ? w.waiter : w.chain[0])
         << '\n'
         << "  evidence: registering the wait edge would close this cycle in "
            "the waits-for graph — every member would block forever\n";
      break;
    }
    case core::WitnessKind::Injected:
      os << "  evidence: none — deterministic fault injection flipped an "
            "approved verdict into a spurious rejection\n";
      break;
    case core::WitnessKind::None:
      os << "  no evidence captured\n";
      break;
  }
  return os.str();
}

std::string to_dot(const core::Witness& w) {
  std::ostringstream os;
  os << "digraph witness {\n"
     << "  label=\"" << to_string(w.kind) << ": "
     << (w.on_promise ? "await " : "join ") << w.waiter << " -> "
     << (w.on_promise ? "p" : "") << w.target << " ("
     << outcome_name(w.outcome) << ")\";\n"
     << "  node [shape=ellipse];\n";
  const auto rejected_edge = [&os](const std::string& from,
                                   const std::string& to) {
    os << "  " << from << " -> " << to
       << " [style=dashed, color=red, label=\"rejected\"];\n";
  };
  switch (w.kind) {
    case core::WitnessKind::TjPath: {
      // The two spawn paths as branches of the fork tree, shared prefix
      // rendered once. Node names encode the path prefix.
      const auto node_id = [](const std::vector<std::uint32_t>& p,
                              std::size_t len) {
        std::string id = "n";
        for (std::size_t i = 0; i < len; ++i) {
          id += '_' + std::to_string(p[i]);
        }
        return id;
      };
      std::size_t common = 0;
      while (common < w.waiter_path.size() && common < w.target_path.size() &&
             w.waiter_path[common] == w.target_path[common]) {
        ++common;
      }
      os << "  n [label=\"root\"];\n";
      const auto emit_branch = [&](const std::vector<std::uint32_t>& p,
                                   const char* who) {
        for (std::size_t i = 0; i < p.size(); ++i) {
          const std::string id = node_id(p, i + 1);
          os << "  " << id << " [label=\"#" << p[i] << "\"];\n"
             << "  " << node_id(p, i) << " -> " << id << ";\n";
        }
        os << "  " << node_id(p, p.size()) << " [label=\"" << who << "\"];\n";
      };
      // Emit the shared prefix once (via waiter's branch), then the suffixes.
      emit_branch(w.waiter_path, "waiter");
      for (std::size_t i = common; i < w.target_path.size(); ++i) {
        const std::string id = node_id(w.target_path, i + 1);
        os << "  " << id << " [label=\"#" << w.target_path[i] << "\"];\n"
           << "  " << node_id(w.target_path, i) << " -> " << id << ";\n";
      }
      os << "  " << node_id(w.target_path, w.target_path.size())
         << " [label=\"target\"];\n";
      rejected_edge(node_id(w.waiter_path, w.waiter_path.size()),
                    node_id(w.target_path, w.target_path.size()));
      break;
    }
    case core::WitnessKind::KjClock:
    case core::WitnessKind::KjSet:
      os << "  t" << w.waiter << " [label=\"waiter " << w.waiter
         << "\\nkj-id " << w.joiner_id;
      if (w.kind == core::WitnessKind::KjClock) {
        os << "\\nclock[" << w.joinee_parent << "]=" << w.observed_clock;
      }
      os << "\"];\n"
         << "  t" << w.target << " [label=\"target " << w.target
         << "\\nkj-id " << w.joinee_id;
      if (w.kind == core::WitnessKind::KjClock) {
        os << "\\nbirth #" << w.joinee_birth << " of " << w.joinee_parent;
      }
      os << "\"];\n";
      rejected_edge("t" + std::to_string(w.waiter),
                    "t" + std::to_string(w.target));
      break;
    case core::WitnessKind::OwpChain: {
      for (std::size_t i = 0; i + 1 < w.chain.size(); ++i) {
        os << "  t" << w.chain[i] << " -> t" << w.chain[i + 1]
           << " [label=\"H\"];\n";
      }
      rejected_edge("t" + std::to_string(w.waiter),
                    (w.on_promise ? "p" : "t") + std::to_string(w.target));
      if (w.on_promise && !w.chain.empty()) {
        os << "  p" << w.target << " -> t" << w.chain.front()
           << " [label=\"owner\", style=dotted];\n";
      }
      break;
    }
    case core::WitnessKind::OwpOrphan:
      os << "  p" << w.target << " [label=\"p" << w.target
         << "\\norphaned\", color=red];\n";
      rejected_edge("t" + std::to_string(w.waiter),
                    "p" + std::to_string(w.target));
      break;
    case core::WitnessKind::LadderMixed:
      os << "  t" << w.waiter << " [label=\"waiter " << w.waiter << "\\nlevel "
         << w.waiter_level << ", forest " << w.waiter_forest << "\"];\n"
         << "  t" << w.target << " [label=\"target " << w.target << "\\nlevel "
         << w.target_level << ", forest " << w.target_forest << "\"];\n";
      rejected_edge("t" + std::to_string(w.waiter),
                    "t" + std::to_string(w.target));
      break;
    case core::WitnessKind::WfgCycle: {
      for (std::size_t i = 0; i + 1 < w.chain.size(); ++i) {
        os << "  " << wfg_node_name(w.chain[i]) << " -> "
           << wfg_node_name(w.chain[i + 1])
           << (i == 0 ? " [style=dashed, color=red, label=\"rejected\"]"
                      : " [label=\"waits\"]")
           << ";\n";
      }
      if (w.chain.size() >= 2) {
        os << "  " << wfg_node_name(w.chain.back()) << " -> "
           << wfg_node_name(w.chain.front()) << " [label=\"waits\"];\n";
      }
      break;
    }
    case core::WitnessKind::Injected:
    case core::WitnessKind::None:
      rejected_edge("t" + std::to_string(w.waiter),
                    (w.on_promise ? "p" : "t") + std::to_string(w.target));
      break;
  }
  os << "}\n";
  return os.str();
}

WitnessValidation validate_witness(const core::Witness& w,
                                   const trace::Trace& t) {
  const auto result = [](WitnessVerdict v, std::string reason) {
    return WitnessValidation{v, std::move(reason)};
  };
  const trace::Trace pre =
      (w.trace_pos != 0 && w.trace_pos < t.size())
          ? t.prefix(static_cast<std::size_t>(w.trace_pos))
          : t;
  const auto waiter = static_cast<trace::TaskId>(w.waiter);
  const auto target = static_cast<trace::TaskId>(w.target);

  switch (w.kind) {
    case core::WitnessKind::None:
      return result(WitnessVerdict::Invalid, "no evidence captured");

    case core::WitnessKind::Injected:
      return result(WitnessVerdict::Spurious,
                    "fault injection flipped an approved verdict; by "
                    "construction no evidence forbids the edge");

    case core::WitnessKind::TjPath: {
      if (sp_less(w.waiter_path, w.target_path)) {
        return result(WitnessVerdict::Invalid,
                      "the recorded spawn paths PERMIT the join — "
                      "inconsistent with a TJ rejection");
      }
      if (pre.empty()) {
        return result(WitnessVerdict::Confirmed,
                      "spawn-path comparison forbids the join (no trace to "
                      "cross-check)");
      }
      // Structural cross-check: when the paths are rooted at the real fork
      // tree (not a ladder forest), they must match the tree's indices.
      try {
        const trace::ForkTree tree(pre);
        if (tree.contains(waiter) && tree.contains(target) &&
            tree.depth(waiter) == w.waiter_path.size() &&
            tree.depth(target) == w.target_path.size()) {
          for (trace::TaskId a : {waiter, target}) {
            const auto& path =
                a == waiter ? w.waiter_path : w.target_path;
            trace::TaskId cur = a;
            for (std::size_t i = path.size(); i > 0; --i) {
              if (tree.child_index(cur) != path[i - 1]) {
                return result(WitnessVerdict::Invalid,
                              "spawn path disagrees with the recorded fork "
                              "tree");
              }
              cur = tree.parent(cur);
            }
          }
        }
      } catch (const std::invalid_argument&) {
        // Structurally unusable prefix: fall through to the judgment.
      }
      trace::TjJudgment j(pre);
      if (!j.knows_task(waiter) || !j.knows_task(target)) {
        return result(WitnessVerdict::Invalid,
                      "waiter or target never appears in the trace");
      }
      if (j.less(waiter, target)) {
        return result(WitnessVerdict::Spurious,
                      "offline TJ judgment t |- waiter < target holds: the "
                      "formalism permits the edge (conservative rejection, "
                      "e.g. under a ladder forest)");
      }
      return result(WitnessVerdict::Confirmed,
                    "offline TJ judgment does not derive waiter < target: "
                    "the edge is forbidden");
    }

    case core::WitnessKind::KjClock:
    case core::WitnessKind::KjSet: {
      if (w.kind == core::WitnessKind::KjClock &&
          w.joinee_birth != 0 && w.observed_clock >= w.joinee_birth) {
        return result(WitnessVerdict::Invalid,
                      "the recorded clock reaches the joinee's birth — the "
                      "evidence PERMITS the join");
      }
      if (w.kind == core::WitnessKind::KjSet && w.set_member) {
        return result(WitnessVerdict::Invalid,
                      "the joiner's knowledge set contains the joinee — the "
                      "evidence PERMITS the join");
      }
      if (pre.empty()) {
        return result(WitnessVerdict::Confirmed,
                      "the recorded knowledge evidence forbids the join (no "
                      "trace to cross-check)");
      }
      trace::KjJudgment j(pre);
      if (!j.knows_task(waiter) || !j.knows_task(target)) {
        return result(WitnessVerdict::Invalid,
                      "waiter or target never appears in the trace");
      }
      if (j.knows(waiter, target)) {
        return result(WitnessVerdict::Spurious,
                      "offline KJ judgment t |- waiter knows target holds: "
                      "the formalism permits the edge");
      }
      return result(WitnessVerdict::Confirmed,
                    "offline KJ judgment does not derive knowledge of the "
                    "target: the edge is forbidden");
    }

    case core::WitnessKind::OwpChain: {
      if (!w.chain.empty() && w.chain.back() != w.waiter) {
        return result(WitnessVerdict::Invalid,
                      "obligation chain does not end at the waiter");
      }
      if (!w.on_promise && !w.chain.empty() && w.chain.front() != w.target) {
        return result(WitnessVerdict::Invalid,
                      "obligation chain does not start at the join target");
      }
      if (pre.empty()) {
        return result(w.chain.empty() ? WitnessVerdict::Spurious
                                      : WitnessVerdict::Confirmed,
                      w.chain.empty()
                          ? "no obligation chain was reconstructed and no "
                            "trace is available"
                          : "obligation chain present (no trace to "
                            "cross-check)");
      }
      trace::OwpJudgment j(pre);
      bool forbids;
      if (w.on_promise) {
        const auto p = static_cast<trace::PromiseId>(w.target);
        if (!j.has_promise(p)) {
          return result(WitnessVerdict::Invalid,
                        "the promise never appears in the trace");
        }
        forbids = !j.valid_await(waiter, p);
      } else {
        forbids = !j.valid_join(waiter, target);
      }
      if (!forbids) {
        // In-flight awaits are invisible to the trace (await actions are
        // recorded on completion), so the runtime's H can be ahead of the
        // judgment's: the chain may be genuine yet offline-underivable.
        return result(WitnessVerdict::Spurious,
                      "offline OWP judgment permits the edge at this prefix "
                      "(in-flight awaits are not yet in the trace)");
      }
      return result(WitnessVerdict::Confirmed,
                    "offline OWP judgment forbids the edge: the obligation "
                    "history reaches the waiter");
    }

    case core::WitnessKind::OwpOrphan: {
      if (!w.on_promise) {
        return result(WitnessVerdict::Invalid,
                      "orphan witness without a promise target");
      }
      if (pre.empty()) {
        return result(WitnessVerdict::Confirmed,
                      "orphaned-promise claim (owner death is runtime state; "
                      "no trace to cross-check)");
      }
      trace::OwpJudgment j(pre);
      const auto p = static_cast<trace::PromiseId>(w.target);
      if (!j.has_promise(p)) {
        return result(WitnessVerdict::Invalid,
                      "the promise never appears in the trace");
      }
      if (j.fulfilled(p)) {
        return result(WitnessVerdict::Invalid,
                      "the trace fulfills the promise before the rejection — "
                      "it cannot have been orphaned");
      }
      // Task termination has no trace action, so orphaning itself is not
      // offline-derivable; the structural facts are consistent with it.
      return result(WitnessVerdict::Confirmed,
                    "the promise is unfulfilled at the prefix and owner "
                    "death is runtime-only: consistent orphan claim");
    }

    case core::WitnessKind::LadderMixed: {
      const bool mixed = w.waiter_level != w.target_level ||
                         w.waiter_forest != w.target_forest;
      if (mixed) {
        return result(WitnessVerdict::Confirmed,
                      "cross-level or cross-forest pair: no level verifier's "
                      "soundness theorem covers it, so the conservative "
                      "rejection is sound by construction");
      }
      if (w.policy == core::PolicyChoice::CycleOnly) {
        return result(WitnessVerdict::Confirmed,
                      "WFG-only floor: every join is rejected into precise "
                      "cycle detection by definition");
      }
      return result(WitnessVerdict::Invalid,
                    "same level and forest above the floor: the ladder "
                    "should have delegated, not rejected");
    }

    case core::WitnessKind::WfgCycle: {
      if (w.chain.empty()) {
        return result(WitnessVerdict::Invalid, "empty cycle");
      }
      if (w.chain.front() != w.waiter) {
        return result(WitnessVerdict::Invalid,
                      "cycle does not start at the waiter");
      }
      const std::uint64_t expect =
          w.on_promise ? (w.target | kPromiseBit) : w.target;
      if (w.chain.size() >= 2 && w.chain[1] != expect &&
          w.chain[1] != w.target) {
        return result(WitnessVerdict::Invalid,
                      "cycle's second node is not the rejected edge's "
                      "target");
      }
      for (std::size_t i = 0; i < w.chain.size(); ++i) {
        for (std::size_t k = i + 1; k < w.chain.size(); ++k) {
          if (w.chain[i] == w.chain[k]) {
            return result(WitnessVerdict::Invalid,
                          "cycle revisits a node before closing");
          }
        }
      }
      // Wait edges are runtime state: blocked joins/awaits are by definition
      // not yet in the trace, so the cycle cannot be replayed offline — but a
      // structurally well-formed closed wait chain is definitionally a
      // deadlock for every member.
      return result(WitnessVerdict::Confirmed,
                    "well-formed wait cycle through the rejected edge: "
                    "blocking would deadlock every member");
    }
  }
  return result(WitnessVerdict::Invalid, "unknown witness kind");
}

}  // namespace tj::obs
