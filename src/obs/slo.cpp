#include "obs/slo.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tj::obs::slo {

// ---------------------------------------------------------------------------
// JSON parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Json v;
        v.kind_ = Json::Kind::String;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          Json v;
          v.kind_ = Json::Kind::Bool;
          v.num_ = 1;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return [] {
          Json v;
          v.kind_ = Json::Kind::Bool;
          return v;
        }();
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind_ = Json::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind_ = Json::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The telemetry writer never emits \u escapes; accept and keep
          // ASCII code points, reject the rest rather than mis-decode.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number '" + tok + "'");
    Json v;
    v.kind_ = Json::Kind::Number;
    v.num_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json* Json::at_path(std::string_view dotted) const {
  const Json* cur = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view hop =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    cur = cur->find(hop);
    if (cur == nullptr) return nullptr;
    dotted = dot == std::string_view::npos ? std::string_view{}
                                           : dotted.substr(dot + 1);
  }
  return cur;
}

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::vector<Json> parse_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<Json> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      out.push_back(parse_json(line));
    } catch (const std::exception& ex) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               ex.what());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules

namespace {

std::string_view op_str(Rule::Op op) {
  switch (op) {
    case Rule::Op::LT: return "<";
    case Rule::Op::LE: return "<=";
    case Rule::Op::GT: return ">";
    case Rule::Op::GE: return ">=";
    case Rule::Op::EQ: return "==";
    case Rule::Op::NE: return "!=";
  }
  return "?";
}

bool apply(Rule::Op op, double actual, double bound) {
  switch (op) {
    case Rule::Op::LT: return actual < bound;
    case Rule::Op::LE: return actual <= bound;
    case Rule::Op::GT: return actual > bound;
    case Rule::Op::GE: return actual >= bound;
    case Rule::Op::EQ: return actual == bound;
    case Rule::Op::NE: return actual != bound;
  }
  return false;
}

std::string trimmed(std::string_view s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

}  // namespace

std::string Rule::to_string() const {
  std::ostringstream os;
  os << metric << op_str(op) << bound;
  return os.str();
}

std::vector<Rule> parse_rules(std::string_view spec) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string item = trimmed(spec.substr(pos, end - pos));
    pos = end + 1;
    if (item.empty()) {
      if (pos > spec.size()) break;
      continue;
    }
    // Two-char operators first so "<=" is not read as "<" + "=3".
    static constexpr std::pair<std::string_view, Rule::Op> kOps[] = {
        {"<=", Rule::Op::LE}, {">=", Rule::Op::GE}, {"==", Rule::Op::EQ},
        {"!=", Rule::Op::NE}, {"<", Rule::Op::LT},  {">", Rule::Op::GT},
    };
    Rule r;
    std::size_t op_at = std::string::npos;
    std::size_t op_len = 0;
    for (const auto& [tok, op] : kOps) {
      const std::size_t at = item.find(tok);
      if (at != std::string::npos && (op_at == std::string::npos || at < op_at ||
                                      (at == op_at && tok.size() > op_len))) {
        op_at = at;
        op_len = tok.size();
        r.op = op;
      }
    }
    if (op_at == std::string::npos || op_at == 0) {
      throw std::runtime_error("slo rule '" + item +
                               "': expected metric<op>value");
    }
    r.metric = trimmed(std::string_view(item).substr(0, op_at));
    const std::string num = trimmed(
        std::string_view(item).substr(op_at + op_len));
    char* endp = nullptr;
    r.bound = std::strtod(num.c_str(), &endp);
    if (num.empty() || endp != num.c_str() + num.size()) {
      throw std::runtime_error("slo rule '" + item + "': bad bound '" + num +
                               "'");
    }
    rules.push_back(std::move(r));
  }
  if (rules.empty()) throw std::runtime_error("empty slo rule set");
  return rules;
}

// ---------------------------------------------------------------------------
// Evaluation

namespace {

/// Resolves a metric name against one telemetry sample; false when absent.
bool resolve(const Json& sample, const std::string& metric, double* out) {
  const auto quantile = [&](std::string_view field) -> bool {
    const Json* v = sample.at_path(std::string("hist.request_latency_ns.") +
                                   std::string(field));
    if (v == nullptr || !v->is_number()) return false;
    *out = v->number() / 1e6;
    return true;
  };
  if (metric == "p50_ms") return quantile("p50_ns");
  if (metric == "p90_ms") return quantile("p90_ns");
  if (metric == "p99_ms") return quantile("p99_ns");
  if (metric == "p999_ms") return quantile("p999_ns");
  if (metric == "shed_rate") {
    const Json* shed = sample.at_path("gate.requests_shed");
    const Json* checked = sample.at_path("gate.requests_checked");
    if (shed == nullptr || checked == nullptr) return false;
    *out = shed->number() / std::max(1.0, checked->number());
    return true;
  }
  if (metric == "downgrade_level") {
    const Json* v = sample.find("ladder_level");
    if (v == nullptr) return false;
    *out = v->number();
    return true;
  }
  if (metric == "gate_contended_share") {
    // Contention observatory: share of gate/WFG lock acquisitions that hit
    // a contended slow path — the serialization-ceiling indicator (ROADMAP
    // item 1). 0 when profiling was off or nothing was acquired.
    const Json* sites = sample.at_path("contention.sites");
    if (sites == nullptr || !sites->is_array()) return false;
    double contended = 0;
    double acquisitions = 0;
    for (const Json& site : sites->array()) {
      const Json* name = site.find("site");
      if (name == nullptr) continue;
      const std::string& n = name->str();
      if (n.rfind("gate.", 0) != 0 && n.rfind("wfg.", 0) != 0) continue;
      const Json* c = site.find("contended");
      const Json* a = site.find("acquisitions");
      if (c == nullptr || a == nullptr) return false;
      contended += c->number();
      acquisitions += a->number();
    }
    *out = acquisitions == 0 ? 0.0 : contended / acquisitions;
    return true;
  }
  if (metric == "recovery_p99_ms") {
    // Async mode: p99 of cycle-formation → victim-wait-broken latency — the
    // bounded-recovery promise the optimistic mode is gated on.
    const Json* v = sample.at_path("hist.recovery_ns.p99_ns");
    if (v == nullptr || !v->is_number()) return false;
    *out = v->number() / 1e6;
    return true;
  }
  const Json* v = sample.at_path(metric);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number();
  return true;
}

}  // namespace

std::string RuleResult::to_string() const {
  std::ostringstream os;
  os << (pass ? "PASS " : "FAIL ") << rule.to_string();
  if (missing) {
    os << " (metric missing from stream)";
  } else {
    os << " (actual " << actual << ")";
  }
  return os.str();
}

Evaluation evaluate(const std::vector<Json>& samples,
                    const std::vector<Rule>& rules) {
  Evaluation ev;
  ev.samples = samples.size();
  ev.pass = true;
  for (const Rule& r : rules) {
    RuleResult res;
    res.rule = r;
    if (samples.empty() || !resolve(samples.back(), r.metric, &res.actual)) {
      res.missing = true;
      res.pass = false;
    } else {
      res.pass = apply(r.op, res.actual, r.bound);
    }
    ev.pass = ev.pass && res.pass;
    ev.results.push_back(std::move(res));
  }
  return ev;
}

Evaluation evaluate_file(const std::string& path,
                         const std::vector<Rule>& rules) {
  return evaluate(parse_jsonl_file(path), rules);
}

std::string Evaluation::to_string() const {
  std::ostringstream os;
  os << "slo: " << (pass ? "PASS" : "FAIL") << " over " << samples
     << " samples\n";
  for (const RuleResult& r : results) os << "  " << r.to_string() << "\n";
  return os.str();
}

}  // namespace tj::obs::slo
