#pragma once
// Flight-recorder events. One fixed-size POD per runtime occurrence:
// structural events (spawn/join/fulfill/... — these map 1:1 onto the offline
// trace actions of Def. 3.1, see obs/replay_bridge.hpp), gate verdicts
// (every JoinDecision/FulfillDecision with the ruling policy id), fallback
// cycle scans with their duration, scheduler and fault-injection incidents,
// and watchdog stall reports. Events carry a global sequence number (their
// total order — timestamps from different threads are not comparable at ns
// resolution) and a nanosecond timestamp relative to the recorder's epoch.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace tj::obs {

enum class EventKind : std::uint8_t {
  // --- structural events: map onto offline trace actions (Def. 3.1) ---
  TaskInit,         ///< root task registered        → init(actor)
  TaskSpawn,        ///< actor forked target         → fork(actor, target)
  JoinComplete,     ///< actor's join on target done → join(actor, target)
  PromiseMake,      ///< actor made promise target   → make(actor, p:target)
  PromiseFulfill,   ///< actor fulfilled p:target    → fulfill(actor, p:target)
  PromiseTransfer,  ///< actor gave p:payload to target → transfer(a,b,p)
  AwaitComplete,    ///< actor's await on p:target done → await(actor, p)

  // --- task lifecycle / scheduler ---
  TaskStart,        ///< actor's body began executing (payload: worker flag)
  TaskEnd,          ///< actor's body finished (detail: 1 iff it faulted)
  SchedInline,      ///< cooperative help: actor inlined queued task target
  SchedCompensate,  ///< pool grew a compensation worker (payload: pool size)
  WorkerDeath,      ///< injected worker death at a task boundary

  // --- join gate ---
  JoinVerdict,      ///< gate ruled on actor join target (detail: JoinDecision)
  AwaitVerdict,     ///< gate ruled on actor await p:target (detail: JoinDecision)
  FulfillVerdict,   ///< gate ruled on actor fulfill p:target (detail: FulfillDecision)
  CycleScan,        ///< WFG fallback scan for actor→target (payload: ns;
                    ///< detail: 1 iff a cycle was found)
  JoinBlocked,      ///< actor's join on target blocked (payload: ns blocked)
  AwaitBlocked,     ///< actor's await on p:target blocked (payload: ns)

  // --- robustness layers ---
  BarrierPhase,     ///< actor completed barrier target's phase payload
  CancelAll,        ///< runtime root scope cancelled (actor: requester, if any)
  FaultInjected,    ///< fault plan fired (detail: InjectedFault site)
  WatchdogStall,    ///< watchdog reported a stall batch (payload: batch size)

  // --- resource governance ---
  PolicyDowngrade,  ///< governor stepped the degradation ladder (policy: new
                    ///< active PolicyChoice; detail: previous PolicyChoice;
                    ///< payload: new level index)
  KjGcEnabled,      ///< governor enabled KJ-VC epoch GC under memory pressure
  SpawnInlined,     ///< backpressure: actor ran child target inline at spawn
                    ///< (payload: live tasks at the decision)
  JoinTimeout,      ///< actor's join_for/get_for on target expired
                    ///< (payload: timeout ns; kFlagPromise unused — futures only)
  VerdictExplained, ///< a rejection's provenance witness was captured (policy:
                    ///< Witness::policy; detail: WitnessKind; payload: chain
                    ///< length; kFlagPromise mirrors Witness::on_promise)

  // --- per-tenant admission control ---
  AdmissionShed,    ///< a request was shed at the front door (actor: tenant
                    ///< index; detail: AdmissionCause; payload: tenant
                    ///< in-flight count at the decision). Admits are counted
                    ///< (metrics requests_admitted) but not per-event
                    ///< recorded — they are the service's common case.

  // --- async detection / bounded-latency recovery ---
  CycleRecovered,   ///< detector broke a confirmed cycle (actor: victim uid;
                    ///< target: node the victim waited on; payload: cycle
                    ///< length; detail: victim's tenant lane)
  DetectorLag,      ///< consumption watermark fell behind (payload: backlog
                    ///< events; target: events lost so far — ring drops plus
                    ///< injected batch drops)
  DetectorFailover, ///< lag/drop/death budget exhausted: the runtime stepped
                    ///< the ladder to a synchronous level (payload: backlog
                    ///< at the decision; detail: DetectorFailoverReason)

  // --- contention observatory ---
  WorkerSample,     ///< telemetry tick: worker-state census (payload packs
                    ///< the per-state worker counts, 12 bits per state in
                    ///< WorkerState order; actor: total workers). Rendered
                    ///< as Chrome counter tracks by export_chrome.
};

/// Why the async detector failed over (Event::detail for DetectorFailover).
enum class DetectorFailoverReason : std::uint8_t {
  Lag,    ///< consumption backlog exceeded the lag budget
  Drops,  ///< events lost (ring overflow or injected drop) past the budget
  Death,  ///< detector thread died more times than max_respawns tolerates
};

/// Which fault-injection site fired (Event::detail for FaultInjected).
enum class InjectedFault : std::uint8_t {
  JoinRejection,
  AwaitRejection,
  DroppedWakeup,
  DetectorDelay,  ///< detector consumption stalled for an injected interval
  DetectorDrop,   ///< detector discarded one consumed batch unapplied
  DetectorDeath,  ///< detector thread killed (the supervisor respawns it)
};

/// Set in Event::flags when `target` (and transfer's `payload`) names a
/// promise uid rather than a task uid.
inline constexpr std::uint8_t kFlagPromise = 1;

struct Event {
  std::uint64_t seq = 0;      ///< global total order (recorder-assigned)
  std::uint64_t t_ns = 0;     ///< ns since recorder epoch (recorder-assigned)
  std::uint64_t actor = 0;    ///< acting task uid (worker index for pool events)
  std::uint64_t target = 0;   ///< join target / forked child / promise uid
  std::uint64_t payload = 0;  ///< durations (ns), phase numbers, pool sizes
  /// Request span this event belongs to; 0 = unattributed (no RequestScope
  /// was installed on the emitting thread/task). Stamped by emit() from the
  /// thread-local RequestContext unless the site set it explicitly.
  std::uint64_t request = 0;
  EventKind kind = EventKind::TaskInit;
  std::uint8_t policy = 0;    ///< core::PolicyChoice of the ruling verifier
  std::uint8_t detail = 0;    ///< verdict / fault-site enum value
  std::uint8_t flags = 0;     ///< kFlagPromise etc.
  /// Tenant lane: 0 = none, else admission tenant index + 1 (so a zero-
  /// initialized event stays unattributed). Stamped like `request`.
  std::uint8_t tenant = 0;
};

/// Thread-local request attribution: which request (and tenant) the current
/// thread is working for. The runtime installs it around every task body
/// from the task's inherited context; services install it explicitly at
/// submission via RequestScope. Lives in the obs layer so the recorder can
/// stamp events without depending on runtime headers.
struct RequestContext {
  std::uint64_t request = 0;  ///< 0 = no request
  std::uint8_t tenant = 0;    ///< 0 = none, else tenant index + 1
};

/// This thread's current request context (mutable reference).
RequestContext& tls_request_context() noexcept;

/// RAII override of the thread-local request context. Install one around a
/// request's submission (spawn + admission check) and every task spawned
/// under it inherits the ids; destruction restores the previous context.
class RequestScope {
 public:
  RequestScope(std::uint64_t request, std::uint8_t tenant) noexcept
      : prev_(tls_request_context()) {
    tls_request_context() = RequestContext{request, tenant};
  }
  ~RequestScope() { tls_request_context() = prev_; }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RequestContext prev_;
};

/// True for the events replay_bridge turns into offline trace actions.
constexpr bool is_structural(EventKind k) {
  return k == EventKind::TaskInit || k == EventKind::TaskSpawn ||
         k == EventKind::JoinComplete || k == EventKind::PromiseMake ||
         k == EventKind::PromiseFulfill || k == EventKind::PromiseTransfer ||
         k == EventKind::AwaitComplete;
}

std::string_view to_string(EventKind k);

/// One human-readable line: "[seq @t_ns] kind actor→target (detail...)".
std::string to_string(const Event& e);

std::ostream& operator<<(std::ostream& os, const Event& e);

}  // namespace tj::obs
