#include "obs/metrics.hpp"

#include <sstream>

namespace tj::obs {

std::uint64_t LatencyHistogram::approx_quantile_ns(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto want = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= want && seen > 0) return bucket_floor(i);
  }
  return bucket_floor(kBuckets - 1);
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  Summary s;
  s.count = count();
  s.sum_ns = sum_ns();
  s.min_ns = min_ns();
  s.max_ns = max_ns();
  s.p50_ns = approx_quantile_ns(0.5);
  s.p90_ns = approx_quantile_ns(0.9);
  s.p99_ns = approx_quantile_ns(0.99);
  s.p999_ns = approx_quantile_ns(0.999);
  return s;
}

std::string LatencyHistogram::to_string() const {
  std::ostringstream os;
  os << "count=" << count();
  if (count() > 0) {
    os << " min=" << min_ns() << "ns p50~" << approx_quantile_ns(0.5)
       << "ns p99~" << approx_quantile_ns(0.99) << "ns max=" << max_ns()
       << "ns";
    os << " buckets:";
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = bucket_count(i);
      if (c == 0) continue;
      os << " [" << bucket_floor(i)
         << (i == kBuckets - 1 ? "ns..)=" : "ns)=") << c;
    }
  }
  return os.str();
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  for_each_histogram([&os](const char* name, const LatencyHistogram& h) {
    os << "  " << name << ": " << h.to_string() << "\n";
  });
  os << "  faults_injected=" << faults_injected.load(std::memory_order_relaxed)
     << " compensation_spawns="
     << compensation_spawns.load(std::memory_order_relaxed)
     << " stall_reports=" << stall_reports.load(std::memory_order_relaxed)
     << "\n";
  os << "  policy_downgrades="
     << policy_downgrades.load(std::memory_order_relaxed)
     << " spawn_inlines=" << spawn_inlines.load(std::memory_order_relaxed)
     << " join_timeouts=" << join_timeouts.load(std::memory_order_relaxed)
     << " kj_compactions=" << kj_compactions.load(std::memory_order_relaxed)
     << "\n";
  os << "  requests_admitted="
     << requests_admitted.load(std::memory_order_relaxed)
     << " requests_shed=" << requests_shed.load(std::memory_order_relaxed)
     << "\n";
  os << "  cycles_recovered="
     << cycles_recovered.load(std::memory_order_relaxed)
     << " detector_failovers="
     << detector_failovers.load(std::memory_order_relaxed)
     << " detector_respawns="
     << detector_respawns.load(std::memory_order_relaxed) << "\n";
  return os.str();
}

}  // namespace tj::obs
