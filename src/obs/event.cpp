#include "obs/event.hpp"

#include <ostream>
#include <sstream>

namespace tj::obs {

RequestContext& tls_request_context() noexcept {
  thread_local RequestContext ctx;
  return ctx;
}

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::TaskInit: return "task-init";
    case EventKind::TaskSpawn: return "task-spawn";
    case EventKind::JoinComplete: return "join-complete";
    case EventKind::PromiseMake: return "promise-make";
    case EventKind::PromiseFulfill: return "promise-fulfill";
    case EventKind::PromiseTransfer: return "promise-transfer";
    case EventKind::AwaitComplete: return "await-complete";
    case EventKind::TaskStart: return "task-start";
    case EventKind::TaskEnd: return "task-end";
    case EventKind::SchedInline: return "sched-inline";
    case EventKind::SchedCompensate: return "sched-compensate";
    case EventKind::WorkerDeath: return "worker-death";
    case EventKind::JoinVerdict: return "join-verdict";
    case EventKind::AwaitVerdict: return "await-verdict";
    case EventKind::FulfillVerdict: return "fulfill-verdict";
    case EventKind::CycleScan: return "cycle-scan";
    case EventKind::JoinBlocked: return "join-blocked";
    case EventKind::AwaitBlocked: return "await-blocked";
    case EventKind::BarrierPhase: return "barrier-phase";
    case EventKind::CancelAll: return "cancel-all";
    case EventKind::FaultInjected: return "fault-injected";
    case EventKind::WatchdogStall: return "watchdog-stall";
    case EventKind::PolicyDowngrade: return "policy-downgrade";
    case EventKind::KjGcEnabled: return "kj-gc-enabled";
    case EventKind::SpawnInlined: return "spawn-inlined";
    case EventKind::JoinTimeout: return "join-timeout";
    case EventKind::VerdictExplained: return "verdict-explained";
    case EventKind::AdmissionShed: return "admission-shed";
    case EventKind::CycleRecovered: return "cycle-recovered";
    case EventKind::DetectorLag: return "detector-lag";
    case EventKind::DetectorFailover: return "detector-failover";
    case EventKind::WorkerSample: return "worker-sample";
  }
  return "<bad event kind>";
}

std::string to_string(const Event& e) {
  std::ostringstream os;
  os << '[' << e.seq << " @" << e.t_ns << "ns] " << to_string(e.kind) << ' '
     << e.actor;
  const bool promise_target = (e.flags & kFlagPromise) != 0;
  switch (e.kind) {
    case EventKind::TaskSpawn:
    case EventKind::JoinComplete:
    case EventKind::SchedInline:
    case EventKind::JoinVerdict:
    case EventKind::CycleScan:
    case EventKind::JoinBlocked:
    case EventKind::SpawnInlined:
    case EventKind::JoinTimeout:
      os << " -> " << e.target;
      break;
    case EventKind::VerdictExplained:
      os << " -> " << (promise_target ? "p" : "") << e.target;
      break;
    case EventKind::PromiseMake:
    case EventKind::PromiseFulfill:
    case EventKind::AwaitComplete:
    case EventKind::AwaitVerdict:
    case EventKind::FulfillVerdict:
    case EventKind::AwaitBlocked:
      os << " -> p" << e.target;
      break;
    case EventKind::PromiseTransfer:
      os << " -> " << e.target << " (p" << e.payload << ')';
      break;
    case EventKind::BarrierPhase:
      os << " barrier " << e.target << " phase " << e.payload;
      break;
    default:
      if (promise_target && e.target != 0) os << " -> p" << e.target;
      break;
  }
  switch (e.kind) {
    case EventKind::JoinVerdict:
    case EventKind::AwaitVerdict:
      os << " verdict=" << static_cast<unsigned>(e.detail)
         << " policy=" << static_cast<unsigned>(e.policy);
      break;
    case EventKind::FulfillVerdict:
      os << " verdict=" << static_cast<unsigned>(e.detail);
      break;
    case EventKind::CycleScan:
      os << ' ' << e.payload << "ns"
         << (e.detail != 0 ? " CYCLE" : " clear");
      break;
    case EventKind::JoinBlocked:
    case EventKind::AwaitBlocked:
      os << " blocked " << e.payload << "ns";
      break;
    case EventKind::FaultInjected:
      os << " site=" << static_cast<unsigned>(e.detail);
      break;
    case EventKind::SchedCompensate:
    case EventKind::WorkerDeath:
      os << " pool=" << e.payload;
      break;
    case EventKind::TaskEnd:
      if (e.detail != 0) os << " FAULTED";
      break;
    case EventKind::WatchdogStall:
      os << " stalled=" << e.payload;
      break;
    case EventKind::PolicyDowngrade:
      os << " level=" << e.payload << " policy=" << static_cast<unsigned>(e.policy)
         << " was=" << static_cast<unsigned>(e.detail);
      break;
    case EventKind::SpawnInlined:
      os << " live=" << e.payload;
      break;
    case EventKind::JoinTimeout:
      os << " after " << e.payload << "ns";
      break;
    case EventKind::VerdictExplained:
      os << " witness=" << static_cast<unsigned>(e.detail)
         << " policy=" << static_cast<unsigned>(e.policy)
         << " chain=" << e.payload;
      break;
    case EventKind::AdmissionShed:
      os << " cause=" << static_cast<unsigned>(e.detail)
         << " in_flight=" << e.payload;
      break;
    case EventKind::CycleRecovered:
      os << " cycle_len=" << e.payload;
      break;
    case EventKind::DetectorLag:
      os << " backlog=" << e.payload << " lost=" << e.target;
      break;
    case EventKind::DetectorFailover:
      os << " reason=" << static_cast<unsigned>(e.detail)
         << " backlog=" << e.payload;
      break;
    case EventKind::WorkerSample:
      os << " workers=" << e.actor;
      for (unsigned i = 0; i < 5; ++i) {
        os << (i == 0 ? " states=" : ",") << ((e.payload >> (12 * i)) & 0xfff);
      }
      break;
    default:
      break;
  }
  if (e.request != 0) os << " req=" << e.request;
  if (e.tenant != 0) {
    os << " tenant=" << static_cast<unsigned>(e.tenant - 1);
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << to_string(e);
}

}  // namespace tj::obs
